module skyserver

go 1.24
