package skyserver

// One benchmark per table and figure of the paper's evaluation, wrapping
// internal/experiments (cmd/skybench prints the same measurements as
// reports):
//
//	Table 1    BenchmarkTable1Load
//	Figure 5   BenchmarkFig5Traffic
//	Fig 10–12  BenchmarkFig13Queries/Q1, /Q15A, /Q15B (plans printed by skybench)
//	Figure 12  BenchmarkIndexVsScanQ15B (the covering-index ablation)
//	Figure 13  BenchmarkFig13Queries/*
//	Figure 15  BenchmarkFig15ScanScaling/*
//	§11 prose  BenchmarkWarmColdIndexScan, BenchmarkColorCutScan
//	§9.1.1     BenchmarkNeighborsBuild
//	§9.4       BenchmarkLoadPipeline
//	§10        BenchmarkPersonalSubset

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"skyserver/internal/core"
	"skyserver/internal/experiments"
	"skyserver/internal/load"
	"skyserver/internal/neighbors"
	"skyserver/internal/pipeline"
	"skyserver/internal/queries"
	"skyserver/internal/resultcache"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/traffic"
)

// benchScale keeps `go test -bench=. ./...` tractable: 1/1000 of the EDR is
// ~14k photo objects. cmd/skybench runs the same experiments at any -scale.
const benchScale = 1.0 / 1000

var (
	benchOnce sync.Once
	benchSrv  *core.SkyServer
	benchErr  error
)

func benchServer(b *testing.B) *core.SkyServer {
	b.Helper()
	benchOnce.Do(func() {
		benchSrv, benchErr = core.Open(core.Config{Scale: benchScale, SkipFrames: true})
	})
	if benchErr != nil {
		b.Fatalf("building bench survey: %v", benchErr)
	}
	return benchSrv
}

// BenchmarkTable1Load regenerates Table 1: the pipeline-to-database load of
// the full schema, reporting rows and bytes per second.
func BenchmarkTable1Load(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fg := storage.NewMemFileGroup(4, 1<<14)
		sdb, err := schema.Build(fg)
		if err != nil {
			b.Fatal(err)
		}
		l := load.New(sdb)
		stats, err := l.LoadSurvey(pipeline.Config{Scale: 1.0 / 8000, Seed: int64(i + 1), SkipFrames: true})
		if err != nil {
			b.Fatal(err)
		}
		var bytes uint64
		for _, t := range sdb.Tables() {
			bytes += t.DataBytes()
		}
		b.SetBytes(int64(bytes))
		if stats.Truth.Objects == 0 {
			b.Fatal("empty survey")
		}
	}
}

// BenchmarkFig5Traffic regenerates Figure 5: seven months of synthetic logs
// through the sessionizing analyzer.
func BenchmarkFig5Traffic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig5(traffic.Config{Seed: int64(i + 1), BaseSessions: 20})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Sessions == 0 {
			b.Fatal("no sessions")
		}
	}
}

// BenchmarkFig13Queries runs each of the paper's 22 evaluation queries as a
// sub-benchmark — the Figure 13 series.
func BenchmarkFig13Queries(b *testing.B) {
	s := benchServer(b)
	for _, q := range queries.All() {
		q := q
		b.Run("Q"+q.ID, func(b *testing.B) {
			b.ReportAllocs()
			sess := s.Session()
			sql, err := q.SQL(sess)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(sql, sqlengine.ExecOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexVsScanQ15B is the Figure 12 ablation: the NEO pair query
// with its covering index versus as a nested loop of table scans, cold, on
// the paper's 4-disk model.
func BenchmarkIndexVsScanQ15B(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// SpeedUp 2: disks at twice real time — slow enough that the
		// I/O gap the paper reports dominates, fast enough to bench.
		r, err := experiments.Fig12(experiments.Fig12Config{Scale: benchScale, Seed: int64(i + 1), SpeedUp: 2})
		if err != nil {
			b.Fatal(err)
		}
		if r.RowsWith != r.RowsWithout || r.RowsWith != 4 {
			b.Fatalf("answers diverge: %d vs %d", r.RowsWith, r.RowsWithout)
		}
		b.ReportMetric(r.WithIndex.Seconds()*1000, "withIndex-ms")
		b.ReportMetric(r.WithoutIndex.Seconds()*1000, "withoutIndex-ms")
	}
}

// BenchmarkFig15ScanScaling measures sequential-scan bandwidth under the
// §12 disk model at three of Figure 15's configurations.
func BenchmarkFig15ScanScaling(b *testing.B) {
	for _, disks := range []int{1, 4, 12} {
		disks := disks
		b.Run(fmt.Sprintf("%ddisk", disks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig15(experiments.Fig15Config{
					Disks: []int{disks}, MBPerDisk: 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[0].RawMBps, "raw-modelMB/s")
				b.ReportMetric(pts[0].SQLMBps, "sql-modelMB/s")
			}
		})
	}
}

// BenchmarkWarmColdIndexScan reproduces the §11 warm/cold scan comparison
// via the page cache (cold pays the volumes for every page, warm is pure
// CPU — the paper's 17s vs 7s contrast).
func BenchmarkWarmColdIndexScan(b *testing.B) {
	s := benchServer(b)
	const q = "select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1"
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.DB().DB.FileGroup().DropCache()
			if _, err := s.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := s.Query(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColorCutScan is §12's color-cut aggregate in both access paths:
// the bare (r-g) form is answered from the covering index (the paper's
// tag-table replacement), the petroMag form must scan the heap.
func BenchmarkColorCutScan(b *testing.B) {
	s := benchServer(b)
	bytes := s.DB().PhotoObj.DataBytes()
	b.Run("CoveredIndex", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bytes))
		for i := 0; i < b.N; i++ {
			if _, err := s.Query("select count(*) from PhotoObj where (r - g) > 1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HeapScan", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bytes))
		for i := 0; i < b.N; i++ {
			if _, err := s.Query("select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchVsRowFilter contrasts the vectorized filter kernels with
// the preserved row-at-a-time expression fallback (ForceRowExprs) on the
// §12 color-cut scan. Both run on the same batch pipeline; only expression
// evaluation differs — the gap is pure per-row interpreter overhead.
func BenchmarkBatchVsRowFilter(b *testing.B) {
	s := benchServer(b)
	const q = "select count(*) from PhotoObj where (r - g) > 1 and r < 22"
	bytes := s.DB().PhotoObj.DataBytes()
	run := func(b *testing.B, opt sqlengine.ExecOptions) {
		b.ReportAllocs()
		b.SetBytes(int64(bytes))
		sess := s.Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Vectorized", func(b *testing.B) { run(b, sqlengine.ExecOptions{}) })
	b.Run("RowFallback", func(b *testing.B) { run(b, sqlengine.ExecOptions{ForceRowExprs: true}) })
}

// BenchmarkNeighborsBuild times the §9.1.1 zone join that materializes the
// Neighbors table.
func BenchmarkNeighborsBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.Open(core.Config{
			Scale: benchScale, Seed: int64(i + 1),
			SkipFrames: true, SkipBlobs: true, SkipNeighbors: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, err := neighbors.Build(s.DB(), neighbors.DefaultRadiusArcmin)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(float64(n)/float64(s.DB().PhotoObj.Rows()), "pairs/object")
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkLoadPipeline is §9.4's load throughput (the paper: ~5 GB/hour on
// year-2001 hardware).
func BenchmarkLoadPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Load(1.0/8000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(r.Bytes))
		b.ReportMetric(r.GBPerHour, "GB/hour")
	}
}

// BenchmarkPersonalSubset carves the §10 personal SkyServer.
func BenchmarkPersonalSubset(b *testing.B) {
	b.ReportAllocs()
	s := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := s.PersonalSubset(184.5, 185.5, -1.0, 0.0)
		if err != nil {
			b.Fatal(err)
		}
		if sub.DB().PhotoObj.Rows() == 0 {
			b.Fatal("empty subset")
		}
		sub.Close()
	}
}

// BenchmarkPlanCache measures the three plan-cache paths on the Q9 index
// seek (the shape most dominated by parse+plan cost after PR 2): Hit is
// the steady state — normalize, probe, bind, execute, with no parsing or
// planning; Miss clears the cache each iteration, paying
// normalize + parse + compile + store + execute; Disabled is the
// ExecOptions.DisablePlanCache oracle, the pre-cache pipeline with
// literals compiled in place.
func BenchmarkPlanCache(b *testing.B) {
	s := benchServer(b)
	var q queries.Query
	for _, cand := range queries.All() {
		if cand.ID == "9" {
			q = cand
		}
	}
	sql, err := q.SQL(s.Session())
	if err != nil {
		b.Fatal(err)
	}
	db := s.DB().DB
	run := func(b *testing.B, opt sqlengine.ExecOptions, clear bool) {
		b.ReportAllocs()
		sess := s.Session()
		if _, err := sess.Exec(sql, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if clear {
				db.Plans().Clear()
			}
			if _, err := sess.Exec(sql, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Hit", func(b *testing.B) { run(b, sqlengine.ExecOptions{}, false) })
	b.Run("Miss", func(b *testing.B) { run(b, sqlengine.ExecOptions{}, true) })
	b.Run("Disabled", func(b *testing.B) { run(b, sqlengine.ExecOptions{DisablePlanCache: true}, false) })
}

// BenchmarkResultCacheHit measures the repeat-lookup fast path the web
// layer runs before admission on the same Q9 seek BenchmarkPlanCache
// uses: normalize the SQL to its result key, probe the version-keyed
// result cache, and match the stored ETag — no parse tree, no plan
// binding, no scan, no serialization. Compare against
// BenchmarkPlanCache/Hit (the best the engine does without it) for the
// short-circuit factor; the gate also pins the path allocation-flat.
func BenchmarkResultCacheHit(b *testing.B) {
	b.ReportAllocs()
	s := benchServer(b)
	var q queries.Query
	for _, cand := range queries.All() {
		if cand.ID == "9" {
			q = cand
		}
	}
	sess := s.Session()
	sql, err := q.SQL(sess)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sess.Exec(sql, sqlengine.ExecOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cp := res.Compiled()
	if cp == nil || !res.Cacheable || !cp.ResultCacheable() {
		b.Fatal("Q9 did not produce a cacheable compiled plan")
	}
	cache := resultcache.New(0, 0)
	key, _, ok := sess.ResultKey(sql, nil)
	if !ok {
		b.Fatal("ResultKey failed")
	}
	etag := resultcache.ETag(key, cp.VersionDigest())
	if !cache.Store(key, etag, "text/csv", "interactive", make([]byte, 4096), cp) {
		b.Fatal("store rejected")
	}
	db := s.DB().DB
	keyBuf := make([]byte, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _, ok := sess.ResultKey(sql, keyBuf[:0])
		if !ok {
			b.Fatal("ResultKey failed")
		}
		e := cache.Probe(k, db.SchemaVersion())
		if e == nil {
			b.Fatal("probe missed")
		}
		if e.ETag != etag {
			b.Fatal("etag mismatch")
		}
	}
}

// BenchmarkParallelAgg measures the PR 8 partial+merge aggregation on a
// GROUP BY over the full PhotoObj heap scan: Serial pins the
// MaxConcurrency=1 plan (one hash table fed in scan order), Parallel the
// per-worker partial hash tables merged after the scan. On a single-core
// machine the two should be within noise of each other (the gate cares
// about allocations, which must stay flat under pooled partials); on
// multi-core hardware Parallel is where the ≥1.5× shows up.
func BenchmarkParallelAgg(b *testing.B) {
	s := benchServer(b)
	const q = "select floor(petroMag_r) as bin, count(*) as n, avg(petroMag_g) as g " +
		"from PhotoObj group by floor(petroMag_r) order by bin"
	bytes := s.DB().PhotoObj.DataBytes()
	run := func(b *testing.B, opt sqlengine.ExecOptions) {
		b.ReportAllocs()
		b.SetBytes(int64(bytes))
		sess := s.Session()
		if _, err := sess.Exec(q, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Serial", func(b *testing.B) { run(b, sqlengine.ExecOptions{MaxConcurrency: 1}) })
	b.Run("Parallel", func(b *testing.B) { run(b, sqlengine.ExecOptions{}) })
}

// BenchmarkTopKSort measures the TOP n ORDER BY fusion: per-worker bounded
// top-k heaps over a heap scan instead of a full materialize-and-sort.
// Peak live rows are O(n × workers) regardless of input size, and the
// pooled heap storage keeps the steady state allocation-flat.
func BenchmarkTopKSort(b *testing.B) {
	s := benchServer(b)
	const q = "select top 10 objID, petroMag_r from PhotoObj order by petroMag_r"
	bytes := s.DB().PhotoObj.DataBytes()
	run := func(b *testing.B, opt sqlengine.ExecOptions) {
		b.ReportAllocs()
		b.SetBytes(int64(bytes))
		sess := s.Session()
		if _, err := sess.Exec(q, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Serial", func(b *testing.B) { run(b, sqlengine.ExecOptions{MaxConcurrency: 1}) })
	b.Run("Parallel", func(b *testing.B) { run(b, sqlengine.ExecOptions{}) })
}

var (
	benchShardOnce sync.Once
	benchShardSrv  *core.SkyServer
	benchShardErr  error
)

// benchShardedServer loads the bench survey once across 4 HTM-trixel
// shards — the layout `skyserver -shards 4` serves.
func benchShardedServer(b *testing.B) *core.SkyServer {
	b.Helper()
	benchShardOnce.Do(func() {
		benchShardSrv, benchShardErr = core.Open(core.Config{Scale: benchScale, Shards: 4, SkipFrames: true})
	})
	if benchShardErr != nil {
		b.Fatalf("building sharded bench survey: %v", benchShardErr)
	}
	return benchShardSrv
}

// BenchmarkShardedConeSearch measures what shard routing buys a spatial
// range scan on a 4-shard layout. Pruned is an htmID range owned by one
// shard (psfMag_r is in no index, so this is a heap scan); AllShards is
// the same predicate written as htmID+0, which defeats the planner's
// route extraction and fans the identical scan out to every shard. The
// fixture asserts the all-shards variant reads ≥2× the heap pages — the
// routing win the PR claims — so a silent routing regression fails the
// bench job before the timing gate even looks at it.
func BenchmarkShardedConeSearch(b *testing.B) {
	s := benchShardedServer(b)
	r := s.DB().DB.Shards().Plan().Range(1)
	pruned := fmt.Sprintf("select sum(psfMag_r) from PhotoObj where htmID between %d and %d", r.Lo, r.Hi-1)
	allShards := fmt.Sprintf("select sum(psfMag_r) from PhotoObj where htmID+0 between %d and %d", r.Lo, r.Hi-1)

	sess := s.Session()
	resP, err := sess.Exec(pruned, sqlengine.ExecOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if !strings.Contains(resP.Plan, "Shards(1/4)") {
		b.Fatalf("pruned scan not routed to one shard:\n%s", resP.Plan)
	}
	resA, err := sess.Exec(allShards, sqlengine.ExecOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if !strings.Contains(resA.Plan, "Shards(4/4)") {
		b.Fatalf("htmID+0 scan unexpectedly routed:\n%s", resA.Plan)
	}
	if resP.PagesScanned == 0 || resA.PagesScanned < 2*resP.PagesScanned {
		b.Fatalf("routing win below 2×: pruned scanned %d pages, all-shards %d",
			resP.PagesScanned, resA.PagesScanned)
	}

	run := func(b *testing.B, q string, pages int64) {
		b.ReportAllocs()
		sess := s.Session()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q, sqlengine.ExecOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(pages), "pages")
	}
	b.Run("Pruned", func(b *testing.B) { run(b, pruned, resP.PagesScanned) })
	b.Run("AllShards", func(b *testing.B) { run(b, allShards, resA.PagesScanned) })
}

// BenchmarkSpatialLookup measures the fGetNearbyObjEq path: HTM cover plus
// covered index range scans — the heart of §9.1.4.
func BenchmarkSpatialLookup(b *testing.B) {
	b.ReportAllocs()
	s := benchServer(b)
	sess := s.Session()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Exec("select count(*) from fGetNearbyObjEq(185, -0.5, 1)", sqlengine.ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0][0].I != 22 {
			b.Fatalf("TVF rows = %d, want 22", res.Rows[0][0].I)
		}
	}
}
