package chaos_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"skyserver/internal/chaos"
	"skyserver/internal/core"
	"skyserver/internal/queries"
	"skyserver/internal/storage"
	"skyserver/internal/web"
)

const (
	chaosScale = 1.0 / 4000
	chaosSeed  = 20020603
	batchScan  = "select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1"
)

func fetch(t *testing.T, base, sql string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/x/sql?format=csv&cmd=" + url.QueryEscape(sql))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

// sortLines canonicalizes a CSV body for comparison: queries without a
// total ORDER BY deliver rows in scan order, which parallel morsel
// stealing does not fix across runs — content equality is the invariant,
// not line order.
func sortLines(body string) string {
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestChaosHTTPEquivalence is the end-to-end fault-injection gauntlet: the
// full Figure 13 workload over HTTP against a server whose every volume
// injects seeded transient read errors (p=0.01) and in-flight bit flips
// (p=0.005), with a page cache small enough that reads actually hit the
// faulted volumes. Every response must be either exactly the clean
// server's result or a well-formed, classified error — never silently
// corrupt bytes, and never a crashed process. Afterwards goroutines are
// flat and the scan pool still serves queries; a forced read panic fails
// only its own query with a 500.
func TestChaosHTTPEquivalence(t *testing.T) {
	clean, err := core.Open(core.Config{
		Scale: chaosScale, Seed: chaosSeed, SkipFrames: true, SkipBlobs: true,
	})
	if err != nil {
		t.Fatalf("open clean: %v", err)
	}
	defer clean.Close()

	var fvs []*chaos.FaultVolume
	faulted, err := core.Open(core.Config{
		Scale: chaosScale, Seed: chaosSeed, SkipFrames: true, SkipBlobs: true,
		// A near-zero cache: with the default 512 MB budget the whole
		// survey stays resident and the fault volumes never see a read.
		CachePages: 1,
		WrapVolume: func(_, i int, v storage.Volume) storage.Volume {
			fv := chaos.NewFaultVolume(v, chaos.Config{
				Seed:          chaosSeed + uint64(i),
				TransientRate: 0.01,
				CorruptRate:   0.005,
			})
			fvs = append(fvs, fv)
			return fv
		},
	})
	if err != nil {
		t.Fatalf("open faulted: %v", err)
	}
	defer faulted.Close()

	// The result cache is disabled on both servers so every request runs
	// the executor over (possibly faulted) storage instead of replaying
	// cached bytes.
	opt := web.Options{Public: true, ResultCacheBytes: -1}
	cleanTS := httptest.NewServer(clean.Web(opt).Handler())
	defer cleanTS.Close()
	faultTS := httptest.NewServer(faulted.Web(opt).Handler())
	defer faultTS.Close()

	// Warm both scan pools (they start lazily) before baselining the
	// goroutine count.
	fetch(t, cleanTS.URL, batchScan)
	fetch(t, faultTS.URL, batchScan)
	before := runtime.NumGoroutine()

	sess := clean.Session()
	okCount, errCount := 0, 0
	for _, q := range queries.All() {
		sql, err := q.SQL(sess)
		if err != nil {
			t.Fatalf("Q%s: resolve SQL: %v", q.ID, err)
		}
		cleanCode, cleanBody := fetch(t, cleanTS.URL, sql)
		if cleanCode != http.StatusOK {
			t.Fatalf("Q%s on clean server: status %d: %s", q.ID, cleanCode, cleanBody)
		}
		// Self-calibrate: a query whose clean result is not reproducible
		// run-to-run (top-N without a total order under parallel scan)
		// cannot be compared byte-for-byte against the faulted server.
		_, cleanBody2 := fetch(t, cleanTS.URL, sql)
		deterministic := sortLines(cleanBody) == sortLines(cleanBody2)

		code, body := fetch(t, faultTS.URL, sql)
		switch {
		case code == http.StatusOK:
			okCount++
			if deterministic && sortLines(body) != sortLines(cleanBody) {
				t.Errorf("Q%s: faulted server returned 200 with different bytes (silent corruption)", q.ID)
			}
		case code == http.StatusInternalServerError || code == http.StatusServiceUnavailable:
			// Retry budget exhausted or permanent corruption detected: a
			// well-formed, classified error is an acceptable outcome.
			errCount++
			if strings.TrimSpace(body) == "" {
				t.Errorf("Q%s: error status %d with empty body", q.ID, code)
			}
		default:
			t.Errorf("Q%s: unexpected status %d: %s", q.ID, code, body)
		}
	}
	if okCount == 0 {
		t.Error("no query survived the fault rates; retry layer is not recovering")
	}
	t.Logf("chaos workload: %d ok, %d well-formed errors", okCount, errCount)

	// The chaos actually happened, and the retry layer actually worked.
	var transients, corrupts int64
	for _, fv := range fvs {
		st := fv.Stats()
		transients += st.Transients
		corrupts += st.Corrupts
	}
	if transients == 0 || corrupts == 0 {
		t.Fatalf("fault injection inactive: %d transients, %d corrupts", transients, corrupts)
	}
	fg := faulted.DB().DB.FileGroup()
	if fg.ReadRetries() == 0 {
		t.Error("no read retries recorded despite injected faults")
	}

	// A forced read panic fails its own query with a well-formed 500 —
	// the process, the pool, and subsequent queries survive.
	for _, fv := range fvs {
		for p := uint32(0); p < fv.Pages(); p++ {
			fv.PanicReads(p, 1)
		}
	}
	code, body := fetch(t, faultTS.URL, batchScan)
	if code != http.StatusInternalServerError {
		t.Errorf("query over panicking volumes: status %d (%s), want 500", code, body)
	}
	for _, fv := range fvs {
		fv.Heal()
	}
	wantCode, wantBody := fetch(t, cleanTS.URL, batchScan)
	if wantCode != http.StatusOK {
		t.Fatalf("clean rerun: status %d", wantCode)
	}
	code, body = fetch(t, faultTS.URL, batchScan)
	if code != http.StatusOK || sortLines(body) != sortLines(wantBody) {
		t.Errorf("rerun after panic: status %d, equal=%v — pool did not survive intact",
			code, sortLines(body) == sortLines(wantBody))
	}

	// Goroutines flat: no leaked workers or stuck handlers.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+16 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d and stayed there", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w := fg.ScanPoolStats().Workers; w == 0 {
		t.Error("scan pool has no workers after chaos run")
	}
}
