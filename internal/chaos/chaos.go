// Package chaos injects deterministic, seeded storage faults for testing
// the fault-tolerance stack end to end: transient read errors that a retry
// fixes, fail-N-then-succeed schedules, injected latency, and bit flips in
// the returned page bytes that the storage checksum must catch. FaultVolume
// wraps any storage.Volume, so chaos composes with in-memory, file-backed,
// and throttled volumes alike — the same wrapper backs unit tests, the
// HTTP-level chaos equivalence test, and skyserver's -chaos-seed/-chaos-rate
// dev mode.
//
// Determinism matters more than realism here: the PRNG is seeded per
// volume, so a failing CI run reproduces locally from the seed alone.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"skyserver/internal/storage"
)

// Config sets the random fault mix of a FaultVolume.
type Config struct {
	// Seed makes the fault schedule deterministic. Two FaultVolumes with
	// the same seed and config inject faults on the same read sequence.
	Seed uint64

	// TransientRate is the probability (0..1) that a read fails with an
	// error wrapping storage.ErrTransient. A later retry of the same page
	// is a fresh draw.
	TransientRate float64

	// CorruptRate is the probability (0..1) that a read returns the page
	// with one bit flipped in the buffer — the stored bytes stay intact,
	// modeling in-flight corruption a re-read repairs. The checksum layer
	// must turn this into a retry, never into silently wrong results.
	CorruptRate float64

	// Latency, when nonzero, delays every read by a uniform random
	// duration in (0, Latency].
	Latency time.Duration
}

// FaultVolume wraps an inner storage.Volume with seeded fault injection on
// the read path. Writes, Pages, and Close pass through untouched. It is
// safe for concurrent use.
type FaultVolume struct {
	inner storage.Volume
	cfg   Config

	mu         sync.Mutex
	rng        *rand.Rand
	failN      map[uint32]int // page -> remaining forced transient failures
	panicN     map[uint32]int // page -> remaining forced panics
	sticky     map[uint32]bool
	reads      int64
	transients int64
	corrupts   int64
}

// Stats is a snapshot of injected-fault counts.
type Stats struct {
	Reads      int64 // reads attempted
	Transients int64 // reads failed with a transient error
	Corrupts   int64 // reads returned with a flipped bit
}

// NewFaultVolume wraps inner with the given fault mix.
func NewFaultVolume(inner storage.Volume, cfg Config) *FaultVolume {
	return &FaultVolume{
		inner:  inner,
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(cfg.Seed, 0x5eed)),
		failN:  map[uint32]int{},
		panicN: map[uint32]int{},
		sticky: map[uint32]bool{},
	}
}

// FailReads forces the next n reads of page to fail with a transient
// error, independent of TransientRate — the deterministic
// fail-N-then-succeed schedule retry tests are built on.
func (v *FaultVolume) FailReads(page uint32, n int) {
	v.mu.Lock()
	v.failN[page] = n
	v.mu.Unlock()
}

// PanicReads forces the next n reads of page to panic, exercising the
// scan-shard and HTTP recover paths.
func (v *FaultVolume) PanicReads(page uint32, n int) {
	v.mu.Lock()
	v.panicN[page] = n
	v.mu.Unlock()
}

// CorruptSticky makes every read of page return a flipped bit — unlike
// CorruptRate faults, retries never fix it, so the checksum layer must
// surface a permanent storage.ErrChecksum.
func (v *FaultVolume) CorruptSticky(page uint32) {
	v.mu.Lock()
	v.sticky[page] = true
	v.mu.Unlock()
}

// Heal clears all forced fault schedules (random rates keep applying).
func (v *FaultVolume) Heal() {
	v.mu.Lock()
	v.failN = map[uint32]int{}
	v.panicN = map[uint32]int{}
	v.sticky = map[uint32]bool{}
	v.mu.Unlock()
}

// Stats returns the fault counters.
func (v *FaultVolume) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Stats{Reads: v.reads, Transients: v.transients, Corrupts: v.corrupts}
}

// ReadPage implements storage.Volume with fault injection: forced
// schedules first (fail-N, panic-N, sticky corruption), then the seeded
// random transient/corruption/latency mix.
func (v *FaultVolume) ReadPage(n uint32, buf []byte) error {
	v.mu.Lock()
	v.reads++
	if left := v.panicN[n]; left > 0 {
		v.panicN[n] = left - 1
		v.mu.Unlock()
		panic(fmt.Sprintf("chaos: forced panic reading page %d", n))
	}
	if left := v.failN[n]; left > 0 {
		v.failN[n] = left - 1
		v.transients++
		v.mu.Unlock()
		return fmt.Errorf("%w: chaos: forced failure on page %d", storage.ErrTransient, n)
	}
	fail := v.cfg.TransientRate > 0 && v.rng.Float64() < v.cfg.TransientRate
	corrupt := v.sticky[n] || (v.cfg.CorruptRate > 0 && v.rng.Float64() < v.cfg.CorruptRate)
	var flipBit int
	if corrupt {
		flipBit = v.rng.IntN(len(buf) * 8)
		v.corrupts++
	}
	var delay time.Duration
	if v.cfg.Latency > 0 {
		delay = time.Duration(v.rng.Int64N(int64(v.cfg.Latency))) + 1
	}
	if fail {
		v.transients++
	}
	v.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w: chaos: page %d", storage.ErrTransient, n)
	}
	if err := v.inner.ReadPage(n, buf); err != nil {
		return err
	}
	if corrupt {
		buf[flipBit/8] ^= 1 << (flipBit % 8)
	}
	return nil
}

// WritePage implements storage.Volume.
func (v *FaultVolume) WritePage(n uint32, buf []byte) error { return v.inner.WritePage(n, buf) }

// Pages implements storage.Volume.
func (v *FaultVolume) Pages() uint32 { return v.inner.Pages() }

// Close implements storage.Volume.
func (v *FaultVolume) Close() error { return v.inner.Close() }
