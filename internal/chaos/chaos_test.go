package chaos

import (
	"errors"
	"fmt"
	"testing"

	"skyserver/internal/storage"
)

// newFaultedHeap builds a single-volume, cache-less file group behind a
// FaultVolume and fills a heap with n records.
func newFaultedHeap(t *testing.T, cfg Config, n int) (*storage.FileGroup, *storage.Heap, *FaultVolume) {
	t.Helper()
	fv := NewFaultVolume(storage.NewMemVolume(), cfg)
	fg := storage.NewFileGroup([]storage.Volume{fv}, 0)
	t.Cleanup(func() { fg.Close() })
	h := storage.NewHeap(fg)
	for i := 0; i < n; i++ {
		if _, err := h.Append([]byte(fmt.Sprintf("rec-%06d-payload-padding-padding", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return fg, h, fv
}

func countRows(t *testing.T, h *storage.Heap) int {
	t.Helper()
	n := 0
	err := h.Scan(1, func(storage.RID, []byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return n
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, TransientRate: 0.2, CorruptRate: 0.1}
	run := func() (Stats, []error) {
		fv := NewFaultVolume(storage.NewMemVolume(), cfg)
		buf := make([]byte, storage.PageSize)
		stamped := make([]byte, storage.PageSize)
		fv.WritePage(0, stamped)
		var errs []error
		for i := 0; i < 200; i++ {
			errs = append(errs, fv.ReadPage(0, buf))
		}
		return fv.Stats(), errs
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if s1.Transients == 0 || s1.Corrupts == 0 {
		t.Fatalf("expected some faults at these rates, got %+v", s1)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("same seed, different fault at read %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestFailNThenSucceed(t *testing.T) {
	fg, h, fv := newFaultedHeap(t, Config{Seed: 1}, 50)
	fv.FailReads(0, 2)
	if got := countRows(t, h); got != 50 {
		t.Fatalf("rows = %d, want 50", got)
	}
	if got := fg.ReadRetries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	// Beyond the per-read attempt cap the error surfaces, classified.
	fv.FailReads(0, 100)
	err := h.Scan(1, func(storage.RID, []byte) error { return nil })
	if !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	fv.Heal()
	if got := countRows(t, h); got != 50 {
		t.Fatalf("rows after heal = %d, want 50", got)
	}
}

func TestRandomCorruptionIsRetriedAway(t *testing.T) {
	// In-flight bit flips: the checksum rejects the read, the re-read
	// redraws, and the scan result is exactly the clean data.
	_, h, fv := newFaultedHeap(t, Config{Seed: 7, CorruptRate: 0.3}, 200)
	if got := countRows(t, h); got != 200 {
		t.Fatalf("rows = %d, want 200", got)
	}
	if fv.Stats().Corrupts == 0 {
		t.Fatal("no corruption injected at rate 0.3")
	}
}

func TestStickyCorruptionIsPermanent(t *testing.T) {
	fg, h, fv := newFaultedHeap(t, Config{Seed: 3}, 50)
	fv.CorruptSticky(0)
	err := h.Scan(1, func(storage.RID, []byte) error { return nil })
	if !errors.Is(err, storage.ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if fg.ChecksumFails() == 0 {
		t.Fatal("checksum failure not counted")
	}
}

func TestPanicReads(t *testing.T) {
	_, h, fv := newFaultedHeap(t, Config{Seed: 9}, 50)
	fv.PanicReads(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("serial scan should propagate the injected panic")
		}
	}()
	_ = h.Scan(1, func(storage.RID, []byte) error { return nil })
}
