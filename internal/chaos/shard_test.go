package chaos_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"skyserver/internal/chaos"
	"skyserver/internal/core"
	"skyserver/internal/queries"
	"skyserver/internal/storage"
	"skyserver/internal/web"
)

// TestChaosSingleShardFaults pins the failure-domain story of sharding:
// faults injected into ONE shard's volumes stay inside that shard.
// Transient read errors there retry within the query budget and produce
// byte-equal results; a forced panic on that shard's pages fails only
// the queries routed through it with one well-formed 500, while queries
// routed to sibling shards keep answering. After Heal, the scatter
// layer produces byte-equal results again — the pools survived.
func TestChaosSingleShardFaults(t *testing.T) {
	const faultedShard = 1
	clean, err := core.Open(core.Config{
		Scale: chaosScale, Seed: chaosSeed, Shards: 4, SkipFrames: true, SkipBlobs: true,
	})
	if err != nil {
		t.Fatalf("open clean: %v", err)
	}
	defer clean.Close()

	var fvs []*chaos.FaultVolume
	faulted, err := core.Open(core.Config{
		Scale: chaosScale, Seed: chaosSeed, Shards: 4, SkipFrames: true, SkipBlobs: true,
		// Near-zero per-shard caches so reads reach the fault layer.
		CachePages: 4,
		WrapVolume: func(shard, stripe int, v storage.Volume) storage.Volume {
			if shard != faultedShard {
				return v
			}
			fv := chaos.NewFaultVolume(v, chaos.Config{
				Seed:          chaosSeed + uint64(stripe),
				TransientRate: 0.01,
			})
			fvs = append(fvs, fv)
			return fv
		},
	})
	if err != nil {
		t.Fatalf("open faulted: %v", err)
	}
	defer faulted.Close()

	opt := web.Options{Public: true, ResultCacheBytes: -1}
	cleanTS := httptest.NewServer(clean.Web(opt).Handler())
	defer cleanTS.Close()
	faultTS := httptest.NewServer(faulted.Web(opt).Handler())
	defer faultTS.Close()

	fetch(t, cleanTS.URL, batchScan)
	fetch(t, faultTS.URL, batchScan)
	before := runtime.NumGoroutine()

	// Phase 1: transient faults on one shard. The all-shard scan crosses
	// the faulted shard on every run; retries must absorb the faults and
	// keep results byte-equal to the clean server.
	sess := clean.Session()
	okCount := 0
	for _, q := range queries.All() {
		sql, err := q.SQL(sess)
		if err != nil {
			t.Fatalf("Q%s: resolve SQL: %v", q.ID, err)
		}
		cleanCode, cleanBody := fetch(t, cleanTS.URL, sql)
		if cleanCode != http.StatusOK {
			t.Fatalf("Q%s on clean server: status %d", q.ID, cleanCode)
		}
		_, cleanBody2 := fetch(t, cleanTS.URL, sql)
		deterministic := sortLines(cleanBody) == sortLines(cleanBody2)

		code, body := fetch(t, faultTS.URL, sql)
		switch {
		case code == http.StatusOK:
			okCount++
			if deterministic && sortLines(body) != sortLines(cleanBody) {
				t.Errorf("Q%s: 200 with different bytes under one-shard transients (silent corruption)", q.ID)
			}
		case code == http.StatusInternalServerError || code == http.StatusServiceUnavailable:
			// Budget exhausted on the faulted shard: acceptable, well-formed.
		default:
			t.Errorf("Q%s: unexpected status %d: %s", q.ID, code, body)
		}
	}
	if okCount == 0 {
		t.Error("no query survived one-shard transients; per-shard retry is not recovering")
	}
	var transients int64
	for _, fv := range fvs {
		transients += fv.Stats().Transients
	}
	if transients == 0 {
		t.Fatal("fault injection inactive on the faulted shard")
	}
	for i, fg := range faulted.DB().DB.Shards().FileGroups() {
		if i == faultedShard {
			if fg.ReadRetries() == 0 {
				t.Error("faulted shard recorded no read retries despite injected transients")
			}
		} else if fg.ReadRetries() != 0 {
			t.Errorf("shard %d recorded retries but has no fault volume — fault bled across the shard boundary", i)
		}
	}

	// Phase 2: the faulted shard panics on every read. A scan routed
	// through it gets one well-formed 500; a scan routed to a sibling
	// shard keeps working while the panic is live.
	for _, fv := range fvs {
		for p := uint32(0); p < fv.Pages(); p++ {
			fv.PanicReads(p, 1<<20)
		}
	}
	code, body := fetch(t, faultTS.URL, batchScan)
	if code != http.StatusInternalServerError {
		t.Errorf("all-shard scan over panicking shard: status %d (%s), want 500", code, body)
	}
	// psfMag_r is in no index, so this is a heap scan pruned to shard 0.
	r0 := faulted.DB().DB.Shards().Plan().Range(0)
	siblingScan := fmt.Sprintf("select count(psfMag_r) from PhotoObj where htmID between %d and %d", r0.Lo, r0.Hi-1)
	wantCode, wantBody := fetch(t, cleanTS.URL, siblingScan)
	if wantCode != http.StatusOK {
		t.Fatalf("sibling scan on clean server: status %d", wantCode)
	}
	code, body = fetch(t, faultTS.URL, siblingScan)
	if code != http.StatusOK || sortLines(body) != sortLines(wantBody) {
		t.Errorf("sibling-shard scan during panic: status %d, equal=%v — failure domain leaked",
			code, sortLines(body) == sortLines(wantBody))
	}

	// Phase 3: Heal, then the all-shard scan is byte-equal again — the
	// panicked shard's pool and the scatter layer are both reusable.
	for _, fv := range fvs {
		fv.Heal()
	}
	wantCode, wantBody = fetch(t, cleanTS.URL, batchScan)
	if wantCode != http.StatusOK {
		t.Fatalf("clean rerun: status %d", wantCode)
	}
	code, body = fetch(t, faultTS.URL, batchScan)
	if code != http.StatusOK || sortLines(body) != sortLines(wantBody) {
		t.Errorf("rerun after heal: status %d, equal=%v — shard did not recover", code, sortLines(body) == sortLines(wantBody))
	}

	// Goroutines flat: the per-shard scatter goroutines and pools drained.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+16 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d and stayed there", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, fg := range faulted.DB().DB.Shards().FileGroups() {
		if w := fg.ScanPoolStats().Workers; w == 0 {
			t.Errorf("shard %d scan pool has no workers after chaos run", i)
		}
	}
}
