package chaos_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"skyserver/internal/chaos"
	"skyserver/internal/core"
	"skyserver/internal/storage"
	"skyserver/internal/web"
)

// groupScan is a GROUP BY over a full PhotoObj heap scan: every scan
// worker owns a live partial-aggregation hash table (pooled slabs, arena,
// retained key buffers) at the moment a page read panics mid-scan.
const groupScan = "select floor(petroMag_r) as bin, count(*) as n " +
	"from PhotoObj group by floor(petroMag_r) order by bin"

// TestWorkerPanicDuringPartialAgg pins the failure contract of the
// per-worker aggregation sinks: a worker that panics mid-scan while its
// partial hash table is live must produce exactly one well-formed 500 —
// not a crashed process, not a torn result — and must not leak or
// double-release any pooled state. The heal-and-rerun loop repeats three
// times so that a partial released twice (its slabs now aliased by two
// pool entries) or a batch leaked mid-emit corrupts a later iteration and
// fails the byte-equality check.
func TestWorkerPanicDuringPartialAgg(t *testing.T) {
	var fvs []*chaos.FaultVolume
	srv, err := core.Open(core.Config{
		Scale: chaosScale, Seed: chaosSeed, SkipFrames: true, SkipBlobs: true,
		// Keep the page cache tiny so reads reach the fault volumes.
		CachePages: 1,
		WrapVolume: func(_, i int, v storage.Volume) storage.Volume {
			// No random faults: this test injects only deterministic
			// panics, so every non-panicking run must be byte-perfect.
			fv := chaos.NewFaultVolume(v, chaos.Config{Seed: chaosSeed + uint64(i)})
			fvs = append(fvs, fv)
			return fv
		},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Web(web.Options{Public: true, ResultCacheBytes: -1}).Handler())
	defer ts.Close()

	// Baseline: the clean answer, reproducible run-to-run (total ORDER BY).
	wantCode, wantBody := fetch(t, ts.URL, groupScan)
	if wantCode != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", wantCode, wantBody)
	}
	if code, body := fetch(t, ts.URL, groupScan); code != http.StatusOK || body != wantBody {
		t.Fatalf("baseline not reproducible: status %d", code)
	}

	for round := 0; round < 3; round++ {
		// Arm one panic on every page of every volume: whichever worker
		// reads first dies with its partial hash table mid-build, and the
		// remaining armed pages keep later workers from racing past.
		for _, fv := range fvs {
			for p := uint32(0); p < fv.Pages(); p++ {
				fv.PanicReads(p, 1)
			}
		}
		code, body := fetch(t, ts.URL, groupScan)
		if code != http.StatusInternalServerError {
			t.Fatalf("round %d: status %d (%s), want a single well-formed 500", round, code, body)
		}
		if strings.TrimSpace(body) == "" {
			t.Fatalf("round %d: 500 with empty body", round)
		}
		for _, fv := range fvs {
			fv.Heal()
		}
		code, body = fetch(t, ts.URL, groupScan)
		if code != http.StatusOK {
			t.Fatalf("round %d: rerun after heal: status %d: %s", round, code, body)
		}
		if body != wantBody {
			t.Fatalf("round %d: rerun diverges from baseline — pooled aggregation state "+
				"survived the panic corrupted:\n%s\nvs\n%s", round, body, wantBody)
		}
	}
}
