// Package pyramid builds the SkyServer's image pyramid (§2, §5): the
// original 5-color, 80-bit-deep frames are converted "using a nonlinear
// intensity mapping to reduce the brightness dynamic range to screen
// quality" into 24-bit RGB tiles, precomputed at 4 zoom levels so the web
// interface can pan and zoom without touching pixel-level data.
//
// The real SkyServer stored JPEGs; the reproduction stores uncompressed
// RGB tiles (the DB-resident blob path is what matters, not the codec).
package pyramid

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BaseSize is the pixel width/height of a level-1 tile. Kept small enough
// that an encoded tile row fits a storage page (48²×3 + header ≈ 7 KB).
const BaseSize = 48

// ZoomLevels lists the pyramid's zoom factors; level 1 is full resolution,
// each next level halves the linear resolution (the paper's 4-level
// pyramid plus the base frame).
var ZoomLevels = []int{1, 2, 4, 8}

// Frame5 is a synthetic 5-band frame: one float intensity per band per
// pixel, row-major, Size×Size.
type Frame5 struct {
	Size int
	// Band holds u, g, r, i, z intensities.
	Band [5][]float64
}

// NewFrame5 allocates an empty frame.
func NewFrame5(size int) *Frame5 {
	f := &Frame5{Size: size}
	for b := range f.Band {
		f.Band[b] = make([]float64, size*size)
	}
	return f
}

// AddObject splats a Gaussian source into the frame: the synthetic stand-in
// for a star or galaxy's pixels. flux is per-band.
func (f *Frame5) AddObject(x, y, sigma float64, flux [5]float64) {
	r := int(math.Ceil(3 * sigma))
	cx, cy := int(x), int(y)
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			px, py := cx+dx, cy+dy
			if px < 0 || py < 0 || px >= f.Size || py >= f.Size {
				continue
			}
			d2 := float64(dx*dx + dy*dy)
			w := math.Exp(-d2 / (2 * sigma * sigma))
			idx := py*f.Size + px
			for b := range f.Band {
				f.Band[b][idx] += flux[b] * w
			}
		}
	}
}

// RGB is an uncompressed 8-bit RGB tile.
type RGB struct {
	Size int
	Pix  []byte // 3 bytes per pixel, row-major
}

// asinhStretch is the nonlinear intensity mapping: asinh compresses the
// huge dynamic range of astronomical fluxes to screen range (the Lupton
// scheme SDSS used for its colour images).
func asinhStretch(v, soft float64) float64 {
	return math.Asinh(v/soft) / math.Asinh(1/soft)
}

// Render converts the 5-band frame to screen RGB: g→blue, r→green, i→red
// (the SDSS convention), asinh-stretched and clipped.
func (f *Frame5) Render() *RGB {
	out := &RGB{Size: f.Size, Pix: make([]byte, 3*f.Size*f.Size)}
	const soft = 0.1
	for i := 0; i < f.Size*f.Size; i++ {
		r := asinhStretch(f.Band[3][i], soft) // i band → red
		g := asinhStretch(f.Band[2][i], soft) // r band → green
		b := asinhStretch(f.Band[1][i], soft) // g band → blue
		out.Pix[3*i] = clip8(r)
		out.Pix[3*i+1] = clip8(g)
		out.Pix[3*i+2] = clip8(b)
	}
	return out
}

func clip8(v float64) byte {
	x := v * 255
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return byte(x)
}

// Downsample halves the tile's linear resolution by 2×2 box averaging —
// one pyramid level up.
func (t *RGB) Downsample() *RGB {
	n := t.Size / 2
	if n < 1 {
		n = 1
	}
	out := &RGB{Size: n, Pix: make([]byte, 3*n*n)}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for c := 0; c < 3; c++ {
				sum := 0
				cnt := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						sy, sx := 2*y+dy, 2*x+dx
						if sy < t.Size && sx < t.Size {
							sum += int(t.Pix[3*(sy*t.Size+sx)+c])
							cnt++
						}
					}
				}
				out.Pix[3*(y*n+x)+c] = byte(sum / cnt)
			}
		}
	}
	return out
}

// Encode serializes a tile to the blob stored in the Frame table:
// a small header (magic, size) followed by raw RGB bytes.
func (t *RGB) Encode() []byte {
	buf := make([]byte, 8+len(t.Pix))
	copy(buf, "SKYT")
	binary.LittleEndian.PutUint32(buf[4:], uint32(t.Size))
	copy(buf[8:], t.Pix)
	return buf
}

// Decode parses a tile blob.
func Decode(blob []byte) (*RGB, error) {
	if len(blob) < 8 || string(blob[:4]) != "SKYT" {
		return nil, fmt.Errorf("pyramid: not a tile blob")
	}
	size := int(binary.LittleEndian.Uint32(blob[4:]))
	want := 3 * size * size
	if size <= 0 || len(blob) != 8+want {
		return nil, fmt.Errorf("pyramid: corrupt tile blob (size %d, %d bytes)", size, len(blob))
	}
	return &RGB{Size: size, Pix: blob[8:]}, nil
}

// Build renders the frame and produces the full pyramid: tiles[0] is full
// resolution, each later entry is 2× coarser (4 levels total).
func Build(f *Frame5) []*RGB {
	tiles := make([]*RGB, 0, len(ZoomLevels))
	t := f.Render()
	for range ZoomLevels {
		tiles = append(tiles, t)
		t = t.Downsample()
	}
	return tiles
}
