package pyramid

import (
	"testing"
	"testing/quick"
)

func TestFrameAddObjectDepositsFlux(t *testing.T) {
	f := NewFrame5(BaseSize)
	f.AddObject(24, 24, 2, [5]float64{1, 1, 1, 1, 1})
	center := 24*BaseSize + 24
	for b := 0; b < 5; b++ {
		if f.Band[b][center] <= 0 {
			t.Fatalf("band %d has no flux at center", b)
		}
	}
	// Flux falls off with distance.
	edge := 24*BaseSize + 30
	if f.Band[2][edge] >= f.Band[2][center] {
		t.Error("no radial falloff")
	}
}

func TestAddObjectClipsAtEdges(t *testing.T) {
	f := NewFrame5(BaseSize)
	// Off-frame splats must not panic or write out of bounds.
	f.AddObject(-2, -2, 3, [5]float64{1, 1, 1, 1, 1})
	f.AddObject(float64(BaseSize)+1, float64(BaseSize)+1, 3, [5]float64{1, 1, 1, 1, 1})
}

func TestRenderClipsToByteRange(t *testing.T) {
	f := NewFrame5(8)
	f.AddObject(4, 4, 1, [5]float64{1e9, 1e9, 1e9, 1e9, 1e9}) // saturating flux
	rgb := f.Render()
	if len(rgb.Pix) != 8*8*3 {
		t.Fatalf("pix length %d", len(rgb.Pix))
	}
	if rgb.Pix[3*(4*8+4)] != 255 {
		t.Error("saturated pixel not clipped to 255")
	}
}

func TestAsinhStretchMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		if a < 0 || b < 0 || a > 1e6 || b > 1e6 {
			return true
		}
		sa, sb := asinhStretch(a, 0.1), asinhStretch(b, 0.1)
		if a < b {
			return sa <= sb
		}
		return sa >= sb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsampleHalves(t *testing.T) {
	f := NewFrame5(BaseSize)
	f.AddObject(10, 10, 2, [5]float64{5, 5, 5, 5, 5})
	t0 := f.Render()
	t1 := t0.Downsample()
	if t1.Size != BaseSize/2 {
		t.Fatalf("downsample size %d", t1.Size)
	}
	t2 := t1.Downsample()
	if t2.Size != BaseSize/4 {
		t.Fatalf("second downsample size %d", t2.Size)
	}
	// 1x1 tile cannot shrink below 1.
	one := &RGB{Size: 1, Pix: []byte{1, 2, 3}}
	if got := one.Downsample(); got.Size != 1 {
		t.Errorf("1px downsample size %d", got.Size)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := NewFrame5(BaseSize)
	f.AddObject(20, 30, 1.5, [5]float64{2, 3, 4, 5, 6})
	for _, tile := range Build(f) {
		blob := tile.Encode()
		back, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if back.Size != tile.Size {
			t.Fatalf("size %d != %d", back.Size, tile.Size)
		}
		for i := range tile.Pix {
			if back.Pix[i] != tile.Pix[i] {
				t.Fatal("pixels corrupted")
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x00\x00\x00\x00"),
		append([]byte("SKYT\x10\x00\x00\x00"), make([]byte, 5)...), // size 16, too few pixels
	} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%q) accepted", bad)
		}
	}
}

func TestBuildPyramidLevels(t *testing.T) {
	f := NewFrame5(BaseSize)
	tiles := Build(f)
	if len(tiles) != len(ZoomLevels) {
		t.Fatalf("%d tiles, want %d", len(tiles), len(ZoomLevels))
	}
	for i, z := range ZoomLevels {
		want := BaseSize / z
		if tiles[i].Size != want {
			t.Errorf("level %d: size %d, want %d", i, tiles[i].Size, want)
		}
	}
	// Total flux is roughly preserved across levels (box averaging).
	f2 := NewFrame5(BaseSize)
	f2.AddObject(24, 24, 3, [5]float64{10, 10, 10, 10, 10})
	tiles = Build(f2)
	mean := func(t *RGB) float64 {
		s := 0
		for _, p := range t.Pix {
			s += int(p)
		}
		return float64(s) / float64(len(t.Pix))
	}
	m0, m1 := mean(tiles[0]), mean(tiles[1])
	if m1 < m0*0.5 || m1 > m0*2 {
		t.Errorf("mean brightness drifted: %g -> %g", m0, m1)
	}
}
