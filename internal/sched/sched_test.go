package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// counterTask marks each shard it runs.
type counterTask struct {
	runs []atomic.Int64
}

func (t *counterTask) RunShard(shard int) { t.runs[shard].Add(1) }

func TestPoolRunsEveryShardOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 4, 7, 32} {
		task := &counterTask{runs: make([]atomic.Int64, n)}
		p.Run(n, task)
		for i := range task.runs {
			if got := task.runs[i].Load(); got != 1 {
				t.Fatalf("n=%d: shard %d ran %d times, want 1", n, i, got)
			}
		}
	}
}

func TestPoolConcurrentJobs(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				task := &counterTask{runs: make([]atomic.Int64, 5)}
				p.Run(5, task)
				for s := range task.runs {
					if task.runs[s].Load() != 1 {
						t.Errorf("shard %d not run exactly once", s)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Jobs != 16*20 {
		t.Errorf("jobs = %d, want %d", st.Jobs, 16*20)
	}
	if st.ShardsPool+st.ShardsInline != 16*20*5 {
		t.Errorf("shards = %d pool + %d inline, want %d total",
			st.ShardsPool, st.ShardsInline, 16*20*5)
	}
}

func TestPoolRunAfterCloseIsInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	task := &counterTask{runs: make([]atomic.Int64, 6)}
	p.Run(6, task)
	for i := range task.runs {
		if task.runs[i].Load() != 1 {
			t.Fatalf("shard %d not run after close", i)
		}
	}
	if st := p.Stats(); st.ShardsInline != 6 {
		t.Errorf("inline shards = %d, want 6", st.ShardsInline)
	}
}

// admit is a test helper that fails the test on any admission error.
func admit(t *testing.T, s *Scheduler, class Class, label string) *Ticket {
	t.Helper()
	tk, err := s.Admit(context.Background(), class, label)
	if err != nil {
		t.Fatalf("admit %s %s: %v", class, label, err)
	}
	return tk
}

func TestSchedulerAdmitBounds(t *testing.T) {
	// Interactive sized to zero borrowable headroom for batch: batch
	// alone exercises the classic run-queue bounds of the PR 4 gate.
	s := NewScheduler(Config{InteractiveSlots: 1, BatchSlots: 2, BatchQueueDepth: 1})
	t0 := admit(t, s, Interactive, "hold-interactive")
	t1 := admit(t, s, Batch, "a")
	t2 := admit(t, s, Batch, "b")

	// Both batch slots taken and no idle capacity: the next batch admit
	// parks in the queue.
	admitted := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(context.Background(), Batch, "queued")
		if err != nil {
			t.Errorf("queued admit: %v", err)
		}
		admitted <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Batch.Queued == 1 })

	// Queue full: immediate rejection, naming the class.
	_, err := s.Admit(context.Background(), Batch, "over")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit past queue bound: err = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "batch") {
		t.Errorf("rejection error %q does not name the batch class", err)
	}

	// Releasing a batch slot admits the queued request.
	t1.Done(nil)
	tk := <-admitted
	tk.AddWork(3, 100)
	tk.Done(nil)
	t2.Done(errors.New("boom"))
	t0.Done(nil)

	st := s.Stats()
	if st.Batch.Admitted != 3 || st.Batch.Rejected != 1 {
		t.Errorf("batch admitted/rejected = %d/%d, want 3/1", st.Batch.Admitted, st.Batch.Rejected)
	}
	if st.Batch.Completed != 2 || st.Batch.Failed != 1 {
		t.Errorf("batch completed/failed = %d/%d, want 2/1", st.Batch.Completed, st.Batch.Failed)
	}
	if st.Batch.PagesScanned != 3 || st.Batch.RowsScanned != 100 {
		t.Errorf("batch pages/rows = %d/%d, want 3/100", st.Batch.PagesScanned, st.Batch.RowsScanned)
	}
	if st.Admitted != 4 || st.Completed != 3 {
		t.Errorf("total admitted/completed = %d/%d, want 4/3", st.Admitted, st.Completed)
	}
	if len(st.Recent) != 4 {
		t.Errorf("recent = %d records, want 4", len(st.Recent))
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
}

// TestSchedulerInteractiveReservation is the acceptance guarantee:
// interactive queries are admitted immediately — never queued, never
// rejected — while reserved interactive slots are free, even when batch
// has borrowed every idle slot in the gate.
func TestSchedulerInteractiveReservation(t *testing.T) {
	s := NewScheduler(Config{InteractiveSlots: 2, BatchSlots: 2, BatchQueueDepth: 8})
	// Batch fills its own slots and borrows both idle interactive slots.
	var batch []*Ticket
	for i := 0; i < 4; i++ {
		batch = append(batch, admit(t, s, Batch, "flood"))
	}
	st := s.Stats()
	if st.Batch.Running != 4 || st.Batch.Borrowed != 2 {
		t.Fatalf("batch running/borrowed = %d/%d, want 4/2", st.Batch.Running, st.Batch.Borrowed)
	}

	// The reservation holds: both interactive admits succeed immediately
	// (transiently oversubscribing the gate) with zero queue wait.
	i1 := admit(t, s, Interactive, "seek-1")
	i2 := admit(t, s, Interactive, "seek-2")
	st = s.Stats()
	if st.Interactive.Running != 2 || st.Interactive.Queued != 0 {
		t.Fatalf("interactive running/queued = %d/%d, want 2/0", st.Interactive.Running, st.Interactive.Queued)
	}
	if st.Interactive.MaxQueueWaitMs != 0 {
		t.Errorf("interactive max queue wait = %v ms, want 0 (reserved-slot admission)", st.Interactive.MaxQueueWaitMs)
	}
	if st.Running != 6 {
		t.Errorf("total running = %d, want 6 (oversubscribed by the reservation)", st.Running)
	}

	// A third interactive query exceeds the reservation with no idle
	// capacity: it queues until the borrowers' oversubscription debt is
	// paid back.
	done := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(context.Background(), Interactive, "seek-3")
		if err != nil {
			t.Errorf("queued interactive: %v", err)
		}
		done <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Interactive.Queued == 1 })

	// Two batch releases only cancel the debt (6 → 4 running, capacity
	// 4); grants happen synchronously inside Done, so the queue length is
	// deterministic here.
	batch[0].Done(nil)
	batch[1].Done(nil)
	if st := s.Stats(); st.Interactive.Queued != 1 {
		t.Fatalf("interactive queued = %d while gate still at capacity, want 1", st.Interactive.Queued)
	}
	// The third release opens real capacity: the waiting interactive
	// query wins it (borrowing batch capacity, counted as such).
	batch[2].Done(nil)
	i3 := <-done
	if st := s.Stats(); st.Interactive.Borrowed != 1 {
		t.Errorf("interactive borrowed = %d, want 1", st.Interactive.Borrowed)
	}

	batch[3].Done(nil)
	i1.Done(nil)
	i2.Done(nil)
	i3.Done(nil)
	st = s.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
	if st.Interactive.Rejected != 0 {
		t.Errorf("interactive rejected = %d, want 0", st.Interactive.Rejected)
	}
}

// TestSchedulerBatchRespectsWaitingInteractive checks the borrow rule's
// other half: batch may not borrow idle interactive capacity while an
// interactive query waits in line.
func TestSchedulerBatchRespectsWaitingInteractive(t *testing.T) {
	s := NewScheduler(Config{InteractiveSlots: 1, BatchSlots: 1, BatchQueueDepth: 4, InteractiveQueueDepth: 4})
	i1 := admit(t, s, Interactive, "i1")
	b1 := admit(t, s, Batch, "b1")
	// Gate full. Queue one interactive, then one batch.
	ich := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(context.Background(), Interactive, "i2")
		if err != nil {
			t.Errorf("queued interactive: %v", err)
		}
		ich <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Interactive.Queued == 1 })
	bch := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(context.Background(), Batch, "b2")
		if err != nil {
			t.Errorf("queued batch: %v", err)
		}
		bch <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Batch.Queued == 1 })

	// Interactive releases its slot: the queued interactive takes it (the
	// queued batch may not borrow past a waiting interactive).
	i1.Done(nil)
	i2 := <-ich
	select {
	case <-bch:
		t.Fatal("batch borrowed the slot a queued interactive was waiting for")
	default:
	}
	b1.Done(nil)
	b2 := <-bch
	i2.Done(nil)
	b2.Done(nil)
}

// TestSchedulerCanceledQueuedBatchFreesQueueSlot is the regression test
// for vanished queued clients under the multi-queue scheduler: a
// context-canceled queued batch query must free its queue slot without
// ever consuming a running slot.
func TestSchedulerCanceledQueuedBatchFreesQueueSlot(t *testing.T) {
	s := NewScheduler(Config{InteractiveSlots: 1, BatchSlots: 1, BatchQueueDepth: 1})
	hold := admit(t, s, Interactive, "hold") // interactive slot busy: no borrowing
	b1 := admit(t, s, Batch, "running")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Batch, "vanishing")
		errCh <- err
	}()
	waitFor(t, func() bool { return s.Stats().Batch.Queued == 1 })

	// The queue is at its bound; a second queued batch query is shed.
	if _, err := s.Admit(context.Background(), Batch, "over"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full admit: err = %v, want ErrOverloaded", err)
	}

	// The queued client vanishes: its queue slot frees immediately.
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued admit: err = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Batch.Abandoned != 1 || st.Batch.Queued != 0 {
		t.Errorf("batch abandoned/queued = %d/%d, want 1/0", st.Batch.Abandoned, st.Batch.Queued)
	}
	if st.Batch.Running != 1 {
		t.Errorf("batch running = %d after abandon, want 1 (no running slot consumed)", st.Batch.Running)
	}

	// The freed queue slot is usable again without any release having
	// happened in between.
	admitted := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(context.Background(), Batch, "requeued")
		if err != nil {
			t.Errorf("requeued admit: %v", err)
		}
		admitted <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Batch.Queued == 1 })
	b1.Done(nil)
	tk := <-admitted
	tk.Done(nil)
	hold.Done(nil)

	st = s.Stats()
	if st.Batch.Admitted != 2 || st.Batch.Rejected != 1 || st.Batch.Abandoned != 1 {
		t.Errorf("batch admitted/rejected/abandoned = %d/%d/%d, want 2/1/1",
			st.Batch.Admitted, st.Batch.Rejected, st.Batch.Abandoned)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
}

// TestSchedulerAbandonedInteractiveUnblocksBatch: batch borrowing keys
// off the interactive queue length, so an abandoned interactive waiter
// must re-run the wake pass for queued batch work.
func TestSchedulerAbandonedInteractiveUnblocksBatch(t *testing.T) {
	s := NewScheduler(Config{InteractiveSlots: 2, BatchSlots: 1, InteractiveQueueDepth: 4, BatchQueueDepth: 4})
	i1 := admit(t, s, Interactive, "i1")
	i2 := admit(t, s, Interactive, "i2")
	b1 := admit(t, s, Batch, "b1")
	ctx, cancel := context.WithCancel(context.Background())
	ich := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Interactive, "i3")
		ich <- err
	}()
	waitFor(t, func() bool { return s.Stats().Interactive.Queued == 1 })
	bch := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(context.Background(), Batch, "b2")
		if err != nil {
			t.Errorf("queued batch: %v", err)
		}
		bch <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Batch.Queued == 1 })

	// While i3 waits, batch may not borrow. i3's client vanishes; once
	// i2 then frees an interactive slot, the batch waiter may borrow it —
	// the abandon must have re-run the wake pass's eligibility check.
	cancel()
	if err := <-ich; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled interactive: %v", err)
	}
	i2.Done(nil)
	b2 := <-bch
	for _, tk := range []*Ticket{i1, b1, b2} {
		tk.Done(nil)
	}
	if st := s.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
