package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// counterTask marks each shard it runs.
type counterTask struct {
	runs []atomic.Int64
}

func (t *counterTask) RunShard(shard int) { t.runs[shard].Add(1) }

func TestPoolRunsEveryShardOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 4, 7, 32} {
		task := &counterTask{runs: make([]atomic.Int64, n)}
		p.Run(n, task)
		for i := range task.runs {
			if got := task.runs[i].Load(); got != 1 {
				t.Fatalf("n=%d: shard %d ran %d times, want 1", n, i, got)
			}
		}
	}
}

func TestPoolConcurrentJobs(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				task := &counterTask{runs: make([]atomic.Int64, 5)}
				p.Run(5, task)
				for s := range task.runs {
					if task.runs[s].Load() != 1 {
						t.Errorf("shard %d not run exactly once", s)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Jobs != 16*20 {
		t.Errorf("jobs = %d, want %d", st.Jobs, 16*20)
	}
	if st.ShardsPool+st.ShardsInline != 16*20*5 {
		t.Errorf("shards = %d pool + %d inline, want %d total",
			st.ShardsPool, st.ShardsInline, 16*20*5)
	}
}

func TestPoolRunAfterCloseIsInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	task := &counterTask{runs: make([]atomic.Int64, 6)}
	p.Run(6, task)
	for i := range task.runs {
		if task.runs[i].Load() != 1 {
			t.Fatalf("shard %d not run after close", i)
		}
	}
	if st := p.Stats(); st.ShardsInline != 6 {
		t.Errorf("inline shards = %d, want 6", st.ShardsInline)
	}
}

func TestSchedulerAdmitBounds(t *testing.T) {
	s := NewScheduler(2, 1)
	ctx := context.Background()

	t1, err := s.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Admit(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}

	// Both slots taken: the next admit parks in the queue.
	admitted := make(chan *Ticket, 1)
	go func() {
		tk, err := s.Admit(ctx, "queued")
		if err != nil {
			t.Errorf("queued admit: %v", err)
		}
		admitted <- tk
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	// Queue full: immediate rejection.
	if _, err := s.Admit(ctx, "over"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit past queue bound: err = %v, want ErrOverloaded", err)
	}

	// Releasing a slot admits the queued request.
	t1.Done(nil)
	tk := <-admitted
	tk.AddWork(3, 100)
	tk.Done(nil)
	t2.Done(errors.New("boom"))

	st := s.Stats()
	if st.Admitted != 3 || st.Rejected != 1 {
		t.Errorf("admitted/rejected = %d/%d, want 3/1", st.Admitted, st.Rejected)
	}
	if st.Completed != 2 || st.Failed != 1 {
		t.Errorf("completed/failed = %d/%d, want 2/1", st.Completed, st.Failed)
	}
	if st.PagesScanned != 3 || st.RowsScanned != 100 {
		t.Errorf("pages/rows = %d/%d, want 3/100", st.PagesScanned, st.RowsScanned)
	}
	if len(st.Recent) != 3 {
		t.Errorf("recent = %d records, want 3", len(st.Recent))
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
}

func TestSchedulerAdmitContextCancel(t *testing.T) {
	s := NewScheduler(1, 4)
	tk, err := s.Admit(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, "waiter")
		errCh <- err
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued admit after cancel: err = %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Abandoned != 1 || st.Queued != 0 {
		t.Errorf("abandoned/queued = %d/%d, want 1/0", st.Abandoned, st.Queued)
	}
	tk.Done(nil)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
