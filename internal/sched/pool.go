// Package sched is the SkyServer's query scheduler: a persistent pool of
// scan workers (Pool) that replaces per-query goroutine fan-out with
// morsel-style shard dispatch onto DB-lifetime workers, and a
// workload-class admission controller (Scheduler) that bounds how many
// queries run and wait at once, so a §7-style traffic spike (the 20×
// television peak) degrades into orderly 503s instead of unbounded
// goroutine growth.
//
// Admission is split by Class: interactive point lookups (the Explorer's
// casual users) hold reserved running slots and dequeue with priority,
// while batch analytic scans run in their own bounded queue and may
// borrow idle capacity without ever starving the reservation — the DR13
// operations split between interactive and batch access paths, inside
// one process. See Scheduler for the exact weighted-slot rules.
//
// The package depends only on the standard library: storage dispatches
// scans through Pool, the web layer gates requests through Scheduler, and
// neither direction imports back into sched.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of parallel work: RunShard is invoked once per shard with
// shard indices 0..n-1 (n from Pool.Run), concurrently, from pool workers
// and from the submitting goroutine. Implementations pass a pointer so
// dispatch allocates nothing.
type Task interface {
	RunShard(shard int)
}

// job tracks one Run call's progress through the pool. Jobs are pooled:
// a steady-state Run allocates nothing.
type job struct {
	task Task
	next atomic.Int64 // next shard index to claim
	wg   sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// Pool is a fixed-size set of persistent worker goroutines. Workers live
// for the life of the pool (the life of the database's file group), so a
// parallel scan pays a channel send per shard instead of a goroutine
// spawn per worker per query.
type Pool struct {
	size  int
	tasks chan *job
	quit  chan struct{}

	mu     sync.RWMutex // guards closed against racing dispatch
	closed bool

	jobs         atomic.Int64 // Run calls with n > 1
	shardsPool   atomic.Int64 // shards executed by pool workers
	shardsInline atomic.Int64 // shards executed on the submitting goroutine
	busy         atomic.Int64 // workers currently inside RunShard
	panics       atomic.Int64 // shard panics recovered at the pool boundary
}

// DefaultPoolSize is the default worker count: enough to give every
// volume of a wide stripe its own scan worker (the Figure 15 experiment
// runs 12 disks) with headroom for concurrent queries, without scaling
// past what the host can run.
func DefaultPoolSize() int {
	n := 4 * runtime.NumCPU()
	if n < 16 {
		n = 16
	}
	return n
}

// NewPool starts size persistent workers (size <= 0 selects
// DefaultPoolSize).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = DefaultPoolSize()
	}
	p := &Pool{
		size:  size,
		tasks: make(chan *job, 4*size),
		quit:  make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

func (p *Pool) worker() {
	for {
		select {
		case j := <-p.tasks:
			p.runOne(j)
		case <-p.quit:
			// Drain work dispatched before the pool closed; Close
			// guarantees no further sends.
			for {
				select {
				case j := <-p.tasks:
					p.runOne(j)
				default:
					return
				}
			}
		}
	}
}

func (p *Pool) runOne(j *job) {
	shard := int(j.next.Add(1) - 1)
	p.busy.Add(1)
	p.runShard(j, shard)
	p.busy.Add(-1)
	p.shardsPool.Add(1)
}

// runShard executes one shard behind a recover barrier: a Task that lets a
// panic escape RunShard must not kill the persistent worker (every query in
// the process would lose its scan capacity) or strand Run's WaitGroup.
// Tasks that need the panic as an error recover it themselves (storage's
// scan job does); the pool only guarantees survival and counts the event.
func (p *Pool) runShard(j *job, shard int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
		j.wg.Done()
	}()
	j.task.RunShard(shard)
}

// Run executes t.RunShard(shard) for every shard in 0..n-1 and returns
// when all have finished. One shard always runs on the calling goroutine
// (the scan's own request handler is a worker too), so a saturated — or
// closed — pool degrades to inline execution instead of deadlocking;
// shards the dispatch channel cannot accept run inline as well.
func (p *Pool) Run(n int, t Task) {
	if n <= 1 {
		if n == 1 {
			t.RunShard(0)
		}
		return
	}
	j := jobPool.Get().(*job)
	j.task = t
	j.next.Store(0)
	j.wg.Add(n)
	dispatched := 0
	p.mu.RLock()
	if !p.closed {
		for i := 0; i < n-1; i++ {
			select {
			case p.tasks <- j:
				dispatched++
				continue
			default:
			}
			break
		}
	}
	p.mu.RUnlock()
	p.jobs.Add(1)
	for k := dispatched; k < n; k++ {
		shard := int(j.next.Add(1) - 1)
		p.runShard(j, shard)
		p.shardsInline.Add(1)
	}
	j.wg.Wait()
	j.task = nil
	jobPool.Put(j)
}

// Close stops the workers after they finish the work already dispatched.
// Run remains safe to call afterwards; it executes entirely inline.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
}

// PoolStats is a snapshot of pool activity for /x/sched and /x/health.
type PoolStats struct {
	Workers      int   `json:"workers"`
	Busy         int64 `json:"busy"`
	QueuedShards int   `json:"queuedShards"`
	Jobs         int64 `json:"jobs"`
	ShardsPool   int64 `json:"shardsPool"`
	ShardsInline int64 `json:"shardsInline"`

	// PanicsRecovered counts shard panics the pool absorbed instead of
	// crashing a worker.
	PanicsRecovered int64 `json:"panicsRecovered"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Workers:         p.size,
		Busy:            p.busy.Load(),
		QueuedShards:    len(p.tasks),
		Jobs:            p.jobs.Load(),
		ShardsPool:      p.shardsPool.Load(),
		ShardsInline:    p.shardsInline.Load(),
		PanicsRecovered: p.panics.Load(),
	}
}
