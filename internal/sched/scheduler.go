package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrOverloaded is returned by Admit when the arriving query's class has
// no free slot and its wait queue is full — the web layer translates it
// to 503 + Retry-After, the §7 answer to a 20× traffic spike: shed load
// predictably instead of collapsing. Use errors.Is against it; the
// concrete error names the class whose queue overflowed (and, for a
// per-user quota rejection, the user).
var ErrOverloaded = errors.New("sched: server overloaded, run queue full")

// overloadError is ErrOverloaded with the rejecting class attached, so a
// shed client is told which queue was full. A non-empty user marks a
// per-user quota rejection rather than a full global queue.
type overloadError struct {
	class Class
	user  string
}

func (e overloadError) Error() string {
	if e.user != "" {
		return fmt.Sprintf("sched: server overloaded, %s queue full for user %q", e.class, e.user)
	}
	return fmt.Sprintf("sched: server overloaded, %s queue full", e.class)
}

func (e overloadError) Is(target error) bool { return target == ErrOverloaded }

// Class is a workload class the scheduler queues separately: interactive
// point lookups (the Explorer's millions of casual users) versus batch
// analytic scans (astronomers sweeping the survey). The split is the DR13
// operations answer to the paper's central tension — both workloads share
// one database, but only one of them can tolerate queueing behind the
// other.
type Class uint8

// The workload classes. Interactive is the zero value.
const (
	// Interactive queries hold reserved slots and dequeue with priority;
	// they are never rejected while a reserved slot is free.
	Interactive Class = iota
	// Batch queries run in their own slots and may borrow idle capacity,
	// but never at the expense of waiting interactive queries. Within the
	// batch class, capacity is fair-shared across user identities (see
	// AdmitUser).
	Batch
	numClasses
)

// String returns "interactive" or "batch".
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// ParseClass maps the web layer's class-override parameter to a Class.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	}
	return Interactive, false
}

// DefaultUser is the identity batch admissions run under when the caller
// supplies none (anonymous traffic shares one fair-share queue).
const DefaultUser = "anon"

// maxTrackedUsers bounds the per-user accounting map: when a new identity
// would push past the bound, idle identities (nothing queued, nothing
// running) are pruned oldest-free-first and their counters forgotten. A
// returning pruned user simply starts a fresh queue.
const maxTrackedUsers = 256

// batchQuantum is the DRR quantum, in admission-cost units. Every
// admission currently costs one unit, so each ring visit grants exactly
// one query — pure round-robin across users — but the deficit plumbing
// is real DRR: a future cost model (estimated pages, say) only needs to
// change the charge.
const batchQuantum = 1

// Scheduler is the admission-control gate in front of query execution,
// split by workload class. Each class owns bounded wait queues and a
// configured number of running slots; the weighted-slot rules are:
//
//   - Interactive slots are a hard reservation: an interactive query is
//     admitted immediately whenever fewer than InteractiveSlots
//     interactive queries are running — even if batch borrowers have
//     transiently pushed total concurrency past the configured capacity.
//     An interactive query is therefore rejected (503) only when the
//     reservation is exhausted AND its queue is full.
//   - Interactive queries may also use idle batch capacity, and dequeue
//     with strict priority when any slot frees.
//   - Batch queries run in their own slots, and may borrow idle
//     interactive capacity only while no interactive query is waiting.
//     Borrowing risks transient oversubscription (bounded by
//     InteractiveSlots) instead of ever blocking the reservation.
//   - Within the batch class, each user identity owns a FIFO sub-queue
//     and freed batch capacity is dealt deficit-round-robin across the
//     identities with waiters — one analyst's 50-deep flood no longer
//     starves every other analyst, it only queues behind itself. A
//     per-user queue quota (Config.UserQueueQuota) additionally bounds
//     how much of the shared queue one identity may occupy.
//
// Per-query statistics (queue wait, execution time, pages and rows
// scanned) aggregate per class — and, for batch, per user — for the
// /api/v1/status/sched endpoint.
type Scheduler struct {
	mu      sync.Mutex
	slots   [numClasses]int
	depth   [numClasses]int
	running [numClasses]int

	// Interactive admission is one FIFO queue.
	iq []*waiter

	// Batch admission is fair-shared: users maps every tracked identity
	// to its sub-queue, ring holds the identities with waiters in
	// round-robin order, ringIdx is the next identity to serve, and
	// batchQueued counts queued batch waiters across all identities.
	users       map[string]*userQueue
	ring        []*userQueue
	ringIdx     int
	batchQueued int
	userQuota   int

	cls [numClasses]classCounters

	recent   []QueryRecord
	recentAt int
}

// userQueue is one batch identity's slice of the fair-share state: its
// FIFO of queued admissions, its DRR deficit, and its statistics (all
// guarded by Scheduler.mu).
type userQueue struct {
	user    string
	waiters []*waiter
	deficit int

	running   int
	admitted  int64
	rejected  int64
	abandoned int64
	completed int64
	failed    int64
}

// classCounters accumulates one class's admission statistics (all guarded
// by Scheduler.mu — admission is per query, not per batch, so a mutex
// costs nothing measurable).
type classCounters struct {
	admitted  int64
	borrowed  int64 // admissions beyond the class's own slots
	rejected  int64
	abandoned int64 // gave up waiting (context done in queue)
	completed int64
	failed    int64

	queueWaitNs    int64
	maxQueueWaitNs int64
	execNs         int64
	maxExecNs      int64
	pages          int64
	rows           int64
}

// waiter is one queued Admit call. granted flips under Scheduler.mu when
// a freed slot is handed to the waiter, which closes ready; a waiter that
// finds granted set while abandoning must release the slot it was given.
// uq is the batch identity the waiter queues under (nil for interactive).
type waiter struct {
	ready   chan struct{}
	granted bool
	uq      *userQueue
}

// DefaultInteractiveSlots and DefaultBatchSlots size the gate for a small
// public server: each class gets one slot per CPU (minimum 2), matching
// PR 4's single-class default of 2×NumCPU in total.
func DefaultInteractiveSlots() int {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	return n
}

// DefaultBatchSlots mirrors DefaultInteractiveSlots.
func DefaultBatchSlots() int { return DefaultInteractiveSlots() }

// DefaultQueueDepth is the per-class wait-queue bound: a burst parks in
// line while the class's running slots drain.
const DefaultQueueDepth = 64

// Config sizes a Scheduler. Zero values select the defaults.
type Config struct {
	// InteractiveSlots is the reserved interactive concurrency;
	// BatchSlots the batch concurrency. Total capacity is their sum.
	InteractiveSlots int
	BatchSlots       int
	// InteractiveQueueDepth / BatchQueueDepth bound each class's wait
	// queue; past the bound Admit rejects with ErrOverloaded.
	InteractiveQueueDepth int
	BatchQueueDepth       int
	// UserQueueQuota bounds how many queued batch admissions one user
	// identity may hold at once; past it AdmitUser rejects that user with
	// ErrOverloaded while other users keep queueing. 0 defaults to the
	// batch queue depth (no per-user bound beyond the shared one).
	UserQueueQuota int
}

// NewScheduler builds a per-class admission gate (see Scheduler for the
// weighted-slot and fair-share rules).
func NewScheduler(cfg Config) *Scheduler {
	s := &Scheduler{users: make(map[string]*userQueue)}
	s.slots[Interactive] = cfg.InteractiveSlots
	if s.slots[Interactive] <= 0 {
		s.slots[Interactive] = DefaultInteractiveSlots()
	}
	s.slots[Batch] = cfg.BatchSlots
	if s.slots[Batch] <= 0 {
		s.slots[Batch] = DefaultBatchSlots()
	}
	s.depth[Interactive] = cfg.InteractiveQueueDepth
	if s.depth[Interactive] <= 0 {
		s.depth[Interactive] = DefaultQueueDepth
	}
	s.depth[Batch] = cfg.BatchQueueDepth
	if s.depth[Batch] <= 0 {
		s.depth[Batch] = DefaultQueueDepth
	}
	s.userQuota = cfg.UserQueueQuota
	if s.userQuota <= 0 {
		s.userQuota = s.depth[Batch]
	}
	s.recent = make([]QueryRecord, 0, recentQueries)
	return s
}

// queuedLen reports the number of queued class-c waiters (mu held).
func (s *Scheduler) queuedLen(c Class) int {
	if c == Batch {
		return s.batchQueued
	}
	return len(s.iq)
}

// canRun reports whether a class-c query may start now (mu held).
func (s *Scheduler) canRun(c Class) bool {
	total := s.running[Interactive] + s.running[Batch]
	capacity := s.slots[Interactive] + s.slots[Batch]
	if c == Interactive {
		// Reserved slot free (guaranteed even when borrowers oversubscribed
		// the total), or any idle slot anywhere (priority use of idle batch
		// capacity).
		return s.running[Interactive] < s.slots[Interactive] || total < capacity
	}
	// Batch: own slot free, or borrow idle interactive capacity — but
	// never while an interactive query is waiting for it.
	return total < capacity &&
		(s.running[Batch] < s.slots[Batch] || len(s.iq) == 0)
}

// wake hands freed capacity to queued waiters, interactive first (mu
// held). After it returns, every non-empty queue's class fails canRun, so
// arrival order is preserved against new arrivals (FIFO within the
// interactive queue and within each batch user's sub-queue).
func (s *Scheduler) wake() {
	for {
		switch {
		case len(s.iq) > 0 && s.canRun(Interactive):
			s.grantInteractive()
		case s.batchQueued > 0 && s.canRun(Batch):
			s.grantBatch()
		default:
			return
		}
	}
}

// startRunning consumes one class-c running slot for an admission,
// counting a borrow when the class is past its own slots (mu held).
func (s *Scheduler) startRunning(c Class, uq *userQueue) {
	if s.running[c] >= s.slots[c] {
		s.cls[c].borrowed++
	}
	s.running[c]++
	if uq != nil {
		uq.running++
	}
}

// grantInteractive pops the head interactive waiter and hands it a
// running slot (mu held).
func (s *Scheduler) grantInteractive() {
	w := s.iq[0]
	s.iq = s.iq[1:]
	s.startRunning(Interactive, nil)
	w.granted = true
	close(w.ready)
}

// grantBatch hands one freed batch slot to the next user under deficit
// round-robin: the ring identity at ringIdx earns a quantum of credit,
// spends it on the head of its FIFO, and the turn passes on. A drained
// identity leaves the ring and forfeits its remaining deficit (standard
// DRR — credit never accumulates while idle). mu held; the caller
// guarantees batchQueued > 0, so the ring is non-empty and every ring
// member has waiters.
func (s *Scheduler) grantBatch() {
	if s.ringIdx >= len(s.ring) {
		s.ringIdx = 0
	}
	uq := s.ring[s.ringIdx]
	uq.deficit += batchQuantum
	if uq.deficit >= 1 && len(uq.waiters) > 0 {
		uq.deficit--
		w := uq.waiters[0]
		uq.waiters = uq.waiters[1:]
		s.batchQueued--
		s.startRunning(Batch, uq)
		w.granted = true
		close(w.ready)
	}
	if len(uq.waiters) == 0 {
		uq.deficit = 0
		s.ring = append(s.ring[:s.ringIdx], s.ring[s.ringIdx+1:]...)
		if s.ringIdx >= len(s.ring) {
			s.ringIdx = 0
		}
	} else {
		s.ringIdx = (s.ringIdx + 1) % len(s.ring)
	}
}

// dropFromRing removes a drained or abandoned identity from the ring,
// keeping ringIdx pointing at the same next-to-serve identity (mu held).
func (s *Scheduler) dropFromRing(uq *userQueue) {
	for i, q := range s.ring {
		if q == uq {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			if i < s.ringIdx {
				s.ringIdx--
			}
			if s.ringIdx >= len(s.ring) {
				s.ringIdx = 0
			}
			return
		}
	}
}

// userQueueFor returns (creating if needed) the sub-queue of a batch
// identity, pruning idle identities when the tracking map is full (mu
// held).
func (s *Scheduler) userQueueFor(user string) *userQueue {
	if uq, ok := s.users[user]; ok {
		return uq
	}
	if len(s.users) >= maxTrackedUsers {
		for k, u := range s.users {
			if u.running == 0 && len(u.waiters) == 0 {
				delete(s.users, k)
				if len(s.users) < maxTrackedUsers {
					break
				}
			}
		}
	}
	uq := &userQueue{user: user}
	s.users[user] = uq
	return uq
}

// release returns one class-c running slot and wakes eligible waiters
// (mu held).
func (s *Scheduler) release(c Class) {
	s.running[c]--
	s.wake()
}

// Ticket is one admitted query's run token. Release it with Done exactly
// once.
type Ticket struct {
	s        *Scheduler
	class    Class
	uq       *userQueue // batch fair-share accounting; nil for interactive
	enqueued time.Time
	admitted time.Time
	label    string
	pages    int64
	rows     int64
}

// Class returns the workload class the query was admitted under.
func (t *Ticket) Class() Class { return t.class }

// String renders the ticket for logs: its label and class.
func (t *Ticket) String() string { return t.label + " (" + t.class.String() + ")" }

// Admit asks for a class run slot under the DefaultUser identity — see
// AdmitUser for the queueing rules. Callers with a real user identity
// (the jobs service, the SQL endpoints) should prefer AdmitUser so batch
// fair share can tell analysts apart.
func (s *Scheduler) Admit(ctx context.Context, class Class, label string) (*Ticket, error) {
	return s.AdmitUser(ctx, class, label, "")
}

// AdmitUser asks for a class run slot on behalf of a user identity:
// immediately when the class's weighted-slot rules allow (see Scheduler),
// otherwise by waiting in the class's queue — for batch, the user's own
// FIFO sub-queue, dequeued deficit-round-robin across users. A full
// shared queue, or a user already holding UserQueueQuota queued batch
// admissions, rejects with ErrOverloaded at once; a context cancelled
// while waiting abandons the queue slot without ever consuming a running
// slot. An empty user maps to DefaultUser; interactive admissions ignore
// the identity. label tags the query in the recent-queries report.
func (s *Scheduler) AdmitUser(ctx context.Context, class Class, label, user string) (*Ticket, error) {
	if user == "" {
		user = DefaultUser
	}
	enq := time.Now()
	s.mu.Lock()
	var uq *userQueue
	if class == Batch {
		uq = s.userQueueFor(user)
	}
	if s.canRun(class) {
		s.startRunning(class, uq)
		s.cls[class].admitted++
		if uq != nil {
			uq.admitted++
		}
		s.mu.Unlock()
		return &Ticket{s: s, class: class, uq: uq, enqueued: enq, admitted: enq, label: label}, nil
	}
	if s.queuedLen(class) >= s.depth[class] {
		s.cls[class].rejected++
		if uq != nil {
			uq.rejected++
		}
		s.mu.Unlock()
		return nil, overloadError{class: class}
	}
	if uq != nil && len(uq.waiters) >= s.userQuota {
		s.cls[class].rejected++
		uq.rejected++
		s.mu.Unlock()
		return nil, overloadError{class: class, user: user}
	}
	w := &waiter{ready: make(chan struct{}), uq: uq}
	if class == Batch {
		if len(uq.waiters) == 0 {
			s.ring = append(s.ring, uq)
		}
		uq.waiters = append(uq.waiters, w)
		s.batchQueued++
	} else {
		s.iq = append(s.iq, w)
	}
	s.mu.Unlock()

	select {
	case <-w.ready:
		// The granter already moved us to running.
		now := time.Now()
		wait := now.Sub(enq).Nanoseconds()
		s.mu.Lock()
		c := &s.cls[class]
		c.admitted++
		if uq != nil {
			uq.admitted++
		}
		c.queueWaitNs += wait
		if wait > c.maxQueueWaitNs {
			c.maxQueueWaitNs = wait
		}
		s.mu.Unlock()
		return &Ticket{s: s, class: class, uq: uq, enqueued: enq, admitted: now, label: label}, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Lost the race: a slot was granted concurrently with the
			// cancellation. Nobody will run, so put the slot back.
			s.cls[class].abandoned++
			if uq != nil {
				uq.abandoned++
				uq.running--
			}
			s.release(class)
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		// Still queued: vacate the queue slot. No running slot was ever
		// consumed. Batch borrowing keys off interactive queue length, so
		// an abandoned interactive waiter may unblock a batch waiter.
		if class == Batch {
			for i, q := range uq.waiters {
				if q == w {
					uq.waiters = append(uq.waiters[:i], uq.waiters[i+1:]...)
					break
				}
			}
			s.batchQueued--
			if len(uq.waiters) == 0 {
				uq.deficit = 0
				s.dropFromRing(uq)
			}
		} else {
			for i, q := range s.iq {
				if q == w {
					s.iq = append(s.iq[:i], s.iq[i+1:]...)
					break
				}
			}
		}
		s.cls[class].abandoned++
		if uq != nil {
			uq.abandoned++
		}
		s.wake()
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// AddWork accumulates one execution's scan work into the ticket (called
// once per statement the handler ran).
func (t *Ticket) AddWork(pages, rows int64) {
	if t == nil {
		return
	}
	t.pages += pages
	t.rows += rows
}

// Done releases the run slot and records the query's statistics. err is
// the query's outcome (nil for success).
func (t *Ticket) Done(err error) {
	if t == nil || t.s == nil {
		return
	}
	s := t.s
	t.s = nil
	exec := time.Since(t.admitted).Nanoseconds()
	rec := QueryRecord{
		Label:       t.label,
		Class:       t.class.String(),
		QueueWaitMs: float64(t.admitted.Sub(t.enqueued).Nanoseconds()) / 1e6,
		ExecMs:      float64(exec) / 1e6,
		Pages:       t.pages,
		Rows:        t.rows,
	}
	if t.uq != nil {
		rec.User = t.uq.user
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.mu.Lock()
	c := &s.cls[t.class]
	c.execNs += exec
	if exec > c.maxExecNs {
		c.maxExecNs = exec
	}
	c.pages += t.pages
	c.rows += t.rows
	if err != nil {
		c.failed++
	} else {
		c.completed++
	}
	if t.uq != nil {
		t.uq.running--
		if err != nil {
			t.uq.failed++
		} else {
			t.uq.completed++
		}
	}
	if len(s.recent) < recentQueries {
		s.recent = append(s.recent, rec)
	} else {
		s.recent[s.recentAt] = rec
	}
	s.recentAt = (s.recentAt + 1) % recentQueries
	s.release(t.class)
	s.mu.Unlock()
}

// recentQueries bounds the per-query ring in the stats report.
const recentQueries = 32

// QueryRecord is one finished query in the recent ring.
type QueryRecord struct {
	Label       string  `json:"label"`
	Class       string  `json:"class"`
	User        string  `json:"user,omitempty"`
	QueueWaitMs float64 `json:"queueWaitMs"`
	ExecMs      float64 `json:"execMs"`
	Pages       int64   `json:"pages"`
	Rows        int64   `json:"rows"`
	Error       string  `json:"error,omitempty"`
}

// UserStats is one batch identity's slice of the fair-share statistics:
// its queue occupancy and admission outcomes. Identities are pruned from
// the report once idle and crowded out (see maxTrackedUsers).
type UserStats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Abandoned int64 `json:"abandoned"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
}

// ClassStats is one workload class's slice of the /api/v1/status/sched
// snapshot.
type ClassStats struct {
	Slots      int `json:"slots"`
	QueueDepth int `json:"queueDepth"`
	Running    int `json:"running"`
	Queued     int `json:"queued"`

	Admitted  int64 `json:"admitted"`
	Borrowed  int64 `json:"borrowed"`
	Rejected  int64 `json:"rejected"`
	Abandoned int64 `json:"abandoned"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	AvgQueueWaitMs float64 `json:"avgQueueWaitMs"`
	MaxQueueWaitMs float64 `json:"maxQueueWaitMs"`
	AvgExecMs      float64 `json:"avgExecMs"`
	MaxExecMs      float64 `json:"maxExecMs"`
	PagesScanned   int64   `json:"pagesScanned"`
	RowsScanned    int64   `json:"rowsScanned"`

	// UserQueueQuota and Users describe batch fair share (empty for the
	// interactive class, whose admissions carry no identity).
	UserQueueQuota int                  `json:"userQueueQuota,omitempty"`
	Users          map[string]UserStats `json:"users,omitempty"`
}

// Stats is the /api/v1/status/sched snapshot: the per-class breakdown
// plus totals summed across classes.
type Stats struct {
	Interactive ClassStats `json:"interactive"`
	Batch       ClassStats `json:"batch"`

	TotalSlots int   `json:"totalSlots"`
	Running    int   `json:"running"`
	Queued     int64 `json:"queued"`

	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Abandoned int64 `json:"abandoned"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	PagesScanned int64 `json:"pagesScanned"`
	RowsScanned  int64 `json:"rowsScanned"`

	Recent []QueryRecord `json:"recent"`
}

// classStats snapshots one class (mu held).
func (s *Scheduler) classStats(c Class) ClassStats {
	cc := &s.cls[c]
	st := ClassStats{
		Slots:          s.slots[c],
		QueueDepth:     s.depth[c],
		Running:        s.running[c],
		Queued:         s.queuedLen(c),
		Admitted:       cc.admitted,
		Borrowed:       cc.borrowed,
		Rejected:       cc.rejected,
		Abandoned:      cc.abandoned,
		Completed:      cc.completed,
		Failed:         cc.failed,
		MaxQueueWaitMs: float64(cc.maxQueueWaitNs) / 1e6,
		MaxExecMs:      float64(cc.maxExecNs) / 1e6,
		PagesScanned:   cc.pages,
		RowsScanned:    cc.rows,
	}
	if cc.admitted > 0 {
		st.AvgQueueWaitMs = float64(cc.queueWaitNs) / 1e6 / float64(cc.admitted)
	}
	if n := cc.completed + cc.failed; n > 0 {
		st.AvgExecMs = float64(cc.execNs) / 1e6 / float64(n)
	}
	if c == Batch {
		st.UserQueueQuota = s.userQuota
		st.Users = make(map[string]UserStats, len(s.users))
		for name, uq := range s.users {
			st.Users[name] = UserStats{
				Queued:    len(uq.waiters),
				Running:   uq.running,
				Admitted:  uq.admitted,
				Rejected:  uq.rejected,
				Abandoned: uq.abandoned,
				Completed: uq.completed,
				Failed:    uq.failed,
			}
		}
	}
	return st
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Interactive: s.classStats(Interactive),
		Batch:       s.classStats(Batch),
		TotalSlots:  s.slots[Interactive] + s.slots[Batch],
	}
	for _, c := range []*ClassStats{&st.Interactive, &st.Batch} {
		st.Running += c.Running
		st.Queued += int64(c.Queued)
		st.Admitted += c.Admitted
		st.Rejected += c.Rejected
		st.Abandoned += c.Abandoned
		st.Completed += c.Completed
		st.Failed += c.Failed
		st.PagesScanned += c.PagesScanned
		st.RowsScanned += c.RowsScanned
	}
	st.Recent = append(st.Recent, s.recent...)
	return st
}
