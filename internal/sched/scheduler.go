package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Admit when the run queue is full — the web
// layer translates it to 503 + Retry-After, the §7 answer to a 20×
// traffic spike: shed load predictably instead of collapsing.
var ErrOverloaded = errors.New("sched: server overloaded, run queue full")

// Scheduler is the admission-control gate in front of query execution: at
// most MaxConcurrent queries run at once, at most QueueDepth more wait in
// line, and everything beyond that is rejected immediately. Per-query
// statistics (queue wait, execution time, pages and rows scanned) are
// aggregated for the /x/sched endpoint.
type Scheduler struct {
	maxConcurrent int
	queueDepth    int
	slots         chan struct{}
	queued        atomic.Int64

	admitted  atomic.Int64
	rejected  atomic.Int64
	abandoned atomic.Int64 // gave up waiting (context done in queue)
	completed atomic.Int64
	failed    atomic.Int64

	queueWaitNs    atomic.Int64
	maxQueueWaitNs atomic.Int64
	execNs         atomic.Int64
	maxExecNs      atomic.Int64
	pages          atomic.Int64
	rows           atomic.Int64

	recentMu sync.Mutex
	recent   []QueryRecord
	recentAt int
}

// DefaultMaxConcurrent and DefaultQueueDepth size the gate for a small
// public server: a handful of queries execute (each may fan out scan
// shards onto the pool) while a burst parks in the queue.
func DefaultMaxConcurrent() int {
	n := 2 * runtime.NumCPU()
	if n < 4 {
		n = 4
	}
	return n
}

const DefaultQueueDepth = 64

// NewScheduler builds a gate admitting maxConcurrent queries with a wait
// queue of queueDepth (<= 0 selects the defaults).
func NewScheduler(maxConcurrent, queueDepth int) *Scheduler {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent()
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	s := &Scheduler{
		maxConcurrent: maxConcurrent,
		queueDepth:    queueDepth,
		slots:         make(chan struct{}, maxConcurrent),
		recent:        make([]QueryRecord, 0, recentQueries),
	}
	for i := 0; i < maxConcurrent; i++ {
		s.slots <- struct{}{}
	}
	return s
}

// Ticket is one admitted query's run token. Release it with Done exactly
// once.
type Ticket struct {
	s        *Scheduler
	enqueued time.Time
	admitted time.Time
	label    string
	pages    int64
	rows     int64
}

// Admit blocks until a run slot is free, the context is done, or the
// queue bound is exceeded (ErrOverloaded, immediately). label tags the
// query in the recent-queries report.
func (s *Scheduler) Admit(ctx context.Context, label string) (*Ticket, error) {
	enq := time.Now()
	select {
	case <-s.slots:
	default:
		if s.queued.Add(1) > int64(s.queueDepth) {
			s.queued.Add(-1)
			s.rejected.Add(1)
			return nil, ErrOverloaded
		}
		select {
		case <-s.slots:
			s.queued.Add(-1)
		case <-ctx.Done():
			s.queued.Add(-1)
			s.abandoned.Add(1)
			return nil, ctx.Err()
		}
	}
	now := time.Now()
	wait := now.Sub(enq).Nanoseconds()
	s.admitted.Add(1)
	s.queueWaitNs.Add(wait)
	storeMax(&s.maxQueueWaitNs, wait)
	return &Ticket{s: s, enqueued: enq, admitted: now, label: label}, nil
}

// AddWork accumulates one execution's scan work into the ticket (called
// once per statement the handler ran).
func (t *Ticket) AddWork(pages, rows int64) {
	if t == nil {
		return
	}
	t.pages += pages
	t.rows += rows
}

// Done releases the run slot and records the query's statistics. err is
// the query's outcome (nil for success).
func (t *Ticket) Done(err error) {
	if t == nil || t.s == nil {
		return
	}
	s := t.s
	t.s = nil
	exec := time.Since(t.admitted).Nanoseconds()
	s.execNs.Add(exec)
	storeMax(&s.maxExecNs, exec)
	s.pages.Add(t.pages)
	s.rows.Add(t.rows)
	if err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}
	rec := QueryRecord{
		Label:       t.label,
		QueueWaitMs: float64(t.admitted.Sub(t.enqueued).Nanoseconds()) / 1e6,
		ExecMs:      float64(exec) / 1e6,
		Pages:       t.pages,
		Rows:        t.rows,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.recentMu.Lock()
	if len(s.recent) < recentQueries {
		s.recent = append(s.recent, rec)
	} else {
		s.recent[s.recentAt] = rec
	}
	s.recentAt = (s.recentAt + 1) % recentQueries
	s.recentMu.Unlock()
	s.slots <- struct{}{}
}

// recentQueries bounds the per-query ring in the stats report.
const recentQueries = 32

// QueryRecord is one finished query in the recent ring.
type QueryRecord struct {
	Label       string  `json:"label"`
	QueueWaitMs float64 `json:"queueWaitMs"`
	ExecMs      float64 `json:"execMs"`
	Pages       int64   `json:"pages"`
	Rows        int64   `json:"rows"`
	Error       string  `json:"error,omitempty"`
}

// Stats is the /x/sched snapshot.
type Stats struct {
	MaxConcurrent int   `json:"maxConcurrent"`
	QueueDepth    int   `json:"queueDepth"`
	Running       int   `json:"running"`
	Queued        int64 `json:"queued"`

	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Abandoned int64 `json:"abandoned"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	AvgQueueWaitMs float64 `json:"avgQueueWaitMs"`
	MaxQueueWaitMs float64 `json:"maxQueueWaitMs"`
	AvgExecMs      float64 `json:"avgExecMs"`
	MaxExecMs      float64 `json:"maxExecMs"`
	PagesScanned   int64   `json:"pagesScanned"`
	RowsScanned    int64   `json:"rowsScanned"`

	Recent []QueryRecord `json:"recent"`
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		MaxConcurrent:  s.maxConcurrent,
		QueueDepth:     s.queueDepth,
		Running:        s.maxConcurrent - len(s.slots),
		Queued:         s.queued.Load(),
		Admitted:       s.admitted.Load(),
		Rejected:       s.rejected.Load(),
		Abandoned:      s.abandoned.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		MaxQueueWaitMs: float64(s.maxQueueWaitNs.Load()) / 1e6,
		MaxExecMs:      float64(s.maxExecNs.Load()) / 1e6,
		PagesScanned:   s.pages.Load(),
		RowsScanned:    s.rows.Load(),
	}
	if n := st.Admitted; n > 0 {
		st.AvgQueueWaitMs = float64(s.queueWaitNs.Load()) / 1e6 / float64(n)
	}
	if n := st.Completed + st.Failed; n > 0 {
		st.AvgExecMs = float64(s.execNs.Load()) / 1e6 / float64(n)
	}
	s.recentMu.Lock()
	st.Recent = append(st.Recent, s.recent...)
	s.recentMu.Unlock()
	return st
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
