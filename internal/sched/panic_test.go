package sched

import (
	"sync/atomic"
	"testing"
)

// panicTask panics on one shard and counts the rest.
type panicTask struct {
	panicShard int
	ran        atomic.Int64
}

func (t *panicTask) RunShard(shard int) {
	if shard == t.panicShard {
		panic("poisoned shard")
	}
	t.ran.Add(1)
}

func TestPoolRecoversShardPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	const shards = 8
	task := &panicTask{panicShard: 3}
	p.Run(shards, task) // must return (no stranded WaitGroup) and not crash

	if got := task.ran.Load(); got != shards-1 {
		t.Fatalf("shards run = %d, want %d", got, shards-1)
	}
	if got := p.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}

	// The pool still works: all workers survived.
	task2 := &panicTask{panicShard: -1}
	p.Run(shards, task2)
	if got := task2.ran.Load(); got != shards {
		t.Fatalf("shards run after panic = %d, want %d", got, shards)
	}
}

// TestPoolRecoversInlinePanic drives the inline path: a closed pool runs
// every shard on the submitting goroutine, and a panic there must not
// escape Run or strand the job.
func TestPoolRecoversInlinePanic(t *testing.T) {
	p := NewPool(2)
	p.Close()

	task := &panicTask{panicShard: 0}
	p.Run(4, task)
	if got := task.ran.Load(); got != 3 {
		t.Fatalf("shards run = %d, want 3", got)
	}
	if got := p.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
}
