package sched

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// fairFixture plugs the gate so batch admissions queue deterministically:
// the single interactive slot is held (no borrowable capacity) and the
// single batch slot is occupied by a "plug" ticket owned by plugUser.
type fairFixture struct {
	s    *Scheduler
	hold *Ticket // interactive holder
	plug *Ticket // batch slot occupant
	got  chan grantRec
}

type grantRec struct {
	label string
	tk    *Ticket
}

func newFairFixture(t *testing.T, cfg Config, plugUser string) *fairFixture {
	t.Helper()
	f := &fairFixture{s: NewScheduler(cfg), got: make(chan grantRec, 64)}
	f.hold = admit(t, f.s, Interactive, "hold")
	plug, err := f.s.AdmitUser(context.Background(), Batch, "plug", plugUser)
	if err != nil {
		t.Fatalf("plug admit: %v", err)
	}
	f.plug = plug
	return f
}

// enqueue parks one batch admission for user in the queue and waits until
// the scheduler has registered it, so arrival order is deterministic.
func (f *fairFixture) enqueue(t *testing.T, label, user string) {
	t.Helper()
	before := f.s.Stats().Batch.Queued
	go func() {
		tk, err := f.s.AdmitUser(context.Background(), Batch, label, user)
		if err != nil {
			t.Errorf("queued admit %s: %v", label, err)
			return
		}
		f.got <- grantRec{label, tk}
	}()
	waitFor(t, func() bool { return f.s.Stats().Batch.Queued == before+1 })
}

// drain releases the given ticket and collects the grant it triggers,
// repeating until the queue is empty; it returns the grant order.
func (f *fairFixture) drain(t *testing.T, n int) []string {
	t.Helper()
	var order []string
	cur := f.plug
	for i := 0; i < n; i++ {
		cur.Done(nil)
		g := <-f.got
		order = append(order, g.label)
		cur = g.tk
	}
	cur.Done(nil)
	f.hold.Done(nil)
	return order
}

// TestSchedulerBatchFairShareRoundRobin is the fairness core: with one
// user's backlog queued ahead, later arrivals from other users are
// granted in round-robin turns, not behind the whole backlog.
func TestSchedulerBatchFairShareRoundRobin(t *testing.T) {
	f := newFairFixture(t, Config{InteractiveSlots: 1, BatchSlots: 1, BatchQueueDepth: 16}, "alice")
	// Arrival order: alice's 3-deep backlog first, then bob and carol.
	f.enqueue(t, "a1", "alice")
	f.enqueue(t, "a2", "alice")
	f.enqueue(t, "a3", "alice")
	f.enqueue(t, "b1", "bob")
	f.enqueue(t, "c1", "carol")

	// Queue occupancy is visible per user before anything drains.
	st := f.s.Stats()
	if u := st.Batch.Users["alice"]; u.Queued != 3 || u.Running != 1 {
		t.Errorf("alice queued/running = %d/%d, want 3/1", u.Queued, u.Running)
	}
	if u := st.Batch.Users["bob"]; u.Queued != 1 {
		t.Errorf("bob queued = %d, want 1", u.Queued)
	}

	order := f.drain(t, 5)
	want := []string{"a1", "b1", "c1", "a2", "a3"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("grant order = %v, want %v (round-robin across users)", order, want)
	}

	st = f.s.Stats()
	if u := st.Batch.Users["alice"]; u.Admitted != 4 || u.Completed != 4 || u.Queued != 0 || u.Running != 0 {
		t.Errorf("alice stats = %+v, want 4 admitted / 4 completed, all drained", u)
	}
	if u := st.Batch.Users["bob"]; u.Admitted != 1 || u.Completed != 1 {
		t.Errorf("bob stats = %+v, want 1 admitted / 1 completed", u)
	}
	if st.Batch.UserQueueQuota != 16 {
		t.Errorf("user quota = %d, want batch queue depth 16 by default", st.Batch.UserQueueQuota)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
}

// TestSchedulerPerUserQueueQuota: one user may not occupy more than
// UserQueueQuota queue slots; other users keep queueing past that user's
// rejection, and the rejection error names the user.
func TestSchedulerPerUserQueueQuota(t *testing.T) {
	f := newFairFixture(t, Config{
		InteractiveSlots: 1, BatchSlots: 1, BatchQueueDepth: 8, UserQueueQuota: 2,
	}, "alice")
	f.enqueue(t, "a1", "alice")
	f.enqueue(t, "a2", "alice")

	_, err := f.s.AdmitUser(context.Background(), Batch, "a3", "alice")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-quota admit: err = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "alice") {
		t.Errorf("quota rejection %q does not name the user", err)
	}

	// The shared queue still has room: bob queues fine.
	f.enqueue(t, "b1", "bob")

	st := f.s.Stats()
	if u := st.Batch.Users["alice"]; u.Rejected != 1 || u.Queued != 2 {
		t.Errorf("alice rejected/queued = %d/%d, want 1/2", u.Rejected, u.Queued)
	}
	if st.Batch.Rejected != 1 {
		t.Errorf("batch rejected = %d, want 1", st.Batch.Rejected)
	}

	order := f.drain(t, 3)
	want := []string{"a1", "b1", "a2"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("grant order = %v, want %v", order, want)
	}
}

// TestSchedulerFairShareAbandon: a queued waiter whose context is
// canceled leaves its user's sub-queue (and, when that empties the
// sub-queue, the round-robin ring) without corrupting the grant rotation.
func TestSchedulerFairShareAbandon(t *testing.T) {
	f := newFairFixture(t, Config{InteractiveSlots: 1, BatchSlots: 1, BatchQueueDepth: 16}, "alice")
	f.enqueue(t, "a1", "alice")
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	before := f.s.Stats().Batch.Queued
	go func() {
		_, err := f.s.AdmitUser(ctx, Batch, "b1", "bob")
		errCh <- err
	}()
	waitFor(t, func() bool { return f.s.Stats().Batch.Queued == before+1 })
	f.enqueue(t, "c1", "carol")
	f.enqueue(t, "a2", "alice")

	// Bob's only queued admission vanishes: bob leaves the ring.
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued admit: err = %v, want context.Canceled", err)
	}
	st := f.s.Stats()
	if u := st.Batch.Users["bob"]; u.Abandoned != 1 || u.Queued != 0 {
		t.Errorf("bob abandoned/queued = %d/%d, want 1/0", u.Abandoned, u.Queued)
	}

	order := f.drain(t, 3)
	want := []string{"a1", "c1", "a2"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Fatalf("grant order = %v, want %v (rotation intact after abandon)", order, want)
	}
}

// TestSchedulerAnonIdentity: Admit (no user) and an empty user both run
// under the DefaultUser identity in the fair-share accounting.
func TestSchedulerAnonIdentity(t *testing.T) {
	s := NewScheduler(Config{InteractiveSlots: 1, BatchSlots: 2, BatchQueueDepth: 4})
	b1 := admit(t, s, Batch, "plain")
	b2, err := s.AdmitUser(context.Background(), Batch, "empty-user", "")
	if err != nil {
		t.Fatalf("empty-user admit: %v", err)
	}
	st := s.Stats()
	if u := st.Batch.Users[DefaultUser]; u.Running != 2 || u.Admitted != 2 {
		t.Errorf("%s running/admitted = %d/%d, want 2/2", DefaultUser, u.Running, u.Admitted)
	}
	b1.Done(nil)
	b2.Done(errors.New("boom"))
	st = s.Stats()
	if u := st.Batch.Users[DefaultUser]; u.Completed != 1 || u.Failed != 1 {
		t.Errorf("%s completed/failed = %d/%d, want 1/1", DefaultUser, u.Completed, u.Failed)
	}
}
