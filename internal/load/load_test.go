package load

import (
	"io"
	"os"
	"strings"
	"sync"
	"testing"

	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// Q1 is the paper's Query 1, verbatim from §11 (modulo the ## temp table
// name, which our session also supports).
const q1SQL = `
declare @saturated bigint;
set @saturated = dbo.fPhotoFlags('saturated');
select G.objID, GN.distance
into ##results
from Galaxy as G
join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID
where (G.flags & @saturated) = 0
order by distance`

// Q15A is the paper's asteroid query, verbatim from §11.
const q15aSQL = `
select objID,
       sqrt(rowv*rowv+colv*colv) as velocity,
       dbo.fGetUrlExpId(objID)   as Url
into ##results
from PhotoObj
where (rowv*rowv+colv*colv) between 50 and 1000
and rowv >= 0 and colv >= 0`

// Q15B is the paper's fast-mover (NEO) pair query, verbatim from §11.
const q15bSQL = `
Select r.objID as rId, g.objId as gId,
       dbo.fGetUrlExpId(r.objID) as rURL,
       dbo.fGetUrlExpId(g.objID) as gURL
from   PhotoObj r, PhotoObj g
where  r.run = g.run and r.camcol=g.camcol
  and abs(g.field-r.field) <= 1
  and ((power(r.q_r,2) + power(r.u_r,2)) >
                0.111111 ) -- q/u is ellipticity
  -- the red selection criteria
  and r.fiberMag_r between 6 and 22
  and r.fiberMag_r < r.fiberMag_u
  and r.fiberMag_r < r.fiberMag_g
  and r.fiberMag_r < r.fiberMag_i
  and r.fiberMag_r < r.fiberMag_z
  and r.parentID=0
  and r.isoA_r/r.isoB_r > 1.5
  and r.isoA_r > 2.0
  -- the green selection criteria
  and ((power(g.q_g,2) + power(g.u_g,2)) >
                 0.111111 ) -- q/u is ellipticity
  and g.fiberMag_g between 6 and 22
  and g.fiberMag_g < g.fiberMag_u
  and g.fiberMag_g < g.fiberMag_r
  and g.fiberMag_g < g.fiberMag_i
  and g.fiberMag_g < g.fiberMag_z
  and g.parentID=0
  and g.isoA_g/g.isoB_g > 1.5
  and g.isoA_g > 2.0
-- the match-up of the pair
--(note acos(x) ~ x for x~1)
  and sqrt(power(r.cx-g.cx,2)
     +power(r.cy-g.cy,2) +power(r.cz-g.cz,2))*
          (180*60/pi()) < 4.0
  and abs(r.fiberMag_r-g.fiberMag_g)< 2.0`

var (
	sharedOnce  sync.Once
	sharedSDB   *schema.SkyDB
	sharedStats *pipeline.Stats
	sharedErr   error
)

// sharedSurvey loads one small survey for all read-only tests in this
// package (building it per test would dominate the suite's runtime).
func sharedSurvey(t *testing.T) (*schema.SkyDB, *pipeline.Stats) {
	t.Helper()
	sharedOnce.Do(func() {
		fg := storage.NewMemFileGroup(4, 4096)
		sharedSDB, sharedErr = schema.Build(fg)
		if sharedErr != nil {
			return
		}
		l := New(sharedSDB)
		sharedStats, sharedErr = l.LoadSurvey(pipeline.Config{Scale: 1.0 / 2000})
	})
	if sharedErr != nil {
		t.Fatalf("shared survey: %v", sharedErr)
	}
	return sharedSDB, sharedStats
}

func TestLoadSurveyCounts(t *testing.T) {
	sdb, stats := sharedSurvey(t)
	if stats.Truth.Objects == 0 || int(sdb.PhotoObj.Rows()) != stats.Truth.Objects {
		t.Errorf("PhotoObj rows = %d, generator reported %d", sdb.PhotoObj.Rows(), stats.Truth.Objects)
	}
	// Table 1 structural ratios.
	if sdb.Profile.Rows() != sdb.PhotoObj.Rows() {
		t.Errorf("Profile rows %d != PhotoObj rows %d", sdb.Profile.Rows(), sdb.PhotoObj.Rows())
	}
	frames := float64(sdb.Frame.Rows())
	fields := float64(sdb.Field.Rows())
	if frames/fields < 4.5 || frames/fields > 5.5 {
		t.Errorf("Frame/Field = %.2f, want ≈5", frames/fields)
	}
	lines := float64(sdb.SpecLine.Rows())
	specs := float64(sdb.SpecObj.Rows())
	if lines/specs < 24 || lines/specs > 30 {
		t.Errorf("SpecLine/SpecObj = %.1f, want ≈27", lines/specs)
	}
	if xc := float64(sdb.XCRedShift.Rows()) / specs; xc != 30 {
		t.Errorf("xcRedShift/SpecObj = %.1f, want 30", xc)
	}
	el := float64(sdb.ELRedShift.Rows()) / specs
	if el < 0.7 || el > 0.9 {
		t.Errorf("elRedShift fraction = %.2f, want ≈0.8", el)
	}
	// ~80% of photo objects are primary (§9).
	prim := float64(stats.Truth.Primaries) / float64(stats.Truth.Objects)
	if prim < 0.75 || prim > 0.92 {
		t.Errorf("primary fraction = %.2f, want ≈0.8", prim)
	}
}

func TestQuery1Verbatim(t *testing.T) {
	sdb, stats := sharedSurvey(t)
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec(q1SQL, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("Q1: %v", err)
	}
	if len(res.Rows) != stats.Truth.Q1Galaxies {
		t.Fatalf("Q1 returned %d galaxies, planted %d (paper: 19)", len(res.Rows), stats.Truth.Q1Galaxies)
	}
	if stats.Truth.Q1Galaxies != 19 {
		t.Errorf("planted Q1 truth = %d, want the paper's 19", stats.Truth.Q1Galaxies)
	}
	// Sorted ascending by distance, all within 1 arcmin.
	for i, r := range res.Rows {
		if r[1].F > 1.0 {
			t.Errorf("row %d at distance %.3f' > 1'", i, r[1].F)
		}
		if i > 0 && r[1].F < res.Rows[i-1][1].F {
			t.Errorf("distance not ascending at row %d", i)
		}
	}
	// Plan shape (Figure 10): TVF outer, PK probe inner, then sort.
	if !strings.Contains(res.Plan, "TableValuedFunction(fGetNearbyObjEq") {
		t.Errorf("Q1 plan missing spatial TVF:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "NestedLoopJoin(probe PhotoObj via pk_PhotoObj") {
		t.Errorf("Q1 plan missing PK probe join:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "Sort(") {
		t.Errorf("Q1 plan missing sort:\n%s", res.Plan)
	}
}

func TestQuery15AVerbatim(t *testing.T) {
	sdb, stats := sharedSurvey(t)
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec(q15aSQL, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("Q15A: %v", err)
	}
	if len(res.Rows) != stats.Truth.Asteroids {
		t.Fatalf("Q15A found %d asteroids, planted %d", len(res.Rows), stats.Truth.Asteroids)
	}
	for _, r := range res.Rows {
		v := r[1].F
		if v*v < 50-1e-9 || v*v > 1000+1e-9 {
			t.Errorf("velocity %.2f outside window", v)
		}
		if !strings.HasPrefix(r[2].S, "http://") {
			t.Errorf("bad url %q", r[2].S)
		}
	}
	// Plan shape (Figure 11): a parallel table scan.
	if !strings.Contains(res.Plan, "TableScan(PhotoObj, parallel") {
		t.Errorf("Q15A plan is not a parallel scan:\n%s", res.Plan)
	}
}

func TestQuery15BVerbatim(t *testing.T) {
	sdb, stats := sharedSurvey(t)
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec(q15bSQL, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatalf("Q15B: %v", err)
	}
	if len(res.Rows) != stats.Truth.NEOPairs {
		t.Fatalf("Q15B found %d pairs, planted %d (paper: 4)", len(res.Rows), stats.Truth.NEOPairs)
	}
	if stats.Truth.NEOPairs != 4 {
		t.Errorf("planted NEO pairs = %d, want the paper's 4", stats.Truth.NEOPairs)
	}
	// Plan shape (Figure 12): nested loop of two index accesses on the
	// covering (run, camcol, field) index.
	if !strings.Contains(res.Plan, "NestedLoopJoin(probe PhotoObj via ix_PhotoObj_run_camcol_field") {
		t.Errorf("Q15B plan missing covering-index probe:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "covering") {
		t.Errorf("Q15B access paths are not covering:\n%s", res.Plan)
	}
}

func TestSpatialTVFAgainstBruteForce(t *testing.T) {
	sdb, _ := sharedSurvey(t)
	sess := sqlengine.NewSession(sdb.DB)
	// The TVF must agree exactly with a brute-force distance predicate.
	tvf, err := sess.Exec("select count(*) from fGetNearbyObjEq(185, -0.5, 1)", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	brute, err := sess.Exec(`
		select count(*) from PhotoObj
		where dbo.fDistanceArcMinEq(185, -0.5, ra, dec) <= 1`, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tvf.Rows[0][0].I != brute.Rows[0][0].I {
		t.Errorf("TVF found %d, brute force %d", tvf.Rows[0][0].I, brute.Rows[0][0].I)
	}
	if tvf.Rows[0][0].I != 22 {
		t.Errorf("TVF rows = %d, paper's TVF returned 22", tvf.Rows[0][0].I)
	}
}

func TestViewsSubclassing(t *testing.T) {
	sdb, _ := sharedSurvey(t)
	sess := sqlengine.NewSession(sdb.DB)
	total, _ := sess.Exec("select count(*) from PhotoObj", sqlengine.ExecOptions{})
	prim, _ := sess.Exec("select count(*) from PhotoPrimary", sqlengine.ExecOptions{})
	sec, _ := sess.Exec("select count(*) from PhotoSecondary", sqlengine.ExecOptions{})
	star, _ := sess.Exec("select count(*) from Star", sqlengine.ExecOptions{})
	gal, _ := sess.Exec("select count(*) from Galaxy", sqlengine.ExecOptions{})
	nTotal := total.Rows[0][0].I
	nPrim := prim.Rows[0][0].I
	if nPrim >= nTotal || nPrim == 0 {
		t.Errorf("primaries %d of %d", nPrim, nTotal)
	}
	if sec.Rows[0][0].I == 0 {
		t.Error("no secondaries")
	}
	if star.Rows[0][0].I+gal.Rows[0][0].I > nPrim {
		t.Error("stars+galaxies exceed primaries")
	}
}

func TestLoadEventsJournal(t *testing.T) {
	sdb, _ := sharedSurvey(t)
	l := New(sdb)
	events, err := l.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no load events recorded")
	}
	byTable := map[string]Event{}
	for _, e := range events {
		byTable[e.Table] = e
		if e.Status != "ok" {
			t.Errorf("event %d (%s) status %s", e.ID, e.Table, e.Status)
		}
		if e.StopTime <= e.StartTime {
			t.Errorf("event %d has empty time window", e.ID)
		}
	}
	po := byTable["PhotoObj"]
	if po.InsertedRows != int64(sdb.PhotoObj.Rows()) {
		t.Errorf("journal says %d PhotoObj rows, table has %d", po.InsertedRows, sdb.PhotoObj.Rows())
	}
}

func TestIntegrityChecksPass(t *testing.T) {
	sdb, _ := sharedSurvey(t)
	l := New(sdb)
	for _, table := range []string{"Frame", "Profile", "SpecObj", "SpecLine", "xcRedShift", "elRedShift", "First", "Rosat", "USNO"} {
		checked, err := l.CheckIntegrity(table)
		if err != nil {
			t.Errorf("%s: %v", table, err)
		}
		if checked == 0 {
			t.Errorf("%s: checked no rows", table)
		}
	}
}

// failingSource yields a few good rows then an error, to exercise the
// failed-step + UNDO path of §9.4.
type failingSource struct {
	table string
	good  []val.Row
	pos   int
}

func (s *failingSource) Table() string { return s.table }
func (s *failingSource) Name() string  { return "bad.csv" }
func (s *failingSource) Next() (val.Row, error) {
	if s.pos < len(s.good) {
		s.pos++
		return s.good[s.pos-1], nil
	}
	return nil, io.EOF
}

func freshDB(t *testing.T) *schema.SkyDB {
	t.Helper()
	sdb, err := schema.Build(storage.NewMemFileGroup(2, 1024))
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

func plateRow(t *testing.T, sdb *schema.SkyDB, id int64) val.Row {
	t.Helper()
	tab := sdb.Plate
	row := make(val.Row, len(tab.Cols))
	for i, c := range tab.Cols {
		switch c.Kind {
		case val.KindInt:
			row[i] = val.Int(0)
		case val.KindFloat:
			row[i] = val.Float(0)
		case val.KindString:
			row[i] = val.Str("")
		default:
			row[i] = val.Null()
		}
	}
	row[tab.ColIndex("plateID")] = val.Int(id)
	return row
}

func TestFailedStepAndUndo(t *testing.T) {
	sdb := freshDB(t)
	l := New(sdb)

	// Step 1: a good batch of plates.
	good := []val.Row{plateRow(t, sdb, 1), plateRow(t, sdb, 2)}
	ev1, err := l.RunStep(NewSliceSource("Plate", "plates1.csv", good))
	if err != nil {
		t.Fatalf("good step failed: %v", err)
	}
	// Step 2: a bad batch — third row has a NULL in a NOT NULL column.
	bad := plateRow(t, sdb, 5)
	bad[sdb.Plate.ColIndex("mjd")] = val.Null()
	ev2, err := l.RunStep(NewSliceSource("Plate", "plates2.csv",
		[]val.Row{plateRow(t, sdb, 3), plateRow(t, sdb, 4), bad}))
	if err == nil {
		t.Fatal("bad step succeeded")
	}
	// The partial rows are in the table — that's the problem UNDO solves.
	if got := sdb.Plate.Rows(); got != 4 {
		t.Fatalf("after failed step: %d rows, want 4 (2 good + 2 partial)", got)
	}
	events, _ := l.Events()
	if events[len(events)-1].Status != "failed" {
		t.Errorf("last event status = %s, want failed", events[len(events)-1].Status)
	}
	if events[len(events)-1].Trace == "" {
		t.Error("failed event has no trace")
	}

	// UNDO step 2: only its rows disappear.
	removed, err := l.Undo(ev2)
	if err != nil {
		t.Fatalf("undo: %v", err)
	}
	if removed != 2 {
		t.Errorf("undo removed %d rows, want 2", removed)
	}
	if got := sdb.Plate.Rows(); got != 2 {
		t.Errorf("after undo: %d rows, want 2", got)
	}
	// The journal now marks it undone; undoing again fails.
	if _, err := l.Undo(ev2); err == nil {
		t.Error("double undo succeeded")
	}
	// Undo of the good step works too (fix data, reload).
	if _, err := l.Undo(ev1); err != nil {
		t.Errorf("undo of good step: %v", err)
	}
	if got := sdb.Plate.Rows(); got != 0 {
		t.Errorf("after both undos: %d rows", got)
	}
}

func TestIntegrityViolationDetected(t *testing.T) {
	sdb := freshDB(t)
	l := New(sdb)
	// A SpecObj referencing a non-existent plate.
	tab := sdb.SpecObj
	row := make(val.Row, len(tab.Cols))
	for i, c := range tab.Cols {
		switch c.Kind {
		case val.KindInt:
			row[i] = val.Int(0)
		case val.KindFloat:
			row[i] = val.Float(0)
		case val.KindString:
			row[i] = val.Str("")
		default:
			row[i] = val.Null()
		}
	}
	row[tab.ColIndex("specObjID")] = val.Int(77)
	row[tab.ColIndex("plateID")] = val.Int(999) // no such plate
	if _, err := l.RunStep(NewSliceSource("SpecObj", "orphan.csv", []val.Row{row})); err != nil {
		t.Fatalf("step: %v", err)
	}
	if _, err := l.CheckIntegrity("SpecObj"); err == nil {
		t.Error("orphan SpecObj passed integrity check")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	// Generate to CSV, load into a fresh database, compare row counts
	// with the directly-loaded shared survey.
	dir := t.TempDir()
	genDB := freshDB(t)
	cfg := pipeline.Config{Scale: 1.0 / 8000, SkipFrames: true, SkipBlobs: true}
	stats, paths, err := WriteCSVSurvey(cfg, genDB, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("only %d CSV files written", len(paths))
	}
	sdb := freshDB(t)
	l := New(sdb)
	events, err := LoadCSVDir(l, sdb, dir)
	if err != nil {
		t.Fatalf("LoadCSVDir: %v", err)
	}
	if len(events) != len(paths) {
		t.Errorf("%d events for %d files", len(events), len(paths))
	}
	if int(sdb.PhotoObj.Rows()) != stats.RowCounts["PhotoObj"] {
		t.Errorf("CSV-loaded PhotoObj = %d, generated %d", sdb.PhotoObj.Rows(), stats.RowCounts["PhotoObj"])
	}
	if int(sdb.SpecLine.Rows()) != stats.RowCounts["SpecLine"] {
		t.Errorf("CSV-loaded SpecLine = %d, generated %d", sdb.SpecLine.Rows(), stats.RowCounts["SpecLine"])
	}
	// Spot check: planted Q1 cluster survived the round trip.
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec(q1SQL, sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 19 {
		t.Errorf("Q1 after CSV round trip = %d rows, want 19", len(res.Rows))
	}
}

func TestCSVConversionErrorFailsStep(t *testing.T) {
	dir := t.TempDir()
	sdb := freshDB(t)
	// A malformed Plate CSV: non-numeric mjd.
	csv := "plateID,mjd,ra,dec,nFibers,loadTime\n266,fifty-two-thousand,185,0,600,0\n"
	path := dir + "/Plate.csv"
	if err := writeFile(path, csv); err != nil {
		t.Fatal(err)
	}
	l := New(sdb)
	src, err := NewCSVSource(sdb, "Plate", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.RunStep(src); err == nil {
		t.Error("malformed CSV loaded successfully")
	}
	events, _ := l.Events()
	if len(events) == 0 || events[len(events)-1].Status != "failed" {
		t.Error("failed conversion not journaled")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
