package load

import (
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// The SDSS pipeline "produces FITS files, but also produces comma-separated
// list (csv) files of the object data" (§9.4); DTS then converts and loads
// them. This file implements that path: the generator writes one CSV per
// table, and CSVSource performs the typed conversion during the load step —
// so a malformed file fails its step and exercises UNDO, exactly like the
// paper's operations story.

// csvNull is the empty-field encoding of NULL.
const csvNull = ""

// formatValue renders a value for CSV; blobs are hex with an 0x prefix.
func formatValue(v val.Value) string {
	switch v.K {
	case val.KindNull:
		return csvNull
	case val.KindInt:
		return strconv.FormatInt(v.I, 10)
	case val.KindFloat:
		return strconv.FormatFloat(v.F, 'g', 17, 64)
	case val.KindString:
		return v.S
	default:
		return "0x" + hex.EncodeToString(v.B)
	}
}

// parseValue converts a CSV field per the column's declared kind.
func parseValue(field string, col sqlengine.Column) (val.Value, error) {
	if field == csvNull && !col.NotNull {
		return val.Null(), nil
	}
	switch col.Kind {
	case val.KindInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return val.Value{}, fmt.Errorf("column %s: bad bigint %q", col.Name, field)
		}
		return val.Int(i), nil
	case val.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return val.Value{}, fmt.Errorf("column %s: bad float %q", col.Name, field)
		}
		return val.Float(f), nil
	case val.KindString:
		return val.Str(field), nil
	default:
		if !strings.HasPrefix(field, "0x") {
			return val.Value{}, fmt.Errorf("column %s: bad blob literal", col.Name)
		}
		b, err := hex.DecodeString(field[2:])
		if err != nil {
			return val.Value{}, fmt.Errorf("column %s: bad blob hex: %v", col.Name, err)
		}
		return val.Bytes(b), nil
	}
}

// WriteCSVSurvey generates a synthetic survey into one CSV file per table
// under dir, returning the generation stats and the file paths by table.
func WriteCSVSurvey(cfg pipeline.Config, sdb *schema.SkyDB, dir string) (*pipeline.Stats, map[string]string, error) {
	writers := map[string]*csv.Writer{}
	files := map[string]*os.File{}
	paths := map[string]string{}
	getWriter := func(table string) (*csv.Writer, error) {
		if w, ok := writers[table]; ok {
			return w, nil
		}
		t, err := sdb.DB.Table(table)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, table+".csv")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		w := csv.NewWriter(f)
		header := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			header[i] = c.Name
		}
		if err := w.Write(header); err != nil {
			f.Close()
			return nil, err
		}
		writers[table] = w
		files[table] = f
		paths[table] = path
		return w, nil
	}
	emitter := pipeline.EmitterFunc(func(table string, row val.Row) error {
		w, err := getWriter(table)
		if err != nil {
			return err
		}
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = formatValue(v)
		}
		return w.Write(rec)
	})
	stats, err := pipeline.Generate(cfg, sdb, emitter)
	for _, w := range writers {
		w.Flush()
	}
	var closeErr error
	for _, f := range files {
		if e := f.Close(); e != nil && closeErr == nil {
			closeErr = e
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if closeErr != nil {
		return nil, nil, closeErr
	}
	return stats, paths, nil
}

// CSVSource reads one table's CSV file, converting fields to typed values
// against the table schema — the "data conversion" half of a DTS step.
type CSVSource struct {
	table string
	path  string
	cols  []sqlengine.Column
	order []int // csv position -> column position
	f     *os.File
	r     *csv.Reader
}

// NewCSVSource opens a CSV load source for the table.
func NewCSVSource(sdb *schema.SkyDB, table, path string) (*CSVSource, error) {
	t, err := sdb.DB.Table(table)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(f)
	r.ReuseRecord = true
	header, err := r.Read()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("load: %s: reading header: %w", path, err)
	}
	order := make([]int, len(header))
	for i, name := range header {
		pos := t.ColIndex(name)
		if pos < 0 {
			f.Close()
			return nil, fmt.Errorf("load: %s: unknown column %q in header", path, name)
		}
		order[i] = pos
	}
	return &CSVSource{table: t.Name, path: path, cols: t.Cols, order: order, f: f, r: r}, nil
}

// Table implements RowSource.
func (s *CSVSource) Table() string { return s.table }

// Name implements RowSource.
func (s *CSVSource) Name() string { return s.path }

// Next implements RowSource.
func (s *CSVSource) Next() (val.Row, error) {
	rec, err := s.r.Read()
	if err == io.EOF {
		s.f.Close()
		return nil, io.EOF
	}
	if err != nil {
		s.f.Close()
		return nil, err
	}
	row := make(val.Row, len(s.cols))
	for i := range row {
		row[i] = val.Null()
	}
	for i, field := range rec {
		pos := s.order[i]
		v, err := parseValue(field, s.cols[pos])
		if err != nil {
			s.f.Close()
			return nil, fmt.Errorf("load: %s: %w", s.path, err)
		}
		row[pos] = v
	}
	return row, nil
}

// LoadCSVDir loads every <Table>.csv in dir through journaled steps, in
// foreign-key order, and runs integrity checks after each step. It returns
// the executed event IDs.
func LoadCSVDir(l *Loader, sdb *schema.SkyDB, dir string) ([]int64, error) {
	// FK-safe order; unknown files are rejected.
	order := []string{
		"Field", "Frame", "PhotoObj", "Profile", "Plate", "SpecObj",
		"SpecLine", "SpecLineIndex", "xcRedShift", "elRedShift",
		"First", "Rosat", "USNO", "Neighbors",
	}
	rank := map[string]int{}
	for i, n := range order {
		rank[strings.ToLower(n)] = i + 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type item struct {
		table string
		path  string
		rank  int
	}
	var items []item
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		table := strings.TrimSuffix(e.Name(), ".csv")
		r, ok := rank[strings.ToLower(table)]
		if !ok {
			return nil, fmt.Errorf("load: unexpected CSV file %s", e.Name())
		}
		items = append(items, item{table, filepath.Join(dir, e.Name()), r})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].rank < items[j].rank })
	var events []int64
	for _, it := range items {
		src, err := NewCSVSource(sdb, it.table, it.path)
		if err != nil {
			return events, err
		}
		id, err := l.RunStep(src)
		events = append(events, id)
		if err != nil {
			return events, err
		}
		if _, err := l.CheckIntegrity(it.table); err != nil {
			return events, err
		}
	}
	return events, nil
}
