// Package load implements the SkyServer's data-loading pipeline (§9.4):
// batch load steps with data conversion and integrity checking, a
// loadEvents journal recording each step's time window and row counts, and
// the timestamp-range UNDO that backs out a failed step.
//
// The paper's loader was a set of SQL Server DTS packages; the semantics
// reproduced here are the ones the paper describes: "Each table in the
// database has a timestamp field … The load event record tells the table
// name and the start and stop time of the load step. Undo consists of
// deleting all records of that table with an insert time between the bad
// load step start and stop times."
package load

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// RowSource yields the rows of one load step, like one CSV file from the
// processing pipeline.
type RowSource interface {
	// Table names the destination table.
	Table() string
	// Next returns the next row, or io.EOF when exhausted.
	Next() (val.Row, error)
	// Name identifies the source (file name) for the journal.
	Name() string
}

// Loader runs load steps against a SkyServer database.
type Loader struct {
	sdb *schema.SkyDB

	mu        sync.Mutex
	nextEvent int64
	lastNs    int64
}

// New creates a loader for the database.
func New(sdb *schema.SkyDB) *Loader {
	return &Loader{sdb: sdb, nextEvent: 1}
}

// now returns a strictly monotonic nanosecond timestamp, so consecutive
// steps always occupy disjoint time windows.
func (l *Loader) now() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	ns := time.Now().UnixNano()
	if ns <= l.lastNs {
		ns = l.lastNs + 1
	}
	l.lastNs = ns
	return ns
}

func (l *Loader) newEventID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextEvent
	l.nextEvent++
	return id
}

// Event describes one journaled load step.
type Event struct {
	ID           int64
	Table        string
	Source       string
	StartTime    int64
	StopTime     int64
	SourceRows   int64
	InsertedRows int64
	Status       string
	Trace        string
}

// RunStep loads every row of src into its table, stamping the loadTime
// column, and journals the outcome. On failure the already-inserted rows
// REMAIN in the table — exactly the situation §9.4's UNDO button exists
// for — and the returned event ID can be passed to Undo.
func (l *Loader) RunStep(src RowSource) (int64, error) {
	table, err := l.sdb.DB.Table(src.Table())
	if err != nil {
		return 0, err
	}
	ltCol := table.ColIndex("loadTime")
	eventID := l.newEventID()
	start := l.now()
	var sourceRows, inserted int64
	var stepErr error
	for {
		row, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			stepErr = err
			break
		}
		sourceRows++
		if ltCol >= 0 {
			row[ltCol] = val.Int(l.now())
		}
		if _, err := table.Insert(row); err != nil {
			stepErr = fmt.Errorf("load: %s row %d: %w", src.Table(), sourceRows, err)
			break
		}
		inserted++
	}
	stop := l.now()
	status := "ok"
	trace := ""
	if stepErr != nil {
		status = "failed"
		trace = stepErr.Error()
	}
	if err := l.journal(Event{
		ID: eventID, Table: table.Name, Source: src.Name(),
		StartTime: start, StopTime: stop,
		SourceRows: sourceRows, InsertedRows: inserted,
		Status: status, Trace: trace,
	}); err != nil {
		return eventID, err
	}
	return eventID, stepErr
}

func (l *Loader) journal(e Event) error {
	t := l.sdb.LoadEvents
	row := make(val.Row, len(t.Cols))
	set := func(name string, v val.Value) {
		row[t.ColIndex(name)] = v
	}
	set("eventID", val.Int(e.ID))
	set("tableName", val.Str(e.Table))
	set("sourceFile", val.Str(e.Source))
	set("startTime", val.Int(e.StartTime))
	set("stopTime", val.Int(e.StopTime))
	set("sourceRows", val.Int(e.SourceRows))
	set("insertedRows", val.Int(e.InsertedRows))
	set("status", val.Str(e.Status))
	if e.Trace != "" {
		set("trace", val.Str(e.Trace))
	} else {
		set("trace", val.Null())
	}
	_, err := t.Insert(row)
	return err
}

// Events returns the journal in event order.
func (l *Loader) Events() ([]Event, error) {
	t := l.sdb.LoadEvents
	idx := map[string]int{}
	for i, c := range t.Cols {
		idx[c.Name] = i
	}
	var out []Event
	width := len(t.Cols)
	err := scanTable(t, func(rid storage.RID, row val.Row) error {
		e := Event{
			ID:           row[idx["eventID"]].I,
			Table:        row[idx["tableName"]].S,
			Source:       row[idx["sourceFile"]].S,
			StartTime:    row[idx["startTime"]].I,
			StopTime:     row[idx["stopTime"]].I,
			SourceRows:   row[idx["sourceRows"]].I,
			InsertedRows: row[idx["insertedRows"]].I,
			Status:       row[idx["status"]].S,
		}
		if !row[idx["trace"]].IsNull() {
			e.Trace = row[idx["trace"]].S
		}
		out = append(out, e)
		return nil
	}, width)
	if err != nil {
		return nil, err
	}
	// Heap order is insert order for the journal.
	return out, nil
}

// scanTable decodes all live rows of a table serially.
func scanTable(t *sqlengine.Table, fn func(storage.RID, val.Row) error, width int) error {
	// Access the heap through the table's public surface: a full decode.
	return t.ScanRows(1, nil, func(rid storage.RID, row val.Row) error {
		return fn(rid, row)
	})
}

// Undo backs out a load step: it deletes every row of the step's table
// whose loadTime falls inside the step's [start, stop] window, and marks
// the journal entry undone. It returns the number of rows removed.
func (l *Loader) Undo(eventID int64) (int64, error) {
	events, err := l.Events()
	if err != nil {
		return 0, err
	}
	var ev *Event
	for i := range events {
		if events[i].ID == eventID {
			ev = &events[i]
			break
		}
	}
	if ev == nil {
		return 0, fmt.Errorf("load: no event %d", eventID)
	}
	if ev.Status == "undone" {
		return 0, fmt.Errorf("load: event %d already undone", eventID)
	}
	table, err := l.sdb.DB.Table(ev.Table)
	if err != nil {
		return 0, err
	}
	ltCol := table.ColIndex("loadTime")
	if ltCol < 0 {
		return 0, fmt.Errorf("load: table %s has no loadTime column", ev.Table)
	}
	// Collect the RIDs in the window, then delete.
	var rids []storage.RID
	need := make([]bool, len(table.Cols))
	need[ltCol] = true
	err = table.ScanRows(1, need, func(rid storage.RID, row val.Row) error {
		lt := row[ltCol].I
		if lt >= ev.StartTime && lt <= ev.StopTime {
			rids = append(rids, rid)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, rid := range rids {
		if _, err := table.DeleteRID(rid); err != nil {
			return 0, err
		}
	}
	if err := l.markUndone(eventID); err != nil {
		return int64(len(rids)), err
	}
	return int64(len(rids)), nil
}

// markUndone rewrites the journal row's status. The journal is small, so a
// delete-and-reinsert keeps the table layer simple (no UPDATE statement).
func (l *Loader) markUndone(eventID int64) error {
	t := l.sdb.LoadEvents
	idCol := t.ColIndex("eventID")
	stCol := t.ColIndex("status")
	var target storage.RID
	var saved val.Row
	found := false
	err := t.ScanRows(1, nil, func(rid storage.RID, row val.Row) error {
		if row[idCol].I == eventID {
			target = rid
			saved = row.Clone()
			found = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("load: journal row for event %d missing", eventID)
	}
	if _, err := t.DeleteRID(target); err != nil {
		return err
	}
	saved[stCol] = val.Str("undone")
	_, err = t.Insert(saved)
	return err
}

// CheckIntegrity verifies the table's foreign keys: every referencing tuple
// must exist in the referenced table ("These integrity constraints are
// invaluable tools in detecting errors during loading", §9.1.3). It returns
// the number of rows checked, and an error describing the first violation.
func (l *Loader) CheckIntegrity(tableName string) (int64, error) {
	t, err := l.sdb.DB.Table(tableName)
	if err != nil {
		return 0, err
	}
	fks := t.ForeignKeys()
	if len(fks) == 0 {
		return 0, nil
	}
	type probe struct {
		fk  sqlengine.ForeignKey
		ref *sqlengine.Table
	}
	probes := make([]probe, 0, len(fks))
	for _, fk := range fks {
		ref, err := l.sdb.DB.Table(fk.RefTable)
		if err != nil {
			return 0, err
		}
		probes = append(probes, probe{fk, ref})
	}
	need := make([]bool, len(t.Cols))
	for _, p := range probes {
		for _, c := range p.fk.Cols {
			need[c] = true
		}
	}
	var checked int64
	err = t.ScanRows(1, need, func(rid storage.RID, row val.Row) error {
		checked++
		for _, p := range probes {
			key := make(val.Row, len(p.fk.Cols))
			allNull := true
			for i, c := range p.fk.Cols {
				key[i] = row[c]
				if !row[c].IsNull() {
					allNull = false
				}
			}
			if allNull {
				continue
			}
			if !p.ref.PKExists(key) {
				return fmt.Errorf("load: %s row violates %s: no %s row with key %v",
					t.Name, p.fk.Name, p.fk.RefTable, key)
			}
		}
		return nil
	})
	return checked, err
}

// sliceSource adapts a buffered row slice to RowSource.
type sliceSource struct {
	table string
	name  string
	rows  []val.Row
	pos   int
}

func (s *sliceSource) Table() string { return s.table }
func (s *sliceSource) Name() string  { return s.name }
func (s *sliceSource) Next() (val.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// NewSliceSource wraps in-memory rows as a load step source.
func NewSliceSource(table, name string, rows []val.Row) RowSource {
	return &sliceSource{table: table, name: name, rows: rows}
}

// LoadSurvey generates a synthetic survey (per cfg) and loads it through
// journaled steps — one step per table, stamping loadTime as rows stream
// in. This is the direct pipeline→database path; see WriteCSVSurvey /
// LoadCSVDir for the file-based path the paper's DTS used.
func (l *Loader) LoadSurvey(cfg pipeline.Config) (*pipeline.Stats, error) {
	type openStep struct {
		eventID int64
		start   int64
		table   *sqlengine.Table
		ltCol   int
		rows    int64
	}
	steps := map[string]*openStep{}
	emitter := pipeline.EmitterFunc(func(tableName string, row val.Row) error {
		st, ok := steps[tableName]
		if !ok {
			t, err := l.sdb.DB.Table(tableName)
			if err != nil {
				return err
			}
			st = &openStep{
				eventID: l.newEventID(),
				start:   l.now(),
				table:   t,
				ltCol:   t.ColIndex("loadTime"),
			}
			steps[tableName] = st
		}
		if st.ltCol >= 0 {
			row[st.ltCol] = val.Int(l.now())
		}
		if _, err := st.table.Insert(row); err != nil {
			return fmt.Errorf("load: %s: %w", tableName, err)
		}
		st.rows++
		return nil
	})
	stats, err := pipeline.Generate(cfg, l.sdb, emitter)
	stop := func(status, trace string) error {
		for _, st := range steps {
			if jerr := l.journal(Event{
				ID: st.eventID, Table: st.table.Name, Source: "pipeline://synthetic",
				StartTime: st.start, StopTime: l.now(),
				SourceRows: st.rows, InsertedRows: st.rows,
				Status: status, Trace: trace,
			}); jerr != nil {
				return jerr
			}
		}
		return nil
	}
	if err != nil {
		_ = stop("failed", err.Error())
		return nil, err
	}
	if err := stop("ok", ""); err != nil {
		return nil, err
	}
	return stats, nil
}
