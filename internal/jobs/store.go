package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// sidecar is the on-disk metadata record written next to a finished
// result (<id>.json beside <id>.res), letting a restarted process serve
// results its predecessor computed.
type sidecar struct {
	ID          string    `json:"id"`
	User        string    `json:"user"`
	SQL         string    `json:"sql"`
	Format      string    `json:"format"`
	ContentType string    `json:"contentType"`
	ETag        string    `json:"etag"`
	Rows        int64     `json:"rows"`
	Pages       int64     `json:"pages"`
	Bytes       int64     `json:"bytes"`
	Created     time.Time `json:"created"`
	Started     time.Time `json:"started"`
	Finished    time.Time `json:"finished"`
}

// writeSidecarLocked persists a done job's metadata (mu held). The write
// is atomic (.part + rename) like the result file itself.
func (m *Manager) writeSidecarLocked(j *job) error {
	b, err := json.Marshal(sidecar{
		ID: j.id, User: j.user, SQL: j.sql, Format: j.format,
		ContentType: j.info.ContentType, ETag: j.info.ETag,
		Rows: j.rows, Pages: j.pages, Bytes: j.bytes,
		Created: j.created, Started: j.started, Finished: j.finished,
	})
	if err != nil {
		return err
	}
	part := filepath.Join(m.dir, j.id+".json.part")
	if err := os.WriteFile(part, b, 0o644); err != nil {
		return err
	}
	return os.Rename(part, filepath.Join(m.dir, j.id+".json"))
}

// reload scans a configured spill directory for results a previous
// process persisted: every sidecar with a live result file becomes a
// done job again; orphaned .part/.res files and expired results are
// deleted.
func (m *Manager) reload() error {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return err
	}
	now := time.Now()
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(m.dir, name))
		if err != nil {
			continue
		}
		var sc sidecar
		if json.Unmarshal(b, &sc) != nil || sc.ID == "" {
			os.Remove(filepath.Join(m.dir, name))
			continue
		}
		res := filepath.Join(m.dir, sc.ID+".res")
		fi, err := os.Stat(res)
		if err != nil || now.After(sc.Finished.Add(m.cfg.TTL)) {
			os.Remove(res)
			os.Remove(filepath.Join(m.dir, name))
			continue
		}
		j := &job{
			id: sc.ID, user: sc.User, sql: sc.SQL, format: sc.Format,
			created: sc.Created, cancel: func(error) {},
			state: StateDone, started: sc.Started, finished: sc.Finished,
			pages: sc.Pages, rows: sc.Rows, bytes: fi.Size(),
			info: RunInfo{ContentType: sc.ContentType, ETag: sc.ETag, Rows: sc.Rows, Pages: sc.Pages},
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j)
		m.bytes += j.bytes
	}
	// Orphans: spill files without a reloaded job (crashed mid-run, or
	// sidecar gone).
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".part") {
			os.Remove(filepath.Join(m.dir, name))
			continue
		}
		if id, ok := strings.CutSuffix(name, ".res"); ok {
			if _, live := m.jobs[id]; !live {
				os.Remove(filepath.Join(m.dir, name))
			}
		}
	}
	m.evictOverBudgetLocked() // predecessor may have had a larger budget
	return nil
}

// expiredLocked reports whether a done job's result has outlived its TTL
// (mu held).
func (m *Manager) expiredLocked(j *job, now time.Time) bool {
	return j.state == StateDone && now.After(j.finished.Add(m.cfg.TTL))
}

// maybeSweepLocked runs the lazy expiry sweep — there is no background
// janitor goroutine, so retention work piggybacks on API calls at most
// once per sweep interval (mu held).
func (m *Manager) maybeSweepLocked(now time.Time) {
	interval := m.cfg.TTL / 4
	if interval > time.Minute {
		interval = time.Minute
	}
	if now.Sub(m.lastSweep) < interval {
		return
	}
	m.lastSweep = now
	for i := 0; i < len(m.order); {
		if j := m.order[i]; m.expiredLocked(j, now) {
			m.removeJobLocked(j)
			continue // order shrank in place
		}
		i++
	}
}

// evictOverBudgetLocked deletes oldest-finished results until the store
// fits its byte budget again, always sparing the most recently finished
// result so a single oversized result set still serves once (mu held).
func (m *Manager) evictOverBudgetLocked() {
	for m.bytes > m.cfg.MaxBytes {
		var oldest, newest *job
		for _, j := range m.order {
			if j.state != StateDone {
				continue
			}
			if oldest == nil || j.finished.Before(oldest.finished) {
				oldest = j
			}
			if newest == nil || j.finished.After(newest.finished) {
				newest = j
			}
		}
		if oldest == nil || oldest == newest {
			return
		}
		m.removeJobLocked(oldest)
	}
}

// removeJobLocked forgets a job entirely: table entry, submission order,
// byte accounting, spill files (mu held).
func (m *Manager) removeJobLocked(j *job) {
	delete(m.jobs, j.id)
	for i, o := range m.order {
		if o == j {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.bytes -= j.bytes
	j.bytes = 0
	m.removeFilesLocked(j)
}

// removeFilesLocked deletes a job's spill files (mu held; the files may
// legitimately not exist).
func (m *Manager) removeFilesLocked(j *job) {
	os.Remove(filepath.Join(m.dir, j.id+".res"))
	os.Remove(filepath.Join(m.dir, j.id+".part"))
	os.Remove(filepath.Join(m.dir, j.id+".json"))
}
