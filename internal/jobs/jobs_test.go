package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// instantExec returns an ExecFunc that immediately succeeds, writing
// payload.
func instantExec(payload string) ExecFunc {
	return func(ctx context.Context, spec Spec, w io.Writer, started func(), progress func(pages, rows int64)) (RunInfo, error) {
		started()
		progress(2, 1)
		if _, err := io.WriteString(w, payload); err != nil {
			return RunInfo{}, err
		}
		return RunInfo{ContentType: "text/csv", ETag: `"tag-` + spec.ID + `"`, Rows: 1, Pages: 2}, nil
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, m *Manager, id, user string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := m.Get(id, user)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s; err=%q)", id, v.State, want, v.Error)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestJobLifecycleAndResult(t *testing.T) {
	m, err := New(Config{Exec: instantExec("a,b\n1,2\n")})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	v, err := m.Submit("alice", "select 1", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued || v.QueuePosition != 1 {
		t.Errorf("submitted view = %s pos %d, want queued pos 1", v.State, v.QueuePosition)
	}
	done := waitState(t, m, v.ID, "alice", StateDone)
	if done.Rows != 1 || done.Pages != 2 || done.ContentType != "text/csv" || done.ETag == "" {
		t.Errorf("done view = %+v, want rows/pages/content-type/etag set", done)
	}
	if done.Bytes != int64(len("a,b\n1,2\n")) {
		t.Errorf("result bytes = %d, want %d", done.Bytes, len("a,b\n1,2\n"))
	}
	if done.ExpiresAt.IsZero() || done.Started.IsZero() || done.Finished.IsZero() {
		t.Errorf("done view missing timestamps: %+v", done)
	}

	f, rv, err := m.Result(v.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(f)
	f.Close()
	if string(body) != "a,b\n1,2\n" {
		t.Errorf("result body = %q", body)
	}
	if rv.ETag != done.ETag {
		t.Errorf("result etag %q != status etag %q", rv.ETag, done.ETag)
	}

	// Other users see neither status nor result.
	if _, err := m.Get(v.ID, "bob"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-user get: err = %v, want ErrNotFound", err)
	}
	if _, _, err := m.Result(v.ID, "bob"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-user result: err = %v, want ErrNotFound", err)
	}
	if got := m.List("alice"); len(got) != 1 || got[0].ID != v.ID {
		t.Errorf("alice list = %+v, want the one job", got)
	}
	if got := m.List("bob"); len(got) != 0 {
		t.Errorf("bob list = %+v, want empty", got)
	}
}

func TestJobCancelWhileRunning(t *testing.T) {
	running := make(chan struct{})
	m, err := New(Config{
		Exec: func(ctx context.Context, spec Spec, w io.Writer, started func(), progress func(pages, rows int64)) (RunInfo, error) {
			started()
			close(running)
			<-ctx.Done()
			return RunInfo{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	v, err := m.Submit("alice", "select slow", "csv")
	if err != nil {
		t.Fatal(err)
	}
	<-running
	cv, err := m.Cancel(v.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if cv.State != StateFailed || cv.Error != "canceled by user" {
		t.Errorf("canceled view = %s %q, want failed 'canceled by user'", cv.State, cv.Error)
	}
	if _, _, err := m.Result(v.ID, "alice"); !errors.Is(err, ErrNotDone) {
		t.Errorf("result of canceled job: err = %v, want ErrNotDone", err)
	}
	// Canceling again is a no-op.
	if cv2, err := m.Cancel(v.ID, "alice"); err != nil || cv2.State != StateFailed {
		t.Errorf("second cancel = %+v / %v", cv2, err)
	}
}

func TestJobTTLExpiry(t *testing.T) {
	m, err := New(Config{Exec: instantExec("x\n"), TTL: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, err := m.Submit("alice", "select 1", "csv")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, "alice", StateDone)
	path := filepath.Join(m.Dir(), v.ID+".res")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("result file missing while live: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := m.Get(v.ID, "alice"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired get: err = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("expired result file still on disk: %v", err)
	}
	if got := m.List("alice"); len(got) != 0 {
		t.Errorf("expired job still listed: %+v", got)
	}
}

func TestJobByteBudgetEviction(t *testing.T) {
	payload := strings.Repeat("r", 100)
	m, err := New(Config{Exec: instantExec(payload), MaxBytes: 150})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v1, _ := m.Submit("alice", "select 1", "csv")
	waitState(t, m, v1.ID, "alice", StateDone)
	v2, _ := m.Submit("alice", "select 2", "csv")
	waitState(t, m, v2.ID, "alice", StateDone)

	// 200 bytes against a 150-byte budget: the older result is evicted,
	// the newer (even though itself short of fitting alongside anything)
	// survives.
	if _, err := m.Get(v1.ID, "alice"); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted get: err = %v, want ErrNotFound", err)
	}
	f, _, err := m.Result(v2.ID, "alice")
	if err != nil {
		t.Fatalf("newest result evicted too: %v", err)
	}
	f.Close()
	if st := m.Stats(); st.Bytes != 100 {
		t.Errorf("store bytes = %d, want 100", st.Bytes)
	}
}

func TestJobReloadAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Exec: instantExec("persisted\n"), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit("alice", "select 1", "csv")
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, v.ID, "alice", StateDone)
	m.Close()

	// Leave an orphan behind: a .part from a crashed run.
	orphan := filepath.Join(dir, "deadbeef00000000.part")
	os.WriteFile(orphan, []byte("junk"), 0o644)

	m2, err := New(Config{Exec: instantExec("x"), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rv, err := m2.Get(v.ID, "alice")
	if err != nil {
		t.Fatalf("reloaded get: %v", err)
	}
	if rv.State != StateDone || rv.ETag != done.ETag || rv.Rows != done.Rows {
		t.Errorf("reloaded view = %+v, want the original done view", rv)
	}
	f, _, err := m2.Result(v.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(f)
	f.Close()
	if string(body) != "persisted\n" {
		t.Errorf("reloaded body = %q", body)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan .part survived reload: %v", err)
	}
}

func TestJobDrainQueuedFailsWithReason(t *testing.T) {
	// Exec models admission wait: blocks before started() until ctx dies.
	m, err := New(Config{
		Exec: func(ctx context.Context, spec Spec, w io.Writer, started func(), progress func(pages, rows int64)) (RunInfo, error) {
			<-ctx.Done()
			return RunInfo{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, err := m.Submit("alice", "select 1", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if n := m.DrainQueued("draining"); n != 1 {
		t.Fatalf("drained %d jobs, want 1", n)
	}
	dv, err := m.Get(v.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if dv.State != StateFailed || dv.Error != "draining" {
		t.Errorf("drained view = %s %q, want failed 'draining'", dv.State, dv.Error)
	}
	// Draining refuses new work.
	if _, err := m.Submit("alice", "select 2", "csv"); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining: err = %v, want ErrDraining", err)
	}
}

func TestJobUserQuota(t *testing.T) {
	release := make(chan struct{})
	m, err := New(Config{
		MaxPerUser: 2,
		Exec: func(ctx context.Context, spec Spec, w io.Writer, started func(), progress func(pages, rows int64)) (RunInfo, error) {
			started()
			select {
			case <-release:
				return RunInfo{ContentType: "text/csv"}, nil
			case <-ctx.Done():
				return RunInfo{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, err := m.Submit("alice", fmt.Sprintf("select %d", i), "csv"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit("alice", "select 3", "csv"); !errors.Is(err, ErrUserQuota) {
		t.Fatalf("over-quota submit: err = %v, want ErrUserQuota", err)
	}
	// Another user is unaffected.
	if _, err := m.Submit("bob", "select 1", "csv"); err != nil {
		t.Errorf("bob submit: %v", err)
	}
	close(release)
}

func TestFormatOK(t *testing.T) {
	for _, ok := range []string{"csv", "json", "xml", "html", "CSV"} {
		if !FormatOK(ok) {
			t.Errorf("FormatOK(%q) = false", ok)
		}
	}
	for _, bad := range []string{"fits", "parquet", ""} {
		if FormatOK(bad) {
			t.Errorf("FormatOK(%q) = true", bad)
		}
	}
}
