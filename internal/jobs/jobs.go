// Package jobs implements the CasJobs-style asynchronous batch-query
// service behind POST /api/v1/jobs: a submitted query becomes a job that
// outlives its HTTP connection, runs under the scheduler's batch class
// (admission — including per-user fair share — happens inside the
// injected ExecFunc, not here), and persists its serialized result set
// in a byte-budgeted, TTL-evicting on-disk store until fetched or
// expired. The package is deliberately storage- and engine-agnostic:
// the web layer injects execution as a callback, so jobs only owns the
// lifecycle (queued → running → done/failed), the spill directory, and
// drain semantics.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// State is a job's lifecycle phase. Transitions: queued → running →
// done|failed, with queued → failed for cancels, quota evictions, and
// drains. The first terminal transition wins: a drain that fails a
// queued job is not overwritten when the job's goroutine later observes
// its canceled context.
type State string

// The job states.
const (
	// StateQueued: submitted, waiting for a batch slot (the job's
	// goroutine is parked in the scheduler's fair-share queue).
	StateQueued State = "queued"
	// StateRunning: admitted and executing; progress counters tick.
	StateRunning State = "running"
	// StateDone: finished successfully; the persisted result is fetchable
	// until its TTL expires or the byte budget evicts it.
	StateDone State = "done"
	// StateFailed: terminal failure — execution error, cancel, or drain —
	// with the reason recorded.
	StateFailed State = "failed"
)

// Sentinel errors the HTTP layer maps onto the JSON error envelope.
var (
	// ErrNotFound: no such job for this user (expired, evicted, or never
	// existed — the service does not reveal which, nor other users' ids).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrDraining: the server is shutting down and accepts no new jobs.
	ErrDraining = errors.New("jobs: server draining, not accepting new jobs")
	// ErrUserQuota: the user already has MaxPerUser unfinished jobs.
	ErrUserQuota = errors.New("jobs: too many unfinished jobs for user")
	// ErrNotDone: the job has no fetchable result (still queued/running,
	// or failed).
	ErrNotDone = errors.New("jobs: job result not available")
)

// Spec is the submitted query an ExecFunc runs, echoed back so the
// executor needs no lookup.
type Spec struct {
	ID     string
	User   string
	SQL    string
	Format string
}

// RunInfo is what a successful execution reports back for the persisted
// result's metadata: its Content-Type, its strong ETag (the web layer
// derives it from the normalized plan key + catalog version digest, the
// same machinery as the synchronous result cache), and the scan totals.
type RunInfo struct {
	ContentType string
	ETag        string
	Rows        int64
	Pages       int64
}

// ExecFunc executes one job: it must block through admission (this is
// where the scheduler's per-user fair share applies), call started once
// a slot is granted (flips the job queued → running), stream the
// serialized result set into w, and report cumulative progress via
// progress(pagesScanned, rowsEmitted) as it goes. ctx is the job's own
// context — canceled by DELETE, drain, or Close, never by the submitting
// HTTP connection.
type ExecFunc func(ctx context.Context, spec Spec, w io.Writer, started func(), progress func(pages, rows int64)) (RunInfo, error)

// Defaults for Config zero values.
const (
	// DefaultTTL retains a finished result for an hour.
	DefaultTTL = time.Hour
	// DefaultMaxBytes budgets 256 MiB of persisted results.
	DefaultMaxBytes = 256 << 20
	// DefaultMaxPerUser bounds one user's unfinished (queued + running)
	// jobs.
	DefaultMaxPerUser = 16
)

// Config sizes a Manager. Exec is required; zero values elsewhere select
// the defaults.
type Config struct {
	// Dir is the result spill directory. Empty means a private temp
	// directory removed on Close; a configured directory persists across
	// restarts, and finished results found in it are reloaded.
	Dir string
	// TTL is how long a finished result stays fetchable.
	TTL time.Duration
	// MaxBytes budgets the persisted results' total size; going over
	// evicts oldest-finished results first (the newest always survives).
	MaxBytes int64
	// MaxPerUser bounds a user's unfinished jobs at submit time.
	MaxPerUser int
	// Exec runs a job (see ExecFunc).
	Exec ExecFunc
}

// job is the manager-internal record (all fields guarded by Manager.mu
// except id/user/sql/format/created/cancel, which are immutable after
// Submit).
type job struct {
	id      string
	user    string
	sql     string
	format  string
	created time.Time
	cancel  context.CancelCauseFunc

	state    State
	errMsg   string
	started  time.Time
	finished time.Time
	pages    int64
	rows     int64
	info     RunInfo
	bytes    int64
}

// Manager owns the job table, the spill directory, and the per-job
// goroutines. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	dir    string
	ownDir bool

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // submission order: queue position, eviction scan
	bytes     int64
	draining  bool
	closed    bool
	lastSweep time.Time
	wg        sync.WaitGroup
}

// New builds a Manager over cfg.Dir (see Config), reloading any finished
// results a previous process left there and deleting orphaned or expired
// files.
func New(cfg Config) (*Manager, error) {
	if cfg.Exec == nil {
		return nil, errors.New("jobs: Config.Exec is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxPerUser <= 0 {
		cfg.MaxPerUser = DefaultMaxPerUser
	}
	m := &Manager{cfg: cfg, jobs: make(map[string]*job)}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "skyjobs-")
		if err != nil {
			return nil, fmt.Errorf("jobs: spill dir: %w", err)
		}
		m.dir, m.ownDir = dir, true
		return m, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: spill dir: %w", err)
	}
	m.dir = cfg.Dir
	if err := m.reload(); err != nil {
		return nil, err
	}
	return m, nil
}

// Dir returns the spill directory results persist in.
func (m *Manager) Dir() string { return m.dir }

// newID returns a 16-hex-character random job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Submit registers a new job for user and starts its goroutine. It
// returns immediately with the queued job's view; ErrDraining and
// ErrUserQuota reject before anything is recorded.
func (m *Manager) Submit(user, sql, format string) (JobView, error) {
	now := time.Now()
	m.mu.Lock()
	m.maybeSweepLocked(now)
	if m.draining || m.closed {
		m.mu.Unlock()
		return JobView{}, ErrDraining
	}
	unfinished := 0
	for _, j := range m.order {
		if j.user == user && (j.state == StateQueued || j.state == StateRunning) {
			unfinished++
		}
	}
	if unfinished >= m.cfg.MaxPerUser {
		m.mu.Unlock()
		return JobView{}, fmt.Errorf("%w %q (limit %d)", ErrUserQuota, user, m.cfg.MaxPerUser)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &job{
		id: newID(), user: user, sql: sql, format: format,
		created: now, cancel: cancel, state: StateQueued,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.wg.Add(1)
	v := m.viewLocked(j, now)
	m.mu.Unlock()
	go m.run(j, ctx)
	return v, nil
}

// run is one job's goroutine: spill-file setup, execution via the
// injected callback, then the atomic .part → .res publish.
func (m *Manager) run(j *job, ctx context.Context) {
	defer m.wg.Done()
	part := filepath.Join(m.dir, j.id+".part")
	f, err := os.Create(part)
	if err != nil {
		m.finish(j, ctx, RunInfo{}, 0, err)
		return
	}
	info, err := m.cfg.Exec(ctx, Spec{ID: j.id, User: j.user, SQL: j.sql, Format: j.format}, f,
		func() { m.markRunning(j) },
		func(pages, rows int64) { m.progress(j, pages, rows) })
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(part)
		m.finish(j, ctx, info, 0, err)
		return
	}
	fi, err := os.Stat(part)
	if err != nil {
		os.Remove(part)
		m.finish(j, ctx, info, 0, err)
		return
	}
	if err := os.Rename(part, filepath.Join(m.dir, j.id+".res")); err != nil {
		os.Remove(part)
		m.finish(j, ctx, info, 0, err)
		return
	}
	m.finish(j, ctx, info, fi.Size(), nil)
}

// markRunning flips a queued job to running (no-op if a cancel or drain
// won the race).
func (m *Manager) markRunning(j *job) {
	m.mu.Lock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
	}
	m.mu.Unlock()
}

// progress records cumulative scan/emit counters for the status view.
func (m *Manager) progress(j *job, pages, rows int64) {
	m.mu.Lock()
	j.pages, j.rows = pages, rows
	m.mu.Unlock()
}

// finish records a job's outcome. If a cancel or drain already moved the
// job to a terminal state, the result files are discarded and the
// earlier state stands.
func (m *Manager) finish(j *job, ctx context.Context, info RunInfo, size int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		m.removeFilesLocked(j)
		return
	}
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		// A canceled context carries the human-meaningful reason ("canceled
		// by user", "draining") as its cause; prefer it over the engine's
		// wrapped cancellation error.
		if ctx.Err() != nil {
			if cause := context.Cause(ctx); cause != nil && cause != ctx.Err() {
				j.errMsg = cause.Error()
			}
		}
		return
	}
	j.state = StateDone
	j.info = info
	j.pages, j.rows = info.Pages, info.Rows
	j.bytes = size
	m.bytes += size
	if werr := m.writeSidecarLocked(j); werr != nil {
		// The result streamed fine but its metadata didn't persist; the
		// job still serves from memory for this process's lifetime.
		j.errMsg = "sidecar not persisted: " + werr.Error()
	}
	m.evictOverBudgetLocked()
}

// errCanceled is the cancel cause DELETE sets.
var errCanceled = errors.New("canceled by user")

// Cancel moves a queued or running job to failed("canceled by user") and
// cancels its context. Canceling an already-terminal job is a no-op; the
// returned view reflects the state after the call.
func (m *Manager) Cancel(id, user string) (JobView, error) {
	now := time.Now()
	m.mu.Lock()
	j, err := m.lookupLocked(id, user, now)
	if err != nil {
		m.mu.Unlock()
		return JobView{}, err
	}
	var cancel context.CancelCauseFunc
	if j.state == StateQueued || j.state == StateRunning {
		j.state = StateFailed
		j.errMsg = errCanceled.Error()
		j.finished = now
		cancel = j.cancel
	}
	v := m.viewLocked(j, now)
	m.mu.Unlock()
	if cancel != nil {
		cancel(errCanceled)
	}
	return v, nil
}

// Get returns a job's current view. Expired jobs are removed and
// reported as ErrNotFound, as are other users' jobs.
func (m *Manager) Get(id, user string) (JobView, error) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maybeSweepLocked(now)
	j, err := m.lookupLocked(id, user, now)
	if err != nil {
		return JobView{}, err
	}
	return m.viewLocked(j, now), nil
}

// List returns the user's jobs, newest first.
func (m *Manager) List(user string) []JobView {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maybeSweepLocked(now)
	var out []JobView
	for _, j := range m.order {
		if j.user != user || m.expiredLocked(j, now) {
			continue
		}
		out = append(out, m.viewLocked(j, now))
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Created.After(out[b].Created) })
	return out
}

// Result opens a done job's persisted result for streaming. The caller
// closes the file. Non-done jobs return ErrNotDone; expired, evicted, or
// foreign jobs return ErrNotFound.
func (m *Manager) Result(id, user string) (*os.File, JobView, error) {
	now := time.Now()
	m.mu.Lock()
	j, err := m.lookupLocked(id, user, now)
	if err != nil {
		m.mu.Unlock()
		return nil, JobView{}, err
	}
	if j.state != StateDone {
		v := m.viewLocked(j, now)
		m.mu.Unlock()
		return nil, v, ErrNotDone
	}
	v := m.viewLocked(j, now)
	path := filepath.Join(m.dir, j.id+".res")
	m.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return nil, JobView{}, ErrNotFound
	}
	return f, v, nil
}

// lookupLocked resolves id for user, expiring on the way (mu held).
func (m *Manager) lookupLocked(id, user string, now time.Time) (*job, error) {
	j, ok := m.jobs[id]
	if !ok || j.user != user {
		return nil, ErrNotFound
	}
	if m.expiredLocked(j, now) {
		m.removeJobLocked(j)
		return nil, ErrNotFound
	}
	return j, nil
}

// DrainQueued fails every still-queued job with the given reason and
// cancels its context, and stops accepting submissions. Running jobs are
// left to finish (see Shutdown). It returns the number of jobs drained.
func (m *Manager) DrainQueued(reason string) int {
	now := time.Now()
	cause := errors.New(reason)
	m.mu.Lock()
	m.draining = true
	var cancels []context.CancelCauseFunc
	for _, j := range m.order {
		if j.state == StateQueued {
			j.state = StateFailed
			j.errMsg = reason
			j.finished = now
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c(cause)
	}
	return len(cancels)
}

// Shutdown waits for running jobs to finish. When ctx expires first, the
// stragglers are checkpointed to failed("draining") and canceled, then
// awaited (cancellation propagates to the executor's per-page checks, so
// this is prompt). Persisted results stay on disk for the next process.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	m.failUnfinished("draining")
	<-done
	return ctx.Err()
}

// failUnfinished checkpoints every non-terminal job to failed(reason)
// and cancels its context.
func (m *Manager) failUnfinished(reason string) {
	now := time.Now()
	cause := errors.New(reason)
	m.mu.Lock()
	var cancels []context.CancelCauseFunc
	for _, j := range m.order {
		if j.state == StateQueued || j.state == StateRunning {
			j.state = StateFailed
			j.errMsg = reason
			j.finished = now
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c(cause)
	}
}

// Close cancels everything, waits for job goroutines, and removes the
// spill directory when it was auto-created. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.failUnfinished("shutting down")
	m.wg.Wait()
	if m.ownDir {
		os.RemoveAll(m.dir)
	}
}

// Stats is the jobs slice of the status endpoint: lifecycle counts and
// store occupancy.
type Stats struct {
	Queued   int   `json:"queued"`
	Running  int   `json:"running"`
	Done     int   `json:"done"`
	Failed   int   `json:"failed"`
	Bytes    int64 `json:"resultBytes"`
	MaxBytes int64 `json:"resultBytesBudget"`
}

// Stats snapshots the manager.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Bytes: m.bytes, MaxBytes: m.cfg.MaxBytes}
	for _, j := range m.order {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		}
	}
	return st
}

// JobView is a job's externally visible snapshot, JSON-shaped for the
// /api/v1/jobs responses.
type JobView struct {
	ID     string `json:"id"`
	User   string `json:"user"`
	SQL    string `json:"sql"`
	Format string `json:"format"`
	State  State  `json:"state"`
	Error  string `json:"error,omitempty"`
	// QueuePosition is 1-based among this user's queued jobs (batch
	// dequeue is fair-shared per user, so a global position would be
	// meaningless). Zero once running or terminal.
	QueuePosition int       `json:"queuePosition,omitempty"`
	Created       time.Time `json:"created"`
	Started       time.Time `json:"started,omitzero"`
	Finished      time.Time `json:"finished,omitzero"`
	// Pages/Rows are cumulative progress while running, final totals once
	// done.
	Pages int64 `json:"pagesScanned"`
	Rows  int64 `json:"rows"`
	// Result metadata, set once done.
	Bytes       int64     `json:"resultBytes,omitempty"`
	ContentType string    `json:"contentType,omitempty"`
	ETag        string    `json:"etag,omitempty"`
	ExpiresAt   time.Time `json:"expiresAt,omitzero"`
}

// viewLocked snapshots j (mu held).
func (m *Manager) viewLocked(j *job, now time.Time) JobView {
	v := JobView{
		ID: j.id, User: j.user, SQL: j.sql, Format: j.format,
		State: j.state, Error: j.errMsg,
		Created: j.created, Started: j.started, Finished: j.finished,
		Pages: j.pages, Rows: j.rows,
	}
	if j.state == StateQueued {
		pos := 0
		for _, o := range m.order {
			if o.user == j.user && o.state == StateQueued {
				pos++
				if o == j {
					break
				}
			}
		}
		v.QueuePosition = pos
	}
	if j.state == StateDone {
		v.Bytes = j.bytes
		v.ContentType = j.info.ContentType
		v.ETag = j.info.ETag
		v.ExpiresAt = j.finished.Add(m.cfg.TTL)
	}
	return v
}

// FormatOK reports whether the service can persist results in the given
// serialization format. FITS is excluded: its writer needs two passes
// over the result set, which the single-pass spill pipeline does not do.
func FormatOK(format string) bool {
	switch strings.ToLower(format) {
	case "csv", "json", "xml", "html":
		return true
	}
	return false
}
