// Package neighbors precomputes the Neighbors table of §9.1.1: "For every
// object the neighbors table contains a list of all other objects within
// ½ arcminute of the object (typically 10 objects). This speeds proximity
// searches." The paper calls it the materialized view they would have
// created even without SQL Server's limitation.
//
// The computation is a zone join: objects are bucketed into declination
// zones one search-radius tall; each object probes its own and the two
// adjacent zones within a right-ascension window, then verifies candidates
// with the exact dot-product distance — the standard equal-join strategy
// for spherical proximity in a relational engine.
package neighbors

import (
	"math"
	"sort"

	"skyserver/internal/schema"
	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// DefaultRadiusArcmin is the paper's ½-arcminute neighborhood.
const DefaultRadiusArcmin = 0.5

type obj struct {
	objID int64
	ra    float64
	dec   float64
	v     sky.Vec3
	typ   int64
	mode  int64
}

// Build computes all object pairs within radiusArcmin and inserts them
// (both directions) into the Neighbors table, returning the number of rows
// inserted.
func Build(sdb *schema.SkyDB, radiusArcmin float64) (int64, error) {
	if radiusArcmin <= 0 {
		radiusArcmin = DefaultRadiusArcmin
	}
	radiusDeg := radiusArcmin / sky.ArcminPerDeg
	cosR := math.Cos(radiusDeg * sky.RadPerDeg)

	// Read the needed column subset from PhotoObj.
	t := sdb.PhotoObj
	need := make([]bool, len(t.Cols))
	idx := map[string]int{}
	for _, name := range []string{"objID", "ra", "dec", "cx", "cy", "cz", "type", "mode"} {
		i := t.ColIndex(name)
		need[i] = true
		idx[name] = i
	}
	var objs []obj
	err := t.ScanRows(1, need, func(_ storage.RID, row val.Row) error {
		objs = append(objs, obj{
			objID: row[idx["objID"]].I,
			ra:    row[idx["ra"]].F,
			dec:   row[idx["dec"]].F,
			v:     sky.Vec3{X: row[idx["cx"]].F, Y: row[idx["cy"]].F, Z: row[idx["cz"]].F},
			typ:   row[idx["type"]].I,
			mode:  row[idx["mode"]].I,
		})
		return nil
	})
	if err != nil {
		return 0, err
	}

	// Zone the sphere by declination; sort each zone by ra.
	zoneOf := func(dec float64) int { return int(math.Floor((dec + 90) / radiusDeg)) }
	zones := map[int][]int{}
	for i, o := range objs {
		zones[zoneOf(o.dec)] = append(zones[zoneOf(o.dec)], i)
	}
	for _, members := range zones {
		sort.Slice(members, func(a, b int) bool { return objs[members[a]].ra < objs[members[b]].ra })
	}

	nb := sdb.Neighbors
	nbIdx := map[string]int{}
	for _, name := range []string{"objID", "neighborObjID", "distance", "neighborType", "neighborMode", "loadTime"} {
		nbIdx[name] = nb.ColIndex(name)
	}
	var inserted int64
	emit := func(a, b *obj, distArcmin float64) error {
		row := make(val.Row, len(nb.Cols))
		for i := range row {
			row[i] = val.Int(0)
		}
		row[nbIdx["objID"]] = val.Int(a.objID)
		row[nbIdx["neighborObjID"]] = val.Int(b.objID)
		row[nbIdx["distance"]] = val.Float(distArcmin)
		row[nbIdx["neighborType"]] = val.Int(b.typ)
		row[nbIdx["neighborMode"]] = val.Int(b.mode)
		if _, err := nb.Insert(row); err != nil {
			return err
		}
		inserted++
		return nil
	}

	for i := range objs {
		a := &objs[i]
		z := zoneOf(a.dec)
		// RA window, widened by the declination's convergence factor.
		cosDec := math.Cos(a.dec * sky.RadPerDeg)
		if cosDec < 0.01 {
			cosDec = 0.01
		}
		window := radiusDeg / cosDec
		for dz := -1; dz <= 1; dz++ {
			members := zones[z+dz]
			if len(members) == 0 {
				continue
			}
			lo := sort.Search(len(members), func(k int) bool {
				return objs[members[k]].ra >= a.ra-window
			})
			for k := lo; k < len(members); k++ {
				j := members[k]
				b := &objs[j]
				if b.ra > a.ra+window {
					break
				}
				if i == j {
					continue
				}
				d := a.v.Dot(b.v)
				if d < cosR {
					continue
				}
				if d > 1 {
					d = 1
				}
				distArcmin := math.Acos(d) * sky.DegPerRad * sky.ArcminPerDeg
				if err := emit(a, b, distArcmin); err != nil {
					return inserted, err
				}
			}
		}
	}
	return inserted, nil
}

// Count returns the Neighbors row count (a convenience for reports).
func Count(sdb *schema.SkyDB) uint64 { return sdb.Neighbors.Rows() }

var _ = sqlengine.Column{} // keep the import for documentation references
