package neighbors

import (
	"math"
	"testing"

	"skyserver/internal/load"
	"skyserver/internal/pipeline"
	"skyserver/internal/schema"
	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// emptySurveyDB builds a schema with a hand-planted PhotoObj population so
// the zone join can be verified against brute force exactly.
func plantedDB(t *testing.T, points [][2]float64) *schema.SkyDB {
	t.Helper()
	sdb, err := schema.Build(storage.NewMemFileGroup(2, 256))
	if err != nil {
		t.Fatal(err)
	}
	tab := sdb.PhotoObj
	for i, p := range points {
		row := make(val.Row, len(tab.Cols))
		for j, c := range tab.Cols {
			switch c.Kind {
			case val.KindInt:
				row[j] = val.Int(0)
			case val.KindFloat:
				row[j] = val.Float(0)
			case val.KindString:
				row[j] = val.Str("")
			default:
				row[j] = val.Null()
			}
		}
		v := sky.EqToVec(p[0], p[1])
		row[tab.ColIndex("objID")] = val.Int(int64(i + 1))
		row[tab.ColIndex("ra")] = val.Float(p[0])
		row[tab.ColIndex("dec")] = val.Float(p[1])
		row[tab.ColIndex("cx")] = val.Float(v.X)
		row[tab.ColIndex("cy")] = val.Float(v.Y)
		row[tab.ColIndex("cz")] = val.Float(v.Z)
		row[tab.ColIndex("type")] = val.Int(3)
		row[tab.ColIndex("mode")] = val.Int(1)
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return sdb
}

func TestBuildMatchesBruteForce(t *testing.T) {
	// A line of points 0.4' apart in dec: each has neighbors at ±0.4'
	// (within the 0.5' radius) but not ±0.8'.
	var pts [][2]float64
	for i := 0; i < 6; i++ {
		pts = append(pts, [2]float64{185.0, float64(i) * 0.4 / 60})
	}
	// Plus a far-away loner.
	pts = append(pts, [2]float64{190.0, 1.0})
	sdb := plantedDB(t, pts)
	n, err := Build(sdb, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	want := 0
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if sky.DistanceArcmin(pts[i][0], pts[i][1], pts[j][0], pts[j][1]) <= 0.5 {
				want++
			}
		}
	}
	if int(n) != want {
		t.Errorf("Build found %d pairs, brute force %d", n, want)
	}
	// Middle points have two neighbors, ends one, loner zero.
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec("select objID, count(*) from Neighbors group by objID order by objID", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int64{}
	for _, row := range res.Rows {
		counts[row[0].I] = row[1].I
	}
	if counts[1] != 1 || counts[2] != 2 || counts[6] != 1 {
		t.Errorf("neighbor counts: %v", counts)
	}
	if counts[7] != 0 {
		t.Errorf("loner has %d neighbors", counts[7])
	}
}

func TestBuildSymmetric(t *testing.T) {
	pts := [][2]float64{{185, 0}, {185.005, 0.002}, {185.002, -0.004}}
	sdb := plantedDB(t, pts)
	if _, err := Build(sdb, 0.5); err != nil {
		t.Fatal(err)
	}
	// Every pair must appear in both directions with equal distance.
	type pair struct{ a, b int64 }
	dists := map[pair]float64{}
	err := sdb.Neighbors.ScanRows(1, nil, func(_ storage.RID, row val.Row) error {
		a := row[sdb.Neighbors.ColIndex("objID")].I
		b := row[sdb.Neighbors.ColIndex("neighborObjID")].I
		dists[pair{a, b}] = row[sdb.Neighbors.ColIndex("distance")].F
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) == 0 {
		t.Fatal("no pairs")
	}
	for p, d := range dists {
		back, ok := dists[pair{p.b, p.a}]
		if !ok {
			t.Fatalf("pair (%d,%d) missing its mirror", p.a, p.b)
		}
		if math.Abs(back-d) > 1e-9 {
			t.Fatalf("asymmetric distances %g vs %g", d, back)
		}
	}
}

func TestNoSelfPairs(t *testing.T) {
	sdb := plantedDB(t, [][2]float64{{185, 0}, {185.001, 0}})
	if _, err := Build(sdb, 0.5); err != nil {
		t.Fatal(err)
	}
	err := sdb.Neighbors.ScanRows(1, nil, func(_ storage.RID, row val.Row) error {
		a := row[sdb.Neighbors.ColIndex("objID")].I
		b := row[sdb.Neighbors.ColIndex("neighborObjID")].I
		if a == b {
			t.Fatalf("self pair for %d", a)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZoneBoundaryPairsFound(t *testing.T) {
	// Two points just 0.1' apart but straddling a zone boundary (zones
	// are radius-tall, anchored at dec −90): they must still pair.
	radius := 0.5
	zoneHeight := radius / 60
	boundary := -90 + 137*zoneHeight // arbitrary zone edge
	pts := [][2]float64{
		{185, boundary - 0.0005},
		{185, boundary + 0.0005},
	}
	sdb := plantedDB(t, pts)
	n, err := Build(sdb, radius)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("boundary pair found %d rows, want 2", n)
	}
}

func TestSurveyDensityMatchesPaperShape(t *testing.T) {
	// On a generated survey, the planted Q1 cluster guarantees density;
	// overall count must match the pairwise truth of the distance column.
	sdb, err := schema.Build(storage.NewMemFileGroup(2, 1024))
	if err != nil {
		t.Fatal(err)
	}
	l := load.New(sdb)
	if _, err := l.LoadSurvey(pipeline.Config{Scale: 1.0 / 4000, SkipFrames: true, SkipBlobs: true}); err != nil {
		t.Fatal(err)
	}
	n, err := Build(sdb, DefaultRadiusArcmin)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no neighbor pairs on a survey with a planted cluster")
	}
	// All recorded distances within the radius.
	dcol := sdb.Neighbors.ColIndex("distance")
	err = sdb.Neighbors.ScanRows(1, nil, func(_ storage.RID, row val.Row) error {
		if row[dcol].F > DefaultRadiusArcmin+1e-9 {
			t.Fatalf("pair at %g' exceeds radius", row[dcol].F)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if Count(sdb) != uint64(n) {
		t.Errorf("Count=%d, Build returned %d", Count(sdb), n)
	}
}
