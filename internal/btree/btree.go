// Package btree implements an in-memory B+tree over composite row keys, the
// index substrate beneath the SkyServer's SQL engine.
//
// The paper's central indexing argument (§9.1.3) is that B-tree indices
// subsume the "tag tables" of the earlier ObjectivityDB design: an index on
// columns A, B, C is an automatically-managed vertical slice of the table,
// and a covering index answers a query without touching the base table at
// all. Entries here therefore carry, besides the key columns and the heap
// record ID, an optional payload of *included* columns, which is what makes
// an index covering.
//
// Like SQL Server 2000 (§9.1.3), composite keys are limited to 16 columns.
package btree

import (
	"fmt"

	"skyserver/internal/val"
)

// MaxKeyColumns mirrors SQL Server 2000's 16-column index key limit noted in
// the paper.
const MaxKeyColumns = 16

// degree is the maximum number of entries in a leaf and children in an
// internal node. 64 keeps nodes around a cache-friendly few KB.
const degree = 64

// Entry is one index record: the key columns, the heap record ID the entry
// points at, and optionally the included (covering) column values.
type Entry struct {
	Key  val.Row
	RID  uint64
	Incl val.Row
}

// compareEntries orders by key, then RID, making physically distinct heap
// rows with equal keys distinct index entries.
func compareEntries(aKey val.Row, aRID uint64, bKey val.Row, bRID uint64) int {
	if c := aKey.Compare(bKey); c != 0 {
		return c
	}
	switch {
	case aRID < bRID:
		return -1
	case aRID > bRID:
		return 1
	}
	return 0
}

type node struct {
	leaf bool
	// Internal nodes: keys[i] is the smallest (key,rid) in children[i+1].
	keys     []val.Row
	rids     []uint64
	children []*node
	// Leaves:
	entries []Entry
	next    *node
}

// Tree is a B+tree. The zero value is not usable; call New. Trees are not
// safe for concurrent mutation; the SQL engine serializes writers per table.
type Tree struct {
	root  *node
	size  int
	first *node
}

// New returns an empty tree.
func New() *Tree {
	leaf := &node{leaf: true}
	return &Tree{root: leaf, first: leaf}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Insert adds an entry. Keys longer than MaxKeyColumns are rejected, like
// the 16-column limit the paper notes for SQL Server 2000.
func (t *Tree) Insert(e Entry) error {
	if len(e.Key) > MaxKeyColumns {
		return fmt.Errorf("btree: key has %d columns, max %d", len(e.Key), MaxKeyColumns)
	}
	promoKey, promoRID, right := t.insert(t.root, e)
	if right != nil {
		newRoot := &node{
			keys:     []val.Row{promoKey},
			rids:     []uint64{promoRID},
			children: []*node{t.root, right},
		}
		t.root = newRoot
	}
	t.size++
	return nil
}

// insert descends to a leaf, inserts, and propagates splits upward. When a
// split occurs it returns the separator key/rid and the new right sibling.
func (t *Tree) insert(n *node, e Entry) (val.Row, uint64, *node) {
	if n.leaf {
		i := n.lowerBoundLeaf(e.Key, e.RID)
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		if len(n.entries) <= degree {
			return nil, 0, nil
		}
		// Split leaf.
		mid := len(n.entries) / 2
		right := &node{leaf: true, next: n.next}
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid:mid]
		n.next = right
		return right.entries[0].Key, right.entries[0].RID, right
	}
	ci := n.childIndex(e.Key, e.RID)
	pk, pr, newChild := t.insert(n.children[ci], e)
	if newChild == nil {
		return nil, 0, nil
	}
	n.keys = append(n.keys, nil)
	n.rids = append(n.rids, 0)
	n.children = append(n.children, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	copy(n.rids[ci+1:], n.rids[ci:])
	copy(n.children[ci+2:], n.children[ci+1:])
	n.keys[ci] = pk
	n.rids[ci] = pr
	n.children[ci+1] = newChild
	if len(n.children) <= degree {
		return nil, 0, nil
	}
	// Split internal node: the middle key moves up.
	midK := len(n.keys) / 2
	upKey, upRID := n.keys[midK], n.rids[midK]
	right := &node{}
	right.keys = append(right.keys, n.keys[midK+1:]...)
	right.rids = append(right.rids, n.rids[midK+1:]...)
	right.children = append(right.children, n.children[midK+1:]...)
	n.keys = n.keys[:midK:midK]
	n.rids = n.rids[:midK:midK]
	n.children = n.children[: midK+1 : midK+1]
	return upKey, upRID, right
}

// lowerBoundLeaf returns the first position whose (key,rid) ≥ the argument.
func (n *node) lowerBoundLeaf(key val.Row, rid uint64) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntries(n.entries[mid].Key, n.entries[mid].RID, key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child to descend into for (key,rid).
func (n *node) childIndex(key val.Row, rid uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntries(n.keys[mid], n.rids[mid], key, rid) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes the entry with exactly the given key and RID, reporting
// whether it was found. Underfull leaves are left in place (ghost-style
// deletion); the tree stays correct, trading space for simplicity, and is
// rebuilt wholesale on reload — matching the warehouse's load-mostly usage.
func (t *Tree) Delete(key val.Row, rid uint64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key, rid)]
	}
	i := n.lowerBoundLeaf(key, rid)
	for {
		if i < len(n.entries) {
			c := compareEntries(n.entries[i].Key, n.entries[i].RID, key, rid)
			if c == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				t.size--
				return true
			}
			if c > 0 {
				return false
			}
			i++
			continue
		}
		if n.next == nil {
			return false
		}
		n = n.next
		i = 0
	}
}

// Iter is a forward iterator over index entries in key order.
type Iter struct {
	n *node
	i int
}

// Valid reports whether the iterator currently points at an entry.
func (it *Iter) Valid() bool { return it.n != nil && it.i < len(it.n.entries) }

// Entry returns the current entry; only valid when Valid() is true.
func (it *Iter) Entry() Entry { return it.n.entries[it.i] }

// Next advances the iterator.
func (it *Iter) Next() {
	it.i++
	for it.n != nil && it.i >= len(it.n.entries) {
		it.n = it.n.next
		it.i = 0
	}
}

// Min returns an iterator positioned at the smallest entry.
func (t *Tree) Min() *Iter {
	it := &Iter{n: t.first, i: 0}
	for it.n != nil && len(it.n.entries) == 0 {
		it.n = it.n.next
	}
	return it
}

// Seek returns an iterator positioned at the first entry whose key ≥ key
// (comparing only the key columns provided — a prefix seek when key is
// shorter than the indexed columns).
func (t *Tree) Seek(key val.Row) *Iter {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key, 0)]
	}
	it := &Iter{n: n, i: n.lowerBoundLeaf(key, 0)}
	for it.n != nil && it.i >= len(it.n.entries) {
		it.n = it.n.next
		it.i = 0
	}
	return it
}

// Ascend calls fn for every entry with key in [lo, hi) in order, stopping
// early if fn returns false. hi == nil means "to the end"; comparisons use
// key prefixes, so a shorter hi bound acts as an exclusive prefix bound.
func (t *Tree) Ascend(lo, hi val.Row, fn func(Entry) bool) {
	var it *Iter
	if lo == nil {
		it = t.Min()
	} else {
		it = t.Seek(lo)
	}
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		if hi != nil {
			prefix := e.Key
			if len(prefix) > len(hi) {
				prefix = prefix[:len(hi)]
			}
			if prefix.Compare(hi) >= 0 {
				return
			}
		}
		if !fn(e) {
			return
		}
	}
}

// Height returns the tree height (leaf = 1), exposed for tests and stats.
func (t *Tree) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}
