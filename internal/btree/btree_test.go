package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"skyserver/internal/val"
)

func intKey(i int64) val.Row { return val.Row{val.Int(i)} }

func TestInsertAndSeekSmall(t *testing.T) {
	tr := New()
	for _, i := range []int64{5, 1, 9, 3, 7} {
		if err := tr.Insert(Entry{Key: intKey(i), RID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	it := tr.Seek(intKey(4))
	if !it.Valid() || it.Entry().Key[0].I != 5 {
		t.Fatalf("Seek(4) landed on %v", it.Entry())
	}
	var got []int64
	for it := tr.Min(); it.Valid(); it.Next() {
		got = append(got, it.Entry().Key[0].I)
	}
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-order scan = %v, want %v", got, want)
		}
	}
}

func TestInsertManySorted(t *testing.T) {
	tr := New()
	const n = 5000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(Entry{Key: intKey(int64(i)), RID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 2 {
		t.Errorf("height %d suspiciously small for %d entries", tr.Height(), n)
	}
	prev := int64(-1)
	count := 0
	for it := tr.Min(); it.Valid(); it.Next() {
		k := it.Entry().Key[0].I
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		count++
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for rid := uint64(0); rid < 100; rid++ {
		if err := tr.Insert(Entry{Key: intKey(42), RID: rid}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	tr.Ascend(intKey(42), intKey(43), func(e Entry) bool {
		if e.Key[0].I != 42 {
			t.Fatalf("wrong key %v in dup scan", e.Key)
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("found %d duplicates, want 100", count)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(Entry{Key: intKey(int64(i)), RID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the odd keys.
	for i := 1; i < n; i += 2 {
		if !tr.Delete(intKey(int64(i)), uint64(i)) {
			t.Fatalf("Delete(%d) not found", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	// Deleting again must fail.
	if tr.Delete(intKey(1), 1) {
		t.Error("double delete succeeded")
	}
	if tr.Delete(intKey(99999), 0) {
		t.Error("deleting absent key succeeded")
	}
	// Remaining keys are the even ones, in order.
	want := int64(0)
	for it := tr.Min(); it.Valid(); it.Next() {
		if it.Entry().Key[0].I != want {
			t.Fatalf("after delete got %d, want %d", it.Entry().Key[0].I, want)
		}
		want += 2
	}
}

func TestDeleteSpecificRID(t *testing.T) {
	tr := New()
	for rid := uint64(0); rid < 10; rid++ {
		_ = tr.Insert(Entry{Key: intKey(7), RID: rid})
	}
	if !tr.Delete(intKey(7), 4) {
		t.Fatal("delete rid 4 failed")
	}
	tr.Ascend(intKey(7), nil, func(e Entry) bool {
		if e.RID == 4 {
			t.Fatal("rid 4 still present")
		}
		return true
	})
	if tr.Len() != 9 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		_ = tr.Insert(Entry{Key: intKey(i), RID: uint64(i)})
	}
	var got []int64
	tr.Ascend(intKey(10), intKey(20), func(e Entry) bool {
		got = append(got, e.Key[0].I)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,20) = %v", got)
	}
	// Early stop.
	n := 0
	tr.Ascend(nil, nil, func(e Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCompositeKeyPrefixSeek(t *testing.T) {
	// Index on (run, camcol): a prefix seek on run alone must find all
	// camcols of that run — the access path of the paper's Q15B.
	tr := New()
	for run := int64(752); run <= 756; run++ {
		for camcol := int64(1); camcol <= 6; camcol++ {
			key := val.Row{val.Int(run), val.Int(camcol)}
			_ = tr.Insert(Entry{Key: key, RID: uint64(run*10 + camcol)})
		}
	}
	var got []int64
	tr.Ascend(val.Row{val.Int(754)}, val.Row{val.Int(755)}, func(e Entry) bool {
		got = append(got, e.Key[1].I)
		return true
	})
	if len(got) != 6 || got[0] != 1 || got[5] != 6 {
		t.Fatalf("prefix seek run=754 camcols = %v", got)
	}
}

func TestCoveringPayload(t *testing.T) {
	tr := New()
	_ = tr.Insert(Entry{
		Key:  intKey(1),
		RID:  10,
		Incl: val.Row{val.Float(185.0), val.Float(-0.5)},
	})
	it := tr.Seek(intKey(1))
	if !it.Valid() {
		t.Fatal("entry not found")
	}
	incl := it.Entry().Incl
	if len(incl) != 2 || incl[0].F != 185.0 {
		t.Fatalf("included columns = %v", incl)
	}
}

func TestKeyColumnLimit(t *testing.T) {
	tr := New()
	key := make(val.Row, MaxKeyColumns+1)
	for i := range key {
		key[i] = val.Int(int64(i))
	}
	if err := tr.Insert(Entry{Key: key}); err == nil {
		t.Error("17-column key accepted; SQL Server limit is 16")
	}
	if err := tr.Insert(Entry{Key: key[:MaxKeyColumns]}); err != nil {
		t.Errorf("16-column key rejected: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("new tree not empty")
	}
	if it := tr.Min(); it.Valid() {
		t.Error("Min on empty tree is valid")
	}
	if it := tr.Seek(intKey(1)); it.Valid() {
		t.Error("Seek on empty tree is valid")
	}
	if tr.Delete(intKey(1), 0) {
		t.Error("Delete on empty tree succeeded")
	}
	tr.Ascend(nil, nil, func(Entry) bool {
		t.Error("Ascend on empty tree called fn")
		return false
	})
}

func TestOrderInvariantProperty(t *testing.T) {
	// Whatever sequence of inserts happens, a full scan returns the same
	// multiset in sorted (key, rid) order.
	f := func(keys []int16) bool {
		tr := New()
		type pair struct {
			k int64
			r uint64
		}
		var want []pair
		for i, k := range keys {
			e := Entry{Key: intKey(int64(k)), RID: uint64(i)}
			if err := tr.Insert(e); err != nil {
				return false
			}
			want = append(want, pair{int64(k), uint64(i)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].k != want[j].k {
				return want[i].k < want[j].k
			}
			return want[i].r < want[j].r
		})
		i := 0
		ok := true
		tr.Ascend(nil, nil, func(e Entry) bool {
			if i >= len(want) || e.Key[0].I != want[i].k || e.RID != want[i].r {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInsertDeleteMixProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tr := New()
		shadow := map[int64]int{} // key -> count
		total := 0
		for _, op := range ops {
			k := int64(op % 64)
			if op >= 0 {
				_ = tr.Insert(Entry{Key: intKey(k), RID: uint64(total)})
				shadow[k]++
				total++
			} else {
				// Delete one instance if present: find an entry via scan.
				var rid uint64
				found := false
				tr.Ascend(intKey(k), intKey(k+1), func(e Entry) bool {
					rid = e.RID
					found = true
					return false
				})
				if found != (shadow[k] > 0) {
					return false
				}
				if found {
					if !tr.Delete(intKey(k), rid) {
						return false
					}
					shadow[k]--
				}
			}
		}
		n := 0
		for _, c := range shadow {
			n += c
		}
		return tr.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(Entry{Key: intKey(rng.Int63()), RID: uint64(i)})
	}
}

func BenchmarkSeek(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		_ = tr.Insert(Entry{Key: intKey(i), RID: uint64(i)})
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := tr.Seek(intKey(rng.Int63n(100000)))
		if !it.Valid() {
			b.Fatal("seek failed")
		}
	}
}
