package shard

import (
	"math"
	"math/rand"
	"testing"

	"skyserver/internal/htm"
)

// TestEqualSplitTotality: every 64-bit value routes to exactly one shard
// and the per-shard ranges tile [0, MaxUint64) without gaps.
func TestEqualSplitTotality(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		p := EqualSplit(n)
		if p.N() != n {
			t.Fatalf("EqualSplit(%d).N() = %d", n, p.N())
		}
		if p.bounds[0] != 0 || p.bounds[n] != math.MaxUint64 {
			t.Fatalf("n=%d: outer bounds %d..%d, want 0..MaxUint64", n, p.bounds[0], p.bounds[n])
		}
		prev := -1
		for i := 0; i < n; i++ {
			r := p.Range(i)
			if r.Lo > r.Hi {
				t.Fatalf("n=%d shard %d: inverted range %d..%d", n, i, r.Lo, r.Hi)
			}
			if prev >= 0 && p.Range(prev).Hi != r.Lo {
				t.Fatalf("n=%d: gap between shard %d and %d", n, prev, i)
			}
			prev = i
		}
		rng := rand.New(rand.NewSource(1))
		for k := 0; k < 10000; k++ {
			id := rng.Uint64()
			s := p.ShardFor(id)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: ShardFor(%d) = %d out of range", n, id, s)
			}
			if !p.Range(s).Contains(id) && !(s == n-1 && id == math.MaxUint64) {
				t.Fatalf("n=%d: id %d assigned to shard %d whose range %v excludes it", n, id, s, p.Range(s))
			}
		}
	}
}

// TestFromCoverBalance: a plan cut from a footprint cover spreads IDs
// sampled uniformly from that cover roughly evenly across shards.
func TestFromCoverBalance(t *testing.T) {
	cx, err := htm.Rect(180, -1.25, 186, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	cover := cx.CoverWith(htm.CoverOptions{Budget: 2048})
	for _, n := range []int{2, 4, 7} {
		p := FromCover(cover, n)
		counts := make([]int, n)
		rng := rand.New(rand.NewSource(2))
		const samples = 20000
		merged := htm.MergeRanges(append([]htm.Range(nil), cover...))
		var total uint64
		for _, r := range merged {
			total += r.Hi - r.Lo
		}
		for k := 0; k < samples; k++ {
			// Uniform ID over the cover's cumulative length.
			off := rng.Uint64() % total
			var id uint64
			for _, r := range merged {
				if off < r.Hi-r.Lo {
					id = r.Lo + off
					break
				}
				off -= r.Hi - r.Lo
			}
			counts[p.ShardFor(id)]++
		}
		want := samples / n
		for i, c := range counts {
			if c < want/2 || c > want*2 {
				t.Errorf("n=%d shard %d: %d of %d samples, want ≈%d (cover-quantile split unbalanced)", n, i, c, samples, want)
			}
		}
	}
}

// TestRouteNoFalsePrunes is the core safety property: for random cones
// and rects, every ID inside the query's cover belongs to a routed
// shard — pruning may over-include but never drops data.
func TestRouteNoFalsePrunes(t *testing.T) {
	cx, err := htm.Rect(180, -1.25, 186, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	plan := FromCover(cx.CoverWith(htm.CoverOptions{Budget: 2048}), 7)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		ra := 178 + rng.Float64()*10
		dec := -2 + rng.Float64()*4
		var cover []htm.Range
		if trial%2 == 0 {
			radius := 0.5 + rng.Float64()*120 // arcmin
			cover = htm.Circle(ra, dec, radius).Cover()
		} else {
			w, h := rng.Float64()*3, rng.Float64()*2
			rcx, err := htm.Rect(ra, dec, ra+w+0.01, dec+h+0.01)
			if err != nil {
				continue
			}
			cover = rcx.Cover()
		}
		routed := plan.Route(cover)
		onRoute := make(map[int]bool, len(routed))
		for _, s := range routed {
			onRoute[s] = true
		}
		// Sample IDs from the cover; each must land on a routed shard.
		for _, r := range cover {
			for _, id := range []uint64{r.Lo, r.Hi - 1, r.Lo + (r.Hi-r.Lo)/2} {
				if s := plan.ShardFor(id); !onRoute[s] {
					t.Fatalf("trial %d: id %d in cover maps to shard %d, not in route %v (false prune)", trial, id, s, routed)
				}
			}
		}
		// Route order and bounds.
		for i, s := range routed {
			if s < 0 || s >= plan.N() || (i > 0 && routed[i-1] >= s) {
				t.Fatalf("trial %d: route %v not strictly increasing in [0,%d)", trial, routed, plan.N())
			}
		}
	}
}

// TestRouteEmptyCover: no cover means no pruning — all shards.
func TestRouteEmptyCover(t *testing.T) {
	p := EqualSplit(4)
	got := p.Route(nil)
	if len(got) != 4 {
		t.Fatalf("Route(nil) = %v, want all 4 shards", got)
	}
}

// TestConeTrafficPruneRatio is the regression guard for routing
// effectiveness: on a canned mix of small cones over the footprint, a
// 7-shard cover-balanced plan must prune at least a third of the shard
// scans (in practice it prunes far more; the floor only catches a
// routing regression that silently fans every cone out to all shards).
func TestConeTrafficPruneRatio(t *testing.T) {
	cx, err := htm.Rect(180, -1.25, 186, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	plan := FromCover(cx.CoverWith(htm.CoverOptions{Budget: 2048}), 7)
	rng := rand.New(rand.NewSource(4))
	var routed, possible int
	for q := 0; q < 500; q++ {
		ra := 180.2 + rng.Float64()*5.5
		dec := -1.0 + rng.Float64()*2.0
		radius := 1 + rng.Float64()*15 // 1–16 arcmin: Explorer-style cones
		cover := htm.Circle(ra, dec, radius).Cover()
		routed += len(plan.Route(cover))
		possible += plan.N()
	}
	ratio := 1 - float64(routed)/float64(possible)
	if ratio < 0.33 {
		t.Fatalf("prune ratio %.2f below 0.33 floor: cone traffic is not being pruned", ratio)
	}
	t.Logf("cone-mix prune ratio: %.2f", ratio)
}

// TestHashShardStability: hash routing is deterministic and in range.
func TestHashShardStability(t *testing.T) {
	p := EqualSplit(4)
	seen := make(map[int]int)
	for k := uint64(0); k < 1000; k++ {
		s := p.HashShard(k)
		if s != p.HashShard(k) {
			t.Fatal("HashShard not deterministic")
		}
		if s < 0 || s >= 4 {
			t.Fatalf("HashShard(%d) = %d out of range", k, s)
		}
		seen[s]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] == 0 {
			t.Fatalf("shard %d never chosen by hash over 1000 keys", s)
		}
	}
}
