// Package shard partitions the survey across N in-process storage shards
// by contiguous HTM trixel ranges, the SkyServer paper's "divide the sky
// into regions" scale-out direction. Each shard owns one FileGroup (its
// own volumes, page cache, and scan-worker pool — an independent failure
// domain); a Plan maps every depth-20 HTM ID to exactly one shard, and
// Route intersects a query's HTM cover with the shard ranges so spatial
// scans touch only the covering shards. Secondary indexes stay global
// (in-memory B-trees over shard-tagged RIDs); only heap pages shard.
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"skyserver/internal/htm"
	"skyserver/internal/storage"
)

// Plan assigns every depth-MaxDepth HTM ID to one of N shards via N
// contiguous half-open ranges. bounds has N+1 entries; shard i owns
// [bounds[i], bounds[i+1]). bounds[0] is 0 and bounds[N] is MaxUint64,
// so routing is total: any 64-bit value (including IDs outside the legal
// trixel space) lands on some shard.
type Plan struct {
	bounds []uint64
}

// idSpace is the legal depth-MaxDepth HTM ID interval [8·4^d, 16·4^d).
func idSpace() (lo, hi uint64) {
	d := uint(htm.MaxDepth)
	return 8 << (2 * d), 16 << (2 * d)
}

// EqualSplit divides the depth-MaxDepth HTM ID space into n equal
// contiguous ranges. Balanced only for all-sky data; survey stripes
// should use FromCover / ForRect instead.
func EqualSplit(n int) Plan {
	if n < 1 {
		n = 1
	}
	lo, hi := idSpace()
	step := (hi - lo) / uint64(n)
	bounds := make([]uint64, n+1)
	for i := 1; i < n; i++ {
		bounds[i] = lo + uint64(i)*step
	}
	bounds[0] = 0
	bounds[n] = math.MaxUint64
	return Plan{bounds: bounds}
}

// FromCover builds a plan whose cut points divide the cover's cumulative
// trixel length into n equal parts, so data uniform over the covered
// region lands evenly across shards. The cover need not contain all data:
// the outer ranges extend to 0 and MaxUint64, keeping routing total.
func FromCover(cover []htm.Range, n int) Plan {
	if n < 1 {
		n = 1
	}
	cover = htm.MergeRanges(append([]htm.Range(nil), cover...))
	var total uint64
	for _, r := range cover {
		total += r.Hi - r.Lo
	}
	if total == 0 || n == 1 {
		return EqualSplit(n)
	}
	bounds := make([]uint64, n+1)
	bounds[0] = 0
	bounds[n] = math.MaxUint64
	ci, consumed := 0, uint64(0) // walk position in the cover
	var walked uint64            // cumulative length before (ci, consumed)
	for k := 1; k < n; k++ {
		target := total / uint64(n) * uint64(k)
		for ci < len(cover) && walked+(cover[ci].Hi-cover[ci].Lo-consumed) < target {
			walked += cover[ci].Hi - cover[ci].Lo - consumed
			ci, consumed = ci+1, 0
		}
		if ci >= len(cover) {
			bounds[k] = cover[len(cover)-1].Hi
			continue
		}
		consumed += target - walked
		walked = target
		bounds[k] = cover[ci].Lo + consumed
	}
	// Cut points are non-decreasing by construction; equal neighbours
	// simply leave a shard empty, which Route never selects.
	return Plan{bounds: bounds}
}

// ForRect builds a plan balanced over the (ra, dec) box in degrees — the
// survey footprint. Falls back to EqualSplit if the rect is degenerate.
func ForRect(raMin, decMin, raMax, decMax float64, n int) Plan {
	cx, err := htm.Rect(raMin, decMin, raMax, decMax)
	if err != nil {
		return EqualSplit(n)
	}
	cover := cx.CoverWith(htm.CoverOptions{Budget: 2048})
	return FromCover(cover, n)
}

// N returns the number of shards.
func (p Plan) N() int { return len(p.bounds) - 1 }

// ShardFor returns the shard owning the given HTM ID.
func (p Plan) ShardFor(id uint64) int {
	// First bound strictly above id; id lives in the range ending there.
	i := sort.Search(len(p.bounds)-2, func(i int) bool { return p.bounds[i+1] > id })
	return i
}

// Range returns shard i's half-open ID range. The last shard's Hi is
// MaxUint64 (its true upper bound is exclusive-of-MaxUint64; no legal
// trixel ID is ever MaxUint64, so the distinction never matters).
func (p Plan) Range(i int) htm.Range {
	return htm.Range{Lo: p.bounds[i], Hi: p.bounds[i+1]}
}

// Route returns the sorted shard indices whose ranges intersect any of
// the cover's ranges. A nil or empty cover routes to every shard. The
// result is conservative by construction: every ID in the cover belongs
// to some returned shard, so pruning never loses rows.
func (p Plan) Route(cover []htm.Range) []int {
	n := p.N()
	if len(cover) == 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	out := make([]int, 0, n)
	for _, r := range cover {
		if r.Hi <= r.Lo {
			continue
		}
		lo := p.ShardFor(r.Lo)
		hi := p.ShardFor(r.Hi - 1)
		for s := lo; s <= hi; s++ {
			if len(out) == 0 || out[len(out)-1] != s {
				if len(out) > 0 && out[len(out)-1] > s {
					continue // overlapping covers are pre-merged; be safe
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// HashShard deterministically routes a non-spatial key (FNV-1a over its
// 8 bytes) to a shard — the split for tables without an htmID column.
func (p Plan) HashShard(key uint64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (key >> (8 * i)) & 0xff
		h *= prime64
	}
	return int(h % uint64(p.N()))
}

// Group owns the N shard FileGroups plus the routing and per-shard scan
// counters surfaced at /x/shards. N==1 is the unsharded degenerate case:
// all tagging and routing collapse to today's single-FileGroup behavior.
type Group struct {
	plan Plan
	fgs  []*storage.FileGroup

	perShard []shardCounters
	spatial  atomic.Uint64 // queries routed by an HTM cover
	full     atomic.Uint64 // queries routed to all shards (non-spatial)
	routed   atomic.Uint64 // Σ shards scanned over routed queries
	possible atomic.Uint64 // Σ shards total over routed queries
}

type shardCounters struct {
	pages   atomic.Uint64
	queries atomic.Uint64
}

// New builds a Group over the plan's shards. len(fgs) must equal plan.N().
func New(plan Plan, fgs []*storage.FileGroup) *Group {
	if len(fgs) != plan.N() {
		panic(fmt.Sprintf("shard: %d file groups for %d-shard plan", len(fgs), plan.N()))
	}
	return &Group{plan: plan, fgs: fgs, perShard: make([]shardCounters, len(fgs))}
}

// N returns the shard count.
func (g *Group) N() int { return len(g.fgs) }

// Plan returns the routing plan.
func (g *Group) Plan() Plan { return g.plan }

// FileGroup returns shard i's storage.
func (g *Group) FileGroup(i int) *storage.FileGroup { return g.fgs[i] }

// FileGroups returns all shards' storage, in shard order.
func (g *Group) FileGroups() []*storage.FileGroup { return g.fgs }

// RecordRoute accounts one scan execution that touched k of N shards;
// spatial marks routes derived from an HTM cover rather than a full
// fan-out. Feeds the prune-ratio counters.
func (g *Group) RecordRoute(shards []int, spatial bool) {
	if spatial {
		g.spatial.Add(1)
	} else {
		g.full.Add(1)
	}
	g.routed.Add(uint64(len(shards)))
	g.possible.Add(uint64(g.N()))
	for _, s := range shards {
		g.perShard[s].queries.Add(1)
	}
}

// AddPages accounts n heap pages scanned on shard i.
func (g *Group) AddPages(i int, n uint64) { g.perShard[i].pages.Add(n) }

// ShardStats is one shard's snapshot in Stats.
type ShardStats struct {
	Shard         int    `json:"shard"`
	RangeLo       uint64 `json:"rangeLo"`
	RangeHi       uint64 `json:"rangeHi"`
	PagesScanned  uint64 `json:"pagesScanned"`
	QueriesRouted uint64 `json:"queriesRouted"`
	PhysReads     uint64 `json:"physReads"`
	PoolWorkers   int    `json:"poolWorkers"`
}

// Stats is the /x/shards document.
type Stats struct {
	Shards        int          `json:"shards"`
	SpatialRouted uint64       `json:"spatialRouted"`
	FullRouted    uint64       `json:"fullRouted"`
	PruneRatio    float64      `json:"pruneRatio"`
	PerShard      []ShardStats `json:"perShard"`
}

// Stats snapshots the routing counters. PruneRatio is the fraction of
// shard scans avoided by routing: 1 − (shards scanned / shards possible)
// over all accounted executions.
func (g *Group) Stats() Stats {
	st := Stats{
		Shards:        g.N(),
		SpatialRouted: g.spatial.Load(),
		FullRouted:    g.full.Load(),
	}
	if p := g.possible.Load(); p > 0 {
		st.PruneRatio = 1 - float64(g.routed.Load())/float64(p)
	}
	for i := range g.fgs {
		r := g.plan.Range(i)
		st.PerShard = append(st.PerShard, ShardStats{
			Shard:         i,
			RangeLo:       r.Lo,
			RangeHi:       r.Hi,
			PagesScanned:  g.perShard[i].pages.Load(),
			QueriesRouted: g.perShard[i].queries.Load(),
			PhysReads:     g.fgs[i].PhysReads(),
			PoolWorkers:   g.fgs[i].ScanPoolStats().Workers,
		})
	}
	return st
}

// Close closes every shard's FileGroup (scan pools, then volumes),
// returning the first error.
func (g *Group) Close() error {
	var first error
	for _, fg := range g.fgs {
		if err := fg.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
