// Package resultcache caches fully serialized query responses keyed by
// statement identity and data versions — the layer above the plan cache
// in the SkyServer's repeat-lookup fast path. The paper's dominant
// traffic is millions of Explorer users replaying the same handful of
// point lookups against data that only changes at data-release
// boundaries, so once one request has paid compile + bind + scan +
// serialize, every identical request until the next data change can be
// answered from the cached bytes — before the admission gate ever sees
// it.
//
// Keys are version-independent: the web layer builds them from the plan
// cache's normalized statement key, the bound parameter vector, the
// output format, and the row limit (see sqlengine.Session.ResultKey).
// Each entry instead carries a validity witness — the CompiledPlan that
// produced it, via the Validator interface — which knows the exact
// schema and table data versions the result was computed against.
// Invalidation is lazy, exactly like the plan cache: a probe checks the
// witness against the live catalog and discards the entry when any
// version moved. DML performs no cache work at all.
//
// Entries also carry a strong ETag derived from the key and the
// versions (see ETag): the engine is deterministic and version counters
// are monotonic, so equal (key, versions) imply byte-identical bodies,
// which is precisely the strong-ETag contract HTTP conditional GET
// needs for 304 Not Modified responses.
//
// The cache is sharded: a probe takes one shard's read lock for the map
// access, stamps recency with an atomic on the entry, and counts
// hits/misses with atomics — concurrent lookups from many connections
// never serialize on a write lock. Stores and evictions (rare) take the
// shard's write lock; eviction scans for the oldest stamp within the
// shard, the same budget discipline the plan cache proved.
package resultcache

import (
	"sync"
	"sync/atomic"
)

// Validator is an entry's validity witness: Valid reports whether the
// catalog snapshot the entry was built against still matches the live
// catalog. *sqlengine.CompiledPlan implements it; the indirection keeps
// this package free of engine imports and unit-testable.
type Validator interface {
	Valid(schemaVer int64) bool
}

// Default budgets: DefaultMaxBytes bounds the whole cache (a few
// thousand typical Explorer responses), DefaultMaxEntry bounds one
// serialized body — a public-limit result set (1,000 rows) fits with
// room to spare, while an analyst's mega-scan never displaces the hot
// point lookups.
const (
	DefaultMaxBytes = 64 << 20
	DefaultMaxEntry = 1 << 20
)

// shardCount is a power of two so shard selection is a mask; 16 shards
// keep write-lock contention negligible at the request rates the
// admission gate admits.
const shardCount = 16

// Entry is one cached response: the serialized body, its Content-Type,
// the strong ETag, the workload class the query classified under (hits
// bypass admission but still report X-Query-Class), and the validity
// witness.
type Entry struct {
	// ETag is the strong entity tag (quoted, ready for the header).
	ETag string
	// ContentType is the response Content-Type header value.
	ContentType string
	// Body is the full serialized response. Never mutated after Store.
	Body []byte
	// Class is the X-Query-Class header value of the original response.
	Class string

	key      string
	witness  Validator
	bytes    int
	lastUsed atomic.Int64
}

type shard struct {
	mu       sync.RWMutex
	entries  map[string]*Entry
	curBytes int
	maxBytes int
	clock    atomic.Int64
}

// Cache is a sharded, byte-budgeted result cache. All methods are safe
// for concurrent use.
type Cache struct {
	shards   [shardCount]shard
	maxEntry int

	hits          atomic.Int64
	misses        atomic.Int64
	notModified   atomic.Int64
	fills         atomic.Int64
	fillRejected  atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
}

// New builds a cache with the given total byte budget and per-entry
// cap; zero (or negative) values take the package defaults.
func New(maxBytes, maxEntry int) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if maxEntry <= 0 {
		maxEntry = DefaultMaxEntry
	}
	c := &Cache{maxEntry: maxEntry}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*Entry)
		c.shards[i].maxBytes = maxBytes / shardCount
	}
	return c
}

// MaxEntry returns the per-entry byte cap (the fill buffers and the FITS
// materialization path size themselves against it).
func (c *Cache) MaxEntry() int { return c.maxEntry }

// fnv1a is FNV-1a over the key bytes; shard selector and ETag seed.
func fnv1a(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func (c *Cache) shard(key []byte) *shard {
	return &c.shards[fnv1a(key)&(shardCount-1)]
}

// Probe returns the valid entry for a key, or nil. A stale entry — one
// whose witness reports the catalog moved since the fill — is removed
// under the shard's write lock and counted as an invalidation; the next
// request of that shape re-executes and refills. The steady-state hit
// allocates nothing: a read-locked map access, the witness check, and an
// atomic recency stamp.
func (c *Cache) Probe(key []byte, schemaVer int64) *Entry {
	sh := c.shard(key)
	sh.mu.RLock()
	e, ok := sh.entries[string(key)]
	sh.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	if !e.witness.Valid(schemaVer) {
		sh.mu.Lock()
		// Re-check under the write lock: a concurrent fill may have
		// replaced the stale entry with a fresh one.
		if cur, ok := sh.entries[e.key]; ok && cur == e {
			delete(sh.entries, e.key)
			sh.curBytes -= e.bytes
		}
		sh.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil
	}
	e.lastUsed.Store(sh.clock.Add(1))
	c.hits.Add(1)
	return e
}

// Store fills the cache with a serialized response under the key,
// evicting oldest entries in the shard until its budget holds. The body
// must not be mutated afterwards (the web layer hands over its fill
// buffer). Bodies over the per-entry cap are rejected (counted, not
// stored) — the tee that feeds Store stops buffering at the cap, so in
// practice oversized results never get here with a complete body.
func (c *Cache) Store(key []byte, etag, contentType, class string, body []byte, witness Validator) bool {
	if witness == nil || len(body) > c.maxEntry {
		c.fillRejected.Add(1)
		return false
	}
	e := &Entry{
		ETag:        etag,
		ContentType: contentType,
		Body:        body,
		Class:       class,
		key:         string(key),
		witness:     witness,
	}
	e.bytes = len(body) + len(e.key) + len(etag) + len(contentType) + 128
	sh := c.shard(key)
	e.lastUsed.Store(sh.clock.Add(1))
	sh.mu.Lock()
	if old, ok := sh.entries[e.key]; ok {
		sh.curBytes -= old.bytes
	}
	sh.entries[e.key] = e
	sh.curBytes += e.bytes
	for sh.curBytes > sh.maxBytes && len(sh.entries) > 0 {
		var victim *Entry
		oldest := int64(0)
		for _, se := range sh.entries {
			if u := se.lastUsed.Load(); victim == nil || u < oldest {
				victim, oldest = se, u
			}
		}
		delete(sh.entries, victim.key)
		sh.curBytes -= victim.bytes
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
	c.fills.Add(1)
	return true
}

// NoteNotModified counts a conditional-GET hit answered with 304 (the
// web layer calls it when If-None-Match matched the entry's ETag).
func (c *Cache) NoteNotModified() { c.notModified.Add(1) }

// ETag renders the strong entity tag for a result key and a version
// digest (CompiledPlan.VersionDigest), quoted and ready for the header.
func ETag(key []byte, versionDigest uint64) string {
	const hex = "0123456789abcdef"
	var b [36]byte
	b[0] = '"'
	k := fnv1a(key)
	for i := 0; i < 16; i++ {
		b[1+i] = hex[(k>>uint(60-4*i))&0xf]
	}
	b[17] = '-'
	for i := 0; i < 16; i++ {
		b[18+i] = hex[(versionDigest>>uint(60-4*i))&0xf]
	}
	b[34] = '"'
	return string(b[:35])
}

// Stats is a point-in-time snapshot of the cache counters, exposed on
// the web front end's /x/resultcache endpoint (field reference:
// docs/ops.md).
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	NotModified   int64 `json:"notModified"`
	Fills         int64 `json:"fills"`
	FillRejected  int64 `json:"fillRejected"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Entries       int   `json:"entries"`
	Bytes         int   `json:"bytes"`
	MaxBytes      int   `json:"maxBytes"`
	MaxEntry      int   `json:"maxEntry"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		NotModified:   c.notModified.Load(),
		Fills:         c.fills.Load(),
		FillRejected:  c.fillRejected.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		MaxEntry:      c.maxEntry,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.curBytes
		st.MaxBytes += sh.maxBytes
		sh.mu.RUnlock()
	}
	return st
}
