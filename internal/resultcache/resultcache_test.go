package resultcache

import (
	"fmt"
	"strings"
	"testing"
)

// fakeWitness mimics a CompiledPlan's validity check: valid while the
// observed schema version equals want and the shared table version
// counter equals tableVer.
type fakeWitness struct {
	want     int64
	tableCur *uint64
	tableVer uint64
}

func (w *fakeWitness) Valid(schemaVer int64) bool {
	return schemaVer == w.want && (w.tableCur == nil || *w.tableCur == w.tableVer)
}

func TestProbeStoreHit(t *testing.T) {
	c := New(1<<20, 1<<16)
	key := []byte("select ?i0\x00\x01\x00\x00\x00\x00\x00\x00\x00\x2a")
	if e := c.Probe(key, 1); e != nil {
		t.Fatalf("probe of empty cache returned %v", e)
	}
	w := &fakeWitness{want: 1}
	if !c.Store(key, `"abc"`, "text/csv", "interactive", []byte("a,b\n1,2\n"), w) {
		t.Fatal("store rejected")
	}
	e := c.Probe(key, 1)
	if e == nil {
		t.Fatal("probe missed after store")
	}
	if string(e.Body) != "a,b\n1,2\n" || e.ETag != `"abc"` || e.ContentType != "text/csv" || e.Class != "interactive" {
		t.Fatalf("entry mangled: %+v", e)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDMLInvalidation is the acceptance-criteria test: after a data
// version bump, the stale entry is never served — the probe discards it
// and counts an invalidation.
func TestDMLInvalidation(t *testing.T) {
	c := New(1<<20, 1<<16)
	tableVer := uint64(7)
	w := &fakeWitness{want: 3, tableCur: &tableVer, tableVer: 7}
	key := []byte("select count(*) from PhotoObj")
	c.Store(key, `"v7"`, "text/csv", "interactive", []byte("n\n42\n"), w)
	if c.Probe(key, 3) == nil {
		t.Fatal("fresh entry not served")
	}

	tableVer = 8 // the DML bump
	if e := c.Probe(key, 3); e != nil {
		t.Fatalf("stale entry served after data version bump: %+v", e)
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 {
		t.Fatalf("stale entry still resident: %+v", st)
	}

	// Schema (DDL) bumps invalidate the same way.
	c.Store(key, `"v8"`, "text/csv", "interactive", []byte("n\n43\n"), &fakeWitness{want: 3})
	if e := c.Probe(key, 4); e != nil {
		t.Fatalf("stale entry served after schema version bump: %+v", e)
	}
}

func TestStoreRejectsOversizedAndWitnessless(t *testing.T) {
	c := New(1<<20, 16)
	w := &fakeWitness{want: 1}
	if c.Store([]byte("k1"), `"e"`, "text/csv", "interactive", make([]byte, 17), w) {
		t.Fatal("oversized body stored")
	}
	if c.Store([]byte("k2"), `"e"`, "text/csv", "interactive", []byte("ok"), nil) {
		t.Fatal("witnessless body stored")
	}
	if st := c.Stats(); st.FillRejected != 2 || st.Entries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEvictionHoldsBudget(t *testing.T) {
	// Budget small enough that a handful of entries overflow one shard.
	c := New(shardCount*600, 1<<16)
	w := &fakeWitness{want: 1}
	body := []byte(strings.Repeat("x", 256))
	for i := 0; i < 64; i++ {
		key := fmt.Appendf(nil, "query-%d", i)
		c.Store(key, `"e"`, "text/csv", "interactive", body, w)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions at %d bytes over a %d budget", st.Bytes, st.MaxBytes)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Bytes, st.MaxBytes)
	}
	if st.Entries == 0 {
		t.Fatal("eviction emptied the cache")
	}
}

func TestEvictionPrefersCold(t *testing.T) {
	// One-shard cache (all keys forced to one shard is fiddly; instead use
	// a budget that holds ~2 entries per shard and re-probe one key to
	// keep it warm).
	c := New(shardCount*1200, 1<<16)
	w := &fakeWitness{want: 1}
	hot := []byte("hot-query")
	c.Store(hot, `"h"`, "text/csv", "interactive", make([]byte, 400), w)
	for i := 0; i < 128; i++ {
		c.Probe(hot, 1) // keep the stamp fresh
		key := fmt.Appendf(nil, "cold-%d", i)
		c.Store(key, `"c"`, "text/csv", "interactive", make([]byte, 400), w)
	}
	if c.Probe(hot, 1) == nil {
		t.Fatal("hot entry evicted while cold entries churned")
	}
}

func TestETagStrongAndDistinct(t *testing.T) {
	k1, k2 := []byte("key-one"), []byte("key-two")
	e1 := ETag(k1, 100)
	if !strings.HasPrefix(e1, `"`) || !strings.HasSuffix(e1, `"`) {
		t.Fatalf("ETag not quoted: %s", e1)
	}
	if e1 != ETag(k1, 100) {
		t.Fatal("ETag not deterministic")
	}
	if e1 == ETag(k1, 101) {
		t.Fatal("ETag ignores version digest")
	}
	if e1 == ETag(k2, 100) {
		t.Fatal("ETag ignores key")
	}
}

func TestProbeAllocs(t *testing.T) {
	c := New(1<<20, 1<<16)
	w := &fakeWitness{want: 1}
	key := []byte("the hot key")
	c.Store(key, `"e"`, "text/csv", "interactive", []byte("a\n1\n"), w)
	n := testing.AllocsPerRun(1000, func() {
		if c.Probe(key, 1) == nil {
			t.Fatal("miss")
		}
	})
	if n > 0 {
		t.Fatalf("Probe allocates %.1f per hit, want 0", n)
	}
}
