package storage

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fillHeap(t *testing.T, h *Heap, n int) {
	t.Helper()
	pad := make([]byte, 380)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < n; i++ {
		if _, err := h.Append([]byte(fmt.Sprintf("rec%06d-%s", i, pad))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanBatchesJoinsWorkerErrors is the multi-volume failure case: when
// several workers fail concurrently, every error must surface — the old
// implementation drained a single error and silently dropped the rest.
func TestScanBatchesJoinsWorkerErrors(t *testing.T) {
	fg := NewMemFileGroup(4, 0)
	defer fg.Close()
	h := NewHeap(fg)
	fillHeap(t, h, 4000)
	const dop = 4
	if h.Pages() < dop {
		t.Fatalf("need at least %d pages, have %d", dop, h.Pages())
	}
	// Barrier: every worker reaches its first page callback before any of
	// them errors, so all four failures happen before the stop flag can
	// short-circuit the others.
	var barrier sync.WaitGroup
	barrier.Add(dop)
	workerErrs := make([]error, dop)
	err := h.ScanBatches(dop, func(worker int) (RecBatchFunc, func() error) {
		workerErrs[worker] = fmt.Errorf("worker %d failed", worker)
		first := true
		fn := func(rids []RID, recs [][]byte) error {
			if first {
				first = false
				barrier.Done()
				barrier.Wait()
				return workerErrs[worker]
			}
			return nil
		}
		return fn, nil
	})
	if err == nil {
		t.Fatal("scan succeeded, want joined worker errors")
	}
	for w := 0; w < dop; w++ {
		if !errors.Is(err, workerErrs[w]) {
			t.Errorf("joined error missing worker %d: %v", w, err)
		}
	}
}

// TestScanBatchesSingleErrorUnwrapped keeps the single-failure contract:
// one failing worker returns its error directly (no join wrapper), so
// sentinel comparisons in callers keep working.
func TestScanBatchesSingleErrorUnwrapped(t *testing.T) {
	fg := NewMemFileGroup(4, 0)
	defer fg.Close()
	h := NewHeap(fg)
	fillHeap(t, h, 2000)
	sentinel := errors.New("sentinel")
	err := h.ScanBatches(4, func(worker int) (RecBatchFunc, func() error) {
		fn := func(rids []RID, recs [][]byte) error {
			if worker == 0 {
				return sentinel
			}
			return nil
		}
		return fn, nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel unwrapped", err)
	}
}

// TestScanBatchesCtxCancel verifies both scan paths stop once the context
// is done and report its error.
func TestScanBatchesCtxCancel(t *testing.T) {
	fg := NewMemFileGroup(4, 0)
	defer fg.Close()
	h := NewHeap(fg)
	fillHeap(t, h, 8000)
	for _, dop := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var pages atomic.Int64
		err := h.ScanBatchesCtx(ctx, dop, func(worker int) (RecBatchFunc, func() error) {
			fn := func(rids []RID, recs [][]byte) error {
				if pages.Add(1) == 2 {
					cancel()
				}
				return nil
			}
			return fn, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("dop=%d: err = %v, want context.Canceled", dop, err)
		}
		if n, total := pages.Load(), int64(h.Pages()); n >= total {
			t.Errorf("dop=%d: visited all %d pages despite cancellation", dop, total)
		}
	}
}

// gateVolume blocks every page read on a gate channel and counts reads
// issued after the test flips the cancelled flag. It simulates a volume
// that is busy (a long simulated seek) while the client gives up.
type gateVolume struct {
	Volume
	gate        chan struct{} // closed to release blocked reads
	reads       atomic.Int64
	cancelled   atomic.Bool
	afterCancel atomic.Int64
}

func (v *gateVolume) ReadPage(n uint32, buf []byte) error {
	if v.cancelled.Load() {
		v.afterCancel.Add(1)
	}
	v.reads.Add(1)
	<-v.gate
	return v.Volume.ReadPage(n, buf)
}

// TestScanCancelWhileVolumeBlocked pins the per-page cancellation
// contract: a scan whose volume reads are stuck must, once the context is
// cancelled and the in-flight reads return, issue ZERO further page
// reads. The workers were all blocked inside ReadPage at cancel time, so
// any later read means a scan path ran a page without re-checking its
// context (the serial path used to check only every 16th page; the
// parallel path only per 8-page morsel claim).
func TestScanCancelWhileVolumeBlocked(t *testing.T) {
	for _, dop := range []int{1, 4} {
		gv := &gateVolume{Volume: NewMemVolume(), gate: make(chan struct{})}
		fg := NewFileGroup([]Volume{gv}, 0) // no cache: every read hits the volume
		h := NewHeap(fg)
		close(gv.gate) // loading goes through ReadPage too; let it pass
		fillHeap(t, h, 4000)
		gv.gate = make(chan struct{})
		gv.reads.Store(0)

		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			done <- h.ScanBatchesCtx(ctx, dop, func(worker int) (RecBatchFunc, func() error) {
				return func(rids []RID, recs [][]byte) error { return nil }, nil
			})
		}()

		// Wait until every worker is stuck inside a ReadPage, then cancel
		// and release the gate.
		deadline := time.Now().Add(5 * time.Second)
		for gv.reads.Load() < int64(dop) {
			if time.Now().After(deadline) {
				t.Fatalf("dop=%d: only %d reads in flight", dop, gv.reads.Load())
			}
			time.Sleep(100 * time.Microsecond)
		}
		gv.cancelled.Store(true)
		cancel()
		close(gv.gate)

		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("dop=%d: err = %v, want context.Canceled", dop, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("dop=%d: scan still running after cancel + gate release", dop)
		}
		if n := gv.afterCancel.Load(); n != 0 {
			t.Errorf("dop=%d: %d page reads issued after cancellation", dop, n)
		}
		fg.Close()
	}
}

// TestScanPoolPersists proves the tentpole property: repeated parallel
// scans reuse the file group's worker pool instead of spawning goroutines
// per query.
func TestScanPoolPersists(t *testing.T) {
	fg := NewMemFileGroup(4, 0)
	defer fg.Close()
	h := NewHeap(fg)
	fillHeap(t, h, 4000)
	countScan := func() int64 {
		var rows atomic.Int64
		if err := h.Scan(4, func(rid RID, rec []byte) error {
			rows.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return rows.Load()
	}
	want := countScan() // warm-up creates the pool
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if got := countScan(); got != want {
			t.Fatalf("scan %d saw %d rows, want %d", i, got, want)
		}
	}
	// Allow scheduling noise, but 50 scans must not have grown the
	// goroutine count by anything like 50 × dop.
	if now := runtime.NumGoroutine(); now > base+16 {
		t.Errorf("goroutines grew from %d to %d across 50 scans", base, now)
	}
	st := fg.ScanPoolStats()
	if st.Workers == 0 || st.Jobs < 50 {
		t.Errorf("pool stats = %+v, want a live pool with >= 50 jobs", st)
	}
}

// TestScanPoolCloseStopsWorkers verifies Close retires the pool's
// goroutines (and that scans still complete inline afterwards).
func TestScanPoolCloseStopsWorkers(t *testing.T) {
	fg := NewMemFileGroup(4, 0)
	h := NewHeap(fg)
	fillHeap(t, h, 2000)
	if err := h.Scan(4, func(RID, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	workers := fg.ScanPoolStats().Workers
	if workers == 0 {
		t.Fatal("no pool after a parallel scan")
	}
	before := runtime.NumGoroutine()
	if err := fg.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before-workers+6 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines still at %d (was %d with %d workers)",
				runtime.NumGoroutine(), before, workers)
		}
		time.Sleep(time.Millisecond)
	}
}
