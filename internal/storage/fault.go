package storage

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Error classification for the read path. A Volume implementation (or a
// fault-injecting wrapper) marks recoverable failures by wrapping
// ErrTransient; everything else is treated as permanent and surfaces
// immediately. Checksum mismatches are their own class: the stored bytes may
// be fine (torn read, flipped bit on the wire), so a bounded re-read is
// attempted before declaring the page corrupt.
var (
	// ErrTransient marks a read failure that may succeed on retry.
	ErrTransient = errors.New("transient I/O error")

	// ErrChecksum marks a page whose stored checksum does not match its
	// contents after retries were exhausted.
	ErrChecksum = errors.New("page checksum mismatch")

	// ErrScanPanic marks a scan shard that panicked; the panic is confined
	// to the owning query, which fails with this error.
	ErrScanPanic = errors.New("scan shard panicked")
)

const (
	// maxReadAttempts bounds re-reads of a single page (first try + 3
	// retries) regardless of the query's remaining retry budget.
	maxReadAttempts = 4

	// DefaultQueryRetryBudget is the total number of page re-reads one
	// query may spend before transient errors become permanent for it.
	DefaultQueryRetryBudget = 64

	retryBackoffBase = 50 * time.Microsecond
	retryBackoffCap  = 2 * time.Millisecond
)

type retryBudgetKey struct{}

// retryBudget is shared by reference across every read a query issues.
type retryBudget struct {
	left atomic.Int64
}

// WithRetryBudget returns a context allowing at most n page re-reads across
// all reads issued under it. Contexts without a budget allow up to
// maxReadAttempts per read, unbounded across the query.
func WithRetryBudget(ctx context.Context, n int) context.Context {
	b := &retryBudget{}
	b.left.Store(int64(n))
	return context.WithValue(ctx, retryBudgetKey{}, b)
}

// takeRetry consumes one retry from the context's budget, reporting whether a
// retry is allowed.
func takeRetry(ctx context.Context) bool {
	b, ok := ctx.Value(retryBudgetKey{}).(*retryBudget)
	if !ok {
		return true
	}
	return b.left.Add(-1) >= 0
}

// retryDelay returns the backoff before retry attempt (1-based), with full
// jitter: uniform in (0, base·2^(attempt-1)] capped at retryBackoffCap.
func retryDelay(attempt int) time.Duration {
	d := retryBackoffBase << (attempt - 1)
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// sleepRetry waits the backoff for attempt or returns the context's error if
// it is done first.
func sleepRetry(ctx context.Context, attempt int) error {
	t := time.NewTimer(retryDelay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
