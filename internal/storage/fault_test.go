package storage

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// flakyVolume wraps a Volume, failing configured reads with a transient
// error a set number of times before letting them through.
type flakyVolume struct {
	Volume
	mu     sync.Mutex
	fails  map[uint32]int // local page -> remaining transient failures
	always error          // if set, every read fails with this error
	reads  int
}

func (v *flakyVolume) ReadPage(n uint32, buf []byte) error {
	v.mu.Lock()
	v.reads++
	if v.always != nil {
		err := v.always
		v.mu.Unlock()
		return err
	}
	if left := v.fails[n]; left > 0 {
		v.fails[n] = left - 1
		v.mu.Unlock()
		return fmt.Errorf("%w: injected", ErrTransient)
	}
	v.mu.Unlock()
	return v.Volume.ReadPage(n, buf)
}

// fillHeapRIDs appends n distinct records and returns their RIDs.
func fillHeapRIDs(t *testing.T, h *Heap, n int) []RID {
	t.Helper()
	rids := make([]RID, n)
	for i := range rids {
		rid, err := h.Append([]byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", 200))))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		rids[i] = rid
	}
	return rids
}

func TestChecksumRoundTrip(t *testing.T) {
	fg := NewMemFileGroup(2, 0) // no cache: every read is physical + verified
	defer fg.Close()
	h := NewHeap(fg)
	rids := fillHeapRIDs(t, h, 100)
	buf := make([]byte, PageSize)
	for i, rid := range rids {
		rec, err := h.Get(rid, buf)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("record-%04d-", i); !strings.HasPrefix(string(rec), want) {
			t.Fatalf("get %d: got %q, want prefix %q", i, rec, want)
		}
	}
	if got := fg.ChecksumFails(); got != 0 {
		t.Fatalf("checksum failures on clean data: %d", got)
	}
}

func TestChecksumDetectsStoredCorruption(t *testing.T) {
	mv := NewMemVolume()
	fg := NewFileGroup([]Volume{mv}, 0)
	defer fg.Close()
	h := NewHeap(fg)
	rids := fillHeapRIDs(t, h, 40)

	// Flip one record byte in the stored page: every re-read sees the same
	// corruption, so the error must be permanent-after-retries.
	mv.mu.Lock()
	mv.pages[0][pageHeaderSize+3] ^= 0x40
	mv.mu.Unlock()

	buf := make([]byte, PageSize)
	_, err := h.Get(rids[0], buf)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("get corrupted page: err = %v, want ErrChecksum", err)
	}
	if fg.ChecksumFails() != maxReadAttempts {
		t.Fatalf("checksum failures = %d, want %d (one per attempt)", fg.ChecksumFails(), maxReadAttempts)
	}
	if fg.ReadRetries() != maxReadAttempts-1 {
		t.Fatalf("read retries = %d, want %d", fg.ReadRetries(), maxReadAttempts-1)
	}

	// A scan over the corrupted heap fails with the same classified error —
	// never silently delivers bad bytes.
	err = h.Scan(1, func(RID, []byte) error { return nil })
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("scan over corrupted page: err = %v, want ErrChecksum", err)
	}
}

func TestTransientReadRetriesSucceed(t *testing.T) {
	mv := NewMemVolume()
	fv := &flakyVolume{Volume: mv, fails: map[uint32]int{}}
	fg := NewFileGroup([]Volume{fv}, 0)
	defer fg.Close()
	h := NewHeap(fg)
	rids := fillHeapRIDs(t, h, 40)

	fv.mu.Lock()
	fv.fails[0] = 2 // fail twice, then succeed
	fv.mu.Unlock()

	buf := make([]byte, PageSize)
	if _, err := h.Get(rids[0], buf); err != nil {
		t.Fatalf("get with transient faults: %v", err)
	}
	if got := fg.ReadRetries(); got != 2 {
		t.Fatalf("read retries = %d, want 2", got)
	}
	if got := fg.ChecksumFails(); got != 0 {
		t.Fatalf("checksum failures = %d, want 0", got)
	}
}

func TestTransientExhaustsAttempts(t *testing.T) {
	fv := &flakyVolume{Volume: NewMemVolume(), always: fmt.Errorf("%w: disk glitch", ErrTransient)}
	fg := NewFileGroup([]Volume{fv}, 0)
	defer fg.Close()

	buf := make([]byte, PageSize)
	err := fg.ReadPage(0, buf)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if fv.reads != maxReadAttempts {
		t.Fatalf("volume reads = %d, want %d", fv.reads, maxReadAttempts)
	}
}

func TestRetryBudgetBoundsRetries(t *testing.T) {
	fv := &flakyVolume{Volume: NewMemVolume(), always: fmt.Errorf("%w: disk glitch", ErrTransient)}
	fg := NewFileGroup([]Volume{fv}, 0)
	defer fg.Close()

	// Zero budget: the first failure is final, no re-reads at all.
	ctx := WithRetryBudget(context.Background(), 0)
	buf := make([]byte, PageSize)
	err := fg.ReadPageCtx(ctx, 0, buf)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if fv.reads != 1 {
		t.Fatalf("volume reads = %d, want 1 under zero budget", fv.reads)
	}

	// A budget of 1 shares across reads under the same context: the first
	// read spends it, the second gets none.
	fv.mu.Lock()
	fv.reads = 0
	fv.mu.Unlock()
	ctx = WithRetryBudget(context.Background(), 1)
	_ = fg.ReadPageCtx(ctx, 0, buf)
	_ = fg.ReadPageCtx(ctx, 0, buf)
	if fv.reads != 3 {
		t.Fatalf("volume reads = %d, want 3 (1+retry, then 1)", fv.reads)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	permanent := errors.New("medium failure")
	fv := &flakyVolume{Volume: NewMemVolume(), always: permanent}
	fg := NewFileGroup([]Volume{fv}, 0)
	defer fg.Close()

	buf := make([]byte, PageSize)
	err := fg.ReadPage(0, buf)
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if fv.reads != 1 {
		t.Fatalf("volume reads = %d, want 1 (no retries for permanent errors)", fv.reads)
	}
	if fg.ReadRetries() != 0 {
		t.Fatalf("read retries = %d, want 0", fg.ReadRetries())
	}
}

func TestCanceledContextStopsRetries(t *testing.T) {
	fv := &flakyVolume{Volume: NewMemVolume(), always: fmt.Errorf("%w: disk glitch", ErrTransient)}
	fg := NewFileGroup([]Volume{fv}, 0)
	defer fg.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf := make([]byte, PageSize)
	err := fg.ReadPageCtx(ctx, 0, buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fv.reads != 1 {
		t.Fatalf("volume reads = %d, want 1 (no backoff sleep after cancel)", fv.reads)
	}
}

func TestScanShardPanicIsolated(t *testing.T) {
	fg := NewMemFileGroup(4, 1<<10)
	defer fg.Close()
	h := NewHeap(fg)
	fillHeap(t, h, 400) // several pages across all stripes

	// Panic on a fixed page so exactly one shard — whichever claims it —
	// blows up, regardless of how the pool schedules shards.
	err := h.ScanBatches(4, func(worker int) (RecBatchFunc, func() error) {
		return func(rids []RID, recs [][]byte) error {
			if rids[0].Page() == 2 {
				panic("poisoned page decode")
			}
			return nil
		}, nil
	})
	if !errors.Is(err, ErrScanPanic) {
		t.Fatalf("scan with panicking shard: err = %v, want ErrScanPanic", err)
	}

	// The pool and heap survive: a follow-up scan sees every record.
	var mu sync.Mutex
	seen := 0
	err = h.Scan(4, func(RID, []byte) error {
		mu.Lock()
		seen++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("scan after panic: %v", err)
	}
	if seen != 400 {
		t.Fatalf("rows after panic = %d, want 400", seen)
	}
}
