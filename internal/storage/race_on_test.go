//go:build race

package storage

// raceEnabled: see race_off_test.go.
const raceEnabled = true
