package storage

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPageInsertAndRead(t *testing.T) {
	p := newPage()
	recs := [][]byte{
		[]byte("first record"),
		[]byte("second"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	var slots []int
	for _, r := range recs {
		s, ok := p.insert(r)
		if !ok {
			t.Fatalf("insert of %d bytes failed", len(r))
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, ok := p.record(s)
		if !ok || !bytes.Equal(got, recs[i]) {
			t.Fatalf("record(%d) mismatch", s)
		}
	}
	if _, ok := p.record(99); ok {
		t.Error("out-of-range slot returned a record")
	}
}

func TestPageFillAndOverflow(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte{1}, 1000)
	n := 0
	for {
		if _, ok := p.insert(rec); !ok {
			break
		}
		n++
	}
	// 8192 - 4 header; each record costs 1000 + 4 slot = 1004.
	if want := (PageSize - pageHeaderSize) / 1004; n != want {
		t.Errorf("fit %d records, want %d", n, want)
	}
	if _, ok := p.insert([]byte{1}); !ok {
		t.Error("tiny record should still fit after large-record overflow")
	}
}

func TestPageMaxRecord(t *testing.T) {
	p := newPage()
	if _, ok := p.insert(bytes.Repeat([]byte{1}, MaxRecordSize)); !ok {
		t.Error("max-size record rejected")
	}
	p2 := newPage()
	if _, ok := p2.insert(bytes.Repeat([]byte{1}, MaxRecordSize+1)); ok {
		t.Error("oversized record accepted")
	}
}

func TestPageDelete(t *testing.T) {
	p := newPage()
	s, _ := p.insert([]byte("doomed"))
	if !p.del(s) {
		t.Fatal("delete failed")
	}
	if _, ok := p.record(s); ok {
		t.Error("tombstoned record still readable")
	}
	if p.del(s) {
		t.Error("double delete succeeded")
	}
	if p.del(42) {
		t.Error("deleting invalid slot succeeded")
	}
}

func TestMemVolumeRoundTrip(t *testing.T) {
	v := NewMemVolume()
	buf := make([]byte, PageSize)
	buf[0] = 0xCD
	if err := v.WritePage(3, buf); err != nil {
		t.Fatal(err)
	}
	if v.Pages() != 4 {
		t.Errorf("Pages = %d, want 4", v.Pages())
	}
	got := make([]byte, PageSize)
	if err := v.ReadPage(3, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xCD {
		t.Error("read back wrong data")
	}
	if err := v.ReadPage(9, got); err == nil {
		t.Error("read past end accepted")
	}
	if err := v.WritePage(0, []byte{1}); err == nil {
		t.Error("short page accepted")
	}
}

func TestFileVolumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol0.dat")
	v, err := NewFileVolume(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	buf := make([]byte, PageSize)
	for i := uint32(0); i < 5; i++ {
		buf[0] = byte(i)
		if err := v.WritePage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, PageSize)
	for i := uint32(0); i < 5; i++ {
		if err := v.ReadPage(i, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Errorf("page %d corrupt", i)
		}
	}
	if err := v.ReadPage(7, got); err == nil {
		t.Error("read past end accepted")
	}
}

func TestHeapAppendGet(t *testing.T) {
	fg := NewMemFileGroup(4, 64)
	h := NewHeap(fg)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Append([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.Rows() != 100 {
		t.Errorf("Rows = %d", h.Rows())
	}
	buf := make([]byte, PageSize)
	for i, rid := range rids {
		rec, err := h.Get(rid, buf)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("record-%03d", i); string(rec) != want {
			t.Errorf("Get(%v) = %q, want %q", rid, rec, want)
		}
	}
	if _, err := h.Get(MakeRID(999, 0), buf); err == nil {
		t.Error("Get of absent page accepted")
	}
}

func TestHeapSpansPagesAndVolumes(t *testing.T) {
	fg := NewMemFileGroup(4, 64)
	h := NewHeap(fg)
	rec := bytes.Repeat([]byte{7}, 3000) // ~2 per page, forces many pages
	for i := 0; i < 50; i++ {
		if _, err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.Pages() < 20 {
		t.Errorf("expected ≥20 pages, got %d", h.Pages())
	}
	// All four volumes must hold pages (striping).
	for i, v := range fg.vols {
		if v.Pages() == 0 {
			t.Errorf("volume %d received no pages", i)
		}
	}
}

func TestHeapDelete(t *testing.T) {
	fg := NewMemFileGroup(2, 64)
	h := NewHeap(fg)
	rid, _ := h.Append([]byte("doomed"))
	keep, _ := h.Append([]byte("keeper"))
	ok, err := h.Delete(rid)
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	if h.Rows() != 1 {
		t.Errorf("Rows = %d after delete", h.Rows())
	}
	buf := make([]byte, PageSize)
	if _, err := h.Get(rid, buf); err == nil {
		t.Error("deleted record still readable")
	}
	if rec, err := h.Get(keep, buf); err != nil || string(rec) != "keeper" {
		t.Error("surviving record damaged by delete")
	}
	if ok, _ := h.Delete(rid); ok {
		t.Error("double delete reported live record")
	}
	if _, err := h.Delete(MakeRID(999, 0)); err == nil {
		t.Error("delete of absent page accepted")
	}
}

func TestHeapScanSerialAndParallel(t *testing.T) {
	fg := NewMemFileGroup(4, 256)
	h := NewHeap(fg)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := h.Append([]byte(fmt.Sprintf("r%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, dop := range []int{1, 4, 16} {
		var count atomic.Int64
		seen := sync.Map{}
		err := h.Scan(dop, func(rid RID, rec []byte) error {
			count.Add(1)
			if _, dup := seen.LoadOrStore(rid, true); dup {
				return fmt.Errorf("rid %v visited twice", rid)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		if count.Load() != n {
			t.Errorf("dop=%d visited %d, want %d", dop, count.Load(), n)
		}
	}
}

func TestHeapScanSkipsDeleted(t *testing.T) {
	fg := NewMemFileGroup(2, 64)
	h := NewHeap(fg)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, _ := h.Append([]byte{byte(i)})
		rids = append(rids, rid)
	}
	for i := 0; i < 100; i += 2 {
		if _, err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	_ = h.Scan(1, func(rid RID, rec []byte) error {
		if rec[0]%2 == 0 {
			t.Errorf("deleted record %d surfaced in scan", rec[0])
		}
		n++
		return nil
	})
	if n != 50 {
		t.Errorf("scan visited %d, want 50", n)
	}
}

var errStop = errors.New("stop")

func TestHeapScanEarlyStop(t *testing.T) {
	fg := NewMemFileGroup(4, 256)
	h := NewHeap(fg)
	rec := bytes.Repeat([]byte{1}, 2000)
	for i := 0; i < 1000; i++ {
		if _, err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	var visited atomic.Int64
	err := h.Scan(4, func(rid RID, rec []byte) error {
		if visited.Add(1) >= 10 {
			return errStop
		}
		return nil
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("err = %v, want errStop", err)
	}
	if v := visited.Load(); v > 200 {
		t.Errorf("early stop scanned %d records; abort flag not effective", v)
	}
}

func TestHeapEmptyScan(t *testing.T) {
	h := NewHeap(NewMemFileGroup(2, 8))
	if err := h.Scan(4, func(RID, []byte) error { return errStop }); err != nil {
		t.Errorf("empty scan: %v", err)
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h := NewHeap(NewMemFileGroup(1, 8))
	if _, err := h.Append(bytes.Repeat([]byte{1}, MaxRecordSize+1)); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestHeapBytesAccounting(t *testing.T) {
	h := NewHeap(NewMemFileGroup(2, 8))
	rid, _ := h.Append(bytes.Repeat([]byte{1}, 100))
	_, _ = h.Append(bytes.Repeat([]byte{1}, 200))
	if h.Bytes() != 300 {
		t.Errorf("Bytes = %d, want 300", h.Bytes())
	}
	_, _ = h.Delete(rid)
	if h.Bytes() != 200 {
		t.Errorf("Bytes after delete = %d, want 200", h.Bytes())
	}
}

func TestHeapRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		fg := NewMemFileGroup(3, 64)
		h := NewHeap(fg)
		var rids []RID
		var kept [][]byte
		for _, p := range payloads {
			if len(p) > MaxRecordSize {
				continue
			}
			rid, err := h.Append(p)
			if err != nil {
				return false
			}
			rids = append(rids, rid)
			kept = append(kept, p)
		}
		buf := make([]byte, PageSize)
		for i, rid := range rids {
			rec, err := h.Get(rid, buf)
			if err != nil || !bytes.Equal(rec, kept[i]) {
				return false
			}
		}
		return h.Rows() == uint64(len(rids))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPageCacheWarmReads(t *testing.T) {
	fg := NewMemFileGroup(2, 1024)
	h := NewHeap(fg)
	for i := 0; i < 500; i++ {
		_, _ = h.Append(bytes.Repeat([]byte{byte(i)}, 1000))
	}
	fg.DropCache()
	before := fg.PhysReads()
	_ = h.Scan(1, func(RID, []byte) error { return nil })
	coldReads := fg.PhysReads() - before

	before = fg.PhysReads()
	_ = h.Scan(1, func(RID, []byte) error { return nil })
	warmReads := fg.PhysReads() - before

	if coldReads == 0 {
		t.Fatal("cold scan performed no physical reads")
	}
	if warmReads != 0 {
		t.Errorf("warm scan performed %d physical reads, want 0", warmReads)
	}
}

func TestDropCacheForcesPhysicalReads(t *testing.T) {
	fg := NewMemFileGroup(2, 1024)
	h := NewHeap(fg)
	for i := 0; i < 100; i++ {
		_, _ = h.Append(bytes.Repeat([]byte{1}, 1000))
	}
	_ = h.Scan(1, func(RID, []byte) error { return nil }) // warm it
	fg.DropCache()
	before := fg.PhysReads()
	_ = h.Scan(1, func(RID, []byte) error { return nil })
	if fg.PhysReads() == before {
		t.Error("scan after DropCache read nothing physically")
	}
}

func TestPacerRate(t *testing.T) {
	// 100 model-MB/s with SpeedUp 50 → 5000 MB/s wall: 16 MB ≈ 3.2 ms.
	p := newPacer(100, 50)
	const total = 16 * 1024 * 1024
	start := time.Now()
	for done := 0; done < total; done += PageSize {
		p.wait(PageSize)
	}
	elapsed := time.Since(start).Seconds()
	wantSec := float64(total) / (100e6 * 50)
	if elapsed < wantSec*0.5 || elapsed > wantSec*4+0.05 {
		t.Errorf("paced 16MB in %.4fs, want ≈%.4fs", elapsed, wantSec)
	}
}

// throttledScanRate builds a striped heap of pagesPerDisk pages per disk
// under the model, scans it cold, and returns the model-MB/s achieved.
func throttledScanRate(t *testing.T, disks, pagesPerDisk int, cfg DiskModelConfig) float64 {
	t.Helper()
	raw := make([]Volume, disks)
	for i := range raw {
		raw[i] = NewMemVolume()
	}
	vols := NewThrottledVolumes(raw, cfg)
	fg := NewFileGroup(vols, 0) // no cache: every read pays the model
	h := NewHeap(fg)
	rec := bytes.Repeat([]byte{1}, 7900) // ~1 record per page
	for i := 0; i < pagesPerDisk*disks; i++ {
		if _, err := h.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := h.Scan(disks, func(RID, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	modelSec := time.Since(start).Seconds() * cfg.SpeedUp
	return float64(fg.PhysBytes()) / 1e6 / modelSec
}

func TestThrottledScanScalesWithDisks(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput assertion; race instrumentation skews the rate")
	}
	// With per-disk 40 model-MB/s and no controller/bus caps, scanning a
	// striped heap with one worker per volume should scale nearly
	// linearly from 1 to 4 disks.
	cfg := DiskModelConfig{DiskMBps: 40, DisksPerController: 100, SpeedUp: 20}
	one := throttledScanRate(t, 1, 1024, cfg)
	four := throttledScanRate(t, 4, 1024, cfg)
	if one < 25 || one > 60 {
		t.Errorf("1-disk rate = %.1f model-MB/s, want ≈40", one)
	}
	if four < one*2.5 {
		t.Errorf("4-disk rate %.1f does not scale from 1-disk %.1f", four, one)
	}
}

func TestControllerCap(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput assertion; race instrumentation skews the rate")
	}
	// 6 disks on one controller capped at 119 must not exceed the cap.
	cfg := DiskModelConfig{DiskMBps: 40, ControllerMBps: 119, DisksPerController: 6, SpeedUp: 20}
	rate := throttledScanRate(t, 6, 512, cfg)
	if rate > 119*1.3 {
		t.Errorf("rate %.1f exceeds 119 MB/s controller cap", rate)
	}
	if rate < 119*0.5 {
		t.Errorf("rate %.1f far below controller cap; pacing too strict", rate)
	}
}

func TestRIDEncoding(t *testing.T) {
	f := func(pg uint32, slot uint16) bool {
		r := MakeRID(uint64(pg), int(slot))
		return r.Page() == uint64(pg) && r.Slot() == int(slot)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHeapAppend(b *testing.B) {
	fg := NewMemFileGroup(4, 1024)
	h := NewHeap(fg)
	rec := bytes.Repeat([]byte{1}, 2000)
	b.ReportAllocs()
	b.SetBytes(int64(len(rec)))
	for i := 0; i < b.N; i++ {
		if _, err := h.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScanWarm(b *testing.B) {
	fg := NewMemFileGroup(4, 1<<20)
	h := NewHeap(fg)
	rec := bytes.Repeat([]byte{1}, 2000)
	for i := 0; i < 10000; i++ {
		_, _ = h.Append(rec)
	}
	b.ResetTimer()
	b.SetBytes(int64(10000 * len(rec)))
	for i := 0; i < b.N; i++ {
		if err := h.Scan(4, func(RID, []byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeleteThenAppendDoesNotResurrect(t *testing.T) {
	// Regression: Delete on the open (last) page must tombstone the open
	// buffer too, or the next Append's write-through resurrects the row.
	fg := NewMemFileGroup(1, 16)
	h := NewHeap(fg)
	rid1, _ := h.Append([]byte("victim"))
	if ok, err := h.Delete(rid1); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, err := h.Append([]byte("later")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if _, err := h.Get(rid1, buf); err == nil {
		t.Fatal("deleted record resurrected by subsequent append")
	}
	n := 0
	_ = h.Scan(1, func(RID, []byte) error { n++; return nil })
	if n != 1 {
		t.Fatalf("scan sees %d rows, want 1", n)
	}
}
