// Package storage implements the SkyServer's physical layer: fixed-size
// slotted pages in heap files, striped round-robin across a group of
// volumes, scanned sequentially with one worker per volume.
//
// This mirrors the paper's physical design (§9.2): "The data tables are all
// created in one file group. The database files are spread across 4 mirrored
// volumes … SQL Server stripes the tables across all these files and hence
// across all these disks. It detects the sequential access, creates the
// parallel prefetch threads …  this automatically gives the sum of the disk
// bandwidths."
//
// Volumes are either in-memory (tests, examples) or file-backed. A volume
// may additionally be wrapped in a disk model that throttles reads to a
// configured per-disk bandwidth with shared per-controller and per-bus caps,
// which is how the Figure 15 scan-scaling experiment (disk → controller →
// PCI-bus → CPU saturation) is reproduced without SCSI hardware.
package storage

import (
	"fmt"
	"os"
	"sync"
)

// PageSize is the fixed page size, matching SQL Server's 8 KB pages.
const PageSize = 8192

// Volume is one simulated disk: an array of fixed-size pages.
type Volume interface {
	// ReadPage copies page n into buf (len(buf) == PageSize).
	ReadPage(n uint32, buf []byte) error
	// WritePage stores buf as page n, extending the volume if needed.
	WritePage(n uint32, buf []byte) error
	// Pages returns the number of allocated pages.
	Pages() uint32
	// Close releases resources.
	Close() error
}

// MemVolume keeps pages in memory. It is safe for concurrent use.
type MemVolume struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemVolume returns an empty in-memory volume.
func NewMemVolume() *MemVolume { return &MemVolume{} }

// ReadPage implements Volume.
func (v *MemVolume) ReadPage(n uint32, buf []byte) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(n) >= len(v.pages) {
		return fmt.Errorf("storage: read past end: page %d of %d", n, len(v.pages))
	}
	copy(buf, v.pages[n])
	return nil
}

// WritePage implements Volume.
func (v *MemVolume) WritePage(n uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: page must be %d bytes, got %d", PageSize, len(buf))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for int(n) >= len(v.pages) {
		v.pages = append(v.pages, nil)
	}
	if v.pages[n] == nil {
		v.pages[n] = make([]byte, PageSize)
	}
	copy(v.pages[n], buf)
	return nil
}

// Pages implements Volume.
func (v *MemVolume) Pages() uint32 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return uint32(len(v.pages))
}

// Close implements Volume.
func (v *MemVolume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pages = nil
	return nil
}

// FileVolume stores pages in an operating-system file, for databases larger
// than memory (the paper's 80 GB EDR scale).
type FileVolume struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32
}

// NewFileVolume creates (truncating) a file-backed volume at path.
func NewFileVolume(path string) (*FileVolume, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create volume: %w", err)
	}
	return &FileVolume{f: f}, nil
}

// ReadPage implements Volume.
func (v *FileVolume) ReadPage(n uint32, buf []byte) error {
	v.mu.Lock()
	pages := v.pages
	v.mu.Unlock()
	if n >= pages {
		return fmt.Errorf("storage: read past end: page %d of %d", n, pages)
	}
	_, err := v.f.ReadAt(buf[:PageSize], int64(n)*PageSize)
	return err
}

// WritePage implements Volume.
func (v *FileVolume) WritePage(n uint32, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: page must be %d bytes, got %d", PageSize, len(buf))
	}
	if _, err := v.f.WriteAt(buf, int64(n)*PageSize); err != nil {
		return err
	}
	v.mu.Lock()
	if n+1 > v.pages {
		v.pages = n + 1
	}
	v.mu.Unlock()
	return nil
}

// Pages implements Volume.
func (v *FileVolume) Pages() uint32 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.pages
}

// Close implements Volume.
func (v *FileVolume) Close() error {
	name := v.f.Name()
	if err := v.f.Close(); err != nil {
		return err
	}
	return os.Remove(name)
}
