package storage

import (
	"encoding/binary"
	"hash/crc32"
)

// Slotted page layout (little-endian):
//
//	offset 0: uint16 slot count
//	offset 2: uint16 free-space start (first byte past the last record)
//	offset 4: uint32 CRC32-C page checksum (over the whole page minus
//	          these 4 bytes), stamped by FileGroup.WritePage and verified
//	          on every physical read — a torn or bit-flipped page is a
//	          detected error, never silent corruption
//	offset 8: record bytes, appended upward
//	end of page: slot directory growing downward, 4 bytes per slot:
//	             uint16 record offset, uint16 record length + 1
//
// A slot with stored length 0 is a tombstone (deleted record) — live records
// store length+1 so zero-byte records remain distinguishable. Slot numbers
// are never reused, so RIDs stay stable — the same ghost-record discipline
// the loader's UNDO relies on.

const (
	pageHeaderSize   = 8
	pageChecksumOff  = 4
	pageChecksumSize = 4
	slotSize         = 4
)

// MaxRecordSize is the largest record a page can hold.
const MaxRecordSize = PageSize - pageHeaderSize - slotSize

// castagnoli is the CRC32-C table; the polynomial has hardware support on
// amd64/arm64, so stamping costs well under a microsecond per 8 KB page.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageChecksum computes the CRC32-C of a page excluding the 4 checksum bytes
// themselves.
func pageChecksum(p []byte) uint32 {
	sum := crc32.Update(0, castagnoli, p[:pageChecksumOff])
	return crc32.Update(sum, castagnoli, p[pageChecksumOff+pageChecksumSize:])
}

// stampPageChecksum writes the page's checksum into its header.
func stampPageChecksum(p []byte) {
	binary.LittleEndian.PutUint32(p[pageChecksumOff:], pageChecksum(p))
}

// verifyPageChecksum reports whether the stored checksum matches the page
// contents.
func verifyPageChecksum(p []byte) bool {
	return binary.LittleEndian.Uint32(p[pageChecksumOff:]) == pageChecksum(p)
}

type page []byte

func newPage() page {
	p := page(make([]byte, PageSize))
	binary.LittleEndian.PutUint16(p[2:], pageHeaderSize)
	return p
}

func (p page) slotCount() int { return int(binary.LittleEndian.Uint16(p[0:])) }
func (p page) freeStart() int { return int(binary.LittleEndian.Uint16(p[2:])) }

func (p page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p[0:], uint16(n)) }
func (p page) setFreeStart(n int) { binary.LittleEndian.PutUint16(p[2:], uint16(n)) }

func (p page) slotAddr(slot int) int { return PageSize - (slot+1)*slotSize }

func (p page) slot(slot int) (off, length int) {
	a := p.slotAddr(slot)
	return int(binary.LittleEndian.Uint16(p[a:])), int(binary.LittleEndian.Uint16(p[a+2:]))
}

func (p page) setSlot(slot, off, length int) {
	a := p.slotAddr(slot)
	binary.LittleEndian.PutUint16(p[a:], uint16(off))
	binary.LittleEndian.PutUint16(p[a+2:], uint16(length))
}

// freeSpace returns the bytes available for one more record (including its
// slot directory entry).
func (p page) freeSpace() int {
	return PageSize - p.freeStart() - p.slotCount()*slotSize - slotSize
}

// insert appends rec, returning its slot, or ok=false if it does not fit.
func (p page) insert(rec []byte) (slot int, ok bool) {
	if len(rec) > p.freeSpace() || len(rec) > MaxRecordSize {
		return 0, false
	}
	slot = p.slotCount()
	off := p.freeStart()
	copy(p[off:], rec)
	p.setSlot(slot, off, len(rec)+1)
	p.setFreeStart(off + len(rec))
	p.setSlotCount(slot + 1)
	return slot, true
}

// record returns the bytes of a slot, or ok=false for tombstones and
// out-of-range slots. The returned slice aliases the page.
func (p page) record(slot int) ([]byte, bool) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, false
	}
	off, length := p.slot(slot)
	if length == 0 {
		return nil, false
	}
	return p[off : off+length-1], true
}

// del tombstones a slot, reporting whether a live record was present. The
// record bytes are not reclaimed (ghost deletion).
func (p page) del(slot int) bool {
	if slot < 0 || slot >= p.slotCount() {
		return false
	}
	off, length := p.slot(slot)
	if length == 0 {
		return false
	}
	p.setSlot(slot, off, 0)
	return true
}
