package storage

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"skyserver/internal/sched"
)

// RID addresses a record: heap-local page index in the high 48 bits, slot in
// the low 16. RIDs are stable for the life of a heap (ghost deletion).
type RID uint64

// MakeRID composes a record ID.
func MakeRID(pageIdx uint64, slot int) RID { return RID(pageIdx<<16 | uint64(slot)&0xFFFF) }

// Page returns the heap-local page index.
func (r RID) Page() uint64 { return uint64(r) >> 16 }

// Slot returns the slot within the page.
func (r RID) Slot() int { return int(uint64(r) & 0xFFFF) }

// ShardShift positions the shard tag in the top 8 bits of a RID. Heaps
// never see tagged RIDs — the catalog tags the RIDs it hands out (index
// entries, insert results) and strips the tag before heap access, so the
// page index keeps its full 48 bits heap-locally. TagRID(0, r) == r: an
// unsharded database's RIDs are bit-for-bit unchanged.
const ShardShift = 56

// TagRID stamps a shard index into the RID's tag bits.
func TagRID(shard int, r RID) RID { return r | RID(uint64(shard)<<ShardShift) }

// Shard returns the shard tag (0 for unsharded RIDs).
func (r RID) Shard() int { return int(uint64(r) >> ShardShift) }

// Untag returns the heap-local RID with the shard tag cleared.
func (r RID) Untag() RID { return r & (1<<ShardShift - 1) }

// FileGroup stripes pages round-robin across volumes and serves reads
// through a shared page cache. All tables of a database live in one file
// group, exactly as in the paper's physical design.
type FileGroup struct {
	vols  []Volume
	alloc atomic.Uint64 // next global page number

	cache *pageCache

	// pool is the file group's persistent scan-worker pool, created
	// lazily on the first parallel scan and alive until Close: parallel
	// scans dispatch page morsels onto it instead of spawning goroutines
	// per query.
	poolMu   sync.Mutex
	pool     *sched.Pool
	poolSize int // 0 = sched.DefaultPoolSize

	// noVerify disables page-checksum verification on physical reads.
	// Only the disk-model experiments set it: their SpeedUp factor
	// multiplies wall-clock time into model time, which would misattribute
	// the (sub-microsecond) CRC CPU cost as 25x-amplified model I/O time.
	noVerify atomic.Bool

	// stats
	physReads     atomic.Uint64
	physBytes     atomic.Uint64
	readRetries   atomic.Uint64
	checksumFails atomic.Uint64
}

// NewFileGroup creates a file group over the given volumes with a page
// cache of cachePages pages (0 disables caching).
func NewFileGroup(vols []Volume, cachePages int) *FileGroup {
	fg := &FileGroup{vols: vols}
	if cachePages > 0 {
		fg.cache = newPageCache(cachePages)
	}
	return fg
}

// NewMemFileGroup is a convenience constructor: n in-memory volumes and a
// cache sized for warm workloads.
func NewMemFileGroup(n, cachePages int) *FileGroup {
	vols := make([]Volume, n)
	for i := range vols {
		vols[i] = NewMemVolume()
	}
	return NewFileGroup(vols, cachePages)
}

// NumVolumes returns the stripe width.
func (fg *FileGroup) NumVolumes() int { return len(fg.vols) }

// SetScanWorkers sizes the scan pool (0 = sched.DefaultPoolSize). It must
// be called before the first parallel scan; afterwards it has no effect.
func (fg *FileGroup) SetScanWorkers(n int) {
	fg.poolMu.Lock()
	if fg.pool == nil {
		fg.poolSize = n
	}
	fg.poolMu.Unlock()
}

// ScanPool returns the file group's persistent scan-worker pool, creating
// it on first use. The pool lives until Close.
func (fg *FileGroup) ScanPool() *sched.Pool {
	fg.poolMu.Lock()
	if fg.pool == nil {
		fg.pool = sched.NewPool(fg.poolSize)
	}
	p := fg.pool
	fg.poolMu.Unlock()
	return p
}

// ScanPoolStats reports the pool's counters without forcing its creation.
func (fg *FileGroup) ScanPoolStats() sched.PoolStats {
	fg.poolMu.Lock()
	p := fg.pool
	fg.poolMu.Unlock()
	return p.Stats()
}

// AllocPage reserves the next global page number.
func (fg *FileGroup) AllocPage() uint64 { return fg.alloc.Add(1) - 1 }

// locate maps a global page to (volume, local page).
func (fg *FileGroup) locate(global uint64) (Volume, uint32) {
	n := uint64(len(fg.vols))
	return fg.vols[global%n], uint32(global / n)
}

// WritePage stamps the page checksum into buf's header, writes the page to
// its volume, and refreshes the cache.
func (fg *FileGroup) WritePage(global uint64, buf []byte) error {
	stampPageChecksum(buf)
	v, local := fg.locate(global)
	if err := v.WritePage(local, buf); err != nil {
		return err
	}
	if fg.cache != nil {
		fg.cache.put(global, buf)
	}
	return nil
}

// ReadPage is ReadPageCtx under a background context: retries are bounded
// per read (maxReadAttempts) but draw no per-query budget.
func (fg *FileGroup) ReadPage(global uint64, buf []byte) error {
	return fg.ReadPageCtx(context.Background(), global, buf)
}

// ReadPageCtx reads a global page into buf, consulting the cache first.
// Cache misses charge the (possibly throttled) volume, verify the page
// checksum, and retry transient failures — volume errors wrapping
// ErrTransient, or checksum mismatches, which a re-read can fix when the
// corruption happened in flight — with exponential backoff + jitter, up to
// maxReadAttempts per page and ctx's retry budget (WithRetryBudget) per
// query. Permanent volume errors surface immediately.
func (fg *FileGroup) ReadPageCtx(ctx context.Context, global uint64, buf []byte) error {
	if fg.cache != nil && fg.cache.get(global, buf) {
		return nil
	}
	v, local := fg.locate(global)
	for attempt := 1; ; attempt++ {
		err := v.ReadPage(local, buf)
		if err == nil {
			fg.physReads.Add(1)
			fg.physBytes.Add(PageSize)
			if fg.noVerify.Load() || verifyPageChecksum(buf) {
				if fg.cache != nil {
					fg.cache.put(global, buf)
				}
				return nil
			}
			fg.checksumFails.Add(1)
			err = fmt.Errorf("%w: page %d", ErrChecksum, global)
		} else if !errors.Is(err, ErrTransient) {
			return err
		}
		if attempt >= maxReadAttempts || !takeRetry(ctx) {
			return fmt.Errorf("storage: page %d read failed after %d attempts: %w", global, attempt, err)
		}
		fg.readRetries.Add(1)
		if serr := sleepRetry(ctx, attempt); serr != nil {
			return serr
		}
	}
}

// DropCache empties the page cache, forcing subsequent scans cold.
func (fg *FileGroup) DropCache() {
	if fg.cache != nil {
		fg.cache.drop()
	}
}

// PhysReads returns the number of physical (cache-miss) page reads.
func (fg *FileGroup) PhysReads() uint64 { return fg.physReads.Load() }

// PhysBytes returns the number of physical bytes read.
func (fg *FileGroup) PhysBytes() uint64 { return fg.physBytes.Load() }

// SetVerifyChecksums toggles page-checksum verification on physical reads
// (on by default). Only sped-up disk-model experiments should turn it off:
// under a SpeedUp factor, wall-clock CPU spent on the CRC is misread as
// amplified model I/O time. Serving paths must leave verification on.
func (fg *FileGroup) SetVerifyChecksums(on bool) { fg.noVerify.Store(!on) }

// ReadRetries returns the number of page re-reads issued after transient
// failures or checksum mismatches.
func (fg *FileGroup) ReadRetries() uint64 { return fg.readRetries.Load() }

// ChecksumFails returns the number of physical reads whose page checksum
// did not verify.
func (fg *FileGroup) ChecksumFails() uint64 { return fg.checksumFails.Load() }

// Close stops the scan pool and closes all volumes.
func (fg *FileGroup) Close() error {
	fg.poolMu.Lock()
	if fg.pool != nil {
		fg.pool.Close()
	}
	fg.poolMu.Unlock()
	var first error
	for _, v := range fg.vols {
		if err := v.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pageCache is a sharded LRU-ish page cache (random-eviction clock within a
// shard keeps it simple and contention-free enough for scans).
type pageCache struct {
	shards [16]cacheShard
	cap    int
}

type cacheShard struct {
	mu    sync.Mutex
	pages map[uint64][]byte
}

func newPageCache(capPages int) *pageCache {
	c := &pageCache{cap: capPages}
	for i := range c.shards {
		c.shards[i].pages = make(map[uint64][]byte)
	}
	return c
}

func (c *pageCache) shard(g uint64) *cacheShard { return &c.shards[g%16] }

func (c *pageCache) get(g uint64, buf []byte) bool {
	s := c.shard(g)
	s.mu.Lock()
	p, ok := s.pages[g]
	if ok {
		copy(buf, p)
	}
	s.mu.Unlock()
	return ok
}

func (c *pageCache) put(g uint64, buf []byte) {
	s := c.shard(g)
	s.mu.Lock()
	if p, ok := s.pages[g]; ok {
		copy(p, buf)
		s.mu.Unlock()
		return
	}
	if len(s.pages) >= c.cap/16+1 {
		// Evict an arbitrary victim (map iteration order).
		for k := range s.pages {
			delete(s.pages, k)
			break
		}
	}
	p := make([]byte, PageSize)
	copy(p, buf)
	s.pages[g] = p
	s.mu.Unlock()
}

func (c *pageCache) drop() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.pages = make(map[uint64][]byte)
		s.mu.Unlock()
	}
}

// pageBufPool recycles the page-size scratch buffers random record
// lookups (Heap.Get) and scan workers read pages into, so point lookups
// and index probes stop paying an 8 KB allocation per query.
var pageBufPool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// GetPageBuf returns a pooled PageSize scratch buffer. Pair with
// PutPageBuf; forgetting to return it leaks nothing (the GC reclaims it).
func GetPageBuf() []byte { return *pageBufPool.Get().(*[]byte) }

// PutPageBuf returns a buffer obtained from GetPageBuf. The caller must
// not retain any record slice aliasing it (Heap.Get's contract already
// requires copying before buffer reuse).
func PutPageBuf(buf []byte) {
	if cap(buf) < PageSize {
		return
	}
	buf = buf[:PageSize]
	pageBufPool.Put(&buf)
}

// scanBuf is one scan worker's reusable page buffer and record-slice
// headers, pooled across scans.
type scanBuf struct {
	page []byte
	rids []RID
	recs [][]byte
}

var scanBufPool = sync.Pool{New: func() any {
	return &scanBuf{page: make([]byte, PageSize)}
}}

// Heap is one table's record file: an ordered list of global pages
// allocated from the file group, append-only with ghost deletes.
type Heap struct {
	fg *FileGroup

	mu      sync.RWMutex
	pageIDs []uint64 // heap-local page index -> global page
	open    page     // buffer of the last page, still accepting inserts
	rows    uint64   // live rows
	bytes   uint64   // live payload bytes
}

// NewHeap creates an empty heap in the file group.
func NewHeap(fg *FileGroup) *Heap {
	return &Heap{fg: fg}
}

// NumVolumes returns the stripe width of the heap's file group — the
// default scan parallelism.
func (h *Heap) NumVolumes() int { return h.fg.NumVolumes() }

// Rows returns the number of live records.
func (h *Heap) Rows() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// Bytes returns the live payload bytes (the "bytes" column of Table 1).
func (h *Heap) Bytes() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// Pages returns the number of pages the heap occupies.
func (h *Heap) Pages() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return uint64(len(h.pageIDs))
}

// Append stores rec and returns its RID.
func (h *Heap) Append(rec []byte) (RID, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.open == nil {
		h.open = newPage()
		h.pageIDs = append(h.pageIDs, h.fg.AllocPage())
	}
	slot, ok := h.open.insert(rec)
	if !ok {
		// Flush and start a fresh page.
		if err := h.fg.WritePage(h.pageIDs[len(h.pageIDs)-1], h.open); err != nil {
			return 0, err
		}
		h.open = newPage()
		h.pageIDs = append(h.pageIDs, h.fg.AllocPage())
		slot, ok = h.open.insert(rec)
		if !ok {
			return 0, fmt.Errorf("storage: record of %d bytes does not fit an empty page", len(rec))
		}
	}
	if err := h.fg.WritePage(h.pageIDs[len(h.pageIDs)-1], h.open); err != nil {
		return 0, err
	}
	h.rows++
	h.bytes += uint64(len(rec))
	return MakeRID(uint64(len(h.pageIDs)-1), slot), nil
}

// Get returns a copy-free view of the record; the caller owns buf (length
// PageSize) as scratch and must not retain the returned slice past the next
// use of buf.
func (h *Heap) Get(rid RID, buf []byte) ([]byte, error) {
	h.mu.RLock()
	if rid.Page() >= uint64(len(h.pageIDs)) {
		h.mu.RUnlock()
		return nil, fmt.Errorf("storage: rid page %d out of range", rid.Page())
	}
	global := h.pageIDs[rid.Page()]
	h.mu.RUnlock()
	if err := h.fg.ReadPage(global, buf); err != nil {
		return nil, err
	}
	rec, ok := page(buf).record(rid.Slot())
	if !ok {
		return nil, fmt.Errorf("storage: rid %d/%d is deleted or invalid", rid.Page(), rid.Slot())
	}
	return rec, nil
}

// Delete tombstones a record, reporting whether it was live.
func (h *Heap) Delete(rid RID) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rid.Page() >= uint64(len(h.pageIDs)) {
		return false, fmt.Errorf("storage: rid page %d out of range", rid.Page())
	}
	global := h.pageIDs[rid.Page()]
	// The open (last) page's buffer is authoritative: a later Append
	// writes it through wholesale, so the tombstone must land in the
	// buffer itself or the append would resurrect the record.
	var buf page
	if h.open != nil && rid.Page() == uint64(len(h.pageIDs)-1) {
		buf = h.open
	} else {
		buf = newPage()
		if err := h.fg.ReadPage(global, buf); err != nil {
			return false, err
		}
	}
	rec, ok := buf.record(rid.Slot())
	if !ok {
		return false, nil
	}
	n := len(rec)
	if !buf.del(rid.Slot()) {
		return false, nil
	}
	if err := h.fg.WritePage(global, buf); err != nil {
		return false, err
	}
	h.rows--
	h.bytes -= uint64(n)
	return true, nil
}

// ScanFunc receives each live record during a scan. rec aliases an internal
// page buffer: copy it to retain. Scans with dop > 1 call fn concurrently.
type ScanFunc func(rid RID, rec []byte) error

// Scan visits every live record. dop <= 0 selects one worker per volume
// (the paper's parallel prefetch model); dop == 1 is a serial scan. Page
// ranges are dealt round-robin so each worker streams one volume when dop
// equals the stripe width.
func (h *Heap) Scan(dop int, fn ScanFunc) error {
	return h.ScanWorkers(dop, func(int) (ScanFunc, func() error) { return fn, nil })
}

// ScanWorkers is Scan with per-worker state: mk is called once per scan
// worker and returns that worker's record callback plus an optional flush
// run (serially, in worker order) after all workers finish successfully.
// This lets consumers batch without sharing state across goroutines.
func (h *Heap) ScanWorkers(dop int, mk func(worker int) (ScanFunc, func() error)) error {
	return h.ScanBatches(dop, func(worker int) (RecBatchFunc, func() error) {
		fn, flush := mk(worker)
		bf := func(rids []RID, recs [][]byte) error {
			for i, rec := range recs {
				if err := fn(rids[i], rec); err != nil {
					return err
				}
			}
			return nil
		}
		return bf, flush
	})
}

// RecBatchFunc receives one page's worth of live records during a batch
// scan: rids[i] addresses recs[i]. The slices and the record bytes alias
// per-worker buffers that are reused for the next page — decode or copy
// before returning. Scans with dop > 1 call different workers' functions
// concurrently.
type RecBatchFunc func(rids []RID, recs [][]byte) error

// ScanBatches visits every live record, delivering a page-worth of records
// per callback instead of one record at a time — the decode amortization
// the vectorized executor builds batches from. dop <= 0 selects one worker
// per volume; dop == 1 is a serial scan. mk is called once per worker and
// returns that worker's page callback plus an optional flush run (serially,
// in worker order) after all workers finish successfully.
func (h *Heap) ScanBatches(dop int, mk func(worker int) (RecBatchFunc, func() error)) error {
	return h.ScanBatchesCtx(context.Background(), dop, mk)
}

// ScanBatchesCtx is ScanBatches with cancellation: workers stop claiming
// pages once ctx is done and the scan returns ctx's error. Parallel scans
// do not spawn goroutines — shards run on the file group's persistent
// scan-worker pool (plus the calling goroutine), claiming pages in
// morsel-sized chunks from per-stripe counters: each shard streams its own
// volume-aligned stripe first (one worker per volume when dop equals the
// stripe width, the paper's parallel prefetch model) and steals from the
// other stripes when its own runs dry, so a shard the pool schedules late
// never leaves pages behind.
func (h *Heap) ScanBatchesCtx(ctx context.Context, dop int, mk func(worker int) (RecBatchFunc, func() error)) error {
	j := scanJobPool.Get().(*scanJob)
	h.mu.RLock()
	j.pageIDs = append(j.pageIDs[:0], h.pageIDs...)
	h.mu.RUnlock()
	nPages := len(j.pageIDs)
	if nPages == 0 {
		scanJobPool.Put(j)
		return nil
	}
	if dop <= 0 {
		dop = h.fg.NumVolumes()
	}
	if dop > nPages {
		dop = nPages
	}
	if dop > 4*runtime.NumCPU() {
		dop = 4 * runtime.NumCPU()
	}
	if dop == 1 {
		err := h.scanSerial(ctx, j.pageIDs, mk)
		scanJobPool.Put(j)
		return err
	}
	j.init(h, ctx, dop, mk)
	h.fg.ScanPool().Run(dop, j)
	err := j.finish()
	j.reset()
	scanJobPool.Put(j)
	return err
}

// scanSerial is the dop == 1 fast path: run inline — no pool dispatch,
// shard state, or error joining for a single worker.
func (h *Heap) scanSerial(ctx context.Context, pageIDs []uint64, mk func(worker int) (RecBatchFunc, func() error)) error {
	fn, flush := mk(0)
	sb := scanBufPool.Get().(*scanBuf)
	buf := sb.page
	rids, recs := sb.rids, sb.recs
	var err error
	for pi := 0; pi < len(pageIDs); pi++ {
		// Check before every page read, not on a stride: a cold page is a
		// (simulated) disk seek, and a cancelled query must not issue even
		// one more of them — that I/O slot belongs to live queries.
		if err = ctx.Err(); err != nil {
			break
		}
		if err = h.fg.ReadPageCtx(ctx, pageIDs[pi], buf); err != nil {
			break
		}
		p := page(buf)
		rids, recs = rids[:0], recs[:0]
		for s := 0; s < p.slotCount(); s++ {
			rec, ok := p.record(s)
			if !ok {
				continue
			}
			rids = append(rids, MakeRID(uint64(pi), s))
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			continue
		}
		if err = fn(rids, recs); err != nil {
			break
		}
	}
	sb.rids, sb.recs = rids, recs
	scanBufPool.Put(sb)
	if err != nil {
		return err
	}
	if flush != nil {
		return flush()
	}
	return nil
}

// scanMorselPages is how many pages one counter claim hands a shard:
// large enough that claims are off the hot path, small enough that
// work-stealing rebalances a shard the pool scheduled late.
const scanMorselPages = 8

// scanJob is one parallel scan's dispatch state, pooled across scans so a
// steady-state parallel scan allocates nothing. It implements sched.Task:
// shard w drains stripe w (pages ≡ w mod dop — one volume when dop equals
// the stripe width), then steals leftovers from the other stripes.
type scanJob struct {
	h       *Heap
	ctx     context.Context
	pageIDs []uint64
	dop     int
	fns     []RecBatchFunc
	flushes []func() error
	errs    []error
	stripes []atomic.Int64 // per-stripe count of pages already claimed
	stop    atomic.Bool
}

var scanJobPool = sync.Pool{New: func() any { return new(scanJob) }}

// init sizes the per-shard state and collects the worker callbacks. mk
// runs sequentially here, before any shard is dispatched, preserving
// ScanBatches' contract that per-worker state needs no locking to build.
func (j *scanJob) init(h *Heap, ctx context.Context, dop int, mk func(worker int) (RecBatchFunc, func() error)) {
	j.h, j.ctx, j.dop = h, ctx, dop
	j.stop.Store(false)
	if cap(j.fns) < dop {
		j.fns = make([]RecBatchFunc, dop)
		j.flushes = make([]func() error, dop)
		j.errs = make([]error, dop)
		j.stripes = make([]atomic.Int64, dop)
	}
	j.fns, j.flushes = j.fns[:dop], j.flushes[:dop]
	j.errs, j.stripes = j.errs[:dop], j.stripes[:dop]
	for w := 0; w < dop; w++ {
		j.fns[w], j.flushes[w] = mk(w)
		j.errs[w] = nil
		j.stripes[w].Store(0)
	}
}

// reset drops references so the pooled job retains nothing between scans.
func (j *scanJob) reset() {
	j.h, j.ctx = nil, nil
	for w := range j.fns {
		j.fns[w], j.flushes[w], j.errs[w] = nil, nil, nil
	}
}

// RunShard implements sched.Task. A panic in the consumer callback (or a
// decode of a poisoned page) is confined to this query: the shard records
// an ErrScanPanic for finish() to join, stops the scan's other shards, and
// the pool worker survives.
func (j *scanJob) RunShard(w int) {
	if j.stop.Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			j.errs[w] = fmt.Errorf("%w: shard %d: %v", ErrScanPanic, w, r)
			j.stop.Store(true)
		}
	}()
	sb := scanBufPool.Get().(*scanBuf)
	fn := j.fns[w]
	for o := 0; o < j.dop; o++ {
		stripe := w + o
		if stripe >= j.dop {
			stripe -= j.dop
		}
		if err := j.drainStripe(stripe, fn, sb); err != nil {
			j.errs[w] = err
			j.stop.Store(true)
			break
		}
		if j.stop.Load() {
			break
		}
	}
	// Not deferred on purpose: a panicking shard must not recycle its
	// buffer — the failed callback may still alias it.
	scanBufPool.Put(sb)
}

// drainStripe claims morsels of the stripe's pages until it runs dry, the
// scan is stopped, or the context is done.
func (j *scanJob) drainStripe(stripe int, fn RecBatchFunc, sb *scanBuf) error {
	nPages := len(j.pageIDs)
	for {
		if j.stop.Load() {
			return nil
		}
		if j.ctx.Err() != nil {
			j.stop.Store(true)
			return nil
		}
		k0 := int(j.stripes[stripe].Add(scanMorselPages)) - scanMorselPages
		if stripe+k0*j.dop >= nPages {
			return nil
		}
		for k := k0; k < k0+scanMorselPages; k++ {
			pi := stripe + k*j.dop
			if pi >= nPages {
				break
			}
			// Re-check inside the morsel: a claim hands this shard up to
			// scanMorselPages reads, and cancellation must not wait out the
			// rest of the morsel page by page.
			if j.ctx.Err() != nil {
				j.stop.Store(true)
				return nil
			}
			if err := j.scanPage(pi, fn, sb); err != nil {
				return err
			}
		}
	}
}

// scanPage reads one page and delivers its live records to fn.
func (j *scanJob) scanPage(pi int, fn RecBatchFunc, sb *scanBuf) error {
	if err := j.h.fg.ReadPageCtx(j.ctx, j.pageIDs[pi], sb.page); err != nil {
		return err
	}
	p := page(sb.page)
	rids, recs := sb.rids[:0], sb.recs[:0]
	for s := 0; s < p.slotCount(); s++ {
		rec, ok := p.record(s)
		if !ok {
			continue
		}
		rids = append(rids, MakeRID(uint64(pi), s))
		recs = append(recs, rec)
	}
	sb.rids, sb.recs = rids, recs
	if len(recs) == 0 {
		return nil
	}
	return fn(rids, recs)
}

// finish joins every shard's error — a multi-volume read failure reports
// all failing workers, not just the first — and, on success, runs the
// flushes serially in worker order.
func (j *scanJob) finish() error {
	var first error
	multi := false
	for _, e := range j.errs {
		if e == nil {
			continue
		}
		if first == nil {
			first = e
		} else {
			multi = true
		}
	}
	if multi {
		return errors.Join(j.errs...)
	}
	if first != nil {
		return first
	}
	if err := j.ctx.Err(); err != nil {
		return err
	}
	for _, flush := range j.flushes {
		if flush == nil {
			continue
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return nil
}
