package storage

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RID addresses a record: heap-local page index in the high 48 bits, slot in
// the low 16. RIDs are stable for the life of a heap (ghost deletion).
type RID uint64

// MakeRID composes a record ID.
func MakeRID(pageIdx uint64, slot int) RID { return RID(pageIdx<<16 | uint64(slot)&0xFFFF) }

// Page returns the heap-local page index.
func (r RID) Page() uint64 { return uint64(r) >> 16 }

// Slot returns the slot within the page.
func (r RID) Slot() int { return int(uint64(r) & 0xFFFF) }

// FileGroup stripes pages round-robin across volumes and serves reads
// through a shared page cache. All tables of a database live in one file
// group, exactly as in the paper's physical design.
type FileGroup struct {
	vols  []Volume
	alloc atomic.Uint64 // next global page number

	cache *pageCache

	// stats
	physReads atomic.Uint64
	physBytes atomic.Uint64
}

// NewFileGroup creates a file group over the given volumes with a page
// cache of cachePages pages (0 disables caching).
func NewFileGroup(vols []Volume, cachePages int) *FileGroup {
	fg := &FileGroup{vols: vols}
	if cachePages > 0 {
		fg.cache = newPageCache(cachePages)
	}
	return fg
}

// NewMemFileGroup is a convenience constructor: n in-memory volumes and a
// cache sized for warm workloads.
func NewMemFileGroup(n, cachePages int) *FileGroup {
	vols := make([]Volume, n)
	for i := range vols {
		vols[i] = NewMemVolume()
	}
	return NewFileGroup(vols, cachePages)
}

// NumVolumes returns the stripe width.
func (fg *FileGroup) NumVolumes() int { return len(fg.vols) }

// AllocPage reserves the next global page number.
func (fg *FileGroup) AllocPage() uint64 { return fg.alloc.Add(1) - 1 }

// locate maps a global page to (volume, local page).
func (fg *FileGroup) locate(global uint64) (Volume, uint32) {
	n := uint64(len(fg.vols))
	return fg.vols[global%n], uint32(global / n)
}

// WritePage writes a global page to its volume and refreshes the cache.
func (fg *FileGroup) WritePage(global uint64, buf []byte) error {
	v, local := fg.locate(global)
	if err := v.WritePage(local, buf); err != nil {
		return err
	}
	if fg.cache != nil {
		fg.cache.put(global, buf)
	}
	return nil
}

// ReadPage reads a global page into buf, consulting the cache first. Cache
// misses charge the (possibly throttled) volume.
func (fg *FileGroup) ReadPage(global uint64, buf []byte) error {
	if fg.cache != nil && fg.cache.get(global, buf) {
		return nil
	}
	v, local := fg.locate(global)
	if err := v.ReadPage(local, buf); err != nil {
		return err
	}
	fg.physReads.Add(1)
	fg.physBytes.Add(PageSize)
	if fg.cache != nil {
		fg.cache.put(global, buf)
	}
	return nil
}

// DropCache empties the page cache, forcing subsequent scans cold.
func (fg *FileGroup) DropCache() {
	if fg.cache != nil {
		fg.cache.drop()
	}
}

// PhysReads returns the number of physical (cache-miss) page reads.
func (fg *FileGroup) PhysReads() uint64 { return fg.physReads.Load() }

// PhysBytes returns the number of physical bytes read.
func (fg *FileGroup) PhysBytes() uint64 { return fg.physBytes.Load() }

// Close closes all volumes.
func (fg *FileGroup) Close() error {
	var first error
	for _, v := range fg.vols {
		if err := v.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pageCache is a sharded LRU-ish page cache (random-eviction clock within a
// shard keeps it simple and contention-free enough for scans).
type pageCache struct {
	shards [16]cacheShard
	cap    int
}

type cacheShard struct {
	mu    sync.Mutex
	pages map[uint64][]byte
}

func newPageCache(capPages int) *pageCache {
	c := &pageCache{cap: capPages}
	for i := range c.shards {
		c.shards[i].pages = make(map[uint64][]byte)
	}
	return c
}

func (c *pageCache) shard(g uint64) *cacheShard { return &c.shards[g%16] }

func (c *pageCache) get(g uint64, buf []byte) bool {
	s := c.shard(g)
	s.mu.Lock()
	p, ok := s.pages[g]
	if ok {
		copy(buf, p)
	}
	s.mu.Unlock()
	return ok
}

func (c *pageCache) put(g uint64, buf []byte) {
	s := c.shard(g)
	s.mu.Lock()
	if p, ok := s.pages[g]; ok {
		copy(p, buf)
		s.mu.Unlock()
		return
	}
	if len(s.pages) >= c.cap/16+1 {
		// Evict an arbitrary victim (map iteration order).
		for k := range s.pages {
			delete(s.pages, k)
			break
		}
	}
	p := make([]byte, PageSize)
	copy(p, buf)
	s.pages[g] = p
	s.mu.Unlock()
}

func (c *pageCache) drop() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.pages = make(map[uint64][]byte)
		s.mu.Unlock()
	}
}

// pageBufPool recycles the page-size scratch buffers random record
// lookups (Heap.Get) and scan workers read pages into, so point lookups
// and index probes stop paying an 8 KB allocation per query.
var pageBufPool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// GetPageBuf returns a pooled PageSize scratch buffer. Pair with
// PutPageBuf; forgetting to return it leaks nothing (the GC reclaims it).
func GetPageBuf() []byte { return *pageBufPool.Get().(*[]byte) }

// PutPageBuf returns a buffer obtained from GetPageBuf. The caller must
// not retain any record slice aliasing it (Heap.Get's contract already
// requires copying before buffer reuse).
func PutPageBuf(buf []byte) {
	if cap(buf) < PageSize {
		return
	}
	buf = buf[:PageSize]
	pageBufPool.Put(&buf)
}

// scanBuf is one scan worker's reusable page buffer and record-slice
// headers, pooled across scans.
type scanBuf struct {
	page []byte
	rids []RID
	recs [][]byte
}

var scanBufPool = sync.Pool{New: func() any {
	return &scanBuf{page: make([]byte, PageSize)}
}}

// Heap is one table's record file: an ordered list of global pages
// allocated from the file group, append-only with ghost deletes.
type Heap struct {
	fg *FileGroup

	mu      sync.RWMutex
	pageIDs []uint64 // heap-local page index -> global page
	open    page     // buffer of the last page, still accepting inserts
	rows    uint64   // live rows
	bytes   uint64   // live payload bytes
}

// NewHeap creates an empty heap in the file group.
func NewHeap(fg *FileGroup) *Heap {
	return &Heap{fg: fg}
}

// Rows returns the number of live records.
func (h *Heap) Rows() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// Bytes returns the live payload bytes (the "bytes" column of Table 1).
func (h *Heap) Bytes() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// Pages returns the number of pages the heap occupies.
func (h *Heap) Pages() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return uint64(len(h.pageIDs))
}

// Append stores rec and returns its RID.
func (h *Heap) Append(rec []byte) (RID, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.open == nil {
		h.open = newPage()
		h.pageIDs = append(h.pageIDs, h.fg.AllocPage())
	}
	slot, ok := h.open.insert(rec)
	if !ok {
		// Flush and start a fresh page.
		if err := h.fg.WritePage(h.pageIDs[len(h.pageIDs)-1], h.open); err != nil {
			return 0, err
		}
		h.open = newPage()
		h.pageIDs = append(h.pageIDs, h.fg.AllocPage())
		slot, ok = h.open.insert(rec)
		if !ok {
			return 0, fmt.Errorf("storage: record of %d bytes does not fit an empty page", len(rec))
		}
	}
	if err := h.fg.WritePage(h.pageIDs[len(h.pageIDs)-1], h.open); err != nil {
		return 0, err
	}
	h.rows++
	h.bytes += uint64(len(rec))
	return MakeRID(uint64(len(h.pageIDs)-1), slot), nil
}

// Get returns a copy-free view of the record; the caller owns buf (length
// PageSize) as scratch and must not retain the returned slice past the next
// use of buf.
func (h *Heap) Get(rid RID, buf []byte) ([]byte, error) {
	h.mu.RLock()
	if rid.Page() >= uint64(len(h.pageIDs)) {
		h.mu.RUnlock()
		return nil, fmt.Errorf("storage: rid page %d out of range", rid.Page())
	}
	global := h.pageIDs[rid.Page()]
	h.mu.RUnlock()
	if err := h.fg.ReadPage(global, buf); err != nil {
		return nil, err
	}
	rec, ok := page(buf).record(rid.Slot())
	if !ok {
		return nil, fmt.Errorf("storage: rid %d/%d is deleted or invalid", rid.Page(), rid.Slot())
	}
	return rec, nil
}

// Delete tombstones a record, reporting whether it was live.
func (h *Heap) Delete(rid RID) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rid.Page() >= uint64(len(h.pageIDs)) {
		return false, fmt.Errorf("storage: rid page %d out of range", rid.Page())
	}
	global := h.pageIDs[rid.Page()]
	// The open (last) page's buffer is authoritative: a later Append
	// writes it through wholesale, so the tombstone must land in the
	// buffer itself or the append would resurrect the record.
	var buf page
	if h.open != nil && rid.Page() == uint64(len(h.pageIDs)-1) {
		buf = h.open
	} else {
		buf = newPage()
		if err := h.fg.ReadPage(global, buf); err != nil {
			return false, err
		}
	}
	rec, ok := buf.record(rid.Slot())
	if !ok {
		return false, nil
	}
	n := len(rec)
	if !buf.del(rid.Slot()) {
		return false, nil
	}
	if err := h.fg.WritePage(global, buf); err != nil {
		return false, err
	}
	h.rows--
	h.bytes -= uint64(n)
	return true, nil
}

// ScanFunc receives each live record during a scan. rec aliases an internal
// page buffer: copy it to retain. Scans with dop > 1 call fn concurrently.
type ScanFunc func(rid RID, rec []byte) error

// Scan visits every live record. dop <= 0 selects one worker per volume
// (the paper's parallel prefetch model); dop == 1 is a serial scan. Page
// ranges are dealt round-robin so each worker streams one volume when dop
// equals the stripe width.
func (h *Heap) Scan(dop int, fn ScanFunc) error {
	return h.ScanWorkers(dop, func(int) (ScanFunc, func() error) { return fn, nil })
}

// ScanWorkers is Scan with per-worker state: mk is called once per scan
// worker and returns that worker's record callback plus an optional flush
// run (serially, in worker order) after all workers finish successfully.
// This lets consumers batch without sharing state across goroutines.
func (h *Heap) ScanWorkers(dop int, mk func(worker int) (ScanFunc, func() error)) error {
	return h.ScanBatches(dop, func(worker int) (RecBatchFunc, func() error) {
		fn, flush := mk(worker)
		bf := func(rids []RID, recs [][]byte) error {
			for i, rec := range recs {
				if err := fn(rids[i], rec); err != nil {
					return err
				}
			}
			return nil
		}
		return bf, flush
	})
}

// RecBatchFunc receives one page's worth of live records during a batch
// scan: rids[i] addresses recs[i]. The slices and the record bytes alias
// per-worker buffers that are reused for the next page — decode or copy
// before returning. Scans with dop > 1 call different workers' functions
// concurrently.
type RecBatchFunc func(rids []RID, recs [][]byte) error

// ScanBatches visits every live record, delivering a page-worth of records
// per callback instead of one record at a time — the decode amortization
// the vectorized executor builds batches from. dop <= 0 selects one worker
// per volume; dop == 1 is a serial scan. Page ranges are dealt round-robin
// so each worker streams one volume when dop equals the stripe width. mk is
// called once per worker and returns that worker's page callback plus an
// optional flush run (serially, in worker order) after all workers finish
// successfully.
func (h *Heap) ScanBatches(dop int, mk func(worker int) (RecBatchFunc, func() error)) error {
	h.mu.RLock()
	nPages := len(h.pageIDs)
	pageIDs := make([]uint64, nPages)
	copy(pageIDs, h.pageIDs)
	h.mu.RUnlock()
	if nPages == 0 {
		return nil
	}
	if dop <= 0 {
		dop = h.fg.NumVolumes()
	}
	if dop > nPages {
		dop = nPages
	}
	if dop > 4*runtime.NumCPU() {
		dop = 4 * runtime.NumCPU()
	}
	if dop == 1 {
		// Serial scan: run inline — no goroutine, WaitGroup, or error
		// channel for a single worker.
		fn, flush := mk(0)
		sb := scanBufPool.Get().(*scanBuf)
		buf := sb.page
		rids, recs := sb.rids, sb.recs
		var err error
		for pi := 0; pi < nPages; pi++ {
			if err = h.fg.ReadPage(pageIDs[pi], buf); err != nil {
				break
			}
			p := page(buf)
			rids, recs = rids[:0], recs[:0]
			for s := 0; s < p.slotCount(); s++ {
				rec, ok := p.record(s)
				if !ok {
					continue
				}
				rids = append(rids, MakeRID(uint64(pi), s))
				recs = append(recs, rec)
			}
			if len(recs) == 0 {
				continue
			}
			if err = fn(rids, recs); err != nil {
				break
			}
		}
		sb.rids, sb.recs = rids, recs
		scanBufPool.Put(sb)
		if err != nil {
			return err
		}
		if flush != nil {
			return flush()
		}
		return nil
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	errCh := make(chan error, dop)
	flushes := make([]func() error, dop)
	for w := 0; w < dop; w++ {
		fn, flush := mk(w)
		flushes[w] = flush
		wg.Add(1)
		go func(w int, fn RecBatchFunc) {
			defer wg.Done()
			sb := scanBufPool.Get().(*scanBuf)
			defer scanBufPool.Put(sb)
			buf := sb.page
			rids, recs := sb.rids, sb.recs
			defer func() { sb.rids, sb.recs = rids, recs }()
			for pi := w; pi < nPages; pi += dop {
				if stop.Load() {
					return
				}
				if err := h.fg.ReadPage(pageIDs[pi], buf); err != nil {
					stop.Store(true)
					errCh <- err
					return
				}
				p := page(buf)
				rids, recs = rids[:0], recs[:0]
				for s := 0; s < p.slotCount(); s++ {
					rec, ok := p.record(s)
					if !ok {
						continue
					}
					rids = append(rids, MakeRID(uint64(pi), s))
					recs = append(recs, rec)
				}
				if len(recs) == 0 {
					continue
				}
				if err := fn(rids, recs); err != nil {
					stop.Store(true)
					errCh <- err
					return
				}
			}
		}(w, fn)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	for _, flush := range flushes {
		if flush == nil {
			continue
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return nil
}
