//go:build !race

package storage

// raceEnabled reports whether the race detector instruments this test
// binary. The disk-model throughput tests assert wall-clock rates that
// instrumentation overhead invalidates, so they skip under -race (which
// still exercises their code paths everywhere else in the suite).
const raceEnabled = false
