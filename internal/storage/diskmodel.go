package storage

import (
	"sync"
	"time"
)

// DiskModelConfig describes the simulated I/O hardware for the Figure 15
// experiment. The defaults are the paper's measured constants: ~40 MB/s per
// 10k-rpm SCSI disk, ~119 MB/s before an Ultra3 controller saturates (three
// disks per controller), a 64-bit/33 MHz PCI bus saturating near 220 MB/s
// (the 64/66 slot is modeled as a faster second bus), and the SQL scan
// pipeline saturating CPU around 320 MB/s.
type DiskModelConfig struct {
	// DiskMBps is the sequential bandwidth of one disk in model MB/s.
	DiskMBps float64
	// ControllerMBps caps the aggregate bandwidth of one controller.
	ControllerMBps float64
	// DisksPerController assigns disks to controllers in order.
	DisksPerController int
	// BusMBps caps each PCI bus; controllers are assigned round-robin.
	// An empty slice means no bus limit.
	BusMBps []float64
	// SpeedUp divides all model times: wall-clock seconds =
	// model seconds / SpeedUp, so experiments replay quickly.
	// 0 means 1 (real time).
	SpeedUp float64
}

// DefaultDiskModel returns the paper's hardware constants.
func DefaultDiskModel() DiskModelConfig {
	return DiskModelConfig{
		DiskMBps:           40,
		ControllerMBps:     119,
		DisksPerController: 3,
		BusMBps:            []float64{220, 500},
		SpeedUp:            1,
	}
}

// pacer is a virtual-time bandwidth limiter: each Wait(n) reserves the time
// n bytes take at the configured rate; concurrent callers are serialized in
// reservation order, so aggregate throughput converges to the rate.
type pacer struct {
	mu        sync.Mutex
	next      time.Time
	perByteNs float64
}

func newPacer(mbps, speedUp float64) *pacer {
	if mbps <= 0 {
		return nil
	}
	if speedUp <= 0 {
		speedUp = 1
	}
	return &pacer{perByteNs: float64(time.Second) / (mbps * 1e6) / speedUp}
}

// minSleep batches pacing debt: sleeping per page would be dominated by OS
// timer granularity (tens of µs), so callers run ahead burst-style and only
// sleep once they are this far behind the virtual clock.
const minSleep = 2 * time.Millisecond

// wait blocks for the pacing delay of n bytes.
func (p *pacer) wait(n int) {
	if p == nil {
		return
	}
	dur := time.Duration(float64(n) * p.perByteNs)
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	sleep := p.next.Sub(now)
	p.next = p.next.Add(dur)
	p.mu.Unlock()
	if sleep > minSleep {
		time.Sleep(sleep)
	}
}

// ThrottledVolume wraps a Volume so reads pay for simulated disk,
// controller, and bus bandwidth.
type ThrottledVolume struct {
	Volume
	path []*pacer // disk, controller, bus — in that order
}

// ReadPage charges the full I/O path before performing the read.
func (tv *ThrottledVolume) ReadPage(n uint32, buf []byte) error {
	for _, p := range tv.path {
		p.wait(PageSize)
	}
	return tv.Volume.ReadPage(n, buf)
}

// NewThrottledVolumes wraps vols per the model: each volume gets its own
// disk pacer; every DisksPerController volumes share a controller pacer;
// controllers share bus pacers round-robin.
func NewThrottledVolumes(vols []Volume, cfg DiskModelConfig) []Volume {
	if cfg.DisksPerController <= 0 {
		cfg.DisksPerController = 3
	}
	nCtlr := (len(vols) + cfg.DisksPerController - 1) / cfg.DisksPerController
	ctlrs := make([]*pacer, nCtlr)
	buses := make([]*pacer, len(cfg.BusMBps))
	for i, mbps := range cfg.BusMBps {
		buses[i] = newPacer(mbps, cfg.SpeedUp)
	}
	out := make([]Volume, len(vols))
	for i, v := range vols {
		ci := i / cfg.DisksPerController
		if ctlrs[ci] == nil {
			ctlrs[ci] = newPacer(cfg.ControllerMBps, cfg.SpeedUp)
		}
		path := []*pacer{newPacer(cfg.DiskMBps, cfg.SpeedUp), ctlrs[ci]}
		if len(buses) > 0 {
			path = append(path, buses[ci%len(buses)])
		}
		out[i] = &ThrottledVolume{Volume: v, path: path}
	}
	return out
}
