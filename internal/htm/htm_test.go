package htm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"skyserver/internal/sky"
)

func TestLookupFaces(t *testing.T) {
	// Face centers must resolve to their own face at depth 0.
	for _, f := range faces {
		c := f.v[0].Add(f.v[1]).Add(f.v[2]).Normalize()
		if got := Lookup(c, 0); got != f.id {
			t.Errorf("Lookup(center of %s) = %d, want %d", f.name, got, f.id)
		}
	}
}

func TestLookupDepthEncoding(t *testing.T) {
	v := sky.EqToVec(185, -0.5)
	for d := 0; d <= MaxDepth; d++ {
		id := Lookup(v, d)
		if got := Depth(id); got != d {
			t.Errorf("Depth(Lookup(v,%d)) = %d", d, got)
		}
	}
}

func TestLookupPrefixConsistency(t *testing.T) {
	// The depth-d ID must be an ancestor (2-bit prefix) of the depth-d+1 ID.
	f := func(ra, dec float64) bool {
		v := sky.EqToVec(sky.NormalizeRA(ra), math.Mod(dec, 89))
		prev := Lookup(v, 0)
		for d := 1; d <= 12; d++ {
			id := Lookup(v, d)
			if id>>2 != prev {
				return false
			}
			prev = id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLookupPointInTrixel(t *testing.T) {
	// The point must actually lie inside the trixel the lookup returns.
	f := func(ra, dec float64) bool {
		v := sky.EqToVec(sky.NormalizeRA(ra), math.Mod(dec, 89))
		id := Lookup(v, 10)
		tri, err := Vertices(id)
		if err != nil {
			return false
		}
		return inside(v, tri[0], tri[1], tri[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNameParseRoundTrip(t *testing.T) {
	f := func(ra, dec float64, dRaw uint8) bool {
		d := int(dRaw) % (MaxDepth + 1)
		id := LookupEq(sky.NormalizeRA(ra), math.Mod(dec, 89), d)
		back, err := Parse(Name(id))
		return err == nil && back == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNameKnown(t *testing.T) {
	if got := Name(8); got != "S0" {
		t.Errorf("Name(8) = %q, want S0", got)
	}
	if got := Name(15); got != "N3" {
		t.Errorf("Name(15) = %q, want N3", got)
	}
	// N3's child 2's child 1: 15<<2|2 = 62, 62<<2|1 = 249
	if got := Name(249); got != "N321" {
		t.Errorf("Name(249) = %q, want N321", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "X", "Q0", "N4", "N05x", "S012345678901234567890"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDepthInvalid(t *testing.T) {
	for _, id := range []uint64{0, 1, 7, 16, 17, 31} {
		// ids 16..31 have bit length 5 → (5-4) odd → invalid.
		if id >= 8 && id <= 15 {
			continue
		}
		if got := Depth(id); got != -1 {
			t.Errorf("Depth(%d) = %d, want -1", id, got)
		}
	}
	if got := Depth(12); got != 0 {
		t.Errorf("Depth(12) = %d, want 0", got)
	}
}

func TestIDRangeAtDepth(t *testing.T) {
	// Face S0 (id 8) at depth 2 spans [8<<4, 9<<4).
	lo, hi := IDRangeAtDepth(8, 2)
	if lo != 8<<4 || hi != 9<<4 {
		t.Errorf("IDRangeAtDepth(8,2) = [%d,%d)", lo, hi)
	}
	// A point's deep ID must land inside its shallow ancestor's range.
	v := sky.EqToVec(185, -0.5)
	shallow := Lookup(v, 5)
	deep := Lookup(v, MaxDepth)
	lo, hi = IDRangeAtDepth(shallow, MaxDepth)
	if deep < lo || deep >= hi {
		t.Errorf("deep id %d outside ancestor range [%d,%d)", deep, lo, hi)
	}
}

func TestToDepth(t *testing.T) {
	v := sky.EqToVec(42, 13)
	deep := Lookup(v, 12)
	if got := ToDepth(deep, 6); got != Lookup(v, 6) {
		t.Errorf("ToDepth truncation mismatch: %d vs %d", got, Lookup(v, 6))
	}
	if got := Depth(ToDepth(Lookup(v, 6), 12)); got != 12 {
		t.Errorf("deepened id has depth %d, want 12", got)
	}
}

func TestVerticesInvalid(t *testing.T) {
	if _, err := Vertices(3); err == nil {
		t.Error("Vertices(3) accepted invalid id")
	}
}

func TestTrixelAreaSumsToFace(t *testing.T) {
	// The 4 children of a trixel must tile it: areas sum to the parent's.
	parent := uint64(13) // N1
	pa, err := TrixelAreaSr(parent)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := uint64(0); k < 4; k++ {
		a, err := TrixelAreaSr(parent<<2 | k)
		if err != nil {
			t.Fatal(err)
		}
		sum += a
	}
	if math.Abs(sum-pa) > 1e-9 {
		t.Errorf("children areas %g != parent %g", sum, pa)
	}
	// All 8 faces tile the sphere (4π sr).
	var total float64
	for _, f := range faces {
		a, _ := TrixelAreaSr(f.id)
		total += a
	}
	if math.Abs(total-4*math.Pi) > 1e-9 {
		t.Errorf("faces sum to %g, want 4π=%g", total, 4*math.Pi)
	}
}

func TestSphereCoverageNoGaps(t *testing.T) {
	// Every random point on the sphere must land in exactly the trixel
	// Lookup returns, and sibling trixels must not double-claim interior
	// points (boundary ties aside). We check coverage: lookup never fails
	// and point-in-trixel holds — done in TestLookupPointInTrixel — here
	// we stress poles, seams, and face boundaries explicitly.
	pts := []sky.Vec3{
		{X: 0, Y: 0, Z: 1}, {X: 0, Y: 0, Z: -1},
		{X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0},
		{X: -1, Y: 0, Z: 0}, {X: 0, Y: -1, Z: 0},
		sky.EqToVec(45, 0), sky.EqToVec(0, 45), sky.EqToVec(359.9999, -0.0001),
	}
	for _, p := range pts {
		id := Lookup(p, 8)
		tri, err := Vertices(id)
		if err != nil {
			t.Fatalf("Vertices(%d): %v", id, err)
		}
		if !inside(p, tri[0], tri[1], tri[2]) {
			t.Errorf("boundary point %+v not inside its trixel %s", p, Name(id))
		}
	}
}

func TestCircleCoverContainsMembers(t *testing.T) {
	// Core correctness of the spatial index: every point within the
	// radius must have its depth-20 ID inside the circle's cover ranges.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		ra := rng.Float64() * 360
		dec := rng.Float64()*160 - 80
		radius := rng.Float64()*30 + 0.1 // arcmin
		cover := CoverCircleEq(ra, dec, radius)
		if len(cover) == 0 {
			t.Fatalf("empty cover for circle(%g,%g,%g)", ra, dec, radius)
		}
		center := sky.EqToVec(ra, dec)
		for i := 0; i < 40; i++ {
			// Random point inside the circle.
			ang := rng.Float64() * radius / sky.ArcminPerDeg
			dir := rng.Float64() * 360
			p := offsetPoint(center, ang, dir)
			id := Lookup(p, MaxDepth)
			if !InRanges(cover, id) {
				pra, pdec := sky.VecToEq(p)
				t.Fatalf("point (%g,%g) at %g' of (%g,%g) escaped cover", pra, pdec, ang*60, ra, dec)
			}
		}
	}
}

// offsetPoint returns the point at angular distance distDeg from center in
// the direction posAngleDeg (east of north).
func offsetPoint(center sky.Vec3, distDeg, posAngleDeg float64) sky.Vec3 {
	north := sky.Vec3{X: 0, Y: 0, Z: 1}
	east := north.Cross(center)
	if east.Norm() < 1e-12 {
		east = sky.Vec3{X: 0, Y: 1, Z: 0}
	}
	east = east.Normalize()
	up := center.Cross(east).Normalize() // local north
	t := posAngleDeg * sky.RadPerDeg
	d := distDeg * sky.RadPerDeg
	dir := up.Scale(math.Cos(t)).Add(east.Scale(math.Sin(t)))
	return center.Scale(math.Cos(d)).Add(dir.Scale(math.Sin(d))).Normalize()
}

func TestCircleCoverExcludesFarPoints(t *testing.T) {
	// The cover is conservative but must not balloon: points well outside
	// (> 4x radius away at these small scales) should mostly be excluded.
	cover := CoverCircleEq(185, -0.5, 1)
	rng := rand.New(rand.NewSource(2))
	center := sky.EqToVec(185, -0.5)
	excluded := 0
	const n = 200
	for i := 0; i < n; i++ {
		p := offsetPoint(center, (10+rng.Float64()*50)/60, rng.Float64()*360)
		if !InRanges(cover, Lookup(p, MaxDepth)) {
			excluded++
		}
	}
	if excluded < n*9/10 {
		t.Errorf("cover too loose: only %d/%d far points excluded", excluded, n)
	}
}

func TestRectCover(t *testing.T) {
	cx, err := Rect(184, -1, 186, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cx.Contains(sky.EqToVec(185, -0.5)) {
		t.Error("rect does not contain interior point")
	}
	if cx.Contains(sky.EqToVec(183, -0.5)) || cx.Contains(sky.EqToVec(185, 0.5)) {
		t.Error("rect contains exterior point")
	}
	cover := cx.Cover()
	if !InRanges(cover, LookupEq(185, -0.5, MaxDepth)) {
		t.Error("rect cover missing interior point")
	}
}

func TestRectErrors(t *testing.T) {
	if _, err := Rect(0, 1, 10, 0); err == nil {
		t.Error("inverted dec accepted")
	}
	if _, err := Rect(0, 0, 200, 10); err == nil {
		t.Error("over-wide rect accepted")
	}
}

func TestRectAcrossRAZero(t *testing.T) {
	cx, err := Rect(359, -1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !cx.Contains(sky.EqToVec(0, 0)) || !cx.Contains(sky.EqToVec(359.5, 0.5)) {
		t.Error("wraparound rect misses interior points")
	}
	if cx.Contains(sky.EqToVec(180, 0)) {
		t.Error("wraparound rect contains antipode")
	}
}

func TestPolygonCover(t *testing.T) {
	// A small square around (10, 10), counter-clockwise.
	pts := []sky.Vec3{
		sky.EqToVec(9.5, 9.5),
		sky.EqToVec(10.5, 9.5),
		sky.EqToVec(10.5, 10.5),
		sky.EqToVec(9.5, 10.5),
	}
	cx, err := Polygon(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !cx.Contains(sky.EqToVec(10, 10)) {
		t.Error("polygon missing center")
	}
	if cx.Contains(sky.EqToVec(12, 10)) {
		t.Error("polygon contains outside point")
	}
	cover := cx.Cover()
	if !InRanges(cover, LookupEq(10, 10, MaxDepth)) {
		t.Error("polygon cover missing center")
	}
}

func TestPolygonErrors(t *testing.T) {
	if _, err := Polygon([]sky.Vec3{sky.EqToVec(0, 0), sky.EqToVec(1, 0)}); err == nil {
		t.Error("2-point polygon accepted")
	}
	// Clockwise orientation must be rejected.
	cw := []sky.Vec3{
		sky.EqToVec(9.5, 9.5),
		sky.EqToVec(9.5, 10.5),
		sky.EqToVec(10.5, 10.5),
		sky.EqToVec(10.5, 9.5),
	}
	if _, err := Polygon(cw); err == nil {
		t.Error("clockwise polygon accepted")
	}
	deg := []sky.Vec3{sky.EqToVec(0, 0), sky.EqToVec(0, 0), sky.EqToVec(1, 1)}
	if _, err := Polygon(deg); err == nil {
		t.Error("degenerate polygon accepted")
	}
}

func TestMergeRanges(t *testing.T) {
	in := []Range{{10, 20}, {30, 40}, {20, 25}, {5, 12}, {39, 45}}
	out := MergeRanges(in)
	want := []Range{{5, 25}, {30, 45}}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	if got := MergeRanges(nil); len(got) != 0 {
		t.Errorf("MergeRanges(nil) = %v", got)
	}
}

func TestMergeRangesProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var rs []Range
		for i := 0; i+1 < len(raw); i += 2 {
			lo, hi := uint64(raw[i]), uint64(raw[i+1])
			if lo > hi {
				lo, hi = hi, lo
			}
			rs = append(rs, Range{lo, hi})
		}
		orig := append([]Range(nil), rs...)
		merged := MergeRanges(rs)
		// Merged ranges must be sorted and disjoint with gaps.
		for i := 1; i < len(merged); i++ {
			if merged[i].Lo <= merged[i-1].Hi {
				return false
			}
		}
		// Membership must be preserved for all endpoints.
		for _, r := range orig {
			for _, p := range []uint64{r.Lo, (r.Lo + r.Hi) / 2} {
				if p >= r.Hi {
					continue
				}
				if !InRanges(merged, p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoverRangesAreMergedAndSorted(t *testing.T) {
	cover := CoverCircleEq(50, 30, 15)
	for i := 1; i < len(cover); i++ {
		if cover[i].Lo <= cover[i-1].Hi {
			t.Fatalf("cover not merged/sorted at %d: %v", i, cover)
		}
	}
}

func TestCoverWholeSphere(t *testing.T) {
	// A halfspace with C = −1 is the whole sphere; its cover must be the
	// single full ID range at depth.
	cx := Convex{{V: sky.Vec3{Z: 1}, C: -1}}
	cover := cx.CoverWith(CoverOptions{Depth: 8})
	if len(cover) != 1 {
		t.Fatalf("whole-sphere cover = %v", cover)
	}
	lo, _ := IDRangeAtDepth(8, 8)
	_, hi := IDRangeAtDepth(15, 8)
	if cover[0].Lo != lo || cover[0].Hi != hi {
		t.Errorf("whole-sphere cover = %v, want [%d,%d)", cover, lo, hi)
	}
}

func TestCoverEmptyRegion(t *testing.T) {
	// Two opposing tight caps have empty intersection; the cover may be
	// conservative but should be small or empty.
	cx := Convex{
		{V: sky.EqToVec(0, 0), C: math.Cos(0.001)},
		{V: sky.EqToVec(180, 0), C: math.Cos(0.001)},
	}
	cover := cx.Cover()
	if len(cover) > 2 {
		t.Errorf("empty-region cover unexpectedly large: %v", cover)
	}
}

func TestCoverDepthOption(t *testing.T) {
	for _, d := range []int{6, 10, 20} {
		cover := Circle(185, -0.5, 1).CoverWith(CoverOptions{Depth: d})
		id := LookupEq(185, -0.5, d)
		if !InRanges(cover, id) {
			t.Errorf("depth-%d cover misses center id", d)
		}
	}
}

func TestHalfspaceContains(t *testing.T) {
	h := Halfspace{V: sky.EqToVec(0, 90), C: 0} // northern hemisphere
	if !h.Contains(sky.EqToVec(123, 45)) {
		t.Error("northern point rejected")
	}
	if h.Contains(sky.EqToVec(123, -45)) {
		t.Error("southern point accepted")
	}
}

func BenchmarkLookupDepth20(b *testing.B) {
	v := sky.EqToVec(185, -0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lookup(v, 20)
	}
}

func BenchmarkCoverCircle1Arcmin(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CoverCircleEq(185, -0.5, 1)
	}
}
