// Package htm implements the Hierarchical Triangular Mesh spatial index of
// §9.1.4 and Figure 8 of the SkyServer paper.
//
// HTM inscribes the celestial sphere in an octahedron and recursively divides
// each of the 8 faces into 4 spherical triangles ("trixels") by connecting
// the edge midpoints. A trixel at depth d is named by its face (N0–N3,
// S0–S3) followed by d digits in {0,1,2,3}, and encoded as a 64-bit integer:
// the face occupies the top 4 significant bits (values 8–15, i.e. a leading
// 1 bit followed by 3 face bits) and each subdivision appends 2 bits. The
// key property the paper exploits is that *all IDs inside trixel T form a
// contiguous integer interval*, so a plain B-tree over HTM IDs is a spatial
// index: a spatial region is converted to a small set of ID ranges
// ("a cover") that are range-scanned in the index.
//
// The paper's SDSS deployment uses 20-deep HTMs, where individual triangles
// are less than 0.1 arcseconds on a side; we support the same depth.
package htm

import (
	"fmt"
	"math"
	"strings"

	"skyserver/internal/sky"
)

// MaxDepth is the deepest supported subdivision. SDSS uses depth 20
// (trixels < 0.1″ per side); IDs then occupy 4+2·20 = 44 bits.
const MaxDepth = 20

// octahedron vertices, matching the JHU HTM convention.
var (
	v0 = sky.Vec3{X: 0, Y: 0, Z: 1}  // north pole
	v1 = sky.Vec3{X: 1, Y: 0, Z: 0}  // (ra 0, dec 0)
	v2 = sky.Vec3{X: 0, Y: 1, Z: 0}  // (ra 90, dec 0)
	v3 = sky.Vec3{X: -1, Y: 0, Z: 0} // (ra 180, dec 0)
	v4 = sky.Vec3{X: 0, Y: -1, Z: 0} // (ra 270, dec 0)
	v5 = sky.Vec3{X: 0, Y: 0, Z: -1} // south pole
)

// face holds one octahedron face: its name, root ID (8–15) and corner
// vertices in the JHU orientation (counter-clockwise seen from outside).
type face struct {
	name string
	id   uint64
	v    [3]sky.Vec3
}

var faces = [8]face{
	{"S0", 8, [3]sky.Vec3{v1, v5, v2}},
	{"S1", 9, [3]sky.Vec3{v2, v5, v3}},
	{"S2", 10, [3]sky.Vec3{v3, v5, v4}},
	{"S3", 11, [3]sky.Vec3{v4, v5, v1}},
	{"N0", 12, [3]sky.Vec3{v1, v0, v4}},
	{"N1", 13, [3]sky.Vec3{v4, v0, v3}},
	{"N2", 14, [3]sky.Vec3{v3, v0, v2}},
	{"N3", 15, [3]sky.Vec3{v2, v0, v1}},
}

// epsilon tolerates floating-point error in the inside-triangle tests so
// points that land exactly on trixel edges are still claimed by a trixel.
const epsilon = -1e-12

// inside reports whether p lies inside (or on the boundary of) the spherical
// triangle with counter-clockwise corners a, b, c.
func inside(p, a, b, c sky.Vec3) bool {
	return a.Cross(b).Dot(p) >= epsilon &&
		b.Cross(c).Dot(p) >= epsilon &&
		c.Cross(a).Dot(p) >= epsilon
}

// midpoint returns the normalized midpoint of the great-circle arc a–b.
func midpoint(a, b sky.Vec3) sky.Vec3 {
	return a.Add(b).Normalize()
}

// children computes the four child trixels of (a, b, c) in HTM order:
// child 0 = (a, w2, w1), 1 = (b, w0, w2), 2 = (c, w1, w0), 3 = (w0, w1, w2)
// where w0 = mid(b,c), w1 = mid(a,c), w2 = mid(a,b).
func children(a, b, c sky.Vec3) [4][3]sky.Vec3 {
	w0 := midpoint(b, c)
	w1 := midpoint(a, c)
	w2 := midpoint(a, b)
	return [4][3]sky.Vec3{
		{a, w2, w1},
		{b, w0, w2},
		{c, w1, w0},
		{w0, w1, w2},
	}
}

// Lookup returns the HTM ID of the depth-`depth` trixel containing the unit
// vector v. Depth 0 returns the face ID (8–15).
func Lookup(v sky.Vec3, depth int) uint64 {
	if depth < 0 {
		depth = 0
	}
	if depth > MaxDepth {
		depth = MaxDepth
	}
	var id uint64
	var tri [3]sky.Vec3
	for _, f := range faces {
		if inside(v, f.v[0], f.v[1], f.v[2]) {
			id = f.id
			tri = f.v
			break
		}
	}
	if id == 0 {
		// Numerically pathological input (e.g. the zero vector):
		// fall back to the face whose center is nearest.
		best := -2.0
		for _, f := range faces {
			ctr := f.v[0].Add(f.v[1]).Add(f.v[2]).Normalize()
			if d := ctr.Dot(v); d > best {
				best = d
				id = f.id
				tri = f.v
			}
		}
	}
	for l := 0; l < depth; l++ {
		kids := children(tri[0], tri[1], tri[2])
		found := false
		for k := 0; k < 4; k++ {
			if inside(v, kids[k][0], kids[k][1], kids[k][2]) {
				id = id<<2 | uint64(k)
				tri = kids[k]
				found = true
				break
			}
		}
		if !found {
			// Extremely rare epsilon gap: descend into the center child,
			// which shares area with all siblings at its corners.
			id = id<<2 | 3
			tri = kids[3]
		}
	}
	return id
}

// LookupEq returns the HTM ID at the given depth for J2000 coordinates in
// degrees. This is the function used to populate PhotoObj.htmID.
func LookupEq(raDeg, decDeg float64, depth int) uint64 {
	return Lookup(sky.EqToVec(raDeg, decDeg), depth)
}

// Depth returns the subdivision depth encoded in an HTM ID, or −1 if the ID
// is not a valid HTM ID (valid IDs have an odd-positioned leading 1 bit
// pattern: bit length 4 + 2·depth).
func Depth(id uint64) int {
	if id < 8 {
		return -1
	}
	bits := 64 - leadingZeros(id)
	if (bits-4)%2 != 0 {
		return -1
	}
	d := (bits - 4) / 2
	if d > MaxDepth {
		return -1
	}
	return d
}

func leadingZeros(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		x <<= 1
		n++
		if n == 64 {
			break
		}
	}
	return n
}

// Name returns the mnemonic trixel name, e.g. "N012" for face N0, child 1,
// child 2 — the notation of Figure 8.
func Name(id uint64) string {
	d := Depth(id)
	if d < 0 {
		return fmt.Sprintf("invalid(%d)", id)
	}
	digits := make([]byte, d)
	for i := d - 1; i >= 0; i-- {
		digits[i] = byte('0' + id&3)
		id >>= 2
	}
	var b strings.Builder
	b.WriteString(faces[id-8].name)
	b.Write(digits)
	return b.String()
}

// Parse converts a trixel name such as "N012" back to its HTM ID.
func Parse(name string) (uint64, error) {
	if len(name) < 2 {
		return 0, fmt.Errorf("htm: name %q too short", name)
	}
	var id uint64
	switch name[:2] {
	case "S0":
		id = 8
	case "S1":
		id = 9
	case "S2":
		id = 10
	case "S3":
		id = 11
	case "N0":
		id = 12
	case "N1":
		id = 13
	case "N2":
		id = 14
	case "N3":
		id = 15
	default:
		return 0, fmt.Errorf("htm: bad face in name %q", name)
	}
	if len(name)-2 > MaxDepth {
		return 0, fmt.Errorf("htm: name %q deeper than max depth %d", name, MaxDepth)
	}
	for _, c := range name[2:] {
		if c < '0' || c > '3' {
			return 0, fmt.Errorf("htm: bad digit %q in name %q", c, name)
		}
		id = id<<2 | uint64(c-'0')
	}
	return id, nil
}

// Vertices returns the corner unit vectors of the trixel with the given ID.
func Vertices(id uint64) ([3]sky.Vec3, error) {
	d := Depth(id)
	if d < 0 {
		return [3]sky.Vec3{}, fmt.Errorf("htm: invalid id %d", id)
	}
	path := make([]int, d)
	for i := d - 1; i >= 0; i-- {
		path[i] = int(id & 3)
		id >>= 2
	}
	tri := faces[id-8].v
	for _, k := range path {
		tri = children(tri[0], tri[1], tri[2])[k]
	}
	return tri, nil
}

// Center returns the normalized centroid of a trixel.
func Center(id uint64) (sky.Vec3, error) {
	tri, err := Vertices(id)
	if err != nil {
		return sky.Vec3{}, err
	}
	return tri[0].Add(tri[1]).Add(tri[2]).Normalize(), nil
}

// ToDepth re-expresses an HTM ID at another depth: deepening appends zero
// digits (returning the first descendant), shallowing truncates to the
// ancestor.
func ToDepth(id uint64, to int) uint64 {
	d := Depth(id)
	if d < 0 || to < 0 || to > MaxDepth {
		return id
	}
	if to >= d {
		return id << (2 * uint(to-d))
	}
	return id >> (2 * uint(d-to))
}

// IDRangeAtDepth returns the half-open interval [lo, hi) of depth-`depth`
// IDs descending from trixel id. This is the contiguity property that turns
// a B-tree into a spatial index.
func IDRangeAtDepth(id uint64, depth int) (lo, hi uint64) {
	d := Depth(id)
	if d < 0 || depth < d {
		return id, id + 1
	}
	shift := 2 * uint(depth-d)
	return id << shift, (id + 1) << shift
}

// TrixelAreaSr returns the exact solid angle of a trixel in steradians,
// computed via the spherical excess (Girard's theorem).
func TrixelAreaSr(id uint64) (float64, error) {
	tri, err := Vertices(id)
	if err != nil {
		return 0, err
	}
	a := tri[1].AngleTo(tri[2])
	b := tri[0].AngleTo(tri[2])
	c := tri[0].AngleTo(tri[1])
	s := (a + b + c) / 2
	t := math.Tan(s/2) * math.Tan((s-a)/2) * math.Tan((s-b)/2) * math.Tan((s-c)/2)
	if t < 0 {
		t = 0
	}
	return 4 * math.Atan(math.Sqrt(t)), nil
}
