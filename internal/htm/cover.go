package htm

import (
	"fmt"
	"math"
	"sort"

	"skyserver/internal/sky"
)

// Halfspace is the region {p : p·V ≥ C} of the unit sphere — a spherical cap
// centered on V with angular radius acos(C). The paper's spHTM_Cover accepts
// circles, half-spaces, and polygons; all three reduce to intersections of
// halfspaces (a Convex).
type Halfspace struct {
	V sky.Vec3 // unit direction of the cap center
	C float64  // cosine of the cap's angular radius, in [−1, 1]
}

// Contains reports whether point p lies in the halfspace.
func (h Halfspace) Contains(p sky.Vec3) bool { return p.Dot(h.V) >= h.C }

// Convex is an intersection of halfspaces: the <area> argument of the
// paper's spHTM_Cover table-valued function. A single-element Convex is a
// circle; four halfspaces express an (ra, dec) rectangle; an n-gon
// contributes one great-circle halfspace per edge.
type Convex []Halfspace

// Contains reports whether p lies in every halfspace of the convex.
func (cx Convex) Contains(p sky.Vec3) bool {
	for _, h := range cx {
		if !h.Contains(p) {
			return false
		}
	}
	return true
}

// Circle returns the convex covering a circular area of the given radius (in
// arcminutes) around the J2000 point (raDeg, decDeg). This is the region
// used by fGetNearbyObjEq / fGetNearestObjEq.
func Circle(raDeg, decDeg, radiusArcmin float64) Convex {
	r := radiusArcmin / sky.ArcminPerDeg * sky.RadPerDeg
	return Convex{{V: sky.EqToVec(raDeg, decDeg), C: math.Cos(r)}}
}

// Rect returns the convex for the (ra, dec) box with the given bounds in
// degrees. The two declination bounds are small-circle halfspaces about the
// poles; the two right-ascension bounds are great-circle halfspaces. Boxes
// must be less than 180° wide in ra.
func Rect(raMin, decMin, raMax, decMax float64) (Convex, error) {
	if decMin > decMax {
		return nil, fmt.Errorf("htm: rect decMin %g > decMax %g", decMin, decMax)
	}
	width := sky.NormalizeRA(raMax - raMin)
	if width == 0 && raMax != raMin {
		width = 360
	}
	if width >= 180 {
		return nil, fmt.Errorf("htm: rect wider than 180 degrees in ra")
	}
	pole := sky.Vec3{X: 0, Y: 0, Z: 1}
	cx := Convex{
		{V: pole, C: math.Sin(decMin * sky.RadPerDeg)},            // dec ≥ decMin
		{V: pole.Scale(-1), C: math.Sin(-decMax * sky.RadPerDeg)}, // dec ≤ decMax
		{V: sky.EqToVec(sky.NormalizeRA(raMin+90), 0), C: 0},      // ra ≥ raMin
		{V: sky.EqToVec(sky.NormalizeRA(raMax-90), 0), C: 0},      // ra ≤ raMax
	}
	return cx, nil
}

// Polygon returns the convex for a convex spherical polygon given by its
// corner points in counter-clockwise order (seen from outside the sphere).
// Each edge contributes the great-circle halfspace containing the polygon.
func Polygon(points []sky.Vec3) (Convex, error) {
	if len(points) < 3 {
		return nil, fmt.Errorf("htm: polygon needs at least 3 points, got %d", len(points))
	}
	cx := make(Convex, 0, len(points))
	for i, p := range points {
		q := points[(i+1)%len(points)]
		n := p.Cross(q)
		if n.Norm() == 0 {
			return nil, fmt.Errorf("htm: degenerate polygon edge %d", i)
		}
		cx = append(cx, Halfspace{V: n.Normalize(), C: 0})
	}
	// Verify convexity and orientation: every vertex must satisfy every
	// edge constraint (within tolerance).
	for _, h := range cx {
		for i, p := range points {
			if p.Dot(h.V) < -1e-9 {
				return nil, fmt.Errorf("htm: polygon is not convex or not counter-clockwise at vertex %d", i)
			}
		}
	}
	return cx, nil
}

// Range is a half-open interval [Lo, Hi) of HTM IDs at a fixed depth. The
// union of a cover's ranges contains every trixel intersecting the region.
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether id falls inside the range.
func (r Range) Contains(id uint64) bool { return id >= r.Lo && id < r.Hi }

// classification of a trixel against a region.
type class int

const (
	classOutside class = iota
	classPartial
	classInside
)

// classifyHalfspace classifies the spherical triangle (a,b,c) against h.
func classifyHalfspace(h Halfspace, a, b, c sky.Vec3) class {
	in := 0
	if h.Contains(a) {
		in++
	}
	if h.Contains(b) {
		in++
	}
	if h.Contains(c) {
		in++
	}
	switch in {
	case 3:
		// All corners inside. The triangle is wholly inside unless the
		// complement cap pokes through the interior, which can only
		// happen if the complement cap's boundary crosses an edge or
		// its center lies inside the triangle.
		comp := Halfspace{V: h.V.Scale(-1), C: -h.C}
		if capTouchesTriangle(comp, a, b, c) {
			return classPartial
		}
		return classInside
	case 0:
		// All corners outside: disjoint unless the cap intersects an
		// edge or lies wholly inside the triangle.
		if capTouchesTriangle(h, a, b, c) {
			return classPartial
		}
		return classOutside
	default:
		return classPartial
	}
}

// capTouchesTriangle reports whether the boundary circle of cap h crosses an
// edge of triangle (a,b,c), or the cap center lies inside the triangle
// (covering the cap-strictly-inside case).
func capTouchesTriangle(h Halfspace, a, b, c sky.Vec3) bool {
	if inside(h.V, a, b, c) {
		return true
	}
	edges := [3][2]sky.Vec3{{a, b}, {b, c}, {c, a}}
	for _, e := range edges {
		if capIntersectsArc(h, e[0], e[1]) {
			return true
		}
	}
	return false
}

// capIntersectsArc reports whether cap h contains any point of the
// great-circle arc u–w. Endpoint containment is assumed to have been tested
// by the caller (corner counts); this checks the arc's closest approach.
func capIntersectsArc(h Halfspace, u, w sky.Vec3) bool {
	n := u.Cross(w)
	nn := n.Norm()
	if nn == 0 {
		return false
	}
	n = n.Scale(1 / nn)
	// Closest point of the full great circle to the cap center.
	p := h.V.Sub(n.Scale(h.V.Dot(n)))
	pn := p.Norm()
	if pn == 0 {
		// Cap center is the circle's pole: the whole circle is
		// equidistant (90°) from the center.
		return h.C <= 0
	}
	p = p.Scale(1 / pn)
	if p.Dot(h.V) < h.C {
		return false // even the closest point is outside the cap
	}
	// p must lie within the arc segment u–w.
	return u.Cross(p).Dot(u.Cross(w)) >= 0 && w.Cross(p).Dot(w.Cross(u)) >= 0
}

// classify classifies a triangle against the whole convex: outside if it is
// outside any halfspace, inside if inside all, otherwise partial
// (conservatively — a convex intersection may also be empty inside the
// triangle, which the consumer re-filters with the exact predicate).
func (cx Convex) classify(a, b, c sky.Vec3) class {
	result := classInside
	for _, h := range cx {
		switch classifyHalfspace(h, a, b, c) {
		case classOutside:
			return classOutside
		case classPartial:
			result = classPartial
		}
	}
	return result
}

// CoverOptions tunes the cover computation.
type CoverOptions struct {
	// Depth is the depth at which ranges are expressed (the depth of the
	// stored htmID column). Defaults to MaxDepth.
	Depth int
	// MaxLevel bounds how deep subdivision proceeds; partial trixels at
	// MaxLevel are included conservatively. Defaults to 14.
	MaxLevel int
	// Budget caps the number of frontier trixels before subdivision
	// stops. Defaults to 256.
	Budget int
}

func (o *CoverOptions) defaults() {
	if o.Depth <= 0 || o.Depth > MaxDepth {
		o.Depth = MaxDepth
	}
	if o.MaxLevel <= 0 {
		o.MaxLevel = 14
	}
	if o.MaxLevel > o.Depth {
		o.MaxLevel = o.Depth
	}
	if o.Budget <= 0 {
		o.Budget = 256
	}
}

type coverNode struct {
	id  uint64
	tri [3]sky.Vec3
}

// Cover computes the HTM range cover of the convex with default options.
func (cx Convex) Cover() []Range {
	return cx.CoverWith(CoverOptions{})
}

// CoverWith computes the cover with explicit options. The returned ranges
// are sorted, non-overlapping, and merged; their union contains every
// depth-`Depth` trixel that intersects the region (a conservative cover:
// some returned trixels may only graze it).
func (cx Convex) CoverWith(opt CoverOptions) []Range {
	opt.defaults()
	var ranges []Range
	frontier := make([]coverNode, 0, 8)
	for _, f := range faces {
		switch cx.classify(f.v[0], f.v[1], f.v[2]) {
		case classInside:
			lo, hi := IDRangeAtDepth(f.id, opt.Depth)
			ranges = append(ranges, Range{lo, hi})
		case classPartial:
			frontier = append(frontier, coverNode{f.id, f.v})
		}
	}
	for level := 1; level <= opt.MaxLevel && len(frontier) > 0; level++ {
		if len(frontier)*4 > opt.Budget {
			break
		}
		next := frontier[:0:0]
		for _, n := range frontier {
			kids := children(n.tri[0], n.tri[1], n.tri[2])
			for k := 0; k < 4; k++ {
				id := n.id<<2 | uint64(k)
				switch cx.classify(kids[k][0], kids[k][1], kids[k][2]) {
				case classInside:
					lo, hi := IDRangeAtDepth(id, opt.Depth)
					ranges = append(ranges, Range{lo, hi})
				case classPartial:
					next = append(next, coverNode{id, kids[k]})
				}
			}
		}
		frontier = next
	}
	for _, n := range frontier {
		lo, hi := IDRangeAtDepth(n.id, opt.Depth)
		ranges = append(ranges, Range{lo, hi})
	}
	return MergeRanges(ranges)
}

// MergeRanges sorts ranges by Lo and coalesces overlapping or adjacent
// intervals, returning the canonical minimal representation.
func MergeRanges(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CoverCircleEq is a convenience wrapper: the cover of a circle of
// radiusArcmin around (raDeg, decDeg) at the default depth.
func CoverCircleEq(raDeg, decDeg, radiusArcmin float64) []Range {
	return Circle(raDeg, decDeg, radiusArcmin).Cover()
}

// InRanges reports whether id (at cover depth) is inside any of the sorted,
// merged ranges, using binary search.
func InRanges(rs []Range, id uint64) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi > id })
	return i < len(rs) && rs[i].Lo <= id
}
