// Package sky provides celestial geometry primitives used throughout the
// SkyServer: J2000 equatorial coordinates, unit vectors on the celestial
// sphere, arc-angle math, and the SDSS survey addressing grid
// (stripe / strip / run / camcol / field) described in Figure 6 of the paper.
//
// The paper stores both (ra, dec) and the Cartesian components (cx, cy, cz)
// of the corresponding unit vector for every object, because "the dot product
// and the Cartesian difference of two vectors are quick ways to determine the
// arc-angle or distance between them" (§9.1.4). This package implements those
// conversions and distance predicates.
package sky

import (
	"errors"
	"fmt"
	"math"
)

// Degrees per radian and related conversion constants.
const (
	DegPerRad    = 180 / math.Pi
	RadPerDeg    = math.Pi / 180
	ArcminPerDeg = 60
	ArcsecPerDeg = 3600
)

// Vec3 is a point on (or vector toward) the unit celestial sphere in the
// J2000 Cartesian frame: x toward (ra=0, dec=0), z toward the north
// celestial pole.
type Vec3 struct {
	X, Y, Z float64
}

// EqToVec converts J2000 equatorial coordinates in degrees to a unit vector.
func EqToVec(raDeg, decDeg float64) Vec3 {
	ra := raDeg * RadPerDeg
	dec := decDeg * RadPerDeg
	cd := math.Cos(dec)
	return Vec3{
		X: math.Cos(ra) * cd,
		Y: math.Sin(ra) * cd,
		Z: math.Sin(dec),
	}
}

// VecToEq converts a (not necessarily normalized) vector back to J2000
// equatorial coordinates in degrees, with ra in [0, 360).
func VecToEq(v Vec3) (raDeg, decDeg float64) {
	n := v.Norm()
	if n == 0 {
		return 0, 0
	}
	dec := math.Asin(v.Z/n) * DegPerRad
	ra := math.Atan2(v.Y, v.X) * DegPerRad
	if ra < 0 {
		ra += 360
	}
	return ra, dec
}

// Dot returns the dot product of two vectors.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// AngleTo returns the arc angle between v and w in radians. Both inputs are
// assumed to be unit vectors; the chord formulation
// 2·asin(|v−w|/2) is used because it is numerically stable for small angles,
// which dominate neighbour searches.
func (v Vec3) AngleTo(w Vec3) float64 {
	d := v.Sub(w).Norm()
	if d > 2 {
		d = 2
	}
	return 2 * math.Asin(d/2)
}

// DistanceDeg returns the arc distance between two (ra, dec) points in
// degrees.
func DistanceDeg(ra1, dec1, ra2, dec2 float64) float64 {
	return EqToVec(ra1, dec1).AngleTo(EqToVec(ra2, dec2)) * DegPerRad
}

// DistanceArcmin returns the arc distance between two (ra, dec) points in
// arcminutes. This matches the `distance` column returned by the
// fGetNearbyObjEq table-valued function.
func DistanceArcmin(ra1, dec1, ra2, dec2 float64) float64 {
	return DistanceDeg(ra1, dec1, ra2, dec2) * ArcminPerDeg
}

// WithinRadiusDeg reports whether two unit vectors are within the given arc
// radius (degrees) of each other, using a pure dot-product comparison so the
// hot path of spatial joins avoids trigonometry.
func WithinRadiusDeg(a, b Vec3, radiusDeg float64) bool {
	return a.Dot(b) >= math.Cos(radiusDeg*RadPerDeg)
}

// NormalizeRA maps any right ascension in degrees into [0, 360).
func NormalizeRA(ra float64) float64 {
	ra = math.Mod(ra, 360)
	if ra < 0 {
		ra += 360
	}
	return ra
}

// ClampDec clamps a declination to the valid [−90, 90] range.
func ClampDec(dec float64) float64 {
	if dec < -90 {
		return -90
	}
	if dec > 90 {
		return 90
	}
	return dec
}

// Survey grid geometry (Figure 6). The SDSS observes the sky in great-circle
// *strips*; two interleaved strips from two nights form a *stripe* about 2.5°
// wide and up to 130° long. A strip is divided along its length into
// *fields*; six camera columns (camcols) sweep in parallel; a contiguous
// observation of one strip is a *run*. About 10% of each strip overlaps its
// partner, so ~11% of objects are observed more than once (§9).
const (
	// StripeWidthDeg is the width of a survey stripe in degrees.
	StripeWidthDeg = 2.5
	// FieldHeightDeg is the along-scan extent of one field in degrees
	// (a frame is 2048×1489 pixels at 0.396″/pixel ≈ 0.225° × 0.164°;
	// we use the along-scan 0.164° rounded for the synthetic grid).
	FieldHeightDeg = 0.164
	// CamCols is the number of camera columns per strip.
	CamCols = 6
	// StripOverlapFrac is the fraction of a strip that overlaps the
	// interleaved partner strip, producing duplicate (secondary) objects.
	StripOverlapFrac = 0.10
)

// FieldID addresses one field in the survey grid exactly as the PhotoObj
// table does: by run, rerun, camcol and field number.
type FieldID struct {
	Run    int
	Rerun  int
	CamCol int
	Field  int
}

// String renders the field address in the conventional run-rerun-camcol-field
// form used by SDSS file names.
func (f FieldID) String() string {
	return fmt.Sprintf("%06d-%d-%d-%04d", f.Run, f.Rerun, f.CamCol, f.Field)
}

// Grid describes the synthetic survey footprint: a set of stripes, each made
// of two interleaved strips (two runs), each run divided into fields and
// camcols. The grid places fields on the sphere so that generated objects
// have consistent (ra, dec) ↔ (run, camcol, field) addressing.
type Grid struct {
	// Stripes is the number of stripes in the footprint.
	Stripes int
	// FieldsPerStrip is the number of fields along each strip.
	FieldsPerStrip int
	// RA0, Dec0 anchor the footprint's south-west corner in degrees.
	RA0, Dec0 float64
}

// Validate reports an error for non-positive grid dimensions or anchors that
// push the footprint off the sphere.
func (g Grid) Validate() error {
	if g.Stripes <= 0 || g.FieldsPerStrip <= 0 {
		return errors.New("sky: grid dimensions must be positive")
	}
	top := g.Dec0 + float64(g.Stripes)*StripeWidthDeg
	if g.Dec0 < -90 || top > 90 {
		return fmt.Errorf("sky: grid spans dec %.2f..%.2f outside [-90,90]", g.Dec0, top)
	}
	return nil
}

// RunNumber returns the run identifier for a (stripe, strip) pair. Strip 0 is
// the first night's observation, strip 1 the second. Runs are synthetic but
// stable: they look like plausible SDSS run numbers.
func (g Grid) RunNumber(stripe, strip int) int {
	return 752 + stripe*2 + strip
}

// FieldCenter returns the J2000 center of a field. Stripes advance in
// declination; fields advance in right ascension; camcols split the stripe
// width; the two strips of a stripe are offset by half a stripe so they
// interleave with StripOverlapFrac overlap.
func (g Grid) FieldCenter(stripe, strip, camcol, field int) (raDeg, decDeg float64) {
	camWidth := StripeWidthDeg / CamCols
	// Strip 1 is shifted by (1-overlap) * half stripe so the two strips
	// interleave and overlap at the edges.
	stripShift := float64(strip) * camWidth * CamCols / 2 * (1 - StripOverlapFrac) / 3
	dec := g.Dec0 + float64(stripe)*StripeWidthDeg + (float64(camcol)+0.5)*camWidth + stripShift
	ra := g.RA0 + (float64(field)+0.5)*FieldHeightDeg
	return NormalizeRA(ra), ClampDec(dec)
}

// FieldBounds returns the (ra, dec) bounding box of a field.
func (g Grid) FieldBounds(stripe, strip, camcol, field int) (raMin, raMax, decMin, decMax float64) {
	ra, dec := g.FieldCenter(stripe, strip, camcol, field)
	camWidth := StripeWidthDeg / CamCols
	return ra - FieldHeightDeg/2, ra + FieldHeightDeg/2, dec - camWidth/2, dec + camWidth/2
}

// LocateField returns the (stripe, strip0) field address whose bounds contain
// the given point, if any. Only strip 0 is consulted; callers needing overlap
// semantics enumerate both strips.
func (g Grid) LocateField(raDeg, decDeg float64) (stripe, camcol, field int, ok bool) {
	raDeg = NormalizeRA(raDeg)
	dRA := raDeg - g.RA0
	if dRA < 0 {
		dRA += 360
	}
	field = int(dRA / FieldHeightDeg)
	camWidth := StripeWidthDeg / CamCols
	dDec := decDeg - g.Dec0
	if dDec < 0 {
		return 0, 0, 0, false
	}
	stripe = int(dDec / StripeWidthDeg)
	camcol = int(math.Mod(dDec, StripeWidthDeg) / camWidth)
	if stripe >= g.Stripes || field >= g.FieldsPerStrip || camcol >= CamCols {
		return 0, 0, 0, false
	}
	return stripe, camcol, field, true
}
