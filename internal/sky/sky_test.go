package sky

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEqToVecCardinalPoints(t *testing.T) {
	cases := []struct {
		ra, dec float64
		want    Vec3
	}{
		{0, 0, Vec3{1, 0, 0}},
		{90, 0, Vec3{0, 1, 0}},
		{180, 0, Vec3{-1, 0, 0}},
		{270, 0, Vec3{0, -1, 0}},
		{0, 90, Vec3{0, 0, 1}},
		{0, -90, Vec3{0, 0, -1}},
	}
	for _, c := range cases {
		v := EqToVec(c.ra, c.dec)
		if !almostEq(v.X, c.want.X, 1e-12) || !almostEq(v.Y, c.want.Y, 1e-12) || !almostEq(v.Z, c.want.Z, 1e-12) {
			t.Errorf("EqToVec(%g,%g) = %+v, want %+v", c.ra, c.dec, v, c.want)
		}
	}
}

func TestEqVecRoundTrip(t *testing.T) {
	f := func(raRaw, decRaw float64) bool {
		ra := NormalizeRA(math.Mod(raRaw, 1e6))
		dec := math.Mod(decRaw, 89.9)
		v := EqToVec(ra, dec)
		ra2, dec2 := VecToEq(v)
		return almostEq(dec, dec2, 1e-9) && almostEq(math.Mod(ra-ra2+720, 360), 0, 1e-9) ||
			almostEq(math.Abs(ra-ra2), 360, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestVecToEqZeroVector(t *testing.T) {
	ra, dec := VecToEq(Vec3{})
	if ra != 0 || dec != 0 {
		t.Errorf("VecToEq(zero) = (%g,%g), want (0,0)", ra, dec)
	}
}

func TestUnitNorm(t *testing.T) {
	f := func(ra, dec float64) bool {
		v := EqToVec(NormalizeRA(ra), ClampDec(math.Mod(dec, 90)))
		return almostEq(v.Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAngleToKnown(t *testing.T) {
	a := EqToVec(0, 0)
	b := EqToVec(90, 0)
	if got := a.AngleTo(b) * DegPerRad; !almostEq(got, 90, 1e-9) {
		t.Errorf("angle = %g, want 90", got)
	}
	c := EqToVec(0, 90)
	if got := a.AngleTo(c) * DegPerRad; !almostEq(got, 90, 1e-9) {
		t.Errorf("angle to pole = %g, want 90", got)
	}
	if got := a.AngleTo(a); !almostEq(got, 0, 1e-12) {
		t.Errorf("self angle = %g, want 0", got)
	}
}

func TestAngleToSmallAngles(t *testing.T) {
	// Half-arcminute separations drive the Neighbors computation; the
	// chord formula must resolve them precisely.
	a := EqToVec(185, -0.5)
	b := EqToVec(185, -0.5+0.5/60)
	gotArcmin := a.AngleTo(b) * DegPerRad * ArcminPerDeg
	if !almostEq(gotArcmin, 0.5, 1e-9) {
		t.Errorf("small angle = %g arcmin, want 0.5", gotArcmin)
	}
}

func TestDistanceArcmin(t *testing.T) {
	if got := DistanceArcmin(185, -0.5, 185, -0.5); got != 0 {
		t.Errorf("zero distance = %g", got)
	}
	got := DistanceArcmin(185, 0, 185, 1)
	if !almostEq(got, 60, 1e-9) {
		t.Errorf("1 degree = %g arcmin, want 60", got)
	}
}

func TestWithinRadiusDeg(t *testing.T) {
	a := EqToVec(10, 10)
	b := EqToVec(10, 10.5)
	if !WithinRadiusDeg(a, b, 0.6) {
		t.Error("0.5 deg apart should be within 0.6 deg")
	}
	if WithinRadiusDeg(a, b, 0.4) {
		t.Error("0.5 deg apart should not be within 0.4 deg")
	}
}

func TestWithinRadiusMatchesAngleTo(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2, rRaw float64) bool {
		r := math.Abs(math.Mod(rRaw, 10))
		a := EqToVec(NormalizeRA(ra1), math.Mod(dec1, 89))
		b := EqToVec(NormalizeRA(ra2), math.Mod(dec2, 89))
		angDeg := a.AngleTo(b) * DegPerRad
		if math.Abs(angDeg-r) < 1e-9 {
			return true // boundary: either answer acceptable
		}
		return WithinRadiusDeg(a, b, r) == (angDeg <= r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeRA(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {-10, 350}, {725, 5}, {359.5, 359.5},
	}
	for _, c := range cases {
		if got := NormalizeRA(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalizeRA(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2 float64) bool {
		a := EqToVec(NormalizeRA(ra1), math.Mod(dec1, 89))
		b := EqToVec(NormalizeRA(ra2), math.Mod(dec2, 89))
		c := a.Cross(b)
		return almostEq(c.Dot(a), 0, 1e-9) && almostEq(c.Dot(b), 0, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{Stripes: 2, FieldsPerStrip: 10, RA0: 180, Dec0: -1.25}).Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	if err := (Grid{Stripes: 0, FieldsPerStrip: 10}).Validate(); err == nil {
		t.Error("zero stripes accepted")
	}
	if err := (Grid{Stripes: 80, FieldsPerStrip: 10, Dec0: -1.25}).Validate(); err == nil {
		t.Error("grid past the pole accepted")
	}
}

func TestGridFieldAddressing(t *testing.T) {
	g := Grid{Stripes: 2, FieldsPerStrip: 100, RA0: 180, Dec0: -1.25}
	ra, dec := g.FieldCenter(0, 0, 0, 0)
	stripe, camcol, field, ok := g.LocateField(ra, dec)
	if !ok || stripe != 0 || camcol != 0 || field != 0 {
		t.Errorf("LocateField(center of 0/0/0/0) = (%d,%d,%d,%v)", stripe, camcol, field, ok)
	}
	ra, dec = g.FieldCenter(1, 0, 3, 42)
	stripe, camcol, field, ok = g.LocateField(ra, dec)
	if !ok || stripe != 1 || camcol != 3 || field != 42 {
		t.Errorf("LocateField = (%d,%d,%d,%v), want (1,3,42,true)", stripe, camcol, field, ok)
	}
	if _, _, _, ok := g.LocateField(0, 50); ok {
		t.Error("point far outside footprint located")
	}
}

func TestGridRunNumbersDistinct(t *testing.T) {
	g := Grid{Stripes: 3, FieldsPerStrip: 10, RA0: 0, Dec0: 0}
	seen := map[int]bool{}
	for s := 0; s < g.Stripes; s++ {
		for strip := 0; strip < 2; strip++ {
			r := g.RunNumber(s, strip)
			if seen[r] {
				t.Fatalf("duplicate run number %d", r)
			}
			seen[r] = true
		}
	}
}

func TestFieldIDString(t *testing.T) {
	f := FieldID{Run: 752, Rerun: 1, CamCol: 3, Field: 42}
	if got := f.String(); got != "000752-1-3-0042" {
		t.Errorf("FieldID.String() = %q", got)
	}
}

func TestFieldBoundsContainCenter(t *testing.T) {
	g := Grid{Stripes: 2, FieldsPerStrip: 50, RA0: 180, Dec0: -1.25}
	raMin, raMax, decMin, decMax := g.FieldBounds(1, 1, 2, 7)
	ra, dec := g.FieldCenter(1, 1, 2, 7)
	if ra < raMin || ra > raMax || dec < decMin || dec > decMax {
		t.Errorf("center (%g,%g) outside bounds [%g,%g]x[%g,%g]", ra, dec, raMin, raMax, decMin, decMax)
	}
}
