//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this test
// binary; wall-clock throughput assertions skip under -race. See the
// identical helper in internal/storage.
const raceEnabled = false
