// Package experiments regenerates every table and figure of the SkyServer
// paper's evaluation from the reproduction: Table 1 (storage census),
// Figure 5 (site traffic), Figures 10–12 (query plans and the index
// ablation), Figure 13 (the 22-query workload timings), Figure 15
// (sequential-scan bandwidth vs. disk configuration), and the §11 prose
// numbers (warm/cold index scans, the color-cut scan rate, load
// throughput, neighbors density, the personal-subset ratio).
//
// The cmd/skybench binary prints these as reports; bench_test.go wraps
// them as testing.B benchmarks. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"skyserver/internal/core"
	"skyserver/internal/load"
	"skyserver/internal/neighbors"
	"skyserver/internal/pipeline"
	"skyserver/internal/queries"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/traffic"
	"skyserver/internal/val"
)

// Table1Row pairs a measured table census with the paper's numbers.
type Table1Row struct {
	Name       string
	Rows       uint64
	DataBytes  uint64
	IndexBytes uint64
	PaperRows  string
	PaperBytes string
}

// paperTable1 is Table 1 of the paper, verbatim.
var paperTable1 = map[string][2]string{
	"Field":         {"14k", "60MB"},
	"Frame":         {"73k", "6GB"},
	"PhotoObj":      {"14m", "31GB"},
	"Profile":       {"14m", "9GB"},
	"Neighbors":     {"111m", "5GB"},
	"Plate":         {"98", "80KB"},
	"SpecObj":       {"63k", "1GB"},
	"SpecLine":      {"1.7m", "225MB"},
	"SpecLineIndex": {"1.8m", "142MB"},
	"xcRedShift":    {"1.9m", "157MB"},
	"elRedShift":    {"51k", "3MB"},
}

// Table1 builds the measured census of a loaded server.
func Table1(s *core.SkyServer) []Table1Row {
	var out []Table1Row
	for _, ti := range s.TableSummary() {
		p := paperTable1[ti.Name]
		out = append(out, Table1Row{
			Name: ti.Name, Rows: ti.Rows,
			DataBytes: ti.DataBytes, IndexBytes: ti.IndexBytes,
			PaperRows: p[0], PaperBytes: p[1],
		})
	}
	return out
}

// Fig5 generates the seven-month synthetic log and analyzes it.
func Fig5(cfg traffic.Config) (*traffic.Report, error) {
	var buf bytes.Buffer
	if _, err := traffic.Generate(cfg, &buf); err != nil {
		return nil, err
	}
	return traffic.Analyze(&buf)
}

// Plans returns the EXPLAIN text of the three queries whose plans the paper
// prints (Figures 10, 11, 12).
func Plans(s *core.SkyServer) (map[string]string, error) {
	out := map[string]string{}
	for id, sql := range map[string]string{
		"Q1 (Figure 10)":   queries.Q1SQL,
		"Q15A (Figure 11)": queries.Q15ASQL,
		"Q15B (Figure 12)": queries.Q15BSQL,
	} {
		plan, err := s.Session().Explain(sql)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out[id] = plan
	}
	return out, nil
}

// Fig12Result is the covering-index ablation on the NEO query.
type Fig12Result struct {
	WithIndex    time.Duration
	WithoutIndex time.Duration
	RowsWith     int
	RowsWithout  int
}

// Fig12Config tunes the ablation substrate.
type Fig12Config struct {
	Scale float64
	Seed  int64
	// SpeedUp compresses the disk model's time (default 4). The ablation
	// runs on the paper's 4-disk configuration with a deliberately tiny
	// page cache, because the 55 s vs ~10 min gap the paper reports is an
	// I/O story: the covered index answers from memory-resident B-trees
	// while the index-less plan drags the 2 KB records off disk twice.
	SpeedUp float64
}

// Fig12 loads a survey onto model disks, times Q15B cold with the
// (run, camcol, field) covering index, drops the index, and times the
// resulting nested loop of table scans cold.
func Fig12(cfg Fig12Config) (Fig12Result, error) {
	var r Fig12Result
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0 / 400
	}
	if cfg.SpeedUp <= 0 {
		cfg.SpeedUp = 1 // real-time disks: the gap the paper saw is I/O
	}
	model := storage.DefaultDiskModel()
	model.SpeedUp = cfg.SpeedUp
	raw := make([]storage.Volume, 4) // the paper's four data volumes
	for i := range raw {
		raw[i] = storage.NewMemVolume()
	}
	vols := storage.NewThrottledVolumes(raw, model)
	fg := storage.NewFileGroup(vols, 512) // ~4 MB cache: scans stay cold
	defer fg.Close()
	sdb, err := schema.Build(fg)
	if err != nil {
		return r, err
	}
	l := load.New(sdb)
	if _, err := l.LoadSurvey(pipeline.Config{
		Scale: cfg.Scale, Seed: cfg.Seed, SkipFrames: true, SkipBlobs: true,
	}); err != nil {
		return r, err
	}
	sess := sqlengine.NewSession(sdb.DB)
	fg.DropCache()
	res, err := sess.Exec(queries.Q15BSQL, sqlengine.ExecOptions{})
	if err != nil {
		return r, err
	}
	r.WithIndex = res.Elapsed
	r.RowsWith = len(res.Rows)
	if err := sdb.DB.DropIndex("PhotoObj", "ix_PhotoObj_run_camcol_field"); err != nil {
		return r, err
	}
	fg.DropCache()
	res, err = sess.Exec(queries.Q15BSQL, sqlengine.ExecOptions{})
	if err != nil {
		return r, err
	}
	r.WithoutIndex = res.Elapsed
	r.RowsWithout = len(res.Rows)
	return r, nil
}

// Fig13 runs the full 22-query workload.
func Fig13(s *core.SkyServer) []queries.Timing {
	return s.RunWorkload()
}

// Fig15Point is one disk configuration's measured bandwidth, in model MB/s.
type Fig15Point struct {
	Disks int
	// RawMBps is the NTFS-like series: raw page reads, no record decode.
	RawMBps float64
	// SQLMBps is the mssql series: the same pages pulled through the SQL
	// engine evaluating count(*) where (a-b) > 1.
	SQLMBps float64
}

// Fig15Config tunes the scan-scaling experiment.
type Fig15Config struct {
	// Disks lists the configurations (default 1..12).
	Disks []int
	// MBPerDisk is the heap size per disk (default 24).
	MBPerDisk int
	// SpeedUp compresses model time (default 50: a 40 MB/s disk streams
	// at 2 GB/s wall).
	SpeedUp float64
}

func (c *Fig15Config) defaults() {
	if len(c.Disks) == 0 {
		c.Disks = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	}
	if c.MBPerDisk <= 0 {
		c.MBPerDisk = 32
	}
	if c.SpeedUp <= 0 {
		c.SpeedUp = 25
	}
}

// Fig15 measures sequential-scan bandwidth against the §12 disk model:
// ~40 MB/s disks, controllers saturating at ~119 MB/s after 3 disks, PCI
// buses at ~220/500 MB/s — reproducing Figure 15's saturation staircase.
func Fig15(cfg Fig15Config) ([]Fig15Point, error) {
	cfg.defaults()
	var out []Fig15Point
	for _, disks := range cfg.Disks {
		p, err := fig15Point(disks, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func fig15Point(disks int, cfg Fig15Config) (Fig15Point, error) {
	model := storage.DefaultDiskModel()
	model.SpeedUp = cfg.SpeedUp
	raw := make([]storage.Volume, disks)
	for i := range raw {
		raw[i] = storage.NewMemVolume()
	}
	vols := storage.NewThrottledVolumes(raw, model)
	fg := storage.NewFileGroup(vols, 0) // no cache: every page pays the model
	// The model multiplies wall time by SpeedUp, so the per-page CRC verify
	// (~0.4µs of CPU) would be misread as ~10µs of model I/O time and flatten
	// the staircase; this experiment measures the disk model, not the CPU.
	fg.SetVerifyChecksums(false)
	defer fg.Close()
	db := sqlengine.NewDB(fg)
	t, err := db.CreateTable("T", []sqlengine.Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "a", Kind: val.KindFloat, NotNull: true},
		{Name: "b", Kind: val.KindFloat, NotNull: true},
		{Name: "pad", Kind: val.KindBytes},
	}, nil, "scan target")
	if err != nil {
		return Fig15Point{}, err
	}
	pad := make([]byte, 1950) // ≈2 KB records, the paper's PhotoObj row size
	totalBytes := int64(disks) * int64(cfg.MBPerDisk) * 1e6
	var written int64
	for i := int64(0); written < totalBytes; i++ {
		row := val.Row{val.Int(i), val.Float(float64(i % 100)), val.Float(float64(i % 7)), val.Bytes(pad)}
		if _, err := t.Insert(row); err != nil {
			return Fig15Point{}, err
		}
		written += 2000
	}

	point := Fig15Point{Disks: disks}

	// Best of two runs per series, the usual bandwidth-benchmark hygiene.
	measure := func(run func() error) (float64, error) {
		best := 0.0
		for trial := 0; trial < 2; trial++ {
			fg.DropCache()
			startReads := fg.PhysBytes()
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			modelSec := time.Since(start).Seconds() * cfg.SpeedUp
			rate := float64(fg.PhysBytes()-startReads) / 1e6 / modelSec
			if rate > best {
				best = rate
			}
		}
		return best, nil
	}

	// Raw series: page reads only.
	var err2 error
	point.RawMBps, err2 = measure(func() error {
		return t.ScanRows(disks, make([]bool, len(t.Cols)), func(storage.RID, val.Row) error {
			return nil
		})
	})
	if err2 != nil {
		return point, err2
	}

	// SQL series: the color-cut aggregate through the engine.
	sess := sqlengine.NewSession(db)
	point.SQLMBps, err2 = measure(func() error {
		_, err := sess.Exec("select count(*) from T where (a - b) > 1", sqlengine.ExecOptions{DOP: disks})
		return err
	})
	return point, err2
}

// WarmColdResult reproduces §11/§12's cache-behavior prose: "Index scans of
// the 14M row photo table run in 7 seconds warm … and 17 seconds cold", and
// the count(*) where (r-g)>1 color-cut scan of §12. In this engine the
// B-trees are memory-resident, so the warm/cold contrast shows up on the
// heap path: a full scan with the page cache dropped (cold: every page pays
// the volume) versus populated (warm: pure CPU).
type WarmColdResult struct {
	ColdScan time.Duration
	WarmScan time.Duration
	// IndexScan is the covered (type, mode) index aggregate for
	// comparison — the memory-resident path.
	IndexScan     time.Duration
	ColorCutRows  int64
	ColorCutBytes uint64
}

// WarmCold measures the color-cut table scan cold and warm, plus the
// covered index aggregate. The scan uses petrosian magnitudes because the
// paper's bare (r - g) predicate is covered by ix_PhotoObj_type_mode_r in
// this schema — the planner answers it from the index without touching the
// heap at all, which is §9.1.3's tag-table argument made real (that covered
// form is what IndexScan reports).
func WarmCold(s *core.SkyServer) (WarmColdResult, error) {
	var r WarmColdResult
	const colorCut = "select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1"
	fg := s.DB().DB.FileGroup()

	fg.DropCache()
	startBytes := fg.PhysBytes()
	res, err := s.Query(colorCut)
	if err != nil {
		return r, err
	}
	r.ColdScan = res.Elapsed
	r.ColorCutRows = res.RowsScanned
	r.ColorCutBytes = fg.PhysBytes() - startBytes

	res, err = s.Query(colorCut)
	if err != nil {
		return r, err
	}
	r.WarmScan = res.Elapsed

	res, err = s.Query("select count(*) from PhotoObj where (r - g) > 1")
	if err != nil {
		return r, err
	}
	r.IndexScan = res.Elapsed
	return r, nil
}

// NeighborsResult is the §9.1.1 materialized-view census.
type NeighborsResult struct {
	BuildTime time.Duration
	Rows      uint64
	PerObject float64
	PhotoRows uint64
}

// Neighbors rebuilds the Neighbors table from scratch on a fresh survey of
// the given scale and reports density (the paper: "typically 10 objects").
func Neighbors(scale float64, seed int64) (NeighborsResult, error) {
	var r NeighborsResult
	s, err := core.Open(core.Config{Scale: scale, Seed: seed, SkipFrames: true, SkipBlobs: true, SkipNeighbors: true})
	if err != nil {
		return r, err
	}
	defer s.Close()
	start := time.Now()
	n, err := neighbors.Build(s.DB(), neighbors.DefaultRadiusArcmin)
	if err != nil {
		return r, err
	}
	r.BuildTime = time.Since(start)
	r.Rows = uint64(n)
	r.PhotoRows = s.DB().PhotoObj.Rows()
	if r.PhotoRows > 0 {
		r.PerObject = float64(n) / float64(r.PhotoRows)
	}
	return r, nil
}

// LoadResult is the §9.4 load-throughput measurement ("Loading runs at
// about 5 GB per hour").
type LoadResult struct {
	Rows       uint64
	Bytes      uint64
	Elapsed    time.Duration
	GBPerHour  float64
	RowsPerSec float64
}

// Load measures pipeline → loader throughput on a throwaway database.
func Load(scale float64, seed int64) (LoadResult, error) {
	var r LoadResult
	fg := storage.NewMemFileGroup(4, 1<<14)
	defer fg.Close()
	sdb, err := schema.Build(fg)
	if err != nil {
		return r, err
	}
	start := time.Now()
	l := load.New(sdb)
	if _, err := l.LoadSurvey(pipeline.Config{Scale: scale, Seed: seed, SkipFrames: true}); err != nil {
		return r, err
	}
	r.Elapsed = time.Since(start)
	for _, t := range sdb.Tables() {
		r.Rows += t.Rows()
		r.Bytes += t.DataBytes()
	}
	sec := r.Elapsed.Seconds()
	r.GBPerHour = float64(r.Bytes) / 1e9 / (sec / 3600)
	r.RowsPerSec = float64(r.Rows) / sec
	return r, nil
}

// PersonalResult is the §10 subset census.
type PersonalResult struct {
	ParentRows uint64
	SubsetRows uint64
	Fraction   float64
	Q1Galaxies int
}

// Personal carves the personal SkyServer around the planted cluster and
// verifies Query 1 still answers inside it.
func Personal(s *core.SkyServer, raMin, raMax, decMin, decMax float64) (PersonalResult, error) {
	var r PersonalResult
	sub, err := s.PersonalSubset(raMin, raMax, decMin, decMax)
	if err != nil {
		return r, err
	}
	defer sub.Close()
	r.ParentRows = s.DB().PhotoObj.Rows()
	r.SubsetRows = sub.DB().PhotoObj.Rows()
	if r.ParentRows > 0 {
		r.Fraction = float64(r.SubsetRows) / float64(r.ParentRows)
	}
	res, err := sub.Query(queries.Q1SQL)
	if err != nil {
		return r, err
	}
	r.Q1Galaxies = len(res.Rows)
	return r, nil
}
