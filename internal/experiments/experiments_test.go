package experiments

import (
	"strings"
	"sync"
	"testing"

	"skyserver/internal/core"
	"skyserver/internal/traffic"
)

var (
	once sync.Once
	srv  *core.SkyServer
	oErr error
)

func shared(t *testing.T) *core.SkyServer {
	t.Helper()
	once.Do(func() {
		srv, oErr = core.Open(core.Config{Scale: 1.0 / 2000, SkipFrames: true})
	})
	if oErr != nil {
		t.Fatalf("Open: %v", oErr)
	}
	return srv
}

func TestTable1Census(t *testing.T) {
	rows := Table1(shared(t))
	if len(rows) != 11 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PaperRows == "" {
			t.Errorf("%s has no paper reference", r.Name)
		}
		if r.Rows == 0 && r.Name != "Neighbors" {
			t.Errorf("%s empty", r.Name)
		}
	}
}

func TestFig5Report(t *testing.T) {
	rep, err := Fig5(traffic.Config{BaseSessions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits <= rep.Pages || rep.Pages <= rep.Sessions {
		t.Errorf("series ordering broken: %d/%d/%d", rep.Hits, rep.Pages, rep.Sessions)
	}
}

func TestPlansShapes(t *testing.T) {
	plans, err := Plans(shared(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plans["Q1 (Figure 10)"], "TableValuedFunction(fGetNearbyObjEq") {
		t.Errorf("Q1 plan:\n%s", plans["Q1 (Figure 10)"])
	}
	if !strings.Contains(plans["Q15A (Figure 11)"], "TableScan(PhotoObj, parallel") {
		t.Errorf("Q15A plan:\n%s", plans["Q15A (Figure 11)"])
	}
	if !strings.Contains(plans["Q15B (Figure 12)"], "ix_PhotoObj_run_camcol_field") {
		t.Errorf("Q15B plan:\n%s", plans["Q15B (Figure 12)"])
	}
}

func TestFig12Ablation(t *testing.T) {
	r, err := Fig12(Fig12Config{Scale: 1.0 / 2000, SpeedUp: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsWith != r.RowsWithout {
		t.Errorf("answers differ: %d with index, %d without", r.RowsWith, r.RowsWithout)
	}
	if r.RowsWith != 4 {
		t.Errorf("NEO pairs = %d, want 4", r.RowsWith)
	}
	if r.WithIndex <= 0 || r.WithoutIndex <= 0 {
		t.Error("timings not measured")
	}
}

func TestFig15Staircase(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput assertion; race instrumentation skews the rate")
	}
	pts, err := Fig15(Fig15Config{Disks: []int{1, 4}, MBPerDisk: 8, SpeedUp: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	one, four := pts[0], pts[1]
	if one.RawMBps < 15 || one.RawMBps > 70 {
		t.Errorf("1-disk raw = %.0f, want ≈40", one.RawMBps)
	}
	if four.RawMBps < one.RawMBps*2 {
		t.Errorf("4 disks (%.0f) not scaling over 1 disk (%.0f)", four.RawMBps, one.RawMBps)
	}
}

func TestWarmColdAndLoadAndNeighbors(t *testing.T) {
	r, err := WarmCold(shared(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.ColdScan <= 0 || r.WarmScan <= 0 {
		t.Error("scan timings missing")
	}
	if r.ColorCutRows == 0 || r.ColorCutBytes == 0 {
		t.Error("color cut did no work")
	}

	lr, err := Load(1.0/8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lr.GBPerHour <= 0 || lr.Rows == 0 {
		t.Errorf("load: %+v", lr)
	}

	nr, err := Neighbors(1.0/8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Rows == 0 || nr.PerObject <= 0 {
		t.Errorf("neighbors: %+v", nr)
	}
}

func TestPersonalSubsetExperiment(t *testing.T) {
	r, err := Personal(shared(t), 184.5, 185.5, -1.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fraction <= 0 || r.Fraction >= 1 {
		t.Errorf("fraction %.3f", r.Fraction)
	}
	if r.Q1Galaxies != 19 {
		t.Errorf("Q1 in subset = %d, want 19", r.Q1Galaxies)
	}
}
