// Package core is the public face of the SkyServer reproduction: one type,
// SkyServer, that builds the schema, runs the synthetic processing
// pipelines through the journaled loader, precomputes the Neighbors
// materialized view, and then answers SQL — exactly the operational stack
// of the paper, minus the telescope.
//
// A SkyServer can be public (the §4 limits: 1,000 rows / 30 seconds) or
// private; it can carve out a "personal SkyServer" (§10: the ~1% subset
// that fits on a laptop); and it exposes the web front end of §2/§5.
package core

import (
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"skyserver/internal/load"
	"skyserver/internal/neighbors"
	"skyserver/internal/pipeline"
	"skyserver/internal/queries"
	"skyserver/internal/schema"
	"skyserver/internal/shard"
	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
	"skyserver/internal/web"
)

// Config describes how to build a SkyServer.
type Config struct {
	// Scale is the fraction of the SDSS Early Data Release to synthesize
	// (1.0 ≈ 14M photo objects). Default 1/400 (~35k objects).
	Scale float64
	// Seed fixes the synthetic sky; equal configs are identical.
	Seed int64
	// Volumes is the stripe width of the file group (the paper used 4
	// mirrored data volumes). Default 4.
	Volumes int
	// ScanWorkers sizes the file group's persistent scan-worker pool
	// (0 = sched.DefaultPoolSize). Parallel scans dispatch page morsels
	// onto this pool instead of spawning goroutines per query.
	ScanWorkers int
	// CachePages sizes the page cache (default 1<<16 pages = 512 MB max);
	// when sharded, the budget is divided evenly across the shards.
	CachePages int
	// Shards is the number of HTM-trixel shards heap pages are
	// partitioned into (default 1 = unsharded). Shard ranges are
	// balanced over the survey footprint's trixel cover, so a cone
	// query routes to the few shards its cover intersects while
	// non-spatial sweeps scatter to all of them.
	Shards int
	// Dir, when set, backs volumes with files under this directory
	// instead of memory.
	Dir string
	// WrapVolume, when set, wraps each volume as it is created (shard is
	// the shard index, stripe the volume index within it) — the hook
	// skyserver's chaos dev mode uses to inject faults under the real
	// stack without core importing the chaos package.
	WrapVolume func(shard, stripe int, v storage.Volume) storage.Volume
	// SkipFrames / SkipBlobs trim image artifacts for catalog-only work.
	SkipFrames bool
	SkipBlobs  bool
	// SkipNeighbors skips the post-load neighbors computation.
	SkipNeighbors bool
	// NeighborsRadius overrides the ½-arcminute default.
	NeighborsRadius float64
	// SkipLoad builds the schema only (for CSV-driven loading).
	SkipLoad bool
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 400
	}
	if c.Volumes <= 0 {
		c.Volumes = 4
	}
	if c.CachePages <= 0 {
		c.CachePages = 1 << 16
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// SkyServer is a loaded sky-survey database.
type SkyServer struct {
	cfg    Config
	sdb    *schema.SkyDB
	loader *load.Loader
	truth  pipeline.Truth
	stats  *pipeline.Stats
}

// Open builds and loads a SkyServer per the config. On any error the
// volumes and scan pools created so far are closed — an Open that fails
// leaks nothing.
func Open(cfg Config) (*SkyServer, error) {
	cfg.defaults()
	// Shard ranges are cut so each shard owns an equal slice of the
	// survey footprint's trixel cover — the synthetic sky is a narrow
	// stripe, so equal slices of the raw HTM ID space would leave most
	// shards empty.
	plan := shard.EqualSplit(cfg.Shards)
	if cfg.Shards > 1 {
		grid := pipeline.Config{Scale: cfg.Scale, Seed: cfg.Seed}.Footprint()
		raMax := grid.RA0 + float64(grid.FieldsPerStrip)*sky.FieldHeightDeg
		decMax := grid.Dec0 + float64(grid.Stripes)*sky.StripeWidthDeg
		plan = shard.ForRect(grid.RA0, grid.Dec0, raMax, decMax, cfg.Shards)
	}
	// An explicitly tiny cache (chaos tests use CachePages: 1 to force
	// physical reads) must stay tiny, so the floor is 1, not something
	// comfortable.
	cachePer := cfg.CachePages / cfg.Shards
	if cachePer < 1 {
		cachePer = 1
	}
	var fgs []*storage.FileGroup
	closeAll := func() {
		for _, g := range fgs {
			_ = g.Close()
		}
	}
	for si := 0; si < cfg.Shards; si++ {
		var vols []storage.Volume
		closeVols := func() {
			for _, v := range vols {
				_ = v.Close()
			}
		}
		for i := 0; i < cfg.Volumes; i++ {
			var v storage.Volume = storage.NewMemVolume()
			if cfg.Dir != "" {
				name := fmt.Sprintf("skyserver_vol%d.dat", i)
				if cfg.Shards > 1 {
					name = fmt.Sprintf("skyserver_s%d_vol%d.dat", si, i)
				}
				fv, err := storage.NewFileVolume(filepath.Join(cfg.Dir, name))
				if err != nil {
					closeVols()
					closeAll()
					return nil, err
				}
				v = fv
			}
			if cfg.WrapVolume != nil {
				v = cfg.WrapVolume(si, i, v)
			}
			vols = append(vols, v)
		}
		g := storage.NewFileGroup(vols, cachePer)
		g.SetScanWorkers(cfg.ScanWorkers)
		fgs = append(fgs, g)
	}
	group := shard.New(plan, fgs)
	sdb, err := schema.BuildGroup(group)
	if err != nil {
		closeAll()
		return nil, err
	}
	s := &SkyServer{cfg: cfg, sdb: sdb, loader: load.New(sdb)}
	if cfg.SkipLoad {
		return s, nil
	}
	stats, err := s.loader.LoadSurvey(pipeline.Config{
		Seed: cfg.Seed, Scale: cfg.Scale,
		SkipFrames: cfg.SkipFrames, SkipBlobs: cfg.SkipBlobs,
	})
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("core: load: %w", err)
	}
	s.stats = stats
	s.truth = stats.Truth
	if !cfg.SkipNeighbors {
		if _, err := neighbors.Build(sdb, cfg.NeighborsRadius); err != nil {
			closeAll()
			return nil, fmt.Errorf("core: neighbors: %w", err)
		}
	}
	return s, nil
}

// DB exposes the schema-level database (tables, functions, catalog).
func (s *SkyServer) DB() *schema.SkyDB { return s.sdb }

// Loader exposes the journaled loader (steps, undo, integrity checks).
func (s *SkyServer) Loader() *load.Loader { return s.loader }

// Truth returns the generator's planted ground truths.
func (s *SkyServer) Truth() pipeline.Truth { return s.truth }

// Session opens a SQL session.
func (s *SkyServer) Session() *sqlengine.Session {
	return sqlengine.NewSession(s.sdb.DB)
}

// Query runs a SQL batch without limits (a private SkyServer).
func (s *SkyServer) Query(sql string) (*sqlengine.Result, error) {
	return s.Session().Exec(sql, sqlengine.ExecOptions{})
}

// QueryPublic runs a SQL batch under the paper's public limits.
func (s *SkyServer) QueryPublic(sql string) (*sqlengine.Result, error) {
	return s.Session().Exec(sql, sqlengine.ExecOptions{
		MaxRows: web.PublicMaxRows,
		Timeout: web.PublicTimeout,
	})
}

// Explain returns the query plan text without executing.
func (s *SkyServer) Explain(sql string) (string, error) {
	return s.Session().Explain(sql)
}

// Handler returns the web front end.
func (s *SkyServer) Handler(opt web.Options) http.Handler {
	return s.Web(opt).Handler()
}

// Web returns the web front end as a *web.Server, for callers that need
// the lifecycle surface (ServeGraceful, SetReady, Drain) rather than just
// an http.Handler.
func (s *SkyServer) Web(opt web.Options) *web.Server {
	return web.NewServer(s.sdb, opt)
}

// RunWorkload executes the 22-query Figure 13 workload.
func (s *SkyServer) RunWorkload() []queries.Timing {
	return queries.RunAll(s.sdb.DB, s.truth, sqlengine.ExecOptions{})
}

// TableInfo is one Table 1 row.
type TableInfo struct {
	Name       string
	Rows       uint64
	DataBytes  uint64
	IndexBytes uint64
}

// TableSummary reports the Table 1 census of the loaded database.
func (s *SkyServer) TableSummary() []TableInfo {
	var out []TableInfo
	for _, t := range s.sdb.Tables() {
		out = append(out, TableInfo{
			Name: t.Name, Rows: t.Rows(),
			DataBytes: t.DataBytes(), IndexBytes: t.IndexBytes(),
		})
	}
	return out
}

// Close releases the underlying volumes of every shard.
func (s *SkyServer) Close() error {
	return s.sdb.DB.Close()
}

// PersonalSubset builds the §10 "personal SkyServer": a fresh database
// containing only the objects (and their profiles, spectra, lines,
// redshifts, matches, fields and frames) inside the given (ra, dec)
// rectangle. The paper's personal subset was ~1% of the sky — a 6°×2.5°
// slice of our footprint behaves the same way.
func (s *SkyServer) PersonalSubset(raMin, raMax, decMin, decMax float64) (*SkyServer, error) {
	fg := storage.NewMemFileGroup(2, 1<<14)
	sdb, err := schema.Build(fg)
	if err != nil {
		return nil, err
	}
	sub := &SkyServer{cfg: s.cfg, sdb: sdb, loader: load.New(sdb)}

	inRect := func(ra, dec float64) bool {
		return ra >= raMin && ra < raMax && dec >= decMin && dec < decMax
	}

	// PhotoObj + remembered ids.
	keepObj := map[int64]bool{}
	src := s.sdb.PhotoObj
	raCol, decCol := src.ColIndex("ra"), src.ColIndex("dec")
	idCol := src.ColIndex("objID")
	if err := copyRows(src, sdb.PhotoObj, func(row val.Row) bool {
		if !inRect(row[raCol].F, row[decCol].F) {
			return false
		}
		keepObj[row[idCol].I] = true
		return true
	}); err != nil {
		return nil, err
	}

	// Tables keyed by objID.
	keepByObj := func(t *sqlengine.Table) func(val.Row) bool {
		c := t.ColIndex("objID")
		return func(row val.Row) bool { return keepObj[row[c].I] }
	}
	if err := copyRows(s.sdb.Profile, sdb.Profile, keepByObj(s.sdb.Profile)); err != nil {
		return nil, err
	}
	for _, pair := range [][2]*sqlengine.Table{
		{s.sdb.First, sdb.First}, {s.sdb.Rosat, sdb.Rosat}, {s.sdb.USNO, sdb.USNO},
	} {
		if err := copyRows(pair[0], pair[1], keepByObj(pair[0])); err != nil {
			return nil, err
		}
	}
	// Neighbors: both ends must survive.
	nb := s.sdb.Neighbors
	nbO, nbN := nb.ColIndex("objID"), nb.ColIndex("neighborObjID")
	if err := copyRows(nb, sdb.Neighbors, func(row val.Row) bool {
		return keepObj[row[nbO].I] && keepObj[row[nbN].I]
	}); err != nil {
		return nil, err
	}

	// Spectra of kept objects, then their dependent tables and plates.
	keepSpec := map[int64]bool{}
	keepPlate := map[int64]bool{}
	so := s.sdb.SpecObj
	soID, soObj, soPlate := so.ColIndex("specObjID"), so.ColIndex("objID"), so.ColIndex("plateID")
	if err := copyRows(so, sdb.SpecObj, func(row val.Row) bool {
		if !keepObj[row[soObj].I] {
			return false
		}
		keepSpec[row[soID].I] = true
		keepPlate[row[soPlate].I] = true
		return true
	}); err != nil {
		return nil, err
	}
	plateID := s.sdb.Plate.ColIndex("plateID")
	if err := copyRows(s.sdb.Plate, sdb.Plate, func(row val.Row) bool {
		return keepPlate[row[plateID].I]
	}); err != nil {
		return nil, err
	}
	for _, pair := range [][2]*sqlengine.Table{
		{s.sdb.SpecLine, sdb.SpecLine},
		{s.sdb.SpecLineIndex, sdb.SpecLineIndex},
		{s.sdb.XCRedShift, sdb.XCRedShift},
		{s.sdb.ELRedShift, sdb.ELRedShift},
	} {
		c := pair[0].ColIndex("specObjID")
		if err := copyRows(pair[0], pair[1], func(row val.Row) bool {
			return keepSpec[row[c].I]
		}); err != nil {
			return nil, err
		}
	}

	// Fields overlapping the rectangle, and their frames.
	keepField := map[int64]bool{}
	f := s.sdb.Field
	fID := f.ColIndex("fieldID")
	fRaMin, fRaMax := f.ColIndex("raMin"), f.ColIndex("raMax")
	fDecMin, fDecMax := f.ColIndex("decMin"), f.ColIndex("decMax")
	if err := copyRows(f, sdb.Field, func(row val.Row) bool {
		if row[fRaMax].F < raMin || row[fRaMin].F >= raMax ||
			row[fDecMax].F < decMin || row[fDecMin].F >= decMax {
			return false
		}
		keepField[row[fID].I] = true
		return true
	}); err != nil {
		return nil, err
	}
	frField := s.sdb.Frame.ColIndex("fieldID")
	if err := copyRows(s.sdb.Frame, sdb.Frame, func(row val.Row) bool {
		return keepField[row[frField].I]
	}); err != nil {
		return nil, err
	}

	// The subset keeps the parent's planted truths only if the planted
	// region is inside the rectangle; report what is knowable.
	sub.truth = pipeline.Truth{
		Objects: int(sdb.PhotoObj.Rows()),
		Specs:   int(sdb.SpecObj.Rows()),
	}
	if inRect(185, -0.5) {
		sub.truth.Q1Galaxies = s.truth.Q1Galaxies
		sub.truth.Q1TVFRows = s.truth.Q1TVFRows
	}
	return sub, nil
}

// copyRows streams rows from src into dst (same schema), keeping those the
// filter accepts.
func copyRows(src, dst *sqlengine.Table, keep func(val.Row) bool) error {
	return src.ScanRows(1, nil, func(_ storage.RID, row val.Row) error {
		if !keep(row) {
			return nil
		}
		_, err := dst.Insert(row.Clone())
		return err
	})
}

// LoadRate measures the §9.4 load pipeline throughput by generating and
// loading a fresh survey of the given scale into a throwaway database,
// returning rows/second and bytes/second.
func LoadRate(scale float64, seed int64) (rowsPerSec, bytesPerSec float64, err error) {
	fg := storage.NewMemFileGroup(4, 1<<14)
	defer fg.Close()
	sdb, err := schema.Build(fg)
	if err != nil {
		return 0, 0, err
	}
	l := load.New(sdb)
	start := time.Now()
	if _, err := l.LoadSurvey(pipeline.Config{Scale: scale, Seed: seed, SkipFrames: true}); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	var rows, bytes uint64
	for _, t := range sdb.Tables() {
		rows += t.Rows()
		bytes += t.DataBytes()
	}
	return float64(rows) / elapsed, float64(bytes) / elapsed, nil
}
