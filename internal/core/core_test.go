package core

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"skyserver/internal/web"
)

var (
	once sync.Once
	srv  *SkyServer
	oErr error
)

func shared(t *testing.T) *SkyServer {
	t.Helper()
	once.Do(func() {
		srv, oErr = Open(Config{Scale: 1.0 / 2000, Seed: 42, SkipFrames: true})
	})
	if oErr != nil {
		t.Fatalf("Open: %v", oErr)
	}
	return srv
}

func TestOpenAndQuery(t *testing.T) {
	s := shared(t)
	res, err := s.Query("select count(*) from PhotoObj")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Fatal("empty PhotoObj")
	}
	if int(res.Rows[0][0].I) != s.Truth().Objects {
		t.Errorf("rows %d != truth %d", res.Rows[0][0].I, s.Truth().Objects)
	}
}

func TestQueryPublicLimits(t *testing.T) {
	s := shared(t)
	res, err := s.QueryPublic("select objID from PhotoObj")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != web.PublicMaxRows || !res.Truncated {
		t.Errorf("public limit not applied: %d rows", len(res.Rows))
	}
}

func TestExplain(t *testing.T) {
	s := shared(t)
	plan, err := s.Explain("select objID from PhotoObj where objID = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexSeek") {
		t.Errorf("plan: %s", plan)
	}
}

func TestTableSummaryMatchesTable1Shape(t *testing.T) {
	s := shared(t)
	sum := s.TableSummary()
	if len(sum) != 11 {
		t.Fatalf("%d tables in summary, want the paper's 11", len(sum))
	}
	byName := map[string]TableInfo{}
	for _, ti := range sum {
		byName[ti.Name] = ti
	}
	po := byName["PhotoObj"]
	if po.Rows == 0 || po.DataBytes == 0 {
		t.Fatal("PhotoObj summary empty")
	}
	// PhotoObj dominates storage, as in Table 1.
	if byName["SpecLine"].DataBytes > po.DataBytes {
		t.Error("SpecLine larger than PhotoObj")
	}
	// Indices are a substantial fraction of table bytes (§9.1.3: ~30% of
	// total space; Table 1: "indices approximately double the space").
	if po.IndexBytes == 0 || po.IndexBytes > po.DataBytes*2 {
		t.Errorf("PhotoObj index bytes %d vs data %d out of range", po.IndexBytes, po.DataBytes)
	}
}

func TestRunWorkload(t *testing.T) {
	s := shared(t)
	timings := s.RunWorkload()
	if len(timings) != 22 {
		t.Fatalf("%d timings", len(timings))
	}
	for _, tm := range timings {
		if tm.Err != nil {
			t.Errorf("Q%s: %v", tm.ID, tm.Err)
		}
	}
}

func TestPersonalSubset(t *testing.T) {
	s := shared(t)
	// A window around the planted cluster — the classroom mini-server.
	sub, err := s.PersonalSubset(184, 186, -1.25, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if sub.DB().PhotoObj.Rows() == 0 {
		t.Fatal("empty subset")
	}
	if sub.DB().PhotoObj.Rows() >= s.DB().PhotoObj.Rows() {
		t.Error("subset not smaller than parent")
	}
	// The planted cluster is inside: Q1 still answers 19.
	res, err := sub.Query(`
		declare @saturated bigint;
		set @saturated = dbo.fPhotoFlags('saturated');
		select G.objID, GN.distance
		from Galaxy as G
		join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID
		where (G.flags & @saturated) = 0
		order by distance`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 19 {
		t.Errorf("Q1 on personal subset = %d rows, want 19", len(res.Rows))
	}
	// Referential integrity survives the cut.
	for _, table := range []string{"Profile", "SpecObj", "SpecLine", "Frame"} {
		if _, err := sub.Loader().CheckIntegrity(table); err != nil {
			t.Errorf("subset %s: %v", table, err)
		}
	}
	// Spectra subset is consistent: every SpecObj's photo object exists.
	if sub.DB().SpecObj.Rows() == 0 {
		t.Error("subset has no spectra")
	}
}

func TestWebHandlerFromCore(t *testing.T) {
	s := shared(t)
	ts := httptest.NewServer(s.Handler(web.Options{Public: true}))
	defer ts.Close()
	resp, err := httptestGet(ts.URL + "/en/help/docs/browser.asp")
	if err != nil {
		t.Fatal(err)
	}
	if resp != 200 {
		t.Errorf("schema browser status %d", resp)
	}
}

func httptestGet(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

func TestLoadRate(t *testing.T) {
	rows, bytes, err := LoadRate(1.0/8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rows <= 0 || bytes <= 0 {
		t.Errorf("load rate %f rows/s %f bytes/s", rows, bytes)
	}
}
