package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"skyserver/internal/jobs"
	"skyserver/internal/resultcache"
	"skyserver/internal/sched"
	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// The /api/v1 surface: the versioned, JSON-error-consistent namespace the
// async job service launched with. /api/v1/query and /api/v1/status/* are
// the same handlers as the legacy /x/ routes (which remain as aliases);
// /api/v1/jobs is the CasJobs-style submit → poll → fetch lifecycle over
// internal/jobs. Every error under /api/v1 is the uniform JSON envelope
// {error, class, retryAfterSeconds} instead of a text body; route and
// envelope reference: docs/ops.md.

// JobMaxRows and JobTimeout are the public-server limits for batch jobs —
// deliberately looser than the §4 interactive limits (1,000 rows / 30 s),
// since jobs exist precisely for queries that cannot finish inside an
// interactive HTTP request. Private servers run jobs unlimited.
const (
	JobMaxRows = 100_000
	JobTimeout = 5 * time.Minute
)

// isAPI reports whether the request belongs to the /api/ namespace and
// must receive JSON envelope errors.
func isAPI(r *http.Request) bool {
	return len(r.URL.Path) >= 5 && r.URL.Path[:5] == "/api/"
}

// apiError is the uniform error envelope every /api/v1 error response
// carries.
type apiError struct {
	Error             string `json:"error"`
	Class             string `json:"class,omitempty"`
	RetryAfterSeconds int    `json:"retryAfterSeconds,omitempty"`
}

// writeAPIError writes the envelope. retrySecs > 0 also sets the
// Retry-After header so plain HTTP clients keep their backoff hint.
func writeAPIError(w http.ResponseWriter, status int, class string, retrySecs int, msg string) {
	clearValidators(w)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if retrySecs > 0 {
		h.Set("Retry-After", strconv.Itoa(retrySecs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: msg, Class: class, RetryAfterSeconds: retrySecs})
}

// retryAfterSecs is retryAfter as an integer for the envelope.
func retryAfterSecs(class sched.Class) int {
	if class == sched.Batch {
		return 5
	}
	return 1
}

// userOf resolves the request's analyst identity — the X-User header,
// then ?user= — for batch fair share and job ownership. Empty means
// anonymous; the scheduler and jobs service fold that into their shared
// default identity. (Identity is client-asserted: the public SkyServer
// had no accounts either, and fairness only needs queues to be keyed,
// not authenticated.)
func userOf(r *http.Request) string {
	if u := r.Header.Get("X-User"); u != "" {
		return u
	}
	return r.URL.Query().Get("user")
}

// jobUser is userOf with the anonymous fold applied, so job ownership
// and scheduler accounting agree on one identity string.
func jobUser(r *http.Request) string {
	if u := userOf(r); u != "" {
		return u
	}
	return sched.DefaultUser
}

// handleAPINotFound is the /api/v1/ catch-all: unknown routes get the
// envelope, not net/http's text 404.
func (s *Server) handleAPINotFound(w http.ResponseWriter, r *http.Request) {
	writeAPIError(w, http.StatusNotFound, "", 0, "no such API route: "+r.URL.Path)
}

// jobWriter adapts the job spill file to http.ResponseWriter so the
// streaming batch serializers — written against the response interface —
// serialize into the file unchanged. The header is real (the serializer
// sets Content-Type there and the job records it); the status is
// discarded (a spill file has no status line).
type jobWriter struct {
	w io.Writer
	h http.Header
}

func (j *jobWriter) Header() http.Header         { return j.h }
func (j *jobWriter) Write(p []byte) (int, error) { return j.w.Write(p) }
func (j *jobWriter) WriteHeader(int)             {}

// jobExecOptions are the engine limits one job runs under (see
// JobMaxRows/JobTimeout).
func (s *Server) jobExecOptions() sqlengine.ExecOptions {
	opt := sqlengine.ExecOptions{MaxConcurrency: s.opt.MaxScanWorkers}
	if s.opt.Public {
		opt.MaxRows = JobMaxRows
		opt.Timeout = JobTimeout
	}
	return opt
}

// runJob executes one submitted job: batch-class admission under the
// job's user identity (this is where a flood queues behind itself while
// other users' jobs round-robin past it), then the same streaming
// serialization as the sync endpoint, into the job's spill file instead
// of a connection. Implements jobs.ExecFunc.
func (s *Server) runJob(ctx context.Context, spec jobs.Spec, w io.Writer, started func(), progress func(pages, rows int64)) (info jobs.RunInfo, err error) {
	tk, err := s.sched.AdmitUser(ctx, sched.Batch, "job", spec.User)
	if err != nil {
		return jobs.RunInfo{}, err
	}
	started()
	defer func() {
		// A panicking serializer or engine bug must fail the job, not kill
		// the process (jobs run on bare goroutines, past the HTTP recovery
		// middleware) — and must still release the scheduler slot.
		if rec := recover(); rec != nil {
			err = fmt.Errorf("job panic: %v", rec)
		}
		tk.Done(err)
	}()

	if s.opt.Timeout > 0 || s.opt.Public {
		timeout := s.opt.Timeout
		if s.opt.Public {
			timeout = JobTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	sess := sqlengine.NewSession(s.sdb.DB)
	jw := &jobWriter{w: w, h: make(http.Header, 1)}
	sw := newBatchSerializer(jw, spec.Format)
	if sw == nil {
		return jobs.RunInfo{}, errUnknownFormat(spec.Format)
	}
	var rows int64
	res, err := sess.ExecStreamContext(ctx, spec.SQL, s.jobExecOptions(), func(cols []string, b *val.Batch) error {
		if werr := sw.writeBatch(cols, b); werr != nil {
			return werr
		}
		rows += int64(b.Len())
		progress(0, rows)
		return nil
	})
	if res != nil {
		tk.AddWork(res.PagesScanned, res.RowsScanned)
	}
	if err != nil {
		return jobs.RunInfo{}, err
	}
	if err := sw.finish(res); err != nil {
		return jobs.RunInfo{}, err
	}
	return jobs.RunInfo{
		ContentType: jw.h.Get("Content-Type"),
		ETag:        s.jobETag(sess, spec.SQL, spec.Format, res),
		Rows:        rows,
		Pages:       res.PagesScanned,
	}, nil
}

// jobETag derives a persisted job result's strong ETag from the same
// machinery as the synchronous result cache: the normalized plan key +
// parameters + format + row limit, digested with the catalog versions
// the executed plan saw. Empty when the statement has no digestable plan
// (multi-statement batches, TVF reads).
func (s *Server) jobETag(sess *sqlengine.Session, sql, format string, res *sqlengine.Result) string {
	dig, ok := res.VersionDigest()
	if !ok {
		return ""
	}
	key, _, ok := sess.ResultKey(sql, nil)
	if !ok {
		return ""
	}
	key = append(key, 0)
	key = append(key, format...)
	key = append(key, 0)
	key = strconv.AppendInt(key, int64(s.jobExecOptions().MaxRows), 10)
	return resultcache.ETag(key, dig)
}

// writeJob writes a job view as the JSON response body.
func writeJob(w http.ResponseWriter, status int, v jobs.JobView) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// jobsError maps the jobs service's sentinel errors onto the envelope.
func jobsError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeAPIError(w, http.StatusNotFound, "batch", 0, err.Error())
	case errors.Is(err, jobs.ErrDraining):
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 5, err.Error())
	case errors.Is(err, jobs.ErrUserQuota):
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 5, err.Error())
	default:
		writeAPIError(w, http.StatusInternalServerError, "batch", 0, err.Error())
	}
}

// handleJobSubmit is POST /api/v1/jobs: SQL (form field cmd) + format →
// job id, 202 Accepted. Only batch-class statements become jobs; an
// interactive-class query is pointed at the synchronous endpoint instead
// of occupying a batch slot for a millisecond seek.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 0, "jobs service unavailable")
		return
	}
	if err := r.ParseForm(); err != nil {
		writeAPIError(w, http.StatusBadRequest, "batch", 0, "bad form: "+err.Error())
		return
	}
	cmd := r.PostForm.Get("cmd")
	if cmd == "" {
		cmd = r.Form.Get("cmd")
	}
	if cmd == "" {
		writeAPIError(w, http.StatusBadRequest, "batch", 0, "missing cmd (the SQL to run)")
		return
	}
	format := r.PostForm.Get("format")
	if format == "" {
		format = r.Form.Get("format")
	}
	if format == "" {
		format = "csv"
	}
	if !jobs.FormatOK(format) {
		writeAPIError(w, http.StatusBadRequest, "batch", 0,
			fmt.Sprintf("format %q not supported for jobs (csv, json, xml, html)", format))
		return
	}
	if !s.Ready() {
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 5, "SkyServer draining: restarting shortly, try again")
		return
	}
	// Classify through the plan-cache peek first (free); an unknown shape
	// pays one compile here — the job was going to compile it anyway, and
	// a parse error must reject the submission synchronously.
	ps := s.probePool.Get().(*probeState)
	class, ok := ps.sess.ClassifyCached(cmd)
	s.probePool.Put(ps)
	if !ok {
		sess := sqlengine.NewSession(s.sdb.DB)
		var err error
		class, err = sess.Classify(cmd)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "batch", 0, err.Error())
			return
		}
	}
	if class == sqlengine.ClassInteractive {
		if o, okc := sched.ParseClass(r.Form.Get("class")); !okc || o != sched.Batch {
			writeAPIError(w, http.StatusBadRequest, "interactive", 0,
				"interactive-class query: run it synchronously at /api/v1/query (or resubmit with class=batch to force a job)")
			return
		}
	}
	v, err := s.jobs.Submit(jobUser(r), cmd, format)
	if err != nil {
		jobsError(w, err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+v.ID)
	writeJob(w, http.StatusAccepted, v)
}

// handleJobList is GET /api/v1/jobs: the requesting user's jobs, newest
// first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 0, "jobs service unavailable")
		return
	}
	views := s.jobs.List(jobUser(r))
	if views == nil {
		views = []jobs.JobView{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Jobs []jobs.JobView `json:"jobs"`
	}{views})
}

// handleJobStatus is GET /api/v1/jobs/{id}: the job's state, queue
// position, progress, and — once done — its result metadata.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 0, "jobs service unavailable")
		return
	}
	v, err := s.jobs.Get(r.PathValue("id"), jobUser(r))
	if err != nil {
		jobsError(w, err)
		return
	}
	writeJob(w, http.StatusOK, v)
}

// handleJobCancel is DELETE /api/v1/jobs/{id}: cancel a queued or
// running job through its per-query context. Idempotent; the response is
// the job's state after the call.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 0, "jobs service unavailable")
		return
	}
	v, err := s.jobs.Cancel(r.PathValue("id"), jobUser(r))
	if err != nil {
		jobsError(w, err)
		return
	}
	writeJob(w, http.StatusOK, v)
}

// handleJobResult is GET /api/v1/jobs/{id}/result: stream the persisted
// result with its strong ETag; If-None-Match revalidates to 304 without
// touching the file. A job without a result yet answers 409 so clients
// can tell "keep polling" from "gone".
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeAPIError(w, http.StatusServiceUnavailable, "batch", 0, "jobs service unavailable")
		return
	}
	f, v, err := s.jobs.Result(r.PathValue("id"), jobUser(r))
	if err != nil {
		if errors.Is(err, jobs.ErrNotDone) {
			writeAPIError(w, http.StatusConflict, "batch", 0,
				fmt.Sprintf("job %s is %s; its result is not available", v.ID, v.State))
			return
		}
		jobsError(w, err)
		return
	}
	defer f.Close()
	hdr := w.Header()
	if v.ETag != "" {
		hdr.Set("ETag", v.ETag)
		hdr.Set("Cache-Control", "private, no-cache")
		if etagMatch(r.Header.Get("If-None-Match"), v.ETag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	if v.ContentType != "" {
		hdr.Set("Content-Type", v.ContentType)
	}
	hdr.Set("Content-Length", strconv.FormatInt(v.Bytes, 10))
	_, _ = io.Copy(w, f)
}

// Jobs returns the async job manager (tests read its statistics); nil
// when the service failed to initialize.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close releases server-owned background resources: the job service's
// goroutines and, when auto-created, its spill directory. The HTTP
// listener lifecycle is separate (see ServeGraceful).
func (s *Server) Close() {
	if s.jobs != nil {
		s.jobs.Close()
	}
}
