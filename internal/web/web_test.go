package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"skyserver/internal/load"
	"skyserver/internal/neighbors"
	"skyserver/internal/pipeline"
	"skyserver/internal/pyramid"
	"skyserver/internal/schema"
	"skyserver/internal/storage"
	"skyserver/internal/traffic"
)

var (
	once sync.Once
	sdb  *schema.SkyDB
	bErr error
)

func survey(t testing.TB) *schema.SkyDB {
	t.Helper()
	once.Do(func() {
		fg := storage.NewMemFileGroup(4, 4096)
		sdb, bErr = schema.Build(fg)
		if bErr != nil {
			return
		}
		l := load.New(sdb)
		if _, bErr = l.LoadSurvey(pipeline.Config{Scale: 1.0 / 4000}); bErr != nil {
			return
		}
		_, bErr = neighbors.Build(sdb, neighbors.DefaultRadiusArcmin)
	})
	if bErr != nil {
		t.Fatalf("survey: %v", bErr)
	}
	return sdb
}

func testServer(t *testing.T, logW *bytes.Buffer) *httptest.Server {
	t.Helper()
	opt := Options{Public: true}
	if logW != nil {
		opt.AccessLog = logW
	}
	srv := NewServer(survey(t), opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String(), resp.Header
}

func TestHomeAndPlaces(t *testing.T) {
	ts := testServer(t, nil)
	code, body, _ := get(t, ts.URL+"/")
	if code != 200 || !strings.Contains(body, "SkyServer") {
		t.Errorf("home: %d %q", code, body[:min(80, len(body))])
	}
	code, body, _ = get(t, ts.URL+"/en/tools/places/")
	if code != 200 || !strings.Contains(body, "explore/obj.asp?id=") {
		t.Errorf("places: %d", code)
	}
}

func TestSQLEndpointFormats(t *testing.T) {
	ts := testServer(t, nil)
	q := "select top 3 objID, ra, dec from PhotoObj order by objID"
	for _, f := range []string{"csv", "json", "xml", "html", "fits"} {
		code, body, hdr := get(t, ts.URL+"/x/sql?format="+f+"&cmd="+urlEncode(q))
		if code != 200 {
			t.Errorf("%s: status %d: %s", f, code, body)
			continue
		}
		ct := hdr.Get("Content-Type")
		switch f {
		case "csv":
			if !strings.HasPrefix(body, "objID,ra,dec") {
				t.Errorf("csv header missing: %q", body[:min(50, len(body))])
			}
		case "json":
			var p struct {
				Columns []string        `json:"columns"`
				Rows    [][]interface{} `json:"rows"`
			}
			if err := json.Unmarshal([]byte(body), &p); err != nil {
				t.Errorf("json: %v", err)
			} else if len(p.Rows) != 3 || len(p.Columns) != 3 {
				t.Errorf("json shape: %d cols %d rows", len(p.Columns), len(p.Rows))
			}
			if !strings.Contains(ct, "json") {
				t.Errorf("json content type %q", ct)
			}
		case "xml":
			if !strings.Contains(body, "<result>") || !strings.Contains(body, "field name=") {
				t.Errorf("xml body: %q", body[:min(120, len(body))])
			}
		case "html":
			if !strings.Contains(body, "<table") {
				t.Errorf("html body lacks table")
			}
		case "fits":
			if !strings.Contains(body, "XTENSION") || !strings.Contains(body, "TTYPE1") {
				t.Errorf("fits header missing")
			}
		}
	}
}

func TestSQLEndpointPost(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.PostForm(ts.URL+"/x/sql?format=csv",
		map[string][]string{"cmd": {"select count(*) as n from Galaxy"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if resp.StatusCode != 200 || !strings.HasPrefix(buf.String(), "n\n") {
		t.Errorf("post: %d %q", resp.StatusCode, buf.String())
	}
}

func TestSQLEndpointErrors(t *testing.T) {
	ts := testServer(t, nil)
	code, _, _ := get(t, ts.URL+"/x/sql?cmd="+urlEncode("select nosuch from PhotoObj"))
	if code != http.StatusBadRequest {
		t.Errorf("bad sql: status %d", code)
	}
	code, _, _ = get(t, ts.URL+"/x/sql?format=nope&cmd="+urlEncode("select 1"))
	if code == 200 {
		t.Error("unknown format accepted")
	}
}

func TestPublicRowLimit(t *testing.T) {
	ts := testServer(t, nil)
	code, body, _ := get(t, ts.URL+"/x/sql?format=json&cmd="+urlEncode("select objID from PhotoObj"))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var p struct {
		Rows      [][]interface{} `json:"rows"`
		Truncated bool            `json:"truncated"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != PublicMaxRows || !p.Truncated {
		t.Errorf("limit: %d rows, truncated=%v (want %d, true)", len(p.Rows), p.Truncated, PublicMaxRows)
	}
}

func TestExplorerDrillDown(t *testing.T) {
	ts := testServer(t, nil)
	// Find a real object through the SQL endpoint first.
	_, body, _ := get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode("select top 1 objID from Galaxy order by objID"))
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 2 {
		t.Fatalf("no galaxy: %q", body)
	}
	id := strings.TrimSpace(lines[1])
	code, page, _ := get(t, ts.URL+"/en/tools/explore/obj.asp?id="+id)
	if code != 200 || !strings.Contains(page, "Object "+id) {
		t.Errorf("explore: %d", code)
	}
	if !strings.Contains(page, "whole record") {
		t.Error("summary page lacks whole-record link")
	}
	code, pageFull, _ := get(t, ts.URL+"/en/tools/explore/obj.asp?id="+id+"&full=1")
	if code != 200 || len(pageFull) < len(page) {
		t.Errorf("full record page smaller than summary")
	}
	if !strings.Contains(pageFull, "psfMag_r") {
		t.Error("full record missing pipeline columns")
	}
	code, _, _ = get(t, ts.URL+"/en/tools/explore/obj.asp?id=999999999999")
	if code != http.StatusNotFound {
		t.Errorf("missing object: %d", code)
	}
	code, _, _ = get(t, ts.URL+"/en/tools/explore/obj.asp?id=xyz")
	if code != http.StatusBadRequest {
		t.Errorf("bad id: %d", code)
	}
}

func TestCutoutPanZoom(t *testing.T) {
	ts := testServer(t, nil)
	for _, zoom := range []int{1, 2, 4, 8} {
		code, body, _ := get(t, fmt.Sprintf("%s/en/tools/navi/cutout?ra=185&dec=-0.5&zoom=%d", ts.URL, zoom))
		if code != 200 {
			t.Fatalf("zoom %d: status %d", zoom, code)
		}
		tile, err := pyramid.Decode([]byte(body))
		if err != nil {
			t.Fatalf("zoom %d: %v", zoom, err)
		}
		want := pyramid.BaseSize / zoom
		if tile.Size != want {
			t.Errorf("zoom %d: tile size %d, want %d", zoom, tile.Size, want)
		}
	}
	code, _, _ := get(t, ts.URL+"/en/tools/navi/cutout?ra=10&dec=80&zoom=1")
	if code != http.StatusNotFound {
		t.Errorf("off-footprint cutout: %d", code)
	}
}

func TestRectSearch(t *testing.T) {
	ts := testServer(t, nil)
	code, body, _ := get(t, ts.URL+"/en/tools/navi/objects?ra1=184.95&ra2=185.05&dec1=-0.55&dec2=-0.45&format=json")
	if code != 200 {
		t.Fatalf("rect: %d %s", code, body)
	}
	var p struct {
		Rows [][]interface{} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	// The planted Q1 cluster lives in this box.
	if len(p.Rows) < 20 {
		t.Errorf("rect found %d objects, expected the 22-object cluster", len(p.Rows))
	}
}

func TestSchemaBrowser(t *testing.T) {
	ts := testServer(t, nil)
	code, body, _ := get(t, ts.URL+"/en/help/docs/browser.asp")
	if code != 200 {
		t.Fatalf("schema: %d", code)
	}
	var doc struct {
		Tables []struct {
			Name    string `json:"name"`
			Columns []struct {
				Name        string `json:"name"`
				Description string `json:"description"`
			} `json:"columns"`
			Indexes     []struct{ Name string } `json:"indexes"`
			ForeignKeys []struct{ Name string } `json:"foreignKeys"`
		} `json:"tables"`
		Views []struct {
			Name  string `json:"name"`
			Where string `json:"where"`
		} `json:"views"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, tb := range doc.Tables {
		names[tb.Name] = true
	}
	for _, want := range []string{"PhotoObj", "SpecObj", "Neighbors", "Plate", "Field"} {
		if !names[want] {
			t.Errorf("schema browser missing table %s", want)
		}
	}
	vnames := map[string]string{}
	for _, v := range doc.Views {
		vnames[v.Name] = v.Where
	}
	if vnames["Galaxy"] == "" || vnames["Star"] == "" {
		t.Error("subclassing views missing from schema browser")
	}
	// Column tool-tips (§4) come from descriptions.
	for _, tb := range doc.Tables {
		if tb.Name == "PhotoObj" {
			if len(tb.Columns) < 150 {
				t.Errorf("PhotoObj has %d columns in browser", len(tb.Columns))
			}
			if tb.Columns[0].Description == "" {
				t.Error("columns lack descriptions")
			}
			if len(tb.Indexes) < 4 {
				t.Errorf("PhotoObj shows %d indexes", len(tb.Indexes))
			}
		}
		if tb.Name == "Profile" && len(tb.ForeignKeys) == 0 {
			t.Error("Profile shows no foreign keys")
		}
	}
}

func TestAccessLogFeedsTrafficAnalyzer(t *testing.T) {
	var logBuf bytes.Buffer
	ts := testServer(t, &logBuf)
	for i := 0; i < 5; i++ {
		_, _, _ = get(t, ts.URL+"/en/tools/places/")
	}
	_, _, _ = get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode("select 1"))
	rep, err := traffic.Analyze(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatalf("our own access log does not parse: %v", err)
	}
	if rep.Hits < 6 {
		t.Errorf("analyzer saw %d hits", rep.Hits)
	}
	if rep.Sessions == 0 {
		t.Error("analyzer found no sessions")
	}
}

func TestLoadEventsPage(t *testing.T) {
	ts := testServer(t, nil)
	code, body, _ := get(t, ts.URL+"/en/skyserver/loadevents")
	if code != 200 || !strings.Contains(body, "PhotoObj") {
		t.Errorf("loadevents: %d", code)
	}
}

func urlEncode(s string) string {
	r := strings.NewReplacer(" ", "%20", "\n", "%0A", "\t", "%09", "*", "%2A", "+", "%2B", "#", "%23", "&", "%26", "=", "%3D", "<", "%3C", ">", "%3E", "'", "%27", "(", "%28", ")", "%29", ",", "%2C")
	return r.Replace(s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = time.Second
