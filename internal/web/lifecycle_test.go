package web

import (
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestRecoveryMiddleware drives a panicking handler through the recovery
// wrapper directly: the response is a well-formed 500, the panic is
// counted, and http.ErrAbortHandler passes through untouched.
func TestRecoveryMiddleware(t *testing.T) {
	log.SetOutput(io.Discard) // the recovered panics log stacks by design
	defer log.SetOutput(os.Stderr)
	srv := NewServer(survey(t), Options{Public: true})
	h := srv.recovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("poisoned handler")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x/sql", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if strings.TrimSpace(rec.Body.String()) == "" {
		t.Error("500 with empty body")
	}
	if got := srv.PanicsRecovered(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}

	// A started response cannot get a 500; the panic is still absorbed.
	h = srv.recovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late panic")
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x/sql", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("started response rewritten to %d", rec.Code)
	}
	if got := srv.PanicsRecovered(); got != 2 {
		t.Errorf("panics recovered = %d, want 2", got)
	}

	// ErrAbortHandler keeps its contract: re-panicked, not counted.
	h = srv.recovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler { //nolint:errorlint // sentinel
				t.Error("ErrAbortHandler was not re-panicked")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	}()
	if got := srv.PanicsRecovered(); got != 2 {
		t.Errorf("ErrAbortHandler counted as recovered panic: %d", got)
	}
}

// TestHealthEndpoint checks the readiness flip end to end: 200 + ready
// while serving, 503 + draining after SetReady(false), and gated routes
// shed with well-formed 503s while ungated status routes stay up.
func TestHealthEndpoint(t *testing.T) {
	srv := NewServer(survey(t), Options{Public: true, ResultCacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var doc struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
	}
	code, body, _ := get(t, ts.URL+"/x/health")
	if code != http.StatusOK {
		t.Fatalf("/x/health while serving: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || !doc.Ready || doc.Draining {
		t.Fatalf("/x/health while serving: %s (err %v)", body, err)
	}

	srv.SetReady(false)
	code, body, _ = get(t, ts.URL+"/x/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/x/health while draining: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Ready || !doc.Draining {
		t.Fatalf("/x/health while draining: %s (err %v)", body, err)
	}

	code, body, hdr := get(t, ts.URL+"/x/sql?format=csv&cmd=select+top+1+objID+from+PhotoObj")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("gated route while draining: status %d Retry-After %q", code, hdr.Get("Retry-After"))
	}
	if !strings.Contains(body, "draining") {
		t.Fatalf("draining 503 body: %q", body)
	}

	srv.SetReady(true)
	code, _, _ = get(t, ts.URL+"/x/sql?format=csv&cmd=select+top+1+objID+from+PhotoObj")
	if code != http.StatusOK {
		t.Fatalf("gated route after re-ready: status %d", code)
	}
}

// TestSIGTERMDrainsBatchFlood is the shutdown acceptance test: under a
// saturating batch flood, SIGTERM must (1) flip readiness so late arrivals
// get well-formed 503s during the grace window, (2) let every in-flight
// query finish — no request that reached the server is dropped mid-body —
// and (3) complete the drain well inside the drain timeout.
func TestSIGTERMDrainsBatchFlood(t *testing.T) {
	srv := NewServer(survey(t), Options{
		Public: true, ResultCacheBytes: -1,
		BatchSlots: 2, BatchQueueDepth: 4,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	const grace, drainTimeout = 1 * time.Second, 15 * time.Second
	done := make(chan error, 1)
	go func() { done <- srv.ServeGraceful(httpSrv, ln, grace, drainTimeout) }()

	// ServeGraceful registers the signal handler before serving, so once a
	// request succeeds, SIGTERM is safe to raise at any point.
	waitUp := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/x/health")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(waitUp) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Saturating batch flood: more clients than slots+queue, looping until
	// the listener goes away. Every response that starts must finish.
	var (
		wg        sync.WaitGroup
		served    atomic.Int64 // 200s with complete bodies
		shed      atomic.Int64 // well-formed 503s
		dropped   atomic.Int64 // started responses cut mid-body
		malformed atomic.Int64 // any other status
	)
	floodURL := base + "/x/sql?class=batch&format=csv&cmd=" +
		"select+count(*)+from+PhotoObj+where+(petroMag_r+-+petroMag_g)+>+1"
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Get(floodURL)
				if err != nil {
					return // listener closed: drain has moved past grace
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case err != nil:
					dropped.Add(1)
				case resp.StatusCode == http.StatusOK && strings.TrimSpace(string(body)) != "":
					served.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable && strings.TrimSpace(string(body)) != "":
					shed.Add(1)
				default:
					malformed.Add(1)
				}
			}
		}()
	}

	// Let the flood reach a steady state, then deliver the signal.
	time.Sleep(150 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the grace window a late arrival sees the draining 503, and
	// /x/health reports it.
	flipped := time.Now().Add(grace)
	sawDraining := false
	for time.Now().Before(flipped) {
		resp, err := http.Get(base + "/x/health")
		if err != nil {
			break // listener already closed; the flip was observed by the flood
		}
		body, _ := io.ReadAll(resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable && strings.Contains(string(body), `"draining":true`) {
			sawDraining = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("never observed draining /x/health during the grace window")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(grace + drainTimeout + 5*time.Second):
		t.Fatal("drain did not complete within the drain timeout")
	}
	wg.Wait()

	if dropped.Load() != 0 || malformed.Load() != 0 {
		t.Errorf("flood outcomes: %d served, %d shed, %d dropped, %d malformed — want zero dropped/malformed",
			served.Load(), shed.Load(), dropped.Load(), malformed.Load())
	}
	if served.Load() == 0 {
		t.Error("flood never completed a query; test exercised nothing")
	}
	st := srv.Sched().Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("after drain: %d running, %d queued, want 0/0", st.Running, st.Queued)
	}
	t.Logf("drain: %d served, %d shed during flood", served.Load(), shed.Load())
}
