package web

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"skyserver/internal/jobs"
	"skyserver/internal/sched"
)

// jobsWaitFor polls cond until it holds or the deadline passes.
func jobsWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// apiReq performs one request with an optional X-User header and decodes
// nothing: status, body, headers.
func apiReq(t *testing.T, method, url, user string, form url.Values) (int, string, http.Header) {
	t.Helper()
	var body io.Reader
	if form != nil {
		body = strings.NewReader(form.Encode())
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if form != nil {
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	if user != "" {
		req.Header.Set("X-User", user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// submitJob POSTs a job and returns its decoded view.
func submitJob(t *testing.T, ts *httptest.Server, user, sql, format string) jobs.JobView {
	t.Helper()
	code, body, hdr := apiReq(t, "POST", ts.URL+"/api/v1/jobs", user,
		url.Values{"cmd": {sql}, "format": {format}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var v jobs.JobView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("submit body: %v: %s", err, body)
	}
	if loc := hdr.Get("Location"); loc != "/api/v1/jobs/"+v.ID {
		t.Errorf("Location = %q, want /api/v1/jobs/%s", loc, v.ID)
	}
	return v
}

// jobStatus GETs one job's view.
func jobStatus(t *testing.T, ts *httptest.Server, user, id string) (int, jobs.JobView) {
	t.Helper()
	code, body, _ := apiReq(t, "GET", ts.URL+"/api/v1/jobs/"+id, user, nil)
	var v jobs.JobView
	if code == http.StatusOK {
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("status body: %v: %s", err, body)
		}
	}
	return code, v
}

// waitJobState polls the HTTP status endpoint until the job reaches want.
func waitJobState(t *testing.T, ts *httptest.Server, user, id string, want jobs.State) jobs.JobView {
	t.Helper()
	var v jobs.JobView
	jobsWaitFor(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		code, got := jobStatus(t, ts, user, id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		v = got
		return v.State == want
	})
	return v
}

// TestAPIQueryAliasAndErrorEnvelope checks the /api/v1 namespace rides
// the same handlers as the legacy routes, and that every /api/v1 error is
// the JSON envelope rather than a text body.
func TestAPIQueryAliasAndErrorEnvelope(t *testing.T) {
	ts := testServer(t, nil)
	q := "select top 3 objID, ra, dec from PhotoObj order by objID"

	codeOld, bodyOld, _ := get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode(q))
	codeNew, bodyNew, _ := get(t, ts.URL+"/api/v1/query?format=csv&cmd="+urlEncode(q))
	if codeOld != 200 || codeNew != 200 || bodyOld != bodyNew {
		t.Errorf("alias mismatch: /x/sql %d vs /api/v1/query %d, bodies equal=%v",
			codeOld, codeNew, bodyOld == bodyNew)
	}
	for _, p := range []string{"/api/v1/status/sched", "/api/v1/status/plancache", "/api/v1/status/resultcache", "/api/v1/status/health"} {
		if code, _, hdr := get(t, ts.URL+p); code != 200 || !strings.Contains(hdr.Get("Content-Type"), "json") {
			t.Errorf("%s: status %d content-type %q", p, code, hdr.Get("Content-Type"))
		}
	}

	// A bad query under /api/v1 answers with the envelope…
	code, body, hdr := get(t, ts.URL+"/api/v1/query?format=csv&cmd="+urlEncode("select nonsense from Nowhere"))
	var env struct {
		Error string `json:"error"`
		Class string `json:"class"`
	}
	if code != http.StatusBadRequest || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("api error: status %d content-type %q body %q", code, hdr.Get("Content-Type"), body)
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error == "" {
		t.Errorf("api error envelope: %v: %q", err, body)
	}
	// …while the legacy route keeps its text contract.
	code, body, hdr = get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode("select nonsense from Nowhere"))
	if code != http.StatusBadRequest || strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Errorf("legacy error: status %d content-type %q body %q", code, hdr.Get("Content-Type"), body)
	}

	// Unknown API routes get the envelope 404, not net/http's text page.
	code, body, hdr = get(t, ts.URL+"/api/v1/nope")
	if code != http.StatusNotFound || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Errorf("api 404: status %d content-type %q body %q", code, hdr.Get("Content-Type"), body)
	}
}

// TestJobHTTPRoundtrip is the submit → poll → fetch lifecycle over HTTP:
// the job outlives the submitting connection, the persisted result
// streams with a strong ETag, and If-None-Match revalidates to 304.
func TestJobHTTPRoundtrip(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit on a dedicated connection, then close it: the job must keep
	// going — it belongs to the manager, not the request.
	client := &http.Client{}
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/jobs", strings.NewReader(
		url.Values{"cmd": {scanSQL}, "format": {"csv"}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-User", "alice")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobs.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	client.CloseIdleConnections()
	if resp.StatusCode != http.StatusAccepted || v.State == jobs.StateFailed {
		t.Fatalf("submit: %d %+v", resp.StatusCode, v)
	}

	done := waitJobState(t, ts, "alice", v.ID, jobs.StateDone)
	if done.Rows == 0 && done.Bytes == 0 {
		t.Errorf("done view has no result metadata: %+v", done)
	}
	if done.ETag == "" {
		t.Errorf("done view missing etag: %+v", done)
	}

	code, body, hdr := apiReq(t, "GET", ts.URL+"/api/v1/jobs/"+v.ID+"/result", "alice", nil)
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "csv") {
		t.Fatalf("result: %d %q %q", code, hdr.Get("Content-Type"), body)
	}
	if !strings.HasPrefix(body, "Column1\n") {
		t.Errorf("result body = %q, want the aggregate CSV", body[:min(60, len(body))])
	}
	etag := hdr.Get("ETag")
	if etag != done.ETag || etag == "" {
		t.Errorf("result etag %q vs status etag %q", etag, done.ETag)
	}

	// Conditional refetch: 304, no body.
	req, _ = http.NewRequest("GET", ts.URL+"/api/v1/jobs/"+v.ID+"/result", nil)
	req.Header.Set("X-User", "alice")
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Errorf("revalidate: %d with %d body bytes, want 304 empty", resp2.StatusCode, len(b2))
	}

	// The listing shows it; another user sees nothing.
	code, body, _ = apiReq(t, "GET", ts.URL+"/api/v1/jobs", "alice", nil)
	if code != 200 || !strings.Contains(body, v.ID) {
		t.Errorf("alice list: %d %q", code, body)
	}
	code, _, _ = jobStatusCode(t, ts, "mallory", v.ID)
	if code != http.StatusNotFound {
		t.Errorf("cross-user status: %d, want 404", code)
	}
}

// jobStatusCode is jobStatus tolerating non-200 answers.
func jobStatusCode(t *testing.T, ts *httptest.Server, user, id string) (int, string, http.Header) {
	t.Helper()
	return apiReq(t, "GET", ts.URL+"/api/v1/jobs/"+id, user, nil)
}

// TestJobHTTPInteractiveRejected checks submit-time classification: a
// point lookup is pointed at the synchronous endpoint, unless the client
// explicitly downgrades it to batch.
func TestJobHTTPInteractiveRejected(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the plan cache so the seek classifies interactive.
	if code, _, _ := get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode(seekSQL)); code != 200 {
		t.Fatalf("warm seek: %d", code)
	}
	code, body, _ := apiReq(t, "POST", ts.URL+"/api/v1/jobs", "alice",
		url.Values{"cmd": {seekSQL}, "format": {"csv"}})
	if code != http.StatusBadRequest || !strings.Contains(body, "/api/v1/query") {
		t.Errorf("interactive submit: %d %q, want 400 pointing at /api/v1/query", code, body)
	}
	// class=batch forces it through.
	code, _, _ = apiReq(t, "POST", ts.URL+"/api/v1/jobs", "alice",
		url.Values{"cmd": {seekSQL}, "format": {"csv"}, "class": {"batch"}})
	if code != http.StatusAccepted {
		t.Errorf("forced batch submit: %d, want 202", code)
	}
	// A parse error rejects synchronously with the envelope.
	code, body, _ = apiReq(t, "POST", ts.URL+"/api/v1/jobs", "alice",
		url.Values{"cmd": {"selec broken"}, "format": {"csv"}})
	if code != http.StatusBadRequest || !strings.Contains(body, "error") {
		t.Errorf("parse-error submit: %d %q", code, body)
	}
	// FITS needs two passes over the scan; jobs spill a single stream.
	code, body, _ = apiReq(t, "POST", ts.URL+"/api/v1/jobs", "alice",
		url.Values{"cmd": {scanSQL}, "format": {"fits"}})
	if code != http.StatusBadRequest || !strings.Contains(body, "format") {
		t.Errorf("fits submit: %d %q", code, body)
	}
}

// TestJobHTTPCancelWhileRunning swaps in an exec that blocks until
// canceled, then cancels over HTTP: the job must land in
// failed("canceled by user") and its result must answer 409.
func TestJobHTTPCancelWhileRunning(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	defer srv.Close()

	running := make(chan struct{})
	blocking, err := jobs.New(jobs.Config{
		Exec: func(ctx context.Context, spec jobs.Spec, w io.Writer, started func(), progress func(pages, rows int64)) (jobs.RunInfo, error) {
			started()
			close(running)
			<-ctx.Done()
			return jobs.RunInfo{}, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.jobs.Close()
	srv.jobs = blocking

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v := submitJob(t, ts, "alice", scanSQL, "csv")
	<-running
	code, body, _ := apiReq(t, "DELETE", ts.URL+"/api/v1/jobs/"+v.ID, "alice", nil)
	var cv jobs.JobView
	if err := json.Unmarshal([]byte(body), &cv); err != nil || code != 200 {
		t.Fatalf("cancel: %d %q (%v)", code, body, err)
	}
	if cv.State != jobs.StateFailed || cv.Error != "canceled by user" {
		t.Errorf("canceled view = %s %q", cv.State, cv.Error)
	}
	code, body, _ = apiReq(t, "GET", ts.URL+"/api/v1/jobs/"+v.ID+"/result", "alice", nil)
	if code != http.StatusConflict {
		t.Errorf("result of canceled job: %d %q, want 409", code, body)
	}
}

// TestJobHTTPTTLExpiry checks a finished result stays fetchable until the
// TTL, then turns into an envelope 404.
func TestJobHTTPTTLExpiry(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true, JobsTTL: 50 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v := submitJob(t, ts, "alice", scanSQL, "csv")
	waitJobState(t, ts, "alice", v.ID, jobs.StateDone)
	if code, _, _ := apiReq(t, "GET", ts.URL+"/api/v1/jobs/"+v.ID+"/result", "alice", nil); code != 200 {
		t.Fatalf("live result: %d", code)
	}
	jobsWaitFor(t, "TTL expiry", func() bool {
		code, _, _ := jobStatusCode(t, ts, "alice", v.ID)
		return code == http.StatusNotFound
	})
	code, body, hdr := apiReq(t, "GET", ts.URL+"/api/v1/jobs/"+v.ID+"/result", "alice", nil)
	if code != http.StatusNotFound || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Errorf("expired result: %d %q", code, body)
	}
}

// TestJobHTTPFairShareFlood is the tentpole acceptance test: one user
// floods the batch queue with 50 jobs, a second user submits one, and the
// deficit-round-robin dequeue starts the second user's job long before
// the flood drains. Deterministic via the plug technique: the single
// batch slot is held while both backlogs queue, so the grant order is
// decided by the scheduler, not by submission racing.
func TestJobHTTPFairShareFlood(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{
		Public:           true,
		InteractiveSlots: 1,
		BatchSlots:       1,
		JobsMaxPerUser:   64,
		ResultCacheBytes: -1,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the interactive slot (so batch cannot borrow it) and the one
	// batch slot, so every job parks in the admission queue.
	hold, err := srv.sched.Admit(context.Background(), sched.Interactive, "hold")
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Done(nil)
	plug, err := srv.sched.Admit(context.Background(), sched.Batch, "plug")
	if err != nil {
		t.Fatal(err)
	}

	const flood = 50
	floodIDs := make([]string, flood)
	for i := range floodIDs {
		// Distinct shapes so the result cache (even if enabled) and the
		// plan cache cannot collapse the flood.
		sql := fmt.Sprintf("select count(*) from PhotoObj where (petroMag_r - petroMag_g) > %d.0e-2", i+100)
		floodIDs[i] = submitJob(t, ts, "alice", sql, "csv").ID
	}
	jobsWaitFor(t, "flood to queue", func() bool {
		return srv.sched.Stats().Batch.Queued == flood
	})
	bob := submitJob(t, ts, "bob", scanSQL, "csv")
	jobsWaitFor(t, "bob to queue", func() bool {
		return srv.sched.Stats().Batch.Queued == flood+1
	})

	plug.Done(nil)
	bobDone := waitJobState(t, ts, "bob", bob.ID, jobs.StateDone)
	if bobDone.Started.IsZero() {
		t.Errorf("bob's job has no start time: %+v", bobDone)
	}

	// Round-robin lets at most one alice job start ahead of bob (the
	// first grant lands on whichever user heads the ring), so nearly the
	// whole 50-deep backlog must have started after him. The recorded
	// start times make this assertion timing-independent: it holds even
	// when the tiny test queries drain in microseconds.
	code, body, _ := apiReq(t, "GET", ts.URL+"/api/v1/jobs", "alice", nil)
	if code != 200 {
		t.Fatalf("alice list: %d", code)
	}
	var list struct {
		Jobs []jobs.JobView `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != flood {
		t.Fatalf("alice list has %d jobs, want %d", len(list.Jobs), flood)
	}
	ahead := 0
	for _, j := range list.Jobs {
		if !j.Started.IsZero() && j.Started.Before(bobDone.Started) {
			ahead++
		}
	}
	if ahead > 1 {
		t.Errorf("%d of alice's %d flood jobs started before bob's — fair share failed", ahead, flood)
	}

	// The per-user accounting is visible at /api/v1/status/sched.
	code, body, _ = get(t, ts.URL+"/api/v1/status/sched")
	if code != 200 {
		t.Fatalf("sched status: %d", code)
	}
	var stats struct {
		Admission struct {
			Batch struct {
				Users map[string]sched.UserStats `json:"users"`
			} `json:"batch"`
		} `json:"admission"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("sched status body: %v: %s", err, body[:min(200, len(body))])
	}
	if _, ok := stats.Admission.Batch.Users["alice"]; !ok {
		t.Errorf("sched status missing alice's per-user stats: %s", body[:min(300, len(body))])
	}
	if bs, ok := stats.Admission.Batch.Users["bob"]; !ok || bs.Completed < 1 {
		t.Errorf("sched status bob = %+v ok=%v, want completed >= 1", bs, ok)
	}

	// Let the flood drain so Close is quick and assertions above are the
	// test's last word on ordering.
	for _, id := range floodIDs {
		apiReq(t, "DELETE", ts.URL+"/api/v1/jobs/"+id, "alice", nil)
	}
}
