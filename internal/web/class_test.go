package web

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skyserver/internal/sqlengine"
)

// seekSQL is a Q9-style dive-proven index seek (interactive); scanSQL is
// a ColorCutScan-style heap-scanning aggregate (batch).
const (
	seekSQL = "select specObjID, objID, z, zConf from SpecObj where specClass = 3 and z between 2.5 and 2.7"
	scanSQL = "select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1"
)

// TestQueryClassHeaderAndOverride checks the classification surface of
// the SQL endpoint: cold shapes admit conservatively as batch, cached
// shapes carry the planner's compile-time class into the X-Query-Class
// response header, and the ?class= parameter downgrades only.
func TestQueryClassHeaderAndOverride(t *testing.T) {
	sdb := survey(t)
	// ResultCacheBytes -1: repeated shapes below must reach the gate and
	// the engine every time, not be short-circuited from cached bytes.
	srv := NewServer(sdb, Options{Public: true, ResultCacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A shape the plan cache has never seen admits as batch: the gate
	// must not compile unadmitted text.
	coldSeek := seekSQL + " and z > 0"
	code, _, hdr := get(t, ts.URL+"/x/sql?format=csv&cmd="+urlq(coldSeek))
	if code != http.StatusOK || hdr.Get("X-Query-Class") != "batch" {
		t.Errorf("cold shape: status %d class %q, want 200 batch", code, hdr.Get("X-Query-Class"))
	}
	// That admitted execution cached the plan with its real class: the
	// same shape (different constants) now classifies interactive.
	code, _, hdr = get(t, ts.URL+"/x/sql?format=csv&cmd="+urlq(seekSQL+" and z > 1"))
	if code != http.StatusOK || hdr.Get("X-Query-Class") != "interactive" {
		t.Errorf("warmed shape: status %d class %q, want 200 interactive", code, hdr.Get("X-Query-Class"))
	}

	// Warm the two template shapes through the engine (no admission).
	sess := sqlengine.NewSession(sdb.DB)
	for _, sql := range []string{seekSQL, scanSQL} {
		if _, err := sess.Exec(sql, sqlengine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		path string
		want string
	}{
		{"/x/sql?format=csv&cmd=" + urlq(seekSQL), "interactive"},
		{"/x/sql?format=csv&cmd=" + urlq(scanSQL), "batch"},
		// Escalation is not honored: a batch scan cannot claim the
		// interactive reservation with a query parameter.
		{"/x/sql?format=csv&class=interactive&cmd=" + urlq(scanSQL), "batch"},
		// Downgrade is: a polite client keeps its seek out of the way.
		{"/x/sql?format=csv&class=batch&cmd=" + urlq(seekSQL), "batch"},
		// An unknown override value falls back to classification.
		{"/x/sql?format=csv&class=bogus&cmd=" + urlq(seekSQL), "interactive"},
		// Canned tools are interactive by construction.
		{"/en/tools/places/", "interactive"},
	}
	for _, tc := range cases {
		code, body, hdr := get(t, ts.URL+tc.path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, code, body)
		}
		if got := hdr.Get("X-Query-Class"); got != tc.want {
			t.Errorf("%s: X-Query-Class = %q, want %q", tc.path, got, tc.want)
		}
	}

	st := srv.Sched().Stats()
	// Cold probe (batch) + warmed seek (interactive) + 3 interactive and
	// 3 batch from the table above.
	if st.Interactive.Admitted != 4 || st.Batch.Admitted != 4 {
		t.Errorf("admitted interactive/batch = %d/%d, want 4/4",
			st.Interactive.Admitted, st.Batch.Admitted)
	}

	// The class is cached with the plan and readable without compiling.
	class, ok := sess.ClassifyCached(scanSQL)
	if !ok || class != sqlengine.ClassBatch {
		t.Errorf("ClassifyCached(scan) = %v/%v, want batch/true", class, ok)
	}
}

// TestBatchFloodKeepsInteractiveSnappy is the tentpole acceptance test:
// saturating batch scans — enough concurrent clients to keep the batch
// queue full for the whole run — must not make the scheduler queue or
// reject a single interactive query while reserved interactive slots
// exist, and the per-class statistics must account for every request the
// clients sent.
func TestBatchFloodKeepsInteractiveSnappy(t *testing.T) {
	sdb := survey(t)
	// ResultCacheBytes -1: the per-class admission accounting asserted
	// below needs every interactive request to pass the scheduler.
	srv := NewServer(sdb, Options{Public: true,
		InteractiveSlots: 2, BatchSlots: 1,
		InteractiveQueueDepth: 8, BatchQueueDepth: 2,
		ResultCacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The interactive stream is internal/traffic's page mix (explorer
	// drill-downs, the gallery, navigator rectangles — the canned-tool
	// routes), plus a planner-classified Q9-style seek on the SQL
	// endpoint; the /x/sql entries of the mix are the batch templates and
	// are flooded separately below.
	interactivePaths := []string{"/x/sql?format=csv&cmd=" + urlq(seekSQL)}
	for _, p := range trafficRequests(t, sdb, 96) {
		if !strings.HasPrefix(p, "/x/sql") {
			interactivePaths = append(interactivePaths, p)
		}
	}
	if len(interactivePaths) < 4 {
		t.Fatalf("traffic mix mapped to only %d interactive paths", len(interactivePaths))
	}

	batchPath := "/x/sql?format=csv&cmd=" + urlq(scanSQL)

	// Warm the SQL shapes through the engine first — pre-admission
	// classification is cache-peek-only, so the seek must be cached
	// before its HTTP requests can admit as interactive.
	sess := sqlengine.NewSession(sdb.DB)
	for _, sql := range []string{seekSQL, scanSQL} {
		if _, err := sess.Exec(sql, sqlengine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Then warm up over HTTP: handlers exercised, scan pool created.
	for _, p := range append([]string{batchPath}, interactivePaths...) {
		if code, body, _ := get(t, ts.URL+p); code != http.StatusOK {
			t.Fatalf("warmup %s: status %d: %s", p, code, body)
		}
	}

	const (
		floodClients       = 8
		floodRequests      = 12
		interactiveClients = 2 // == InteractiveSlots: the reservation always has room
		interactiveRounds  = 25
	)
	var wg sync.WaitGroup
	var batch200, batch503 atomic.Int64
	errCh := make(chan error, floodClients+interactiveClients)

	// The flood: more batch clients than batch slots + queue depth, all
	// run before and throughout the interactive phase.
	for g := 0; g < floodClients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < floodRequests; i++ {
				resp, err := http.Get(ts.URL + batchPath)
				if err != nil {
					errCh <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if got := resp.Header.Get("X-Query-Class"); got != "batch" {
					errCh <- fmt.Errorf("flood: X-Query-Class = %q, want batch", got)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					batch200.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" || !strings.Contains(string(body), "batch queue full") {
						errCh <- fmt.Errorf("malformed batch 503: header %q body %q",
							resp.Header.Get("Retry-After"), body)
						return
					}
					batch503.Add(1)
				default:
					errCh <- fmt.Errorf("flood: unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// The interactive side: as many concurrent clients as reserved
	// slots, so a reserved slot is free at every admission — the
	// acceptance bound is therefore zero queue wait and zero 503s.
	var lats []time.Duration
	var latMu sync.Mutex
	for g := 0; g < interactiveClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < interactiveRounds; i++ {
				p := interactivePaths[(g+i)%len(interactivePaths)]
				start := time.Now()
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					errCh <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(start)
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("interactive %s under flood: status %d: %s", p, resp.StatusCode, body)
					return
				}
				if got := resp.Header.Get("X-Query-Class"); got != "interactive" {
					errCh <- fmt.Errorf("interactive %s: X-Query-Class = %q", p, got)
					return
				}
				latMu.Lock()
				lats = append(lats, lat)
				latMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := srv.Sched().Stats()
	// Accounting: every request the clients sent is in the per-class
	// counters (+ the serial warmups), nothing is left running or queued.
	wantInteractive := int64(interactiveClients*interactiveRounds + len(interactivePaths))
	if st.Interactive.Admitted != wantInteractive || st.Interactive.Rejected != 0 {
		t.Errorf("interactive admitted/rejected = %d/%d, want %d/0",
			st.Interactive.Admitted, st.Interactive.Rejected, wantInteractive)
	}
	wantBatch := int64(floodClients*floodRequests + 1)
	if got := st.Batch.Admitted + st.Batch.Rejected; got != wantBatch {
		t.Errorf("batch admitted+rejected = %d, want %d", got, wantBatch)
	}
	if st.Batch.Admitted != batch200.Load()+1 || st.Batch.Rejected != batch503.Load() {
		t.Errorf("batch admitted/rejected = %d/%d, clients saw %d/%d",
			st.Batch.Admitted, st.Batch.Rejected, batch200.Load()+1, batch503.Load())
	}
	if st.Interactive.Completed+st.Interactive.Failed != st.Interactive.Admitted {
		t.Errorf("interactive completed+failed = %d, admitted %d",
			st.Interactive.Completed+st.Interactive.Failed, st.Interactive.Admitted)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running/queued = %d/%d after drain, want 0/0", st.Running, st.Queued)
	}
	// The acceptance bound: with the reservation never exhausted, no
	// interactive query waited in the queue at all.
	if st.Interactive.MaxQueueWaitMs != 0 {
		t.Errorf("interactive max queue wait = %.3fms under batch flood, want 0 (reserved-slot admission)",
			st.Interactive.MaxQueueWaitMs)
	}
	if batch503.Load() == 0 {
		t.Error("batch flood was never shed; the flood did not saturate the batch queue")
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p95 := lats[len(lats)*95/100]
	t.Logf("interactive under batch flood: %d requests, p50 %v, p95 %v; batch served %d, shed %d",
		len(lats), lats[len(lats)/2], p95, batch200.Load(), batch503.Load())
	// Generous wall-clock guard (scheduling, not perf, is under test):
	// an interactive seek must not take scan-queue time.
	if bound := 5 * time.Second; p95 > bound {
		t.Errorf("interactive p95 = %v under batch flood, want < %v", p95, bound)
	}
}

// BenchmarkInteractiveUnderBatchFlood measures the HTTP-level latency of
// a Q9-style interactive seek while batch color-cut scans keep the batch
// queue saturated — the "explorer stays snappy" number. Compare with
// BenchmarkInteractiveNoLoad for the flood's overhead.
func BenchmarkInteractiveUnderBatchFlood(b *testing.B) {
	benchInteractive(b, true)
}

// BenchmarkInteractiveNoLoad is the same interactive request stream on an
// idle server — the baseline for BenchmarkInteractiveUnderBatchFlood.
func BenchmarkInteractiveNoLoad(b *testing.B) {
	benchInteractive(b, false)
}

func benchInteractive(b *testing.B, flood bool) {
	srv := NewServer(survey(b), Options{Public: true,
		InteractiveSlots: 2, BatchSlots: 1, BatchQueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	seekPath := ts.URL + "/x/sql?format=csv&cmd=" + urlq(seekSQL)
	batchPath := ts.URL + "/x/sql?format=csv&cmd=" + urlq(scanSQL)
	fetch := func(url string) (int, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	if code, err := fetch(seekPath); err != nil || code != http.StatusOK {
		b.Fatalf("warmup: %d %v", code, err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if flood {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, _ = fetch(batchPath) // 200 and 503 both keep the pressure on
				}
			}()
		}
		// Let the flood occupy the batch slots before measuring.
		time.Sleep(50 * time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, err := fetch(seekPath)
		if err != nil {
			b.Fatal(err)
		}
		if code != http.StatusOK {
			b.Fatalf("interactive seek: status %d", code)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
