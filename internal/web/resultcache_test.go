package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"skyserver/internal/resultcache"
	"skyserver/internal/sqlengine"
)

func resultCacheStats(t *testing.T, ts *httptest.Server) resultcache.Stats {
	t.Helper()
	code, body, _ := get(t, ts.URL+"/x/resultcache")
	if code != http.StatusOK {
		t.Fatalf("/x/resultcache: status %d", code)
	}
	var st resultcache.Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/x/resultcache: bad JSON: %v (%s)", err, body)
	}
	return st
}

// TestResultCacheConditionalGET walks the whole repeat-lookup fast path:
// the first GET of a seek executes, carries a strong ETag, and fills the
// cache; the identical repeat is answered byte-for-byte from the cache
// without passing admission; and an If-None-Match revalidation gets 304
// with the class header and zero body bytes.
func TestResultCacheConditionalGET(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := ts.URL + "/x/sql?format=csv&cmd=" + urlq(seekSQL)
	code, body1, hdr1 := get(t, p)
	if code != http.StatusOK {
		t.Fatalf("first GET: status %d: %s", code, body1)
	}
	etag := hdr1.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("first response ETag = %q, want a quoted strong tag", etag)
	}
	if cc := hdr1.Get("Cache-Control"); cc != "private, no-cache" {
		t.Errorf("Cache-Control = %q, want private, no-cache", cc)
	}
	if st := resultCacheStats(t, ts); st.Fills != 1 {
		t.Fatalf("fills = %d after first GET, want 1", st.Fills)
	}

	// The repeat is served from the cache — identical bytes, same ETag,
	// class header intact — and never reaches the admission gate.
	admitted := srv.Sched().Stats().Admitted
	code, body2, hdr2 := get(t, p)
	if code != http.StatusOK || body2 != body1 {
		t.Fatalf("cached GET: status %d, body match %v", code, body2 == body1)
	}
	if hdr2.Get("ETag") != etag {
		t.Errorf("cached ETag %q != original %q", hdr2.Get("ETag"), etag)
	}
	if got := hdr2.Get("X-Query-Class"); got != "interactive" {
		t.Errorf("cached X-Query-Class = %q, want interactive", got)
	}
	if got := srv.Sched().Stats().Admitted; got != admitted {
		t.Errorf("cache hit was admitted (admitted %d -> %d)", admitted, got)
	}

	// Conditional GET: a matching If-None-Match gets 304, the class
	// header, and not a single body byte.
	req, err := http.NewRequest(http.MethodGet, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match: status %d, want 304", resp.StatusCode)
	}
	if len(b) != 0 {
		t.Errorf("304 carried %d body bytes", len(b))
	}
	if got := resp.Header.Get("X-Query-Class"); got != "interactive" {
		t.Errorf("304 X-Query-Class = %q, want interactive", got)
	}
	if resp.Header.Get("ETag") != etag {
		t.Errorf("304 ETag = %q, want %q", resp.Header.Get("ETag"), etag)
	}

	st := resultCacheStats(t, ts)
	if st.Hits < 2 || st.NotModified != 1 || st.Fills != 1 {
		t.Errorf("stats hits/304s/fills = %d/%d/%d, want >=2/1/1: %+v",
			st.Hits, st.NotModified, st.Fills, st)
	}
}

// TestResultCacheDMLInvalidation proves stale entries are never served:
// after DML moves a referenced table's data version, a revalidation with
// the old ETag gets a full 200 with a new ETag — computed from the new
// versions — and the cache records the lazy invalidation.
func TestResultCacheDMLInvalidation(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := ts.URL + "/x/sql?format=csv&cmd=" + urlq(seekSQL)
	code, body1, hdr1 := get(t, p)
	if code != http.StatusOK {
		t.Fatalf("fill GET: status %d: %s", code, body1)
	}
	etag1 := hdr1.Get("ETag")
	if etag1 == "" {
		t.Fatal("fill response carries no ETag")
	}

	// DML on the table the query reads: insert a spectrum and remove it
	// again. The data ends identical, but SpecObj's data version moved —
	// the cached entry (and the old ETag) must be dead.
	sess := sqlengine.NewSession(sdb.DB)
	const dml = `insert into SpecObj (specObjID, plateID, fiberID, mjd, ra, dec, z, zErr, zConf, zStatus, specClass, objID, loadTime)
		values (999999901, 1, 1, 51000.5, 10.0, 10.0, 9.9, 0.001, 0.99, 0, 3, 0, 0)`
	if _, err := sess.Exec(dml, sqlengine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("delete from SpecObj where specObjID = 999999901", sqlengine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag1)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-DML revalidation: status %d, want full 200", resp.StatusCode)
	}
	if string(b) != body1 {
		t.Errorf("post-DML body differs (data was restored): %d vs %d bytes", len(b), len(body1))
	}
	etag2 := resp.Header.Get("ETag")
	if etag2 == "" || etag2 == etag1 {
		t.Errorf("post-DML ETag = %q (was %q), want a fresh tag", etag2, etag1)
	}
	st := resultCacheStats(t, ts)
	if st.Invalidations < 1 {
		t.Errorf("invalidations = %d, want >= 1: %+v", st.Invalidations, st)
	}
	if st.NotModified != 0 {
		t.Errorf("stale ETag produced a 304 (%d)", st.NotModified)
	}

	// The refill is live again under the new versions.
	code, body3, hdr3 := get(t, p)
	if code != http.StatusOK || body3 != body1 {
		t.Fatalf("refilled GET: status %d", code)
	}
	if hdr3.Get("ETag") != etag2 {
		t.Errorf("refilled ETag %q != post-DML ETag %q", hdr3.Get("ETag"), etag2)
	}
}

// TestResultCacheBatchNeverFills: results a client self-downgraded with
// ?class=batch, and batch-classified scans in general, never populate
// the cache.
func TestResultCacheBatchNeverFills(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A self-downgraded seek: skipped by the probe, not filled.
	p := ts.URL + "/x/sql?format=csv&class=batch&cmd=" + urlq(seekSQL)
	for i := 0; i < 2; i++ {
		if code, body, _ := get(t, p); code != http.StatusOK {
			t.Fatalf("batch GET %d: status %d: %s", i, code, body)
		}
	}
	st := resultCacheStats(t, ts)
	if st.Fills != 0 {
		t.Errorf("?class=batch produced %d fills", st.Fills)
	}
	if st.Hits != 0 {
		t.Errorf("?class=batch produced %d hits", st.Hits)
	}

	// A planner-classified batch scan misses and is probed, but its
	// result is still never stored.
	pScan := ts.URL + "/x/sql?format=csv&cmd=" + urlq(scanSQL)
	for i := 0; i < 2; i++ {
		if code, body, _ := get(t, pScan); code != http.StatusOK {
			t.Fatalf("scan GET %d: status %d: %s", i, code, body)
		}
	}
	st = resultCacheStats(t, ts)
	if st.Fills != 0 {
		t.Errorf("batch-class scan produced %d fills", st.Fills)
	}
}

// TestResultCacheTVFNeverFills: plans reading table-valued functions run
// arbitrary code whose table reads the version snapshot cannot see, so
// their results must never be cached.
func TestResultCacheTVFNeverFills(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := ts.URL + "/x/sql?format=json&cmd=" +
		urlq("select objID from fGetObjFromRect(184.9, 185.1, -0.6, -0.4)")
	code, body1, hdr := get(t, p)
	if code != http.StatusOK {
		t.Fatalf("TVF GET: status %d: %s", code, body1)
	}
	if etag := hdr.Get("ETag"); etag != "" {
		t.Errorf("TVF response carries ETag %q", etag)
	}
	if st := resultCacheStats(t, ts); st.Fills != 0 {
		t.Errorf("TVF query produced %d fills", st.Fills)
	}
}
