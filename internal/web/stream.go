package web

import (
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"html"
	"io"
	"net/http"
	"strings"

	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// Batch-wise result serialization. The SQL endpoint streams each result
// batch straight from the executor's columnar form to the HTTP response —
// no []val.Row materialization between the plan and the wire. Each format
// implements begin (headers + preamble, on first batch), row output per
// batch, and finish (footers that need end-of-query statistics).
//
// Serializers own their scratch: one byte buffer per stream, reused for
// every batch, written downstream once per batch. XML and HTML render
// values through val.Value.AppendString instead of per-value String()
// allocations; JSON and CSV still marshal through encoding/json and
// encoding/csv, which allocate per row.

// batchSerializer writes one streamed result set.
type batchSerializer interface {
	// writeBatch serializes the active rows of b. cols is the output schema;
	// the first call emits headers.
	writeBatch(cols []string, b *val.Batch) error
	// finish closes the document with end-of-query statistics. It must
	// handle never having seen a batch (empty result sets).
	finish(res *sqlengine.Result) error
	// abort closes the document with an error marker after a mid-stream
	// failure (the status line is already committed, so this is the only
	// way the client can tell a partial result from a complete one).
	abort(err error)
	// started reports whether any response bytes were written, after which
	// an HTTP error status can no longer be sent.
	started() bool
}

// newBatchSerializer returns the serializer for a format, or nil when the
// format cannot stream (fits needs the row count in its header).
func newBatchSerializer(w http.ResponseWriter, format string) batchSerializer {
	switch strings.ToLower(format) {
	case "csv":
		return &csvStream{w: w}
	case "json":
		return &jsonStream{w: w}
	case "xml":
		return &xmlStream{w: w}
	case "html":
		return &htmlStream{w: w}
	default:
		return nil
	}
}

// ---- csv ----

type csvStream struct {
	w     http.ResponseWriter
	cw    *csv.Writer
	rec   []string
	begun bool
}

func (s *csvStream) started() bool { return s.begun }

func (s *csvStream) begin(cols []string) error {
	s.begun = true
	s.w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	s.cw = csv.NewWriter(s.w)
	s.rec = make([]string, len(cols))
	return s.cw.Write(cols)
}

func (s *csvStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	return b.EachErr(func(i int) error {
		for j := range cols {
			s.rec[j] = b.Col(j)[i].String()
		}
		return s.cw.Write(s.rec)
	})
}

func (s *csvStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	s.cw.Flush()
	return s.cw.Error()
}

func (s *csvStream) abort(err error) {
	if !s.begun {
		return
	}
	s.cw.Flush()
	fmt.Fprintf(s.w, "# error: result truncated: %s\n", err)
}

// ---- json ----

type jsonStream struct {
	w     http.ResponseWriter
	row   []interface{}
	buf   []byte // per-batch output, reused
	begun bool
	first bool
}

func (s *jsonStream) started() bool { return s.begun }

func (s *jsonStream) begin(cols []string) error {
	s.begun = true
	s.first = true
	s.w.Header().Set("Content-Type", "application/json")
	s.row = make([]interface{}, len(cols))
	names, err := json.Marshal(cols)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(s.w, `{"columns":%s,"rows":[`, names)
	return err
}

func (s *jsonStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	row := s.row
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		for j := range cols {
			row[j] = jsonValue(b.Col(j)[i])
		}
		enc, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if !s.first {
			s.buf = append(s.buf, ',')
		}
		s.first = false
		s.buf = append(s.buf, enc...)
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

func (s *jsonStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, `],"truncated":%v,"elapsedMs":%g}`,
		res.Truncated, float64(res.Elapsed.Microseconds())/1000)
	return err
}

func (s *jsonStream) abort(err error) {
	if !s.begun {
		return
	}
	// Close the rows array and surface the error so the document stays
	// valid JSON and the client can tell it is partial.
	msg, _ := json.Marshal(err.Error())
	fmt.Fprintf(s.w, `],"error":%s}`, msg)
}

func jsonValue(v val.Value) interface{} {
	switch v.K {
	case val.KindNull:
		return nil
	case val.KindInt:
		return v.I
	case val.KindFloat:
		return v.F
	case val.KindString:
		return v.S
	default:
		return fmt.Sprintf("0x%x", v.B)
	}
}

// ---- xml ----

type xmlStream struct {
	w       http.ResponseWriter
	buf     []byte   // per-batch output, reused
	scratch []byte   // per-value rendering, reused
	opens   [][]byte // per-column `<field name="...">` prefixes, escaped once
	begun   bool
}

func (s *xmlStream) started() bool { return s.begun }

func (s *xmlStream) begin(cols []string) error {
	s.begun = true
	s.w.Header().Set("Content-Type", "application/xml")
	s.opens = make([][]byte, len(cols))
	for j, c := range cols {
		open := appendXMLEscaped([]byte(`<field name="`), []byte(c))
		s.opens[j] = append(open, `">`...)
	}
	if _, err := io.WriteString(s.w, xml.Header); err != nil {
		return err
	}
	_, err := io.WriteString(s.w, "<result>")
	return err
}

func (s *xmlStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		s.buf = append(s.buf, "<row>"...)
		for j := range cols {
			s.buf = append(s.buf, s.opens[j]...)
			s.scratch = b.Col(j)[i].AppendString(s.scratch[:0])
			s.buf = appendXMLEscaped(s.buf, s.scratch)
			s.buf = append(s.buf, "</field>"...)
		}
		s.buf = append(s.buf, "</row>"...)
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

func (s *xmlStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.w, "</result>")
	return err
}

func (s *xmlStream) abort(err error) {
	if !s.begun {
		return
	}
	buf := []byte("<error>")
	buf = appendXMLEscaped(buf, []byte(err.Error()))
	buf = append(buf, "</error></result>"...)
	_, _ = s.w.Write(buf)
}

// bufWriter adapts an append buffer to io.Writer for xml.EscapeText.
type bufWriter struct{ b []byte }

func (w *bufWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// appendXMLEscaped appends src with XML escaping applied. The common case
// — no character needs escaping — is a single append.
func appendXMLEscaped(dst, src []byte) []byte {
	needs := false
	for _, c := range src {
		if c == '&' || c == '<' || c == '>' || c == '\'' || c == '"' || c < 0x20 || c >= 0x80 {
			needs = true
			break
		}
	}
	if !needs {
		return append(dst, src...)
	}
	w := bufWriter{b: dst}
	_ = xml.EscapeText(&w, src)
	return w.b
}

// ---- html ----

type htmlStream struct {
	w       http.ResponseWriter
	buf     []byte // per-batch output, reused
	scratch []byte // per-value rendering, reused
	rows    int
	begun   bool
}

func (s *htmlStream) started() bool { return s.begun }

func (s *htmlStream) begin(cols []string) error {
	s.begun = true
	s.w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var sb strings.Builder
	sb.WriteString("<html><body><table border=\"1\"><tr>")
	for _, c := range cols {
		sb.WriteString("<th>")
		sb.WriteString(html.EscapeString(c))
		sb.WriteString("</th>")
	}
	sb.WriteString("</tr>")
	_, err := io.WriteString(s.w, sb.String())
	return err
}

func (s *htmlStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		s.rows++
		s.buf = append(s.buf, "<tr>"...)
		for j := range cols {
			s.buf = append(s.buf, "<td>"...)
			s.scratch = b.Col(j)[i].AppendString(s.scratch[:0])
			s.buf = appendHTMLEscaped(s.buf, s.scratch)
			s.buf = append(s.buf, "</td>"...)
		}
		s.buf = append(s.buf, "</tr>"...)
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

// appendHTMLEscaped appends src escaping the characters html.EscapeString
// does; the no-escape common case (every numeric column) is one append.
func appendHTMLEscaped(dst, src []byte) []byte {
	needs := false
	for _, c := range src {
		if c == '&' || c == '<' || c == '>' || c == '\'' || c == '"' {
			needs = true
			break
		}
	}
	if !needs {
		return append(dst, src...)
	}
	for _, c := range src {
		switch c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '\'':
			dst = append(dst, "&#39;"...)
		case '"':
			dst = append(dst, "&#34;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func (s *htmlStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(s.w, "</table>"); err != nil {
		return err
	}
	if res.Truncated {
		if _, err := fmt.Fprintf(s.w, "<p>Results truncated at %d rows (public server limit).</p>", s.rows); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, "<p>%d rows, %.1f ms elapsed.</p></body></html>",
		s.rows, float64(res.Elapsed.Microseconds())/1000)
	return err
}

func (s *htmlStream) abort(err error) {
	if !s.begun {
		return
	}
	fmt.Fprintf(s.w, "</table><p>ERROR: result truncated after %d rows: %s</p></body></html>",
		s.rows, html.EscapeString(err.Error()))
}
