package web

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"html"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// Batch-wise result serialization. The SQL endpoint streams each result
// batch straight from the executor's columnar form to the HTTP response —
// no []val.Row materialization between the plan and the wire. Each format
// implements begin (headers + preamble, on first batch), row output per
// batch, and finish (footers that need end-of-query statistics).
//
// Serializers own their scratch: one byte buffer per stream, reused for
// every batch, written downstream once per batch. All four streaming
// formats render values through val.Value.AppendString into that buffer —
// CSV quoting and JSON escaping/number formatting are done by direct
// buffer append (appendCSVField, appendJSONValue) with encoding/csv- and
// encoding/json-compatible output, so serialization allocates nothing per
// row in steady state.

// fillWriter tees response bytes into a capped buffer on their way to
// the client — the result cache's fill path. The serialized stream is
// captured as it is written, so a cacheable response populates the cache
// without a second execution or serialization. Capture stops (and the
// buffer is dropped) once the body exceeds the per-entry cap or a
// non-200 status is written; forwarding to the client is never affected.
type fillWriter struct {
	http.ResponseWriter
	buf         []byte
	max         int
	over        bool
	status      int
	contentType string
}

func (f *fillWriter) WriteHeader(code int) {
	f.status = code
	f.ResponseWriter.WriteHeader(code)
}

func (f *fillWriter) Write(p []byte) (int, error) {
	if !f.over {
		if f.contentType == "" {
			f.contentType = f.Header().Get("Content-Type")
		}
		if len(f.buf)+len(p) > f.max {
			f.over = true
			f.buf = nil
		} else {
			f.buf = append(f.buf, p...)
		}
	}
	return f.ResponseWriter.Write(p)
}

// captured returns the complete body and its Content-Type when the
// response was a successful 200 within the cap; ok is false otherwise
// (over budget, error status, aborted mid-stream).
func (f *fillWriter) captured() (body []byte, contentType string, ok bool) {
	if f.over || (f.status != 0 && f.status != http.StatusOK) {
		return nil, "", false
	}
	return f.buf, f.contentType, true
}

// batchSerializer writes one streamed result set.
type batchSerializer interface {
	// writeBatch serializes the active rows of b. cols is the output schema;
	// the first call emits headers.
	writeBatch(cols []string, b *val.Batch) error
	// finish closes the document with end-of-query statistics. It must
	// handle never having seen a batch (empty result sets).
	finish(res *sqlengine.Result) error
	// abort closes the document with an error marker after a mid-stream
	// failure (the status line is already committed, so this is the only
	// way the client can tell a partial result from a complete one).
	abort(err error)
	// started reports whether any response bytes were written, after which
	// an HTTP error status can no longer be sent.
	started() bool
}

// newBatchSerializer returns the serializer for a format, or nil when the
// format cannot stream (fits needs the row count in its header).
func newBatchSerializer(w http.ResponseWriter, format string) batchSerializer {
	switch strings.ToLower(format) {
	case "csv":
		return &csvStream{w: w}
	case "json":
		return &jsonStream{w: w}
	case "xml":
		return &xmlStream{w: w}
	case "html":
		return &htmlStream{w: w}
	default:
		return nil
	}
}

// ---- csv ----

type csvStream struct {
	w       http.ResponseWriter
	buf     []byte // per-batch output, reused
	scratch []byte // per-value rendering, reused
	begun   bool
}

func (s *csvStream) started() bool { return s.begun }

func (s *csvStream) begin(cols []string) error {
	s.begun = true
	s.w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	s.buf = s.buf[:0]
	for j, c := range cols {
		if j > 0 {
			s.buf = append(s.buf, ',')
		}
		s.buf = appendCSVField(s.buf, []byte(c))
	}
	s.buf = append(s.buf, '\n')
	_, err := s.w.Write(s.buf)
	return err
}

func (s *csvStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		for j := range cols {
			if j > 0 {
				s.buf = append(s.buf, ',')
			}
			s.scratch = b.Col(j)[i].AppendString(s.scratch[:0])
			s.buf = appendCSVField(s.buf, s.scratch)
		}
		s.buf = append(s.buf, '\n')
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

func (s *csvStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	return nil
}

func (s *csvStream) abort(err error) {
	if !s.begun {
		return
	}
	fmt.Fprintf(s.w, "# error: result truncated: %s\n", err)
}

// appendCSVField appends one field with encoding/csv-compatible quoting:
// a field is quoted when it contains a comma, quote, CR or LF, starts with
// whitespace, or is the SQL-null-looking `\.`. The no-quote common case —
// every numeric column — is a single append.
func appendCSVField(dst, field []byte) []byte {
	needs := false
	if len(field) > 0 {
		if r, _ := utf8.DecodeRune(field); unicode.IsSpace(r) {
			needs = true
		}
	}
	if !needs {
		for _, c := range field {
			if c == ',' || c == '"' || c == '\r' || c == '\n' {
				needs = true
				break
			}
		}
	}
	if !needs && len(field) == 2 && field[0] == '\\' && field[1] == '.' {
		needs = true
	}
	if !needs {
		return append(dst, field...)
	}
	dst = append(dst, '"')
	for _, c := range field {
		if c == '"' {
			dst = append(dst, '"', '"')
			continue
		}
		dst = append(dst, c)
	}
	return append(dst, '"')
}

// ---- json ----

type jsonStream struct {
	w     http.ResponseWriter
	buf   []byte // per-batch output, reused
	begun bool
	first bool
}

func (s *jsonStream) started() bool { return s.begun }

func (s *jsonStream) begin(cols []string) error {
	s.begun = true
	s.first = true
	s.w.Header().Set("Content-Type", "application/json")
	names, err := json.Marshal(cols)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(s.w, `{"columns":%s,"rows":[`, names)
	return err
}

func (s *jsonStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		if !s.first {
			s.buf = append(s.buf, ',')
		}
		s.first = false
		s.buf = append(s.buf, '[')
		for j := range cols {
			if j > 0 {
				s.buf = append(s.buf, ',')
			}
			s.buf = appendJSONValue(s.buf, b.Col(j)[i])
		}
		s.buf = append(s.buf, ']')
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

func (s *jsonStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, `],"truncated":%v,"elapsedMs":%g}`,
		res.Truncated, float64(res.Elapsed.Microseconds())/1000)
	return err
}

func (s *jsonStream) abort(err error) {
	if !s.begun {
		return
	}
	// Close the rows array and surface the error so the document stays
	// valid JSON and the client can tell it is partial.
	msg, _ := json.Marshal(err.Error())
	fmt.Fprintf(s.w, `],"error":%s}`, msg)
}

// appendJSONValue appends one value encoded as encoding/json would — ints
// and floats as numbers (Go's compact float form), strings with the
// HTML-safe escaping json.Marshal applies, blobs as "0x…" hex strings —
// by direct buffer append, with no boxing or reflection. The one
// divergence: a NaN or infinite float (which json.Marshal rejects with an
// error) renders as null, keeping the already-committed stream valid.
func appendJSONValue(dst []byte, v val.Value) []byte {
	switch v.K {
	case val.KindNull:
		return append(dst, "null"...)
	case val.KindInt:
		return strconv.AppendInt(dst, v.I, 10)
	case val.KindFloat:
		return appendJSONFloat(dst, v.F)
	case val.KindString:
		return appendJSONString(dst, v.S)
	default:
		dst = append(dst, '"', '0', 'x')
		for _, b := range v.B {
			dst = append(dst, jsonHex[b>>4], jsonHex[b&0xf])
		}
		return append(dst, '"')
	}
}

// appendJSONFloat matches encoding/json's float64 formatting: shortest
// representation, 'e' only for very small or very large magnitudes, with
// the exponent cleaned of its leading zero.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(dst)
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		n := len(dst)
		if n-start >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends s quoted and escaped exactly as json.Marshal
// with its default HTML escaping: control characters, quote and backslash
// escaped; '<', '>', '&' as \u00XX; invalid UTF-8 as \ufffd;
// U+2028/U+2029 as \u2028/\u2029.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters and <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe reports whether an ASCII byte needs no escaping under
// encoding/json's default (HTML-escaping) encoder.
func jsonSafe(b byte) bool {
	if b < 0x20 {
		return false
	}
	switch b {
	case '"', '\\', '<', '>', '&':
		return false
	}
	return true
}

// ---- xml ----

type xmlStream struct {
	w       http.ResponseWriter
	buf     []byte   // per-batch output, reused
	scratch []byte   // per-value rendering, reused
	opens   [][]byte // per-column `<field name="...">` prefixes, escaped once
	begun   bool
}

func (s *xmlStream) started() bool { return s.begun }

func (s *xmlStream) begin(cols []string) error {
	s.begun = true
	s.w.Header().Set("Content-Type", "application/xml")
	s.opens = make([][]byte, len(cols))
	for j, c := range cols {
		open := appendXMLEscaped([]byte(`<field name="`), []byte(c))
		s.opens[j] = append(open, `">`...)
	}
	if _, err := io.WriteString(s.w, xml.Header); err != nil {
		return err
	}
	_, err := io.WriteString(s.w, "<result>")
	return err
}

func (s *xmlStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		s.buf = append(s.buf, "<row>"...)
		for j := range cols {
			s.buf = append(s.buf, s.opens[j]...)
			s.scratch = b.Col(j)[i].AppendString(s.scratch[:0])
			s.buf = appendXMLEscaped(s.buf, s.scratch)
			s.buf = append(s.buf, "</field>"...)
		}
		s.buf = append(s.buf, "</row>"...)
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

func (s *xmlStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.w, "</result>")
	return err
}

func (s *xmlStream) abort(err error) {
	if !s.begun {
		return
	}
	buf := []byte("<error>")
	buf = appendXMLEscaped(buf, []byte(err.Error()))
	buf = append(buf, "</error></result>"...)
	_, _ = s.w.Write(buf)
}

// bufWriter adapts an append buffer to io.Writer for xml.EscapeText.
type bufWriter struct{ b []byte }

func (w *bufWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// appendXMLEscaped appends src with XML escaping applied. The common case
// — no character needs escaping — is a single append.
func appendXMLEscaped(dst, src []byte) []byte {
	needs := false
	for _, c := range src {
		if c == '&' || c == '<' || c == '>' || c == '\'' || c == '"' || c < 0x20 || c >= 0x80 {
			needs = true
			break
		}
	}
	if !needs {
		return append(dst, src...)
	}
	w := bufWriter{b: dst}
	_ = xml.EscapeText(&w, src)
	return w.b
}

// ---- html ----

type htmlStream struct {
	w       http.ResponseWriter
	buf     []byte // per-batch output, reused
	scratch []byte // per-value rendering, reused
	rows    int
	begun   bool
}

func (s *htmlStream) started() bool { return s.begun }

func (s *htmlStream) begin(cols []string) error {
	s.begun = true
	s.w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var sb strings.Builder
	sb.WriteString("<html><body><table border=\"1\"><tr>")
	for _, c := range cols {
		sb.WriteString("<th>")
		sb.WriteString(html.EscapeString(c))
		sb.WriteString("</th>")
	}
	sb.WriteString("</tr>")
	_, err := io.WriteString(s.w, sb.String())
	return err
}

func (s *htmlStream) writeBatch(cols []string, b *val.Batch) error {
	if !s.begun {
		if err := s.begin(cols); err != nil {
			return err
		}
	}
	s.buf = s.buf[:0]
	err := b.EachErr(func(i int) error {
		s.rows++
		s.buf = append(s.buf, "<tr>"...)
		for j := range cols {
			s.buf = append(s.buf, "<td>"...)
			s.scratch = b.Col(j)[i].AppendString(s.scratch[:0])
			s.buf = appendHTMLEscaped(s.buf, s.scratch)
			s.buf = append(s.buf, "</td>"...)
		}
		s.buf = append(s.buf, "</tr>"...)
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.w.Write(s.buf)
	return err
}

// appendHTMLEscaped appends src escaping the characters html.EscapeString
// does; the no-escape common case (every numeric column) is one append.
func appendHTMLEscaped(dst, src []byte) []byte {
	needs := false
	for _, c := range src {
		if c == '&' || c == '<' || c == '>' || c == '\'' || c == '"' {
			needs = true
			break
		}
	}
	if !needs {
		return append(dst, src...)
	}
	for _, c := range src {
		switch c {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '\'':
			dst = append(dst, "&#39;"...)
		case '"':
			dst = append(dst, "&#34;"...)
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

func (s *htmlStream) finish(res *sqlengine.Result) error {
	if !s.begun {
		if err := s.begin(res.Cols); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(s.w, "</table>"); err != nil {
		return err
	}
	if res.Truncated {
		if _, err := fmt.Fprintf(s.w, "<p>Results truncated at %d rows (public server limit).</p>", s.rows); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, "<p>%d rows, %.1f ms elapsed.</p></body></html>",
		s.rows, float64(res.Elapsed.Microseconds())/1000)
	return err
}

func (s *htmlStream) abort(err error) {
	if !s.begun {
		return
	}
	fmt.Fprintf(s.w, "</table><p>ERROR: result truncated after %d rows: %s</p></body></html>",
		s.rows, html.EscapeString(err.Error()))
}
