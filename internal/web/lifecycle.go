package web

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Drain gracefully shuts srv down: readiness flips off so gated routes shed
// new queries with 503 + Retry-After, still-queued batch jobs checkpoint to
// failed("draining") — a re-runnable, explained state instead of silently
// vanishing with the process — the grace window lets requests that raced
// the flip land on the still-open listener and see that 503, then
// srv.Shutdown waits for in-flight queries up to timeout, and running jobs
// get the same deadline (stragglers checkpoint to failed("draining") too).
// On timeout the remaining connections are closed hard and the error says
// so — the caller decides whether a dirty exit matters.
func (s *Server) Drain(srv *http.Server, grace, timeout time.Duration) error {
	s.SetReady(false)
	if s.jobs != nil {
		s.jobs.DrainQueued("draining")
	}
	if grace > 0 {
		time.Sleep(grace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	var jobsErr error
	if s.jobs != nil {
		// Jobs are not HTTP connections: srv.Shutdown does not wait for
		// them, so they drain under the same deadline separately.
		jobsErr = s.jobs.Shutdown(ctx)
	}
	if err != nil {
		_ = srv.Close()
		return fmt.Errorf("web: drain incomplete after %s (connections closed hard): %w", timeout, err)
	}
	if jobsErr != nil {
		return fmt.Errorf("web: running jobs checkpointed to failed after %s: %w", timeout, jobsErr)
	}
	return nil
}

// ServeGraceful serves srv until SIGINT/SIGTERM, then drains (see Drain)
// and returns the drain's outcome — the replacement for
// log.Fatal(ListenAndServe) that §7-scale operations need: a deploy or
// scale-down must not kill in-flight queries. ln nil means listen on
// srv.Addr. Signal delivery is registered before serving starts, so a
// signal arriving at any point after this call triggers a drain rather
// than the process default (immediate death).
func (s *Server) ServeGraceful(srv *http.Server, ln net.Listener, grace, timeout time.Duration) error {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
			return
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed on its own; there is nothing to drain.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "skyserver: %s received, draining (grace %s, timeout %s)\n", sig, grace, timeout)
		return s.Drain(srv, grace, timeout)
	}
}
