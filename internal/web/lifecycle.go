package web

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Drain gracefully shuts srv down: readiness flips off so gated routes shed
// new queries with 503 + Retry-After, the grace window lets requests that
// raced the flip land on the still-open listener and see that 503, then
// srv.Shutdown waits for in-flight queries up to timeout. On timeout the
// remaining connections are closed hard and the error says so — the caller
// decides whether a dirty exit matters.
func (s *Server) Drain(srv *http.Server, grace, timeout time.Duration) error {
	s.SetReady(false)
	if grace > 0 {
		time.Sleep(grace)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
		return fmt.Errorf("web: drain incomplete after %s (connections closed hard): %w", timeout, err)
	}
	return nil
}

// ServeGraceful serves srv until SIGINT/SIGTERM, then drains (see Drain)
// and returns the drain's outcome — the replacement for
// log.Fatal(ListenAndServe) that §7-scale operations need: a deploy or
// scale-down must not kill in-flight queries. ln nil means listen on
// srv.Addr. Signal delivery is registered before serving starts, so a
// signal arriving at any point after this call triggers a drain rather
// than the process default (immediate death).
func (s *Server) ServeGraceful(srv *http.Server, ln net.Listener, grace, timeout time.Duration) error {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
			return
		}
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed on its own; there is nothing to drain.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "skyserver: %s received, draining (grace %s, timeout %s)\n", sig, grace, timeout)
		return s.Drain(srv, grace, timeout)
	}
}
