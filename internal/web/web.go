// Package web implements the SkyServer's web interface (§2, §5): an HTTP
// front end over the SQL database offering the query page with the public
// limits (1,000 rows / 30 seconds, §4), result sets in multiple formats
// (the SkyServerQA formats of §4: grid/HTML, CSV, XML — plus JSON for
// modern clients and a FITS-ASCII table), the object explorer drill-down
// (Figure 2), the pan-zoom cutout service over the image pyramid, the
// famous-places gallery, and the schema browser feed that SkyServerQA's
// object browser reads. Every request is written to an access log in the
// format internal/traffic analyzes — the same pipeline as §7's statistics.
//
// Query-running routes pass through a workload-class admission gate:
// ad-hoc SQL is classified by the planner (interactive seek vs batch
// sweep), canned tools admit as interactive, responses carry
// X-Query-Class, and overload is shed per class with 503 + Retry-After
// (see internal/sched and docs/ops.md).
package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skyserver/internal/jobs"
	"skyserver/internal/resultcache"
	"skyserver/internal/sched"
	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// Options configure a server.
type Options struct {
	// Public enforces the paper's public-server limits: 1,000 rows and
	// 30 seconds per query. Private (personal) SkyServers run unlimited.
	Public bool
	// MaxRows / Timeout override the public defaults when non-zero.
	MaxRows int
	Timeout time.Duration
	// InteractiveSlots / BatchSlots bound how many query-running requests
	// of each workload class execute at once (0 = the sched defaults):
	// interactive slots are a hard reservation for the Explorer's point
	// lookups, batch slots serve analytic scans and may borrow idle
	// capacity. InteractiveQueueDepth / BatchQueueDepth bound each
	// class's wait queue; requests beyond slot and queue bounds receive
	// 503 + Retry-After — §7's television spike sheds load instead of
	// collapsing the server, and a flood of batch scans no longer drags
	// the Explorer down with it.
	InteractiveSlots      int
	BatchSlots            int
	InteractiveQueueDepth int
	BatchQueueDepth       int
	// MaxScanWorkers caps the scan parallelism of one admitted query
	// (ExecOptions.MaxConcurrency; 0 = uncapped).
	MaxScanWorkers int
	// ResultCacheBytes budgets the serialized result cache that answers
	// repeat SQL GETs before admission (0 = the resultcache default,
	// negative = disabled — admission-accounting tests disable it so
	// every request reaches the scheduler). ResultCacheMaxEntry caps one
	// cached body (0 = default); it also bounds the FITS materialization
	// buffer, cache enabled or not.
	ResultCacheBytes    int
	ResultCacheMaxEntry int
	// UserQueueQuota bounds how many queued batch admissions one user
	// identity (X-User header / ?user=) may hold at once; other users keep
	// queueing past one identity's quota rejection (0 = the batch queue
	// depth).
	UserQueueQuota int
	// JobsDir / JobsTTL / JobsBytes / JobsMaxPerUser configure the async
	// job service's persisted-result store (see internal/jobs; zero values
	// select its defaults — JobsDir "" spills into a private temp
	// directory removed on Close).
	JobsDir        string
	JobsTTL        time.Duration
	JobsBytes      int64
	JobsMaxPerUser int
	// AccessLog receives traffic-format log lines (may be nil).
	AccessLog io.Writer
}

// PublicMaxRows and PublicTimeout are the §4 limits.
const (
	PublicMaxRows = 1000
	PublicTimeout = 30 * time.Second
)

// Server is the SkyServer web front end.
type Server struct {
	sdb   *schema.SkyDB
	opt   Options
	mux   *http.ServeMux
	sched *sched.Scheduler

	// rcache answers repeat SQL GETs from serialized bytes before the
	// admission gate (nil when disabled); maxEntry is the per-body cap,
	// resolved even when the cache is off because the FITS path sizes its
	// materialization buffer against it. probePool recycles the sessions
	// whose scratch buffers back the pre-admission classify and
	// result-key probes, so unadmitted traffic allocates nothing.
	rcache    *resultcache.Cache
	maxEntry  int
	probePool sync.Pool

	// jobs is the async batch-query job service behind /api/v1/jobs (nil
	// only when its spill directory could not be created).
	jobs *jobs.Manager

	// notReady is set while the server drains: gated routes shed with 503
	// (zero value = ready, so a fresh server serves immediately). panics
	// counts handler panics the recovery middleware absorbed.
	notReady atomic.Bool
	panics   atomic.Int64

	logMu sync.Mutex
}

// NewServer builds the front end over a loaded database.
func NewServer(sdb *schema.SkyDB, opt Options) *Server {
	if opt.Public {
		if opt.MaxRows == 0 {
			opt.MaxRows = PublicMaxRows
		}
		if opt.Timeout == 0 {
			opt.Timeout = PublicTimeout
		}
	}
	s := &Server{
		sdb: sdb,
		opt: opt,
		mux: http.NewServeMux(),
		sched: sched.NewScheduler(sched.Config{
			InteractiveSlots:      opt.InteractiveSlots,
			BatchSlots:            opt.BatchSlots,
			InteractiveQueueDepth: opt.InteractiveQueueDepth,
			BatchQueueDepth:       opt.BatchQueueDepth,
			UserQueueQuota:        opt.UserQueueQuota,
		}),
	}
	jm, err := jobs.New(jobs.Config{
		Dir:        opt.JobsDir,
		TTL:        opt.JobsTTL,
		MaxBytes:   opt.JobsBytes,
		MaxPerUser: opt.JobsMaxPerUser,
		Exec:       s.runJob,
	})
	if err != nil {
		// The server still serves everything synchronous; /api/v1/jobs
		// answers 503 until a restart fixes the spill directory.
		log.Printf("web: jobs service disabled: %v", err)
	} else {
		s.jobs = jm
	}
	s.maxEntry = opt.ResultCacheMaxEntry
	if s.maxEntry <= 0 {
		s.maxEntry = resultcache.DefaultMaxEntry
	}
	if opt.ResultCacheBytes >= 0 {
		s.rcache = resultcache.New(opt.ResultCacheBytes, s.maxEntry)
	}
	s.probePool.New = func() any { return &probeState{sess: sqlengine.NewSession(sdb.DB)} }
	// The ad-hoc SQL endpoints classify each query through the planner
	// (plan-cached, so the steady state pays one cache probe); the site's
	// own canned tools — the Explorer drill-down, cutouts, the gallery,
	// the navigator rectangle, the loader journal — are interactive by
	// construction and admit under a fixed class. SQL GETs first probe
	// the result cache: a repeat of an already-served lookup is answered
	// from cached bytes before admission (see resultCached).
	interactive := func(*http.Request) sched.Class { return sched.Interactive }
	sqlHandler := s.resultCached(s.gate("sql", s.classifySQL, s.handleSQL))
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/en/tools/search/sql.asp", sqlHandler)
	s.mux.HandleFunc("/x/sql", sqlHandler)
	s.mux.HandleFunc("/x/plancache", s.handlePlanCache)
	s.mux.HandleFunc("/x/resultcache", s.handleResultCache)
	s.mux.HandleFunc("/x/sched", s.handleSched)
	s.mux.HandleFunc("/x/shards", s.handleShards)
	s.mux.HandleFunc("/x/health", s.handleHealth)
	s.mux.HandleFunc("/en/tools/explore/obj.asp", s.gate("explore", interactive, s.handleExplore))
	s.mux.HandleFunc("/en/tools/places/", s.gate("places", interactive, s.handlePlaces))
	s.mux.HandleFunc("/en/tools/navi/cutout", s.gate("cutout", interactive, s.handleCutout))
	s.mux.HandleFunc("/en/tools/navi/objects", s.gate("rect", interactive, s.handleRect))
	s.mux.HandleFunc("/en/help/docs/browser.asp", s.handleSchema)
	s.mux.HandleFunc("/en/skyserver/loadevents", s.gate("loadevents", interactive, s.handleLoadEvents))
	// The versioned /api/v1 namespace: the sync query endpoint and the
	// status pages are the same handlers as the legacy routes above
	// (which stay as thin aliases); /api/v1/jobs is the async job
	// service. Errors under /api/v1 are the JSON envelope (docs/ops.md).
	s.mux.HandleFunc("/api/v1/query", sqlHandler)
	s.mux.HandleFunc("/api/v1/status/sched", s.handleSched)
	s.mux.HandleFunc("/api/v1/status/shards", s.handleShards)
	s.mux.HandleFunc("/api/v1/status/plancache", s.handlePlanCache)
	s.mux.HandleFunc("/api/v1/status/resultcache", s.handleResultCache)
	s.mux.HandleFunc("/api/v1/status/health", s.handleHealth)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("/api/v1/", s.handleAPINotFound)
	return s
}

// Sched returns the server's admission controller (tests and embedding
// tools read its statistics).
func (s *Server) Sched() *sched.Scheduler { return s.sched }

// ResultCache returns the serialized result cache, nil when disabled
// (tests and embedding tools read its statistics).
func (s *Server) ResultCache() *resultcache.Cache { return s.rcache }

// probeState is the pooled scratch of the pre-admission probes: a
// session whose lex/normalize buffers are reused across requests, plus
// the result-key buffer. Pooled because probes run on unadmitted —
// possibly about-to-be-shed — traffic, which must not allocate per
// request.
type probeState struct {
	sess *sqlengine.Session
	key  []byte
}

// fillState rides the request context from the result-cache probe to
// handleSQL on a miss: the computed cache key and, when the plan cache
// already knows the statement's shape, the ETag the response should
// carry (an unknown shape gets no ETag on its first-ever response — the
// fill computes one for every later request).
type fillState struct {
	key  []byte
	etag string
}

type fillKey struct{}

// resultCached wraps the SQL endpoints with the result-cache probe — the
// short-circuit layer before admission. A GET whose (normalized
// statement, parameters, format, row limit) key has a valid cached entry
// is answered entirely from cached bytes: no admission, no compile, no
// bind, no scan. The reply carries ETag and Cache-Control, and a request
// whose If-None-Match matches sends 304 with zero body bytes. A miss
// attaches a fillState so the admitted execution's serialized response
// populates the cache on its way to the client. POSTs, the bare search
// page, and requests self-downgraded with ?class=batch skip the cache
// entirely (batch results are never cached, so probing them is wasted
// work).
//
// Cache-Control is "private, no-cache": intermediaries must not hold
// analyst query results, and clients must revalidate — which the strong
// ETag makes a one-round-trip 304 in the steady state. Staleness is
// bounded by the entry's validity witness, not by time: any DML or DDL
// on a referenced table makes the next probe discard the entry.
func (s *Server) resultCached(h http.HandlerFunc) http.HandlerFunc {
	if s.rcache == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			h(w, r)
			return
		}
		q := r.URL.Query()
		cmd := q.Get("cmd")
		if cmd == "" {
			h(w, r)
			return
		}
		if o, ok := sched.ParseClass(q.Get("class")); ok && o == sched.Batch {
			h(w, r)
			return
		}
		format := q.Get("format")
		if format == "" {
			format = "html"
		}
		ps := s.probePool.Get().(*probeState)
		key, cp, ok := ps.sess.ResultKey(cmd, ps.key[:0])
		ps.key = key
		if !ok {
			s.probePool.Put(ps)
			h(w, r)
			return
		}
		key = append(key, 0)
		key = append(key, format...)
		key = append(key, 0)
		key = strconv.AppendInt(key, int64(s.opt.MaxRows), 10)
		ps.key = key
		if e := s.rcache.Probe(key, s.sdb.DB.SchemaVersion()); e != nil {
			s.probePool.Put(ps)
			hdr := w.Header()
			hdr.Set("X-Query-Class", e.Class)
			hdr.Set("ETag", e.ETag)
			hdr.Set("Cache-Control", "private, no-cache")
			if etagMatch(r.Header.Get("If-None-Match"), e.ETag) {
				s.rcache.NoteNotModified()
				w.WriteHeader(http.StatusNotModified)
				return
			}
			hdr.Set("Content-Type", e.ContentType)
			_, _ = w.Write(e.Body)
			return
		}
		fs := &fillState{key: append([]byte(nil), key...)}
		if cp != nil && cp.ResultCacheable() {
			fs.etag = resultcache.ETag(key, cp.VersionDigest())
		}
		s.probePool.Put(ps)
		h(w, r.WithContext(context.WithValue(r.Context(), fillKey{}, fs)))
	}
}

// etagMatch reports whether an If-None-Match header value matches the
// entry's strong ETag (exactly, or via the `*` wildcard).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == etag || header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// maybeFill stores a successfully serialized response into the result
// cache. Only interactive-class results of single cacheable SELECTs
// whose plan reads no TVFs are stored: batch-class sweeps would evict
// the hot point lookups the cache exists for, and the other exclusions
// are correctness (see Result.Cacheable and
// CompiledPlan.ResultCacheable). The entry's ETag and validity witness
// come from the executed plan, so a fill races DML safely — if versions
// moved mid-execution the witness simply never validates and the entry
// dies on first probe.
func (s *Server) maybeFill(fs *fillState, res *sqlengine.Result, body []byte, contentType string) {
	if s.rcache == nil || fs == nil || res == nil || body == nil {
		return
	}
	if !res.Cacheable || res.Class != sqlengine.ClassInteractive {
		return
	}
	cp := res.Compiled()
	if cp == nil || !cp.ResultCacheable() {
		return
	}
	etag := resultcache.ETag(fs.key, cp.VersionDigest())
	s.rcache.Store(fs.key, etag, contentType, res.Class.String(), body, cp)
}

// gateState carries one admitted request's run ticket and outcome through
// the request context.
type gateState struct {
	tk  *sched.Ticket
	err error
}

type gateKey struct{}

// classifySQL decides the workload class of an ad-hoc SQL request from
// the plan cache alone (Session.ClassifyCached: lex + normalize + a
// counter-free cache peek — no parsing or compilation runs before
// admission, so shed traffic cannot make the server compile or churn the
// cache). An empty form renders the search page and admits as
// interactive; a shape the cache does not know admits conservatively as
// batch — its admitted execution compiles and caches the plan, after
// which every request of that shape classifies precisely.
func (s *Server) classifySQL(r *http.Request) sched.Class {
	var cmd string
	switch r.Method {
	case http.MethodGet:
		cmd = r.URL.Query().Get("cmd")
	case http.MethodPost:
		// ParseForm memoizes into r.PostForm, so the handler's own call
		// sees the already-consumed body.
		if err := r.ParseForm(); err == nil {
			cmd = r.PostForm.Get("cmd")
		}
	}
	if cmd == "" {
		return sched.Interactive
	}
	ps := s.probePool.Get().(*probeState)
	class, ok := ps.sess.ClassifyCached(cmd)
	s.probePool.Put(ps)
	if ok && class == sqlengine.ClassInteractive {
		return sched.Interactive
	}
	return sched.Batch
}

// retryAfter is the per-class backoff hint on 503s: a shed interactive
// query can retry almost immediately (its reservation drains in
// milliseconds), a shed batch scan should wait for real capacity.
func retryAfter(class sched.Class) string {
	if class == sched.Batch {
		return "5"
	}
	return "1"
}

// gate wraps a query-running handler with class-tagged admission control
// and per-query context plumbing: classify picks the request's workload
// class, the request is admitted through the class's queue (503 +
// Retry-After when it is full), its context gets the server's query
// timeout, and the ticket — which the exec helpers charge with scan
// work — is released with the query's outcome when the handler returns.
// Clients may downgrade themselves with ?class=batch (a polite analyst
// keeping a scripted sweep out of the interactive reservation);
// escalation to interactive is deliberately not honored — on a public
// server the reservation would otherwise be one query parameter away
// from being a batch queue. Every gated response, including rejections,
// carries X-Query-Class so clients learn which queue they were scheduled
// on. Cheap endpoints (home, schema, the /x/ status pages) stay ungated
// so operators can observe an overloaded server.
func (s *Server) gate(label string, classify func(*http.Request) sched.Class, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		class := classify(r)
		q := r.URL.Query()
		if o, ok := sched.ParseClass(q.Get("class")); ok && o == sched.Batch {
			class = sched.Batch
		}
		w.Header().Set("X-Query-Class", class.String())
		if !s.Ready() {
			shedDraining(w, r, class)
			return
		}
		// Batch admissions carry the analyst's identity so the scheduler's
		// per-user fair share can tell floods apart; the interactive
		// reservation has no identity (it is never queued long enough to
		// need one).
		user := ""
		if class == sched.Batch {
			if user = r.Header.Get("X-User"); user == "" {
				user = q.Get("user")
			}
		}
		tk, err := s.sched.AdmitUser(r.Context(), class, label, user)
		if err != nil {
			if errors.Is(err, sched.ErrOverloaded) {
				// The §7 spike answer: a well-formed, retryable rejection.
				msg := fmt.Sprintf("SkyServer overloaded: %s queue full, try again shortly", class)
				if isAPI(r) {
					writeAPIError(w, http.StatusServiceUnavailable, class.String(), retryAfterSecs(class), msg)
					return
				}
				w.Header().Set("Retry-After", retryAfter(class))
				http.Error(w, msg, http.StatusServiceUnavailable)
				return
			}
			// The client went away while queued; nobody is listening.
			if isAPI(r) {
				writeAPIError(w, statusClientClosedRequest, class.String(), 0, err.Error())
				return
			}
			http.Error(w, err.Error(), statusClientClosedRequest)
			return
		}
		ctx := r.Context()
		if s.opt.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opt.Timeout)
			defer cancel()
		}
		// Transient page-read failures retry under a per-query budget; a
		// query that keeps hitting bad reads fails instead of spinning.
		ctx = storage.WithRetryBudget(ctx, storage.DefaultQueryRetryBudget)
		gs := &gateState{tk: tk}
		defer func() {
			// A panicking handler releases its slot as a failure before the
			// panic continues to the recovery middleware — a poisoned query
			// must not leak scheduler capacity.
			if rec := recover(); rec != nil {
				if gs.err == nil {
					gs.err = fmt.Errorf("handler panic: %v", rec)
				}
				tk.Done(gs.err)
				panic(rec)
			}
			tk.Done(gs.err)
		}()
		h(w, r.WithContext(context.WithValue(ctx, gateKey{}, gs)))
	}
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// aborted by its own client.
const statusClientClosedRequest = 499

// exec runs one statement batch under the request's context and charges
// its scan work to the request's run ticket.
func (s *Server) exec(r *http.Request, sess *sqlengine.Session, sql string) (*sqlengine.Result, error) {
	res, err := sess.ExecContext(r.Context(), sql, s.execOptions())
	s.noteQuery(r, res, err)
	return res, err
}

// execTolerant is exec for best-effort side queries whose failure the
// handler absorbs (the explorer's spectrum and neighbors panels): work is
// still charged, but an error does not mark the request failed in the
// /x/sched statistics.
func (s *Server) execTolerant(r *http.Request, sess *sqlengine.Session, sql string) (*sqlengine.Result, error) {
	res, err := sess.ExecContext(r.Context(), sql, s.execOptions())
	s.noteQuery(r, res, nil)
	return res, err
}

// execStream is exec for the streaming path.
func (s *Server) execStream(r *http.Request, sess *sqlengine.Session, sql string, sink sqlengine.ResultBatchFunc) (*sqlengine.Result, error) {
	res, err := sess.ExecStreamContext(r.Context(), sql, s.execOptions(), sink)
	s.noteQuery(r, res, err)
	return res, err
}

func (s *Server) noteQuery(r *http.Request, res *sqlengine.Result, err error) {
	gs, _ := r.Context().Value(gateKey{}).(*gateState)
	if gs == nil {
		return
	}
	if res != nil {
		gs.tk.AddWork(res.PagesScanned, res.RowsScanned)
	}
	if err != nil {
		gs.err = err
	}
}

// Handler returns the HTTP handler with panic recovery and access logging
// attached.
func (s *Server) Handler() http.Handler {
	return s.recovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.logAccess(r)
		s.mux.ServeHTTP(w, r)
	}))
}

func (s *Server) logAccess(r *http.Request) {
	if s.opt.AccessLog == nil {
		return
	}
	lang := "en"
	if strings.HasPrefix(r.URL.Path, "/jp/") {
		lang = "jp"
	} else if strings.HasPrefix(r.URL.Path, "/de/") {
		lang = "de"
	}
	isPage := !strings.ContainsAny(r.URL.Path, ".") ||
		strings.HasSuffix(r.URL.Path, ".asp")
	flags := "-"
	if isPage {
		flags = "P"
	}
	if strings.Contains(strings.ToLower(r.UserAgent()), "bot") {
		flags += "C"
	}
	client := r.RemoteAddr
	if i := strings.LastIndex(client, ":"); i > 0 {
		client = client[:i]
	}
	if client == "" {
		client = "unknown"
	}
	s.logMu.Lock()
	fmt.Fprintf(s.opt.AccessLog, "%s %s %s %s %s\n",
		time.Now().UTC().Format(time.RFC3339), client, flags, lang, r.URL.Path)
	s.logMu.Unlock()
}

func (s *Server) execOptions() sqlengine.ExecOptions {
	return sqlengine.ExecOptions{
		MaxRows:        s.opt.MaxRows,
		Timeout:        s.opt.Timeout,
		MaxConcurrency: s.opt.MaxScanWorkers,
	}
}

// ---- home & gallery ----

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != "/en/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>SkyServer</title></head><body>
<h1>SkyServer</h1>
<p>Public access to the synthetic Sloan Digital Sky Survey data.</p>
<ul>
<li><a href="/en/tools/places/">Famous places</a></li>
<li><a href="/en/tools/search/sql.asp">SQL search</a></li>
<li><a href="/en/tools/navi/objects?ra1=184.9&ra2=185.1&dec1=-0.6&dec2=-0.4">Navigate</a></li>
<li><a href="/en/help/docs/browser.asp">Schema browser</a></li>
</ul></body></html>`)
}

// handlePlaces is the "coffee-table atlas of famous places" (§2): the
// brightest big galaxies, linked to their explorer pages.
func (s *Server) handlePlaces(w http.ResponseWriter, r *http.Request) {
	sess := sqlengine.NewSession(s.sdb.DB)
	res, err := s.exec(r, sess, `
		select top 20 objID, ra, dec, r, isoA_r
		from Galaxy
		order by r asc`)
	if err != nil {
		httpError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<html><body><h1>Famous Places</h1><ul>")
	for _, row := range res.Rows {
		fmt.Fprintf(w, `<li><a href="/en/tools/explore/obj.asp?id=%d">Object %d</a> (ra %.4f, dec %.4f, r=%.2f)</li>`,
			row[0].I, row[0].I, row[1].F, row[2].F, row[3].F)
	}
	fmt.Fprint(w, "</ul></body></html>")
}

// ---- SQL endpoint ----

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var cmd string
	switch r.Method {
	case http.MethodGet:
		cmd = r.URL.Query().Get("cmd")
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			httpError(w, r, err)
			return
		}
		cmd = r.PostForm.Get("cmd")
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "html"
	}
	if cmd == "" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>SQL Search</h1>
<form method="post"><textarea name="cmd" rows="8" cols="80">select top 10 objID, ra, dec, r from Galaxy order by r</textarea>
<br><input type="submit" value="Submit"></form>
<p>The public server limits queries to 1,000 rows or 30 seconds.</p></body></html>`)
		return
	}
	sess := sqlengine.NewSession(s.sdb.DB)
	// A result-cache miss attaches a fillState: the serialized bytes
	// about to stream to this client also populate the cache, and the
	// response carries the ETag when the statement's shape is known
	// (first-ever executions learn their ETag at fill time instead).
	fs, _ := r.Context().Value(fillKey{}).(*fillState)
	if fs != nil && fs.etag == "" {
		// First-ever execution of an unknown shape: compile and store the
		// plan now (the admitted request pays the compile it was going to
		// pay anyway; the exec below hits the plan cache) so even this
		// response can carry its ETag. Errors are ignored — exec surfaces
		// them with the proper status.
		if _, err := sess.Classify(cmd); err == nil {
			if _, cp, ok := sess.ResultKey(cmd, nil); ok && cp != nil && cp.ResultCacheable() {
				fs.etag = resultcache.ETag(fs.key, cp.VersionDigest())
			}
		}
	}
	if fs != nil && fs.etag != "" {
		w.Header().Set("ETag", fs.etag)
		w.Header().Set("Cache-Control", "private, no-cache")
	}
	// Stream the result set batch-wise straight from the executor when the
	// format supports it; fits needs the row count in its header first and
	// streams in two passes over the plan instead.
	if newBatchSerializer(nil, format) == nil {
		if !strings.EqualFold(format, "fits") {
			clearValidators(w)
			httpError(w, r, errUnknownFormat(format))
			return
		}
		s.streamFITS(w, r, fs, sess, cmd)
		return
	}
	var fw *fillWriter
	out := http.ResponseWriter(w)
	if fs != nil {
		fw = &fillWriter{ResponseWriter: w, max: s.maxEntry}
		out = fw
	}
	sw := newBatchSerializer(out, format)
	res, err := s.execStream(r, sess, cmd, func(cols []string, b *val.Batch) error {
		return sw.writeBatch(cols, b)
	})
	if err != nil {
		if !sw.started() {
			clearValidators(w)
			httpError(w, r, err)
			return
		}
		// Mid-stream failure: the status line is already on the wire, so
		// close the document with an error marker instead of leaving a
		// silently truncated body.
		sw.abort(err)
		return
	}
	if err := sw.finish(res); err == nil && fw != nil {
		if body, contentType, ok := fw.captured(); ok {
			s.maybeFill(fs, res, body, contentType)
		}
	}
}

// clearValidators drops the optimistically set ETag/Cache-Control before
// an error response: the error body is not the entity the tag names.
func clearValidators(w http.ResponseWriter) {
	w.Header().Del("ETag")
	w.Header().Del("Cache-Control")
}

// appendFITSHeader renders the FITS ASCII-table header (80-column cards)
// for the given schema and row count into dst.
func appendFITSHeader(dst []byte, cols []string, rows int64) []byte {
	line := func(dst []byte, s string) []byte {
		dst = append(dst, s...)
		for n := 80 - len(s); n > 0; n-- {
			dst = append(dst, ' ')
		}
		return append(dst, '\n')
	}
	dst = line(dst, "XTENSION= 'TABLE   '")
	dst = line(dst, fmt.Sprintf("NAXIS2  = %d", rows))
	dst = line(dst, fmt.Sprintf("TFIELDS = %d", len(cols)))
	for i, c := range cols {
		dst = line(dst, fmt.Sprintf("TTYPE%-3d= '%s'", i+1, c))
	}
	return line(dst, "END")
}

// appendFITSRow renders one fixed-width data row (20-character
// right-aligned fields) into dst, returning the value scratch for reuse.
func appendFITSRow(dst []byte, row val.Row, scratch []byte) ([]byte, []byte) {
	for i, v := range row {
		if i > 0 {
			dst = append(dst, ' ')
		}
		scratch = v.AppendString(scratch[:0])
		for n := 20 - len(scratch); n > 0; n-- {
			dst = append(dst, ' ')
		}
		dst = append(dst, scratch...)
	}
	return append(dst, '\n'), scratch
}

// appendFITS renders the FITS ASCII-table flavour of a materialized
// result into dst — the exported WriteResult path, where the caller
// already holds the full result.
func appendFITS(dst []byte, res *sqlengine.Result) []byte {
	dst = appendFITSHeader(dst, res.Cols, int64(len(res.Rows)))
	var scratch []byte
	for _, row := range res.Rows {
		dst, scratch = appendFITSRow(dst, row, scratch)
	}
	return dst
}

// streamFITS serves a FITS ASCII table in two passes over the plan: the
// format's header leads with NAXIS2 (the row count), so pass one executes
// the query only counting rows, then pass two re-executes and streams the
// fixed-width rows behind the now-known header. Nothing is materialized,
// which lifts the old maxentry-budget 413 for large FITS results; the
// result cache still fills through the capped fillWriter tee when the
// body fits. The survey is read-only between the passes, but a row-count
// drift would corrupt the header, so it is checked and surfaced as a
// mid-stream error marker.
func (s *Server) streamFITS(w http.ResponseWriter, r *http.Request, fs *fillState, sess *sqlengine.Session, cmd string) {
	var rows int64
	if _, err := s.execStream(r, sess, cmd, func(cols []string, b *val.Batch) error {
		rows += int64(b.Len())
		return nil
	}); err != nil {
		clearValidators(w)
		httpError(w, r, err)
		return
	}
	var fw *fillWriter
	out := http.ResponseWriter(w)
	if fs != nil {
		fw = &fillWriter{ResponseWriter: w, max: s.maxEntry}
		out = fw
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var buf, scratch []byte
	var rowScratch val.Row
	headerSent := false
	var streamed int64
	res, err := s.execStream(r, sess, cmd, func(cols []string, b *val.Batch) error {
		if !headerSent {
			headerSent = true
			if _, err := out.Write(appendFITSHeader(nil, cols, rows)); err != nil {
				return err
			}
		}
		if rowScratch == nil {
			rowScratch = make(val.Row, b.Width())
		}
		buf = buf[:0]
		if err := b.EachErr(func(i int) error {
			streamed++
			if streamed > rows {
				return fmt.Errorf("web: result changed between fits passes")
			}
			buf, scratch = appendFITSRow(buf, b.RowAt(i, rowScratch), scratch)
			return nil
		}); err != nil {
			return err
		}
		_, err := out.Write(buf)
		return err
	})
	if err == nil && streamed != rows {
		err = fmt.Errorf("web: result changed between fits passes")
	}
	if err != nil {
		if !headerSent {
			clearValidators(w)
			httpError(w, r, err)
			return
		}
		// The header is committed with the pass-one count; close with an
		// error marker so the client can tell a partial body from a
		// complete one.
		fmt.Fprintf(w, "# error: result truncated: %s\n", err)
		return
	}
	if !headerSent {
		// Empty result: the sink never ran, emit the header alone.
		if _, err := out.Write(appendFITSHeader(nil, res.Cols, 0)); err != nil {
			return
		}
	}
	if fw != nil {
		if body, contentType, ok := fw.captured(); ok {
			s.maybeFill(fs, res, body, contentType)
		}
	}
}

// WriteResult renders a materialized result set in the requested format:
// csv, json, xml, html, or fits (an ASCII FITS-style table). The streaming
// formats delegate to the same batch serializers the SQL endpoint uses, so
// each wire format has exactly one implementation.
func WriteResult(w http.ResponseWriter, res *sqlengine.Result, format string) error {
	if sw := newBatchSerializer(w, format); sw != nil {
		b := val.NewBatch(len(res.Cols))
		for _, row := range res.Rows {
			b.AppendRow(row)
			if b.Full() {
				if err := sw.writeBatch(res.Cols, b); err != nil {
					return err
				}
				b.Reset()
			}
		}
		if b.Size() > 0 {
			if err := sw.writeBatch(res.Cols, b); err != nil {
				return err
			}
		}
		return sw.finish(res)
	}
	if !strings.EqualFold(format, "fits") {
		return errUnknownFormat(format)
	}
	// FITS ASCII-table flavour: an 80-column header then fixed rows. The
	// caller already holds the materialized result, so the row count is
	// free; the SQL endpoint instead streams in two passes (streamFITS).
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := w.Write(appendFITS(nil, res))
	return err
}

func errUnknownFormat(format string) error {
	return fmt.Errorf("web: unknown format %q (csv, json, xml, html, fits)", format)
}

// ---- explorer ----

// handleExplore is the drill-down of Figure 2: a summary of one object's
// attributes, its spectrum if any, and its neighbors; full=1 dumps the
// whole record.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing id", http.StatusBadRequest)
		return
	}
	sess := sqlengine.NewSession(s.sdb.DB)
	full := r.URL.Query().Get("full") == "1"
	cols := "objID, run, rerun, camcol, field, obj, mode, type, ra, dec, u, g, r, i, z, flags, parentID"
	if full {
		cols = "*"
	}
	res, err := s.exec(r, sess, fmt.Sprintf("select %s from PhotoObj where objID = %d", cols, id))
	if err != nil {
		httpError(w, r, err)
		return
	}
	if len(res.Rows) == 0 {
		http.Error(w, "no such object", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><body><h1>Object %d</h1><table border=\"1\">", id)
	for i, c := range res.Cols {
		fmt.Fprintf(w, "<tr><th>%s</th><td>%s</td></tr>",
			html.EscapeString(c), html.EscapeString(res.Rows[0][i].String()))
	}
	fmt.Fprint(w, "</table>")

	spec, err := s.execTolerant(r, sess, fmt.Sprintf(
		"select specObjID, z, zConf, specClass from SpecObj where objID = %d", id))
	if err == nil && len(spec.Rows) > 0 {
		fmt.Fprintf(w, "<h2>Spectrum</h2><p>specObjID %d, z = %s (confidence %s)</p>",
			spec.Rows[0][0].I, spec.Rows[0][1].String(), spec.Rows[0][2].String())
	}
	nb, err := s.execTolerant(r, sess, fmt.Sprintf(
		"select top 10 neighborObjID, distance from Neighbors where objID = %d order by distance", id))
	if err == nil && len(nb.Rows) > 0 {
		fmt.Fprint(w, "<h2>Neighbors</h2><ul>")
		for _, row := range nb.Rows {
			fmt.Fprintf(w, `<li><a href="/en/tools/explore/obj.asp?id=%d">%d</a> at %.3f'</li>`,
				row[0].I, row[0].I, row[1].F)
		}
		fmt.Fprint(w, "</ul>")
	}
	if !full {
		fmt.Fprintf(w, `<p><a href="/en/tools/explore/obj.asp?id=%d&full=1">whole record</a></p>`, id)
	}
	fmt.Fprint(w, "</body></html>")
}

// ---- navigation: cutouts and rectangles ----

// handleCutout serves an image tile for the field containing (ra, dec) at
// the requested zoom — the pan-zoom interface of §2/Figure 2.
func (s *Server) handleCutout(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ra, err1 := strconv.ParseFloat(q.Get("ra"), 64)
	dec, err2 := strconv.ParseFloat(q.Get("dec"), 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad ra/dec", http.StatusBadRequest)
		return
	}
	zoom := 1
	if z := q.Get("zoom"); z != "" {
		if zi, err := strconv.Atoi(z); err == nil {
			zoom = zi
		}
	}
	sess := sqlengine.NewSession(s.sdb.DB)
	res, err := s.exec(r, sess, fmt.Sprintf(`
		select f.fieldID from Field f
		where f.raMin <= %g and f.raMax > %g and f.decMin <= %g and f.decMax > %g`,
		ra, ra, dec, dec))
	if err != nil {
		httpError(w, r, err)
		return
	}
	if len(res.Rows) == 0 {
		http.Error(w, "outside the survey footprint", http.StatusNotFound)
		return
	}
	fieldID := res.Rows[0][0].I
	tile, err := s.exec(r, sess, fmt.Sprintf(
		"select img from Frame where fieldID = %d and zoom = %d", fieldID, zoom))
	if err != nil {
		httpError(w, r, err)
		return
	}
	if len(tile.Rows) == 0 || tile.Rows[0][0].IsNull() {
		http.Error(w, "no tile at that zoom", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(tile.Rows[0][0].B)
}

// handleRect lists the objects inside an (ra, dec) rectangle via the
// spatial TVF — the "all objects in a certain rectangular area" request.
func (s *Server) handleRect(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var b [4]float64
	for i, name := range []string{"ra1", "ra2", "dec1", "dec2"} {
		v, err := strconv.ParseFloat(q.Get(name), 64)
		if err != nil {
			http.Error(w, "bad "+name, http.StatusBadRequest)
			return
		}
		b[i] = v
	}
	sess := sqlengine.NewSession(s.sdb.DB)
	res, err := s.exec(r, sess, fmt.Sprintf(
		"select objID, ra, dec, type, mode from fGetObjFromRect(%g, %g, %g, %g)",
		b[0], b[1], b[2], b[3]))
	if err != nil {
		httpError(w, r, err)
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if err := WriteResult(w, res, format); err != nil {
		httpError(w, r, err)
	}
}

// ---- schema browser ----

// schemaDoc is the metadata feed the SkyServerQA object browser renders
// (§4: tables, columns, types, indexes, constraints, comments).
type schemaDoc struct {
	Tables []tableDoc `json:"tables"`
	Views  []viewDoc  `json:"views"`
}

type tableDoc struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Rows        uint64      `json:"rows"`
	DataBytes   uint64      `json:"dataBytes"`
	IndexBytes  uint64      `json:"indexBytes"`
	Columns     []columnDoc `json:"columns"`
	Indexes     []indexDoc  `json:"indexes"`
	ForeignKeys []fkDoc     `json:"foreignKeys"`
	PrimaryKey  []string    `json:"primaryKey"`
}

type columnDoc struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Nullable    bool   `json:"nullable"`
	Description string `json:"description"`
}

type indexDoc struct {
	Name     string   `json:"name"`
	Keys     []string `json:"keys"`
	Included []string `json:"included,omitempty"`
}

type fkDoc struct {
	Name       string   `json:"name"`
	Columns    []string `json:"columns"`
	References string   `json:"references"`
}

type viewDoc struct {
	Name        string `json:"name"`
	Base        string `json:"base"`
	Where       string `json:"where"`
	Description string `json:"description"`
}

// SchemaDoc builds the metadata document for a database.
func SchemaDoc(db *sqlengine.DB) schemaDoc {
	doc := schemaDoc{}
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			continue
		}
		td := tableDoc{
			Name: t.Name, Description: t.Desc,
			Rows: t.Rows(), DataBytes: t.DataBytes(), IndexBytes: t.IndexBytes(),
		}
		for _, c := range t.Cols {
			td.Columns = append(td.Columns, columnDoc{
				Name: c.Name, Type: c.Kind.String(), Nullable: !c.NotNull, Description: c.Desc,
			})
		}
		for _, pk := range t.PKCols {
			td.PrimaryKey = append(td.PrimaryKey, t.Cols[pk].Name)
		}
		for _, ix := range t.Indexes() {
			id := indexDoc{Name: ix.Name}
			for _, k := range ix.KeyCols {
				id.Keys = append(id.Keys, t.Cols[k].Name)
			}
			for _, k := range ix.InclCols {
				id.Included = append(id.Included, t.Cols[k].Name)
			}
			td.Indexes = append(td.Indexes, id)
		}
		for _, fk := range t.ForeignKeys() {
			fd := fkDoc{Name: fk.Name, References: fk.RefTable}
			for _, c := range fk.Cols {
				fd.Columns = append(fd.Columns, t.Cols[c].Name)
			}
			td.ForeignKeys = append(td.ForeignKeys, fd)
		}
		doc.Tables = append(doc.Tables, td)
	}
	for _, name := range db.ViewNames() {
		v, ok := db.View(name)
		if !ok {
			continue
		}
		doc.Views = append(doc.Views, viewDoc{
			Name: v.Name, Base: v.Base, Where: v.Where, Description: v.Desc,
		})
	}
	return doc
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(SchemaDoc(s.sdb.DB))
}

// handlePlanCache reports the shared plan cache's hit/miss/invalidation
// counters — repeated HTTP traffic (the explorer's point lookups, the
// navigator's rectangles) executes from cached plans, and benchmarks and
// operators read the evidence here.
func (s *Server) handlePlanCache(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.sdb.DB.Plans().Stats())
}

// handleResultCache reports the serialized result cache's counters —
// hits (responses answered before admission), 304s, fills, lazy
// invalidations, evictions, and resident bytes. Ungated like the other
// /x/ status pages; a server with the cache disabled reports zeros.
// Field reference: docs/ops.md.
func (s *Server) handleResultCache(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var st resultcache.Stats
	if s.rcache != nil {
		st = s.rcache.Stats()
	}
	_ = json.NewEncoder(w).Encode(st)
}

// handleSched reports the query scheduler: per-class admission counters
// (interactive and batch slots, queue occupancy, admitted / borrowed /
// rejected / queue waits), cross-class totals, the per-query recent
// history, and the persistent scan-worker pool's activity. Ungated, so
// it stays readable while the server sheds load. Field reference:
// docs/ops.md.
func (s *Server) handleSched(w http.ResponseWriter, r *http.Request) {
	doc := struct {
		Admission sched.Stats     `json:"admission"`
		ScanPool  sched.PoolStats `json:"scanPool"`
	}{
		Admission: s.sched.Stats(),
		ScanPool:  s.sdb.DB.FileGroup().ScanPoolStats(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// handleShards reports the HTM-trixel shard layout and its routing
// counters: per-shard trixel range, pages scanned, queries routed,
// physical reads and pool workers, plus the spatial/full routing split
// and the prune ratio (fraction of shard work spatial routing avoided).
// Ungated, like the other status pages. Field reference: docs/ops.md.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.sdb.DB.Shards().Stats())
}

// handleLoadEvents shows the loader journal — §9.4's "simple web user
// interface [that] displays the load-events table".
func (s *Server) handleLoadEvents(w http.ResponseWriter, r *http.Request) {
	sess := sqlengine.NewSession(s.sdb.DB)
	res, err := s.exec(r, sess,
		"select eventID, tableName, sourceFile, sourceRows, insertedRows, status from loadEvents order by eventID")
	if err != nil {
		httpError(w, r, err)
		return
	}
	if err := WriteResult(w, res, "html"); err != nil {
		httpError(w, r, err)
	}
}

// httpError maps a query error onto its HTTP response. Legacy routes get
// the classic text body; /api/ routes get the JSON envelope, with the
// workload class echoed from the X-Query-Class header the gate set.
func httpError(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	msg := err.Error()
	retry := 0
	if strings.Contains(msg, "sql:") {
		code = http.StatusBadRequest
	}
	switch {
	case errors.Is(err, sqlengine.ErrTimeout):
		code = http.StatusRequestTimeout
	case errors.Is(err, sqlengine.ErrCanceled):
		// The client abandoned the request; the status is for the log.
		code = statusClientClosedRequest
	case errors.Is(err, storage.ErrTransient):
		// Retries and the query budget are spent; the fault may clear, so
		// tell the client to try again rather than blaming the query.
		code = http.StatusServiceUnavailable
		retry = 1
	case errors.Is(err, storage.ErrChecksum), errors.Is(err, storage.ErrScanPanic):
		// Data-integrity and isolated-panic failures are server faults.
		code = http.StatusInternalServerError
	}
	if isAPI(r) {
		writeAPIError(w, code, w.Header().Get("X-Query-Class"), retry, msg)
		return
	}
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	}
	http.Error(w, msg, code)
}
