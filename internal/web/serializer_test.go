package web

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"skyserver/internal/val"
)

// TestCSVFieldMatchesEncodingCSV locks the allocation-free CSV writer to
// encoding/csv's exact quoting behavior for every field shape the engine
// can emit.
func TestCSVFieldMatchesEncodingCSV(t *testing.T) {
	cases := []string{
		"", "plain", "123", "-4.75", "NULL",
		"with,comma", `with"quote`, "with\nnewline", "with\rcr",
		" leading space", "\tleading tab", "trailing space ",
		"ünïcode", "emoji 🌌", "a,b\"c\nd",
	}
	for _, field := range cases {
		var ref bytes.Buffer
		w := csv.NewWriter(&ref)
		if err := w.Write([]string{field, "x"}); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		got := appendCSVField(nil, []byte(field))
		got = append(got, ",x\n"...)
		if string(got) != ref.String() {
			t.Errorf("field %q: got %q, encoding/csv wrote %q", field, got, ref.String())
		}
	}
}

// TestJSONValueMatchesEncodingJSON locks the direct-append JSON encoder to
// json.Marshal's exact output for ints, floats (including the e-notation
// cleanup), and strings (including the default HTML escaping).
func TestJSONValueMatchesEncodingJSON(t *testing.T) {
	values := []val.Value{
		val.Null(),
		val.Int(0), val.Int(-1), val.Int(9007199254740993), val.Int(math.MinInt64),
		val.Float(0), val.Float(-0.5), val.Float(184.95000000000002),
		val.Float(1e21), val.Float(1.5e-7), val.Float(-2.5e21), val.Float(3.14159265358979),
		val.Float(math.SmallestNonzeroFloat64), val.Float(math.MaxFloat64),
		val.Str(""), val.Str("plain"), val.Str(`quote " backslash \`),
		val.Str("ctrl \x01\x1f tab\t nl\n cr\r"), val.Str("<script>&amp;</script>"),
		val.Str("unicode ünïcode 🌌"), val.Str("line \u2028 sep \u2029"),
		val.Bytes([]byte{0xde, 0xad, 0xbe, 0xef}),
	}
	for _, v := range values {
		got := string(appendJSONValue(nil, v))
		var want []byte
		var err error
		switch v.K {
		case val.KindNull:
			want = []byte("null")
		case val.KindInt:
			want, err = json.Marshal(v.I)
		case val.KindFloat:
			want, err = json.Marshal(v.F)
		case val.KindString:
			want, err = json.Marshal(v.S)
		default:
			want, err = json.Marshal("0xdeadbeef")
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("value %v: got %s, json.Marshal wrote %s", v, got, want)
		}
	}
	// Invalid UTF-8 follows json.Marshal's replacement-character behavior.
	bad := "ok\xffbad"
	got := string(appendJSONValue(nil, val.Str(bad)))
	want, _ := json.Marshal(bad)
	if got != string(want) {
		t.Errorf("invalid UTF-8: got %s, want %s", got, want)
	}
	// NaN/Inf: json.Marshal errors; the stream encoder keeps the document
	// valid with null instead.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(appendJSONValue(nil, val.Float(f))); got != "null" {
			t.Errorf("non-finite %v: got %s, want null", f, got)
		}
	}
}

// TestPlanCacheEndpoint drives the counters endpoint: repeated identical
// HTTP queries must show up as plan-cache hits. The result cache is
// disabled — it would answer the repeats from serialized bytes before
// the engine (and its plan cache) ever saw them.
func TestPlanCacheEndpoint(t *testing.T) {
	srv := NewServer(survey(t), Options{Public: true, ResultCacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	q := "select objID from PhotoObj where objID = 1"
	for i := 0; i < 3; i++ {
		if code, body, _ := get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode(q)); code != 200 {
			t.Fatalf("sql: %d %s", code, body)
		}
	}
	code, body, _ := get(t, ts.URL+"/x/plancache")
	if code != 200 {
		t.Fatalf("plancache: %d", code)
	}
	var st struct {
		Hits   int64 `json:"hits"`
		Stores int64 `json:"stores"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("plancache body: %v (%s)", err, body)
	}
	if st.Hits < 2 || st.Stores < 1 {
		t.Errorf("repeated HTTP query did not hit the cache: %s", body)
	}
}

// TestCSVStreamOutputStable pins the exact wire bytes of a small CSV
// result, including a quoted string field.
func TestCSVStreamOutputStable(t *testing.T) {
	ts := testServer(t, nil)
	code, body, hdr := get(t, ts.URL+"/x/sql?format=csv&cmd="+urlEncode("select 1 as a, 'x,y' as b, 2.5 as c"))
	if code != 200 {
		t.Fatalf("csv: %d %s", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/csv") {
		t.Errorf("content type %q", hdr.Get("Content-Type"))
	}
	if body != "a,b,c\n1,\"x,y\",2.5\n" {
		t.Errorf("csv body %q", body)
	}
}
