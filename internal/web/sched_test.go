package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skyserver/internal/schema"
	"skyserver/internal/sqlengine"
	"skyserver/internal/traffic"
)

// trafficRequests maps the traffic generator's page mix (the §7 site map)
// to concrete requests this server implements, substituting a live objID
// where the path needs one. Paths outside the reproduced surface are
// dropped, queries rotate through a small template set — exactly the
// template-driven workload the plan cache and scheduler are built for.
func trafficRequests(t *testing.T, sdb *schema.SkyDB, n int) []string {
	t.Helper()
	sess := sqlengine.NewSession(sdb.DB)
	res, err := sess.Exec("select top 5 objID from Galaxy order by r asc", sqlengine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no galaxies in the survey")
	}
	ids := make([]int64, len(res.Rows))
	for i, row := range res.Rows {
		ids[i] = row[0].I
	}
	sqlTemplates := []string{
		"/x/sql?format=csv&cmd=" + urlq("select top 7 objID, ra, dec from Galaxy order by r asc"),
		"/x/sql?format=json&cmd=" + urlq("select count(*) from PhotoObj where (r - g) > 1"),
		"/x/sql?format=csv&cmd=" + urlq("select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1"),
	}

	var log bytes.Buffer
	if _, err := traffic.Generate(traffic.Config{Seed: 7, BaseSessions: 2, Days: 3}, &log); err != nil {
		t.Fatal(err)
	}
	var out []string
	i := 0
	for _, line := range strings.Split(log.String(), "\n") {
		if line == "" {
			continue
		}
		e, err := traffic.ParseLine(line)
		if err != nil {
			t.Fatal(err)
		}
		i++
		switch {
		case strings.HasSuffix(e.Path, "/tools/places/"):
			out = append(out, "/en/tools/places/")
		case strings.Contains(e.Path, "/tools/explore/obj.asp"):
			out = append(out, fmt.Sprintf("/en/tools/explore/obj.asp?id=%d", ids[i%len(ids)]))
		case strings.Contains(e.Path, "/tools/search/sql.asp"):
			out = append(out, sqlTemplates[i%len(sqlTemplates)])
		case strings.Contains(e.Path, "/tools/navi/"):
			out = append(out, "/en/tools/navi/objects?ra1=184.9&ra2=185.1&dec1=-0.6&dec2=-0.4&format=json")
		}
		if len(out) >= n {
			break
		}
	}
	if len(out) < 8 {
		t.Fatalf("traffic mix produced only %d mapped requests", len(out))
	}
	return out
}

func urlq(s string) string { return strings.ReplaceAll(s, " ", "+") }

// elapsedRe masks the one nondeterministic byte range in a JSON response
// (the elapsed-time footer) so payloads can be compared byte for byte.
var elapsedRe = regexp.MustCompile(`"elapsedMs":[0-9.eE+-]+`)

func normalizeBody(b string) string {
	return elapsedRe.ReplaceAllString(b, `"elapsedMs":X`)
}

// TestConcurrentTrafficMix replays the generator's query mix with 32
// client goroutines against an admission-controlled server and checks
// that no response is lost or mangled: every request gets either its
// full, well-formed payload or a well-formed 503 with Retry-After.
func TestConcurrentTrafficMix(t *testing.T) {
	sdb := survey(t)
	// ResultCacheBytes -1: the scheduler-accounting assertions below need
	// every served response to have passed admission.
	srv := NewServer(sdb, Options{Public: true,
		InteractiveSlots: 2, BatchSlots: 2,
		InteractiveQueueDepth: 8, BatchQueueDepth: 8,
		ResultCacheBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := trafficRequests(t, sdb, 96)

	// Expected payloads, fetched serially first: the concurrent replay
	// must reproduce them byte for byte (responses are deterministic).
	want := make(map[string]string, len(reqs))
	for _, p := range reqs {
		if _, ok := want[p]; ok {
			continue
		}
		code, body, _ := get(t, ts.URL+p)
		if code != http.StatusOK {
			t.Fatalf("serial %s: status %d: %s", p, code, body)
		}
		want[p] = normalizeBody(body)
	}

	const goroutines = 32
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(reqs); i += goroutines {
				p := reqs[i]
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					errCh <- fmt.Errorf("%s: %v", p, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- fmt.Errorf("%s: read: %v", p, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if normalizeBody(string(body)) != want[p] {
						errCh <- fmt.Errorf("%s: mangled response (%d bytes, want %d)",
							p, len(body), len(want[p]))
						return
					}
					served.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						errCh <- fmt.Errorf("%s: 503 without Retry-After", p)
						return
					}
					if !strings.Contains(string(body), "overloaded") {
						errCh <- fmt.Errorf("%s: malformed 503 body %q", p, body)
						return
					}
					shed.Add(1)
				default:
					errCh <- fmt.Errorf("%s: unexpected status %d: %s", p, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if served.Load() == 0 {
		t.Error("no request was served")
	}
	t.Logf("served %d, shed %d of %d requests", served.Load(), shed.Load(), len(reqs))

	st := srv.Sched().Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("scheduler not drained: running %d, queued %d", st.Running, st.Queued)
	}
	if got := served.Load(); st.Completed < got {
		t.Errorf("scheduler completed %d < served %d", st.Completed, got)
	}
	if st.PagesScanned == 0 {
		t.Error("no pages charged to the scheduler; per-query stats not wired")
	}
}

// TestSaturationShedsLoad drives far more concurrency than the gate
// admits and checks the §7 property: the overload is shed with 503s and
// goroutines do not pile up behind it.
func TestSaturationShedsLoad(t *testing.T) {
	sdb := survey(t)
	srv := NewServer(sdb, Options{Public: true,
		InteractiveSlots: 1, BatchSlots: 1,
		InteractiveQueueDepth: 1, BatchQueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A heap-scanning aggregate: slow enough that concurrent copies pile
	// into the queue.
	p := "/x/sql?format=csv&cmd=" + urlq("select count(*) from PhotoObj where (petroMag_r - petroMag_g) > 1")
	// Warm up serially so the scan pool exists before the goroutine
	// baseline is taken: the pool is a fixed DB-lifetime cost, not load-
	// driven growth.
	if code, body, _ := get(t, ts.URL+p); code != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", code, body)
	}
	const goroutines = 32
	var ok200, ok503 atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	before := runtime.NumGoroutine()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					errCh <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" || !strings.Contains(string(body), "overloaded") {
						errCh <- fmt.Errorf("malformed 503: header %q body %q",
							resp.Header.Get("Retry-After"), body)
						return
					}
					ok503.Add(1)
				default:
					errCh <- fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if ok200.Load() == 0 {
		t.Error("saturated server served nothing")
	}
	if ok503.Load() == 0 {
		t.Error("saturated server shed nothing; admission control not engaged")
	}
	st := srv.Sched().Stats()
	if st.Rejected != ok503.Load() {
		t.Errorf("scheduler rejected %d, clients saw %d", st.Rejected, ok503.Load())
	}
	t.Logf("under saturation: batch avg queue wait %.1fms (max %.1fms), avg exec %.1fms, served %d, shed %d",
		st.Batch.AvgQueueWaitMs, st.Batch.MaxQueueWaitMs, st.Batch.AvgExecMs, ok200.Load(), ok503.Load())
	// Admission control bounds concurrency: once the burst drains, the
	// goroutine count returns to its neighborhood instead of having
	// grown with the offered load.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+16 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d and stayed there",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stats endpoint stays readable during and after overload.
	code, body, _ := get(t, ts.URL+"/x/sched")
	if code != http.StatusOK {
		t.Fatalf("/x/sched: status %d", code)
	}
	var doc struct {
		Admission struct {
			Admitted int64 `json:"admitted"`
			Rejected int64 `json:"rejected"`
			Batch    struct {
				Slots    int   `json:"slots"`
				Rejected int64 `json:"rejected"`
			} `json:"batch"`
			Interactive struct {
				Slots int `json:"slots"`
			} `json:"interactive"`
		} `json:"admission"`
		ScanPool struct {
			Workers int `json:"workers"`
		} `json:"scanPool"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/x/sched: bad JSON: %v", err)
	}
	if doc.Admission.Rejected == 0 || doc.Admission.Admitted == 0 {
		t.Errorf("/x/sched counters empty: %s", body)
	}
	// The saturating scans are batch class: the per-class breakdown must
	// attribute the shed load there and report the configured slots.
	if doc.Admission.Batch.Slots != 1 || doc.Admission.Interactive.Slots != 1 {
		t.Errorf("/x/sched per-class slots = %d/%d, want 1/1: %s",
			doc.Admission.Interactive.Slots, doc.Admission.Batch.Slots, body)
	}
	if doc.Admission.Batch.Rejected != doc.Admission.Rejected {
		t.Errorf("/x/sched batch rejected %d != total rejected %d",
			doc.Admission.Batch.Rejected, doc.Admission.Rejected)
	}
	if doc.ScanPool.Workers == 0 {
		t.Errorf("/x/sched reports no scan-pool workers: %s", body)
	}
}
