package web

import (
	"encoding/json"
	"log"
	"net/http"
	"runtime/debug"
	"sync"

	"skyserver/internal/sched"
)

// SetReady flips the server's readiness. A server that is not ready sheds
// every query-running request with 503 + Retry-After ("draining") while the
// ungated status endpoints stay reachable — the drain half of graceful
// shutdown (see ServeGraceful).
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the server is accepting query-running requests.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// PanicsRecovered returns the number of handler panics the recovery
// middleware absorbed.
func (s *Server) PanicsRecovered() int64 { return s.panics.Load() }

// recoverWriter tracks whether a handler already started its response, so
// the recovery middleware knows whether a well-formed 500 can still be
// written after a panic. Pooled: the wrapper must not cost an allocation
// per request.
type recoverWriter struct {
	http.ResponseWriter
	started bool
}

func (rw *recoverWriter) WriteHeader(code int) {
	rw.started = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recoverWriter) Write(b []byte) (int, error) {
	rw.started = true
	return rw.ResponseWriter.Write(b)
}

var recoverWriterPool = sync.Pool{New: func() any { return new(recoverWriter) }}

// recovery converts a handler panic into a well-formed 500 (when the
// response has not started; an aborted stream otherwise) instead of letting
// net/http kill the connection with a blank reset, and counts the event for
// /x/health. http.ErrAbortHandler keeps its idiomatic meaning and passes
// through. The admission gate has already released the scheduler slot by
// the time the panic reaches this middleware (gate re-panics after
// Ticket.Done), so a panicking query frees its capacity like any failure.
func (s *Server) recovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := recoverWriterPool.Get().(*recoverWriter)
		rw.ResponseWriter, rw.started = w, false
		defer func() {
			started := rw.started
			rw.ResponseWriter = nil
			recoverWriterPool.Put(rw)
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, per net/http docs
					panic(rec)
				}
				s.panics.Add(1)
				log.Printf("web: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				if !started {
					http.Error(w, "SkyServer internal error", http.StatusInternalServerError)
				}
			}
		}()
		h.ServeHTTP(rw, r)
	})
}

// handleHealth is the liveness/readiness probe: 200 while serving, 503
// while draining, with the fault-tolerance counters — handler and scan
// panics recovered, page read retries, checksum failures — and the
// scheduler occupancy. Ungated and cheap, so orchestrators and operators
// can watch a drain make progress. Field reference: docs/ops.md.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	fg := s.sdb.DB.FileGroup()
	ad := s.sched.Stats()
	ready := s.Ready()
	doc := struct {
		Ready            bool   `json:"ready"`
		Draining         bool   `json:"draining"`
		PanicsRecovered  int64  `json:"panicsRecovered"`
		ScanPanics       int64  `json:"scanPanicsRecovered"`
		ReadRetries      uint64 `json:"readRetries"`
		ChecksumFailures uint64 `json:"checksumFailures"`
		Running          int    `json:"running"`
		Queued           int64  `json:"queued"`
	}{
		Ready:            ready,
		Draining:         !ready,
		PanicsRecovered:  s.panics.Load(),
		ScanPanics:       fg.ScanPoolStats().PanicsRecovered,
		ReadRetries:      fg.ReadRetries(),
		ChecksumFailures: fg.ChecksumFails(),
		Running:          ad.Running,
		Queued:           ad.Queued,
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(doc)
}

// shedDraining answers a query-running request arriving while the server
// drains: the same well-formed 503 + Retry-After contract as overload, so
// clients need one retry path for both. /api/ routes get the envelope.
func shedDraining(w http.ResponseWriter, r *http.Request, class sched.Class) {
	const msg = "SkyServer draining: restarting shortly, try again"
	if isAPI(r) {
		writeAPIError(w, http.StatusServiceUnavailable, class.String(), retryAfterSecs(class), msg)
		return
	}
	w.Header().Set("Retry-After", retryAfter(class))
	http.Error(w, msg, http.StatusServiceUnavailable)
}
