package pipeline

import (
	"math"
	"testing"

	"skyserver/internal/schema"
	"skyserver/internal/sky"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// collectEmitter buffers rows per table without a database.
type collectEmitter struct {
	rows map[string][]val.Row
}

func (c *collectEmitter) Emit(table string, row val.Row) error {
	if c.rows == nil {
		c.rows = map[string][]val.Row{}
	}
	c.rows[table] = append(c.rows[table], row.Clone())
	return nil
}

func buildSDB(t *testing.T) *schema.SkyDB {
	t.Helper()
	sdb, err := schema.Build(storage.NewMemFileGroup(2, 256))
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

func TestGenerateDeterministic(t *testing.T) {
	sdb := buildSDB(t)
	cfg := Config{Scale: 1.0 / 8000, Seed: 11, SkipFrames: true, SkipBlobs: true}
	a := &collectEmitter{}
	statsA, err := Generate(cfg, sdb, a)
	if err != nil {
		t.Fatal(err)
	}
	b := &collectEmitter{}
	statsB, err := Generate(cfg, sdb, b)
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Truth != statsB.Truth {
		t.Errorf("truths differ: %+v vs %+v", statsA.Truth, statsB.Truth)
	}
	for table, rowsA := range a.rows {
		rowsB := b.rows[table]
		if len(rowsA) != len(rowsB) {
			t.Fatalf("%s: %d vs %d rows", table, len(rowsA), len(rowsB))
		}
	}
	// Spot-check deep equality on PhotoObj.
	for i := range a.rows["PhotoObj"] {
		if a.rows["PhotoObj"][i].Compare(b.rows["PhotoObj"][i]) != 0 {
			t.Fatalf("PhotoObj row %d differs between identical seeds", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	sdb := buildSDB(t)
	a := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 8000, Seed: 1, SkipFrames: true, SkipBlobs: true}, sdb, a); err != nil {
		t.Fatal(err)
	}
	b := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 8000, Seed: 2, SkipFrames: true, SkipBlobs: true}, sdb, b); err != nil {
		t.Fatal(err)
	}
	same := 0
	n := len(a.rows["PhotoObj"])
	if len(b.rows["PhotoObj"]) < n {
		n = len(b.rows["PhotoObj"])
	}
	for i := 0; i < n; i++ {
		if a.rows["PhotoObj"][i].Compare(b.rows["PhotoObj"][i]) == 0 {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical surveys")
	}
}

func TestScaleControlsSize(t *testing.T) {
	sdb := buildSDB(t)
	small := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 8000, SkipFrames: true, SkipBlobs: true}, sdb, small); err != nil {
		t.Fatal(err)
	}
	large := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 2000, SkipFrames: true, SkipBlobs: true}, sdb, large); err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(large.rows["PhotoObj"])) / float64(len(small.rows["PhotoObj"]))
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("4x scale gave %.1fx objects", ratio)
	}
}

func TestPhotoObjInvariants(t *testing.T) {
	sdb := buildSDB(t)
	em := &collectEmitter{}
	stats, err := Generate(Config{Scale: 1.0 / 4000, SkipFrames: true, SkipBlobs: true}, sdb, em)
	if err != nil {
		t.Fatal(err)
	}
	t7 := sdb.PhotoObj
	idx := func(name string) int { return t7.ColIndex(name) }
	seen := map[int64]bool{}
	var primaries, children, parents int
	grid := Config{Scale: 1.0 / 4000}.Footprint()
	for _, row := range em.rows["PhotoObj"] {
		id := row[idx("objID")].I
		if seen[id] {
			t.Fatalf("duplicate objID %d", id)
		}
		seen[id] = true
		ra, dec := row[idx("ra")].F, row[idx("dec")].F
		// Every object inside the footprint's dec band.
		if dec < grid.Dec0-0.6 || dec > grid.Dec0+sky.StripeWidthDeg+0.6 {
			t.Fatalf("dec %g outside stripe", dec)
		}
		// Unit vector consistency.
		v := sky.EqToVec(ra, dec)
		if math.Abs(v.X-row[idx("cx")].F) > 1e-9 || math.Abs(v.Z-row[idx("cz")].F) > 1e-9 {
			t.Fatal("cx/cy/cz do not match ra/dec")
		}
		mode := row[idx("mode")].I
		switch mode {
		case schema.ModePrimary:
			primaries++
		case schema.ModeFamily:
			parents++
			if row[idx("nChild")].I == 0 {
				t.Fatal("family parent with no children")
			}
		}
		if row[idx("parentID")].I != 0 {
			children++
		}
		// Magnitude sanity: r model magnitude within survey range.
		r := row[idx("r")].F
		if r < 10 || r > 26 {
			t.Fatalf("r magnitude %g out of range", r)
		}
	}
	frac := float64(primaries) / float64(len(em.rows["PhotoObj"]))
	if frac < 0.72 || frac > 0.95 {
		t.Errorf("primary fraction %.2f, want ≈0.8", frac)
	}
	if parents == 0 || children == 0 {
		t.Error("no deblend families generated")
	}
	if stats.Truth.Primaries != primaries {
		t.Errorf("truth primaries %d, counted %d", stats.Truth.Primaries, primaries)
	}
}

func TestSpectraFollowHubbleRelation(t *testing.T) {
	sdb := buildSDB(t)
	em := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 2000, SkipFrames: true, SkipBlobs: true}, sdb, em); err != nil {
		t.Fatal(err)
	}
	specs := em.rows["SpecObj"]
	if len(specs) == 0 {
		t.Fatal("no spectra")
	}
	zCol := sdb.SpecObj.ColIndex("z")
	classCol := sdb.SpecObj.ColIndex("specClass")
	objCol := sdb.SpecObj.ColIndex("objID")
	// Map photo magnitudes.
	rMag := map[int64]float64{}
	pid := sdb.PhotoObj.ColIndex("objID")
	pr := sdb.PhotoObj.ColIndex("r")
	for _, row := range em.rows["PhotoObj"] {
		rMag[row[pid].I] = row[pr].F
	}
	// Galaxy redshift should correlate with magnitude (fainter = deeper).
	var pairs [][2]float64
	for _, srow := range specs {
		if srow[classCol].I != schema.SpecClassGalaxy {
			continue
		}
		m, ok := rMag[srow[objCol].I]
		if !ok {
			t.Fatal("spectrum references unknown photo object")
		}
		pairs = append(pairs, [2]float64{srow[zCol].F, m})
	}
	if len(pairs) < 10 {
		t.Skipf("only %d galaxy spectra at this scale", len(pairs))
	}
	var sz, sm float64
	for _, p := range pairs {
		sz += p[0]
		sm += p[1]
	}
	mz, mm := sz/float64(len(pairs)), sm/float64(len(pairs))
	var cov, vz, vm float64
	for _, p := range pairs {
		cov += (p[0] - mz) * (p[1] - mm)
		vz += (p[0] - mz) * (p[0] - mz)
		vm += (p[1] - mm) * (p[1] - mm)
	}
	r := cov / math.Sqrt(vz*vm)
	if r < 0.5 {
		t.Errorf("redshift-magnitude correlation %.2f; Hubble relation lost", r)
	}
}

func TestSpecLineWavelengthsRedshifted(t *testing.T) {
	sdb := buildSDB(t)
	em := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 4000, SkipFrames: true, SkipBlobs: true}, sdb, em); err != nil {
		t.Fatal(err)
	}
	zByID := map[int64]float64{}
	sid := sdb.SpecObj.ColIndex("specObjID")
	zc := sdb.SpecObj.ColIndex("z")
	for _, row := range em.rows["SpecObj"] {
		zByID[row[sid].I] = row[zc].F
	}
	rest := map[int64]float64{}
	for _, l := range schema.SpecLineNames {
		rest[l.ID] = l.Wave
	}
	lsid := sdb.SpecLine.ColIndex("specObjID")
	llid := sdb.SpecLine.ColIndex("lineID")
	lw := sdb.SpecLine.ColIndex("wave")
	for _, row := range em.rows["SpecLine"] {
		z, ok := zByID[row[lsid].I]
		if !ok {
			t.Fatal("line references unknown spectrum")
		}
		want := rest[row[llid].I] * (1 + z)
		got := row[lw].F
		if math.Abs(got-want)/want > 0.01 {
			t.Fatalf("line %d at z=%.3f: wave %.1f, want ≈%.1f", row[llid].I, z, got, want)
		}
	}
}

func TestObjIDPacking(t *testing.T) {
	id := ObjID(1, 1, 752, 3, 42, 17)
	if id <= 0 {
		t.Fatal("negative objID")
	}
	if got := (id >> 32) & 0xFFFF; got != 752 {
		t.Errorf("run bits = %d", got)
	}
	if got := (id >> 29) & 0x7; got != 3 {
		t.Errorf("camcol bits = %d", got)
	}
	if got := (id >> 16) & 0x1FFF; got != 42 {
		t.Errorf("field bits = %d", got)
	}
	if got := id & 0xFFFF; got != 17 {
		t.Errorf("obj bits = %d", got)
	}
}

func TestFootprintCoversQ1Point(t *testing.T) {
	for _, scale := range []float64{1.0 / 8000, 1.0 / 400, 1.0 / 50} {
		g := Config{Scale: scale}.Footprint()
		if err := g.Validate(); err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		_, _, _, ok := g.LocateField(q1RA, q1Dec)
		if !ok {
			t.Errorf("scale %g footprint misses the Q1 point", scale)
		}
	}
}

func TestFrameBlobsDecodable(t *testing.T) {
	sdb := buildSDB(t)
	em := &collectEmitter{}
	if _, err := Generate(Config{Scale: 1.0 / 8000}, sdb, em); err != nil {
		t.Fatal(err)
	}
	img := sdb.Frame.ColIndex("img")
	zoom := sdb.Frame.ColIndex("zoom")
	if len(em.rows["Frame"]) == 0 {
		t.Fatal("no frames")
	}
	zooms := map[int64]int{}
	for _, row := range em.rows["Frame"] {
		zooms[row[zoom].I]++
		if row[img].IsNull() {
			t.Fatal("frame with frames enabled has no image")
		}
	}
	for _, z := range []int64{0, 1, 2, 4, 8} {
		if zooms[z] == 0 {
			t.Errorf("no frames at zoom %d", z)
		}
	}
}
