package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"skyserver/internal/htm"
	"skyserver/internal/pyramid"
	"skyserver/internal/schema"
	"skyserver/internal/sky"
	"skyserver/internal/val"
)

// The planted Query-1 point: "find all galaxies without saturated pixels
// within 1' of a given point" at (185, −0.5) — §11.
const (
	q1RA  = 185.0
	q1Dec = -0.5
	// q1SuppressArcmin clears naturally-generated objects from a zone
	// around the planted cluster so the answer is exact at every scale.
	q1SuppressArcmin = 1.3
)

type specCand struct {
	objID int64
	typ   int64
	magR  float64
	ra    float64
	dec   float64
	isQSO bool
}

type generator struct {
	cfg  Config
	rng  *rand.Rand
	sdb  *schema.SkyDB
	emit Emitter
	grid sky.Grid

	bField, bFrame, bPhoto, bProfile *rowBuilder
	bPlate, bSpec, bLine, bLineIdx   *rowBuilder
	bXC, bEL, bFirst, bRosat, bUSNO  *rowBuilder

	counts map[string]int
	truth  Truth

	specCands   []specCand
	astInterval int
	astCounter  int
	objCounters map[int64]int // FieldID -> next obj number
}

// Generate runs the synthetic pipelines and streams every produced row to
// the emitter in foreign-key-safe order. It returns generation statistics
// including the planted truths.
func Generate(cfg Config, sdb *schema.SkyDB, emit Emitter) (*Stats, error) {
	cfg.defaults()
	g := &generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		sdb:  sdb,
		emit: emit,
		grid: cfg.Footprint(),

		bField:   newRowBuilder(sdb.Field),
		bFrame:   newRowBuilder(sdb.Frame),
		bPhoto:   newRowBuilder(sdb.PhotoObj),
		bProfile: newRowBuilder(sdb.Profile),
		bPlate:   newRowBuilder(sdb.Plate),
		bSpec:    newRowBuilder(sdb.SpecObj),
		bLine:    newRowBuilder(sdb.SpecLine),
		bLineIdx: newRowBuilder(sdb.SpecLineIndex),
		bXC:      newRowBuilder(sdb.XCRedShift),
		bEL:      newRowBuilder(sdb.ELRedShift),
		bFirst:   newRowBuilder(sdb.First),
		bRosat:   newRowBuilder(sdb.Rosat),
		bUSNO:    newRowBuilder(sdb.USNO),

		counts:      make(map[string]int),
		objCounters: make(map[int64]int),
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	return &Stats{Truth: g.truth, RowCounts: g.counts}, nil
}

func (g *generator) send(table string, row val.Row) error {
	g.counts[table]++
	return g.emit.Emit(table, row)
}

func (g *generator) run() error {
	target := float64(EDRPhotoObj) * g.cfg.Scale
	nFields := g.grid.Stripes * 2 * sky.CamCols * g.grid.FieldsPerStrip
	// Secondaries (~12%) and deblend children (~16 per 100 base) inflate
	// the base count by ~1.28; solve for base detections per field.
	basePerField := int(math.Round(target / 1.28 / float64(nFields)))
	if basePerField < 4 {
		basePerField = 4
	}
	astTarget := int(math.Round(EDRAsteroids * g.cfg.Scale))
	if astTarget < 5 {
		astTarget = 5
	}
	totalBase := basePerField * nFields
	g.astInterval = totalBase / astTarget
	if g.astInterval < 1 {
		g.astInterval = 1
	}

	for stripe := 0; stripe < g.grid.Stripes; stripe++ {
		for strip := 0; strip < 2; strip++ {
			run := g.grid.RunNumber(stripe, strip)
			for camcol := 1; camcol <= sky.CamCols; camcol++ {
				for field := 0; field < g.grid.FieldsPerStrip; field++ {
					if err := g.genField(stripe, strip, run, camcol, field, basePerField); err != nil {
						return err
					}
				}
			}
		}
	}
	if err := g.genNEOPairs(); err != nil {
		return err
	}
	if err := g.genSpectro(); err != nil {
		return err
	}
	return nil
}

// photoObj is the working record for one detection before emission.
type photoObj struct {
	objID    int64
	run      int
	rerun    int
	camcol   int
	field    int
	obj      int
	mode     int64
	nChild   int64
	parentID int64
	typ      int64
	flags    int64
	ra, dec  float64
	rowv     float64
	colv     float64
	// mag[kind][band]
	mag   [6][5]float64
	ell   float64 // ellipticity magnitude for Stokes q/u
	phi   float64 // position angle
	isoA  [5]float64
	isoB  [5]float64
	isQSO bool
}

func (g *generator) nextObjNum(run, camcol, field int) int {
	key := FieldID(run, camcol, field)
	g.objCounters[key]++
	return g.objCounters[key]
}

func (g *generator) genField(stripe, strip, run, camcol, field, basePerField int) error {
	raMin, raMax, decMin, decMax := g.grid.FieldBounds(stripe, strip, camcol-1, field)
	// Count per-field objects for the Field row as we generate.
	var nObj, nStar, nGal int
	var sources []frameSource

	n := basePerField + g.rng.Intn(basePerField/4+1) - basePerField/8
	plantQ1 := strip == 0 && q1RA >= raMin && q1RA < raMax && q1Dec >= decMin && q1Dec < decMax

	emitObj := func(o *photoObj) error {
		if err := g.emitPhotoObj(o); err != nil {
			return err
		}
		nObj++
		switch o.typ {
		case schema.TypeStar:
			nStar++
		case schema.TypeGalaxy:
			nGal++
		}
		if o.mode == schema.ModePrimary {
			g.truth.Primaries++
		}
		g.truth.Objects++
		return nil
	}

	for i := 0; i < n; i++ {
		o := g.randomObject(run, camcol, field, raMin, raMax, decMin, decMax)
		if o == nil {
			continue // suppressed (planted zone)
		}
		sources = append(sources, frameSource{o.ra, o.dec, 24 - o.mag[3][2]})
		// Deblend families: ~8 parents per 100 base objects, 2 children
		// each; parents are never primary (§9).
		if o.typ == schema.TypeGalaxy && g.rng.Float64() < 0.11 {
			o.mode = schema.ModeFamily
			o.nChild = 2
			o.flags |= mustFlag("BLENDED")
			if err := emitObj(o); err != nil {
				return err
			}
			for c := 0; c < int(o.nChild); c++ {
				ch := g.childOf(o)
				if err := emitObj(ch); err != nil {
					return err
				}
				if err := g.maybeSecondary(ch, stripe, strip, emitObj); err != nil {
					return err
				}
			}
			continue
		}
		if err := emitObj(o); err != nil {
			return err
		}
		if err := g.maybeSecondary(o, stripe, strip, emitObj); err != nil {
			return err
		}
	}

	if plantQ1 {
		if err := g.plantQ1Cluster(run, camcol, field, emitObj); err != nil {
			return err
		}
	}

	// Field row.
	fid := FieldID(run, camcol, field)
	row := g.bField.row()
	g.bField.set(row, "fieldID", val.Int(fid))
	g.bField.set(row, "skyVersion", val.Int(1))
	g.bField.set(row, "run", val.Int(int64(run)))
	g.bField.set(row, "rerun", val.Int(1))
	g.bField.set(row, "camcol", val.Int(int64(camcol)))
	g.bField.set(row, "field", val.Int(int64(field)))
	g.bField.set(row, "nObjects", val.Int(int64(nObj)))
	g.bField.set(row, "nStars", val.Int(int64(nStar)))
	g.bField.set(row, "nGalaxy", val.Int(int64(nGal)))
	g.bField.set(row, "quality", val.Int(int64(2+g.rng.Intn(2))))
	g.bField.set(row, "mjd", val.Float(52000+g.rng.Float64()*400))
	g.bField.set(row, "raMin", val.Float(raMin))
	g.bField.set(row, "raMax", val.Float(raMax))
	g.bField.set(row, "decMin", val.Float(decMin))
	g.bField.set(row, "decMax", val.Float(decMax))
	if !g.cfg.SkipBlobs {
		calib := make([]byte, 3072)
		g.rng.Read(calib)
		g.bField.set(row, "calibration", val.Bytes(calib))
	}
	if err := g.send("Field", row); err != nil {
		return err
	}

	// Frame pyramid rows: the base frame plus 4 zoom levels (§2).
	return g.genFrames(fid, run, camcol, field, raMin, raMax, decMin, decMax, sources)
}

func mustFlag(name string) int64 {
	v, ok := schema.PhotoFlagValue(name)
	if !ok {
		panic("pipeline: unknown flag " + name)
	}
	return v
}

// randomObject draws one detection; returns nil when the position falls in
// the suppressed planted zone.
func (g *generator) randomObject(run, camcol, field int, raMin, raMax, decMin, decMax float64) *photoObj {
	ra := raMin + g.rng.Float64()*(raMax-raMin)
	dec := decMin + g.rng.Float64()*(decMax-decMin)
	if sky.DistanceArcmin(ra, dec, q1RA, q1Dec) < q1SuppressArcmin {
		return nil
	}
	o := &photoObj{
		run: run, rerun: 1, camcol: camcol, field: field,
		obj:  g.nextObjNum(run, camcol, field),
		mode: schema.ModePrimary,
		ra:   ra, dec: dec,
	}
	o.objID = ObjID(1, o.rerun, o.run, o.camcol, o.field, o.obj)

	// Class mix: galaxies dominate faint counts.
	switch r := g.rng.Float64(); {
	case r < 0.60:
		o.typ = schema.TypeGalaxy
	case r < 0.92:
		o.typ = schema.TypeStar
	case r < 0.96:
		o.typ = schema.TypeUnknown
	case r < 0.98:
		o.typ = schema.TypeCosmicRay
	case r < 0.99:
		o.typ = schema.TypeTrail
	default:
		o.typ = schema.TypeDefect
	}

	// Magnitude from a power-law number count, r in [13, 23].
	u := g.rng.Float64()
	const slope = 0.35
	rMag := 14 + math.Log10(1+u*(math.Pow(10, slope*9)-1))/slope
	g.assignMagnitudes(o, rMag)

	// Shapes.
	if o.typ == schema.TypeGalaxy {
		axis := 0.55 + 0.4*g.rng.Float64() // b/a mostly round
		a := 2 + g.rng.Float64()*6
		for b := 0; b < 5; b++ {
			o.isoA[b] = a * (0.9 + 0.2*g.rng.Float64())
			o.isoB[b] = o.isoA[b] * axis
		}
		o.ell = (1 - axis) / (1 + axis) // ≤ 0.29: below the NEO cut
		o.phi = g.rng.Float64() * math.Pi
	} else {
		for b := 0; b < 5; b++ {
			o.isoA[b] = 1 + 0.4*g.rng.Float64()
			o.isoB[b] = o.isoA[b] * (0.9 + 0.1*g.rng.Float64())
		}
		o.ell = 0.02 * g.rng.Float64()
		o.phi = g.rng.Float64() * math.Pi
	}

	// Flags.
	o.flags = mustFlag("BINNED1") | mustFlag("OK_RUN") | mustFlag("STATIONARY")
	if rMag < 14.2 { // bright objects saturate the CCD (§11, Q1)
		o.flags |= mustFlag("SATURATED")
	}

	// Velocities: noise, sprinkled error markers, planted asteroids.
	g.astCounter++
	switch {
	case g.astCounter%g.astInterval == 0:
		// A slow-moving asteroid: Query 15A's window is
		// 50 ≤ rowv²+colv² ≤ 1000 with rowv, colv ≥ 0.
		theta := (5 + 80*g.rng.Float64()) * math.Pi / 180
		speed := math.Sqrt(50) + g.rng.Float64()*(math.Sqrt(1000)-math.Sqrt(50))
		o.rowv = speed * math.Cos(theta)
		o.colv = speed * math.Sin(theta)
		o.flags &^= mustFlag("STATIONARY")
		o.flags |= mustFlag("MOVED")
	case g.rng.Float64() < 0.02:
		o.rowv, o.colv = -9999, -9999 // error marker (negative)
	case g.rng.Float64() < 0.01:
		o.rowv, o.colv = 5000+g.rng.Float64()*1000, 5000+g.rng.Float64()*1000 // unreasonably fast
	default:
		o.rowv = g.rng.NormFloat64() * 0.05
		o.colv = g.rng.NormFloat64() * 0.05
	}
	return o
}

// assignMagnitudes fills the six magnitude families and colors. QSO-colored
// point sources get the UV excess (u−g < 0.6) that the color-cut queries
// select on.
func (g *generator) assignMagnitudes(o *photoObj, rMag float64) {
	var gr, ug, ri, iz float64
	switch {
	case o.typ == schema.TypeStar && g.rng.Float64() < 0.02:
		o.isQSO = true
		ug = 0.1 + 0.3*g.rng.Float64() // blue: u-g < 0.6
		gr = 0.1 + 0.2*g.rng.Float64()
		ri = 0.0 + 0.2*g.rng.Float64()
		iz = 0.0 + 0.1*g.rng.Float64()
	case o.typ == schema.TypeStar:
		gr = 0.2 + 1.2*g.rng.Float64() // main-sequence locus
		ug = 0.7 + 1.3*gr*0.5 + 0.1*g.rng.NormFloat64()
		ri = 0.45 * gr
		iz = 0.2 * gr
	default: // galaxies and the rest: red-ish
		gr = 0.5 + 0.6*g.rng.Float64()
		ug = 1.2 + 0.5*g.rng.Float64()
		ri = 0.3 + 0.25*g.rng.Float64()
		iz = 0.2 + 0.2*g.rng.Float64()
	}
	base := [5]float64{rMag + gr + ug, rMag + gr, rMag, rMag - ri, rMag - ri - iz}
	for k := range schema.MagKinds {
		for b := 0; b < 5; b++ {
			offset := 0.0
			if o.typ == schema.TypeGalaxy {
				// Extended sources: psf misses flux, petro/model
				// capture more.
				switch schema.MagKinds[k] {
				case "psf":
					offset = 0.4
				case "fiber":
					offset = 0.25
				}
			}
			o.mag[k][b] = base[b] + offset + 0.02*g.rng.NormFloat64()
		}
	}
}

// childOf produces a deblended child of a parent galaxy.
func (g *generator) childOf(p *photoObj) *photoObj {
	c := *p
	c.obj = g.nextObjNum(p.run, p.camcol, p.field)
	c.objID = ObjID(1, c.rerun, c.run, c.camcol, c.field, c.obj)
	c.mode = schema.ModePrimary
	c.parentID = p.objID
	c.nChild = 0
	c.flags = (p.flags &^ mustFlag("BLENDED")) | mustFlag("CHILD")
	c.ra = p.ra + g.rng.NormFloat64()*0.002
	c.dec = p.dec + g.rng.NormFloat64()*0.002
	for k := range c.mag {
		for b := range c.mag[k] {
			c.mag[k][b] = p.mag[k][b] + 0.75 + 0.1*g.rng.NormFloat64()
		}
	}
	return &c
}

// maybeSecondary emits a duplicate detection (mode=2) under the interleaved
// strip's run, modelling the ~11% stripe/strip overlap of §9. Overlap
// membership is sampled by rate rather than strip geometry; the duplicate
// carries the partner run's identity.
func (g *generator) maybeSecondary(o *photoObj, stripe, strip int, emitObj func(*photoObj) error) error {
	if g.rng.Float64() >= 0.12 {
		return nil
	}
	s := *o
	s.run = g.grid.RunNumber(stripe, 1-strip)
	s.obj = g.nextObjNum(s.run, s.camcol, s.field)
	s.objID = ObjID(1, s.rerun, s.run, s.camcol, s.field, s.obj)
	s.mode = schema.ModeSecondary
	s.parentID = 0
	s.nChild = 0
	// Re-measured on another night: slightly different photometry.
	// ~10% of stars are variable and change by several tenths of a
	// magnitude between the two nights — the population behind the
	// "stars with multiple measurements that have magnitude variations"
	// query (Q6).
	sigma := 0.03
	if o.typ == schema.TypeStar && g.rng.Float64() < 0.10 {
		sigma = 0.35
	}
	for k := range s.mag {
		delta := sigma * g.rng.NormFloat64()
		for b := range s.mag[k] {
			s.mag[k][b] += delta + 0.01*g.rng.NormFloat64()
		}
	}
	return emitObj(&s)
}

// plantQ1Cluster emits the 22 objects within 1′ of (185, −0.5): 19
// unsaturated primary galaxies (the paper's Query 1 answer), 2 saturated
// primary galaxies, and 1 secondary galaxy.
func (g *generator) plantQ1Cluster(run, camcol, field int, emitObj func(*photoObj) error) error {
	plant := func(i int, saturated bool, mode int64) error {
		// Deterministic spiral placement well inside the 1′ circle.
		angle := float64(i) * 2.399963 // golden angle
		radius := 0.08 + 0.85*float64(i)/22
		ra := q1RA + radius/60*math.Cos(angle)/math.Cos(q1Dec*sky.RadPerDeg)
		dec := q1Dec + radius/60*math.Sin(angle)
		o := &photoObj{
			run: run, rerun: 1, camcol: camcol, field: field,
			obj:  g.nextObjNum(run, camcol, field),
			mode: mode,
			typ:  schema.TypeGalaxy,
			ra:   ra, dec: dec,
			flags: mustFlag("BINNED1") | mustFlag("OK_RUN") | mustFlag("STATIONARY"),
		}
		o.objID = ObjID(1, 1, run, camcol, field, o.obj)
		if saturated {
			o.flags |= mustFlag("SATURATED")
		}
		g.assignMagnitudes(o, 16+0.15*float64(i))
		for b := 0; b < 5; b++ {
			o.isoA[b] = 3 + 0.1*float64(i%5)
			o.isoB[b] = o.isoA[b] * 0.8
		}
		o.ell = 0.1
		o.rowv = g.rng.NormFloat64() * 0.01
		o.colv = g.rng.NormFloat64() * 0.01
		return emitObj(o)
	}
	for i := 0; i < 19; i++ {
		if err := plant(i, false, schema.ModePrimary); err != nil {
			return err
		}
	}
	for i := 19; i < 21; i++ {
		if err := plant(i, true, schema.ModePrimary); err != nil {
			return err
		}
	}
	if err := plant(21, false, schema.ModeSecondary); err != nil {
		return err
	}
	g.truth.Q1Galaxies = 19
	g.truth.Q1TVFRows = 22
	return nil
}

// genNEOPairs plants exactly four fast-moving streak pairs satisfying the
// modified Query 15B: elongated red and green detections within 4′ in the
// same run/camcol, adjacent fields, with matched magnitudes. The paper's
// query found four pairs, one with a degenerate (deblend-flagged) red
// member.
func (g *generator) genNEOPairs() error {
	run := g.grid.RunNumber(0, 0)
	camcol := 4
	fieldsUsed := []int{2, 9, 17, 25}
	for k, f := range fieldsUsed {
		if f+1 >= g.grid.FieldsPerStrip {
			return fmt.Errorf("pipeline: footprint too small for NEO pair %d", k)
		}
		_, raMax, decMin, decMax := g.grid.FieldBounds(0, 0, camcol-1, f)
		decMid := (decMin + decMax) / 2
		// Red member near the end of field f; green just across the
		// boundary in field f+1, ~2 arcmin away.
		redRA := raMax - 0.2/60
		greenRA := raMax + 1.8/60

		mk := func(field int, ra float64, redBand bool, magBase float64) *photoObj {
			o := &photoObj{
				run: run, rerun: 1, camcol: camcol, field: field,
				obj:  g.nextObjNum(run, camcol, field),
				mode: schema.ModePrimary,
				typ:  schema.TypeUnknown,
				ra:   ra, dec: decMid,
				flags: mustFlag("BINNED1") | mustFlag("OK_RUN") |
					mustFlag("MOVED"),
			}
			o.objID = ObjID(1, 1, run, camcol, field, o.obj)
			// Streaks: fast movers leave no measurable velocity in a
			// single detection (they are separate objects), so keep
			// rowv/colv ≈ 0 — they must NOT satisfy Query 15A.
			o.rowv, o.colv = 0, 0
			// Magnitudes: brightest in the streak's band, fainter
			// elsewhere. Bands: u=0 g=1 r=2 i=3 z=4.
			bright := 2
			if !redBand {
				bright = 1
			}
			for k := range o.mag {
				for b := 0; b < 5; b++ {
					if b == bright {
						o.mag[k][b] = magBase
					} else {
						o.mag[k][b] = magBase + 1.5 + 0.1*g.rng.Float64()
					}
				}
			}
			// Elongated: ellipticity above the 1/3 cut (q²+u² > 0.111…).
			o.ell = 0.40
			o.phi = g.rng.Float64() * math.Pi
			for b := 0; b < 5; b++ {
				o.isoA[b] = 3.0
				o.isoB[b] = 1.5
			}
			return o
		}
		magBase := 17 + 0.6*float64(k)
		red := mk(f, redRA, true, magBase)
		green := mk(f+1, greenRA, false, magBase+1.0)
		if k == 3 {
			// The degenerate pair: the red image is flagged as a
			// deblend artifact but still passes the query.
			red.flags |= mustFlag("DEBLENDED_AS_PSF")
		}
		if err := g.emitPhotoObj(red); err != nil {
			return err
		}
		if err := g.emitPhotoObj(green); err != nil {
			return err
		}
		g.truth.Objects += 2
		g.truth.Primaries += 2
		g.truth.NEOPairs++
	}
	return nil
}

// emitPhotoObj writes the PhotoObj row, its Profile row, and any
// cross-survey matches; spectro candidates are collected for genSpectro.
func (g *generator) emitPhotoObj(o *photoObj) error {
	// Truth accounting uses the actual Query 15A predicate, so duplicate
	// detections of a moving object count like the query counts them.
	if v2 := o.rowv*o.rowv + o.colv*o.colv; o.rowv >= 0 && o.colv >= 0 && v2 >= 50 && v2 <= 1000 {
		g.truth.Asteroids++
	}
	b := g.bPhoto
	row := b.row()
	v := sky.EqToVec(o.ra, o.dec)
	b.set(row, "objID", val.Int(o.objID))
	b.set(row, "skyVersion", val.Int(1))
	b.set(row, "run", val.Int(int64(o.run)))
	b.set(row, "rerun", val.Int(int64(o.rerun)))
	b.set(row, "camcol", val.Int(int64(o.camcol)))
	b.set(row, "field", val.Int(int64(o.field)))
	b.set(row, "obj", val.Int(int64(o.obj)))
	b.set(row, "mode", val.Int(o.mode))
	b.set(row, "nChild", val.Int(o.nChild))
	b.set(row, "parentID", val.Int(o.parentID))
	b.set(row, "type", val.Int(o.typ))
	b.set(row, "flags", val.Int(o.flags))
	b.set(row, "status", val.Int(1))
	b.set(row, "ra", val.Float(o.ra))
	b.set(row, "dec", val.Float(o.dec))
	b.set(row, "cx", val.Float(v.X))
	b.set(row, "cy", val.Float(v.Y))
	b.set(row, "cz", val.Float(v.Z))
	b.set(row, "htmID", val.Int(int64(htm.LookupEq(o.ra, o.dec, schema.HTMDepth))))
	b.set(row, "rowc", val.Float(g.rng.Float64()*1489))
	b.set(row, "colc", val.Float(g.rng.Float64()*2048))
	b.set(row, "rowv", val.Float(o.rowv))
	b.set(row, "colv", val.Float(o.colv))
	b.set(row, "rowvErr", val.Float(math.Abs(g.rng.NormFloat64()*0.02)))
	b.set(row, "colvErr", val.Float(math.Abs(g.rng.NormFloat64()*0.02)))
	// Magnitude families + the bare-band model shorthand.
	for k, kind := range schema.MagKinds {
		for bi, band := range schema.Bands {
			b.set(row, kind+"Mag_"+band, val.Float(o.mag[k][bi]))
			b.set(row, kind+"MagErr_"+band, val.Float(0.02+0.01*g.rng.Float64()))
		}
	}
	for bi, band := range schema.Bands {
		b.set(row, band, val.Float(o.mag[3][bi])) // model magnitudes
	}
	qv := o.ell * math.Cos(2*o.phi)
	uv := o.ell * math.Sin(2*o.phi)
	for bi, band := range schema.Bands {
		b.set(row, "isoA_"+band, val.Float(o.isoA[bi]))
		b.set(row, "isoB_"+band, val.Float(o.isoB[bi]))
		b.set(row, "isoPhi_"+band, val.Float(o.phi*sky.DegPerRad))
		b.set(row, "q_"+band, val.Float(qv))
		b.set(row, "u_"+band, val.Float(uv))
		b.set(row, "petroR50_"+band, val.Float(o.isoA[bi]*0.5))
		b.set(row, "petroR90_"+band, val.Float(o.isoA[bi]*1.1))
		b.set(row, "extinction_"+band, val.Float(0.02+0.05*g.rng.Float64()))
	}
	if err := g.send("PhotoObj", row); err != nil {
		return err
	}

	// Profile row: radial bins + atlas cutout blob.
	pr := g.bProfile.row()
	nBins := 8 + g.rng.Intn(7)
	g.bProfile.set(pr, "objID", val.Int(o.objID))
	g.bProfile.set(pr, "nBins", val.Int(int64(nBins)))
	if !g.cfg.SkipBlobs {
		prof := make([]byte, nBins*5*4)
		g.rng.Read(prof)
		cut := make([]byte, 200+g.rng.Intn(350))
		g.rng.Read(cut)
		g.bProfile.set(pr, "profile", val.Bytes(prof))
		g.bProfile.set(pr, "cutout", val.Bytes(cut))
	}
	if err := g.send("Profile", pr); err != nil {
		return err
	}

	// Cross-survey matches (§9: USNO, ROSAT, FIRST).
	if o.mode == schema.ModePrimary {
		if o.typ == schema.TypeGalaxy && g.rng.Float64() < 0.015 {
			fr := g.bFirst.row()
			g.bFirst.set(fr, "objID", val.Int(o.objID))
			g.bFirst.set(fr, "firstID", val.Int(o.objID^0x1111))
			g.bFirst.set(fr, "peakFlux", val.Float(1+math.Abs(g.rng.NormFloat64())*20))
			g.bFirst.set(fr, "distance", val.Float(g.rng.Float64()*2))
			if err := g.send("First", fr); err != nil {
				return err
			}
		}
		if g.rng.Float64() < 0.004 {
			rr := g.bRosat.row()
			g.bRosat.set(rr, "objID", val.Int(o.objID))
			g.bRosat.set(rr, "rosatID", val.Int(o.objID^0x2222))
			g.bRosat.set(rr, "cps", val.Float(math.Abs(g.rng.NormFloat64())*0.1))
			g.bRosat.set(rr, "distance", val.Float(g.rng.Float64()*10))
			if err := g.send("Rosat", rr); err != nil {
				return err
			}
		}
		if o.typ == schema.TypeStar && o.mag[3][2] < 17 && g.rng.Float64() < 0.3 {
			ur := g.bUSNO.row()
			g.bUSNO.set(ur, "objID", val.Int(o.objID))
			g.bUSNO.set(ur, "usnoID", val.Int(o.objID^0x3333))
			g.bUSNO.set(ur, "properMotion", val.Float(math.Abs(g.rng.NormFloat64())*3))
			g.bUSNO.set(ur, "distance", val.Float(g.rng.Float64()*1))
			if err := g.send("USNO", ur); err != nil {
				return err
			}
		}
		// Spectro targeting candidates: galaxies, QSOs, some stars.
		if o.typ == schema.TypeGalaxy || o.isQSO ||
			(o.typ == schema.TypeStar && g.rng.Float64() < 0.05) {
			g.specCands = append(g.specCands, specCand{
				objID: o.objID, typ: o.typ, magR: o.mag[3][2],
				ra: o.ra, dec: o.dec, isQSO: o.isQSO,
			})
		}
	}
	return nil
}

// frameSource is one light source splatted into a field's synthetic frame.
type frameSource struct{ ra, dec, flux float64 }

// genFrames renders the field's synthetic 5-band frame and emits the base
// image plus the 4-level pyramid (§2: "An image pyramid was built at 4 zoom
// levels").
func (g *generator) genFrames(fid int64, run, camcol, field int, raMin, raMax, decMin, decMax float64, sources []frameSource) error {
	raCen, decCen := (raMin+raMax)/2, (decMin+decMax)/2
	var tiles []*pyramid.RGB
	if !g.cfg.SkipFrames {
		f5 := pyramid.NewFrame5(pyramid.BaseSize)
		for _, s := range sources {
			x := (s.ra - raMin) / (raMax - raMin) * float64(pyramid.BaseSize)
			y := (s.dec - decMin) / (decMax - decMin) * float64(pyramid.BaseSize)
			flux := math.Pow(10, s.flux/2.5) / 100
			f5.AddObject(x, y, 1.2, [5]float64{flux * 0.6, flux * 0.9, flux, flux * 1.1, flux * 0.8})
		}
		tiles = pyramid.Build(f5)
	}
	emitFrame := func(zoom int, tile *pyramid.RGB) error {
		row := g.bFrame.row()
		g.bFrame.set(row, "frameID", val.Int(fid<<8|int64(zoom)))
		g.bFrame.set(row, "fieldID", val.Int(fid))
		g.bFrame.set(row, "zoom", val.Int(int64(zoom)))
		g.bFrame.set(row, "run", val.Int(int64(run)))
		g.bFrame.set(row, "camcol", val.Int(int64(camcol)))
		g.bFrame.set(row, "field", val.Int(int64(field)))
		g.bFrame.set(row, "raCen", val.Float(raCen))
		g.bFrame.set(row, "decCen", val.Float(decCen))
		if tile != nil {
			g.bFrame.set(row, "img", val.Bytes(tile.Encode()))
		}
		return g.send("Frame", row)
	}
	// zoom 0 = the base frame; zooms 1,2,4,8 = the pyramid.
	var base *pyramid.RGB
	if tiles != nil {
		base = tiles[0]
	}
	if err := emitFrame(0, base); err != nil {
		return err
	}
	for i, z := range pyramid.ZoomLevels {
		var t *pyramid.RGB
		if tiles != nil {
			t = tiles[i]
		}
		if err := emitFrame(z, t); err != nil {
			return err
		}
	}
	return nil
}

// genSpectro runs the synthetic spectroscopic pipeline: target selection
// (~0.45% of objects, §11: "Only 1% are targeted for spectroscopy"),
// plates of ~600 fibers, redshifts on a Hubble-like relation for galaxies,
// ~27 lines per spectrum, 30 cross-correlation templates, and emission-line
// redshifts for ~80% of spectra.
func (g *generator) genSpectro() error {
	target := int(math.Round(EDRSpecObj * g.cfg.Scale))
	if target < 25 {
		target = 25
	}
	if target > len(g.specCands) {
		target = len(g.specCands)
	}
	// Brightest first, then by objID for determinism.
	sort.Slice(g.specCands, func(i, j int) bool {
		if g.specCands[i].magR != g.specCands[j].magR {
			return g.specCands[i].magR < g.specCands[j].magR
		}
		return g.specCands[i].objID < g.specCands[j].objID
	})
	chosen := g.specCands[:target]
	// Plates cover the footprint in ra order, ~600 fibers each.
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].ra < chosen[j].ra })
	const fibersPerPlate = 600
	nPlates := (len(chosen) + fibersPerPlate - 1) / fibersPerPlate
	for p := 0; p < nPlates; p++ {
		loI := p * fibersPerPlate
		hiI := loI + fibersPerPlate
		if hiI > len(chosen) {
			hiI = len(chosen)
		}
		batch := chosen[loI:hiI]
		plateID := int64(266 + p)
		var raSum, decSum float64
		for _, c := range batch {
			raSum += c.ra
			decSum += c.dec
		}
		pr := g.bPlate.row()
		g.bPlate.set(pr, "plateID", val.Int(plateID))
		g.bPlate.set(pr, "mjd", val.Float(52000+float64(p)*3))
		g.bPlate.set(pr, "ra", val.Float(raSum/float64(len(batch))))
		g.bPlate.set(pr, "dec", val.Float(decSum/float64(len(batch))))
		g.bPlate.set(pr, "nFibers", val.Int(int64(len(batch))))
		if err := g.send("Plate", pr); err != nil {
			return err
		}
		for fi, c := range batch {
			if err := g.genSpectrum(plateID, fi+1, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *generator) genSpectrum(plateID int64, fiber int, c specCand) error {
	specObjID := SpecObjID(int(plateID), fiber)
	// Redshift: galaxies follow a Hubble-like magnitude–redshift relation
	// (the education example's diagram, Figure 4); QSOs are deep; stars ~0.
	var z float64
	specClass := int64(schema.SpecClassGalaxy)
	switch {
	case c.isQSO:
		z = 0.3 + 4.2*g.rng.Float64()
		specClass = schema.SpecClassQSO
	case c.typ == schema.TypeStar:
		z = math.Abs(g.rng.NormFloat64()) * 1e-4
		specClass = schema.SpecClassStar
	default:
		z = 0.05 * math.Pow(10, (c.magR-15)/5)
		z *= 1 + 0.08*g.rng.NormFloat64()
		if z < 0.003 {
			z = 0.003
		}
		if z > 0.8 {
			z = 0.8
		}
	}
	zErr := 1e-4 * (1 + g.rng.Float64())

	sr := g.bSpec.row()
	g.bSpec.set(sr, "specObjID", val.Int(specObjID))
	g.bSpec.set(sr, "plateID", val.Int(plateID))
	g.bSpec.set(sr, "fiberID", val.Int(int64(fiber)))
	g.bSpec.set(sr, "mjd", val.Float(52000+g.rng.Float64()*400))
	g.bSpec.set(sr, "ra", val.Float(c.ra))
	g.bSpec.set(sr, "dec", val.Float(c.dec))
	g.bSpec.set(sr, "z", val.Float(z))
	g.bSpec.set(sr, "zErr", val.Float(zErr))
	g.bSpec.set(sr, "zConf", val.Float(0.85+0.14*g.rng.Float64()))
	g.bSpec.set(sr, "zStatus", val.Int(4))
	g.bSpec.set(sr, "specClass", val.Int(specClass))
	g.bSpec.set(sr, "objID", val.Int(c.objID))
	if !g.cfg.SkipBlobs {
		img := make([]byte, 1500+g.rng.Intn(1000))
		g.rng.Read(img)
		g.bSpec.set(sr, "img", val.Bytes(img))
	}
	if err := g.send("SpecObj", sr); err != nil {
		return err
	}
	g.truth.Specs++

	// ~27 of the 30 known lines per spectrogram.
	nLines := EDRLinesPer + g.rng.Intn(4) - 1
	if nLines > len(schema.SpecLineNames) {
		nLines = len(schema.SpecLineNames)
	}
	perm := g.rng.Perm(len(schema.SpecLineNames))[:nLines]
	sort.Ints(perm)
	for _, li := range perm {
		line := schema.SpecLineNames[li]
		lr := g.bLine.row()
		g.bLine.set(lr, "specObjID", val.Int(specObjID))
		g.bLine.set(lr, "lineID", val.Int(line.ID))
		g.bLine.set(lr, "wave", val.Float(line.Wave*(1+z)*(1+1e-4*g.rng.NormFloat64())))
		g.bLine.set(lr, "waveErr", val.Float(0.1+0.2*g.rng.Float64()))
		g.bLine.set(lr, "ew", val.Float(g.rng.NormFloat64()*8))
		g.bLine.set(lr, "ewErr", val.Float(0.3+0.5*g.rng.Float64()))
		g.bLine.set(lr, "height", val.Float(math.Abs(g.rng.NormFloat64())*40))
		g.bLine.set(lr, "sigma", val.Float(1+3*g.rng.Float64()))
		if err := g.send("SpecLine", lr); err != nil {
			return err
		}
		ir := g.bLineIdx.row()
		g.bLineIdx.set(ir, "specObjID", val.Int(specObjID))
		g.bLineIdx.set(ir, "lineID", val.Int(line.ID))
		g.bLineIdx.set(ir, "ew", val.Float(g.rng.NormFloat64()*8))
		g.bLineIdx.set(ir, "sideBlue", val.Float(g.rng.Float64()))
		g.bLineIdx.set(ir, "sideRed", val.Float(g.rng.Float64()))
		g.bLineIdx.set(ir, "seeing", val.Float(1+g.rng.Float64()))
		if err := g.send("SpecLineIndex", ir); err != nil {
			return err
		}
	}

	// Cross-correlation redshifts: one row per template, the best template
	// carrying the highest correlation coefficient.
	best := g.rng.Intn(schema.XCTemplates)
	for tmpl := 0; tmpl < schema.XCTemplates; tmpl++ {
		xr := g.bXC.row()
		zt := z + g.rng.NormFloat64()*zErr*3
		rCoef := 2 + 3*g.rng.Float64()
		if tmpl == best {
			zt = z + g.rng.NormFloat64()*zErr
			rCoef = 8 + 4*g.rng.Float64()
		}
		g.bXC.set(xr, "specObjID", val.Int(specObjID))
		g.bXC.set(xr, "tempNo", val.Int(int64(tmpl)))
		g.bXC.set(xr, "peakZ", val.Float(zt))
		g.bXC.set(xr, "z", val.Float(zt))
		g.bXC.set(xr, "zErr", val.Float(zErr*3))
		g.bXC.set(xr, "r", val.Float(rCoef))
		if err := g.send("xcRedShift", xr); err != nil {
			return err
		}
	}

	// Emission-line redshift for ~80% of spectra (51k of 63k in Table 1):
	// deterministically 4 of every 5, so the ratio holds at tiny scales.
	if g.truth.Specs%5 != 0 {
		er := g.bEL.row()
		g.bEL.set(er, "specObjID", val.Int(specObjID))
		g.bEL.set(er, "z", val.Float(z+g.rng.NormFloat64()*zErr*2))
		g.bEL.set(er, "zErr", val.Float(zErr*2))
		g.bEL.set(er, "nLines", val.Int(int64(3+g.rng.Intn(8))))
		if err := g.send("elRedShift", er); err != nil {
			return err
		}
	}
	return nil
}
