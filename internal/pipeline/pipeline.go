// Package pipeline simulates the SDSS data-processing pipelines of §1/§9:
// the imaging pipeline that "analyzes data from the camera to extract about
// 400 attributes for each celestial object", and the spectroscopic pipeline
// that extracts calibrated spectra, redshifts and ~30 lines per spectrogram.
//
// The real pipelines and their 80 GB Early Data Release are not available,
// so this package generates a deterministic synthetic survey with the same
// structure (Figure 6's stripes/strips/runs/camcols/fields, ~11% duplicate
// detections, deblended parent/child families with ~80% primary objects,
// 1%-targeted spectroscopy, ~30 lines per spectrum) and — crucially for the
// evaluation — *planted truths*: a known cluster at (185°, −0.5°) that makes
// Query 1 return exactly the paper's 19 galaxies, a scale-proportional
// asteroid population for Query 15A, and exactly four NEO streak pairs for
// the modified Query 15B.
package pipeline

import (
	"fmt"
	"math"

	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// EDR cardinalities from Table 1 of the paper; the generator scales all of
// them by Config.Scale.
const (
	EDRPhotoObj  = 14_000_000
	EDRField     = 14_000
	EDRSpecObj   = 63_000
	EDRPlates    = 98
	EDRLinesPer  = 27 // 1.7M SpecLine / 63k SpecObj
	EDRAsteroids = 1303
	EDRNeighbors = 111_000_000
)

// Config parameterizes the synthetic survey.
type Config struct {
	// Seed makes the survey deterministic; equal seeds and scales yield
	// byte-identical surveys.
	Seed int64
	// Scale is the fraction of the EDR to generate (PhotoObj ≈ 14M×Scale).
	// Zero defaults to 1/2000 (~7k objects), the unit-test scale.
	Scale float64
	// SkipFrames suppresses image-pyramid rendering for benchmarks that
	// only exercise catalog tables.
	SkipFrames bool
	// SkipBlobs suppresses Profile cutout/profile blobs.
	SkipBlobs bool
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 1.0 / 2000
	}
	if c.Seed == 0 {
		c.Seed = 20020603 // SIGMOD 2002, June 3
	}
}

// Footprint returns the synthetic survey grid: one 2.5°-wide stripe whose
// right-ascension span grows with scale, always covering the planted
// Query-1 point at (185, −0.5).
func (c Config) Footprint() sky.Grid {
	cc := c
	cc.defaults()
	fields := int(math.Round(EDRField * cc.Scale / 12)) // 2 strips × 6 camcols
	if fields < 37 {
		fields = 37 // keep ra 180..186+ so (185,-0.5) is inside
	}
	if fields > 300 {
		fields = 300
	}
	return sky.Grid{Stripes: 1, FieldsPerStrip: fields, RA0: 180, Dec0: -1.25}
}

// Truth records the planted ground truths the evaluation checks against.
type Truth struct {
	// Q1Galaxies is the number of unsaturated primary galaxies within 1′
	// of (185, −0.5): planted to the paper's answer, 19.
	Q1Galaxies int
	// Q1TVFRows is the total objects within that circle (the paper's
	// TVF returned 22 rows).
	Q1TVFRows int
	// Asteroids is the planted count of slow-moving objects satisfying
	// Query 15A's velocity window.
	Asteroids int
	// NEOPairs is the planted count of streak pairs satisfying the
	// modified Query 15B (the paper found 4, one degenerate).
	NEOPairs int
	// Objects counts PhotoObj rows; Primaries those with mode=1.
	Objects   int
	Primaries int
	// Specs counts SpecObj rows.
	Specs int
}

// Stats summarizes a generation run.
type Stats struct {
	Truth Truth
	// RowCounts per table name.
	RowCounts map[string]int
}

// Emitter receives generated rows table by table. The loader implements
// this to stream rows into the database or to CSV files.
type Emitter interface {
	Emit(table string, row val.Row) error
}

// EmitterFunc adapts a function to the Emitter interface.
type EmitterFunc func(table string, row val.Row) error

// Emit implements Emitter.
func (f EmitterFunc) Emit(table string, row val.Row) error { return f(table, row) }

// ObjID packs the survey address into the SDSS 64-bit object id layout:
// skyVersion(5) | rerun(11) | run(16) | camcol(3) | field(13) | obj(16).
func ObjID(skyVersion, rerun, run, camcol, field, obj int) int64 {
	return int64(skyVersion)<<59 | int64(rerun)<<48 | int64(run)<<32 |
		int64(camcol)<<29 | int64(field)<<16 | int64(obj)
}

// FieldID packs a field address.
func FieldID(run, camcol, field int) int64 {
	return int64(run)<<32 | int64(camcol)<<16 | int64(field)
}

// SpecObjID packs a plate/fiber address.
func SpecObjID(plate, fiber int) int64 {
	return int64(plate)<<16 | int64(fiber)
}

// rowBuilder fills table rows by column name with a pre-typed template, so
// the generator can set only the interesting columns of PhotoObj's ~220.
type rowBuilder struct {
	t        *sqlengine.Table
	template val.Row
}

func newRowBuilder(t *sqlengine.Table) *rowBuilder {
	tpl := make(val.Row, len(t.Cols))
	for i, c := range t.Cols {
		if !c.NotNull {
			tpl[i] = val.Null()
			continue
		}
		switch c.Kind {
		case val.KindInt:
			tpl[i] = val.Int(0)
		case val.KindFloat:
			tpl[i] = val.Float(0)
		case val.KindString:
			tpl[i] = val.Str("")
		default:
			tpl[i] = val.Null()
		}
	}
	return &rowBuilder{t: t, template: tpl}
}

// row returns a fresh row pre-filled with typed zero values.
func (b *rowBuilder) row() val.Row {
	out := make(val.Row, len(b.template))
	copy(out, b.template)
	return out
}

// set assigns a column by name, panicking on unknown names (a programming
// error in the generator, not a data error).
func (b *rowBuilder) set(row val.Row, name string, v val.Value) {
	i := b.t.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("pipeline: no column %s in %s", name, b.t.Name))
	}
	row[i] = v
}
