package sqlengine

import (
	"testing"

	"skyserver/internal/val"
)

// selectItemExpr parses a one-item SELECT and returns the item expression.
func selectItemExpr(t *testing.T, sql string) Expr {
	t.Helper()
	stmts, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmts[0].(*SelectStmt).Items[0].Expr
}

func TestCaseVectorizes(t *testing.T) {
	db, _ := testDB(t)
	sc := &scope{cols: []ColRef{
		{Name: "mag_r", Kind: val.KindFloat},
		{Name: "mag_g", Kind: val.KindFloat},
	}}
	for _, sql := range []string{
		// Simple comparison condition.
		"select case when mag_r > 16 then 1 else 0 end from t",
		// Compound AND/OR conditions must go through the predicate
		// compiler, not force the whole CASE onto the row fallback.
		"select case when mag_r > 16 and mag_g < 18 then 1 else 0 end from t",
		"select case when mag_r > 16 or mag_g < 18 then mag_r when mag_g > 17 then mag_g end from t",
	} {
		cv, err := compileVec(selectItemExpr(t, sql), sc, db)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if cv.vec == nil {
			t.Errorf("CASE fell back to the row path: %q", sql)
		}
	}
}

func TestCaseAfterVectorizedFilter(t *testing.T) {
	// The batch reaching the CASE kernel already carries a narrowed
	// selection backed by the batch's own scratch — which the WHEN
	// predicates reuse. The kernel must snapshot and faithfully restore
	// that selection, or the projection emits arm-survivor rows instead
	// of the filtered row set. Oracle: the row fallback.
	_, s := testDB(t)
	for _, q := range []string{
		"select objID, case when mag_r > 17 then 1 else 0 end as c from Obj where type = 3 order by objID",
		"select objID, case when mag_r > 17 and mag_g < 18 then mag_r when mag_g > 19 then mag_g end as c from Obj where type = 3 and camcol in (1, 2, 3) order by objID",
		"select count(*) from Obj where case when type = 3 then mag_r else mag_g end > 16",
	} {
		vec := mustExec(t, s, q)
		row, err := s.Exec(q, ExecOptions{ForceRowExprs: true, DisablePlanCache: true})
		if err != nil {
			t.Fatalf("%q row fallback: %v", q, err)
		}
		if len(vec.Rows) != len(row.Rows) {
			t.Fatalf("%q: rows diverge: vec %d, row %d", q, len(vec.Rows), len(row.Rows))
		}
		for i := range vec.Rows {
			if val.Row(vec.Rows[i]).Compare(val.Row(row.Rows[i])) != 0 {
				t.Fatalf("%q row %d diverges: %v vs %v", q, i, vec.Rows[i], row.Rows[i])
			}
		}
	}
}

func TestCaseLazyArmEvaluation(t *testing.T) {
	// The guarded division only runs on rows the condition selected: rows
	// with mag_r = 15 must never reach 1/(mag_r-15), under both the
	// vectorized kernel and the row fallback.
	_, s := testDB(t)
	const q = `select objID, case when mag_r <> 15 and mag_g <> 99 then 1/(mag_r - 15) else 0 end as inv
		from Obj order by objID`
	vec := mustExec(t, s, q)
	row, err := s.Exec(q, ExecOptions{ForceRowExprs: true, DisablePlanCache: true})
	if err != nil {
		t.Fatalf("row fallback: %v", err)
	}
	if len(vec.Rows) != 60 || len(row.Rows) != len(vec.Rows) {
		t.Fatalf("rows: vec %d, row %d", len(vec.Rows), len(row.Rows))
	}
	for i := range vec.Rows {
		if val.Row(vec.Rows[i]).Compare(val.Row(row.Rows[i])) != 0 {
			t.Fatalf("row %d diverges: %v vs %v", i, vec.Rows[i], row.Rows[i])
		}
	}
}
