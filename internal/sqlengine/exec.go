package sqlengine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skyserver/internal/btree"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// ExecCtx carries per-query execution state: the database, session
// variables, resource limits (the public SkyServer's 30-second / 1,000-row
// caps live here), and counters for the statistics window of SkyServerQA.
type ExecCtx struct {
	DB      *DB
	Session *Session
	// Deadline aborts the query when exceeded (zero = none).
	Deadline time.Time
	// DOP is the degree of parallelism for heap scans; 0 = one worker
	// per volume, 1 = serial.
	DOP int

	// Stats.
	RowsScanned atomic.Int64
	RowsOutput  atomic.Int64
}

// ErrTimeout is returned when a query exceeds its deadline, like the public
// server's 30-second computation limit.
var ErrTimeout = errors.New("sql: query exceeded the time limit")

// errStopEarly aborts execution without error (TOP n satisfied).
var errStopEarly = errors.New("sql: stop early")

func (ctx *ExecCtx) checkDeadline() error {
	if !ctx.Deadline.IsZero() && time.Now().After(ctx.Deadline) {
		return ErrTimeout
	}
	return nil
}

type emitFn func(row val.Row) error

// Node is a physical plan operator.
type Node interface {
	Columns() []ColRef
	Run(ctx *ExecCtx, emit emitFn) error
	explainTo(sb *strings.Builder, depth int)
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

// Explain renders the plan tree as indented text (Figures 10–12).
func Explain(n Node) string {
	var sb strings.Builder
	n.explainTo(&sb, 0)
	return sb.String()
}

// ---- dual (FROM-less SELECT) ----

type dualNode struct{}

func (dualNode) Columns() []ColRef { return nil }
func (dualNode) Run(ctx *ExecCtx, emit emitFn) error {
	return emit(val.Row{})
}
func (dualNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	sb.WriteString("ConstantScan\n")
}

// ---- heap scan ----

// scanNode is a (possibly parallel) sequential scan of a base table heap
// with an optional pushed-down filter: Figure 11's "parallel table scan …
// evaluating the predicate on each of the 14M objects".
type scanNode struct {
	table  *Table
	cols   []ColRef
	needed []bool
	filter compiledExpr
	label  string // filter text for EXPLAIN
}

func (s *scanNode) Columns() []ColRef { return s.cols }

// scanBatch is how many matching rows a scan worker accumulates before
// taking the emit lock once for the whole batch — decode and filtering stay
// fully parallel, and downstream serialization amortizes across the batch.
const scanBatch = 256

func (s *scanNode) Run(ctx *ExecCtx, emit emitFn) error {
	width := len(s.table.Cols)
	var mu sync.Mutex
	var rowsSeen atomic.Int64
	err := s.table.heap.ScanWorkers(ctx.DOP, func(worker int) (storage.ScanFunc, func() error) {
		batch := make([]val.Row, 0, scanBatch)
		// Rows are decoded into a reused scratch and cloned only when
		// the filter passes: a selective scan over the ~220-column
		// PhotoObj does not allocate per visited record.
		scratch := make(val.Row, width)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			mu.Lock()
			defer mu.Unlock()
			for _, row := range batch {
				if err := emit(row); err != nil {
					return err
				}
			}
			batch = batch[:0]
			return nil
		}
		fn := func(rid storage.RID, rec []byte) error {
			if n := rowsSeen.Add(1); n%4096 == 0 {
				if err := ctx.checkDeadline(); err != nil {
					return err
				}
			}
			if s.needed != nil {
				for i := range scratch {
					scratch[i] = val.Null()
				}
			}
			if _, err := val.DecodeRow(rec, scratch, width, s.needed); err != nil {
				return err
			}
			if s.filter != nil {
				ok, err := s.filter(ctx, scratch)
				if err != nil {
					return err
				}
				if !ok.Truthy() {
					return nil
				}
			}
			// Clone deep-copies blob bytes, which alias the page buffer.
			batch = append(batch, scratch.Clone())
			if len(batch) >= scanBatch {
				return flush()
			}
			return nil
		}
		return fn, flush
	})
	ctx.RowsScanned.Add(rowsSeen.Load())
	return err
}

func (s *scanNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	dop := "parallel"
	fmt.Fprintf(sb, "TableScan(%s, %s", s.table.Name, dop)
	if s.label != "" {
		fmt.Fprintf(sb, ", filter=%s", s.label)
	}
	sb.WriteString(")\n")
}

// ---- index scan / seek ----

// boundKind describes the upper bound of an index range.
type boundKind int

const (
	boundNone boundKind = iota
	boundInclusive
	boundExclusive
)

// indexScanNode seeks or scans a B-tree index. With an equality prefix it
// is an index seek; with no bounds but full coverage it is the
// covered-column scan that replaces the paper's tag tables (10–100× less
// data than the base table).
type indexScanNode struct {
	table *Table
	index *Index
	cols  []ColRef

	// Seek bounds: eq prefix values, then an optional range on the next
	// key column. All compiled against the empty scope (constants/vars).
	eqExprs []compiledExpr
	loExpr  compiledExpr
	loIncl  bool
	hiExpr  compiledExpr
	hiKind  boundKind

	covering bool
	needed   []bool // heap columns needed when not covering
	filter   compiledExpr
	label    string
	// estRows is the planner's dive-based cardinality estimate (−1 when
	// unknown), reused for join ordering.
	estRows float64
}

func (s *indexScanNode) Columns() []ColRef { return s.cols }

func (s *indexScanNode) Run(ctx *ExecCtx, emit emitFn) error {
	// Evaluate bounds.
	eq := make(val.Row, len(s.eqExprs))
	for i, e := range s.eqExprs {
		v, err := e(ctx, nil)
		if err != nil {
			return err
		}
		eq[i] = v
	}
	var lo val.Row
	lo = append(lo, eq...)
	loOpen := false
	if s.loExpr != nil {
		v, err := s.loExpr(ctx, nil)
		if err != nil {
			return err
		}
		lo = append(lo, v)
		loOpen = !s.loIncl
	}
	var hiVal val.Value
	if s.hiExpr != nil {
		v, err := s.hiExpr(ctx, nil)
		if err != nil {
			return err
		}
		hiVal = v
	}
	width := len(s.table.Cols)
	buf := make([]byte, storage.PageSize)
	// Entries are assembled on a reused scratch row; only filter survivors
	// are cloned out (covered scans over wide tables stay allocation-free
	// per entry).
	scratch := make(val.Row, width)
	rows := int64(0)
	var innerErr error
	it := s.index.tree.Seek(lo)
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		rows++
		if rows%4096 == 0 {
			if err := ctx.checkDeadline(); err != nil {
				innerErr = err
				break
			}
		}
		// Check the equality prefix.
		if len(eq) > 0 {
			if e.Key[:len(eq)].Compare(eq) != 0 {
				break
			}
		}
		rangePos := len(eq)
		if s.loExpr != nil && loOpen {
			if e.Key[rangePos].Compare(lo[rangePos]) == 0 {
				continue
			}
		}
		if s.hiKind != boundNone {
			c := e.Key[rangePos].Compare(hiVal)
			if c > 0 || (c == 0 && s.hiKind == boundExclusive) {
				break
			}
		}
		if s.covering {
			for i := range scratch {
				scratch[i] = val.Null()
			}
			for i, c := range s.index.KeyCols {
				scratch[c] = e.Key[i]
			}
			for i, c := range s.index.InclCols {
				scratch[c] = e.Incl[i]
			}
		} else {
			rec, err := s.table.heap.Get(storage.RID(e.RID), buf)
			if err != nil {
				innerErr = err
				break
			}
			if s.needed != nil {
				for i := range scratch {
					scratch[i] = val.Null()
				}
			}
			if _, err := val.DecodeRow(rec, scratch, width, s.needed); err != nil {
				innerErr = err
				break
			}
		}
		if s.filter != nil {
			ok, err := s.filter(ctx, scratch)
			if err != nil {
				innerErr = err
				break
			}
			if !ok.Truthy() {
				continue
			}
		}
		if err := emit(scratch.Clone()); err != nil {
			innerErr = err
			break
		}
	}
	ctx.RowsScanned.Add(rows)
	return innerErr
}

func (s *indexScanNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	kind := "IndexScan"
	if len(s.eqExprs) > 0 || s.loExpr != nil || s.hiExpr != nil {
		kind = "IndexSeek"
	}
	fmt.Fprintf(sb, "%s(%s.%s", kind, s.table.Name, s.index.Name)
	if s.covering {
		sb.WriteString(", covering")
	}
	if s.label != "" {
		fmt.Fprintf(sb, ", filter=%s", s.label)
	}
	sb.WriteString(")\n")
}

// ---- table-valued function ----

type tvfNode struct {
	fn    *TableFunc
	args  []compiledExpr
	cols  []ColRef
	label string
}

func (t *tvfNode) Columns() []ColRef { return t.cols }

func (t *tvfNode) Run(ctx *ExecCtx, emit emitFn) error {
	args := make([]val.Value, len(t.args))
	for i, a := range t.args {
		v, err := a(ctx, nil)
		if err != nil {
			return err
		}
		args[i] = v
	}
	rows, err := t.fn.Fn(ctx, args)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

func (t *tvfNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "TableValuedFunction(%s(%s), estRows=%d)\n", t.fn.Name, t.label, t.fn.EstRows)
}

// ---- temp (memory) table scan ----

type memScanNode struct {
	mem    *MemTable
	cols   []ColRef
	filter compiledExpr
	label  string
}

func (m *memScanNode) Columns() []ColRef { return m.cols }

func (m *memScanNode) Run(ctx *ExecCtx, emit emitFn) error {
	for i, row := range m.mem.Rows {
		if i%4096 == 4095 {
			if err := ctx.checkDeadline(); err != nil {
				return err
			}
		}
		if m.filter != nil {
			ok, err := m.filter(ctx, row)
			if err != nil {
				return err
			}
			if !ok.Truthy() {
				continue
			}
		}
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

func (m *memScanNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "TempTableScan(%s", m.mem.Name)
	if m.label != "" {
		fmt.Fprintf(sb, ", filter=%s", m.label)
	}
	sb.WriteString(")\n")
}

// ---- joins ----

// indexJoinNode is the nested-loop join of Figure 10 and Figure 12: for each
// outer row, probe the inner table's index with key values computed from the
// outer row, then evaluate the residual predicate on the combined row.
type indexJoinNode struct {
	outer Node
	inner *Table
	index *Index
	cols  []ColRef

	probeExprs []compiledExpr // one per leading index key column, over outer row
	innerWidth int
	covering   bool
	needed     []bool
	residual   compiledExpr // over combined row
	label      string
}

func (j *indexJoinNode) Columns() []ColRef { return j.cols }

func (j *indexJoinNode) Run(ctx *ExecCtx, emit emitFn) error {
	buf := make([]byte, storage.PageSize)
	var mu sync.Mutex // outer may be a parallel scan
	// Candidates are assembled on a reused scratch row and only copied out
	// when the residual passes, so wide-row probes don't allocate per
	// index entry.
	var scratch val.Row
	return j.outer.Run(ctx, func(outerRow val.Row) error {
		mu.Lock()
		defer mu.Unlock()
		if scratch == nil {
			scratch = make(val.Row, len(outerRow)+j.innerWidth)
		}
		copy(scratch, outerRow)
		innerPart := scratch[len(outerRow):]
		key := make(val.Row, len(j.probeExprs))
		for i, pe := range j.probeExprs {
			v, err := pe(ctx, outerRow)
			if err != nil {
				return err
			}
			key[i] = v
		}
		var innerErr error
		it := j.index.tree.Seek(key)
		for ; it.Valid(); it.Next() {
			e := it.Entry()
			if e.Key[:len(key)].Compare(key) != 0 {
				break
			}
			ctx.RowsScanned.Add(1)
			if j.covering {
				for i := range innerPart {
					innerPart[i] = val.Null()
				}
				for i, c := range j.index.KeyCols {
					innerPart[c] = e.Key[i]
				}
				for i, c := range j.index.InclCols {
					innerPart[c] = e.Incl[i]
				}
			} else {
				rec, err := j.inner.heap.Get(storage.RID(e.RID), buf)
				if err != nil {
					innerErr = err
					break
				}
				if j.needed != nil {
					for i := range innerPart {
						innerPart[i] = val.Null()
					}
				}
				if _, err := val.DecodeRow(rec, innerPart, j.innerWidth, j.needed); err != nil {
					innerErr = err
					break
				}
				for i := range innerPart {
					if innerPart[i].K == val.KindBytes {
						b := make([]byte, len(innerPart[i].B))
						copy(b, innerPart[i].B)
						innerPart[i].B = b
					}
				}
			}
			if j.residual != nil {
				ok, err := j.residual(ctx, scratch)
				if err != nil {
					innerErr = err
					break
				}
				if !ok.Truthy() {
					continue
				}
			}
			out := make(val.Row, len(scratch))
			copy(out, scratch)
			if err := emit(out); err != nil {
				innerErr = err
				break
			}
		}
		return innerErr
	})
}

func (j *indexJoinNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "NestedLoopJoin(probe %s via %s", j.inner.Name, j.index.Name)
	if j.covering {
		sb.WriteString(", covering")
	}
	if j.label != "" {
		fmt.Fprintf(sb, ", residual=%s", j.label)
	}
	sb.WriteString(")\n")
	j.outer.explainTo(sb, depth+1)
	indent(sb, depth+1)
	fmt.Fprintf(sb, "IndexSeek(%s.%s, per outer row)\n", j.inner.Name, j.index.Name)
}

// nlJoinNode materializes its inner input once, then nested-loops the outer
// against it — the fallback when no index probe applies (the paper's
// "without the index the query takes about 10 minutes — a nested-loops join
// of two table scans").
type nlJoinNode struct {
	outer Node
	inner Node
	cols  []ColRef
	cond  compiledExpr
	label string
}

func (j *nlJoinNode) Columns() []ColRef { return j.cols }

func (j *nlJoinNode) Run(ctx *ExecCtx, emit emitFn) error {
	var innerRows []val.Row
	var mu sync.Mutex
	if err := j.inner.Run(ctx, func(r val.Row) error {
		mu.Lock()
		innerRows = append(innerRows, r)
		mu.Unlock()
		return nil
	}); err != nil {
		return err
	}
	innerWidth := len(j.inner.Columns())
	var emitMu sync.Mutex
	rows := int64(0)
	// The condition is evaluated on a reused scratch row; only matches are
	// copied out, so a selective join over wide rows does not allocate per
	// candidate pair.
	var scratch val.Row
	err := j.outer.Run(ctx, func(outerRow val.Row) error {
		emitMu.Lock()
		defer emitMu.Unlock()
		if scratch == nil {
			scratch = make(val.Row, len(outerRow)+innerWidth)
		}
		copy(scratch, outerRow)
		for _, ir := range innerRows {
			rows++
			if rows%8192 == 0 {
				if err := ctx.checkDeadline(); err != nil {
					return err
				}
			}
			copy(scratch[len(outerRow):], ir)
			if j.cond != nil {
				ok, err := j.cond(ctx, scratch)
				if err != nil {
					return err
				}
				if !ok.Truthy() {
					continue
				}
			}
			out := make(val.Row, len(scratch))
			copy(out, scratch)
			if err := emit(out); err != nil {
				return err
			}
		}
		return nil
	})
	ctx.RowsScanned.Add(rows)
	return err
}

func (j *nlJoinNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	sb.WriteString("NestedLoopJoin(materialized inner")
	if j.label != "" {
		fmt.Fprintf(sb, ", cond=%s", j.label)
	}
	sb.WriteString(")\n")
	j.outer.explainTo(sb, depth+1)
	j.inner.explainTo(sb, depth+1)
}

// ---- filter ----

type filterNode struct {
	child Node
	cond  compiledExpr
	label string
}

func (f *filterNode) Columns() []ColRef { return f.child.Columns() }

func (f *filterNode) Run(ctx *ExecCtx, emit emitFn) error {
	return f.child.Run(ctx, func(row val.Row) error {
		ok, err := f.cond(ctx, row)
		if err != nil {
			return err
		}
		if !ok.Truthy() {
			return nil
		}
		return emit(row)
	})
}

func (f *filterNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Filter(%s)\n", f.label)
	f.child.explainTo(sb, depth+1)
}

// ---- aggregation ----

type aggSpec struct {
	name string // count, sum, avg, min, max
	arg  compiledExpr
}

// aggNode computes GROUP BY aggregation in one pass over its input. Output
// columns are the group-by expressions followed by the aggregates.
type aggNode struct {
	child     Node
	cols      []ColRef
	groupBy   []compiledExpr
	aggs      []aggSpec
	keyLabels []string
	aggLabels []string
}

type aggState struct {
	key    val.Row
	counts []int64
	sums   []float64
	mins   []val.Value
	maxs   []val.Value
	seen   []bool
}

func (a *aggNode) Columns() []ColRef { return a.cols }

func (a *aggNode) Run(ctx *ExecCtx, emit emitFn) error {
	groups := make(map[string]*aggState)
	order := []string{}
	var mu sync.Mutex
	err := a.child.Run(ctx, func(row val.Row) error {
		key := make(val.Row, len(a.groupBy))
		for i, g := range a.groupBy {
			v, err := g(ctx, row)
			if err != nil {
				return err
			}
			key[i] = v
		}
		kb := string(val.AppendRow(nil, key))
		mu.Lock()
		defer mu.Unlock()
		st, ok := groups[kb]
		if !ok {
			st = &aggState{
				key:    key.Clone(),
				counts: make([]int64, len(a.aggs)),
				sums:   make([]float64, len(a.aggs)),
				mins:   make([]val.Value, len(a.aggs)),
				maxs:   make([]val.Value, len(a.aggs)),
				seen:   make([]bool, len(a.aggs)),
			}
			groups[kb] = st
			order = append(order, kb)
		}
		for i, ag := range a.aggs {
			if ag.arg == nil { // COUNT(*)
				st.counts[i]++
				continue
			}
			v, err := ag.arg(ctx, row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			if f, ok := v.AsFloat(); ok {
				st.sums[i] += f
			}
			if !st.seen[i] {
				st.mins[i], st.maxs[i] = v, v
				st.seen[i] = true
			} else {
				if v.Compare(st.mins[i]) < 0 {
					st.mins[i] = v
				}
				if v.Compare(st.maxs[i]) > 0 {
					st.maxs[i] = v
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// A global aggregate over zero rows still yields one output row.
	if len(a.groupBy) == 0 && len(order) == 0 {
		st := &aggState{
			counts: make([]int64, len(a.aggs)),
			sums:   make([]float64, len(a.aggs)),
			mins:   make([]val.Value, len(a.aggs)),
			maxs:   make([]val.Value, len(a.aggs)),
			seen:   make([]bool, len(a.aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	for _, kb := range order {
		st := groups[kb]
		out := make(val.Row, 0, len(a.groupBy)+len(a.aggs))
		out = append(out, st.key...)
		for i, ag := range a.aggs {
			switch ag.name {
			case "count":
				out = append(out, val.Int(st.counts[i]))
			case "sum":
				if st.counts[i] == 0 {
					out = append(out, val.Null())
				} else {
					out = append(out, val.Float(st.sums[i]))
				}
			case "avg":
				if st.counts[i] == 0 {
					out = append(out, val.Null())
				} else {
					out = append(out, val.Float(st.sums[i]/float64(st.counts[i])))
				}
			case "min":
				if !st.seen[i] {
					out = append(out, val.Null())
				} else {
					out = append(out, st.mins[i])
				}
			case "max":
				if !st.seen[i] {
					out = append(out, val.Null())
				} else {
					out = append(out, st.maxs[i])
				}
			default:
				return fmt.Errorf("sql: unknown aggregate %s", ag.name)
			}
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

func (a *aggNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Aggregate(groupBy=[%s], aggs=[%s])\n",
		strings.Join(a.keyLabels, ", "), strings.Join(a.aggLabels, ", "))
	a.child.explainTo(sb, depth+1)
}

// ---- projection ----

// projectNode computes the SELECT list (plus hidden ORDER BY keys appended
// after the visible columns for the sort node to use).
type projectNode struct {
	child  Node
	cols   []ColRef // visible columns only
	exprs  []compiledExpr
	hidden []compiledExpr
	labels []string
}

func (p *projectNode) Columns() []ColRef { return p.cols }

func (p *projectNode) Run(ctx *ExecCtx, emit emitFn) error {
	return p.child.Run(ctx, func(row val.Row) error {
		out := make(val.Row, len(p.exprs)+len(p.hidden))
		for i, e := range p.exprs {
			v, err := e(ctx, row)
			if err != nil {
				return err
			}
			out[i] = v
		}
		for i, e := range p.hidden {
			v, err := e(ctx, row)
			if err != nil {
				return err
			}
			out[len(p.exprs)+i] = v
		}
		return emit(out)
	})
}

func (p *projectNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Project(%s)\n", strings.Join(p.labels, ", "))
	p.child.explainTo(sb, depth+1)
}

// ---- distinct ----

type distinctNode struct {
	child Node
}

func (d *distinctNode) Columns() []ColRef { return d.child.Columns() }

func (d *distinctNode) Run(ctx *ExecCtx, emit emitFn) error {
	seen := make(map[string]bool)
	var mu sync.Mutex
	return d.child.Run(ctx, func(row val.Row) error {
		k := string(val.AppendRow(nil, row))
		mu.Lock()
		dup := seen[k]
		if !dup {
			seen[k] = true
		}
		mu.Unlock()
		if dup {
			return nil
		}
		return emit(row)
	})
}

func (d *distinctNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	sb.WriteString("Distinct\n")
	d.child.explainTo(sb, depth+1)
}

// ---- sort ----

// sortNode materializes, sorts by the key positions, strips hidden columns,
// and emits in order — the "sorted and inserted into the results table" tail
// of Figure 10.
type sortNode struct {
	child    Node
	keyPos   []int
	desc     []bool
	visible  int // columns to keep after sorting
	keyLabel string
}

func (s *sortNode) Columns() []ColRef { return s.child.Columns() }

func (s *sortNode) Run(ctx *ExecCtx, emit emitFn) error {
	var rows []val.Row
	var mu sync.Mutex
	if err := s.child.Run(ctx, func(row val.Row) error {
		mu.Lock()
		rows = append(rows, row)
		mu.Unlock()
		return nil
	}); err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, p := range s.keyPos {
			c := rows[i][p].Compare(rows[j][p])
			if c == 0 {
				continue
			}
			if s.desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, r := range rows {
		if err := emit(r[:s.visible]); err != nil {
			return err
		}
	}
	return nil
}

func (s *sortNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Sort(%s)\n", s.keyLabel)
	s.child.explainTo(sb, depth+1)
}

// ---- top ----

type topNode struct {
	child Node
	n     int
}

func (t *topNode) Columns() []ColRef { return t.child.Columns() }

func (t *topNode) Run(ctx *ExecCtx, emit emitFn) error {
	count := 0
	err := t.child.Run(ctx, func(row val.Row) error {
		if count >= t.n {
			return errStopEarly
		}
		count++
		return emit(row)
	})
	if errors.Is(err, errStopEarly) {
		return nil
	}
	return err
}

func (t *topNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Top(%d)\n", t.n)
	t.child.explainTo(sb, depth+1)
}

// stripHidden drops hidden sort columns when no sort consumed them.
type stripNode struct {
	child   Node
	visible int
}

func (s *stripNode) Columns() []ColRef { return s.child.Columns() }

func (s *stripNode) Run(ctx *ExecCtx, emit emitFn) error {
	return s.child.Run(ctx, func(row val.Row) error {
		return emit(row[:s.visible])
	})
}

func (s *stripNode) explainTo(sb *strings.Builder, depth int) {
	s.child.explainTo(sb, depth)
}

// ensure interface satisfaction
var (
	_ Node = (*scanNode)(nil)
	_ Node = (*indexScanNode)(nil)
	_ Node = (*tvfNode)(nil)
	_ Node = (*memScanNode)(nil)
	_ Node = (*indexJoinNode)(nil)
	_ Node = (*nlJoinNode)(nil)
	_ Node = (*filterNode)(nil)
	_ Node = (*aggNode)(nil)
	_ Node = (*projectNode)(nil)
	_ Node = (*distinctNode)(nil)
	_ Node = (*sortNode)(nil)
	_ Node = (*topNode)(nil)
	_ Node = (*stripNode)(nil)
	_ Node = dualNode{}
	_      = btree.MaxKeyColumns
)
