package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skyserver/internal/btree"
	"skyserver/internal/htm"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// ExecCtx carries per-query execution state: the database, session
// variables, resource limits (the public SkyServer's 30-second / 1,000-row
// caps live here), and counters for the statistics window of SkyServerQA.
type ExecCtx struct {
	DB      *DB
	Session *Session
	// Params is the execution's parameter vector: the literal values the
	// normalizer extracted from this statement's text, bound fresh on every
	// execution. Compiled plans reference slots of it (ParamExpr), which is
	// what lets one immutable plan serve every constant binding of a query
	// shape.
	Params []val.Value
	// Ctx is the per-query context: cancellation (a closed HTTP
	// connection, an admission-control abort) is polled by every operator
	// at batch boundaries and by the storage scan loop between morsels.
	// nil means no cancellation (context.Background()).
	Ctx context.Context
	// Deadline aborts the query when exceeded (zero = none).
	Deadline time.Time
	// DOP is the degree of parallelism for heap scans; 0 = one worker
	// per volume, 1 = serial.
	DOP int
	// MaxDOP caps the resolved scan parallelism (0 = uncapped) — the
	// ExecOptions.MaxConcurrency knob.
	MaxDOP int
	// ForceRowExprs disables the vectorized expression kernels, routing
	// every filter and projection through the row-at-a-time fallback.
	// Data still flows in batches; only expression evaluation changes.
	// Used by equivalence tests and the batch-vs-row benchmark.
	ForceRowExprs bool
	// DisablePooling routes every batch and scratch acquisition to a
	// fresh allocation instead of the val pools — the debug oracle the
	// equivalence tests run against to prove recycling never corrupts
	// results.
	DisablePooling bool

	// Stats.
	RowsScanned  atomic.Int64
	RowsOutput   atomic.Int64
	PagesScanned atomic.Int64
}

// queryCtx returns the query's context (never nil).
func (ctx *ExecCtx) queryCtx() context.Context {
	if ctx.Ctx != nil {
		return ctx.Ctx
	}
	return context.Background()
}

// scanDOP resolves the effective heap-scan parallelism for a table with
// the given stripe width: DOP (0 = one worker per volume) clamped to
// MaxDOP.
func (ctx *ExecCtx) scanDOP(volumes int) int {
	dop := ctx.DOP
	if dop <= 0 {
		dop = volumes
	}
	if ctx.MaxDOP > 0 && dop > ctx.MaxDOP {
		dop = ctx.MaxDOP
	}
	return dop
}

// getBatch acquires a batch for an operator: pooled unless DisablePooling.
// Operators release unconditionally (Release is a no-op on unpooled
// batches) after the last emit that could reference the batch returns.
func (ctx *ExecCtx) getBatch(width, capacity int, need []bool) *val.Batch {
	if ctx.DisablePooling {
		return val.NewBatchNeeded(width, need)
	}
	return val.GetBatch(width, capacity, need)
}

// getArena acquires kernel scratch: pooled unless DisablePooling, in which
// case every vector the arena hands out is a fresh allocation.
func (ctx *ExecCtx) getArena() *val.Arena {
	if ctx.DisablePooling {
		return val.NewNoReuseArena()
	}
	return val.GetArena()
}

// getRowStore acquires a slab row materializer for operators that hold
// their input (sort runs, top-k heaps, a join's inner side): pooled unless
// DisablePooling.
func (ctx *ExecCtx) getRowStore(width int) *val.RowStore {
	if ctx.DisablePooling {
		return val.NewNoReuseRowStore(width)
	}
	return val.GetRowStore(width)
}

// ErrTimeout is returned when a query exceeds its deadline, like the public
// server's 30-second computation limit.
var ErrTimeout = errors.New("sql: query exceeded the time limit")

// ErrCanceled is returned when a query's context is canceled before it
// completes (the HTTP client went away, or the server shed the query).
var ErrCanceled = errors.New("sql: query canceled")

// errStopEarly aborts execution without error (TOP n satisfied).
var errStopEarly = errors.New("sql: stop early")

// checkDeadline polls the query's cancellation signals: the wall-clock
// deadline and the context. Operators call it at batch boundaries.
func (ctx *ExecCtx) checkDeadline() error {
	if !ctx.Deadline.IsZero() && time.Now().After(ctx.Deadline) {
		return ErrTimeout
	}
	if ctx.Ctx != nil {
		select {
		case <-ctx.Ctx.Done():
			return mapCtxErr(ctx.Ctx.Err())
		default:
		}
	}
	return nil
}

// mapCtxErr translates a context error into the engine's query errors.
func mapCtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrTimeout
	default:
		return ErrCanceled
	}
}

// batchFn consumes one batch of rows. The batch is owned by the producer
// and valid only for the duration of the call: consumers that retain data
// must copy it out (individual val.Values are safe to keep — producers
// never reuse blob backing bytes, only batch structure). Consumers may
// narrow the batch's selection vector in place. Producers that run
// multiple goroutines must serialize their emit calls, so a consumer never
// sees two concurrent invocations.
type batchFn func(b *val.Batch) error

// Node is a physical plan operator. Run pushes the operator's output to
// emit in batches of up to val.BatchSize rows.
type Node interface {
	Columns() []ColRef
	Run(ctx *ExecCtx, emit batchFn) error
	explainTo(sb *strings.Builder, depth int)
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

// Explain renders the plan tree as indented text (Figures 10–12).
func Explain(n Node) string {
	var sb strings.Builder
	n.explainTo(&sb, 0)
	return sb.String()
}

// sinkFactory hands each producer worker its own downstream sink,
// mirroring storage.ScanBatchesCtx's per-worker callback shape: it is
// called sequentially (never concurrently) once per worker before any
// rows flow, the returned batchFn is then called only from that worker,
// and the returned finalizer (may be nil) runs serially in worker order
// on the driving goroutine after every worker has finished successfully —
// it is not called when the run fails.
type sinkFactory func(worker int) (batchFn, func() error)

// parallelNode is the opt-in half of the operator contract: a node that
// can feed per-worker sinks without funneling through one serialized
// emit. Operators that hold only per-worker state (scan, filter, project)
// implement it and pass the factory through; consumers that need all
// input before producing (agg, sort, top-k) call runParallel to install
// one private accumulator per worker.
type parallelNode interface {
	Node
	RunParallel(ctx *ExecCtx, mk sinkFactory) error
}

// runParallel runs child against per-worker sinks when the child supports
// them; otherwise the worker-0 sink consumes the child's ordinary emit
// stream (which the child serializes internally per the batchFn contract).
func runParallel(ctx *ExecCtx, child Node, mk sinkFactory) error {
	if p, ok := child.(parallelNode); ok {
		return p.RunParallel(ctx, mk)
	}
	sink, done := mk(0)
	if err := child.Run(ctx, sink); err != nil {
		return err
	}
	if done != nil {
		return done()
	}
	return nil
}

// rowLess orders rows by the sort keys, breaking ties with a full-row
// ascending comparison so the order is total. Parallel workers deliver
// rows in nondeterministic (morsel-stealing) order; a total order is what
// makes parallel and serial executions of ORDER BY byte-identical.
func rowLess(a, b val.Row, keyPos []int, desc []bool) bool {
	for k, p := range keyPos {
		c := a[p].Compare(b[p])
		if c == 0 {
			continue
		}
		return (c < 0) != desc[k]
	}
	for p := range a {
		c := a[p].Compare(b[p])
		if c == 0 {
			continue
		}
		return c < 0
	}
	return false
}

// scatter maps an index-entry value position to a batch column.
type scatter struct{ src, dst int }

// buildScatter returns the key and included-column scatter lists for a
// covering index access, pruned to the needed columns (nil = all) so an
// index covering more than the query reads doesn't materialize the excess,
// and shifted by dstOff for join outputs. The planner calls this once at
// compile time; the lists live in the immutable plan.
func buildScatter(ix *Index, needed []bool, dstOff int) (keyDst, inclDst []scatter) {
	n := 0
	for _, c := range ix.KeyCols {
		if needed == nil || needed[c] {
			n++
		}
	}
	keyDst = make([]scatter, 0, n)
	for i, c := range ix.KeyCols {
		if needed == nil || needed[c] {
			keyDst = append(keyDst, scatter{i, dstOff + c})
		}
	}
	n = 0
	for _, c := range ix.InclCols {
		if needed == nil || needed[c] {
			n++
		}
	}
	inclDst = make([]scatter, 0, n)
	for i, c := range ix.InclCols {
		if needed == nil || needed[c] {
			inclDst = append(inclDst, scatter{i, dstOff + c})
		}
	}
	return keyDst, inclDst
}

// outerCopyCols computes the outer-side column lists a join uses for one
// outer batch: read is the columns to gather from the outer batch per row
// (needed downstream and materialized), write is the columns to replicate
// into the join output (all needed, nil outNeeded = all). Needed columns
// the outer batch pruned are set to NULL in scratch once — never
// re-gathered, and written to the output as the NULLs a full row gather
// would have produced.
func outerCopyCols(ob *val.Batch, outerWidth int, outNeeded []bool, scratch val.Row, read, write []int) (r, w []int) {
	read, write = read[:0], write[:0]
	for c := 0; c < outerWidth; c++ {
		if outNeeded != nil && !outNeeded[c] {
			continue
		}
		write = append(write, c)
		if ob.HasCol(c) {
			read = append(read, c)
		} else {
			scratch[c] = val.Value{}
		}
	}
	return read, write
}

// ---- dual (FROM-less SELECT) ----

type dualNode struct{}

func (dualNode) Columns() []ColRef { return nil }
func (dualNode) Run(ctx *ExecCtx, emit batchFn) error {
	b := val.NewBatch(0)
	b.Grow()
	return emit(b)
}
func (dualNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	sb.WriteString("ConstantScan\n")
}

// ---- heap scan ----

// scanNode is a (possibly parallel) sequential scan of a base table heap
// with an optional pushed-down filter: Figure 11's "parallel table scan …
// evaluating the predicate on each of the 14M objects". Each worker
// decodes page-worth record slices into its own batch, filters it with the
// vectorized predicate, and pushes it into its own downstream sink
// (sinkFactory), so decode, predicate evaluation, and — when the consumer
// opts in — everything above stay fully parallel; the plain Run entry
// point wraps one emit in a mutex for consumers that do not.
type scanNode struct {
	table  *Table
	cols   []ColRef
	needed []bool
	filter *compiledPred
	label  string // filter text for EXPLAIN

	// Shard routing, set by the planner when the table shards and the
	// pushed predicate bounds the htmID routing column. The bound exprs
	// are constants/parameters compiled against the empty scope, so the
	// route re-derives per execution from the bound parameter vector;
	// routeStatic is the compile-time (first-seen params) shard count for
	// EXPLAIN. The pushed predicate stays in filter — routing only prunes
	// pages, never rows — so a conservative route is always correct.
	routeLo     compiledExpr // nil = unbounded below
	routeLoIncl bool
	routeHi     compiledExpr // nil = unbounded above
	routeHiIncl bool
	routeStatic int
}

func (s *scanNode) Columns() []ColRef { return s.cols }

// Run is the serialized-emit fallback: every worker shares one
// mutex-wrapped sink, reproducing the pre-parallel emit contract for
// consumers that don't pull per-worker sinks.
func (s *scanNode) Run(ctx *ExecCtx, emit batchFn) error {
	var mu sync.Mutex
	sink := func(b *val.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		return emit(b)
	}
	return s.RunParallel(ctx, func(int) (batchFn, func() error) {
		return sink, nil
	})
}

// routedShards evaluates the route bounds against the execution's
// parameters and intersects the resulting HTM interval with the shard
// ranges. nil means all shards (no usable bounds); an empty slice means
// the bounds are contradictory and nothing needs scanning. Evaluation
// errors and non-integer bounds conservatively route everywhere.
func (s *scanNode) routedShards(ctx *ExecCtx) []int {
	if s.table.ShardCount() == 1 || (s.routeLo == nil && s.routeHi == nil) {
		return nil
	}
	lo, hi := uint64(0), uint64(math.MaxUint64)
	if s.routeLo != nil {
		v, err := s.routeLo(ctx, nil)
		if err != nil || v.K != val.KindInt {
			return nil
		}
		l := v.I
		if !s.routeLoIncl && l < math.MaxInt64 {
			l++
		}
		if l > 0 {
			lo = uint64(l)
		}
	}
	if s.routeHi != nil {
		v, err := s.routeHi(ctx, nil)
		if err != nil || v.K != val.KindInt {
			return nil
		}
		if v.I < 0 {
			return []int{}
		}
		hi = uint64(v.I)
		if s.routeHiIncl {
			hi++
		}
	}
	if hi <= lo {
		return []int{}
	}
	return s.table.shards.Plan().Route([]htm.Range{{Lo: lo, Hi: hi}})
}

func (s *scanNode) RunParallel(ctx *ExecCtx, mk sinkFactory) error {
	if g := s.table.shards; s.table.ShardCount() > 1 {
		shards := s.routedShards(ctx)
		spatial := shards != nil
		if shards == nil {
			shards = make([]int, s.table.ShardCount())
			for i := range shards {
				shards[i] = i
			}
		}
		g.RecordRoute(shards, spatial)
		switch len(shards) {
		case 0:
			return nil
		case 1:
			return s.scanShard(ctx, shards[0], mk)
		default:
			return s.scanScatter(ctx, shards, mk)
		}
	}
	return s.scanShard(ctx, 0, mk)
}

// scanShard scans one shard's heap — the whole table when unsharded.
// This is the PR 8 parallel scan unchanged: ScanBatchesCtx calls mk
// sequentially per worker and runs the finalizers serially in worker
// order after a successful join.
func (s *scanNode) scanShard(ctx *ExecCtx, si int, mk sinkFactory) error {
	width := len(s.table.Cols)
	var rowsSeen atomic.Int64
	var pagesSeen atomic.Int64
	heap := s.table.heaps[si]
	// Per-worker batches and arenas, released together once every worker
	// has exited (ScanBatches joins its goroutines before returning, on
	// success and error alike). The mk callback runs sequentially on this
	// goroutine before the workers start, so the append needs no lock.
	type workerMem struct {
		batch *val.Batch
		ar    *val.Arena
	}
	workers := make([]workerMem, 0, 8)
	dop := ctx.scanDOP(heap.NumVolumes())
	err := heap.ScanBatchesCtx(ctx.queryCtx(), dop, func(worker int) (storage.RecBatchFunc, func() error) {
		batch := ctx.getBatch(width, val.BatchSize, s.needed)
		ar := ctx.getArena()
		workers = append(workers, workerMem{batch, ar})
		sink, done := mk(worker)
		flush := func() error {
			if batch.Size() == 0 {
				return nil
			}
			if err := s.filter.filter(ctx, batch, ar); err != nil {
				return err
			}
			if batch.Len() > 0 {
				if err := sink(batch); err != nil {
					return err
				}
			}
			batch.Reset()
			return nil
		}
		// The storage-level flush runs serially in worker order on the
		// driving goroutine after a successful join — exactly where the
		// sinkFactory contract wants the per-worker finalizer.
		final := flush
		if done != nil {
			final = func() error {
				if err := flush(); err != nil {
					return err
				}
				return done()
			}
		}
		fn := func(rids []storage.RID, recs [][]byte) error {
			ctx.PagesScanned.Add(1)
			pagesSeen.Add(1)
			if n := rowsSeen.Add(int64(len(recs))); n%4096 < int64(len(recs)) {
				if err := ctx.checkDeadline(); err != nil {
					return err
				}
			}
			for _, rec := range recs {
				idx := batch.Grow()
				if _, err := batch.DecodeInto(idx, 0, rec, width, s.needed); err != nil {
					return err
				}
				if batch.Full() {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return fn, final
	})
	for _, w := range workers {
		w.batch.Release()
		w.ar.Release()
	}
	ctx.RowsScanned.Add(rowsSeen.Load())
	if g := s.table.shards; s.table.ShardCount() > 1 {
		g.AddPages(si, uint64(pagesSeen.Load()))
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The storage scan loop surfaces raw context errors; report them
		// as the engine's query errors.
		err = mapCtxErr(err)
	}
	return err
}

// scanScatter fans one logical scan out across the routed shards'
// heaps concurrently and gathers the results through the PR 8 per-worker
// sink contract: every (shard, local worker) pair becomes one global
// worker whose sink and decode state are built sequentially up front,
// each shard's ScanBatchesCtx runs on its own goroutine against its own
// scan pool with a shared cancelable context (one query's retry budget
// and deadline span all shards), and after every shard joins cleanly the
// consumer finalizers run serially in global worker order — so partial
// aggregates and sorted runs merge in a deterministic order and sharded
// output stays byte-identical to single-shard.
func (s *scanNode) scanScatter(ctx *ExecCtx, shards []int, mk sinkFactory) error {
	width := len(s.table.Cols)
	var rowsSeen atomic.Int64
	type shardRun struct {
		si    int
		dop   int
		base  int // first global worker index
		pages atomic.Int64
	}
	var runs []*shardRun
	total := 0
	for _, si := range shards {
		heap := s.table.heaps[si]
		pages := heap.Pages()
		if pages == 0 {
			continue
		}
		// Upper bound on the workers the storage layer will start; its
		// own clamp only ever lowers dop further, leaving trailing global
		// workers idle — harmless, consumers accept workers with no rows.
		dop := ctx.scanDOP(heap.NumVolumes())
		if uint64(dop) > pages {
			dop = int(pages)
		}
		runs = append(runs, &shardRun{si: si, dop: dop, base: total})
		total += dop
	}
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return s.scanShard(ctx, runs[0].si, mk)
	}
	type worker struct {
		batch *val.Batch
		ar    *val.Arena
		done  func() error
		flush func() error
		fn    storage.RecBatchFunc
	}
	workers := make([]*worker, total)
	for _, run := range runs {
		run := run
		for lw := 0; lw < run.dop; lw++ {
			batch := ctx.getBatch(width, val.BatchSize, s.needed)
			ar := ctx.getArena()
			sink, done := mk(run.base + lw)
			w := &worker{batch: batch, ar: ar, done: done}
			w.flush = func() error {
				if batch.Size() == 0 {
					return nil
				}
				if err := s.filter.filter(ctx, batch, ar); err != nil {
					return err
				}
				if batch.Len() > 0 {
					if err := sink(batch); err != nil {
						return err
					}
				}
				batch.Reset()
				return nil
			}
			w.fn = func(rids []storage.RID, recs [][]byte) error {
				ctx.PagesScanned.Add(1)
				run.pages.Add(1)
				if n := rowsSeen.Add(int64(len(recs))); n%4096 < int64(len(recs)) {
					if err := ctx.checkDeadline(); err != nil {
						return err
					}
				}
				for _, rec := range recs {
					idx := batch.Grow()
					if _, err := batch.DecodeInto(idx, 0, rec, width, s.needed); err != nil {
						return err
					}
					if batch.Full() {
						if err := w.flush(); err != nil {
							return err
						}
					}
				}
				return nil
			}
			workers[run.base+lw] = w
		}
	}
	// Scatter: one goroutine per shard. A failing shard cancels the
	// others; each shard's storage finalizer only flushes that worker's
	// residual batch (into its private sink), so cross-shard flush order
	// cannot affect the merged result.
	qctx, cancel := context.WithCancel(ctx.queryCtx())
	defer cancel()
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for ri, run := range runs {
		wg.Add(1)
		go func(ri int, run *shardRun) {
			defer wg.Done()
			err := s.table.heaps[run.si].ScanBatchesCtx(qctx, run.dop, func(lw int) (storage.RecBatchFunc, func() error) {
				w := workers[run.base+lw]
				return w.fn, w.flush
			})
			if err != nil {
				errs[ri] = err
				cancel()
			}
		}(ri, run)
	}
	wg.Wait()
	for _, w := range workers {
		w.batch.Release()
		w.ar.Release()
	}
	ctx.RowsScanned.Add(rowsSeen.Load())
	g := s.table.shards
	for _, run := range runs {
		g.AddPages(run.si, uint64(run.pages.Load()))
	}
	// Prefer real failures over the context errors our own cancel
	// induced on sibling shards; surface a context error only when no
	// shard failed for another reason (i.e. the query itself was
	// canceled or timed out).
	var real []error
	var ctxErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = e
			}
			continue
		}
		real = append(real, e)
	}
	switch {
	case len(real) == 1:
		return real[0]
	case len(real) > 1:
		return errors.Join(real...)
	case ctxErr != nil:
		return mapCtxErr(ctxErr)
	}
	// Gather: all shards joined clean — run the consumer finalizers
	// serially in global worker order, exactly as a single ScanBatchesCtx
	// would have.
	for _, w := range workers {
		if w.done == nil {
			continue
		}
		if err := w.done(); err != nil {
			return err
		}
	}
	return nil
}

func (s *scanNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	dop := "parallel"
	fmt.Fprintf(sb, "TableScan(%s, %s", s.table.Name, dop)
	if n := s.table.ShardCount(); n > 1 {
		// Compile-time route under the first-seen parameters; executions
		// re-derive it from their own bindings.
		fmt.Fprintf(sb, ", Shards(%d/%d)", s.routeStatic, n)
	}
	if s.label != "" {
		fmt.Fprintf(sb, ", filter=%s", s.label)
	}
	sb.WriteString(")\n")
}

// ---- index scan / seek ----

// boundKind describes the upper bound of an index range.
type boundKind int

const (
	boundNone boundKind = iota
	boundInclusive
	boundExclusive
)

// indexScanNode seeks or scans a B-tree index. With an equality prefix it
// is an index seek; with no bounds but full coverage it is the
// covered-column scan that replaces the paper's tag tables (10–100× less
// data than the base table). Entries are assembled directly into a batch —
// covered columns alias the tree's stable entry storage, heap lookups
// decode into batch columns — and the residual filter runs vectorized per
// batch.
type indexScanNode struct {
	table *Table
	index *Index
	cols  []ColRef

	// Seek bounds: eq prefix values, then an optional range on the next
	// key column. All compiled against the empty scope (constants/vars).
	eqExprs []compiledExpr
	loExpr  compiledExpr
	loIncl  bool
	hiExpr  compiledExpr
	hiKind  boundKind

	covering bool
	needed   []bool // heap columns needed when not covering
	filter   *compiledPred
	label    string
	// estRows is the planner's dive-based cardinality estimate (−1 when
	// unknown), reused for join ordering.
	estRows float64
	// keyDst/inclDst are the compile-time scatter lists for covering
	// access (see buildScatter).
	keyDst, inclDst []scatter
}

func (s *indexScanNode) Columns() []ColRef { return s.cols }

func (s *indexScanNode) Run(ctx *ExecCtx, emit batchFn) error {
	// Evaluate bounds. eq and lo share one backing row (lo is eq plus the
	// optional range start), so bound evaluation is a single allocation.
	bounds := make(val.Row, len(s.eqExprs), len(s.eqExprs)+1)
	for i, e := range s.eqExprs {
		v, err := e(ctx, nil)
		if err != nil {
			return err
		}
		bounds[i] = v
	}
	eq := bounds
	lo := bounds
	loOpen := false
	if s.loExpr != nil {
		v, err := s.loExpr(ctx, nil)
		if err != nil {
			return err
		}
		lo = append(lo, v)
		loOpen = !s.loIncl
	}
	var hiVal val.Value
	if s.hiExpr != nil {
		v, err := s.hiExpr(ctx, nil)
		if err != nil {
			return err
		}
		hiVal = v
	}
	width := len(s.table.Cols)
	var buf []byte
	if !s.covering {
		buf = storage.GetPageBuf()
		defer storage.PutPageBuf(buf)
	}
	// Small-result fast path: a seek whose plan-time dive proved a handful
	// of rows acquires the pool's small column class instead of zeroing
	// 1,024-slot arrays per needed column — the fix for the point-lookup
	// (Q8/Q9/Q10A) regression. If the estimate undershoots, the first full
	// small batch upgrades to full-size ones.
	capacity := val.BatchSize
	if s.estRows >= 0 && s.estRows <= val.SmallBatchSize {
		capacity = val.SmallBatchSize
	}
	batch := ctx.getBatch(width, capacity, s.needed)
	defer func() { batch.Release() }()
	ar := ctx.getArena()
	defer ar.Release()
	keyDst, inclDst := s.keyDst, s.inclDst
	flush := func() error {
		if batch.Size() == 0 {
			return nil
		}
		wasFull := batch.Full()
		if err := s.filter.filter(ctx, batch, ar); err != nil {
			return err
		}
		if batch.Len() > 0 {
			if err := emit(batch); err != nil {
				return err
			}
		}
		batch.Reset()
		if wasFull && batch.Cap() < val.BatchSize {
			batch.Release()
			batch = ctx.getBatch(width, val.BatchSize, s.needed)
		}
		return nil
	}
	rows := int64(0)
	var innerErr error
	it := s.index.tree.Seek(lo)
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		rows++
		if rows%4096 == 0 {
			if err := ctx.checkDeadline(); err != nil {
				innerErr = err
				break
			}
		}
		// Check the equality prefix.
		if len(eq) > 0 {
			if e.Key[:len(eq)].Compare(eq) != 0 {
				break
			}
		}
		rangePos := len(eq)
		if s.loExpr != nil && loOpen {
			if e.Key[rangePos].Compare(lo[rangePos]) == 0 {
				continue
			}
		}
		if s.hiKind != boundNone {
			c := e.Key[rangePos].Compare(hiVal)
			if c > 0 || (c == 0 && s.hiKind == boundExclusive) {
				break
			}
		}
		if s.covering {
			idx := batch.Grow()
			for _, sc := range keyDst {
				batch.Put(sc.dst, idx, e.Key[sc.src])
			}
			for _, sc := range inclDst {
				batch.Put(sc.dst, idx, e.Incl[sc.src])
			}
		} else {
			rec, err := s.table.GetRec(storage.RID(e.RID), buf)
			if err != nil {
				innerErr = err
				break
			}
			idx := batch.Grow()
			if _, err := batch.DecodeInto(idx, 0, rec, width, s.needed); err != nil {
				innerErr = err
				break
			}
		}
		if batch.Full() {
			if err := flush(); err != nil {
				innerErr = err
				break
			}
		}
	}
	if innerErr == nil {
		innerErr = flush()
	}
	ctx.RowsScanned.Add(rows)
	return innerErr
}

func (s *indexScanNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	kind := "IndexScan"
	if len(s.eqExprs) > 0 || s.loExpr != nil || s.hiExpr != nil {
		kind = "IndexSeek"
	}
	fmt.Fprintf(sb, "%s(%s.%s", kind, s.table.Name, s.index.Name)
	if s.covering {
		sb.WriteString(", covering")
	}
	if s.label != "" {
		fmt.Fprintf(sb, ", filter=%s", s.label)
	}
	sb.WriteString(")\n")
}

// ---- table-valued function ----

type tvfNode struct {
	fn    *TableFunc
	args  []compiledExpr
	cols  []ColRef
	label string
}

func (t *tvfNode) Columns() []ColRef { return t.cols }

func (t *tvfNode) Run(ctx *ExecCtx, emit batchFn) error {
	args := make([]val.Value, len(t.args))
	for i, a := range t.args {
		v, err := a(ctx, nil)
		if err != nil {
			return err
		}
		args[i] = v
	}
	// The function streams val.Batch directly — no []val.Row
	// materialization between the function and the plan.
	return t.fn.Fn(ctx, args, TVFEmit(emit))
}

func (t *tvfNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "TableValuedFunction(%s(%s), estRows=%d)\n", t.fn.Name, t.label, t.fn.EstRows)
}

// ---- temp (memory) table scan ----

type memScanNode struct {
	mem    *MemTable
	cols   []ColRef
	filter *compiledPred
	label  string
}

func (m *memScanNode) Columns() []ColRef { return m.cols }

func (m *memScanNode) Run(ctx *ExecCtx, emit batchFn) error {
	batch := ctx.getBatch(len(m.cols), len(m.mem.Rows), nil)
	defer batch.Release()
	ar := ctx.getArena()
	defer ar.Release()
	flush := func() error {
		if batch.Size() == 0 {
			return nil
		}
		if err := m.filter.filter(ctx, batch, ar); err != nil {
			return err
		}
		if batch.Len() > 0 {
			if err := emit(batch); err != nil {
				return err
			}
		}
		batch.Reset()
		return nil
	}
	for i, row := range m.mem.Rows {
		if i%4096 == 4095 {
			if err := ctx.checkDeadline(); err != nil {
				return err
			}
		}
		batch.AppendRow(row)
		if batch.Full() {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

func (m *memScanNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "TempTableScan(%s", m.mem.Name)
	if m.label != "" {
		fmt.Fprintf(sb, ", filter=%s", m.label)
	}
	sb.WriteString(")\n")
}

// ---- joins ----

// indexJoinNode is the nested-loop join of Figure 10 and Figure 12: for each
// outer row, probe the inner table's index with key values computed from the
// outer row, then evaluate the residual predicate on the combined row.
// Matches accumulate into a combined-width batch — preallocated once from
// the pool with the planner-computed combined needed-column mask, so probe
// output assembly is direct column writes with no per-probe lazy-column
// branches — that the residual filters vectorized before each emit.
type indexJoinNode struct {
	outer Node
	inner *Table
	index *Index
	cols  []ColRef

	probeExprs []compiledExpr // one per leading index key column, over outer row
	innerWidth int
	covering   bool
	needed     []bool // inner columns needed downstream (nil = all)
	// outNeeded marks the combined-width output columns any downstream
	// expression reads (nil = all): the planner's per-source needed masks
	// concatenated in join order. The output batch materializes exactly
	// these columns up front.
	outNeeded []bool
	residual  *compiledPred // over combined row
	label     string
	// keyDst/inclDst are the compile-time scatter lists for covering
	// probes, already shifted past the outer width (see buildScatter).
	keyDst, inclDst []scatter
}

func (j *indexJoinNode) Columns() []ColRef { return j.cols }

func (j *indexJoinNode) Run(ctx *ExecCtx, emit batchFn) error {
	var buf []byte
	if !j.covering {
		buf = storage.GetPageBuf()
		defer storage.PutPageBuf(buf)
	}
	var mu sync.Mutex // outer may be a parallel scan
	outerWidth := len(j.cols) - j.innerWidth
	out := ctx.getBatch(len(j.cols), val.BatchSize, j.outNeeded)
	defer out.Release()
	ar := ctx.getArena()
	defer ar.Release()
	// outerScratch is the sparse row gather the probe expressions and the
	// output copy read: only the columns downstream needs are filled per
	// row, the rest stay NULL — a covering-scan outer of the ~220-column
	// PhotoObj gathers its three needed columns, not 220. It shares one
	// backing allocation with the probe key row.
	scratchBuf := make(val.Row, outerWidth+len(j.probeExprs))
	outerScratch := scratchBuf[:outerWidth:outerWidth]
	key := scratchBuf[outerWidth:]
	flush := func() error {
		if out.Size() == 0 {
			return nil
		}
		if err := j.residual.filter(ctx, out, ar); err != nil {
			return err
		}
		if out.Len() > 0 {
			if err := emit(out); err != nil {
				return err
			}
		}
		out.Reset()
		return nil
	}
	keyDst, inclDst := j.keyDst, j.inclDst
	// Outer gather/replicate lists, recomputed per batch into one reused
	// backing array sized for the worst case (every outer column in both).
	colListBuf := make([]int, 0, 2*outerWidth)
	readCols := colListBuf[:0:outerWidth]
	writeCols := colListBuf[outerWidth : outerWidth : 2*outerWidth]
	err := j.outer.Run(ctx, func(ob *val.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		readCols, writeCols = outerCopyCols(ob, outerWidth, j.outNeeded, outerScratch, readCols, writeCols)
		probed := int64(0)
		sel := ob.Sel()
		for k, n := 0, ob.Len(); k < n; k++ {
			oi := k
			if sel != nil {
				oi = sel[k]
			}
			for _, c := range readCols {
				outerScratch[c] = ob.Col(c)[oi]
			}
			for i, pe := range j.probeExprs {
				v, err := pe(ctx, outerScratch)
				if err != nil {
					return err
				}
				key[i] = v
			}
			it := j.index.tree.Seek(key)
			for ; it.Valid(); it.Next() {
				e := it.Entry()
				if e.Key[:len(key)].Compare(key) != 0 {
					break
				}
				probed++
				idx := out.Grow()
				for _, c := range writeCols {
					out.Col(c)[idx] = outerScratch[c]
				}
				if j.covering {
					for _, sc := range keyDst {
						out.Col(sc.dst)[idx] = e.Key[sc.src]
					}
					for _, sc := range inclDst {
						out.Col(sc.dst)[idx] = e.Incl[sc.src]
					}
				} else {
					rec, err := j.inner.GetRec(storage.RID(e.RID), buf)
					if err != nil {
						return err
					}
					if _, err := out.DecodeInto(idx, outerWidth, rec, j.innerWidth, j.needed); err != nil {
						return err
					}
				}
				if out.Full() {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		ctx.RowsScanned.Add(probed)
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

func (j *indexJoinNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "NestedLoopJoin(probe %s via %s", j.inner.Name, j.index.Name)
	if j.covering {
		sb.WriteString(", covering")
	}
	if j.label != "" {
		fmt.Fprintf(sb, ", residual=%s", j.label)
	}
	sb.WriteString(")\n")
	j.outer.explainTo(sb, depth+1)
	indent(sb, depth+1)
	fmt.Fprintf(sb, "IndexSeek(%s.%s, per outer row)\n", j.inner.Name, j.index.Name)
}

// nlJoinNode materializes its inner input once, then nested-loops the outer
// against it — the fallback when no index probe applies (the paper's
// "without the index the query takes about 10 minutes — a nested-loops join
// of two table scans").
type nlJoinNode struct {
	outer Node
	inner Node
	cols  []ColRef
	// outNeeded marks the combined-width output columns downstream reads
	// (nil = all); see indexJoinNode.outNeeded.
	outNeeded []bool
	cond      *compiledPred
	label     string
}

func (j *nlJoinNode) Columns() []ColRef { return j.cols }

func (j *nlJoinNode) Run(ctx *ExecCtx, emit batchFn) error {
	innerWidth := len(j.inner.Columns())
	store := ctx.getRowStore(innerWidth)
	defer store.Release()
	var mu sync.Mutex
	if err := j.inner.Run(ctx, func(b *val.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		b.Each(func(i int) { b.RowAt(i, store.NewRow()) })
		return nil
	}); err != nil {
		return err
	}
	innerRows := store.Rows()
	outerWidth := len(j.cols) - innerWidth
	var emitMu sync.Mutex
	rows := int64(0)
	out := ctx.getBatch(len(j.cols), val.BatchSize, j.outNeeded)
	defer out.Release()
	ar := ctx.getArena()
	defer ar.Release()
	outerScratch := make(val.Row, outerWidth)
	colListBuf := make([]int, 0, 2*outerWidth)
	// Inner columns downstream reads; the rest of the materialized row is
	// dropped here instead of being copied through the plan.
	var innerCols []int
	for c := 0; c < innerWidth; c++ {
		if j.outNeeded == nil || j.outNeeded[outerWidth+c] {
			innerCols = append(innerCols, c)
		}
	}
	flush := func() error {
		if out.Size() == 0 {
			return nil
		}
		if err := j.cond.filter(ctx, out, ar); err != nil {
			return err
		}
		if out.Len() > 0 {
			if err := emit(out); err != nil {
				return err
			}
		}
		out.Reset()
		return nil
	}
	readCols := colListBuf[:0:outerWidth]
	writeCols := colListBuf[outerWidth : outerWidth : 2*outerWidth]
	err := j.outer.Run(ctx, func(ob *val.Batch) error {
		emitMu.Lock()
		defer emitMu.Unlock()
		readCols, writeCols = outerCopyCols(ob, outerWidth, j.outNeeded, outerScratch, readCols, writeCols)
		sel := ob.Sel()
		for k, n := 0, ob.Len(); k < n; k++ {
			oi := k
			if sel != nil {
				oi = sel[k]
			}
			for _, c := range readCols {
				outerScratch[c] = ob.Col(c)[oi]
			}
			for _, ir := range innerRows {
				rows++
				if rows%8192 == 0 {
					if err := ctx.checkDeadline(); err != nil {
						return err
					}
				}
				idx := out.Grow()
				for _, c := range writeCols {
					out.Col(c)[idx] = outerScratch[c]
				}
				for _, c := range innerCols {
					out.Col(outerWidth + c)[idx] = ir[c]
				}
				if out.Full() {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	ctx.RowsScanned.Add(rows)
	return err
}

func (j *nlJoinNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	sb.WriteString("NestedLoopJoin(materialized inner")
	if j.label != "" {
		fmt.Fprintf(sb, ", cond=%s", j.label)
	}
	sb.WriteString(")\n")
	j.outer.explainTo(sb, depth+1)
	j.inner.explainTo(sb, depth+1)
}

// ---- filter ----

type filterNode struct {
	child Node
	cond  *compiledPred
	label string
}

func (f *filterNode) Columns() []ColRef { return f.child.Columns() }

// Run is the serial path: one arena shared across calls, safe because the
// child serializes its emit stream per the batchFn contract. Plans whose
// consumer pulls per-worker sinks go through RunParallel instead.
func (f *filterNode) Run(ctx *ExecCtx, emit batchFn) error {
	ar := ctx.getArena()
	defer ar.Release()
	return f.child.Run(ctx, func(b *val.Batch) error {
		if err := f.cond.filter(ctx, b, ar); err != nil {
			return err
		}
		if b.Len() == 0 {
			return nil
		}
		return emit(b)
	})
}

// RunParallel evaluates the predicate in each worker with a private arena
// and passes the per-worker sinks straight through — a filter holds no
// cross-batch state, so it never needs the serialization point.
func (f *filterNode) RunParallel(ctx *ExecCtx, mk sinkFactory) error {
	arenas := make([]*val.Arena, 0, 8)
	err := runParallel(ctx, f.child, func(worker int) (batchFn, func() error) {
		ar := ctx.getArena()
		arenas = append(arenas, ar)
		sink, done := mk(worker)
		return func(b *val.Batch) error {
			if err := f.cond.filter(ctx, b, ar); err != nil {
				return err
			}
			if b.Len() == 0 {
				return nil
			}
			return sink(b)
		}, done
	})
	for _, ar := range arenas {
		ar.Release()
	}
	return err
}

func (f *filterNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Filter(%s)\n", f.label)
	f.child.explainTo(sb, depth+1)
}

// ---- aggregation ----

type aggSpec struct {
	name string // count, sum, avg, min, max
	arg  *compiledVec
}

// aggNode computes GROUP BY aggregation in one pass over its input as a
// two-phase partial+merge: each scan worker accumulates into a private
// aggPartial (no lock anywhere on the per-row path), and after the workers
// join, a serial merge combines the partials — COUNT/SUM add, MIN/MAX
// compare, AVG merges sum+count — preserving first-seen group order.
// Output columns are the group-by expressions followed by the aggregates.
// Group keys and aggregate arguments are evaluated vectorized per batch;
// only the hash-table probe remains per-row. A global aggregate (no GROUP
// BY) skips the hash table entirely and COUNT(*) folds a whole batch at a
// time.
type aggNode struct {
	child     Node
	cols      []ColRef
	groupBy   []*compiledVec
	aggs      []aggSpec
	keyLabels []string
	aggLabels []string
}

type aggState struct {
	key    val.Row
	counts []int64
	sums   []float64
	mins   []val.Value
	maxs   []val.Value
	seen   []bool
}

// aggAlloc carves aggregation states out of chunked slabs, so a grouped
// aggregate with thousands of groups (Q13's sky grid) pays a handful of
// allocations per 256 groups instead of six per group. The first slab is
// retained across pooled reuse (see reset/recycle): a repeated query shape
// with up to aggChunk groups per worker carves all its states without
// allocating. Overflow slabs stay plain allocations dropped to the GC.
type aggAlloc struct {
	nAgg, nKey int
	states     []aggState
	counts     []int64
	sums       []float64
	mins       []val.Value
	maxs       []val.Value
	seen       []bool
	keys       []val.Value
	slab0      *aggSlab
}

// aggSlab is one chunk's full backing, kept addressable so recycle can
// zero it and reset can re-point the carve lists at it.
type aggSlab struct {
	states []aggState
	counts []int64
	sums   []float64
	mins   []val.Value
	maxs   []val.Value
	seen   []bool
	keys   []val.Value
}

const aggChunk = 256

// reset prepares the alloc for a new aggregation of the given shape,
// re-pointing the carve lists at the retained (already zeroed) first slab
// when the shape matches; a shape change drops it and the next get
// reallocates.
func (s *aggAlloc) reset(nAgg, nKey int) {
	chunk := aggChunk
	if nKey == 0 {
		chunk = 1
	}
	if s.slab0 != nil && (s.nAgg != nAgg || s.nKey != nKey || len(s.slab0.states) != chunk) {
		s.slab0 = nil
	}
	s.nAgg, s.nKey = nAgg, nKey
	if sl := s.slab0; sl != nil {
		s.states, s.counts, s.sums = sl.states, sl.counts, sl.sums
		s.mins, s.maxs, s.seen, s.keys = sl.mins, sl.maxs, sl.seen, sl.keys
	}
}

// recycle zeroes the retained first slab — min/max and key Values there
// may pin producer blob backing — and drops the carve lists, so overflow
// slabs are released to the GC.
func (s *aggAlloc) recycle() {
	if sl := s.slab0; sl != nil {
		clear(sl.states)
		clear(sl.counts)
		clear(sl.sums)
		clear(sl.mins)
		clear(sl.maxs)
		clear(sl.seen)
		clear(sl.keys)
	}
	s.states, s.counts, s.sums = nil, nil, nil
	s.mins, s.maxs, s.seen, s.keys = nil, nil, nil, nil
}

// get carves one state, copying the group key into slab-backed storage.
// Key Values are copied shallowly: their string/blob backing is immutable
// producer-fresh memory (the batch contract), never recycled.
func (s *aggAlloc) get(key val.Row) *aggState {
	if len(s.states) == 0 {
		chunk := aggChunk
		if s.nKey == 0 {
			// A global aggregate has exactly one state.
			chunk = 1
		}
		sl := &aggSlab{
			states: make([]aggState, chunk),
			counts: make([]int64, chunk*s.nAgg),
			sums:   make([]float64, chunk*s.nAgg),
			mins:   make([]val.Value, chunk*s.nAgg),
			maxs:   make([]val.Value, chunk*s.nAgg),
			seen:   make([]bool, chunk*s.nAgg),
			keys:   make([]val.Value, chunk*s.nKey),
		}
		if s.slab0 == nil {
			s.slab0 = sl
		}
		s.states, s.counts, s.sums = sl.states, sl.counts, sl.sums
		s.mins, s.maxs, s.seen, s.keys = sl.mins, sl.maxs, sl.seen, sl.keys
	}
	st := &s.states[0]
	s.states = s.states[1:]
	n := s.nAgg
	st.counts, s.counts = s.counts[:n:n], s.counts[n:]
	st.sums, s.sums = s.sums[:n:n], s.sums[n:]
	st.mins, s.mins = s.mins[:n:n], s.mins[n:]
	st.maxs, s.maxs = s.maxs[:n:n], s.maxs[n:]
	st.seen, s.seen = s.seen[:n:n], s.seen[n:]
	if k := s.nKey; k > 0 {
		st.key, s.keys = val.Row(s.keys[:k:k]), s.keys[k:]
		copy(st.key, key)
	}
	return st
}

// add accumulates one non-COUNT(*) argument value into aggregate ai.
func (st *aggState) add(ai int, v val.Value) {
	if v.IsNull() {
		return
	}
	st.counts[ai]++
	if f, ok := v.AsFloat(); ok {
		st.sums[ai] += f
	}
	if !st.seen[ai] {
		st.mins[ai], st.maxs[ai] = v, v
		st.seen[ai] = true
	} else {
		if v.Compare(st.mins[ai]) < 0 {
			st.mins[ai] = v
		}
		if v.Compare(st.maxs[ai]) > 0 {
			st.maxs[ai] = v
		}
	}
}

// merge folds another worker's state for the same group into st: counts
// and sums add (which also merges AVG, rendered as sum/count at output),
// min/max compare. Commutative, so worker merge order only affects
// float rounding the same way arrival order already does.
func (st *aggState) merge(o *aggState) {
	for ai := range st.counts {
		st.counts[ai] += o.counts[ai]
		st.sums[ai] += o.sums[ai]
		if !o.seen[ai] {
			continue
		}
		if !st.seen[ai] {
			st.mins[ai], st.maxs[ai] = o.mins[ai], o.maxs[ai]
			st.seen[ai] = true
			continue
		}
		if o.mins[ai].Compare(st.mins[ai]) < 0 {
			st.mins[ai] = o.mins[ai]
		}
		if o.maxs[ai].Compare(st.maxs[ai]) > 0 {
			st.maxs[ai] = o.maxs[ai]
		}
	}
}

// groupTable maps encoded group keys to aggregation states with an
// open-addressed, power-of-two table whose key bytes live in one retained
// slab. Unlike a map[string]*aggState it allocates nothing per group in
// the steady state — the string copy a Go map insertion forces was a
// per-group-per-query allocation that per-worker partials would have
// multiplied by the scan dop.
type groupTable struct {
	slots []groupSlot
	keys  []byte // slab of concatenated key encodings
	n     int
}

// groupSlot is one table entry; st == nil marks it empty.
type groupSlot struct {
	hash     uint64
	off, end int32 // key bytes in the slab
	st       *aggState
}

const minGroupSlots = 64

// hashKey is FNV-1a over the encoded key.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// lookup returns the state stored under the encoded key, or nil.
func (t *groupTable) lookup(h uint64, key []byte) *aggState {
	if len(t.slots) == 0 {
		return nil
	}
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.st == nil {
			return nil
		}
		if s.hash == h && string(t.keys[s.off:s.end]) == string(key) {
			return s.st
		}
	}
}

// insert stores a state under an encoded key that must not be present.
func (t *groupTable) insert(h uint64, key []byte, st *aggState) {
	if t.n+1 > len(t.slots)*3/4 {
		t.grow()
	}
	off := int32(len(t.keys))
	t.keys = append(t.keys, key...)
	t.place(groupSlot{hash: h, off: off, end: int32(len(t.keys)), st: st})
	t.n++
}

func (t *groupTable) place(s groupSlot) {
	mask := uint64(len(t.slots) - 1)
	i := s.hash & mask
	for t.slots[i].st != nil {
		i = (i + 1) & mask
	}
	t.slots[i] = s
}

func (t *groupTable) grow() {
	old := t.slots
	size := 2 * len(old)
	if size < minGroupSlots {
		size = minGroupSlots
	}
	t.slots = make([]groupSlot, size)
	for i := range old {
		if old[i].st != nil {
			t.place(old[i])
		}
	}
}

// reset empties the table keeping its backing (slots stay at their grown
// size, the key slab keeps its capacity) and drops the state pointers so
// pooled reuse does not pin the previous query's slabs.
func (t *groupTable) reset() {
	clear(t.slots)
	t.keys = t.keys[:0]
	t.n = 0
}

// aggPartial is one worker's private aggregation state: hash table, state
// slabs, evaluated key/argument vectors, and kernel arena. Nothing in it
// is shared, so the per-row accumulation path takes no lock. Partials
// recycle through a sync.Pool with their table and first slab attached —
// the zero-allocation steady state the serialized aggregate already had.
type aggPartial struct {
	alloc      aggAlloc
	tab        groupTable
	order      []*aggState // first-seen order within this worker
	global     *aggState   // the one state of a global (no GROUP BY) aggregate
	keyBufs    [][]val.Value
	argBufs    [][]val.Value
	keyScratch val.Row
	keyEnc     []byte
	ar         *val.Arena
	pooled     bool
}

var aggPartialPool = sync.Pool{New: func() any { return &aggPartial{pooled: true} }}

// getAggPartial acquires a worker partial shaped for the aggregation:
// pooled unless DisablePooling.
func getAggPartial(ctx *ExecCtx, nAgg, nKey int) *aggPartial {
	var p *aggPartial
	if ctx.DisablePooling {
		p = &aggPartial{}
	} else {
		p = aggPartialPool.Get().(*aggPartial)
	}
	p.alloc.reset(nAgg, nKey)
	if cap(p.keyBufs) < nKey {
		p.keyBufs = make([][]val.Value, nKey)
	} else {
		p.keyBufs = p.keyBufs[:nKey]
	}
	if cap(p.argBufs) < nAgg {
		p.argBufs = make([][]val.Value, nAgg)
	} else {
		p.argBufs = p.argBufs[:nAgg]
	}
	if cap(p.keyScratch) < nKey {
		p.keyScratch = make(val.Row, nKey)
	} else {
		p.keyScratch = p.keyScratch[:nKey]
	}
	p.global = nil
	if nKey == 0 {
		p.global = p.alloc.get(nil)
	}
	p.ar = ctx.getArena()
	return p
}

// release zeroes everything that could pin producer memory — slab Values,
// evaluated vectors, table state pointers — and pools the partial.
func (p *aggPartial) release() {
	if p.ar != nil {
		p.ar.Release()
		p.ar = nil
	}
	p.global = nil
	if !p.pooled {
		return
	}
	p.alloc.recycle()
	p.tab.reset()
	for i := range p.keyBufs {
		clear(p.keyBufs[i][:cap(p.keyBufs[i])])
	}
	for i := range p.argBufs {
		clear(p.argBufs[i][:cap(p.argBufs[i])])
	}
	clear(p.keyScratch[:cap(p.keyScratch)])
	o := p.order[:cap(p.order)]
	clear(o)
	p.order = o[:0]
	aggPartialPool.Put(p)
}

// absorb folds one batch into the partial — the per-row path of the
// parallel aggregate, run lock-free on the worker that produced the batch.
func (p *aggPartial) absorb(ctx *ExecCtx, a *aggNode, b *val.Batch) error {
	cnt := b.Len()
	if cnt == 0 {
		return nil
	}
	for gi, g := range a.groupBy {
		buf, err := g.appendTo(ctx, b, p.ar, p.keyBufs[gi][:0])
		if err != nil {
			return err
		}
		p.keyBufs[gi] = buf
	}
	for ai := range a.aggs {
		if a.aggs[ai].arg == nil {
			continue
		}
		buf, err := a.aggs[ai].arg.appendTo(ctx, b, p.ar, p.argBufs[ai][:0])
		if err != nil {
			return err
		}
		p.argBufs[ai] = buf
	}
	if p.global != nil {
		st := p.global
		for ai := range a.aggs {
			if a.aggs[ai].arg == nil { // COUNT(*)
				st.counts[ai] += int64(cnt)
				continue
			}
			for _, v := range p.argBufs[ai][:cnt] {
				st.add(ai, v)
			}
		}
		return nil
	}
	for k := 0; k < cnt; k++ {
		for gi := range p.keyBufs {
			p.keyScratch[gi] = p.keyBufs[gi][k]
		}
		p.keyEnc = val.AppendRow(p.keyEnc[:0], p.keyScratch)
		h := hashKey(p.keyEnc)
		st := p.tab.lookup(h, p.keyEnc)
		if st == nil {
			st = p.alloc.get(p.keyScratch)
			p.tab.insert(h, p.keyEnc, st)
			p.order = append(p.order, st)
		}
		for ai := range a.aggs {
			if a.aggs[ai].arg == nil {
				st.counts[ai]++
				continue
			}
			st.add(ai, p.argBufs[ai][k])
		}
	}
	return nil
}

// merge folds another worker's partial into p, appending groups p has not
// seen in that worker's first-seen order. Values copied out of o remain
// valid after o's slabs are recycled — Value structs carry their own
// backing pointers, and that backing is never reused.
func (p *aggPartial) merge(o *aggPartial) {
	if p.global != nil {
		p.global.merge(o.global)
		return
	}
	for _, ost := range o.order {
		p.keyEnc = val.AppendRow(p.keyEnc[:0], ost.key)
		h := hashKey(p.keyEnc)
		st := p.tab.lookup(h, p.keyEnc)
		if st == nil {
			st = p.alloc.get(ost.key)
			p.tab.insert(h, p.keyEnc, st)
			p.order = append(p.order, st)
		}
		st.merge(ost)
	}
}

func (a *aggNode) Columns() []ColRef { return a.cols }

func (a *aggNode) Run(ctx *ExecCtx, emit batchFn) error {
	nGroup, nAgg := len(a.groupBy), len(a.aggs)
	// Partial phase: one private partial per scan worker, acquired in the
	// sequential sinkFactory call, filled lock-free on that worker.
	parts := make([]*aggPartial, 0, 8)
	defer func() {
		for _, p := range parts {
			p.release()
		}
	}()
	err := runParallel(ctx, a.child, func(worker int) (batchFn, func() error) {
		p := getAggPartial(ctx, nAgg, nGroup)
		parts = append(parts, p)
		return func(b *val.Batch) error { return p.absorb(ctx, a, b) }, nil
	})
	if err != nil {
		return err
	}
	// Merge phase, serial in worker order: workers have all joined, so the
	// partials are quiescent. A zero-page scan never calls the factory; a
	// global aggregate must still emit its one (zero-count) row.
	if len(parts) == 0 {
		parts = append(parts, getAggPartial(ctx, nAgg, nGroup))
	}
	root := parts[0]
	for _, p := range parts[1:] {
		root.merge(p)
	}
	// Output states in first-seen order; a global aggregate (even over
	// zero rows) yields exactly its one state.
	nOut := len(root.order)
	if nGroup == 0 {
		nOut = 1
	}
	out := ctx.getBatch(len(a.cols), nOut, nil)
	defer out.Release()
	for oi := 0; oi < nOut; oi++ {
		st := root.global
		if nGroup > 0 {
			st = root.order[oi]
		}
		idx := out.Grow()
		for gi := range st.key {
			out.Col(gi)[idx] = st.key[gi]
		}
		for ai, ag := range a.aggs {
			var v val.Value
			switch ag.name {
			case "count":
				v = val.Int(st.counts[ai])
			case "sum":
				if st.counts[ai] > 0 {
					v = val.Float(st.sums[ai])
				}
			case "avg":
				if st.counts[ai] > 0 {
					v = val.Float(st.sums[ai] / float64(st.counts[ai]))
				}
			case "min":
				if st.seen[ai] {
					v = st.mins[ai]
				}
			case "max":
				if st.seen[ai] {
					v = st.maxs[ai]
				}
			default:
				return fmt.Errorf("sql: unknown aggregate %s", ag.name)
			}
			out.Col(nGroup + ai)[idx] = v
		}
		if out.Full() {
			if err := emit(out); err != nil {
				return err
			}
			out.Reset()
		}
	}
	if out.Size() > 0 {
		return emit(out)
	}
	return nil
}

func (a *aggNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "PartialAgg→MergeAgg(groupBy=[%s], aggs=[%s])\n",
		strings.Join(a.keyLabels, ", "), strings.Join(a.aggLabels, ", "))
	a.child.explainTo(sb, depth+1)
}

// ---- projection ----

// projectNode computes the SELECT list (plus hidden ORDER BY keys appended
// after the visible columns for the sort node to use). Each output column
// is computed for the whole input batch at once — vectorized when the
// expression shape allows, gathered row-at-a-time otherwise — into a dense
// output batch.
type projectNode struct {
	child  Node
	cols   []ColRef // visible columns only
	exprs  []*compiledVec
	hidden []*compiledVec
	labels []string
}

func (p *projectNode) Columns() []ColRef { return p.cols }

// Run is the serial path: one output batch and arena shared across calls,
// safe because the child serializes its emit stream per the batchFn
// contract. Plans whose consumer pulls per-worker sinks go through
// RunParallel instead.
func (p *projectNode) Run(ctx *ExecCtx, emit batchFn) error {
	width := len(p.exprs) + len(p.hidden)
	out := ctx.getBatch(width, val.BatchSize, nil)
	defer out.Release()
	ar := ctx.getArena()
	defer ar.Release()
	return p.child.Run(ctx, func(b *val.Batch) error {
		if b.Len() == 0 {
			return nil
		}
		out.Reset()
		for j, e := range p.exprs {
			col, err := e.appendTo(ctx, b, ar, out.ColBuf(j))
			if err != nil {
				return err
			}
			out.SetColumn(j, col)
		}
		for j, e := range p.hidden {
			col, err := e.appendTo(ctx, b, ar, out.ColBuf(len(p.exprs)+j))
			if err != nil {
				return err
			}
			out.SetColumn(len(p.exprs)+j, col)
		}
		out.SetSize(b.Len())
		return emit(out)
	})
}

// RunParallel computes the projection in each worker with a private output
// batch and arena; the expression kernels are compile-time immutable, so
// sharing them across workers is safe.
func (p *projectNode) RunParallel(ctx *ExecCtx, mk sinkFactory) error {
	width := len(p.exprs) + len(p.hidden)
	type workerMem struct {
		out *val.Batch
		ar  *val.Arena
	}
	workers := make([]workerMem, 0, 8)
	err := runParallel(ctx, p.child, func(worker int) (batchFn, func() error) {
		out := ctx.getBatch(width, val.BatchSize, nil)
		ar := ctx.getArena()
		workers = append(workers, workerMem{out, ar})
		sink, done := mk(worker)
		return func(b *val.Batch) error {
			if b.Len() == 0 {
				return nil
			}
			out.Reset()
			for j, e := range p.exprs {
				col, err := e.appendTo(ctx, b, ar, out.ColBuf(j))
				if err != nil {
					return err
				}
				out.SetColumn(j, col)
			}
			for j, e := range p.hidden {
				col, err := e.appendTo(ctx, b, ar, out.ColBuf(len(p.exprs)+j))
				if err != nil {
					return err
				}
				out.SetColumn(len(p.exprs)+j, col)
			}
			out.SetSize(b.Len())
			return sink(out)
		}, done
	})
	for _, w := range workers {
		w.out.Release()
		w.ar.Release()
	}
	return err
}

func (p *projectNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Project(%s)\n", strings.Join(p.labels, ", "))
	p.child.explainTo(sb, depth+1)
}

// ---- distinct ----

type distinctNode struct {
	child Node
}

func (d *distinctNode) Columns() []ColRef { return d.child.Columns() }

func (d *distinctNode) Run(ctx *ExecCtx, emit batchFn) error {
	seen := make(map[string]bool)
	var mu sync.Mutex
	var keyEnc []byte
	var scratch val.Row
	return d.child.Run(ctx, func(b *val.Batch) error {
		mu.Lock()
		defer mu.Unlock()
		if scratch == nil {
			scratch = make(val.Row, b.Width())
		}
		keep := b.SelScratch()
		b.Each(func(i int) {
			keyEnc = val.AppendRow(keyEnc[:0], b.RowAt(i, scratch))
			if !seen[string(keyEnc)] {
				seen[string(keyEnc)] = true
				keep = append(keep, i)
			}
		})
		b.SetSel(keep)
		if b.Len() == 0 {
			return nil
		}
		return emit(b)
	})
}

func (d *distinctNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	sb.WriteString("Distinct\n")
	d.child.explainTo(sb, depth+1)
}

// ---- sort ----

// sortNode is the "sorted and inserted into the results table" tail of
// Figure 10, parallelized as a run sort: each scan worker materializes its
// rows into a private pooled RowStore run, the runs are sorted
// concurrently, and a k-way loser-tree merge streams them into pooled
// output batches in global order (stripping hidden columns). The
// comparator is the total order of rowLess, so the result is identical
// whatever order the workers delivered rows in.
type sortNode struct {
	child    Node
	keyPos   []int
	desc     []bool
	visible  int // columns to keep after sorting
	keyLabel string
}

func (s *sortNode) Columns() []ColRef { return s.child.Columns() }

func (s *sortNode) Run(ctx *ExecCtx, emit batchFn) error {
	// Input width is the visible columns plus the hidden ORDER BY keys
	// (child.Columns() reports only the visible schema; every hidden
	// column has a keyPos entry).
	width := s.visible
	for _, p := range s.keyPos {
		if p+1 > width {
			width = p + 1
		}
	}
	stores := make([]*val.RowStore, 0, 8)
	defer func() {
		for _, st := range stores {
			st.Release()
		}
	}()
	err := runParallel(ctx, s.child, func(worker int) (batchFn, func() error) {
		store := ctx.getRowStore(width)
		stores = append(stores, store)
		return func(b *val.Batch) error {
			b.Each(func(i int) { b.RowAt(i, store.NewRow()) })
			return nil
		}, nil
	})
	if err != nil {
		return err
	}
	runs := make([][]val.Row, 0, len(stores))
	total := 0
	for _, st := range stores {
		if rows := st.Rows(); len(rows) > 0 {
			runs = append(runs, rows)
			total += len(rows)
		}
	}
	if err := sortRuns(ctx, runs, s.keyPos, s.desc); err != nil {
		return err
	}
	capacity := total
	if capacity > val.BatchSize {
		capacity = val.BatchSize
	}
	out := ctx.getBatch(s.visible, capacity, nil)
	defer out.Release()
	err = mergeRuns(runs, s.keyPos, s.desc, func(r val.Row) error {
		out.AppendRow(r[:s.visible])
		if out.Full() {
			if err := ctx.checkDeadline(); err != nil {
				return err
			}
			if err := emit(out); err != nil {
				return err
			}
			out.Reset()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if out.Size() > 0 {
		return emit(out)
	}
	return nil
}

func (s *sortNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	// k resolves at runtime (the scan dop); the plan is immutable and
	// shared across sessions, so EXPLAIN names the shape, not the count.
	fmt.Fprintf(sb, "Sort(%s, runs=k)\n", s.keyLabel)
	s.child.explainTo(sb, depth+1)
}

// sortRuns orders every run with the total-order comparator, concurrently
// when there is more than one. A comparator panic in a spare goroutine
// would kill the process, so it is caught and surfaced as the query's
// error instead.
func sortRuns(ctx *ExecCtx, runs [][]val.Row, keyPos []int, desc []bool) error {
	if err := ctx.checkDeadline(); err != nil {
		return err
	}
	if len(runs) <= 1 {
		if len(runs) == 1 {
			rows := runs[0]
			sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j], keyPos, desc) })
		}
		return nil
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicErr error
	for _, rows := range runs {
		wg.Add(1)
		go func(rows []val.Row) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicErr == nil {
						panicErr = fmt.Errorf("sql: parallel sort panicked: %v", r)
					}
					mu.Unlock()
				}
			}()
			sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j], keyPos, desc) })
		}(rows)
	}
	wg.Wait()
	return panicErr
}

// mergeRuns streams the sorted runs in global order. With several runs it
// plays a loser tree: each internal node remembers the loser of its
// subtree's last match and ls[0] holds the winner, so advancing costs one
// leaf-to-root replay — ⌈log₂ k⌉ comparisons — instead of scanning all k
// heads.
func mergeRuns(runs [][]val.Row, keyPos []int, desc []bool, emitRow func(val.Row) error) error {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		for _, r := range runs[0] {
			if err := emitRow(r); err != nil {
				return err
			}
		}
		return nil
	}
	t := newLoserTree(runs, keyPos, desc)
	for {
		w := t.ls[0]
		r := t.head(w)
		if r == nil {
			return nil
		}
		if err := emitRow(r); err != nil {
			return err
		}
		t.pos[w]++
		t.replay(w)
	}
}

// loserTree is the k-way merge tournament over sorted runs. ls[1:] are the
// internal nodes (loser of each match), ls[0] the current winner; leaf i's
// parent is (i+k)/2.
type loserTree struct {
	ls     []int
	pos    []int
	runs   [][]val.Row
	keyPos []int
	desc   []bool
}

func newLoserTree(runs [][]val.Row, keyPos []int, desc []bool) *loserTree {
	k := len(runs)
	t := &loserTree{
		ls: make([]int, k), pos: make([]int, k),
		runs: runs, keyPos: keyPos, desc: desc,
	}
	for i := range t.ls {
		t.ls[i] = -1
	}
	for i := 0; i < k; i++ {
		t.replay(i)
	}
	return t
}

// head returns run i's current front row, nil when exhausted.
func (t *loserTree) head(i int) val.Row {
	if t.pos[i] < len(t.runs[i]) {
		return t.runs[i][t.pos[i]]
	}
	return nil
}

// beats reports whether run i's head precedes run j's: an exhausted run
// always loses, full-row ties break by run index (such rows are
// byte-identical, so the choice cannot show in the output).
func (t *loserTree) beats(i, j int) bool {
	hi, hj := t.head(i), t.head(j)
	switch {
	case hj == nil:
		return true
	case hi == nil:
		return false
	}
	if rowLess(hi, hj, t.keyPos, t.desc) {
		return true
	}
	if rowLess(hj, hi, t.keyPos, t.desc) {
		return false
	}
	return i < j
}

// replay plays run i's head up its leaf-to-root path: at each node the
// loser stays, the winner moves up. During construction a -1 node absorbs
// the incoming contender — that match is played when the sibling path
// arrives.
func (t *loserTree) replay(i int) {
	w := i
	for j := (i + len(t.runs)) / 2; j >= 1; j /= 2 {
		if t.ls[j] == -1 {
			t.ls[j] = w
			return
		}
		if t.beats(t.ls[j], w) {
			t.ls[j], w = w, t.ls[j]
		}
	}
	t.ls[0] = w
}

// ---- top ----

type topNode struct {
	child Node
	n     int
}

func (t *topNode) Columns() []ColRef { return t.child.Columns() }

func (t *topNode) Run(ctx *ExecCtx, emit batchFn) error {
	count := 0
	err := t.child.Run(ctx, func(b *val.Batch) error {
		if count >= t.n {
			return errStopEarly
		}
		if rem := t.n - count; b.Len() > rem {
			b.Truncate(rem)
		}
		count += b.Len()
		if err := emit(b); err != nil {
			return err
		}
		if count >= t.n {
			return errStopEarly
		}
		return nil
	})
	if errors.Is(err, errStopEarly) {
		return nil
	}
	return err
}

func (t *topNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "Top(%d)\n", t.n)
	t.child.explainTo(sb, depth+1)
}

// ---- fused top-k (TOP n over ORDER BY) ----

// topKNode is the planner's fusion of TOP n over ORDER BY: each worker
// keeps a bounded heap of the n best rows it has seen, so peak
// materialized state is O(n × workers) rows — never the full input the
// sort+top stack would have built. The final serial phase sorts the ≤ n·k
// survivors and emits the first n.
type topKNode struct {
	child    Node
	keyPos   []int
	desc     []bool
	visible  int
	n        int
	keyLabel string
}

func (t *topKNode) Columns() []ColRef { return t.child.Columns() }

// topKHeap is one worker's bounded candidate set: a max-heap under the
// rowLess total order (rows[0] is the worst retained row, evicted when a
// better one arrives). Heap rows and the one eviction scratch row are
// carved from the worker's pooled RowStore; the heap slice itself aliases
// the store's row list, so steady state adds no allocations.
type topKHeap struct {
	store *val.RowStore
	rows  []val.Row
	spare val.Row // eviction scratch, carved once the heap is full
}

func (h *topKHeap) offer(t *topKNode, b *val.Batch, i int) {
	if h.spare == nil {
		r := h.store.NewRow()
		b.RowAt(i, r)
		h.rows = h.store.Rows()
		h.up(t, len(h.rows)-1)
		if len(h.rows) == t.n {
			h.spare = h.store.NewRow()
			h.rows = h.store.Rows()[:t.n]
		}
		return
	}
	b.RowAt(i, h.spare)
	if !rowLess(h.spare, h.rows[0], t.keyPos, t.desc) {
		return
	}
	h.rows[0], h.spare = h.spare, h.rows[0]
	h.down(t, 0)
}

func (h *topKHeap) up(t *topKNode, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !rowLess(h.rows[p], h.rows[i], t.keyPos, t.desc) {
			return
		}
		h.rows[p], h.rows[i] = h.rows[i], h.rows[p]
		i = p
	}
}

func (h *topKHeap) down(t *topKNode, i int) {
	n := len(h.rows)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && rowLess(h.rows[c], h.rows[c+1], t.keyPos, t.desc) {
			c++
		}
		if !rowLess(h.rows[i], h.rows[c], t.keyPos, t.desc) {
			return
		}
		h.rows[i], h.rows[c] = h.rows[c], h.rows[i]
		i = c
	}
}

func (t *topKNode) Run(ctx *ExecCtx, emit batchFn) error {
	// Visible columns plus hidden ORDER BY keys (see sortNode.Run).
	width := t.visible
	for _, p := range t.keyPos {
		if p+1 > width {
			width = p + 1
		}
	}
	heaps := make([]*topKHeap, 0, 8)
	defer func() {
		for _, h := range heaps {
			h.store.Release()
		}
	}()
	err := runParallel(ctx, t.child, func(worker int) (batchFn, func() error) {
		h := &topKHeap{store: ctx.getRowStore(width)}
		heaps = append(heaps, h)
		return func(b *val.Batch) error {
			b.Each(func(i int) { h.offer(t, b, i) })
			return nil
		}, nil
	})
	if err != nil {
		return err
	}
	var all []val.Row
	for _, h := range heaps {
		all = append(all, h.rows...)
	}
	sort.Slice(all, func(i, j int) bool { return rowLess(all[i], all[j], t.keyPos, t.desc) })
	if len(all) > t.n {
		all = all[:t.n]
	}
	out := ctx.getBatch(t.visible, len(all), nil)
	defer out.Release()
	for _, r := range all {
		out.AppendRow(r[:t.visible])
		if out.Full() {
			if err := emit(out); err != nil {
				return err
			}
			out.Reset()
		}
	}
	if out.Size() > 0 {
		return emit(out)
	}
	return nil
}

func (t *topKNode) explainTo(sb *strings.Builder, depth int) {
	indent(sb, depth)
	fmt.Fprintf(sb, "TopK(%d, %s)\n", t.n, t.keyLabel)
	t.child.explainTo(sb, depth+1)
}

// stripHidden drops hidden sort columns when no sort consumed them.
type stripNode struct {
	child   Node
	visible int
}

func (s *stripNode) Columns() []ColRef { return s.child.Columns() }

func (s *stripNode) Run(ctx *ExecCtx, emit batchFn) error {
	return s.child.Run(ctx, func(b *val.Batch) error {
		return emit(b.Project(s.visible))
	})
}

func (s *stripNode) explainTo(sb *strings.Builder, depth int) {
	s.child.explainTo(sb, depth)
}

// ensure interface satisfaction
var (
	_ Node = (*scanNode)(nil)
	_ Node = (*indexScanNode)(nil)
	_ Node = (*tvfNode)(nil)
	_ Node = (*memScanNode)(nil)
	_ Node = (*indexJoinNode)(nil)
	_ Node = (*nlJoinNode)(nil)
	_ Node = (*filterNode)(nil)
	_ Node = (*aggNode)(nil)
	_ Node = (*projectNode)(nil)
	_ Node = (*distinctNode)(nil)
	_ Node = (*sortNode)(nil)
	_ Node = (*topNode)(nil)
	_ Node = (*topKNode)(nil)
	_ Node = (*stripNode)(nil)
	_ Node = dualNode{}

	_ parallelNode = (*scanNode)(nil)
	_ parallelNode = (*filterNode)(nil)
	_ parallelNode = (*projectNode)(nil)

	_ = btree.MaxKeyColumns
)
