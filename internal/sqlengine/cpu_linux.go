//go:build linux

package sqlengine

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative user+system CPU time. Figure
// 13 plots CPU seconds next to elapsed seconds for every query; this is how
// the harness measures the former.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
