//go:build !linux

package sqlengine

import "time"

// processCPU is unavailable off Linux; CPU-time statistics read as zero.
func processCPU() time.Duration { return 0 }
