package sqlengine

import (
	"testing"

	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// classDB builds a table big enough that full sweeps exceed the
// interactive row budget: PK on objID, a covering index over (objID, a),
// and column b reachable only through the heap.
func classDB(t *testing.T) *Session {
	t.Helper()
	db := NewDB(storage.NewMemFileGroup(2, 1024))
	_, err := db.CreateTable("T", []Column{
		{Name: "objID", Kind: val.KindInt, NotNull: true},
		{Name: "a", Kind: val.KindFloat, NotNull: true},
		{Name: "b", Kind: val.KindFloat, NotNull: true},
	}, []string{"objID"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("T", "ix_a", []string{"objID"}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("T")
	for i := int64(0); i < InteractiveRowBudget+1000; i++ {
		if _, err := tab.Insert(val.Row{val.Int(i), val.Float(float64(i % 17)), val.Float(float64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	return NewSession(db)
}

func TestQueryClassification(t *testing.T) {
	s := classDB(t)
	cases := []struct {
		sql  string
		want QueryClass
	}{
		// Dive-proven index seeks and small ranges are interactive.
		{"select objID from T where objID = 7", ClassInteractive},
		{"select objID from T where objID between 10 and 40", ClassInteractive},
		// A full covering-index sweep reads every entry: over budget.
		{"select objID, a from T", ClassBatch},
		// b is reachable only through the heap: a heap scan is batch
		// regardless of table size.
		{"select count(*) from T where b > 1", ClassBatch},
	}
	for _, tc := range cases {
		class, err := s.Classify(tc.sql)
		if err != nil {
			t.Fatalf("Classify(%q): %v", tc.sql, err)
		}
		if class != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.sql, class, tc.want)
		}
		// Execution agrees with pre-admission classification, and the
		// class rides the plan cache: the first Exec after Classify must
		// already hit.
		res, err := s.Exec(tc.sql, ExecOptions{})
		if err != nil {
			t.Fatalf("Exec(%q): %v", tc.sql, err)
		}
		if res.Class != tc.want {
			t.Errorf("Exec(%q).Class = %v, want %v", tc.sql, res.Class, tc.want)
		}
		if !res.PlanCacheHit {
			t.Errorf("Exec(%q) after Classify missed the plan cache; the class was not cached with the plan", tc.sql)
		}
	}

	// Batches the plan cache cannot hold — session state, multi-statement
	// scripts — classify as batch without compiling.
	for _, sql := range []string{
		"declare @x int set @x = 1 select objID from T where objID = @x",
		"select objID from T where objID = 1 select objID from T where objID = 2",
	} {
		class, err := s.Classify(sql)
		if err != nil {
			t.Fatalf("Classify(%q): %v", sql, err)
		}
		if class != ClassBatch {
			t.Errorf("Classify(%q) = %v, want batch (uncacheable)", sql, class)
		}
	}
}
