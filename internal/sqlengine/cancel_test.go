package sqlengine

import (
	"context"
	"errors"
	"testing"
	"time"

	"skyserver/internal/val"
)

// cancelDB builds a database with enough rows that a full scan spans many
// batch boundaries — the granularity cancellation is polled at.
func cancelDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db, sess := testDB(t)
	obj, err := db.Table("Obj")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		row := val.Row{
			val.Int(int64(i)), val.Int(int64(i % 7)), val.Int(int64(i % 6)),
			val.Int(int64(i % 100)), val.Float(float64(i % 360)), val.Float(float64(i%60) - 30),
			val.Float(float64(i%25) + 1), val.Float(float64(i%22) + 1),
			val.Int(3), val.Int(1), val.Str("x"),
		}
		if _, err := obj.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return db, sess
}

func TestExecContextCanceled(t *testing.T) {
	_, sess := cancelDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sess.ExecContext(ctx, "select count(*) from Obj where mag_r - mag_g > 1", ExecOptions{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestExecContextDeadlineIsTimeout(t *testing.T) {
	_, sess := cancelDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := sess.ExecContext(ctx, "select count(*) from Obj where mag_r - mag_g > 1", ExecOptions{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestExecOptionsDeadline(t *testing.T) {
	_, sess := cancelDB(t)
	_, err := sess.Exec("select count(*) from Obj where mag_r - mag_g > 1",
		ExecOptions{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The earlier of Timeout and Deadline wins: a generous deadline must
	// not mask an already-expired timeout and vice versa.
	_, err = sess.Exec("select count(*) from Obj where mag_r - mag_g > 1",
		ExecOptions{Timeout: time.Nanosecond, Deadline: time.Now().Add(time.Hour)})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout from the shorter timeout", err)
	}
}

func TestExecContextCancelMidStream(t *testing.T) {
	_, sess := cancelDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batches := 0
	_, err := sess.ExecStreamContext(ctx, "select objID, mag_r from Obj", ExecOptions{},
		func(cols []string, b *val.Batch) error {
			batches++
			if batches == 2 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if batches >= 20 {
		t.Errorf("saw %d batches after cancellation, want an early abort", batches)
	}
}

// TestMaxRowsTruncationUnderParallelScan regresses the joined-sentinel
// bug: when several scan shards hit the MaxRows limit concurrently, their
// errStopEarly returns are joined by the storage layer, and runPlan must
// still recognize the early stop (errors.Is, not ==) and return the
// truncated rows instead of an error.
func TestMaxRowsTruncationUnderParallelScan(t *testing.T) {
	_, sess := cancelDB(t)
	for i := 0; i < 300; i++ {
		res, err := sess.Exec("select objID from Obj", ExecOptions{MaxRows: 1, DOP: 4})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !res.Truncated || len(res.Rows) != 1 {
			t.Fatalf("iteration %d: truncated=%v rows=%d, want true/1", i, res.Truncated, len(res.Rows))
		}
	}
}

func TestMaxConcurrencyCapsScanDOP(t *testing.T) {
	ctx := &ExecCtx{DOP: 0, MaxDOP: 2}
	if got := ctx.scanDOP(8); got != 2 {
		t.Errorf("scanDOP(8) with MaxDOP 2 = %d, want 2", got)
	}
	ctx = &ExecCtx{DOP: 6, MaxDOP: 4}
	if got := ctx.scanDOP(8); got != 4 {
		t.Errorf("scanDOP with DOP 6, MaxDOP 4 = %d, want 4", got)
	}
	ctx = &ExecCtx{DOP: 0}
	if got := ctx.scanDOP(8); got != 8 {
		t.Errorf("scanDOP(8) uncapped = %d, want 8", got)
	}
	// A capped query still returns correct results.
	_, sess := cancelDB(t)
	res, err := sess.Exec("select count(*) from Obj where mag_r - mag_g > 1",
		ExecOptions{MaxConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	unc, err := sess.Exec("select count(*) from Obj where mag_r - mag_g > 1", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != unc.Rows[0][0].I {
		t.Errorf("capped count %d != uncapped %d", res.Rows[0][0].I, unc.Rows[0][0].I)
	}
}
