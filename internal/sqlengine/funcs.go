package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"skyserver/internal/val"
)

// ScalarFunc is a scalar SQL function. The paper's queries call both T-SQL
// builtins (sqrt, power, abs, pi, …) and SkyServer-specific functions under
// the dbo. schema (fPhotoFlags, fGetUrlExpId, …); both register here.
type ScalarFunc struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 = unbounded
	Fn      func(ctx *ExecCtx, args []val.Value) (val.Value, error)
}

// TVFEmit is the sink a table-valued function streams its result set
// through, one val.Batch at a time. Batches are owned by the function and
// recycled after each call; the usual batch contract applies (consumers
// copy what they retain).
type TVFEmit func(b *val.Batch) error

// TableFunc is a table-valued function usable in FROM, like the paper's
// fGetNearbyObjEq / spHTM_Cover (§9.1.4).
type TableFunc struct {
	Name string
	Cols []Column
	// EstRows is the planner's cardinality estimate (spatial lookups
	// return a handful of rows, which is why they belong on the outer
	// side of the nested-loop join in Figure 10).
	EstRows int
	// Fn computes the function and emits val.Batch directly into the plan
	// — no []val.Row materialization that scans re-batch. Functions whose
	// natural product is a sorted row slice adapt via EmitRows; columnar
	// producers fill a val.Emitter as they go.
	Fn func(ctx *ExecCtx, args []val.Value, emit TVFEmit) error
}

// EmitRows streams a materialized row slice through pooled batches — the
// adapter for table functions that must sort or truncate before emitting.
func EmitRows(ctx *ExecCtx, width int, rows []val.Row, emit TVFEmit) error {
	em := val.NewEmitter(width, len(rows), !ctx.DisablePooling, emit)
	for _, r := range rows {
		if err := em.Append(r); err != nil {
			em.Discard()
			return err
		}
	}
	return em.Close()
}

// RegisterScalar adds or replaces a scalar function.
func (db *DB) RegisterScalar(f *ScalarFunc) {
	db.scalars[fold(f.Name)] = f
}

// RegisterTVF adds or replaces a table-valued function.
func (db *DB) RegisterTVF(f *TableFunc) {
	db.tvfs[fold(f.Name)] = f
}

// TVF looks up a table-valued function.
func (db *DB) TVF(name string) (*TableFunc, bool) {
	f, ok := db.tvfs[fold(name)]
	return f, ok
}

func numArg(args []val.Value, i int) (float64, bool) {
	return args[i].AsFloat()
}

// math1 wraps a one-argument float function with NULL propagation.
func math1(name string, f func(float64) float64) *ScalarFunc {
	return &ScalarFunc{Name: name, MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			x, ok := numArg(args, 0)
			if !ok {
				return val.Value{}, fmt.Errorf("sql: %s needs a number", name)
			}
			return nanToNull(f(x)), nil
		}}
}

func registerBuiltins(db *DB) {
	for _, f := range []*ScalarFunc{
		math1("sqrt", math.Sqrt),
		math1("exp", math.Exp),
		math1("log", math.Log),
		math1("log10", math.Log10),
		math1("sin", math.Sin),
		math1("cos", math.Cos),
		math1("tan", math.Tan),
		math1("asin", math.Asin),
		math1("acos", math.Acos),
		math1("atan", math.Atan),
		math1("radians", func(x float64) float64 { return x * math.Pi / 180 }),
		math1("degrees", func(x float64) float64 { return x * 180 / math.Pi }),
		math1("square", func(x float64) float64 { return x * x }),
	} {
		db.RegisterScalar(f)
	}

	db.RegisterScalar(&ScalarFunc{Name: "abs", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			v := args[0]
			switch v.K {
			case val.KindNull:
				return val.Null(), nil
			case val.KindInt:
				if v.I < 0 {
					return val.Int(-v.I), nil
				}
				return v, nil
			case val.KindFloat:
				return val.Float(math.Abs(v.F)), nil
			}
			return val.Value{}, fmt.Errorf("sql: abs needs a number")
		}})

	db.RegisterScalar(&ScalarFunc{Name: "power", MinArgs: 2, MaxArgs: 2,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return val.Null(), nil
			}
			x, xok := numArg(args, 0)
			y, yok := numArg(args, 1)
			if !xok || !yok {
				return val.Value{}, fmt.Errorf("sql: power needs numbers")
			}
			return nanToNull(math.Pow(x, y)), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "atan2", MinArgs: 2, MaxArgs: 2,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return val.Null(), nil
			}
			y, _ := numArg(args, 0)
			x, _ := numArg(args, 1)
			return val.Float(math.Atan2(y, x)), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "pi", MinArgs: 0, MaxArgs: 0,
		Fn: func(_ *ExecCtx, _ []val.Value) (val.Value, error) {
			return val.Float(math.Pi), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "floor", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			x, ok := numArg(args, 0)
			if !ok {
				return val.Value{}, fmt.Errorf("sql: floor needs a number")
			}
			return val.Int(int64(math.Floor(x))), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "ceiling", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			x, ok := numArg(args, 0)
			if !ok {
				return val.Value{}, fmt.Errorf("sql: ceiling needs a number")
			}
			return val.Int(int64(math.Ceil(x))), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "round", MinArgs: 1, MaxArgs: 2,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			x, ok := numArg(args, 0)
			if !ok {
				return val.Value{}, fmt.Errorf("sql: round needs a number")
			}
			places := 0.0
			if len(args) == 2 {
				places, _ = numArg(args, 1)
			}
			m := math.Pow(10, places)
			return val.Float(math.Round(x*m) / m), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "sign", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			x, ok := numArg(args, 0)
			if !ok {
				return val.Value{}, fmt.Errorf("sql: sign needs a number")
			}
			switch {
			case x > 0:
				return val.Int(1), nil
			case x < 0:
				return val.Int(-1), nil
			}
			return val.Int(0), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "len", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			switch args[0].K {
			case val.KindNull:
				return val.Null(), nil
			case val.KindString:
				return val.Int(int64(len(args[0].S))), nil
			case val.KindBytes:
				return val.Int(int64(len(args[0].B))), nil
			}
			return val.Value{}, fmt.Errorf("sql: len needs a string")
		}})

	db.RegisterScalar(&ScalarFunc{Name: "upper", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			return val.Str(strings.ToUpper(args[0].S)), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "lower", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			return val.Str(strings.ToLower(args[0].S)), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "ltrim", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			return val.Str(strings.TrimLeft(args[0].S, " ")), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "rtrim", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			return val.Str(strings.TrimRight(args[0].S, " ")), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "substring", MinArgs: 3, MaxArgs: 3,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
				return val.Null(), nil
			}
			s := args[0].S
			start, _ := args[1].AsInt()
			length, _ := args[2].AsInt()
			// SQL SUBSTRING is 1-based.
			start--
			if start < 0 {
				length += start
				start = 0
			}
			if start >= int64(len(s)) || length <= 0 {
				return val.Str(""), nil
			}
			end := start + length
			if end > int64(len(s)) {
				end = int64(len(s))
			}
			return val.Str(s[start:end]), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "charindex", MinArgs: 2, MaxArgs: 2,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return val.Null(), nil
			}
			return val.Int(int64(strings.Index(args[1].S, args[0].S) + 1)), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "str", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return val.Null(), nil
			}
			return val.Str(args[0].String()), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "coalesce", MinArgs: 1, MaxArgs: -1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			for _, a := range args {
				if !a.IsNull() {
					return a, nil
				}
			}
			return val.Null(), nil
		}})

	db.RegisterScalar(&ScalarFunc{Name: "isnull", MinArgs: 2, MaxArgs: 2,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].IsNull() {
				return args[1], nil
			}
			return args[0], nil
		}})
}
