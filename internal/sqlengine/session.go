package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// Session is one connection's state: declared variables and temp tables
// (the ##results of the paper's queries).
type Session struct {
	db    *DB
	vars  map[string]val.Value
	temps map[string]*MemTable

	// Plan-cache probe scratch, reused across Execs so the steady-state
	// normalize + lookup allocates nothing. Sessions are single-connection
	// (like the paper's ASP sessions), never executed concurrently.
	lexBuf   []token
	keyBuf   []byte
	paramBuf []val.Value
}

// NewSession opens a session on the database.
func NewSession(db *DB) *Session {
	return &Session{
		db:    db,
		vars:  make(map[string]val.Value),
		temps: make(map[string]*MemTable),
	}
}

// DB returns the session's database.
func (s *Session) DB() *DB { return s.db }

// Var returns a declared variable's value.
func (s *Session) Var(name string) (val.Value, bool) {
	v, ok := s.vars[fold(name)]
	return v, ok
}

// SetVar declares-or-assigns a variable (used by tools wrapping sessions).
func (s *Session) SetVar(name string, v val.Value) {
	s.vars[fold(name)] = v
}

// Temp returns a session temp table.
func (s *Session) Temp(name string) (*MemTable, bool) {
	t, ok := s.temps[fold(name)]
	return t, ok
}

// ExecOptions bound one batch execution. The public SkyServer runs with
// MaxRows 1000 and Timeout 30 s (§4: "The public SkyServer limits queries to
// 1,000 records or 30 seconds of computation"); private servers run
// unlimited.
type ExecOptions struct {
	MaxRows int
	Timeout time.Duration
	// Deadline is an absolute cut-off; when both Timeout and Deadline are
	// set the earlier one wins. Zero means none.
	Deadline time.Time
	DOP      int
	// MaxConcurrency caps the scan parallelism a query may use after DOP
	// resolution (0 = uncapped): an overloaded server can keep admitting
	// queries while bounding how many pool workers each one occupies.
	MaxConcurrency int
	// ForceRowExprs disables the vectorized expression kernels so every
	// filter and projection runs through the row-at-a-time fallback — a
	// diagnostic and testing knob. Result sets are identical either way;
	// the one observable difference is error surfacing inside AND filters:
	// the row path evaluates the right operand even when the left is NULL
	// (to distinguish false from NULL), while the vectorized path drops
	// NULL-left rows without evaluating the right side, so an error the
	// right operand would raise on such a row (e.g. division by zero)
	// only surfaces under ForceRowExprs.
	ForceRowExprs bool
	// DisablePooling allocates every batch and kernel scratch vector
	// fresh instead of recycling them through the val pools — the debug
	// oracle the equivalence tests compare pooled execution against to
	// prove recycling never corrupts results. Result sets are identical
	// either way.
	DisablePooling bool
	// DisablePlanCache bypasses the shared plan cache entirely: the batch
	// is parsed with its literals left in place and compiled fresh, exactly
	// the pre-cache pipeline. This is the debug oracle the cached-vs-fresh
	// equivalence tests compare against (mirroring DisablePooling), and it
	// also exercises the interned-literal kernels that parameterized plans
	// do not use. Result sets are identical either way.
	DisablePlanCache bool
}

// Result is the outcome of a batch: the last SELECT's result set plus
// execution statistics for the SkyServerQA status window.
type Result struct {
	Cols  []string
	Kinds []val.Kind
	Rows  []val.Row
	// RowsAffected counts inserted/deleted rows of DML statements.
	RowsAffected int64
	// Truncated reports that MaxRows cut the result short.
	Truncated bool
	// Plan is the EXPLAIN text of the last SELECT.
	Plan string
	// Elapsed is wall-clock time; CPU is process CPU consumed (user+sys),
	// the two series of Figure 13.
	Elapsed time.Duration
	CPU     time.Duration
	// RowsScanned counts records visited by scans and probes.
	RowsScanned int64
	// PagesScanned counts heap pages visited by table scans — the scan
	// work the /x/sched statistics aggregate per query.
	PagesScanned int64
	// PlanCacheHit reports that the batch executed from a cached plan
	// (single cacheable SELECTs only; see PlanCache).
	PlanCacheHit bool
	// Class is the workload class of the batch's last SELECT (zero value
	// ClassInteractive for batches without one — DML and DDL are charged
	// to whatever class admitted the request).
	Class QueryClass
	// Cacheable reports that the batch was a single plan-cacheable SELECT
	// (no session state, no DML — see batchCacheable): the precondition
	// for caching its serialized result set. Whether the result actually
	// may be cached also depends on the plan; see
	// CompiledPlan.ResultCacheable.
	Cacheable bool

	// compiled carries the plan the batch's SELECT compiled, for the
	// store-into-cache decision in exec (only single-statement cacheable
	// batches ever store it).
	compiled *CompiledPlan
}

// Compiled returns the plan the batch's last SELECT executed (nil for
// batches without one). Result-cache fills retain it as the entry's
// validity witness: the plan knows the exact catalog versions the result
// was computed against (see CompiledPlan.Valid).
func (r *Result) Compiled() *CompiledPlan { return r.compiled }

// VersionDigest returns the catalog-version digest of the plan the
// batch's last SELECT executed, and whether one exists. The jobs service
// keys persisted job results with it (via resultcache.ETag) so a job
// result's ETag changes exactly when a reload would change the answer —
// the same validity story the synchronous result cache uses.
func (r *Result) VersionDigest() (uint64, bool) {
	if r.compiled == nil {
		return 0, false
	}
	return r.compiled.VersionDigest(), true
}

// ResultBatchFunc receives one batch of a streamed SELECT's result set
// along with the output column names. The batch is only valid during the
// call (see batchFn); serialize or copy before returning.
type ResultBatchFunc func(cols []string, b *val.Batch) error

// Exec parses and runs a batch, returning the last statement's result.
func (s *Session) Exec(sql string, opt ExecOptions) (*Result, error) {
	return s.exec(context.Background(), sql, opt, nil)
}

// ExecContext is Exec under a context: cancellation (a closed HTTP
// connection, a shed query) aborts execution at the next batch boundary
// with ErrCanceled, and a context deadline behaves like Timeout
// (ErrTimeout).
func (s *Session) ExecContext(ctx context.Context, sql string, opt ExecOptions) (*Result, error) {
	return s.exec(ctx, sql, opt, nil)
}

// ExecStream is Exec, except the last SELECT's result set is delivered to
// sink batch-by-batch instead of being materialized into Result.Rows — the
// web layer serializes HTTP responses straight from these batches. The
// returned Result carries the schema, plan, and statistics with Rows nil
// for the streamed statement; other statements behave exactly as in Exec.
func (s *Session) ExecStream(sql string, opt ExecOptions, sink ResultBatchFunc) (*Result, error) {
	return s.exec(context.Background(), sql, opt, sink)
}

// ExecStreamContext is ExecStream under a context (see ExecContext); a
// mid-stream cancellation stops the executor before the next batch is
// serialized.
func (s *Session) ExecStreamContext(ctx context.Context, sql string, opt ExecOptions, sink ResultBatchFunc) (*Result, error) {
	return s.exec(ctx, sql, opt, sink)
}

// exec is the batch entry point, implementing the query lifecycle
// parse → parameterize → compile → (cached) → bind → execute. The fast
// path lexes and normalizes the text (reusing session scratch), probes the
// shared plan cache, and on a hit binds the fresh parameter vector and runs
// the cached plan — no parsing, no planning, no per-shape allocation. On a
// miss the batch parses with its literals as parameters, executes, and a
// cacheable batch stores its compiled plan for every later session.
func (s *Session) exec(ctx context.Context, sql string, opt ExecOptions, sink ResultBatchFunc) (*Result, error) {
	if opt.DisablePlanCache {
		stmts, err := Parse(sql)
		if err != nil {
			return nil, err
		}
		return s.execStmts(ctx, stmts, nil, opt, sink, "")
	}
	pr, err := s.normalizeAndProbe(sql)
	if err != nil {
		return nil, err
	}
	if pr.hit != nil {
		return s.execCachedPlan(ctx, pr.hit, pr.params, opt, sink)
	}
	return s.execStmts(ctx, pr.stmts, pr.params, opt, sink, pr.storeKey)
}

// newExecCtx builds the per-execution context from the options and the
// caller's context.Context, resolving the effective deadline (the earlier
// of start+Timeout and Deadline).
func (s *Session) newExecCtx(ctx context.Context, params []val.Value, opt ExecOptions, start time.Time) *ExecCtx {
	ec := &ExecCtx{
		DB: s.db, Session: s, Params: params, Ctx: ctx,
		DOP: opt.DOP, MaxDOP: opt.MaxConcurrency,
		ForceRowExprs: opt.ForceRowExprs, DisablePooling: opt.DisablePooling,
	}
	if opt.Timeout > 0 {
		ec.Deadline = start.Add(opt.Timeout)
	}
	if !opt.Deadline.IsZero() && (ec.Deadline.IsZero() || opt.Deadline.Before(ec.Deadline)) {
		ec.Deadline = opt.Deadline
	}
	return ec
}

// probe is the outcome of the shared normalize → cache-probe → parse
// prologue of Exec and Explain. Either hit is the cached plan (stmts nil),
// or stmts is the parsed batch with storeKey non-empty when the batch is
// cacheable. Keeping one implementation guarantees Explain's
// hit/miss/uncacheable report describes exactly what Exec will do.
type probe struct {
	stmts    []Statement
	params   []val.Value
	hit      *CompiledPlan
	storeKey string
}

func (s *Session) normalizeAndProbe(sql string) (probe, error) {
	toks, err := lexInto(sql, s.lexBuf)
	if err != nil {
		return probe{}, err
	}
	s.lexBuf = toks
	key, params := normalizeTokens(toks, s.keyBuf[:0], s.paramBuf[:0])
	s.keyBuf, s.paramBuf = key, params
	if cp := s.db.plans.lookup(key, s.db.SchemaVersion()); cp != nil {
		return probe{params: params, hit: cp}, nil
	}
	stmts, err := parseStatements(toks, sql, params)
	if err != nil {
		return probe{}, err
	}
	pr := probe{stmts: stmts, params: params}
	if batchCacheable(toks, stmts) {
		s.db.plans.recordMiss()
		pr.storeKey = string(key)
	} else {
		s.db.plans.recordUncacheable()
	}
	return pr, nil
}

// execStmts runs a parsed batch. params is the bound parameter vector (nil
// on the DisablePlanCache path, whose AST carries literals). A non-empty
// storeKey stores the batch's compiled plan in the shared cache after a
// successful run.
func (s *Session) execStmts(qctx context.Context, stmts []Statement, params []val.Value, opt ExecOptions, sink ResultBatchFunc, storeKey string) (*Result, error) {
	// The last SELECT of the batch is the result statement; it streams to
	// the sink (a SELECT INTO both streams and fills its target table, so
	// every format agrees with the materializing path).
	lastSel := -1
	if sink != nil {
		for i, st := range stmts {
			if _, ok := st.(*SelectStmt); ok {
				lastSel = i
			}
		}
	}
	res := &Result{}
	startWall := time.Now()
	startCPU := processCPU()
	ctx := s.newExecCtx(qctx, params, opt, startWall)
	for i, st := range stmts {
		var sk ResultBatchFunc
		if i == lastSel {
			sk = sink
		}
		if err := s.execOne(st, ctx, opt, res, sk); err != nil {
			return nil, err
		}
	}
	if storeKey != "" && res.compiled != nil {
		s.db.plans.store(storeKey, res.compiled)
		res.Cacheable = true
	}
	if res.compiled != nil {
		res.Class, _ = res.compiled.ClassFor(s, params)
	}
	res.Elapsed = time.Since(startWall)
	res.CPU = processCPU() - startCPU
	res.RowsScanned = ctx.RowsScanned.Load()
	res.PagesScanned = ctx.PagesScanned.Load()
	return res, nil
}

// execCachedPlan is the bind → execute tail of a plan-cache hit: a fresh
// ExecCtx carries the new parameter values into the shared immutable plan.
func (s *Session) execCachedPlan(qctx context.Context, cp *CompiledPlan, params []val.Value, opt ExecOptions, sink ResultBatchFunc) (*Result, error) {
	if len(params) < cp.nParams {
		// Impossible by key construction; fail loudly rather than bind
		// stale parameters.
		return nil, fmt.Errorf("sql: plan cache: %d parameters bound, plan needs %d", len(params), cp.nParams)
	}
	class, _ := cp.ClassFor(s, params)
	res := &Result{PlanCacheHit: true, Class: class, Cacheable: true, compiled: cp}
	startWall := time.Now()
	startCPU := processCPU()
	ctx := s.newExecCtx(qctx, params, opt, startWall)
	if err := s.runPlan(cp, "", ctx, opt, res, sink); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(startWall)
	res.CPU = processCPU() - startCPU
	res.RowsScanned = ctx.RowsScanned.Load()
	res.PagesScanned = ctx.PagesScanned.Load()
	return res, nil
}

// Explain plans a batch and returns its plan text without running it. It
// shares the exec path's normalize → probe → compile pipeline: a cacheable
// SELECT's plan is looked up in (and on a miss stored into) the shared plan
// cache, and the report's final line states whether the plan came from the
// cache ("PlanCache: hit"), was compiled and stored ("miss"), or cannot be
// cached ("uncacheable" — session state or a multi-statement batch).
func (s *Session) Explain(sql string) (string, error) {
	pr, err := s.normalizeAndProbe(sql)
	if err != nil {
		return "", err
	}
	if pr.hit != nil {
		return pr.hit.explain + "PlanCache: hit\n", nil
	}
	ctx := &ExecCtx{DB: s.db, Session: s, Params: pr.params}
	var plans []string
	for _, st := range pr.stmts {
		switch st := st.(type) {
		case *SelectStmt:
			cp, err := s.compileSelect(st, pr.params)
			if err != nil {
				return "", err
			}
			if st.Into != "" {
				plans = append(plans, fmt.Sprintf("InsertInto(%s)\n%s", st.Into, indentLines(cp.explain)))
			} else {
				plans = append(plans, cp.explain)
			}
			if pr.storeKey != "" {
				// The next Exec of the same shape starts from this plan.
				s.db.plans.store(pr.storeKey, cp)
			}
		case *DeclareStmt, *SetStmt:
			// No plan; session effects only. Run SETs so later
			// statements referencing the variable still plan.
			if err := s.execSessionOnly(st, ctx); err != nil {
				return "", err
			}
		default:
			plans = append(plans, fmt.Sprintf("%T\n", st))
		}
	}
	mark := "miss"
	if pr.storeKey == "" {
		mark = "uncacheable"
	}
	return strings.Join(plans, "") + "PlanCache: " + mark + "\n", nil
}

// ClassifyCached reports the workload class of a batch when — and only
// when — its plan is already in the shared cache: one lex + normalize +
// counter-free cache peek, no parsing, no compilation, no stat or
// recency mutation. This is the pre-admission probe: it is safe to run
// on unadmitted (possibly soon-to-be-shed) traffic because an attacker
// varying statement text pays the server nothing beyond lexing, and it
// leaves /x/plancache's hit/miss counters describing executions only.
// ok is false when the shape is unknown (or the text does not even lex);
// the web layer then admits conservatively under the batch queue, and
// the admitted execution's compile populates the cache so every later
// request of that shape classifies precisely.
func (s *Session) ClassifyCached(sql string) (QueryClass, bool) {
	toks, err := lexInto(sql, s.lexBuf)
	if err != nil {
		return ClassBatch, false
	}
	s.lexBuf = toks
	key, params := normalizeTokens(toks, s.keyBuf[:0], s.paramBuf[:0])
	s.keyBuf, s.paramBuf = key, params
	if cp := s.db.plans.peek(key, s.db.SchemaVersion()); cp != nil {
		class, _ := cp.ClassFor(s, params)
		return class, true
	}
	return ClassBatch, false
}

// ResultKey appends the version-independent result-cache identity of a
// batch to dst and returns it: the plan cache's normalized statement key,
// a separator, and the bound parameter vector in a self-delimiting binary
// encoding. Equal keys mean the same statement shape with the same
// constants; the caller appends whatever else distinguishes one response
// from another (output format, row limit). Versions are deliberately NOT
// part of the key — entries carry their own validity witness (the
// CompiledPlan that produced them) and are invalidated lazily on probe.
//
// Like ClassifyCached, this is safe to run on unadmitted traffic: one lex
// + normalize into session scratch plus a counter-free plan-cache peek —
// no parsing, no compilation, no allocation in steady state. cp is the
// cached plan for the shape when the plan cache knows it (nil otherwise;
// the caller can use its VersionDigest to compute an ETag before
// executing). ok is false when the text does not lex; such a request can
// never have been cached.
func (s *Session) ResultKey(sql string, dst []byte) (key []byte, cp *CompiledPlan, ok bool) {
	toks, err := lexInto(sql, s.lexBuf)
	if err != nil {
		return dst, nil, false
	}
	s.lexBuf = toks
	normKey, params := normalizeTokens(toks, s.keyBuf[:0], s.paramBuf[:0])
	s.keyBuf, s.paramBuf = normKey, params
	dst = append(dst, normKey...)
	dst = append(dst, 0)
	for _, p := range params {
		dst = appendParamKey(dst, p)
	}
	return dst, s.db.plans.peek(normKey, s.db.SchemaVersion()), true
}

// appendParamKey appends one parameter value in a self-delimiting binary
// form (kind byte, then a fixed 8-byte payload for numbers or a
// length-prefixed payload for strings and blobs), so distinct parameter
// vectors never collide in a result-cache key.
func appendParamKey(dst []byte, v val.Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case val.KindInt:
		dst = appendUint64(dst, uint64(v.I))
	case val.KindFloat:
		dst = appendUint64(dst, math.Float64bits(v.F))
	case val.KindString:
		dst = appendUint64(dst, uint64(len(v.S)))
		dst = append(dst, v.S...)
	case val.KindBytes:
		dst = appendUint64(dst, uint64(len(v.B)))
		dst = append(dst, v.B...)
	}
	return dst
}

func appendUint64(dst []byte, x uint64) []byte {
	return append(dst,
		byte(x>>56), byte(x>>48), byte(x>>40), byte(x>>32),
		byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
}

// Classify reports the workload class the admission controller should
// schedule this batch under, without executing it. It shares Exec's
// normalize → probe prologue, so on the steady-state path — the templated
// Explorer and navigator traffic the plan cache is built for — a call
// costs one cache probe and no parsing. On a miss the single cacheable
// SELECT is compiled and stored, so the Exec that follows hits the cache
// and the compile is never paid twice. Everything the cache cannot hold —
// multi-statement batches, DML, DDL, session-state references —
// classifies as batch: those are analyst workloads by construction, and
// the Explorer's traffic is all single cacheable SELECTs. Lex errors
// surface here so the caller can fail fast without charging a queue slot
// to a query that will never run.
//
// Classify compiles on a miss, so it belongs after admission (tools,
// tests, schedulers with trusted input); the web layer's pre-admission
// gate uses ClassifyCached, which never compiles for unadmitted traffic.
func (s *Session) Classify(sql string) (QueryClass, error) {
	pr, err := s.normalizeAndProbe(sql)
	if err != nil {
		return ClassInteractive, err
	}
	if pr.hit != nil {
		class, _ := pr.hit.ClassFor(s, pr.params)
		return class, nil
	}
	if pr.storeKey != "" && len(pr.stmts) == 1 {
		if sel, ok := pr.stmts[0].(*SelectStmt); ok {
			cp, err := s.compileSelect(sel, pr.params)
			if err != nil {
				return ClassInteractive, err
			}
			s.db.plans.store(pr.storeKey, cp)
			return cp.class, nil
		}
	}
	return ClassBatch, nil
}

func indentLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func (s *Session) execSessionOnly(st Statement, ctx *ExecCtx) error {
	switch st := st.(type) {
	case *DeclareStmt:
		if _, err := KindForTypeName(st.Type); err != nil {
			return err
		}
		s.vars[st.Name] = val.Null()
		return nil
	case *SetStmt:
		if _, ok := s.vars[st.Name]; !ok {
			return fmt.Errorf("sql: variable @%s not declared", st.Name)
		}
		ce, err := compileExpr(st.Expr, &scope{}, s.db)
		if err != nil {
			return err
		}
		v, err := ce(ctx, nil)
		if err != nil {
			return err
		}
		s.vars[st.Name] = v
		return nil
	}
	return fmt.Errorf("sql: not a session statement: %T", st)
}

func (s *Session) execOne(st Statement, ctx *ExecCtx, opt ExecOptions, res *Result, sink ResultBatchFunc) error {
	switch st := st.(type) {
	case *DeclareStmt, *SetStmt:
		return s.execSessionOnly(st, ctx)

	case *SelectStmt:
		return s.execSelect(st, ctx, opt, res, sink)

	case *InsertStmt:
		return s.execInsert(st, ctx, opt, res)

	case *DeleteStmt:
		return s.execDelete(st, ctx, res)

	case *CreateTableStmt:
		cols := make([]Column, len(st.Cols))
		for i, cd := range st.Cols {
			k, err := KindForTypeName(cd.Type)
			if err != nil {
				return err
			}
			cols[i] = Column{Name: cd.Name, Kind: k, NotNull: cd.NotNull}
		}
		if strings.HasPrefix(st.Table, "#") {
			s.temps[fold(st.Table)] = &MemTable{Name: st.Table, Cols: cols}
			return nil
		}
		_, err := s.db.CreateTable(st.Table, cols, nil, "")
		return err

	default:
		return fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func (s *Session) execSelect(st *SelectStmt, ctx *ExecCtx, opt ExecOptions, res *Result, sink ResultBatchFunc) error {
	cp, err := s.compileSelect(st, ctx.Params)
	if err != nil {
		return err
	}
	res.compiled = cp
	return s.runPlan(cp, st.Into, ctx, opt, res, sink)
}

// runPlan executes a compiled SELECT plan — the execute step shared by
// fresh compilation and plan-cache hits. Schema, kinds, and the EXPLAIN
// text come from the plan (rendered once at compile), so a cache hit's
// result assembly allocates only the gathered rows.
func (s *Session) runPlan(cp *CompiledPlan, into string, ctx *ExecCtx, opt ExecOptions, res *Result, sink ResultBatchFunc) error {
	truncated := false
	limit := opt.MaxRows
	sent := 0
	var rows []val.Row
	// INTO needs the rows materialized for the target table even when the
	// result set is also streamed to a sink.
	gather := sink == nil || into != ""
	err := cp.root.Run(ctx, func(b *val.Batch) error {
		// The result boundary polls cancellation too: a query whose plan
		// spends no time in scans (memory tables, TVFs) still aborts
		// within one output batch of the context closing.
		if err := ctx.checkDeadline(); err != nil {
			return err
		}
		if limit > 0 {
			rem := limit - sent
			if rem <= 0 {
				truncated = true
				return errStopEarly
			}
			if b.Len() > rem {
				b.Truncate(rem)
				truncated = true
			}
		}
		sent += b.Len()
		if gather && b.Len() > 0 {
			// One backing slab per batch instead of one allocation per
			// row; each gathered row gets a full-capacity sub-slice.
			width := b.Width()
			backing := make([]val.Value, b.Len()*width)
			b.Each(func(i int) {
				r := val.Row(backing[:width:width])
				backing = backing[width:]
				rows = append(rows, b.RowAt(i, r))
			})
		}
		if sink != nil {
			return sink(cp.cols, b)
		}
		return nil
	})
	// errors.Is, not ==: when several parallel scan shards hit the row
	// limit concurrently, the storage layer joins their errStopEarly
	// returns into one error.
	if err != nil && !errors.Is(err, errStopEarly) {
		return err
	}
	if into != "" {
		mt := &MemTable{Name: into}
		for i := range cp.cols {
			mt.Cols = append(mt.Cols, Column{Name: cp.cols[i], Kind: cp.kinds[i]})
		}
		mt.Rows = rows
		// SELECT INTO a permanent name also lands in the session under
		// that name (the engine is a warehouse; ad-hoc result tables stay
		// session-local).
		s.temps[fold(into)] = mt
		res.RowsAffected = int64(len(rows))
	}
	res.Cols = cp.cols
	res.Kinds = cp.kinds
	res.Rows = rows
	res.Truncated = truncated
	res.Plan = cp.explain
	return nil
}

func (s *Session) execInsert(st *InsertStmt, ctx *ExecCtx, opt ExecOptions, res *Result) error {
	// Gather the rows to insert.
	var inRows []val.Row
	var inCols []string
	if st.Select != nil {
		p := &planner{db: s.db, sess: s, params: ctx.Params}
		node, err := p.planSelect(st.Select)
		if err != nil {
			return err
		}
		for _, c := range node.Columns() {
			inCols = append(inCols, c.Name)
		}
		if err := node.Run(ctx, func(b *val.Batch) error {
			b.Each(func(i int) {
				inRows = append(inRows, b.RowAt(i, make(val.Row, b.Width())))
			})
			return nil
		}); err != nil {
			return err
		}
	} else {
		for _, ve := range st.Values {
			row := make(val.Row, len(ve))
			for i, e := range ve {
				ce, err := compileExpr(e, &scope{}, s.db)
				if err != nil {
					return err
				}
				v, err := ce(ctx, nil)
				if err != nil {
					return err
				}
				row[i] = v
			}
			inRows = append(inRows, row)
		}
	}

	// Resolve the target.
	if strings.HasPrefix(st.Table, "#") {
		mt, ok := s.temps[fold(st.Table)]
		if !ok {
			return fmt.Errorf("sql: unknown temp table %s", st.Table)
		}
		reorder, err := columnOrder(len(mt.Cols), namesOf(mt.Cols), st.Cols)
		if err != nil {
			return err
		}
		for _, r := range inRows {
			out, err := applyOrder(r, reorder, len(mt.Cols))
			if err != nil {
				return err
			}
			mt.Rows = append(mt.Rows, out)
		}
		res.RowsAffected = int64(len(inRows))
		return nil
	}
	t, err := s.db.Table(st.Table)
	if err != nil {
		return err
	}
	reorder, err := columnOrder(len(t.Cols), namesOfTable(t.Cols), st.Cols)
	if err != nil {
		return err
	}
	for _, r := range inRows {
		out, err := applyOrder(r, reorder, len(t.Cols))
		if err != nil {
			return err
		}
		if _, err := t.Insert(out); err != nil {
			return err
		}
	}
	res.RowsAffected = int64(len(inRows))
	return nil
}

func namesOf(cols []Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func namesOfTable(cols []Column) []string { return namesOf(cols) }

// columnOrder maps insert positions to table positions. Empty colList means
// positional insert.
func columnOrder(tableWidth int, tableCols []string, colList []string) ([]int, error) {
	if len(colList) == 0 {
		return nil, nil
	}
	idx := make(map[string]int, tableWidth)
	for i, n := range tableCols {
		idx[fold(n)] = i
	}
	out := make([]int, len(colList))
	for i, n := range colList {
		pos, ok := idx[fold(n)]
		if !ok {
			return nil, fmt.Errorf("sql: unknown insert column %s", n)
		}
		out[i] = pos
	}
	return out, nil
}

func applyOrder(row val.Row, order []int, width int) (val.Row, error) {
	if order == nil {
		if len(row) != width {
			return nil, fmt.Errorf("sql: insert expects %d values, got %d", width, len(row))
		}
		return row, nil
	}
	if len(row) != len(order) {
		return nil, fmt.Errorf("sql: insert expects %d values, got %d", len(order), len(row))
	}
	out := make(val.Row, width)
	for i := range out {
		out[i] = val.Null()
	}
	for i, pos := range order {
		out[pos] = row[i]
	}
	return out, nil
}

func (s *Session) execDelete(st *DeleteStmt, ctx *ExecCtx, res *Result) error {
	if strings.HasPrefix(st.Table, "#") {
		mt, ok := s.temps[fold(st.Table)]
		if !ok {
			return fmt.Errorf("sql: unknown temp table %s", st.Table)
		}
		sc := &scope{}
		for _, c := range mt.Cols {
			sc.cols = append(sc.cols, ColRef{Qualifier: mt.Name, Name: c.Name, Kind: c.Kind})
		}
		var cond compiledExpr
		if st.Where != nil {
			ce, err := compileExpr(st.Where, sc, s.db)
			if err != nil {
				return err
			}
			cond = ce
		}
		kept := mt.Rows[:0]
		deleted := int64(0)
		for _, r := range mt.Rows {
			if cond != nil {
				ok, err := cond(ctx, r)
				if err != nil {
					return err
				}
				if !ok.Truthy() {
					kept = append(kept, r)
					continue
				}
			}
			deleted++
		}
		mt.Rows = kept
		res.RowsAffected = deleted
		return nil
	}

	t, err := s.db.Table(st.Table)
	if err != nil {
		return err
	}
	sc := &scope{}
	for _, c := range t.Cols {
		sc.cols = append(sc.cols, ColRef{Qualifier: t.Name, Name: c.Name, Kind: c.Kind})
	}
	var cond compiledExpr
	if st.Where != nil {
		ce, err := compileExpr(st.Where, sc, s.db)
		if err != nil {
			return err
		}
		cond = ce
	}
	// Collect matching RIDs first (serial scan, all shards), then delete.
	var rids []storage.RID
	err = t.ScanRows(1, nil, func(rid storage.RID, row val.Row) error {
		if cond != nil {
			ok, err := cond(ctx, row)
			if err != nil {
				return err
			}
			if !ok.Truthy() {
				return nil
			}
		}
		rids = append(rids, rid)
		return nil
	})
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if _, err := t.DeleteRID(rid); err != nil {
			return err
		}
	}
	res.RowsAffected = int64(len(rids))
	return nil
}
