package sqlengine

import (
	"fmt"
	"strings"
	"time"

	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// Session is one connection's state: declared variables and temp tables
// (the ##results of the paper's queries).
type Session struct {
	db    *DB
	vars  map[string]val.Value
	temps map[string]*MemTable
}

// NewSession opens a session on the database.
func NewSession(db *DB) *Session {
	return &Session{
		db:    db,
		vars:  make(map[string]val.Value),
		temps: make(map[string]*MemTable),
	}
}

// DB returns the session's database.
func (s *Session) DB() *DB { return s.db }

// Var returns a declared variable's value.
func (s *Session) Var(name string) (val.Value, bool) {
	v, ok := s.vars[fold(name)]
	return v, ok
}

// SetVar declares-or-assigns a variable (used by tools wrapping sessions).
func (s *Session) SetVar(name string, v val.Value) {
	s.vars[fold(name)] = v
}

// Temp returns a session temp table.
func (s *Session) Temp(name string) (*MemTable, bool) {
	t, ok := s.temps[fold(name)]
	return t, ok
}

// ExecOptions bound one batch execution. The public SkyServer runs with
// MaxRows 1000 and Timeout 30 s (§4: "The public SkyServer limits queries to
// 1,000 records or 30 seconds of computation"); private servers run
// unlimited.
type ExecOptions struct {
	MaxRows int
	Timeout time.Duration
	DOP     int
	// ForceRowExprs disables the vectorized expression kernels so every
	// filter and projection runs through the row-at-a-time fallback — a
	// diagnostic and testing knob. Result sets are identical either way;
	// the one observable difference is error surfacing inside AND filters:
	// the row path evaluates the right operand even when the left is NULL
	// (to distinguish false from NULL), while the vectorized path drops
	// NULL-left rows without evaluating the right side, so an error the
	// right operand would raise on such a row (e.g. division by zero)
	// only surfaces under ForceRowExprs.
	ForceRowExprs bool
	// DisablePooling allocates every batch and kernel scratch vector
	// fresh instead of recycling them through the val pools — the debug
	// oracle the equivalence tests compare pooled execution against to
	// prove recycling never corrupts results. Result sets are identical
	// either way.
	DisablePooling bool
}

// Result is the outcome of a batch: the last SELECT's result set plus
// execution statistics for the SkyServerQA status window.
type Result struct {
	Cols  []string
	Kinds []val.Kind
	Rows  []val.Row
	// RowsAffected counts inserted/deleted rows of DML statements.
	RowsAffected int64
	// Truncated reports that MaxRows cut the result short.
	Truncated bool
	// Plan is the EXPLAIN text of the last SELECT.
	Plan string
	// Elapsed is wall-clock time; CPU is process CPU consumed (user+sys),
	// the two series of Figure 13.
	Elapsed time.Duration
	CPU     time.Duration
	// RowsScanned counts records visited by scans and probes.
	RowsScanned int64
}

// ResultBatchFunc receives one batch of a streamed SELECT's result set
// along with the output column names. The batch is only valid during the
// call (see batchFn); serialize or copy before returning.
type ResultBatchFunc func(cols []string, b *val.Batch) error

// Exec parses and runs a batch, returning the last statement's result.
func (s *Session) Exec(sql string, opt ExecOptions) (*Result, error) {
	return s.exec(sql, opt, nil)
}

// ExecStream is Exec, except the last SELECT's result set is delivered to
// sink batch-by-batch instead of being materialized into Result.Rows — the
// web layer serializes HTTP responses straight from these batches. The
// returned Result carries the schema, plan, and statistics with Rows nil
// for the streamed statement; other statements behave exactly as in Exec.
func (s *Session) ExecStream(sql string, opt ExecOptions, sink ResultBatchFunc) (*Result, error) {
	return s.exec(sql, opt, sink)
}

func (s *Session) exec(sql string, opt ExecOptions, sink ResultBatchFunc) (*Result, error) {
	stmts, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	// The last SELECT of the batch is the result statement; it streams to
	// the sink (a SELECT INTO both streams and fills its target table, so
	// every format agrees with the materializing path).
	lastSel := -1
	if sink != nil {
		for i, st := range stmts {
			if _, ok := st.(*SelectStmt); ok {
				lastSel = i
			}
		}
	}
	res := &Result{}
	startWall := time.Now()
	startCPU := processCPU()
	ctx := &ExecCtx{DB: s.db, Session: s, DOP: opt.DOP, ForceRowExprs: opt.ForceRowExprs, DisablePooling: opt.DisablePooling}
	if opt.Timeout > 0 {
		ctx.Deadline = startWall.Add(opt.Timeout)
	}
	for i, st := range stmts {
		var sk ResultBatchFunc
		if i == lastSel {
			sk = sink
		}
		if err := s.execOne(st, ctx, opt, res, sk); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(startWall)
	res.CPU = processCPU() - startCPU
	res.RowsScanned = ctx.RowsScanned.Load()
	return res, nil
}

// Explain plans a single SELECT and returns its plan text without running it.
func (s *Session) Explain(sql string) (string, error) {
	stmts, err := Parse(sql)
	if err != nil {
		return "", err
	}
	var plans []string
	for _, st := range stmts {
		switch st := st.(type) {
		case *SelectStmt:
			p := &planner{db: s.db, sess: s}
			node, err := p.planSelect(st)
			if err != nil {
				return "", err
			}
			root := Node(node)
			if st.Into != "" {
				plans = append(plans, fmt.Sprintf("InsertInto(%s)\n%s", st.Into, indentLines(Explain(root))))
			} else {
				plans = append(plans, Explain(root))
			}
		case *DeclareStmt, *SetStmt:
			// No plan; session effects only. Run SETs so later
			// statements referencing the variable still plan.
			if err := s.execSessionOnly(st); err != nil {
				return "", err
			}
		default:
			plans = append(plans, fmt.Sprintf("%T\n", st))
		}
	}
	return strings.Join(plans, ""), nil
}

func indentLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func (s *Session) execSessionOnly(st Statement) error {
	switch st := st.(type) {
	case *DeclareStmt:
		if _, err := KindForTypeName(st.Type); err != nil {
			return err
		}
		s.vars[st.Name] = val.Null()
		return nil
	case *SetStmt:
		if _, ok := s.vars[st.Name]; !ok {
			return fmt.Errorf("sql: variable @%s not declared", st.Name)
		}
		ce, err := compileExpr(st.Expr, &scope{}, s.db)
		if err != nil {
			return err
		}
		ctx := &ExecCtx{DB: s.db, Session: s}
		v, err := ce(ctx, nil)
		if err != nil {
			return err
		}
		s.vars[st.Name] = v
		return nil
	}
	return fmt.Errorf("sql: not a session statement: %T", st)
}

func (s *Session) execOne(st Statement, ctx *ExecCtx, opt ExecOptions, res *Result, sink ResultBatchFunc) error {
	switch st := st.(type) {
	case *DeclareStmt, *SetStmt:
		return s.execSessionOnly(st)

	case *SelectStmt:
		return s.execSelect(st, ctx, opt, res, sink)

	case *InsertStmt:
		return s.execInsert(st, ctx, opt, res)

	case *DeleteStmt:
		return s.execDelete(st, ctx, res)

	case *CreateTableStmt:
		cols := make([]Column, len(st.Cols))
		for i, cd := range st.Cols {
			k, err := KindForTypeName(cd.Type)
			if err != nil {
				return err
			}
			cols[i] = Column{Name: cd.Name, Kind: k, NotNull: cd.NotNull}
		}
		if strings.HasPrefix(st.Table, "#") {
			s.temps[fold(st.Table)] = &MemTable{Name: st.Table, Cols: cols}
			return nil
		}
		_, err := s.db.CreateTable(st.Table, cols, nil, "")
		return err

	default:
		return fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func (s *Session) execSelect(st *SelectStmt, ctx *ExecCtx, opt ExecOptions, res *Result, sink ResultBatchFunc) error {
	p := &planner{db: s.db, sess: s}
	node, err := p.planSelect(st)
	if err != nil {
		return err
	}
	cols := node.Columns()
	names := make([]string, len(cols))
	kinds := make([]val.Kind, len(cols))
	for i, c := range cols {
		names[i] = c.Name
		kinds[i] = c.Kind
	}
	truncated := false
	limit := opt.MaxRows
	sent := 0
	var rows []val.Row
	// INTO needs the rows materialized for the target table even when the
	// result set is also streamed to a sink.
	gather := sink == nil || st.Into != ""
	err = node.Run(ctx, func(b *val.Batch) error {
		if limit > 0 {
			rem := limit - sent
			if rem <= 0 {
				truncated = true
				return errStopEarly
			}
			if b.Len() > rem {
				b.Truncate(rem)
				truncated = true
			}
		}
		sent += b.Len()
		if gather {
			b.Each(func(i int) {
				rows = append(rows, b.RowAt(i, make(val.Row, b.Width())))
			})
		}
		if sink != nil {
			return sink(names, b)
		}
		return nil
	})
	if err != nil && err != errStopEarly {
		return err
	}
	if st.Into != "" {
		mt := &MemTable{Name: st.Into}
		for i := range names {
			mt.Cols = append(mt.Cols, Column{Name: names[i], Kind: kinds[i]})
		}
		mt.Rows = rows
		if strings.HasPrefix(st.Into, "#") {
			s.temps[fold(st.Into)] = mt
		} else {
			// SELECT INTO a permanent name also lands in the
			// session under that name (the engine is a warehouse;
			// ad-hoc result tables stay session-local).
			s.temps[fold(st.Into)] = mt
		}
		res.RowsAffected = int64(len(rows))
	}
	res.Cols = names
	res.Kinds = kinds
	res.Rows = rows
	res.Truncated = truncated
	res.Plan = Explain(node)
	return nil
}

func (s *Session) execInsert(st *InsertStmt, ctx *ExecCtx, opt ExecOptions, res *Result) error {
	// Gather the rows to insert.
	var inRows []val.Row
	var inCols []string
	if st.Select != nil {
		p := &planner{db: s.db, sess: s}
		node, err := p.planSelect(st.Select)
		if err != nil {
			return err
		}
		for _, c := range node.Columns() {
			inCols = append(inCols, c.Name)
		}
		if err := node.Run(ctx, func(b *val.Batch) error {
			b.Each(func(i int) {
				inRows = append(inRows, b.RowAt(i, make(val.Row, b.Width())))
			})
			return nil
		}); err != nil {
			return err
		}
	} else {
		for _, ve := range st.Values {
			row := make(val.Row, len(ve))
			for i, e := range ve {
				ce, err := compileExpr(e, &scope{}, s.db)
				if err != nil {
					return err
				}
				v, err := ce(ctx, nil)
				if err != nil {
					return err
				}
				row[i] = v
			}
			inRows = append(inRows, row)
		}
	}

	// Resolve the target.
	if strings.HasPrefix(st.Table, "#") {
		mt, ok := s.temps[fold(st.Table)]
		if !ok {
			return fmt.Errorf("sql: unknown temp table %s", st.Table)
		}
		reorder, err := columnOrder(len(mt.Cols), namesOf(mt.Cols), st.Cols)
		if err != nil {
			return err
		}
		for _, r := range inRows {
			out, err := applyOrder(r, reorder, len(mt.Cols))
			if err != nil {
				return err
			}
			mt.Rows = append(mt.Rows, out)
		}
		res.RowsAffected = int64(len(inRows))
		return nil
	}
	t, err := s.db.Table(st.Table)
	if err != nil {
		return err
	}
	reorder, err := columnOrder(len(t.Cols), namesOfTable(t.Cols), st.Cols)
	if err != nil {
		return err
	}
	for _, r := range inRows {
		out, err := applyOrder(r, reorder, len(t.Cols))
		if err != nil {
			return err
		}
		if _, err := t.Insert(out); err != nil {
			return err
		}
	}
	res.RowsAffected = int64(len(inRows))
	return nil
}

func namesOf(cols []Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func namesOfTable(cols []Column) []string { return namesOf(cols) }

// columnOrder maps insert positions to table positions. Empty colList means
// positional insert.
func columnOrder(tableWidth int, tableCols []string, colList []string) ([]int, error) {
	if len(colList) == 0 {
		return nil, nil
	}
	idx := make(map[string]int, tableWidth)
	for i, n := range tableCols {
		idx[fold(n)] = i
	}
	out := make([]int, len(colList))
	for i, n := range colList {
		pos, ok := idx[fold(n)]
		if !ok {
			return nil, fmt.Errorf("sql: unknown insert column %s", n)
		}
		out[i] = pos
	}
	return out, nil
}

func applyOrder(row val.Row, order []int, width int) (val.Row, error) {
	if order == nil {
		if len(row) != width {
			return nil, fmt.Errorf("sql: insert expects %d values, got %d", width, len(row))
		}
		return row, nil
	}
	if len(row) != len(order) {
		return nil, fmt.Errorf("sql: insert expects %d values, got %d", len(order), len(row))
	}
	out := make(val.Row, width)
	for i := range out {
		out[i] = val.Null()
	}
	for i, pos := range order {
		out[pos] = row[i]
	}
	return out, nil
}

func (s *Session) execDelete(st *DeleteStmt, ctx *ExecCtx, res *Result) error {
	if strings.HasPrefix(st.Table, "#") {
		mt, ok := s.temps[fold(st.Table)]
		if !ok {
			return fmt.Errorf("sql: unknown temp table %s", st.Table)
		}
		sc := &scope{}
		for _, c := range mt.Cols {
			sc.cols = append(sc.cols, ColRef{Qualifier: mt.Name, Name: c.Name, Kind: c.Kind})
		}
		var cond compiledExpr
		if st.Where != nil {
			ce, err := compileExpr(st.Where, sc, s.db)
			if err != nil {
				return err
			}
			cond = ce
		}
		kept := mt.Rows[:0]
		deleted := int64(0)
		for _, r := range mt.Rows {
			if cond != nil {
				ok, err := cond(ctx, r)
				if err != nil {
					return err
				}
				if !ok.Truthy() {
					kept = append(kept, r)
					continue
				}
			}
			deleted++
		}
		mt.Rows = kept
		res.RowsAffected = deleted
		return nil
	}

	t, err := s.db.Table(st.Table)
	if err != nil {
		return err
	}
	sc := &scope{}
	for _, c := range t.Cols {
		sc.cols = append(sc.cols, ColRef{Qualifier: t.Name, Name: c.Name, Kind: c.Kind})
	}
	var cond compiledExpr
	if st.Where != nil {
		ce, err := compileExpr(st.Where, sc, s.db)
		if err != nil {
			return err
		}
		cond = ce
	}
	// Collect matching RIDs first (serial scan), then delete.
	var rids []storage.RID
	width := len(t.Cols)
	err = t.heap.Scan(1, func(rid storage.RID, rec []byte) error {
		row := make(val.Row, width)
		if _, err := val.DecodeRow(rec, row, width, nil); err != nil {
			return err
		}
		if cond != nil {
			ok, err := cond(ctx, row)
			if err != nil {
				return err
			}
			if !ok.Truthy() {
				return nil
			}
		}
		rids = append(rids, rid)
		return nil
	})
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if _, err := t.DeleteRID(rid); err != nil {
			return err
		}
	}
	res.RowsAffected = int64(len(rids))
	return nil
}
