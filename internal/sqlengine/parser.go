package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"skyserver/internal/val"
)

// parser is a recursive-descent parser over the token stream with T-SQL-ish
// operator precedence: OR < AND < NOT < comparison < (+ - & ^ |) < (* / %)
// < unary.
type parser struct {
	toks []token
	pos  int
	src  string
	// params is the normalizer-extracted parameter vector; literal tokens
	// carrying a param mark compile to ParamExpr slots instead of LitExpr.
	// nil for un-parameterized parses (Parse, the DisablePlanCache oracle).
	params []val.Value
}

// Parse parses a batch of statements with literals left in place — the
// un-parameterized form view definitions and the DisablePlanCache debug
// oracle use. The cached execution path parses via parseStatements with the
// normalizer's parameter marks instead.
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return parseStatements(toks, src, nil)
}

// parseStatements parses a lexed batch. When params is non-nil, tokens the
// normalizer marked compile to ParamExpr references into that vector.
func parseStatements(toks []token, src string, params []val.Value) ([]Statement, error) {
	p := &parser{toks: toks, src: src, params: params}
	var stmts []Statement
	for {
		for p.isOp(";") {
			p.pos++
		}
		if p.cur().kind == tokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty batch")
	}
	return stmts, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	t := p.cur()
	return fmt.Errorf("sql: %s (near offset %d, token %q)", msg, t.pos, t.text)
}

// isKw reports whether the current token is the given keyword. A
// [bracketed] identifier is never a keyword — T-SQL semantics, and the
// assumption the plan-cache normalizer's structural-literal rules (TOP
// counts, ORDER BY ordinals) rely on: normalize and parse must agree on
// what is a keyword, or two texts could share a cache key while parsing
// to different plan shapes.
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && !t.bracketed && fold(t.text) == kw
}

func (p *parser) isOp(op string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == op
}

// eatKw consumes a keyword if present.
func (p *parser) eatKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.eatOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("select"):
		return p.parseSelect()
	case p.isKw("declare"):
		return p.parseDeclare()
	case p.isKw("set"):
		return p.parseSet()
	case p.isKw("insert"):
		return p.parseInsert()
	case p.isKw("delete"):
		return p.parseDelete()
	case p.isKw("create"):
		return p.parseCreate()
	default:
		return nil, p.errf("expected a statement")
	}
}

// reservedAfterSource lists keywords that terminate a FROM item, so a bare
// identifier there is an alias only when it is not one of these.
var reservedAfterSource = map[string]bool{
	"where": true, "group": true, "order": true, "having": true,
	"join": true, "inner": true, "left": true, "right": true, "cross": true,
	"on": true, "select": true, "insert": true, "delete": true,
	"declare": true, "set": true, "create": true, "union": true,
	"as": true, "into": true, "top": true, "and": true, "or": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.eatKw("top") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after TOP")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad TOP count %q", t.text)
		}
		s.Top = n
		p.pos++
	}
	if p.eatKw("distinct") {
		s.Distinct = true
	}
	// Select items.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKw("into") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s.Into = name
	}
	if p.eatKw("from") {
		first, err := p.parseFromItem(nil)
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, first)
		for {
			if p.eatOp(",") {
				item, err := p.parseFromItem(nil)
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, item)
				continue
			}
			if p.eatKw("inner") {
				if err := p.expectKw("join"); err != nil {
					return nil, err
				}
			} else if !p.eatKw("join") {
				break
			}
			joined, err := p.parseFromItem(nil)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			joined.JoinCond = cond
			s.From = append(s.From, joined)
		}
	}
	if p.eatKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.eatKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.eatKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.eatKw("desc") {
				k.Desc = true
			} else {
				p.eatKw("asc")
			}
			s.OrderBy = append(s.OrderBy, k)
			if !p.eatOp(",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.isOp("*") {
		p.pos++
		return SelectItem{Star: true}, nil
	}
	// qualifier.* form
	if p.cur().kind == tokIdent && p.peek().kind == tokOp && p.peek().text == "." {
		save := p.pos
		q := p.cur().text
		p.pos += 2
		if p.isOp("*") {
			p.pos++
			return SelectItem{Star: true, Qualifier: q}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKw("as") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().kind == tokIdent && !reservedAfterSource[fold(p.cur().text)] &&
		!p.isKw("from") {
		item.Alias = p.cur().text
		p.pos++
	}
	if item.Alias == "" {
		if c, ok := e.(*ColExpr); ok {
			item.Alias = c.Name
		}
	}
	return item, nil
}

func (p *parser) parseFromItem(joinCond Expr) (FromItem, error) {
	name, err := p.expectIdent()
	if err != nil {
		return FromItem{}, err
	}
	// Optional dbo. prefix.
	if fold(name) == "dbo" && p.isOp(".") {
		p.pos++
		name, err = p.expectIdent()
		if err != nil {
			return FromItem{}, err
		}
	}
	item := FromItem{JoinCond: joinCond}
	if p.isOp("(") {
		// Table-valued function.
		p.pos++
		fn := &FuncExpr{Name: fold(name)}
		if !p.eatOp(")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return FromItem{}, err
				}
				fn.Args = append(fn.Args, arg)
				if p.eatOp(")") {
					break
				}
				if err := p.expectOp(","); err != nil {
					return FromItem{}, err
				}
			}
		}
		item.Func = fn
	} else {
		item.Table = name
	}
	if p.eatKw("as") {
		a, err := p.expectIdent()
		if err != nil {
			return FromItem{}, err
		}
		item.Alias = a
	} else if p.cur().kind == tokIdent && !reservedAfterSource[fold(p.cur().text)] {
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseDeclare() (Statement, error) {
	if err := p.expectKw("declare"); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokVariable {
		return nil, p.errf("expected @variable after DECLARE")
	}
	p.pos++
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	return &DeclareStmt{Name: fold(t.text), Type: typ}, nil
}

func (p *parser) parseSet() (Statement, error) {
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokVariable {
		return nil, p.errf("expected @variable after SET")
	}
	p.pos++
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &SetStmt{Name: fold(t.text), Expr: e}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKw("insert"); err != nil {
		return nil, err
	}
	p.eatKw("into")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.isOp("(") {
		p.pos++
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if p.eatOp(")") {
				break
			}
			if err := p.expectOp(","); err != nil {
				return nil, err
			}
		}
	}
	switch {
	case p.eatKw("values"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.eatOp(")") {
					break
				}
				if err := p.expectOp(","); err != nil {
					return nil, err
				}
			}
			st.Values = append(st.Values, row)
			if !p.eatOp(",") {
				break
			}
		}
	case p.isKw("select"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.eatKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKw("create"); err != nil {
		return nil, err
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: name}
	for {
		cn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		def := ColDef{Name: cn, Type: typ}
		if p.eatKw("not") {
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			def.NotNull = true
		} else {
			p.eatKw("null")
		}
		st.Cols = append(st.Cols, def)
		if p.eatOp(")") {
			break
		}
		if err := p.expectOp(","); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseTypeName accepts bigint, int, float, real, varchar(n), etc.
func (p *parser) parseTypeName() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	// Swallow a length argument such as varchar(64).
	if p.isOp("(") {
		p.pos++
		for !p.eatOp(")") {
			if p.cur().kind == tokEOF {
				return "", p.errf("unterminated type argument")
			}
			p.pos++
		}
	}
	return fold(name), nil
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eatKw("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.isKw("is") {
		p.pos++
		not := p.eatKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	// [NOT] BETWEEN / IN / LIKE
	not := false
	if p.isKw("not") && (fold(p.peek().text) == "between" || fold(p.peek().text) == "in" || fold(p.peek().text) == "like") {
		p.pos++
		not = true
	}
	switch {
	case p.eatKw("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.eatKw("in"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.eatOp(")") {
				break
			}
			if err := p.expectOp(","); err != nil {
				return nil, err
			}
		}
		return &InExpr{X: l, List: list, Not: not}, nil
	case p.eatKw("like"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: l, Pattern: pat, Not: not}, nil
	}
	for {
		t := p.cur()
		if t.kind != tokOp {
			return l, nil
		}
		switch t.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			l = &BinExpr{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp {
			return l, nil
		}
		switch t.text {
		case "+", "-", "&", "|", "^":
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp {
			return l, nil
		}
		switch t.text {
		case "*", "/", "%":
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.text, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.eatOp("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case p.eatOp("+"):
		return p.parseUnary()
	case p.eatOp("~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "~", X: x}, nil
	}
	return p.parsePrimary()
}

// aggregateNames are parsed into AggExpr rather than FuncExpr.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if t.param > 0 && p.params != nil {
			idx := int(t.param) - 1
			return &ParamExpr{Idx: idx, Kind: p.params[idx].K}, nil
		}
		v, ok := parseNumberLit(t.text)
		if !ok {
			return nil, p.errf("bad number %q", t.text)
		}
		return &LitExpr{Val: v}, nil
	case tokString:
		p.pos++
		if t.param > 0 && p.params != nil {
			idx := int(t.param) - 1
			return &ParamExpr{Idx: idx, Kind: val.KindString}, nil
		}
		return &LitExpr{Val: val.Str(t.text)}, nil
	case tokVariable:
		p.pos++
		return &VarExpr{Name: fold(t.text)}, nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected token in expression")
	case tokIdent:
		name := t.text
		lower := fold(name)
		switch lower {
		case "null":
			p.pos++
			return &LitExpr{Val: val.Null()}, nil
		case "case":
			return p.parseCase()
		}
		p.pos++
		// dbo.func(...) or qualifier.column or qualifier.func(...)
		if p.isOp(".") {
			p.pos++
			second, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.isOp("(") {
				return p.parseCallArgs(fold(second))
			}
			return &ColExpr{Qualifier: name, Name: second}, nil
		}
		if p.isOp("(") {
			if aggregateNames[lower] {
				return p.parseAggCall(lower)
			}
			return p.parseCallArgs(lower)
		}
		return &ColExpr{Name: name}, nil
	default:
		return nil, p.errf("unexpected token in expression")
	}
}

func (p *parser) parseCallArgs(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fn := &FuncExpr{Name: name}
	if p.eatOp(")") {
		return fn, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fn.Args = append(fn.Args, e)
		if p.eatOp(")") {
			return fn, nil
		}
		if err := p.expectOp(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseAggCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if name == "count" && p.isOp("*") {
		p.pos++
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &AggExpr{Name: "count"}, nil
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &AggExpr{Name: name, Arg: arg}, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKw("case"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.eatKw("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.eatKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
