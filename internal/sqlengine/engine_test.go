package sqlengine

import (
	"strings"
	"testing"
	"time"

	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// testDB builds a small database shaped like the SkyServer schema: an Obj
// table with a PK on objID, a secondary index on (run, camcol) covering
// mag_r, a view over primaries, a TVF, and a scalar flag function.
func testDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	fg := storage.NewMemFileGroup(2, 1024)
	db := NewDB(fg)
	_, err := db.CreateTable("Obj", []Column{
		{Name: "objID", Kind: val.KindInt, NotNull: true},
		{Name: "run", Kind: val.KindInt, NotNull: true},
		{Name: "camcol", Kind: val.KindInt, NotNull: true},
		{Name: "field", Kind: val.KindInt, NotNull: true},
		{Name: "ra", Kind: val.KindFloat, NotNull: true},
		{Name: "dec", Kind: val.KindFloat, NotNull: true},
		{Name: "mag_r", Kind: val.KindFloat, NotNull: true},
		{Name: "mag_g", Kind: val.KindFloat, NotNull: true},
		{Name: "type", Kind: val.KindInt, NotNull: true},
		{Name: "flags", Kind: val.KindInt, NotNull: true},
		{Name: "name", Kind: val.KindString},
	}, []string{"objID"}, "test objects")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("Obj", "ix_run_camcol", []string{"run", "camcol"}, []string{"mag_r"}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("Primaries", "Obj", "(flags & 1) = 1", "primary objects"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("Gals", "Primaries", "type = 3", "primary galaxies"); err != nil {
		t.Fatal(err)
	}
	db.RegisterScalar(&ScalarFunc{Name: "fFlagVal", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].S == "saturated" {
				return val.Int(2), nil
			}
			return val.Int(0), nil
		}})
	db.RegisterTVF(&TableFunc{
		Name: "fNearIDs",
		Cols: []Column{
			{Name: "objID", Kind: val.KindInt},
			{Name: "distance", Kind: val.KindFloat},
		},
		EstRows: 4,
		Fn: func(ctx *ExecCtx, args []val.Value, emit TVFEmit) error {
			// Return objIDs 1..n with synthetic distances.
			n, _ := args[0].AsInt()
			var rows []val.Row
			for i := int64(1); i <= n; i++ {
				rows = append(rows, val.Row{val.Int(i), val.Float(float64(n-i) * 0.1)})
			}
			return EmitRows(ctx, 2, rows, emit)
		}})

	tab, _ := db.Table("Obj")
	// 60 objects in runs 752/756, camcols 1..6; odd objIDs primary
	// (flags bit 1), every 10th saturated (bit 2), types alternate 3/6.
	for i := int64(1); i <= 60; i++ {
		run := int64(752)
		if i%2 == 0 {
			run = 756
		}
		flags := i % 2 // primary bit
		if i%10 == 0 {
			flags |= 2 // saturated
		}
		typ := int64(3)
		if i%3 == 0 {
			typ = 6
		}
		row := val.Row{
			val.Int(i), val.Int(run), val.Int(1 + (i % 6)), val.Int(i / 6),
			val.Float(180 + float64(i)*0.01), val.Float(-0.5 + float64(i)*0.001),
			val.Float(15 + float64(i%8)), val.Float(16 + float64(i%5)),
			val.Int(typ), val.Int(flags), val.Str("obj"),
		}
		if _, err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return db, NewSession(db)
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql, ExecOptions{})
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestSelectSimple(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select objID, mag_r from Obj where objID = 5")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "objID" || res.Cols[1] != "mag_r" {
		t.Errorf("cols = %v", res.Cols)
	}
	// objID = 5 should use the PK index, not a table scan.
	if !strings.Contains(res.Plan, "IndexSeek(Obj.pk_Obj") {
		t.Errorf("plan does not seek the PK:\n%s", res.Plan)
	}
}

func TestSelectNoFrom(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select 1+2 as three, 'x' as s")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 || res.Rows[0][1].S != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "three" {
		t.Errorf("alias lost: %v", res.Cols)
	}
}

func TestSelectStar(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select * from Obj where objID = 1")
	if len(res.Cols) != 11 {
		t.Fatalf("star expanded to %d cols", len(res.Cols))
	}
}

func TestWhereArithmeticAndBetween(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select count(*) as n from Obj where mag_r between 15 and 17")
	var manual int64
	res2 := mustExec(t, s, "select mag_r from Obj")
	for _, r := range res2.Rows {
		if r[0].F >= 15 && r[0].F <= 17 {
			manual++
		}
	}
	if res.Rows[0][0].I != manual {
		t.Errorf("count = %d, manual = %d", res.Rows[0][0].I, manual)
	}
}

func TestOrderByAndTop(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select top 5 objID, mag_r from Obj order by mag_r desc, objID asc")
	if len(res.Rows) != 5 {
		t.Fatalf("top 5 returned %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].F > res.Rows[i-1][1].F {
			t.Fatalf("not sorted desc: %v", res.Rows)
		}
	}
}

func TestOrderByAlias(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select objID, mag_r - mag_g as color from Obj order by color")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].Compare(res.Rows[i-1][1]) < 0 {
			t.Fatalf("not sorted by alias")
		}
	}
}

func TestOrderByOrdinal(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select objID, mag_r from Obj order by 2 desc")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].F > res.Rows[i-1][1].F {
			t.Fatalf("ordinal sort failed")
		}
	}
}

func TestOrderByHiddenExpr(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select objID from Obj order by mag_r + mag_g desc")
	if len(res.Cols) != 1 {
		t.Fatalf("hidden sort column leaked: %v", res.Cols)
	}
	if len(res.Rows) != 60 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestGroupByHaving(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, `
		select run, count(*) as n, avg(mag_r) as am
		from Obj group by run having count(*) > 1 order by run`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].I != 752 || res.Rows[1][0].I != 756 {
		t.Errorf("group keys wrong: %v", res.Rows)
	}
	if res.Rows[0][1].I+res.Rows[1][1].I != 60 {
		t.Errorf("group counts don't sum to 60: %v", res.Rows)
	}
}

func TestAggregatesMinMaxSum(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select min(mag_r), max(mag_r), sum(objID), count(name) from Obj")
	r := res.Rows[0]
	if r[0].F != 15 || r[1].F != 22 {
		t.Errorf("min/max = %v", r)
	}
	if r[2].F != 60*61/2 {
		t.Errorf("sum = %v", r[2])
	}
	if r[3].I != 60 {
		t.Errorf("count(name) = %v", r[3])
	}
}

func TestCountEmptyResult(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select count(*) from Obj where objID > 1000000")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("count over empty = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select distinct run from Obj order by run")
	if len(res.Rows) != 2 {
		t.Fatalf("distinct runs = %v", res.Rows)
	}
}

func TestViewInlining(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select count(*) from Primaries")
	if res.Rows[0][0].I != 30 {
		t.Errorf("primaries = %v, want 30 (odd objIDs)", res.Rows[0][0])
	}
	// Stacked views: Gals = Primaries with type=3.
	res2 := mustExec(t, s, "select count(*) from Gals")
	manual := mustExec(t, s, "select count(*) from Obj where (flags & 1) = 1 and type = 3")
	if res2.Rows[0][0].I != manual.Rows[0][0].I {
		t.Errorf("stacked view = %v, manual = %v", res2.Rows[0][0], manual.Rows[0][0])
	}
	if !strings.Contains(res2.Plan, "Obj") {
		t.Errorf("view not inlined to base table:\n%s", res2.Plan)
	}
}

func TestDeclareSetAndBitwise(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, `
		declare @saturated bigint;
		set @saturated = dbo.fFlagVal('saturated');
		select count(*) from Obj where (flags & @saturated) = 0`)
	if res.Rows[0][0].I != 54 {
		t.Errorf("unsaturated = %v, want 54", res.Rows[0][0])
	}
}

func TestQ1ShapeTVFJoin(t *testing.T) {
	// The paper's Query 1 shape: view join TVF on objID, flag test, sort,
	// INTO a temp table.
	_, s := testDB(t)
	res := mustExec(t, s, `
		declare @saturated bigint;
		set @saturated = dbo.fFlagVal('saturated');
		select G.objID, GN.distance
		into ##results
		from Gals as G
		join fNearIDs(20) as GN on G.objID = GN.objID
		where (G.flags & @saturated) = 0
		order by distance`)
	// fNearIDs(20) returns ids 1..20; Gals are odd & type=3 & not
	// saturated. Check against manual evaluation.
	manual := mustExec(t, s, `select objID from Obj
		where objID <= 20 and (flags & 1) = 1 and type = 3 and (flags & 2) = 0`)
	if len(res.Rows) != len(manual.Rows) {
		t.Fatalf("Q1 rows = %d, manual = %d", len(res.Rows), len(manual.Rows))
	}
	// Sorted ascending by distance.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].F < res.Rows[i-1][1].F {
			t.Fatalf("not sorted by distance")
		}
	}
	// Plan shape: TVF on the outer side, PK probe on the inner.
	if !strings.Contains(res.Plan, "TableValuedFunction(fNearIDs") {
		t.Errorf("plan missing TVF:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "NestedLoopJoin(probe Obj via pk_Obj") {
		t.Errorf("plan missing index-probe join:\n%s", res.Plan)
	}
	// The temp table is queryable.
	res2 := mustExec(t, s, "select count(*) from ##results")
	if res2.Rows[0][0].I != int64(len(res.Rows)) {
		t.Errorf("##results count = %v", res2.Rows[0][0])
	}
}

func TestSelfJoinWithIndexProbe(t *testing.T) {
	// The Q15B shape: self-join on (run, camcol) with inequality residual.
	_, s := testDB(t)
	res := mustExec(t, s, `
		select r.objID, g.objID
		from Obj r, Obj g
		where r.run = g.run and r.camcol = g.camcol
		  and r.objID < g.objID
		  and r.mag_r < 16 and g.mag_r < 16`)
	// Verify against a nested manual evaluation.
	all := mustExec(t, s, "select objID, run, camcol, mag_r from Obj")
	want := 0
	for _, a := range all.Rows {
		for _, b := range all.Rows {
			if a[1].I == b[1].I && a[2].I == b[2].I && a[0].I < b[0].I &&
				a[3].F < 16 && b[3].F < 16 {
				want++
			}
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("self join rows = %d, want %d", len(res.Rows), want)
	}
	if !strings.Contains(res.Plan, "NestedLoopJoin(probe Obj via ix_run_camcol") {
		t.Errorf("self-join did not probe the (run,camcol) index:\n%s", res.Plan)
	}
}

func TestCoveringIndexScanChosen(t *testing.T) {
	_, s := testDB(t)
	// (run, camcol, mag_r) are covered by ix_run_camcol.
	res := mustExec(t, s, "select run, camcol, mag_r from Obj where run = 752")
	if !strings.Contains(res.Plan, "IndexSeek(Obj.ix_run_camcol, covering") {
		t.Errorf("expected covering index seek:\n%s", res.Plan)
	}
	if len(res.Rows) != 30 {
		t.Errorf("rows = %d, want 30", len(res.Rows))
	}
}

func TestRangeSeekOnSecondKeyColumn(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select run, camcol from Obj where run = 752 and camcol between 2 and 3")
	for _, r := range res.Rows {
		if r[0].I != 752 || r[1].I < 2 || r[1].I > 3 {
			t.Fatalf("row outside range: %v", r)
		}
	}
	manual := mustExec(t, s, "select count(*) from Obj where run = 752 and camcol >= 2 and camcol <= 3")
	if int64(len(res.Rows)) != manual.Rows[0][0].I {
		t.Errorf("range seek rows = %d, manual = %v", len(res.Rows), manual.Rows[0][0])
	}
}

func TestInsertValuesAndDelete(t *testing.T) {
	db, s := testDB(t)
	mustExec(t, s, "insert into Obj (objID, run, camcol, field, ra, dec, mag_r, mag_g, type, flags, name) values (100, 752, 1, 1, 180.0, 0.0, 14.0, 15.0, 3, 1, 'new')")
	res := mustExec(t, s, "select name from Obj where objID = 100")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "new" {
		t.Fatalf("insert not visible: %v", res.Rows)
	}
	res = mustExec(t, s, "delete from Obj where objID = 100")
	if res.RowsAffected != 1 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	res = mustExec(t, s, "select count(*) from Obj where objID = 100")
	if res.Rows[0][0].I != 0 {
		t.Error("row survived delete")
	}
	// Index must also be clean: PK probe finds nothing.
	tab, _ := db.Table("Obj")
	if got := tab.Rows(); got != 60 {
		t.Errorf("Rows = %d, want 60", got)
	}
}

func TestInsertSelect(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "create table #bright (objID bigint, mag_r float)")
	res := mustExec(t, s, "insert into #bright select objID, mag_r from Obj where mag_r < 16")
	if res.RowsAffected == 0 {
		t.Fatal("nothing inserted")
	}
	res2 := mustExec(t, s, "select count(*) from #bright")
	if res2.Rows[0][0].I != res.RowsAffected {
		t.Errorf("temp table count mismatch")
	}
}

func TestCaseExpr(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, `
		select case when type = 3 then 'galaxy' when type = 6 then 'star' else 'other' end as cls, count(*)
		from Obj group by case when type = 3 then 'galaxy' when type = 6 then 'star' else 'other' end
		order by cls`)
	if len(res.Rows) != 2 {
		t.Fatalf("case groups = %v", res.Rows)
	}
	if res.Rows[0][0].S != "galaxy" || res.Rows[1][0].S != "star" {
		t.Errorf("case values: %v", res.Rows)
	}
}

func TestInAndLikeAndIsNull(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select count(*) from Obj where camcol in (1, 2)")
	manual := mustExec(t, s, "select count(*) from Obj where camcol = 1 or camcol = 2")
	if res.Rows[0][0].I != manual.Rows[0][0].I {
		t.Errorf("IN mismatch")
	}
	res = mustExec(t, s, "select count(*) from Obj where name like 'ob%'")
	if res.Rows[0][0].I != 60 {
		t.Errorf("LIKE = %v", res.Rows[0][0])
	}
	res = mustExec(t, s, "select count(*) from Obj where name is not null")
	if res.Rows[0][0].I != 60 {
		t.Errorf("IS NOT NULL = %v", res.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select sqrt(16.0), power(2, 10), abs(-3), pi(), floor(2.7), sign(-5)")
	r := res.Rows[0]
	if r[0].F != 4 || r[1].F != 1024 || r[2].I != 3 {
		t.Errorf("math funcs: %v", r)
	}
	if r[3].F < 3.14 || r[3].F > 3.15 {
		t.Errorf("pi = %v", r[3])
	}
	if r[4].I != 2 || r[5].I != -1 {
		t.Errorf("floor/sign: %v", r)
	}
}

func TestIntegerDivisionSemantics(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select 7/2, 7.0/2, 7%3")
	r := res.Rows[0]
	if r[0].K != val.KindInt || r[0].I != 3 {
		t.Errorf("7/2 = %v (want int 3)", r[0])
	}
	if r[1].K != val.KindFloat || r[1].F != 3.5 {
		t.Errorf("7.0/2 = %v", r[1])
	}
	if r[2].I != 1 {
		t.Errorf("7%%3 = %v", r[2])
	}
}

func TestDivisionByZero(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.Exec("select 1/0", ExecOptions{}); err == nil {
		t.Error("1/0 succeeded")
	}
}

func TestNullSemantics(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select count(*) from Obj where null = null")
	if res.Rows[0][0].I != 0 {
		t.Error("NULL = NULL matched rows")
	}
	res = mustExec(t, s, "select isnull(null, 42), coalesce(null, null, 7)")
	if res.Rows[0][0].I != 42 || res.Rows[0][1].I != 7 {
		t.Errorf("isnull/coalesce: %v", res.Rows[0])
	}
}

func TestMaxRowsLimit(t *testing.T) {
	_, s := testDB(t)
	res, err := s.Exec("select objID from Obj", ExecOptions{MaxRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || !res.Truncated {
		t.Errorf("limit: rows=%d truncated=%v", len(res.Rows), res.Truncated)
	}
}

func TestTimeout(t *testing.T) {
	_, s := testDB(t)
	// A deliberately expensive unindexed self-cross-join, with an
	// already-expired deadline.
	_, err := s.Exec(
		"select count(*) from Obj a, Obj b, Obj c where a.mag_r+b.mag_r+c.mag_r > 1000",
		ExecOptions{Timeout: time.Nanosecond})
	if err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestParseErrors(t *testing.T) {
	_, s := testDB(t)
	for _, bad := range []string{
		"",
		"selec objID from Obj",
		"select from Obj",
		"select * from",
		"select * from Obj where",
		"select top x * from Obj",
		"select 'unterminated from Obj",
		"delete Obj",
		"insert into Obj",
	} {
		if _, err := s.Exec(bad, ExecOptions{}); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	_, s := testDB(t)
	for _, bad := range []string{
		"select nosuch from Obj",
		"select * from NoTable",
		"select x.objID from Obj",
		"select objID from Obj order by nosuchcol",
		"select run, count(*) from Obj group by camcol", // run not grouped
		"select nosuchfunc(1)",
		"select objID from Obj where @undeclared = 1",
	} {
		if _, err := s.Exec(bad, ExecOptions{}); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.Exec("select objID from Obj a, Obj b where a.objID = b.objID", ExecOptions{}); err == nil {
		t.Error("ambiguous objID accepted")
	}
}

func TestExplainWithoutExecution(t *testing.T) {
	_, s := testDB(t)
	plan, err := s.Explain("select objID from Obj where objID = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexSeek") {
		t.Errorf("explain: %s", plan)
	}
}

func TestTempTableLifecycle(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "select objID into ##t from Obj where run = 752")
	res := mustExec(t, s, "select count(*) from ##t")
	if res.Rows[0][0].I != 30 {
		t.Errorf("##t = %v", res.Rows[0][0])
	}
	mustExec(t, s, "delete from ##t where objID < 10")
	res = mustExec(t, s, "select count(*) from ##t")
	if res.Rows[0][0].I >= 30 {
		t.Error("delete from temp did nothing")
	}
	// A second SELECT INTO replaces it.
	mustExec(t, s, "select objID into ##t from Obj where run = 756")
	res = mustExec(t, s, "select count(*) from ##t")
	if res.Rows[0][0].I != 30 {
		t.Errorf("replaced ##t = %v", res.Rows[0][0])
	}
}

func TestStatsPopulated(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select count(*) from Obj where mag_g > 0")
	if res.RowsScanned == 0 {
		t.Error("RowsScanned = 0 for a table scan")
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
}

func TestUnaryAndPrecedence(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select -2 * 3 + 1, 2 + 3 * 4, (2+3)*4, not 0, ~0")
	r := res.Rows[0]
	if r[0].I != -5 || r[1].I != 14 || r[2].I != 20 {
		t.Errorf("precedence: %v", r)
	}
	if r[3].I != 1 || r[4].I != -1 {
		t.Errorf("not/~: %v", r)
	}
}

func TestStringEscapes(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, "select 'it''s'")
	if res.Rows[0][0].S != "it's" {
		t.Errorf("escape: %q", res.Rows[0][0].S)
	}
}

func TestCommentsIgnored(t *testing.T) {
	_, s := testDB(t)
	res := mustExec(t, s, `
		-- leading comment
		select /* inline */ count(*) -- trailing
		from Obj`)
	if res.Rows[0][0].I != 60 {
		t.Errorf("comments broke query: %v", res.Rows[0][0])
	}
}
