package sqlengine

import (
	"sync"
	"sync/atomic"
)

// PlanCache is the database-wide compiled-plan cache: normalized statement
// text maps to an immutable CompiledPlan shared by every session. The
// SkyServer's real workload is millions of users issuing the same handful
// of query shapes with different constants (point lookups by objID, cone
// searches by position), so once a shape is compiled, every later
// execution — from any HTTP session — pays only normalize + bind + run.
//
// Concurrency: the hit path — the one every steady-state query takes —
// holds only a shared read lock for the map probe and validity check;
// recency is an atomic stamp on the entry, so concurrent sessions never
// serialize on an exclusive lock to execute cached plans. Stores and
// evictions take the write lock, and eviction picks the oldest stamp by
// scanning (stores are rare — each query shape compiles once — so an
// O(entries) scan there beats paying exclusive LRU-list maintenance on
// every hit).
//
// Entries are evicted against a byte budget (plan sizes estimated by
// planBytes) and validated on every hit against the catalog's schema
// version and the referenced tables' data versions; DDL and DML therefore
// invalidate lazily, at lookup, with no invalidation scan. Statements that
// reference session-local state (@variables, #temp tables), multi-statement
// batches, and DML are never stored — see batchCacheable.
//
// All methods are safe for concurrent use.
type PlanCache struct {
	mu       sync.RWMutex
	maxBytes int
	curBytes int
	entries  map[string]*planEntry
	clock    atomic.Int64

	hits          atomic.Int64
	misses        atomic.Int64
	uncacheable   atomic.Int64
	stores        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
}

type planEntry struct {
	key   string
	plan  *CompiledPlan
	bytes int
	// lastUsed is the cache clock value of the most recent hit (or the
	// store); eviction removes the smallest.
	lastUsed atomic.Int64
}

// DefaultPlanCacheBytes is the per-database budget: roughly several
// thousand cached shapes at typical plan sizes — far more than the
// SkyServer's template-driven traffic produces.
const DefaultPlanCacheBytes = 32 << 20

func newPlanCache(maxBytes int) *PlanCache {
	return &PlanCache{maxBytes: maxBytes, entries: make(map[string]*planEntry)}
}

// lookup returns the valid cached plan for a normalized key, or nil. A
// stale entry (schema or data version moved since compile) is removed and
// counted as an invalidation. Misses are NOT counted here: the probe runs
// before the statement is parsed, so whether a nil result is a miss (a
// cacheable shape that will be stored) or an uncacheable statement is only
// known afterwards — the caller records one or the other via recordMiss /
// recordUncacheable, keeping the hit rate meaningful on mixed SELECT+DML
// workloads. key is []byte so the steady-state probe allocates nothing
// (the map index converts without copying).
func (c *PlanCache) lookup(key []byte, schemaVer int64) *CompiledPlan {
	c.mu.RLock()
	e, ok := c.entries[string(key)]
	c.mu.RUnlock()
	if !ok {
		return nil
	}
	cp := e.plan
	stale := cp.schemaVer != schemaVer
	if !stale {
		for _, tv := range cp.tables {
			if tv.table.DataVersion() != tv.ver {
				stale = true
				break
			}
		}
	}
	if stale {
		c.mu.Lock()
		// Re-check under the write lock: a concurrent store may have
		// replaced the stale entry with a freshly compiled one.
		if cur, ok := c.entries[e.key]; ok && cur == e {
			delete(c.entries, e.key)
			c.curBytes -= e.bytes
		}
		c.mu.Unlock()
		c.invalidations.Add(1)
		return nil
	}
	e.lastUsed.Store(c.clock.Add(1))
	c.hits.Add(1)
	return cp
}

// peek returns the valid cached plan for a normalized key without
// touching any statistics or recency state — the pre-admission
// classification probe, which must not distort the hit/miss counters the
// execution path records (every peek is followed by a real lookup once
// the query is admitted) and must stay cheap for requests that end up
// shed. Stale entries return nil and are left for lookup to collect.
func (c *PlanCache) peek(key []byte, schemaVer int64) *CompiledPlan {
	c.mu.RLock()
	e, ok := c.entries[string(key)]
	c.mu.RUnlock()
	if !ok {
		return nil
	}
	cp := e.plan
	if cp.schemaVer != schemaVer {
		return nil
	}
	for _, tv := range cp.tables {
		if tv.table.DataVersion() != tv.ver {
			return nil
		}
	}
	return cp
}

// recordMiss counts a probe that found nothing for a cacheable statement.
func (c *PlanCache) recordMiss() { c.misses.Add(1) }

// recordUncacheable counts a probe for a statement that can never be
// stored (session state, DML, multi-statement batches).
func (c *PlanCache) recordUncacheable() { c.uncacheable.Add(1) }

// store inserts (or replaces) the plan under the normalized key and evicts
// the oldest entries until the byte budget holds.
func (c *PlanCache) store(key string, cp *CompiledPlan) {
	e := &planEntry{key: key, plan: cp, bytes: cp.bytes + len(key)}
	e.lastUsed.Store(c.clock.Add(1))
	c.mu.Lock()
	if old, ok := c.entries[key]; ok {
		c.curBytes -= old.bytes
	}
	c.entries[key] = e
	c.curBytes += e.bytes
	c.evictOverBudgetLocked()
	c.mu.Unlock()
	c.stores.Add(1)
}

// evictOverBudgetLocked removes oldest-stamped entries until curBytes fits
// maxBytes. Caller holds the write lock.
func (c *PlanCache) evictOverBudgetLocked() {
	for c.curBytes > c.maxBytes && len(c.entries) > 0 {
		var victim *planEntry
		oldest := int64(0)
		for _, e := range c.entries {
			if u := e.lastUsed.Load(); victim == nil || u < oldest {
				victim, oldest = e, u
			}
		}
		delete(c.entries, victim.key)
		c.curBytes -= victim.bytes
		c.evictions.Add(1)
	}
}

// Clear drops every entry (benchmarks use it to measure the miss path).
// Counters are preserved.
func (c *PlanCache) Clear() {
	c.mu.Lock()
	c.entries = make(map[string]*planEntry)
	c.curBytes = 0
	c.mu.Unlock()
}

// SetMaxBytes adjusts the byte budget, evicting immediately if the cache is
// over the new limit.
func (c *PlanCache) SetMaxBytes(n int) {
	c.mu.Lock()
	c.maxBytes = n
	c.evictOverBudgetLocked()
	c.mu.Unlock()
}

// PlanCacheStats is a point-in-time snapshot of the cache counters, exposed
// for benchmarks and the web front end's /x/plancache endpoint.
type PlanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Uncacheable   int64 `json:"uncacheable"`
	Stores        int64 `json:"stores"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	Entries       int   `json:"entries"`
	Bytes         int   `json:"bytes"`
	MaxBytes      int   `json:"maxBytes"`
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.RLock()
	entries, bytes, maxBytes := len(c.entries), c.curBytes, c.maxBytes
	c.mu.RUnlock()
	return PlanCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Uncacheable:   c.uncacheable.Load(),
		Stores:        c.stores.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Entries:       entries,
		Bytes:         bytes,
		MaxBytes:      maxBytes,
	}
}
