package sqlengine

import (
	"fmt"

	"skyserver/internal/val"
)

// Vectorized expression evaluation. Expressions compile to two forms: the
// row-at-a-time compiledExpr (expr.go) that evaluates one row per closure
// chain, and — when the expression's shape allows — a batch kernel that
// evaluates all active rows of a val.Batch in one tight loop over column
// slices. Filters additionally compile to predicates that narrow a batch's
// selection vector in place, so a selective scan never materializes the
// rows it drops.
//
// The kernel set covers the hot shapes of the SkyServer workload: column
// and literal operands, arithmetic (the ubiquitous color cuts u-g, g-r),
// comparisons, BETWEEN, IS NULL, IN over literal lists, LIKE, and AND/OR
// with the same short-circuit evaluation order as the row path (the right
// side only runs on rows the left side did not decide). Everything else —
// scalar functions, CASE — keeps exact row semantics via the fallback,
// which gathers each active row into a scratch val.Row and runs the
// compiled row expression. ExecOptions.ForceRowExprs routes every
// expression through the fallback, which the engine's equivalence tests
// and the batch-vs-row benchmark use.

// kernelFn computes an expression for every active row of a batch. The
// returned column is indexed by physical row number (length ≥ b.Size());
// positions outside the selection are unspecified. The slice may alias
// batch storage or compile-time constants and must not be mutated.
type kernelFn func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error)

// predFn narrows b's selection to the rows where a predicate is truthy.
type predFn func(ctx *ExecCtx, b *val.Batch) error

// compiledVec is an expression compiled for batch evaluation with a
// row-at-a-time fallback.
type compiledVec struct {
	vec   kernelFn // nil when the shape is not vectorizable
	row   compiledExpr
	width int // scope width, for fallback scratch rows
}

// compiledPred is a filter predicate compiled for batch evaluation with a
// row-at-a-time fallback.
type compiledPred struct {
	vec   predFn // nil when the shape is not vectorizable
	row   compiledExpr
	width int
	label string
}

// compileVec compiles e for batch evaluation against the scope.
func compileVec(e Expr, sc *scope, db *DB) (*compiledVec, error) {
	row, err := compileExpr(e, sc, db)
	if err != nil {
		return nil, err
	}
	return &compiledVec{vec: vectorizeValue(e, sc, db), row: row, width: len(sc.cols)}, nil
}

// compilePred compiles a filter condition for batch evaluation. A nil
// expression yields a nil predicate (no filtering).
func compilePred(e Expr, sc *scope, db *DB) (*compiledPred, error) {
	if e == nil {
		return nil, nil
	}
	row, err := compileExpr(e, sc, db)
	if err != nil {
		return nil, err
	}
	return &compiledPred{vec: vectorizePred(e, sc, db), row: row, width: len(sc.cols), label: exprString(e)}, nil
}

// appendTo evaluates the expression for every active row of b, appending
// the results (in selection order) to dst.
func (v *compiledVec) appendTo(ctx *ExecCtx, b *val.Batch, dst []val.Value) ([]val.Value, error) {
	if v.vec != nil && !ctx.ForceRowExprs {
		col, err := v.vec(ctx, b)
		if err != nil {
			return dst, err
		}
		if sel := b.Sel(); sel != nil {
			for _, i := range sel {
				dst = append(dst, col[i])
			}
			return dst, nil
		}
		return append(dst, col[:b.Size()]...), nil
	}
	scratch := make(val.Row, v.width)
	sel := b.Sel()
	for k, n := 0, b.Len(); k < n; k++ {
		i := k
		if sel != nil {
			i = sel[k]
		}
		out, err := v.row(ctx, b.RowAt(i, scratch))
		if err != nil {
			return dst, err
		}
		dst = append(dst, out)
	}
	return dst, nil
}

// filter narrows b's selection to the rows where the predicate is truthy.
// A nil receiver leaves the batch untouched.
func (p *compiledPred) filter(ctx *ExecCtx, b *val.Batch) error {
	if p == nil || b.Len() == 0 {
		return nil
	}
	if p.vec != nil && !ctx.ForceRowExprs {
		return p.vec(ctx, b)
	}
	scratch := make(val.Row, p.width)
	keep := b.SelScratch()
	sel := b.Sel()
	for k, n := 0, b.Len(); k < n; k++ {
		i := k
		if sel != nil {
			i = sel[k]
		}
		v, err := p.row(ctx, b.RowAt(i, scratch))
		if err != nil {
			return err
		}
		if v.Truthy() {
			keep = append(keep, i)
		}
	}
	b.SetSel(keep)
	return nil
}

// activeIndices appends the batch's active physical indices to dst.
func activeIndices(b *val.Batch, dst []int) []int {
	if sel := b.Sel(); sel != nil {
		return append(dst, sel...)
	}
	for i := 0; i < b.Size(); i++ {
		dst = append(dst, i)
	}
	return dst
}

// ---- value kernels ----

// vectorizeValue returns a batch kernel for e, or nil when e's shape is
// not vectorizable (scalar functions, CASE, AND/OR in value position).
func vectorizeValue(e Expr, sc *scope, db *DB) kernelFn {
	switch e := e.(type) {
	case *LitExpr:
		vals := make([]val.Value, val.BatchSize)
		for i := range vals {
			vals[i] = e.Val
		}
		return func(_ *ExecCtx, b *val.Batch) ([]val.Value, error) {
			if b.Size() > len(vals) {
				return nil, fmt.Errorf("sql: batch of %d rows exceeds kernel capacity", b.Size())
			}
			return vals, nil
		}

	case *ColExpr:
		i, err := sc.resolve(e.Qualifier, e.Name)
		if err != nil {
			return nil
		}
		return func(_ *ExecCtx, b *val.Batch) ([]val.Value, error) {
			return b.Col(i), nil
		}

	case *VarExpr:
		name := e.Name
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			v, ok := ctx.Session.Var(name)
			if !ok {
				return nil, fmt.Errorf("sql: variable @%s not declared", name)
			}
			out := make([]val.Value, b.Size())
			for i := range out {
				out[i] = v
			}
			return out, nil
		}

	case *UnaryExpr:
		x := vectorizeValue(e.X, sc, db)
		if x == nil {
			return nil
		}
		op := e.Op
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			xs, err := x(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				v := xs[i]
				if v.IsNull() {
					continue
				}
				switch op {
				case "-":
					switch v.K {
					case val.KindInt:
						out[i] = val.Int(-v.I)
					case val.KindFloat:
						out[i] = val.Float(-v.F)
					default:
						return nil, fmt.Errorf("sql: cannot negate %v", v.K)
					}
				case "~":
					iv, ok := v.AsInt()
					if !ok {
						return nil, fmt.Errorf("sql: ~ needs integer")
					}
					out[i] = val.Int(^iv)
				case "not":
					out[i] = val.Bool(!v.Truthy())
				default:
					return nil, fmt.Errorf("sql: unknown unary op %q", op)
				}
			}
			return out, nil
		}

	case *BinExpr:
		return vectorizeBin(e, sc, db)

	case *BetweenExpr:
		x := vectorizeValue(e.X, sc, db)
		lo := vectorizeValue(e.Lo, sc, db)
		hi := vectorizeValue(e.Hi, sc, db)
		if x == nil || lo == nil || hi == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			xs, err := x(ctx, b)
			if err != nil {
				return nil, err
			}
			los, err := lo(ctx, b)
			if err != nil {
				return nil, err
			}
			his, err := hi(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				xv, lv, hv := xs[i], los[i], his[i]
				if xv.IsNull() || lv.IsNull() || hv.IsNull() {
					continue
				}
				in := xv.Compare(lv) >= 0 && xv.Compare(hv) <= 0
				out[i] = val.Bool(in != not)
			}
			return out, nil
		}

	case *IsNullExpr:
		x := vectorizeValue(e.X, sc, db)
		if x == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			xs, err := x(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				out[i] = val.Bool(xs[i].IsNull() != not)
			}
			return out, nil
		}

	case *InExpr:
		list, ok := literalList(e.List)
		if !ok {
			return nil
		}
		x := vectorizeValue(e.X, sc, db)
		if x == nil {
			return nil
		}
		not := e.Not
		anyNull := false
		for _, lv := range list {
			if lv.IsNull() {
				anyNull = true
			}
		}
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			xs, err := x(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				xv := xs[i]
				if xv.IsNull() {
					continue
				}
				found := false
				for _, lv := range list {
					if !lv.IsNull() && xv.Compare(lv) == 0 {
						found = true
						break
					}
				}
				switch {
				case found:
					out[i] = val.Bool(!not)
				case anyNull:
					// NULL in the list and no match: result is NULL.
				default:
					out[i] = val.Bool(not)
				}
			}
			return out, nil
		}

	case *LikeExpr:
		x := vectorizeValue(e.X, sc, db)
		pat := vectorizeValue(e.Pattern, sc, db)
		if x == nil || pat == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			xs, err := x(ctx, b)
			if err != nil {
				return nil, err
			}
			ps, err := pat(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				xv, pv := xs[i], ps[i]
				if xv.IsNull() || pv.IsNull() {
					continue
				}
				if xv.K != val.KindString || pv.K != val.KindString {
					return nil, fmt.Errorf("sql: LIKE needs strings")
				}
				out[i] = val.Bool(likeMatch(xv.S, pv.S) != not)
			}
			return out, nil
		}
	}
	return nil
}

// literalList extracts constant values when every list element is a literal.
func literalList(list []Expr) ([]val.Value, bool) {
	out := make([]val.Value, len(list))
	for i, e := range list {
		lit, ok := e.(*LitExpr)
		if !ok {
			return nil, false
		}
		out[i] = lit.Val
	}
	return out, true
}

// vectorizeBin builds kernels for binary operators. AND/OR are not
// vectorized in value position (their short-circuit evaluation order is
// only preserved by the predicate compiler); everything else is.
func vectorizeBin(e *BinExpr, sc *scope, db *DB) kernelFn {
	if e.Op == "and" || e.Op == "or" {
		return nil
	}
	l := vectorizeValue(e.L, sc, db)
	r := vectorizeValue(e.R, sc, db)
	if l == nil || r == nil {
		return nil
	}
	op := e.Op
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			ls, err := l(ctx, b)
			if err != nil {
				return nil, err
			}
			rs, err := r(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				lv, rv := ls[i], rs[i]
				if lv.IsNull() || rv.IsNull() {
					continue
				}
				out[i] = val.Bool(cmpSatisfies(op, lv.Compare(rv)))
			}
			return out, nil
		}

	case "+", "-", "*", "/":
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			ls, err := l(ctx, b)
			if err != nil {
				return nil, err
			}
			rs, err := r(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				lv, rv := ls[i], rs[i]
				// Fast path for the all-float astronomy columns; the
				// general arith handles everything else identically.
				if lv.K == val.KindFloat && rv.K == val.KindFloat {
					switch op {
					case "+":
						out[i] = val.Float(lv.F + rv.F)
						continue
					case "-":
						out[i] = val.Float(lv.F - rv.F)
						continue
					case "*":
						out[i] = val.Float(lv.F * rv.F)
						continue
					}
				}
				v, err := arith(op, lv, rv)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}

	case "%", "&", "|", "^":
		return func(ctx *ExecCtx, b *val.Batch) ([]val.Value, error) {
			ls, err := l(ctx, b)
			if err != nil {
				return nil, err
			}
			rs, err := r(ctx, b)
			if err != nil {
				return nil, err
			}
			out := make([]val.Value, b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				lv, rv := ls[i], rs[i]
				if lv.IsNull() || rv.IsNull() {
					continue
				}
				li, lok := lv.AsInt()
				ri, rok := rv.AsInt()
				if !lok || !rok {
					return nil, fmt.Errorf("sql: %q needs integers", op)
				}
				switch op {
				case "%":
					if ri == 0 {
						return nil, fmt.Errorf("sql: modulo by zero")
					}
					out[i] = val.Int(li % ri)
				case "&":
					out[i] = val.Int(li & ri)
				case "|":
					out[i] = val.Int(li | ri)
				default:
					out[i] = val.Int(li ^ ri)
				}
			}
			return out, nil
		}
	}
	return nil
}

func cmpSatisfies(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// ---- predicate kernels ----

// vectorizePred returns a selection-narrowing predicate for e, or nil when
// the shape is not vectorizable. AND applies its sides as successive
// filters and OR evaluates its right side only on rows the left did not
// keep — matching the row path's short-circuit order for OR exactly. For
// AND the filter outcome is identical, but the row path additionally
// evaluates the right operand on NULL-left rows (to distinguish false
// from NULL, both dropped by a filter), so an error raised there is the
// one case where the two paths diverge observably.
func vectorizePred(e Expr, sc *scope, db *DB) predFn {
	switch e := e.(type) {
	case *BinExpr:
		switch e.Op {
		case "and":
			pl := vectorizePred(e.L, sc, db)
			pr := vectorizePred(e.R, sc, db)
			if pl == nil || pr == nil {
				return nil
			}
			return func(ctx *ExecCtx, b *val.Batch) error {
				if err := pl(ctx, b); err != nil {
					return err
				}
				if b.Len() == 0 {
					return nil
				}
				return pr(ctx, b)
			}
		case "or":
			pl := vectorizePred(e.L, sc, db)
			pr := vectorizePred(e.R, sc, db)
			if pl == nil || pr == nil {
				return nil
			}
			return func(ctx *ExecCtx, b *val.Batch) error {
				orig := activeIndices(b, nil)
				if err := pl(ctx, b); err != nil {
					return err
				}
				lkeep := activeIndices(b, nil)
				// Rows the left side did not keep, in ascending order.
				rest := orig[:0]
				j := 0
				for _, i := range orig {
					if j < len(lkeep) && lkeep[j] == i {
						j++
						continue
					}
					rest = append(rest, i)
				}
				b.SetSel(rest)
				if err := pr(ctx, b); err != nil {
					return err
				}
				// Merge the two ascending keep sets.
				merged := make([]int, 0, len(lkeep)+b.Len())
				rkeep := activeIndices(b, nil)
				li, ri := 0, 0
				for li < len(lkeep) || ri < len(rkeep) {
					switch {
					case li >= len(lkeep):
						merged = append(merged, rkeep[ri])
						ri++
					case ri >= len(rkeep):
						merged = append(merged, lkeep[li])
						li++
					case lkeep[li] < rkeep[ri]:
						merged = append(merged, lkeep[li])
						li++
					default:
						merged = append(merged, rkeep[ri])
						ri++
					}
				}
				b.SetSel(merged)
				return nil
			}
		case "=", "<>", "<", "<=", ">", ">=":
			l := vectorizeValue(e.L, sc, db)
			r := vectorizeValue(e.R, sc, db)
			if l == nil || r == nil {
				return nil
			}
			op := e.Op
			return func(ctx *ExecCtx, b *val.Batch) error {
				ls, err := l(ctx, b)
				if err != nil {
					return err
				}
				rs, err := r(ctx, b)
				if err != nil {
					return err
				}
				keep := b.SelScratch()
				if sel := b.Sel(); sel != nil {
					for _, i := range sel {
						lv, rv := ls[i], rs[i]
						if !lv.IsNull() && !rv.IsNull() && cmpSatisfies(op, lv.Compare(rv)) {
							keep = append(keep, i)
						}
					}
				} else {
					for i, n := 0, b.Size(); i < n; i++ {
						lv, rv := ls[i], rs[i]
						if !lv.IsNull() && !rv.IsNull() && cmpSatisfies(op, lv.Compare(rv)) {
							keep = append(keep, i)
						}
					}
				}
				b.SetSel(keep)
				return nil
			}
		}
	}
	// Leaf predicates: any vectorizable value expression filters on
	// truthiness (covers BETWEEN, IS NULL, IN, LIKE, NOT, bitmask tests).
	if k := vectorizeValue(e, sc, db); k != nil {
		return func(ctx *ExecCtx, b *val.Batch) error {
			vs, err := k(ctx, b)
			if err != nil {
				return err
			}
			keep := b.SelScratch()
			if sel := b.Sel(); sel != nil {
				for _, i := range sel {
					if vs[i].Truthy() {
						keep = append(keep, i)
					}
				}
			} else {
				for i, n := 0, b.Size(); i < n; i++ {
					if vs[i].Truthy() {
						keep = append(keep, i)
					}
				}
			}
			b.SetSel(keep)
			return nil
		}
	}
	return nil
}
