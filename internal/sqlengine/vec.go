package sqlengine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skyserver/internal/val"
)

// Vectorized expression evaluation. Expressions compile to two forms: the
// row-at-a-time compiledExpr (expr.go) that evaluates one row per closure
// chain, and — when the expression's shape allows — a batch kernel that
// evaluates all active rows of a val.Batch in one tight loop over column
// slices. Filters additionally compile to predicates that narrow a batch's
// selection vector in place, so a selective scan never materializes the
// rows it drops.
//
// The kernel set covers the full expression grammar of the SkyServer
// workload: column, literal, parameter and variable operands, arithmetic
// (the ubiquitous color cuts u-g, g-r), comparisons, BETWEEN, IS NULL, IN
// over constant lists, LIKE, scalar functions (per-row bodies with batch
// argument columns), searched CASE with lazy arm evaluation, and AND/OR
// with the same short-circuit evaluation order as the row path (the right
// side only runs on rows the left side did not decide). Shapes outside the
// kernel set keep exact row semantics via the fallback, which gathers each
// active row into a scratch val.Row and runs the compiled row expression.
// ExecOptions.ForceRowExprs routes every expression through the fallback,
// which the engine's equivalence tests and the batch-vs-row benchmark use.
//
// Kernels allocate nothing in steady state: every result vector comes from
// a val.Arena the caller owns. Compiled kernels are shared — the same
// closure tree serves every parallel scan worker — so the scratch is
// per-worker, threaded through each call. Arena memory is recycled without
// zeroing, which is why every kernel writes every active position,
// including an explicit val.Value{} for NULL results; positions outside
// the selection stay unspecified and are never read.

// kernelFn computes an expression for every active row of a batch, drawing
// its result vector from ar. The returned column is indexed by physical
// row number (length ≥ b.Size()); positions outside the selection are
// unspecified. The slice may alias batch storage, compile-time constants,
// or arena scratch, and must not be mutated or retained past the arena's
// next Reset.
type kernelFn func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error)

// predFn narrows b's selection to the rows where a predicate is truthy.
type predFn func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) error

// compiledVec is an expression compiled for batch evaluation with a
// row-at-a-time fallback.
type compiledVec struct {
	vec   kernelFn // nil when the shape is not vectorizable
	row   compiledExpr
	width int // scope width, for fallback scratch rows
}

// compiledPred is a filter predicate compiled for batch evaluation with a
// row-at-a-time fallback.
type compiledPred struct {
	vec   predFn // nil when the shape is not vectorizable
	row   compiledExpr
	width int
	label string
}

// compileVec compiles e for batch evaluation against the scope.
func compileVec(e Expr, sc *scope, db *DB) (*compiledVec, error) {
	row, err := compileExpr(e, sc, db)
	if err != nil {
		return nil, err
	}
	return &compiledVec{vec: vectorizeValue(e, sc, db), row: row, width: len(sc.cols)}, nil
}

// compilePred compiles a filter condition for batch evaluation. A nil
// expression yields a nil predicate (no filtering).
func compilePred(e Expr, sc *scope, db *DB) (*compiledPred, error) {
	if e == nil {
		return nil, nil
	}
	row, err := compileExpr(e, sc, db)
	if err != nil {
		return nil, err
	}
	return &compiledPred{vec: vectorizePred(e, sc, db), row: row, width: len(sc.cols), label: exprString(e)}, nil
}

// appendTo evaluates the expression for every active row of b, appending
// the results (in selection order) to dst. It resets ar on entry: any
// arena vector from a previous batch or expression must already have been
// copied out.
func (v *compiledVec) appendTo(ctx *ExecCtx, b *val.Batch, ar *val.Arena, dst []val.Value) ([]val.Value, error) {
	ar.Reset()
	if v.vec != nil && !ctx.ForceRowExprs {
		col, err := v.vec(ctx, b, ar)
		if err != nil {
			return dst, err
		}
		if sel := b.Sel(); sel != nil {
			for _, i := range sel {
				dst = append(dst, col[i])
			}
			return dst, nil
		}
		return append(dst, col[:b.Size()]...), nil
	}
	scratch := val.Row(ar.Vals(v.width))
	for i := range scratch {
		scratch[i] = val.Value{}
	}
	sel := b.Sel()
	for k, n := 0, b.Len(); k < n; k++ {
		i := k
		if sel != nil {
			i = sel[k]
		}
		out, err := v.row(ctx, b.RowAt(i, scratch))
		if err != nil {
			return dst, err
		}
		dst = append(dst, out)
	}
	return dst, nil
}

// filter narrows b's selection to the rows where the predicate is truthy.
// A nil receiver leaves the batch untouched. It resets ar on entry.
func (p *compiledPred) filter(ctx *ExecCtx, b *val.Batch, ar *val.Arena) error {
	if p == nil || b.Len() == 0 {
		return nil
	}
	ar.Reset()
	if p.vec != nil && !ctx.ForceRowExprs {
		return p.vec(ctx, b, ar)
	}
	scratch := val.Row(ar.Vals(p.width))
	for i := range scratch {
		scratch[i] = val.Value{}
	}
	keep := b.SelScratch()
	sel := b.Sel()
	for k, n := 0, b.Len(); k < n; k++ {
		i := k
		if sel != nil {
			i = sel[k]
		}
		v, err := p.row(ctx, b.RowAt(i, scratch))
		if err != nil {
			return err
		}
		if v.Truthy() {
			keep = append(keep, i)
		}
	}
	b.SetSel(keep)
	return nil
}

// activeIndices appends the batch's active physical indices to dst.
func activeIndices(b *val.Batch, dst []int) []int {
	if sel := b.Sel(); sel != nil {
		return append(dst, sel...)
	}
	for i := 0; i < b.Size(); i++ {
		dst = append(dst, i)
	}
	return dst
}

// ---- value kernels ----

// vectorizeValue returns a batch kernel for e, or nil when e's shape is
// not vectorizable (CASE, AND/OR in value position).
func vectorizeValue(e Expr, sc *scope, db *DB) kernelFn {
	switch e := e.(type) {
	case *LitExpr:
		vals := litVector(e.Val)
		return func(_ *ExecCtx, b *val.Batch, _ *val.Arena) ([]val.Value, error) {
			if b.Size() > len(vals) {
				return nil, fmt.Errorf("sql: batch of %d rows exceeds kernel capacity", b.Size())
			}
			return vals, nil
		}

	case *ColExpr:
		i, err := sc.resolve(e.Qualifier, e.Name)
		if err != nil {
			return nil
		}
		return func(_ *ExecCtx, b *val.Batch, _ *val.Arena) ([]val.Value, error) {
			return b.Col(i), nil
		}

	case *VarExpr:
		name := e.Name
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			v, ok := ctx.Session.Var(name)
			if !ok {
				return nil, fmt.Errorf("sql: variable @%s not declared", name)
			}
			out := ar.Vals(b.Size())
			for i := range out {
				out[i] = v
			}
			return out, nil
		}

	case *ParamExpr:
		// Parameters broadcast like variables: the value varies per
		// execution of the shared cached plan, so the vector cannot be
		// interned the way literal vectors are.
		idx := e.Idx
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			if idx >= len(ctx.Params) {
				return nil, fmt.Errorf("sql: parameter ?%d not bound", idx)
			}
			v := ctx.Params[idx]
			out := ar.Vals(b.Size())
			for i := range out {
				out[i] = v
			}
			return out, nil
		}

	case *UnaryExpr:
		x := vectorizeValue(e.X, sc, db)
		if x == nil {
			return nil
		}
		op := e.Op
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			xs, err := x(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				v := xs[i]
				if v.IsNull() {
					out[i] = val.Value{}
					continue
				}
				switch op {
				case "-":
					switch v.K {
					case val.KindInt:
						out[i] = val.Int(-v.I)
					case val.KindFloat:
						out[i] = val.Float(-v.F)
					default:
						return nil, fmt.Errorf("sql: cannot negate %v", v.K)
					}
				case "~":
					iv, ok := v.AsInt()
					if !ok {
						return nil, fmt.Errorf("sql: ~ needs integer")
					}
					out[i] = val.Int(^iv)
				case "not":
					out[i] = val.Bool(!v.Truthy())
				default:
					return nil, fmt.Errorf("sql: unknown unary op %q", op)
				}
			}
			return out, nil
		}

	case *BinExpr:
		return vectorizeBin(e, sc, db)

	case *BetweenExpr:
		x := vectorizeValue(e.X, sc, db)
		lo := vectorizeValue(e.Lo, sc, db)
		hi := vectorizeValue(e.Hi, sc, db)
		if x == nil || lo == nil || hi == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			xs, err := x(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			los, err := lo(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			his, err := hi(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				xv, lv, hv := xs[i], los[i], his[i]
				if xv.IsNull() || lv.IsNull() || hv.IsNull() {
					out[i] = val.Value{}
					continue
				}
				in := xv.Compare(lv) >= 0 && xv.Compare(hv) <= 0
				out[i] = val.Bool(in != not)
			}
			return out, nil
		}

	case *IsNullExpr:
		x := vectorizeValue(e.X, sc, db)
		if x == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			xs, err := x(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				out[i] = val.Bool(xs[i].IsNull() != not)
			}
			return out, nil
		}

	case *InExpr:
		// The list must be row-independent (literals, parameters,
		// variables): each element evaluates once per batch, then the
		// membership scan runs per active row.
		consts := make([]compiledExpr, len(e.List))
		for i, le := range e.List {
			if !constExpr(le) {
				return nil
			}
			ce, err := compileExpr(le, &scope{}, db)
			if err != nil {
				return nil
			}
			consts[i] = ce
		}
		x := vectorizeValue(e.X, sc, db)
		if x == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			xs, err := x(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			list := ar.Vals(len(consts))
			anyNull := false
			for j, ce := range consts {
				v, err := ce(ctx, nil)
				if err != nil {
					return nil, err
				}
				list[j] = v
				if v.IsNull() {
					anyNull = true
				}
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				xv := xs[i]
				if xv.IsNull() {
					out[i] = val.Value{}
					continue
				}
				found := false
				for _, lv := range list {
					if !lv.IsNull() && xv.Compare(lv) == 0 {
						found = true
						break
					}
				}
				switch {
				case found:
					out[i] = val.Bool(!not)
				case anyNull:
					// NULL in the list and no match: result is NULL.
					out[i] = val.Value{}
				default:
					out[i] = val.Bool(not)
				}
			}
			return out, nil
		}

	case *LikeExpr:
		x := vectorizeValue(e.X, sc, db)
		pat := vectorizeValue(e.Pattern, sc, db)
		if x == nil || pat == nil {
			return nil
		}
		not := e.Not
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			xs, err := x(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			ps, err := pat(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				xv, pv := xs[i], ps[i]
				if xv.IsNull() || pv.IsNull() {
					out[i] = val.Value{}
					continue
				}
				if xv.K != val.KindString || pv.K != val.KindString {
					return nil, fmt.Errorf("sql: LIKE needs strings")
				}
				out[i] = val.Bool(likeMatch(xv.S, pv.S) != not)
			}
			return out, nil
		}

	case *FuncExpr:
		// Scalar functions vectorize by evaluating each argument as a
		// column and invoking the function per active row with a reused
		// args row — the SkyServer workload's floor()/log10() group keys
		// stop allocating an args slice per row. The function itself
		// still runs row-wise (the implementations are opaque Go), but
		// batch columns amortize everything around it.
		f, ok := db.scalars[e.Name]
		if !ok {
			return nil
		}
		if len(e.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(e.Args) > f.MaxArgs) {
			return nil
		}
		argKs := make([]kernelFn, len(e.Args))
		for i, a := range e.Args {
			if argKs[i] = vectorizeValue(a, sc, db); argKs[i] == nil {
				return nil
			}
		}
		fn := f.Fn
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			argCols := ar.Cols(len(argKs))
			for j, k := range argKs {
				col, err := k(ctx, b, ar)
				if err != nil {
					return nil, err
				}
				argCols[j] = col
			}
			argRow := ar.Vals(len(argKs))
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				for j := range argCols {
					argRow[j] = argCols[j][i]
				}
				v, err := fn(ctx, argRow)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}

	case *CaseExpr:
		return vectorizeCase(e, sc, db)
	}
	return nil
}

// vectorizeCase builds a kernel for a searched CASE that preserves the row
// path's lazy arm evaluation exactly: each WHEN condition runs only on the
// rows no earlier arm decided, and each THEN (and the ELSE) runs only on
// the rows its condition selected. That keeps error surfacing identical to
// the row fallback — CASE WHEN x <> 0 THEN 1/x END never divides by zero on
// an x = 0 row — unlike the all-rows-per-arm evaluation a naive kernel
// would do. Conditions compile through the predicate compiler, so AND/OR
// conditions vectorize with their usual short-circuit selection narrowing
// instead of forcing the whole CASE onto the row path. The batch's
// selection vector is borrowed to scope the nested kernels to each arm's
// row subset and restored before returning.
func vectorizeCase(e *CaseExpr, sc *scope, db *DB) kernelFn {
	conds := make([]predFn, len(e.Whens))
	thens := make([]kernelFn, len(e.Whens))
	for i, w := range e.Whens {
		if conds[i] = vectorizePred(w.Cond, sc, db); conds[i] == nil {
			return nil
		}
		if thens[i] = vectorizeValue(w.Then, sc, db); thens[i] == nil {
			return nil
		}
	}
	var els kernelFn
	if e.Else != nil {
		if els = vectorizeValue(e.Else, sc, db); els == nil {
			return nil
		}
	}
	return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
		out := ar.Vals(b.Size())
		// Snapshot the incoming selection into arena scratch: the slice
		// b.Sel() returns may alias the batch's own selection buffer
		// (whenever an upstream filter narrowed this batch), and the WHEN
		// predicates below overwrite that buffer.
		origSel := b.Sel()
		if origSel != nil {
			origSel = append(ar.Ints(), origSel...)
		}
		// restore reinstates the incoming selection — into the batch's own
		// scratch, not the arena copy, because the caller keeps reading
		// b.Sel() after its arena has been reset for the next expression.
		restore := func() {
			if origSel == nil {
				b.SetSel(nil)
				return
			}
			b.SetSel(append(b.SelScratch(), origSel...))
		}
		undecided := activeIndices(b, ar.Ints())
		for wi := range conds {
			if len(undecided) == 0 {
				break
			}
			b.SetSel(undecided)
			if err := conds[wi](ctx, b, ar); err != nil {
				restore()
				return nil, err
			}
			// The predicate narrowed the selection to this arm's rows.
			// Copy it into arena scratch: the batch's own selection
			// buffer backing it is reused by the next predicate run
			// (including one inside a nested CASE in the THEN).
			decided := append(ar.Ints(), b.Sel()...)
			// rest = undecided minus decided, both ascending.
			rest := ar.Ints()
			j := 0
			for _, i := range undecided {
				if j < len(decided) && decided[j] == i {
					j++
					continue
				}
				rest = append(rest, i)
			}
			if len(decided) > 0 {
				b.SetSel(decided)
				ts, err := thens[wi](ctx, b, ar)
				if err != nil {
					restore()
					return nil, err
				}
				for _, i := range decided {
					out[i] = ts[i]
				}
			}
			undecided = rest
		}
		if len(undecided) > 0 {
			if els != nil {
				b.SetSel(undecided)
				es, err := els(ctx, b, ar)
				if err != nil {
					restore()
					return nil, err
				}
				for _, i := range undecided {
					out[i] = es[i]
				}
			} else {
				for _, i := range undecided {
					out[i] = val.Value{}
				}
			}
		}
		restore()
		return out, nil
	}
}

// litVecCache interns the broadcast vectors literal operands compile to.
// Building one is a 1,024-slot allocation plus fill — paid once per
// cached literal instead of once per literal per query, which was most of
// a point lookup's compile cost. Keys are the value's binary encoding;
// the vectors are immutable (the kernel contract forbids mutating
// returned slices), so sharing across queries and workers is safe. The
// cache is capped: literals are user-supplied (ad-hoc SQL over HTTP), so
// past the cap new ones get a per-query vector — PR 1 behavior — instead
// of growing process memory without bound.
var (
	litVecCache sync.Map // string (val encoding) -> []val.Value
	litVecCount atomic.Int64
)

const litVecCacheMax = 1024 // × ~48KB/vector ≈ 48MB worst case

func litVector(v val.Value) []val.Value {
	key := string(val.AppendValue(nil, v))
	if c, ok := litVecCache.Load(key); ok {
		return c.([]val.Value)
	}
	vals := make([]val.Value, val.BatchSize)
	for i := range vals {
		vals[i] = v
	}
	if litVecCount.Load() < litVecCacheMax {
		if _, loaded := litVecCache.LoadOrStore(key, vals); !loaded {
			litVecCount.Add(1)
		}
	}
	return vals
}

// vectorizeBin builds kernels for binary operators. AND/OR are not
// vectorized in value position (their short-circuit evaluation order is
// only preserved by the predicate compiler); everything else is.
func vectorizeBin(e *BinExpr, sc *scope, db *DB) kernelFn {
	if e.Op == "and" || e.Op == "or" {
		return nil
	}
	l := vectorizeValue(e.L, sc, db)
	r := vectorizeValue(e.R, sc, db)
	if l == nil || r == nil {
		return nil
	}
	op := e.Op
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			ls, err := l(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			rs, err := r(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				lv, rv := ls[i], rs[i]
				if lv.IsNull() || rv.IsNull() {
					out[i] = val.Value{}
					continue
				}
				out[i] = val.Bool(cmpSatisfies(op, lv.Compare(rv)))
			}
			return out, nil
		}

	case "+", "-", "*", "/":
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			ls, err := l(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			rs, err := r(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				lv, rv := ls[i], rs[i]
				// Fast path for the all-float astronomy columns; the
				// general arith handles everything else identically
				// (including NULL operands, which it maps to NULL).
				if lv.K == val.KindFloat && rv.K == val.KindFloat {
					switch op {
					case "+":
						out[i] = val.Float(lv.F + rv.F)
						continue
					case "-":
						out[i] = val.Float(lv.F - rv.F)
						continue
					case "*":
						out[i] = val.Float(lv.F * rv.F)
						continue
					}
				}
				v, err := arith(op, lv, rv)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		}

	case "%", "&", "|", "^":
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) ([]val.Value, error) {
			ls, err := l(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			rs, err := r(ctx, b, ar)
			if err != nil {
				return nil, err
			}
			out := ar.Vals(b.Size())
			sel := b.Sel()
			for k, n := 0, b.Len(); k < n; k++ {
				i := k
				if sel != nil {
					i = sel[k]
				}
				lv, rv := ls[i], rs[i]
				if lv.IsNull() || rv.IsNull() {
					out[i] = val.Value{}
					continue
				}
				li, lok := lv.AsInt()
				ri, rok := rv.AsInt()
				if !lok || !rok {
					return nil, fmt.Errorf("sql: %q needs integers", op)
				}
				switch op {
				case "%":
					if ri == 0 {
						return nil, fmt.Errorf("sql: modulo by zero")
					}
					out[i] = val.Int(li % ri)
				case "&":
					out[i] = val.Int(li & ri)
				case "|":
					out[i] = val.Int(li | ri)
				default:
					out[i] = val.Int(li ^ ri)
				}
			}
			return out, nil
		}
	}
	return nil
}

func cmpSatisfies(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default: // ">="
		return c >= 0
	}
}

// ---- predicate kernels ----

// vectorizePred returns a selection-narrowing predicate for e, or nil when
// the shape is not vectorizable. AND applies its sides as successive
// filters and OR evaluates its right side only on rows the left did not
// keep — matching the row path's short-circuit order for OR exactly. For
// AND the filter outcome is identical, but the row path additionally
// evaluates the right operand on NULL-left rows (to distinguish false
// from NULL, both dropped by a filter), so an error raised there is the
// one case where the two paths diverge observably.
func vectorizePred(e Expr, sc *scope, db *DB) predFn {
	switch e := e.(type) {
	case *BinExpr:
		switch e.Op {
		case "and":
			pl := vectorizePred(e.L, sc, db)
			pr := vectorizePred(e.R, sc, db)
			if pl == nil || pr == nil {
				return nil
			}
			return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) error {
				if err := pl(ctx, b, ar); err != nil {
					return err
				}
				if b.Len() == 0 {
					return nil
				}
				return pr(ctx, b, ar)
			}
		case "or":
			pl := vectorizePred(e.L, sc, db)
			pr := vectorizePred(e.R, sc, db)
			if pl == nil || pr == nil {
				return nil
			}
			return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) error {
				orig := activeIndices(b, ar.Ints())
				if err := pl(ctx, b, ar); err != nil {
					return err
				}
				lkeep := activeIndices(b, ar.Ints())
				// Rows the left side did not keep, in ascending order.
				rest := orig[:0]
				j := 0
				for _, i := range orig {
					if j < len(lkeep) && lkeep[j] == i {
						j++
						continue
					}
					rest = append(rest, i)
				}
				b.SetSel(rest)
				if err := pr(ctx, b, ar); err != nil {
					return err
				}
				// Merge the two ascending keep sets.
				merged := ar.Ints()
				rkeep := activeIndices(b, ar.Ints())
				li, ri := 0, 0
				for li < len(lkeep) || ri < len(rkeep) {
					switch {
					case li >= len(lkeep):
						merged = append(merged, rkeep[ri])
						ri++
					case ri >= len(rkeep):
						merged = append(merged, lkeep[li])
						li++
					case lkeep[li] < rkeep[ri]:
						merged = append(merged, lkeep[li])
						li++
					default:
						merged = append(merged, rkeep[ri])
						ri++
					}
				}
				b.SetSel(merged)
				return nil
			}
		case "=", "<>", "<", "<=", ">", ">=":
			l := vectorizeValue(e.L, sc, db)
			r := vectorizeValue(e.R, sc, db)
			if l == nil || r == nil {
				return nil
			}
			op := e.Op
			return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) error {
				ls, err := l(ctx, b, ar)
				if err != nil {
					return err
				}
				rs, err := r(ctx, b, ar)
				if err != nil {
					return err
				}
				keep := b.SelScratch()
				if sel := b.Sel(); sel != nil {
					for _, i := range sel {
						lv, rv := ls[i], rs[i]
						if !lv.IsNull() && !rv.IsNull() && cmpSatisfies(op, lv.Compare(rv)) {
							keep = append(keep, i)
						}
					}
				} else {
					for i, n := 0, b.Size(); i < n; i++ {
						lv, rv := ls[i], rs[i]
						if !lv.IsNull() && !rv.IsNull() && cmpSatisfies(op, lv.Compare(rv)) {
							keep = append(keep, i)
						}
					}
				}
				b.SetSel(keep)
				return nil
			}
		}
	}
	// Leaf predicates: any vectorizable value expression filters on
	// truthiness (covers BETWEEN, IS NULL, IN, LIKE, NOT, bitmask tests).
	if k := vectorizeValue(e, sc, db); k != nil {
		return func(ctx *ExecCtx, b *val.Batch, ar *val.Arena) error {
			vs, err := k(ctx, b, ar)
			if err != nil {
				return err
			}
			keep := b.SelScratch()
			if sel := b.Sel(); sel != nil {
				for _, i := range sel {
					if vs[i].Truthy() {
						keep = append(keep, i)
					}
				}
			} else {
				for i, n := 0, b.Size(); i < n; i++ {
					if vs[i].Truthy() {
						keep = append(keep, i)
					}
				}
			}
			b.SetSel(keep)
			return nil
		}
	}
	return nil
}
