package sqlengine

import (
	"math"
	"strconv"
	"strings"

	"skyserver/internal/val"
)

// Statement normalization: the parameterize step of the query lifecycle
// parse → parameterize → compile → (cached) → bind → execute.
//
// normalizeTokens folds a lexed batch into a canonical cache key and
// extracts its literals into a parameter vector, so that texts differing
// only in their constants — the SkyServer workload's point lookups by objID
// and cone searches by (ra, dec, r) — share one key and therefore one
// compiled plan. The function both builds the key and marks the
// parameterized tokens in place (token.param), which is what keeps the key
// builder and the parser agreeing exactly on which literals became
// parameters: the parser emits a ParamExpr wherever the normalizer marked.
//
// Soundness rule: two texts with equal keys must compile to interchangeable
// plans modulo parameter values. Everything that can change plan *shape*
// therefore stays verbatim in the key:
//
//   - identifiers, keywords, and operators (folded for case-insensitivity;
//     [bracketed] identifiers keep their brackets so [select] the column
//     never collides with SELECT the keyword);
//   - @variable names;
//   - the count after TOP (it sizes a topNode);
//   - number literals after ORDER BY (a bare integer there is an ordinal
//     that picks an output column, not a value);
//   - parameter *indices*: equal literals deduplicate to one parameter, so
//     GROUP BY floor(ra*4) and a select-list floor(ra*4) keep matching
//     structurally after parameterization, and the key records the sharing
//     (…?i0…?i0… never collides with …?i0…?i1…);
//   - parameter kinds (?i / ?f / ?s), because int-vs-float arithmetic and
//     output schema kinds differ by literal kind.
//
// Over-specific keys (a literal left structural) only split cache entries;
// over-general keys would corrupt results. When in doubt this code leaves
// literals structural.
func normalizeTokens(toks []token, key []byte, params []val.Value) ([]byte, []val.Value) {
	inOrderBy := false
	for ti := range toks {
		t := &toks[ti]
		if ti > 0 {
			key = append(key, ' ')
		}
		switch t.kind {
		case tokEOF:
			// Nothing; loop ends next.
		case tokIdent:
			if t.bracketed {
				key = append(key, '[')
				key = appendFold(key, t.text)
				key = append(key, ']')
				break
			}
			key = appendFold(key, t.text)
			if strings.EqualFold(t.text, "order") && ti+1 < len(toks) && toks[ti+1].kind == tokIdent && strings.EqualFold(toks[ti+1].text, "by") {
				inOrderBy = true
			}
		case tokVariable:
			key = append(key, '@')
			key = appendFold(key, t.text)
		case tokOp:
			key = append(key, t.text...)
			if t.text == ";" {
				inOrderBy = false
			}
		case tokString:
			idx := paramIndex(params, val.Str(t.text))
			if idx < 0 {
				idx = len(params)
				params = append(params, val.Str(t.text))
			}
			t.param = int32(idx) + 1
			key = append(key, '?', 's')
			key = strconv.AppendInt(key, int64(idx), 10)
		case tokNumber:
			structural := inOrderBy
			if ti > 0 {
				prev := toks[ti-1]
				if prev.kind == tokIdent && !prev.bracketed && strings.EqualFold(prev.text, "top") {
					structural = true
				}
			}
			v, ok := parseNumberLit(t.text)
			if structural || !ok {
				// TOP counts and ORDER BY ordinals shape the plan; a
				// malformed number stays verbatim so the parser reports
				// the same error the un-normalized text would.
				key = append(key, t.text...)
				break
			}
			idx := paramIndex(params, v)
			if idx < 0 {
				idx = len(params)
				params = append(params, v)
			}
			t.param = int32(idx) + 1
			if v.K == val.KindInt {
				key = append(key, '?', 'i')
			} else {
				key = append(key, '?', 'f')
			}
			key = strconv.AppendInt(key, int64(idx), 10)
		}
	}
	return key, params
}

// appendFold appends s lower-cased to key without materializing an
// intermediate string: the normalizer runs per HTTP request on the
// result-cache probe path, so the key is built byte by byte in place.
// Non-ASCII identifiers fall back to the interned fold so the key keeps
// strings.ToLower's Unicode semantics exactly.
func appendFold(key []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return append(key, fold(s)...)
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		key = append(key, c)
	}
	return key
}

// paramIndex finds an existing parameter with exactly v's kind and value
// (float bits compared exactly), or -1. Parameter vectors are a handful of
// entries, so the linear scan beats any map on the hot probe path.
func paramIndex(params []val.Value, v val.Value) int {
	for i, p := range params {
		if p.K != v.K {
			continue
		}
		switch v.K {
		case val.KindInt:
			if p.I == v.I {
				return i
			}
		case val.KindFloat:
			if math.Float64bits(p.F) == math.Float64bits(v.F) {
				return i
			}
		case val.KindString:
			if p.S == v.S {
				return i
			}
		}
	}
	return -1
}

// parseNumberLit converts a number token to a value with the same rules
// parsePrimary historically used: a '.', 'e' or 'E' makes a float,
// otherwise int64 with float fallback on overflow.
func parseNumberLit(text string) (val.Value, bool) {
	// One classifying pass, with a manual fast path for short all-digit
	// literals (objIDs, counts): they cannot overflow int64 at <= 18
	// digits, so strconv's general machinery is skipped on the hot
	// normalize path. Anything else falls through to strconv for exactly
	// the historical parse (and its error cases).
	digits := len(text) > 0
	float := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= '0' && c <= '9' {
			continue
		}
		digits = false
		if c == '.' || c == 'e' || c == 'E' {
			float = true
		}
	}
	if digits && len(text) <= 18 {
		v := int64(0)
		for i := 0; i < len(text); i++ {
			v = v*10 + int64(text[i]-'0')
		}
		return val.Int(v), true
	}
	if float {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return val.Value{}, false
		}
		return val.Float(f), true
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return val.Value{}, false
		}
		return val.Float(f), true
	}
	return val.Int(i), true
}

// batchCacheable reports whether a parsed batch may be stored in the shared
// plan cache: exactly one SELECT without an INTO target, referencing no
// session-local state — no @variables and no #temp tables, whose meaning
// (and, for temp tables, schema) differs per session. INSERT/DELETE/CREATE
// and multi-statement batches carry side effects and are executed from
// their AST every time.
func batchCacheable(toks []token, stmts []Statement) bool {
	if len(stmts) != 1 {
		return false
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok || sel.Into != "" {
		return false
	}
	for _, t := range toks {
		if t.kind == tokVariable {
			return false
		}
		if t.kind == tokIdent && len(t.text) > 0 && t.text[0] == '#' {
			return false
		}
	}
	return true
}
