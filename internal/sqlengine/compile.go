package sqlengine

import (
	"skyserver/internal/val"
)

// CompiledPlan is the immutable product of the compile step of the query
// lifecycle parse → parameterize → compile → (cached) → bind → execute: a
// physical operator tree plus everything execution needs that is knowable
// at compile time (output schema, EXPLAIN text, referenced-table versions).
//
// A CompiledPlan carries no per-execution state. Every operator keeps its
// runtime state in Run-local variables drawn from the val pools, constants
// live in closed-over values, and anything execution-varying — parameter
// values, session variables, deadlines, statistics — arrives through the
// ExecCtx. That is what makes one plan safe to execute concurrently from
// any number of sessions, which the shared plan cache relies on.
type CompiledPlan struct {
	root    Node
	cols    []string
	kinds   []val.Kind
	explain string
	// nParams is the length of the parameter vector the plan was compiled
	// against; bind-time sanity check for cache hits.
	nParams int
	// schemaVer is the catalog version at compile; any DDL (CREATE/DROP
	// TABLE, INDEX, VIEW, foreign keys) invalidates the plan — a dropped
	// index's tree is no longer maintained, so running a stale plan against
	// it would return stale rows.
	schemaVer int64
	// tables are the base tables the plan reads with their data versions at
	// compile; DML on any of them invalidates the plan. Results would still
	// be correct — operators always read live heap and index state — but
	// the access path and join order were chosen from dive estimates on the
	// old data, so the plan is recompiled rather than trusted.
	tables []tableVer
	// bytes is the cache-accounting size estimate.
	bytes int
	// class is the workload class the admission controller schedules this
	// plan under, decided once from the access paths and dive estimates;
	// estRows is the driving-row estimate the decision was made from.
	// Cached with the plan: a plan-cache hit knows its class for free.
	class   QueryClass
	estRows float64
	// tvf marks plans that read a table-valued function; see
	// planner.usesTVF and ResultCacheable.
	tvf bool
	// routed are the heap scans whose shard route depends on the
	// parameter vector. Non-empty routed means class/estRows describe
	// only the compile-time binding; ClassFor re-derives them per
	// execution so a plan cached from a 1-shard cone does not keep its
	// interactive class when later parameters fan out to every shard.
	routed []*scanNode
}

// tableVer snapshots one table's data version at plan compile time.
type tableVer struct {
	table *Table
	ver   uint64
}

// Explain returns the plan's EXPLAIN text (rendered once, at compile).
func (cp *CompiledPlan) Explain() string { return cp.explain }

// Columns returns the output column names.
func (cp *CompiledPlan) Columns() []string { return cp.cols }

// Class returns the plan's workload class (see QueryClass).
func (cp *CompiledPlan) Class() QueryClass { return cp.class }

// EstRows returns the driving-row estimate the class was decided from —
// the cost signal per-class admission surfaces to operators.
func (cp *CompiledPlan) EstRows() float64 { return cp.estRows }

// Valid reports whether the plan's compile-time catalog snapshot still
// matches the live catalog: the schema version is unchanged and every base
// table the plan reads is at the data version it was compiled against.
// This is the same lazy-invalidation test the plan cache applies on
// lookup, exported so a result-cache entry holding the plan that produced
// it can prove its serialized bytes are still current — DML or DDL on any
// referenced table makes Valid false and the stale entry is never served.
func (cp *CompiledPlan) Valid(schemaVer int64) bool {
	if cp.schemaVer != schemaVer {
		return false
	}
	for _, tv := range cp.tables {
		if tv.table.DataVersion() != tv.ver {
			return false
		}
	}
	return true
}

// VersionDigest folds the plan's compile-time catalog snapshot — schema
// version plus every referenced table's data version — into one FNV-1a
// hash. Combined with the normalized statement key it yields a strong
// HTTP ETag: the engine is deterministic and version counters are
// monotonic, so equal (key, digest) pairs imply byte-identical results.
func (cp *CompiledPlan) VersionDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(cp.schemaVer))
	for _, tv := range cp.tables {
		mix(tv.ver)
	}
	return h
}

// ClassFor returns the workload class and driving-row estimate for one
// execution's parameter binding. For plans without parameter-dependent
// shard routes this is the compile-time class (the common case: free on
// a plan-cache hit). For routed plans it re-derives the class from the
// shard route the binding produces — the sharded-world fix for
// parameter sniffing, where the cached class of the first-seen cone
// would otherwise misprice an all-sky sweep through the same plan.
func (cp *CompiledPlan) ClassFor(sess *Session, params []val.Value) (QueryClass, float64) {
	if len(cp.routed) == 0 {
		return cp.class, cp.estRows
	}
	ctx := &ExecCtx{DB: sess.db, Session: sess, Params: params}
	return classifyPlan(cp.root, ctx)
}

// ResultCacheable reports whether a result set produced by this plan may
// be cached by (key, versions): false when the plan reads a table-valued
// function, whose execution-time table reads the version snapshot cannot
// see. Everything else the engine evaluates is deterministic.
func (cp *CompiledPlan) ResultCacheable() bool { return !cp.tvf }

// compileSelect plans one SELECT into an immutable CompiledPlan. params is
// the normalized parameter vector (nil on the un-parameterized
// DisablePlanCache path); plan-time constant evaluation binds against it.
func (s *Session) compileSelect(st *SelectStmt, params []val.Value) (*CompiledPlan, error) {
	// Capture the schema version before planning: a concurrent DDL bump
	// during compilation leaves the stored plan stale-marked, which the
	// first lookup notices — conservative, never wrong.
	schemaVer := s.db.SchemaVersion()
	p := &planner{db: s.db, sess: s, params: params}
	node, err := p.planSelect(st)
	if err != nil {
		return nil, err
	}
	cols := node.Columns()
	names := make([]string, len(cols))
	kinds := make([]val.Kind, len(cols))
	for i, c := range cols {
		names[i] = c.Name
		kinds[i] = c.Kind
	}
	cp := &CompiledPlan{
		root:      node,
		cols:      names,
		kinds:     kinds,
		explain:   Explain(node),
		nParams:   len(params),
		schemaVer: schemaVer,
		tables:    p.tables,
		tvf:       p.usesTVF,
		routed:    p.routedScans,
	}
	cp.class, cp.estRows = classifyPlan(node, &ExecCtx{DB: s.db, Session: s, Params: params})
	cp.bytes = planBytes(cp)
	return cp, nil
}

// planBytes estimates a compiled plan's memory footprint for cache
// accounting. The EXPLAIN text length is proportional to the operator and
// expression count, so it serves as the proxy for the closure tree; the
// fixed term covers the plan and node headers.
func planBytes(cp *CompiledPlan) int {
	return 1024 + 8*len(cp.explain) + 64*len(cp.cols) + 48*cp.nParams
}
