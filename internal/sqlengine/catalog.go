package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"skyserver/internal/btree"
	"skyserver/internal/shard"
	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// Column describes one table column. Desc feeds the schema browser that the
// SkyServerQA object browser reads (§4).
type Column struct {
	Name    string
	Kind    val.Kind
	NotNull bool
	Desc    string
}

// Index is a B-tree index over key columns, optionally with included
// columns that make it covering (§9.1.3's answer to tag tables).
type Index struct {
	Name     string
	KeyCols  []int
	InclCols []int
	Unique   bool
	tree     *btree.Tree
}

// ForeignKey declares that the tuple of Cols references RefCols of RefTable
// (§9.1.3: "a fairly complete set of foreign key declarations … invaluable
// tools in detecting errors during loading").
type ForeignKey struct {
	Name     string
	Cols     []int
	RefTable string
	RefCols  []int
}

// Table is a heap-backed base table with indices.
type Table struct {
	Name string
	Cols []Column
	Desc string
	// PKCols are the primary-key column positions; the PK is also the
	// first entry of Indexes.
	PKCols []int

	colIdx map[string]int
	// heaps holds one heap per storage shard (a single element when the
	// database is unsharded). Spatial rows route by the htmID column's
	// trixel range, others by a hash of the first PK column; the owning
	// shard is stamped into every RID the table hands out (index entries,
	// Insert results), so heap access always finds the right shard while
	// the in-memory B-tree indexes stay global.
	heaps    []*storage.Heap
	shards   *shard.Group
	shardCol int // position of the htmID routing column, -1 when absent
	indexes  []*Index
	fks      []ForeignKey

	// dataVer counts row mutations (insert/delete). Cached plans snapshot
	// it at compile: the planner's dive-based cardinality estimates go
	// stale as data changes, so any DML on a referenced table lazily
	// invalidates plans that read it.
	dataVer atomic.Uint64

	mu sync.RWMutex // serializes writes; reads use storage's own locking
}

// DataVersion returns the table's DML counter (see dataVer).
func (t *Table) DataVersion() uint64 { return t.dataVer.Load() }

// ColIndex returns the position of the named column (case-insensitive), or
// -1 when absent.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[fold(name)]; ok {
		return i
	}
	return -1
}

// Rows returns the live row count across all shards.
func (t *Table) Rows() uint64 {
	var n uint64
	for _, h := range t.heaps {
		n += h.Rows()
	}
	return n
}

// ShardRows returns shard i's live row count (the planner's routed-scan
// cardinality input).
func (t *Table) ShardRows(i int) uint64 { return t.heaps[i].Rows() }

// ShardCount returns the number of storage shards backing the table.
func (t *Table) ShardCount() int { return len(t.heaps) }

// DataBytes returns the live payload bytes (Table 1's bytes column).
func (t *Table) DataBytes() uint64 {
	var n uint64
	for _, h := range t.heaps {
		n += h.Bytes()
	}
	return n
}

// GetRec resolves a (possibly shard-tagged) RID to its record bytes.
func (t *Table) GetRec(rid storage.RID, buf []byte) ([]byte, error) {
	si := rid.Shard()
	if si >= len(t.heaps) {
		return nil, fmt.Errorf("sql: %s: rid tagged for shard %d of %d", t.Name, si, len(t.heaps))
	}
	return t.heaps[si].Get(rid.Untag(), buf)
}

// IndexBytes estimates the space the table's indices occupy, assuming
// 9 bytes per fixed-width value (the codec's int/float size) plus an 8-byte
// RID per entry. The paper notes indices roughly double table space.
func (t *Table) IndexBytes() uint64 {
	var total uint64
	for _, ix := range t.indexes {
		perEntry := uint64(9*(len(ix.KeyCols)+len(ix.InclCols)) + 8)
		total += perEntry * uint64(ix.tree.Len())
	}
	return total
}

// Indexes lists the table's indices.
func (t *Table) Indexes() []*Index { return t.indexes }

// IndexByName returns the named index, or nil. Table-valued functions use
// this to range-scan the HTM index directly, as the paper's extended stored
// procedures did.
func (t *Table) IndexByName(name string) *Index {
	for _, ix := range t.indexes {
		if fold(ix.Name) == fold(name) {
			return ix
		}
	}
	return nil
}

// Ascend iterates index entries with key ≥ lo in order until fn returns
// false, passing the key columns, heap RID, and included column values.
func (ix *Index) Ascend(lo val.Row, fn func(key val.Row, rid uint64, incl val.Row) bool) {
	for it := ix.tree.Seek(lo); it.Valid(); it.Next() {
		e := it.Entry()
		if !fn(e.Key, e.RID, e.Incl) {
			return
		}
	}
}

// Entries returns the number of entries in the index.
func (ix *Index) Entries() int { return ix.tree.Len() }

// ForeignKeys lists the table's foreign keys.
func (t *Table) ForeignKeys() []ForeignKey { return t.fks }

// View is a named stored query. The SkyServer restricts views to the
// subclassing form the paper uses — SELECT * FROM baseTable WHERE predicate
// — which the planner inlines into referencing queries (§9.1.3).
type View struct {
	Name string
	Base string
	// Where is the view predicate text (may be empty).
	Where string
	Desc  string

	where Expr // parsed at definition time
}

// DB is a database: a catalog of tables and views over one file group, plus
// the scalar and table-valued function registries.
type DB struct {
	fg     *storage.FileGroup // shard 0, the unsharded fast path
	shards *shard.Group

	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View

	scalars map[string]*ScalarFunc
	tvfs    map[string]*TableFunc

	// schemaVer counts catalog changes (tables, indexes, views, foreign
	// keys). Cached plans snapshot it at compile and are invalidated when
	// it moves: after DROP INDEX, for example, the dropped tree is no
	// longer maintained, so a stale plan probing it would return stale
	// rows.
	schemaVer atomic.Int64

	// plans is the shared compiled-plan cache (see PlanCache).
	plans *PlanCache
}

// NewDB creates an empty database over a single file group.
func NewDB(fg *storage.FileGroup) *DB {
	return NewShardedDB(shard.New(shard.EqualSplit(1), []*storage.FileGroup{fg}))
}

// NewShardedDB creates an empty database whose tables shard across the
// group's file groups by HTM trixel range.
func NewShardedDB(g *shard.Group) *DB {
	db := &DB{
		fg:      g.FileGroup(0),
		shards:  g,
		tables:  make(map[string]*Table),
		views:   make(map[string]*View),
		scalars: make(map[string]*ScalarFunc),
		tvfs:    make(map[string]*TableFunc),
		plans:   newPlanCache(DefaultPlanCacheBytes),
	}
	registerBuiltins(db)
	return db
}

// Shards returns the storage shard group.
func (db *DB) Shards() *shard.Group { return db.shards }

// Close closes every shard's file group (scan pools, then volumes).
func (db *DB) Close() error { return db.shards.Close() }

// Plans returns the database's shared plan cache.
func (db *DB) Plans() *PlanCache { return db.plans }

// SchemaVersion returns the catalog version (see schemaVer).
func (db *DB) SchemaVersion() int64 { return db.schemaVer.Load() }

// bumpSchema records a catalog change, lazily invalidating every cached
// plan compiled before it.
func (db *DB) bumpSchema() { db.schemaVer.Add(1) }

// FileGroup exposes the underlying file group (for cache control in the
// warm/cold experiments).
func (db *DB) FileGroup() *storage.FileGroup { return db.fg }

// CreateTable registers a new base table.
func (db *DB) CreateTable(name string, cols []Column, pkCols []string, desc string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := fold(name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("sql: table %s already exists", name)
	}
	if _, dup := db.views[key]; dup {
		return nil, fmt.Errorf("sql: %s already exists as a view", name)
	}
	t := &Table{
		Name:     name,
		Cols:     cols,
		Desc:     desc,
		colIdx:   make(map[string]int, len(cols)),
		shards:   db.shards,
		shardCol: -1,
	}
	for i := 0; i < db.shards.N(); i++ {
		t.heaps = append(t.heaps, storage.NewHeap(db.shards.FileGroup(i)))
	}
	for i, c := range cols {
		lc := fold(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("sql: duplicate column %s in %s", c.Name, name)
		}
		t.colIdx[lc] = i
	}
	if i := t.ColIndex("htmID"); i >= 0 && cols[i].Kind == val.KindInt {
		t.shardCol = i
	}
	if len(pkCols) > 0 {
		for _, pc := range pkCols {
			i := t.ColIndex(pc)
			if i < 0 {
				return nil, fmt.Errorf("sql: pk column %s not in %s", pc, name)
			}
			t.PKCols = append(t.PKCols, i)
		}
		t.indexes = append(t.indexes, &Index{
			Name:    "pk_" + name,
			KeyCols: append([]int(nil), t.PKCols...),
			Unique:  true,
			tree:    btree.New(),
		})
	}
	db.tables[key] = t
	db.bumpSchema()
	return t, nil
}

// CreateIndex adds a secondary index on keyCols with inclCols included
// (covering) columns. Existing rows are indexed immediately.
func (db *DB) CreateIndex(table, name string, keyCols, inclCols []string) (*Index, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	if len(keyCols) > btree.MaxKeyColumns {
		return nil, fmt.Errorf("sql: index %s has %d key columns, max %d", name, len(keyCols), btree.MaxKeyColumns)
	}
	ix := &Index{Name: name, tree: btree.New()}
	for _, c := range keyCols {
		i := t.ColIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("sql: index column %s not in %s", c, table)
		}
		ix.KeyCols = append(ix.KeyCols, i)
	}
	for _, c := range inclCols {
		i := t.ColIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("sql: included column %s not in %s", c, table)
		}
		ix.InclCols = append(ix.InclCols, i)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Backfill from the heap.
	width := len(t.Cols)
	need := make([]bool, width)
	for _, i := range ix.KeyCols {
		need[i] = true
	}
	for _, i := range ix.InclCols {
		need[i] = true
	}
	row := make(val.Row, width)
	for si, h := range t.heaps {
		err = h.Scan(1, func(rid storage.RID, rec []byte) error {
			for i := range row {
				row[i] = val.Null()
			}
			if _, err := val.DecodeRow(rec, row, width, need); err != nil {
				return err
			}
			return ix.tree.Insert(indexEntry(ix, row, storage.TagRID(si, rid)))
		})
		if err != nil {
			return nil, err
		}
	}
	t.indexes = append(t.indexes, ix)
	db.bumpSchema()
	return ix, nil
}

// indexEntry builds the B-tree entry for a row. Key and included values are
// cloned so index entries do not alias scan buffers.
func indexEntry(ix *Index, row val.Row, rid storage.RID) btree.Entry {
	key := make(val.Row, len(ix.KeyCols))
	for i, c := range ix.KeyCols {
		key[i] = row[c]
	}
	e := btree.Entry{Key: key.Clone(), RID: uint64(rid)}
	if len(ix.InclCols) > 0 {
		incl := make(val.Row, len(ix.InclCols))
		for i, c := range ix.InclCols {
			incl[i] = row[c]
		}
		e.Incl = incl.Clone()
	}
	return e
}

// DropIndex removes a secondary index (the primary key cannot be dropped).
// It exists for the Figure 12 ablation: the paper reports the NEO query at
// 55 seconds with its covering index and ~10 minutes without.
func (db *DB) DropIndex(table, name string) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, ix := range t.indexes {
		if fold(ix.Name) != fold(name) {
			continue
		}
		if i == 0 && len(t.PKCols) > 0 {
			return fmt.Errorf("sql: cannot drop primary key index %s", name)
		}
		t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
		db.bumpSchema()
		return nil
	}
	return fmt.Errorf("sql: no index %s on %s", name, table)
}

// AddForeignKey declares a foreign key; enforcement happens in the loader's
// integrity checks, not on every insert (the warehouse loads in bulk).
func (db *DB) AddForeignKey(table, name string, cols []string, refTable string, refCols []string) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	if _, err := db.Table(refTable); err != nil {
		return fmt.Errorf("sql: fk %s references unknown table %s", name, refTable)
	}
	fk := ForeignKey{Name: name, RefTable: refTable}
	for _, c := range cols {
		i := t.ColIndex(c)
		if i < 0 {
			return fmt.Errorf("sql: fk column %s not in %s", c, table)
		}
		fk.Cols = append(fk.Cols, i)
	}
	rt, _ := db.Table(refTable)
	for _, c := range refCols {
		i := rt.ColIndex(c)
		if i < 0 {
			return fmt.Errorf("sql: fk ref column %s not in %s", c, refTable)
		}
		fk.RefCols = append(fk.RefCols, i)
	}
	if len(fk.Cols) != len(fk.RefCols) {
		return fmt.Errorf("sql: fk %s column count mismatch", name)
	}
	t.mu.Lock()
	t.fks = append(t.fks, fk)
	t.mu.Unlock()
	db.bumpSchema()
	return nil
}

// CreateView registers a subclassing view: SELECT * FROM base WHERE pred.
func (db *DB) CreateView(name, base, wherePred, desc string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := fold(name)
	if _, dup := db.views[key]; dup {
		return fmt.Errorf("sql: view %s already exists", name)
	}
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("sql: %s already exists as a table", name)
	}
	v := &View{Name: name, Base: base, Where: wherePred, Desc: desc}
	if wherePred != "" {
		stmts, err := Parse("select 1 where " + wherePred)
		if err != nil {
			return fmt.Errorf("sql: view %s predicate: %w", name, err)
		}
		v.where = stmts[0].(*SelectStmt).Where
	}
	db.views[key] = v
	db.bumpSchema()
	return nil
}

// Table resolves a base table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[fold(name)]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %s", name)
	}
	return t, nil
}

// View resolves a view by name.
func (db *DB) View(name string) (*View, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.views[fold(name)]
	return v, ok
}

// TableNames lists base tables sorted by name (for the schema browser).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// ViewNames lists views sorted by name.
func (db *DB) ViewNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.views))
	for _, v := range db.views {
		names = append(names, v.Name)
	}
	sort.Strings(names)
	return names
}

// Insert validates and stores a row, maintaining all indices.
func (t *Table) Insert(row val.Row) (storage.RID, error) {
	if len(row) != len(t.Cols) {
		return 0, fmt.Errorf("sql: %s expects %d columns, got %d", t.Name, len(t.Cols), len(row))
	}
	for i, c := range t.Cols {
		v := row[i]
		if v.IsNull() {
			if c.NotNull {
				return 0, fmt.Errorf("sql: %s.%s is NOT NULL", t.Name, c.Name)
			}
			continue
		}
		if !kindCompatible(c.Kind, v.K) {
			return 0, fmt.Errorf("sql: %s.%s expects %v, got %v", t.Name, c.Name, c.Kind, v.K)
		}
		// Coerce ints into float columns so the codec width is stable.
		if c.Kind == val.KindFloat && v.K == val.KindInt {
			row[i] = val.Float(float64(v.I))
		}
		if c.Kind == val.KindInt && v.K == val.KindFloat {
			row[i] = val.Int(int64(v.F))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := val.AppendRow(nil, row)
	si := t.routeRow(row)
	rid, err := t.heaps[si].Append(rec)
	if err != nil {
		return 0, err
	}
	rid = storage.TagRID(si, rid)
	for _, ix := range t.indexes {
		if err := ix.tree.Insert(indexEntry(ix, row, rid)); err != nil {
			return 0, err
		}
	}
	t.dataVer.Add(1)
	return rid, nil
}

// routeRow picks the storage shard owning a row: spatial tables by the
// htmID column's trixel range, others by a deterministic hash of the
// first primary-key column (whole table on shard 0 when keyless, which
// only tiny metadata tables are).
func (t *Table) routeRow(row val.Row) int {
	if len(t.heaps) == 1 {
		return 0
	}
	plan := t.shards.Plan()
	if t.shardCol >= 0 {
		if v := row[t.shardCol]; v.K == val.KindInt {
			return plan.ShardFor(uint64(v.I))
		}
	}
	if len(t.PKCols) > 0 {
		switch v := row[t.PKCols[0]]; v.K {
		case val.KindInt:
			return plan.HashShard(uint64(v.I))
		case val.KindFloat:
			return plan.HashShard(uint64(int64(v.F)))
		case val.KindString:
			var h uint64 = 14695981039346656037
			for i := 0; i < len(v.S); i++ {
				h ^= uint64(v.S[i])
				h *= 1099511628211
			}
			return plan.HashShard(h)
		}
	}
	return 0
}

// DeleteRID removes a row by RID, maintaining indices. It returns false if
// the row was already gone.
func (t *Table) DeleteRID(rid storage.RID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	si := rid.Shard()
	if si >= len(t.heaps) {
		return false, nil
	}
	buf := make([]byte, storage.PageSize)
	rec, err := t.heaps[si].Get(rid.Untag(), buf)
	if err != nil {
		return false, nil // already gone
	}
	row := make(val.Row, len(t.Cols))
	if _, err := val.DecodeRow(rec, row, len(t.Cols), nil); err != nil {
		return false, err
	}
	ok, err := t.heaps[si].Delete(rid.Untag())
	if err != nil || !ok {
		return ok, err
	}
	for _, ix := range t.indexes {
		key := make(val.Row, len(ix.KeyCols))
		for i, c := range ix.KeyCols {
			key[i] = row[c]
		}
		ix.tree.Delete(key, uint64(rid))
	}
	t.dataVer.Add(1)
	return true, nil
}

// ScanRows decodes every live row and passes it to fn. need (nil = all)
// selects which columns are materialized; unselected slots read as NULL.
// With dop > 1, fn is called concurrently. The row passed to fn is reused
// only within that call for blob columns — Clone to retain.
func (t *Table) ScanRows(dop int, need []bool, fn func(rid storage.RID, row val.Row) error) error {
	width := len(t.Cols)
	for si, h := range t.heaps {
		si := si
		err := h.Scan(dop, func(rid storage.RID, rec []byte) error {
			row := make(val.Row, width)
			if need != nil {
				for i := range row {
					row[i] = val.Null()
				}
			}
			if _, err := val.DecodeRow(rec, row, width, need); err != nil {
				return err
			}
			return fn(storage.TagRID(si, rid), row)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PKExists reports whether a row with the given primary-key values exists.
func (t *Table) PKExists(key val.Row) bool {
	if len(t.indexes) == 0 || len(key) != len(t.PKCols) {
		return false
	}
	found := false
	t.indexes[0].Ascend(key, func(k val.Row, rid uint64, incl val.Row) bool {
		found = len(k) >= len(key) && k[:len(key)].Compare(key) == 0
		return false
	})
	return found
}

// kindCompatible allows numeric coercion between int and float columns.
func kindCompatible(col, v val.Kind) bool {
	if col == v {
		return true
	}
	return (col == val.KindFloat && v == val.KindInt) || (col == val.KindInt && v == val.KindFloat)
}

// KindForTypeName maps SQL type names to value kinds.
func KindForTypeName(name string) (val.Kind, error) {
	switch strings.ToLower(name) {
	case "bigint", "int", "smallint", "tinyint", "bit", "datetime", "timestamp":
		return val.KindInt, nil
	case "float", "real", "decimal", "numeric":
		return val.KindFloat, nil
	case "varchar", "nvarchar", "char", "nchar", "text", "sysname":
		return val.KindString, nil
	case "varbinary", "binary", "image", "blob":
		return val.KindBytes, nil
	default:
		return 0, fmt.Errorf("sql: unknown type %q", name)
	}
}
