package sqlengine

// QueryClass partitions compiled plans into the two workload classes the
// admission controller schedules separately: the millions of casual
// point-lookup users (the Explorer, cutouts — §2's "person with a web
// browser") versus astronomers running long analytic scans against the
// same database. The class is decided once, at compile time, from the
// plan's access paths and the planner's dive-based cardinality estimates,
// and is cached with the plan — a plan-cache hit carries its class for
// free, so classification adds nothing to the steady-state hot path.
type QueryClass uint8

// The two workload classes. ClassInteractive is the zero value, so an
// unclassified Result (a DML-only batch, a DDL statement) defaults to the
// class whose queue the web layer treats most conservatively.
const (
	// ClassInteractive marks plans whose access paths are dive-proven
	// small: index seeks, point lookups, spatial TVF probes — the Explorer
	// traffic that must stay snappy while batch scans saturate the pool.
	ClassInteractive QueryClass = iota
	// ClassBatch marks plans that sweep data: heap scans, uncapped or
	// capped-dive index ranges, large aggregates, big TVF sweeps — the
	// analyst workload that may monopolize scan workers for seconds.
	ClassBatch
)

// String returns the class name the web layer reports in the
// X-Query-Class header and the /x/sched per-class breakdown.
func (c QueryClass) String() string {
	if c == ClassBatch {
		return "batch"
	}
	return "interactive"
}

// InteractiveRowBudget is the classification threshold: a plan whose
// estimated driving-row count stays at or under this budget is
// interactive; anything beyond it — or any full heap scan of a persistent
// table, regardless of size — is batch. The budget is a few times the
// planner's dive cap, so every dive-proven seek classifies interactive
// while a capped dive (which falls back to a fraction of the table)
// classifies batch on any realistically sized table.
const InteractiveRowBudget = 4 * diveCap

// classifyPlan walks a compiled operator tree and derives its workload
// class plus the driving-row estimate the class was decided from. The
// estimate sums what each access leaf expects to produce (dive estimates
// where the planner has them); structure overrides size in one case: a
// heap scan of a persistent table is batch no matter how small the table
// is today, because the scan's cost tracks table growth, not the plan.
//
// ctx carries the parameter binding the class is derived under: a heap
// scan whose shard route depends on parameters (a cone pinned to one
// trixel range versus a sweep of the whole sky) classifies per binding,
// not per plan — the classic parameter-sniffing trap where a plan cached
// as interactive from a 1-shard cone would otherwise stay interactive
// when later parameters fan out to every shard. ctx may be nil when the
// plan has no routed scans.
func classifyPlan(root Node, ctx *ExecCtx) (QueryClass, float64) {
	est, heapScan := planDrivingRows(root, ctx)
	if heapScan || est > InteractiveRowBudget {
		return ClassBatch, est
	}
	return ClassInteractive, est
}

// planDrivingRows estimates how many rows a subtree pulls from its access
// paths and reports whether any of them is a heap scan. Interior
// operators pass their child's cost through: filters, projections, sorts,
// and aggregates are bounded by the rows their inputs drive.
func planDrivingRows(n Node, ctx *ExecCtx) (est float64, heapScan bool) {
	switch n := n.(type) {
	case *scanNode:
		// A statically pruned sharded scan touches only the routed shards'
		// pages; if the route under this binding stays partial, the scan
		// costs like those shards' rows and loses the unconditional
		// heap-scan=batch override. A route that fans out to every shard
		// is a full sweep and classifies batch regardless of row count.
		if ctx != nil && (n.routeLo != nil || n.routeHi != nil) {
			if total := n.table.ShardCount(); total > 1 {
				if shards := n.routedShards(ctx); shards != nil && len(shards) < total {
					var rows uint64
					for _, si := range shards {
						rows += n.table.ShardRows(si)
					}
					return float64(rows), false
				}
			}
		}
		return float64(n.table.Rows()), true
	case *indexScanNode:
		if n.estRows >= 0 {
			return n.estRows, false
		}
		// No dive estimate: an unbounded covering sweep reads the whole
		// index, one entry per table row.
		return float64(n.table.Rows()), false
	case *tvfNode:
		return float64(n.fn.EstRows), false
	case *memScanNode:
		return float64(len(n.mem.Rows)), false
	case *indexJoinNode:
		// Each outer row probes the inner index; probe fan-out is small by
		// construction (the planner only builds this node over an equality
		// prefix), so the outer side drives the cost.
		return planDrivingRows(n.outer, ctx)
	case *nlJoinNode:
		// The materialized inner is rescanned once per outer row.
		oe, oh := planDrivingRows(n.outer, ctx)
		ie, ih := planDrivingRows(n.inner, ctx)
		if ie < 1 {
			ie = 1
		}
		return oe * ie, oh || ih
	case *filterNode:
		return planDrivingRows(n.child, ctx)
	case *projectNode:
		return planDrivingRows(n.child, ctx)
	case *aggNode:
		return planDrivingRows(n.child, ctx)
	case *sortNode:
		return planDrivingRows(n.child, ctx)
	case *distinctNode:
		return planDrivingRows(n.child, ctx)
	case *stripNode:
		return planDrivingRows(n.child, ctx)
	case *topNode:
		return planDrivingRows(n.child, ctx)
	case *topKNode:
		return planDrivingRows(n.child, ctx)
	case *schemaNode:
		return planDrivingRows(n.child, ctx)
	case dualNode:
		return 1, false
	default:
		// Unknown operator: assume the worst so new node types cannot
		// silently classify a sweep as interactive.
		return InteractiveRowBudget + 1, false
	}
}
