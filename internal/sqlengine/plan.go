package sqlengine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"skyserver/internal/val"
)

// MemTable is an in-memory table: session temp tables (the ##results of the
// paper's queries) and materialized INTO targets.
type MemTable struct {
	Name string
	Cols []Column
	Rows []val.Row
}

// planner turns a SelectStmt into a physical Node tree, making the access
// path and join decisions §9.1.3/§11 describe: push single-table predicates
// into scans, prefer covering indices over base-table access, seek indices
// on equality/range prefixes, start joins from the smallest input, and
// probe indexed tables in nested loops.
type planner struct {
	db   *DB
	sess *Session
	// params is the execution parameter vector the statement was normalized
	// against; plan-time constant evaluation (index dive estimates) binds
	// against it, so a cached plan's access path reflects the first-seen
	// constants — the same parameter sniffing SQL Server does.
	params []val.Value
	// tables collects every base table the plan touches with its
	// data version at compile time, for plan-cache invalidation.
	tables []tableVer
	// usesTVF records that the plan reads a table-valued function. TVFs run
	// arbitrary code at execution time and may read tables the planner never
	// sees, so their version snapshot is incomplete — such plans stay in the
	// plan cache (re-binding is always correct) but are excluded from the
	// result cache (see CompiledPlan.ResultCacheable).
	usesTVF bool
	// routedScans collects heap scans whose shard route depends on the
	// parameter vector; the compiled plan re-derives its workload class
	// per execution from them (see CompiledPlan.ClassFor).
	routedScans []*scanNode
}

// plannedSource is one resolved FROM entry.
type plannedSource struct {
	binding string // fold(alias or name)
	display string
	table   *Table
	mem     *MemTable
	tvf     *TableFunc
	tvfArgs []Expr
	cols    []ColRef
	width   int
	pushed  []Expr // single-source conjuncts (incl. inlined view predicate)
	est     float64
	// accessNode caches the chosen index path (with its dive-based row
	// estimate) so join ordering and access building agree.
	accessNode *indexScanNode
}

func (p *planner) resolveSource(item FromItem) (*plannedSource, error) {
	binding := fold(item.Name())
	src := &plannedSource{binding: binding}
	if item.Func != nil {
		tvf, ok := p.db.TVF(item.Func.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table-valued function %s", item.Func.Name)
		}
		p.usesTVF = true
		src.tvf = tvf
		src.tvfArgs = item.Func.Args
		src.display = tvf.Name
		for _, c := range tvf.Cols {
			src.cols = append(src.cols, ColRef{Qualifier: binding, Name: c.Name, Kind: c.Kind})
		}
		src.width = len(tvf.Cols)
		src.est = float64(tvf.EstRows)
		if src.est <= 0 {
			src.est = 64
		}
		return src, nil
	}
	name := item.Table
	// Temp tables (#x, ##x) live in the session.
	if strings.HasPrefix(name, "#") {
		mt, ok := p.sess.Temp(name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown temp table %s", name)
		}
		src.mem = mt
		src.display = mt.Name
		for _, c := range mt.Cols {
			src.cols = append(src.cols, ColRef{Qualifier: binding, Name: c.Name, Kind: c.Kind})
		}
		src.width = len(mt.Cols)
		src.est = float64(len(mt.Rows))
		return src, nil
	}
	// Views inline to their base table plus predicate (§9.1.3: "The SQL
	// query optimizer rewrites such queries so that they map down to the
	// base photoObj table with the additional qualifiers").
	baseName := name
	var viewPred Expr
	for i := 0; i < 4; i++ { // views may stack (Galaxy → photoPrimary → PhotoObj)
		v, ok := p.db.View(baseName)
		if !ok {
			break
		}
		if v.where != nil {
			if viewPred == nil {
				viewPred = v.where
			} else {
				viewPred = &BinExpr{Op: "and", L: viewPred, R: v.where}
			}
		}
		baseName = v.Base
	}
	t, err := p.db.Table(baseName)
	if err != nil {
		return nil, err
	}
	p.tables = append(p.tables, tableVer{table: t, ver: t.DataVersion()})
	src.table = t
	src.display = t.Name
	src.cols = make([]ColRef, 0, len(t.Cols))
	for _, c := range t.Cols {
		src.cols = append(src.cols, ColRef{Qualifier: binding, Name: c.Name, Kind: c.Kind})
	}
	src.width = len(t.Cols)
	src.est = float64(t.Rows())
	if viewPred != nil {
		// Qualify the view predicate's bare columns with this source's
		// binding, so it stays unambiguous inside multi-source plans.
		src.pushed = append(src.pushed, splitConjuncts(qualifyColumns(viewPred, item.Name()))...)
	}
	return src, nil
}

// qualifyColumns returns a copy of e with every unqualified column reference
// qualified by the given binding name.
func qualifyColumns(e Expr, qualifier string) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *LitExpr, *VarExpr, *ParamExpr:
		return e
	case *ColExpr:
		if e.Qualifier != "" {
			return e
		}
		return &ColExpr{Qualifier: qualifier, Name: e.Name}
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: qualifyColumns(e.X, qualifier)}
	case *BinExpr:
		return &BinExpr{Op: e.Op, L: qualifyColumns(e.L, qualifier), R: qualifyColumns(e.R, qualifier)}
	case *BetweenExpr:
		return &BetweenExpr{
			X:   qualifyColumns(e.X, qualifier),
			Lo:  qualifyColumns(e.Lo, qualifier),
			Hi:  qualifyColumns(e.Hi, qualifier),
			Not: e.Not,
		}
	case *InExpr:
		list := make([]Expr, len(e.List))
		for i, x := range e.List {
			list[i] = qualifyColumns(x, qualifier)
		}
		return &InExpr{X: qualifyColumns(e.X, qualifier), List: list, Not: e.Not}
	case *LikeExpr:
		return &LikeExpr{X: qualifyColumns(e.X, qualifier), Pattern: qualifyColumns(e.Pattern, qualifier), Not: e.Not}
	case *IsNullExpr:
		return &IsNullExpr{X: qualifyColumns(e.X, qualifier), Not: e.Not}
	case *FuncExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = qualifyColumns(a, qualifier)
		}
		return &FuncExpr{Name: e.Name, Args: args}
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range e.Whens {
			out.Whens = append(out.Whens, CaseWhen{
				Cond: qualifyColumns(w.Cond, qualifier),
				Then: qualifyColumns(w.Then, qualifier),
			})
		}
		if e.Else != nil {
			out.Else = qualifyColumns(e.Else, qualifier)
		}
		return out
	case *AggExpr:
		if e.Arg == nil {
			return e
		}
		return &AggExpr{Name: e.Name, Arg: qualifyColumns(e.Arg, qualifier)}
	default:
		return e
	}
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinExpr); ok && b.Op == "and" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction (nil for empty input).
func andAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinExpr{Op: "and", L: out, R: e}
		}
	}
	return out
}

// sourceSet identifies which sources a conjunct touches.
func conjunctSources(e Expr, sources []*plannedSource, globalScope *scope, offsets []int) (map[int]bool, error) {
	refs := map[int]bool{}
	if err := exprRefs(e, globalScope, refs); err != nil {
		return nil, err
	}
	set := map[int]bool{}
	for pos := range refs {
		for si := len(sources) - 1; si >= 0; si-- {
			if pos >= offsets[si] {
				set[si] = true
				break
			}
		}
	}
	return set, nil
}

// markNeeded records which source columns an expression touches, marking all
// same-named columns when resolution is ambiguous or deferred (output
// aliases) — over-approximation is safe, under-approximation is not.
func markNeeded(e Expr, sc *scope, offsets []int, needed [][]bool) {
	switch e := e.(type) {
	case nil:
	case *LitExpr, *VarExpr, *ParamExpr:
	case *ColExpr:
		if pos, err := sc.resolve(e.Qualifier, e.Name); err == nil {
			markPos(pos, offsets, needed)
			return
		}
		// Ambiguous or alias: mark every column with a matching name.
		n := fold(e.Name)
		q := fold(e.Qualifier)
		for pos, c := range sc.cols {
			if fold(c.Name) == n && (q == "" || fold(c.Qualifier) == q) {
				markPos(pos, offsets, needed)
			}
		}
	case *UnaryExpr:
		markNeeded(e.X, sc, offsets, needed)
	case *BinExpr:
		markNeeded(e.L, sc, offsets, needed)
		markNeeded(e.R, sc, offsets, needed)
	case *BetweenExpr:
		markNeeded(e.X, sc, offsets, needed)
		markNeeded(e.Lo, sc, offsets, needed)
		markNeeded(e.Hi, sc, offsets, needed)
	case *InExpr:
		markNeeded(e.X, sc, offsets, needed)
		for _, x := range e.List {
			markNeeded(x, sc, offsets, needed)
		}
	case *LikeExpr:
		markNeeded(e.X, sc, offsets, needed)
		markNeeded(e.Pattern, sc, offsets, needed)
	case *IsNullExpr:
		markNeeded(e.X, sc, offsets, needed)
	case *FuncExpr:
		for _, a := range e.Args {
			markNeeded(a, sc, offsets, needed)
		}
	case *CaseExpr:
		for _, w := range e.Whens {
			markNeeded(w.Cond, sc, offsets, needed)
			markNeeded(w.Then, sc, offsets, needed)
		}
		markNeeded(e.Else, sc, offsets, needed)
	case *AggExpr:
		markNeeded(e.Arg, sc, offsets, needed)
	}
}

func markPos(pos int, offsets []int, needed [][]bool) {
	for si := len(offsets) - 1; si >= 0; si-- {
		if pos >= offsets[si] {
			needed[si][pos-offsets[si]] = true
			return
		}
	}
}

// selectivity guesses how much a pushed conjunct narrows a table.
func selectivity(e Expr) float64 {
	switch e := e.(type) {
	case *BinExpr:
		switch e.Op {
		case "=":
			return 0.05
		case "<", "<=", ">", ">=":
			return 0.2
		}
	case *BetweenExpr:
		return 0.1
	}
	return 0.25
}

// estFloor keeps non-unique table estimates from dropping below a small
// uncertainty floor, so a genuinely tiny input (a TVF returning a handful of
// spatial matches, a temp table) still sorts ahead of a heavily-filtered
// big table — the Figure 10 join order.
const estFloor = 20

// planSelect builds the physical plan for a SELECT.
func (p *planner) planSelect(s *SelectStmt) (Node, error) {
	// FROM-less SELECT.
	if len(s.From) == 0 {
		return p.finishPlan(s, dualNode{}, &scope{})
	}

	// 1. Resolve sources in syntactic order.
	sources := make([]*plannedSource, len(s.From))
	for i, item := range s.From {
		src, err := p.resolveSource(item)
		if err != nil {
			return nil, err
		}
		sources[i] = src
	}

	// Global scope in syntactic order, for classification.
	globalScope := &scope{}
	offsets := make([]int, len(sources))
	for i, src := range sources {
		offsets[i] = len(globalScope.cols)
		globalScope.cols = append(globalScope.cols, src.cols...)
	}

	// 2. Gather conjuncts from WHERE and all JOIN ... ON conditions.
	var pool []Expr
	if s.Where != nil {
		pool = append(pool, splitConjuncts(s.Where)...)
	}
	for _, item := range s.From {
		if item.JoinCond != nil {
			pool = append(pool, splitConjuncts(item.JoinCond)...)
		}
	}

	// 3. Classify: single-source conjuncts are pushed into the source.
	var joinPool []Expr
	joinPoolSets := []map[int]bool{}
	for _, c := range pool {
		set, err := conjunctSources(c, sources, globalScope, offsets)
		if err != nil {
			return nil, err
		}
		if len(set) == 1 {
			for si := range set {
				sources[si].pushed = append(sources[si].pushed, c)
			}
			continue
		}
		joinPool = append(joinPool, c)
		joinPoolSets = append(joinPoolSets, set)
	}

	// 4. Compute needed columns per source (syntactic order).
	needed := make([][]bool, len(sources))
	for i, src := range sources {
		needed[i] = make([]bool, src.width)
	}
	markStar := func(qualifier string) {
		q := fold(qualifier)
		for i, src := range sources {
			if q == "" || src.binding == q {
				for j := range needed[i] {
					needed[i][j] = true
				}
			}
		}
	}
	for _, item := range s.Items {
		if item.Star {
			markStar(item.Qualifier)
			continue
		}
		markNeeded(item.Expr, globalScope, offsets, needed)
	}
	for _, c := range pool {
		markNeeded(c, globalScope, offsets, needed)
	}
	for _, src := range sources {
		for _, c := range src.pushed {
			markNeeded(c, globalScope, offsets, needed)
		}
	}
	for _, g := range s.GroupBy {
		markNeeded(g, globalScope, offsets, needed)
	}
	markNeeded(s.Having, globalScope, offsets, needed)
	for _, k := range s.OrderBy {
		markNeeded(k.Expr, globalScope, offsets, needed)
	}

	// 5. Refine cardinality estimates. Table sources pick their access
	// path now; a bounded index path carries a plan-time dive estimate
	// (accurate even on skewed columns), a heap scan falls back to
	// selectivity guesses floored so heavily-filtered big tables never
	// displace genuinely tiny inputs (TVFs) from the outer side.
	for i, src := range sources {
		if src.table == nil {
			continue
		}
		src.accessNode = p.chooseIndex(src.table, src, needed[i])
		if src.accessNode != nil && src.accessNode.estRows >= 0 {
			src.est = src.accessNode.estRows
			if src.est < 1 {
				src.est = 1
			}
			continue
		}
		base := src.est
		for _, c := range src.pushed {
			src.est *= selectivity(c)
		}
		floor := math.Min(base, estFloor)
		if src.est < floor {
			src.est = floor
		}
	}

	// 6. Join order: greedy over the join graph. Start from the smallest
	// estimated input, then repeatedly attach the source most tightly
	// connected to the prefix — equality-joined sources first (they can
	// probe an index), then any-predicate-connected ones, and only then
	// cross products. This is what keeps Neighbors-style chains
	// (A ⋈ edge ⋈ B) from degenerating into an A×B cross join.
	eqEdge := make([][]bool, len(sources))
	weakEdge := make([][]bool, len(sources))
	for i := range sources {
		eqEdge[i] = make([]bool, len(sources))
		weakEdge[i] = make([]bool, len(sources))
	}
	for ci, set := range joinPoolSets {
		var members []int
		for s := range set {
			members = append(members, s)
		}
		isEq := false
		if b, ok := joinPool[ci].(*BinExpr); ok && b.Op == "=" && len(members) == 2 {
			isEq = true
		}
		for _, a := range members {
			for _, b := range members {
				if a == b {
					continue
				}
				weakEdge[a][b] = true
				if isEq {
					eqEdge[a][b] = true
				}
			}
		}
	}
	order := make([]int, 0, len(sources))
	used := make([]bool, len(sources))
	// Seed: smallest estimate (stable on ties).
	seed := 0
	for i := 1; i < len(sources); i++ {
		if sources[i].est < sources[seed].est {
			seed = i
		}
	}
	order = append(order, seed)
	used[seed] = true
	for len(order) < len(sources) {
		best, bestClass, bestEst := -1, 3, 0.0
		for i := range sources {
			if used[i] {
				continue
			}
			class := 2 // cross product
			for _, p := range order {
				if eqEdge[i][p] {
					class = 0
					break
				}
				if weakEdge[i][p] {
					class = 1
				}
			}
			if class < bestClass || (class == bestClass && sources[i].est < bestEst) {
				best, bestClass, bestEst = i, class, sources[i].est
			}
		}
		order = append(order, best)
		used[best] = true
	}

	// 7. Build the join tree left-deep in that order. prefixNeeded tracks
	// the needed masks of the sources joined so far, in join order, so
	// each join node carries the combined mask its output batch
	// preallocates from.
	var root Node
	prefixScope := &scope{}
	prefixSet := map[int]bool{}
	var prefixNeeded []bool
	consumed := make([]bool, len(joinPool))
	for step, si := range order {
		src := sources[si]
		// Conjuncts that become applicable at this step.
		var applicable []Expr
		for ci, set := range joinPoolSets {
			if consumed[ci] {
				continue
			}
			ok := true
			for s := range set {
				if s != si && !prefixSet[s] {
					ok = false
					break
				}
			}
			if ok {
				applicable = append(applicable, joinPool[ci])
				consumed[ci] = true
			}
		}
		if step == 0 {
			n, err := p.buildAccess(src, needed[si])
			if err != nil {
				return nil, err
			}
			root = n
			prefixScope.cols = append(prefixScope.cols, src.cols...)
			prefixSet[si] = true
			prefixNeeded = append(prefixNeeded, needed[si]...)
			// Conjuncts applicable with one source only happen for
			// constant conditions; filter them in step's tail.
			if len(applicable) > 0 {
				combined := &scope{cols: prefixScope.cols}
				cond, err := compilePred(andAll(applicable), combined, p.db)
				if err != nil {
					return nil, err
				}
				root = &filterNode{child: root, cond: cond, label: exprString(andAll(applicable))}
			}
			continue
		}
		prefixNeeded = append(prefixNeeded, needed[si]...)
		n, err := p.buildJoin(root, prefixScope, prefixSet, src, si, needed[si], prefixNeeded, applicable)
		if err != nil {
			return nil, err
		}
		root = n
		prefixScope.cols = append(prefixScope.cols, src.cols...)
		prefixSet[si] = true
	}
	// Constant conjuncts (no source refs) remain unconsumed only if their
	// set was empty: apply them as a final filter.
	var leftovers []Expr
	for ci := range joinPool {
		if !consumed[ci] {
			leftovers = append(leftovers, joinPool[ci])
		}
	}
	if len(leftovers) > 0 {
		cond, err := compilePred(andAll(leftovers), prefixScope, p.db)
		if err != nil {
			return nil, err
		}
		root = &filterNode{child: root, cond: cond, label: exprString(andAll(leftovers))}
	}

	return p.finishPlan(s, root, prefixScope)
}

// buildAccess picks the access path for one source: index seek, covering
// index scan, heap scan, TVF, or temp-table scan.
func (p *planner) buildAccess(src *plannedSource, needed []bool) (Node, error) {
	selfScope := &scope{cols: src.cols}
	filter, err := compilePred(andAll(src.pushed), selfScope, p.db)
	if err != nil {
		return nil, err
	}
	label := exprString(andAll(src.pushed))

	switch {
	case src.tvf != nil:
		args := make([]compiledExpr, len(src.tvfArgs))
		var argLabels []string
		for i, a := range src.tvfArgs {
			ce, err := compileExpr(a, &scope{}, p.db)
			if err != nil {
				return nil, fmt.Errorf("sql: %s argument %d: %w", src.tvf.Name, i+1, err)
			}
			args[i] = ce
			argLabels = append(argLabels, exprString(a))
		}
		node := Node(&tvfNode{fn: src.tvf, args: args, cols: src.cols, label: strings.Join(argLabels, ", ")})
		if filter != nil {
			node = &filterNode{child: node, cond: filter, label: label}
		}
		return node, nil

	case src.mem != nil:
		return &memScanNode{mem: src.mem, cols: src.cols, filter: filter, label: label}, nil
	}

	// Base table: use the access path chosen during estimation, or pick
	// one now (the estimation pass only runs for multi-source plans).
	t := src.table
	best := src.accessNode
	if best == nil {
		best = p.chooseIndex(t, src, needed)
	}
	allNeeded := true
	for _, n := range needed {
		if !n {
			allNeeded = false
			break
		}
	}
	var mask []bool
	if !allNeeded {
		mask = needed
	}
	if best != nil {
		best.table = t
		best.cols = src.cols
		best.filter = filter
		best.label = label
		best.needed = mask
		if best.covering {
			best.keyDst, best.inclDst = buildScatter(best.index, mask, 0)
		}
		return best, nil
	}
	sn := &scanNode{table: t, cols: src.cols, needed: mask, filter: filter, label: label}
	p.routeShardScan(sn, src, selfScope)
	return sn, nil
}

// routeShardScan attaches shard routing to a heap scan of a sharded
// table: bounds on the htmID routing column extracted from the pushed
// predicates (which stay in the scan's filter — routing prunes pages,
// never rows) become compiled constant/parameter expressions the
// executor intersects with the shard ranges on every execution. The
// compile-time route under the first-seen parameters feeds EXPLAIN's
// Shards(k/N) and the workload classification.
func (p *planner) routeShardScan(sn *scanNode, src *plannedSource, selfScope *scope) {
	t := sn.table
	n := t.ShardCount()
	sn.routeStatic = n
	if n <= 1 || t.shardCol < 0 {
		return
	}
	// An equality pin routes like a one-point range.
	var eq Expr
	for _, c := range src.pushed {
		b, ok := c.(*BinExpr)
		if !ok || b.Op != "=" {
			continue
		}
		if colMatches(b.L, selfScope, t.shardCol) && constExpr(b.R) {
			eq = b.R
			break
		}
		if colMatches(b.R, selfScope, t.shardCol) && constExpr(b.L) {
			eq = b.L
			break
		}
	}
	lo, loIncl, hi, hiKind := rangeBounds(src.pushed, selfScope, t.shardCol)
	if eq != nil {
		lo, loIncl, hi, hiKind = eq, true, eq, boundInclusive
	}
	if lo == nil && hi == nil {
		return
	}
	if lo != nil {
		if ce, err := compileExpr(lo, &scope{}, p.db); err == nil {
			sn.routeLo, sn.routeLoIncl = ce, loIncl
		}
	}
	if hi != nil && hiKind != boundNone {
		if ce, err := compileExpr(hi, &scope{}, p.db); err == nil {
			sn.routeHi, sn.routeHiIncl = ce, hiKind == boundInclusive
		}
	}
	if sn.routeLo == nil && sn.routeHi == nil {
		return
	}
	p.routedScans = append(p.routedScans, sn)
	ctx := &ExecCtx{DB: p.db, Session: p.sess, Params: p.params}
	if shards := sn.routedShards(ctx); shards != nil {
		sn.routeStatic = len(shards)
	}
}

// constExpr reports whether e references no columns (literals, variables,
// and pure functions of those) so it can be evaluated before the scan.
func constExpr(e Expr) bool {
	refs := map[int]bool{}
	empty := &scope{}
	return exprRefs(e, empty, refs) == nil
}

// indexCandidate describes how well one index serves the pushed predicates.
type indexCandidate struct {
	node *indexScanNode
	cost float64
}

// diveCap bounds plan-time index dives: seeking the index with the actual
// constants and counting matches (SQL Server does the same) gives accurate
// cardinalities without histograms — crucial for skewed columns like
// parentID, where "= 0" matches most of the table.
const diveCap = 2048

// Cost-model weights: scanning a covering index entry is much cheaper than
// decoding a full heap record; a non-covering index visit pays an extra
// random heap fetch.
const (
	costHeapRow     = 1.0
	costCoveredRow  = 0.35
	costLookupRow   = 3.0
	costUncappedEst = 0.5 // fraction assumed when a dive hits the cap
)

// chooseIndex selects the cheapest index access for a table source, or nil
// for a heap scan.
func (p *planner) chooseIndex(t *Table, src *plannedSource, needed []bool) *indexScanNode {
	selfScope := &scope{cols: src.cols}
	heapCost := float64(t.Rows()) * costHeapRow
	best := indexCandidate{cost: heapCost}
	for _, ix := range t.indexes {
		cand := p.matchIndex(t, ix, src, selfScope, needed)
		if cand == nil {
			continue
		}
		if best.node == nil || cand.cost < best.cost {
			if cand.cost < heapCost {
				best = *cand
			}
		}
	}
	return best.node
}

func (p *planner) matchIndex(t *Table, ix *Index, src *plannedSource, selfScope *scope, needed []bool) *indexCandidate {
	// Coverage: every needed column is in key or included columns.
	covering := true
	for col, n := range needed {
		if n && !indexHasCol(ix, col) {
			covering = false
			break
		}
	}

	node := &indexScanNode{index: ix, covering: covering}
	bounded := false
	// Collect the raw bound expressions alongside the compiled ones so a
	// plan-time dive can evaluate them.
	var eqRaw []Expr
	var loRaw, hiRaw Expr
	for _, keyCol := range ix.KeyCols {
		var eqExpr Expr
		for _, c := range src.pushed {
			b, ok := c.(*BinExpr)
			if !ok || b.Op != "=" {
				continue
			}
			if colMatches(b.L, selfScope, keyCol) && constExpr(b.R) {
				eqExpr = b.R
				break
			}
			if colMatches(b.R, selfScope, keyCol) && constExpr(b.L) {
				eqExpr = b.L
				break
			}
		}
		if eqExpr == nil {
			// Try a range on this key column, then stop.
			lo, loIncl, hi, hiKind := rangeBounds(src.pushed, selfScope, keyCol)
			if lo != nil {
				if ce, err := compileExpr(lo, &scope{}, p.db); err == nil {
					node.loExpr = ce
					node.loIncl = loIncl
					loRaw = lo
					bounded = true
				}
			}
			if hi != nil {
				if ce, err := compileExpr(hi, &scope{}, p.db); err == nil {
					node.hiExpr = ce
					node.hiKind = hiKind
					hiRaw = hi
					bounded = true
				}
			}
			break
		}
		ce, err := compileExpr(eqExpr, &scope{}, p.db)
		if err != nil {
			break
		}
		node.eqExprs = append(node.eqExprs, ce)
		eqRaw = append(eqRaw, eqExpr)
		bounded = true
	}
	if !bounded && !covering {
		return nil
	}
	total := float64(t.Rows())
	est := total
	if bounded {
		est = p.diveEstimate(ix, eqRaw, loRaw, node.loIncl, hiRaw, node.hiKind, total)
	}
	node.estRows = est
	perRow := costCoveredRow
	if !covering {
		perRow = costLookupRow
	}
	return &indexCandidate{node: node, cost: est * perRow}
}

// diveEstimate evaluates the constant bounds and counts matching index
// entries, up to diveCap; a capped dive falls back to a pessimistic
// fraction of the table.
func (p *planner) diveEstimate(ix *Index, eqRaw []Expr, loRaw Expr, loIncl bool, hiRaw Expr, hiKind boundKind, total float64) float64 {
	ctx := &ExecCtx{DB: p.db, Session: p.sess, Params: p.params}
	evalConst := func(e Expr) (val.Value, bool) {
		ce, err := compileExpr(e, &scope{}, p.db)
		if err != nil {
			return val.Value{}, false
		}
		v, err := ce(ctx, nil)
		if err != nil {
			return val.Value{}, false
		}
		return v, true
	}
	var seek val.Row
	for _, e := range eqRaw {
		v, ok := evalConst(e)
		if !ok {
			return total * costUncappedEst
		}
		seek = append(seek, v)
	}
	eqLen := len(seek)
	var loVal, hiVal val.Value
	haveLo, haveHi := false, false
	if loRaw != nil {
		if v, ok := evalConst(loRaw); ok {
			seek = append(seek, v)
			loVal = v
			haveLo = true
		}
	}
	if hiRaw != nil {
		if v, ok := evalConst(hiRaw); ok {
			hiVal = v
			haveHi = true
		}
	}
	count := 0
	ix.Ascend(seek, func(key val.Row, rid uint64, incl val.Row) bool {
		if eqLen > 0 && key[:eqLen].Compare(val.Row(seek[:eqLen])) != 0 {
			return false
		}
		if eqLen < len(key) {
			k := key[eqLen]
			if haveLo && !loIncl && k.Compare(loVal) == 0 {
				return true
			}
			if haveHi {
				c := k.Compare(hiVal)
				if c > 0 || (c == 0 && hiKind == boundExclusive) {
					return false
				}
			}
		}
		count++
		return count < diveCap
	})
	if count >= diveCap {
		return total * costUncappedEst
	}
	return float64(count)
}

// indexHasCol reports whether a table column is among the index's key or
// included columns. Linear scan: index column lists are short, and the
// planner calls this in loops where a set allocation per index per query
// would dominate a point lookup's cost.
func indexHasCol(ix *Index, col int) bool {
	for _, c := range ix.KeyCols {
		if c == col {
			return true
		}
	}
	for _, c := range ix.InclCols {
		if c == col {
			return true
		}
	}
	return false
}

// colMatches reports whether e is a plain column reference to position col.
func colMatches(e Expr, sc *scope, col int) bool {
	c, ok := e.(*ColExpr)
	if !ok {
		return false
	}
	pos, err := sc.resolve(c.Qualifier, c.Name)
	return err == nil && pos == col
}

// rangeBounds extracts constant lower/upper bounds on a column from pushed
// conjuncts (>=, >, <=, <, BETWEEN).
func rangeBounds(pushed []Expr, sc *scope, col int) (lo Expr, loIncl bool, hi Expr, hiKind boundKind) {
	for _, c := range pushed {
		switch e := c.(type) {
		case *BinExpr:
			colLeft := colMatches(e.L, sc, col) && constExpr(e.R)
			colRight := colMatches(e.R, sc, col) && constExpr(e.L)
			if !colLeft && !colRight {
				continue
			}
			op := e.Op
			bound := e.R
			if colRight {
				bound = e.L
				// Flip: const < col  ⇒  col > const, etc.
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			}
			switch op {
			case ">=":
				if lo == nil {
					lo, loIncl = bound, true
				}
			case ">":
				if lo == nil {
					lo, loIncl = bound, false
				}
			case "<=":
				if hi == nil {
					hi, hiKind = bound, boundInclusive
				}
			case "<":
				if hi == nil {
					hi, hiKind = bound, boundExclusive
				}
			}
		case *BetweenExpr:
			if e.Not || !colMatches(e.X, sc, col) || !constExpr(e.Lo) || !constExpr(e.Hi) {
				continue
			}
			if lo == nil {
				lo, loIncl = e.Lo, true
			}
			if hi == nil {
				hi, hiKind = e.Hi, boundInclusive
			}
		}
	}
	return
}

// buildJoin attaches one more source to the plan, preferring an index-probe
// nested loop when the applicable equality conjuncts match an index prefix
// on the new source. combinedNeeded is the needed mask over the combined
// output width (prefix sources then this one, in join order); the join's
// output batch preallocates exactly those columns.
func (p *planner) buildJoin(outer Node, prefixScope *scope, prefixSet map[int]bool,
	src *plannedSource, si int, needed []bool, combinedNeeded []bool, applicable []Expr) (Node, error) {

	combinedScope := &scope{cols: append(append([]ColRef{}, prefixScope.cols...), src.cols...)}
	// An all-true mask means "materialize everything": pass nil, the
	// convention every mask consumer shares.
	outNeeded := append([]bool(nil), combinedNeeded...)
	allOut := true
	for _, n := range outNeeded {
		if !n {
			allOut = false
			break
		}
	}
	if allOut {
		outNeeded = nil
	}

	if src.table != nil {
		// Find equality conjuncts inner.col = f(prefix).
		eqByCol := map[int]Expr{} // inner col (source-local) -> prefix expr
		for _, c := range applicable {
			b, ok := c.(*BinExpr)
			if !ok || b.Op != "=" {
				continue
			}
			selfScope := &scope{cols: src.cols}
			if lc, ok := b.L.(*ColExpr); ok {
				if pos, err := selfScope.resolve(lc.Qualifier, lc.Name); err == nil && exprOverScope(b.R, prefixScope) {
					eqByCol[pos] = b.R
					continue
				}
			}
			if rc, ok := b.R.(*ColExpr); ok {
				if pos, err := selfScope.resolve(rc.Qualifier, rc.Name); err == nil && exprOverScope(b.L, prefixScope) {
					eqByCol[pos] = b.L
				}
			}
		}
		// Choose the index with the longest matched equality prefix.
		var bestIx *Index
		bestLen := 0
		for _, ix := range src.table.indexes {
			n := 0
			for _, kc := range ix.KeyCols {
				if _, ok := eqByCol[kc]; ok {
					n++
				} else {
					break
				}
			}
			if n > bestLen {
				bestLen = n
				bestIx = ix
			}
		}
		if bestIx != nil {
			probes := make([]compiledExpr, bestLen)
			for i := 0; i < bestLen; i++ {
				ce, err := compileExpr(eqByCol[bestIx.KeyCols[i]], prefixScope, p.db)
				if err != nil {
					return nil, err
				}
				probes[i] = ce
			}
			// Residual: all applicable join conjuncts plus the
			// source's pushed predicates, over the combined row
			// (pushed conjuncts re-resolve against the combined scope
			// because their qualifiers disambiguate).
			resExprs := append(append([]Expr{}, applicable...), src.pushed...)
			var residual *compiledPred
			label := ""
			if len(resExprs) > 0 {
				ce, err := compilePred(andAll(resExprs), combinedScope, p.db)
				if err != nil {
					return nil, err
				}
				residual = ce
				label = exprString(andAll(resExprs))
			}
			covering := true
			for col, n := range needed {
				if n && !indexHasCol(bestIx, col) {
					covering = false
					break
				}
			}
			allNeeded := true
			for _, n := range needed {
				if !n {
					allNeeded = false
					break
				}
			}
			var mask []bool
			if !allNeeded {
				mask = needed
			}
			node := &indexJoinNode{
				outer:      outer,
				inner:      src.table,
				index:      bestIx,
				cols:       combinedScope.cols,
				probeExprs: probes,
				innerWidth: src.width,
				covering:   covering,
				needed:     mask,
				outNeeded:  outNeeded,
				residual:   residual,
				label:      label,
			}
			if covering {
				node.keyDst, node.inclDst = buildScatter(bestIx, mask, len(prefixScope.cols))
			}
			return node, nil
		}
	}

	// Fallback: materialize the inner access path, nested-loop with cond.
	innerNode, err := p.buildAccess(src, needed)
	if err != nil {
		return nil, err
	}
	var cond *compiledPred
	label := ""
	if len(applicable) > 0 {
		ce, err := compilePred(andAll(applicable), combinedScope, p.db)
		if err != nil {
			return nil, err
		}
		cond = ce
		label = exprString(andAll(applicable))
	}
	return &nlJoinNode{outer: outer, inner: innerNode, cols: combinedScope.cols, outNeeded: outNeeded, cond: cond, label: label}, nil
}

// exprOverScope reports whether the expression resolves entirely within the
// scope (i.e. references only prefix columns, variables and literals).
func exprOverScope(e Expr, sc *scope) bool {
	refs := map[int]bool{}
	return exprRefs(e, sc, refs) == nil
}

// finishPlan layers aggregation, projection, distinct, order and top on the
// join tree.
func (p *planner) finishPlan(s *SelectStmt, root Node, inputScope *scope) (Node, error) {
	// Expand stars.
	var items []SelectItem
	for _, item := range s.Items {
		if !item.Star {
			items = append(items, item)
			continue
		}
		q := fold(item.Qualifier)
		found := false
		for _, c := range inputScope.cols {
			if q != "" && fold(c.Qualifier) != q {
				continue
			}
			items = append(items, SelectItem{
				Expr:  &ColExpr{Qualifier: c.Qualifier, Name: c.Name},
				Alias: c.Name,
			})
			found = true
		}
		if !found {
			return nil, fmt.Errorf("sql: %s.* matches no source", item.Qualifier)
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("sql: empty select list")
	}

	// Aggregation?
	needAgg := len(s.GroupBy) > 0 || hasAgg(s.Having)
	for _, it := range items {
		if hasAgg(it.Expr) {
			needAgg = true
		}
	}

	projInputScope := inputScope
	having := s.Having
	if needAgg {
		var err error
		root, projInputScope, items, having, err = p.buildAgg(s, root, inputScope, items)
		if err != nil {
			return nil, err
		}
	}

	if having != nil && !needAgg {
		return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}
	if having != nil {
		cond, err := compilePred(having, projInputScope, p.db)
		if err != nil {
			return nil, err
		}
		root = &filterNode{child: root, cond: cond, label: exprString(having)}
	}

	// Projection.
	outCols := make([]ColRef, len(items))
	exprs := make([]*compiledVec, len(items))
	labels := make([]string, len(items))
	for i, it := range items {
		ce, err := compileVec(it.Expr, projInputScope, p.db)
		if err != nil {
			return nil, err
		}
		exprs[i] = ce
		name := it.Alias
		if name == "" {
			name = fmt.Sprintf("Column%d", i+1)
		}
		outCols[i] = ColRef{Name: name, Kind: inferKind(it.Expr, projInputScope)}
		labels[i] = exprString(it.Expr)
		if it.Alias != "" && labels[i] != it.Alias {
			labels[i] += " AS " + it.Alias
		}
	}

	// ORDER BY keys: output alias/ordinal, or hidden expression.
	var hidden []*compiledVec
	var keyPos []int
	var desc []bool
	var keyLabels []string
	for _, k := range s.OrderBy {
		pos := -1
		switch e := k.Expr.(type) {
		case *LitExpr:
			if n, ok := e.Val.AsInt(); ok && n >= 1 && int(n) <= len(items) {
				pos = int(n) - 1
			}
		case *ColExpr:
			if e.Qualifier == "" {
				for i, c := range outCols {
					if fold(c.Name) == fold(e.Name) {
						pos = i
						break
					}
				}
			}
		}
		if pos < 0 {
			ce, err := compileVec(k.Expr, projInputScope, p.db)
			if err != nil {
				return nil, err
			}
			pos = len(items) + len(hidden)
			hidden = append(hidden, ce)
		}
		keyPos = append(keyPos, pos)
		desc = append(desc, k.Desc)
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		keyLabels = append(keyLabels, exprString(k.Expr)+" "+dir)
	}
	if s.Distinct && len(hidden) > 0 {
		return nil, fmt.Errorf("sql: ORDER BY items must appear in the select list when DISTINCT is used")
	}

	root = &projectNode{child: root, cols: outCols, exprs: exprs, hidden: hidden, labels: labels}
	if s.Distinct {
		root = &distinctNode{child: root}
	}
	switch {
	case s.Top > 0 && len(keyPos) > 0:
		// TOP n over ORDER BY fuses into bounded per-worker top-k heaps:
		// peak materialized state is n rows per worker, not the full
		// sorted result.
		root = &topKNode{child: root, keyPos: keyPos, desc: desc, visible: len(items), n: s.Top, keyLabel: strings.Join(keyLabels, ", ")}
	case len(keyPos) > 0:
		root = &sortNode{child: root, keyPos: keyPos, desc: desc, visible: len(items), keyLabel: strings.Join(keyLabels, ", ")}
	case len(hidden) > 0:
		root = &stripNode{child: root, visible: len(items)}
	}
	if s.Top > 0 && len(keyPos) == 0 {
		root = &topNode{child: root, n: s.Top}
	}
	// Wrap so Columns() reports the visible schema even above sort/top.
	return &schemaNode{child: root, cols: outCols}, nil
}

// schemaNode pins the output schema of a finished plan.
type schemaNode struct {
	child Node
	cols  []ColRef
}

func (s *schemaNode) Columns() []ColRef { return s.cols }
func (s *schemaNode) Run(ctx *ExecCtx, emit batchFn) error {
	return s.child.Run(ctx, emit)
}
func (s *schemaNode) explainTo(sb *strings.Builder, depth int) {
	s.child.explainTo(sb, depth)
}

// buildAgg inserts the aggregation node and rewrites select items and HAVING
// to reference its outputs.
func (p *planner) buildAgg(s *SelectStmt, root Node, inputScope *scope, items []SelectItem) (Node, *scope, []SelectItem, Expr, error) {
	groupMap := map[string]string{} // exprString -> output col name
	var groupCEs []*compiledVec
	var keyLabels []string
	outScope := &scope{}
	for i, g := range s.GroupBy {
		ce, err := compileVec(g, inputScope, p.db)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		groupCEs = append(groupCEs, ce)
		name := fmt.Sprintf("#g%d", i)
		groupMap[exprString(g)] = name
		keyLabels = append(keyLabels, exprString(g))
		outScope.cols = append(outScope.cols, ColRef{Name: name, Kind: inferKind(g, inputScope)})
	}

	aggMap := map[string]string{}
	var aggSpecs []aggSpec
	var aggLabels []string
	collect := func(e Expr) error {
		var walk func(Expr) error
		walk = func(e Expr) error {
			if e == nil {
				return nil
			}
			if a, ok := e.(*AggExpr); ok {
				key := exprString(a)
				if _, dup := aggMap[key]; dup {
					return nil
				}
				name := fmt.Sprintf("#a%d", len(aggSpecs))
				aggMap[key] = name
				spec := aggSpec{name: a.Name}
				if a.Arg != nil {
					ce, err := compileVec(a.Arg, inputScope, p.db)
					if err != nil {
						return err
					}
					spec.arg = ce
				}
				aggSpecs = append(aggSpecs, spec)
				aggLabels = append(aggLabels, key)
				outScope.cols = append(outScope.cols, ColRef{Name: name, Kind: inferKind(a, inputScope)})
				return nil
			}
			return walkChildren(e, walk)
		}
		return walk(e)
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if err := collect(s.Having); err != nil {
		return nil, nil, nil, nil, err
	}
	for _, k := range s.OrderBy {
		if err := collect(k.Expr); err != nil {
			return nil, nil, nil, nil, err
		}
	}

	node := &aggNode{
		child:     root,
		cols:      outScope.cols,
		groupBy:   groupCEs,
		aggs:      aggSpecs,
		keyLabels: keyLabels,
		aggLabels: aggLabels,
	}

	// Rewrite items, having and order keys to the agg output scope.
	newItems := make([]SelectItem, len(items))
	for i, it := range items {
		re, err := rewriteAgg(it.Expr, groupMap, aggMap)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		newItems[i] = SelectItem{Expr: re, Alias: it.Alias}
	}
	var newHaving Expr
	if s.Having != nil {
		re, err := rewriteAgg(s.Having, groupMap, aggMap)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		newHaving = re
	}
	for i, k := range s.OrderBy {
		if re, err := rewriteAgg(k.Expr, groupMap, aggMap); err == nil {
			s.OrderBy[i] = OrderKey{Expr: re, Desc: k.Desc}
		}
	}
	return node, outScope, newItems, newHaving, nil
}

// walkChildren visits an expression's direct children.
func walkChildren(e Expr, fn func(Expr) error) error {
	switch e := e.(type) {
	case *UnaryExpr:
		return fn(e.X)
	case *BinExpr:
		if err := fn(e.L); err != nil {
			return err
		}
		return fn(e.R)
	case *BetweenExpr:
		for _, x := range []Expr{e.X, e.Lo, e.Hi} {
			if err := fn(x); err != nil {
				return err
			}
		}
	case *InExpr:
		if err := fn(e.X); err != nil {
			return err
		}
		for _, x := range e.List {
			if err := fn(x); err != nil {
				return err
			}
		}
	case *LikeExpr:
		if err := fn(e.X); err != nil {
			return err
		}
		return fn(e.Pattern)
	case *IsNullExpr:
		return fn(e.X)
	case *FuncExpr:
		for _, a := range e.Args {
			if err := fn(a); err != nil {
				return err
			}
		}
	case *CaseExpr:
		for _, w := range e.Whens {
			if err := fn(w.Cond); err != nil {
				return err
			}
			if err := fn(w.Then); err != nil {
				return err
			}
		}
		if e.Else != nil {
			return fn(e.Else)
		}
	}
	return nil
}

// rewriteAgg replaces group-by expressions and aggregate calls with
// references to the aggregation node's output columns.
func rewriteAgg(e Expr, groupMap, aggMap map[string]string) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	if name, ok := groupMap[exprString(e)]; ok {
		return &ColExpr{Name: name}, nil
	}
	switch e := e.(type) {
	case *AggExpr:
		if name, ok := aggMap[exprString(e)]; ok {
			return &ColExpr{Name: name}, nil
		}
		return nil, fmt.Errorf("sql: uncollected aggregate %s", exprString(e))
	case *LitExpr, *VarExpr, *ParamExpr:
		return e, nil
	case *ColExpr:
		return nil, fmt.Errorf("sql: column %s is invalid in the select list because it is not contained in either an aggregate function or the GROUP BY clause", exprString(e))
	case *UnaryExpr:
		x, err := rewriteAgg(e.X, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: e.Op, X: x}, nil
	case *BinExpr:
		l, err := rewriteAgg(e.L, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		r, err := rewriteAgg(e.R, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: e.Op, L: l, R: r}, nil
	case *BetweenExpr:
		x, err := rewriteAgg(e.X, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteAgg(e.Lo, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteAgg(e.Hi, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: x, Lo: lo, Hi: hi, Not: e.Not}, nil
	case *InExpr:
		x, err := rewriteAgg(e.X, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(e.List))
		for i, le := range e.List {
			if list[i], err = rewriteAgg(le, groupMap, aggMap); err != nil {
				return nil, err
			}
		}
		return &InExpr{X: x, List: list, Not: e.Not}, nil
	case *LikeExpr:
		x, err := rewriteAgg(e.X, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		pat, err := rewriteAgg(e.Pattern, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		return &LikeExpr{X: x, Pattern: pat, Not: e.Not}, nil
	case *IsNullExpr:
		x, err := rewriteAgg(e.X, groupMap, aggMap)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{X: x, Not: e.Not}, nil
	case *FuncExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			ra, err := rewriteAgg(a, groupMap, aggMap)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &FuncExpr{Name: e.Name, Args: args}, nil
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range e.Whens {
			c, err := rewriteAgg(w.Cond, groupMap, aggMap)
			if err != nil {
				return nil, err
			}
			t, err := rewriteAgg(w.Then, groupMap, aggMap)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, CaseWhen{Cond: c, Then: t})
		}
		if e.Else != nil {
			el, err := rewriteAgg(e.Else, groupMap, aggMap)
			if err != nil {
				return nil, err
			}
			out.Else = el
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sql: cannot rewrite %T under aggregation", e)
	}
}

// exprString renders an expression canonically, for EXPLAIN labels and for
// structural matching of GROUP BY expressions.
func exprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *LitExpr:
		if e.Val.K == val.KindString {
			return "'" + e.Val.S + "'"
		}
		return e.Val.String()
	case *ColExpr:
		if e.Qualifier != "" {
			return e.Qualifier + "." + e.Name
		}
		return e.Name
	case *VarExpr:
		return "@" + e.Name
	case *ParamExpr:
		// Parameters of one normalized shape print by index, so structural
		// matching (GROUP BY vs select list) works exactly as it does for
		// repeated equal literals — the normalizer gives those one index.
		return "?" + strconv.Itoa(e.Idx)
	case *UnaryExpr:
		if e.Op == "not" {
			return "NOT " + exprString(e.X)
		}
		return e.Op + exprString(e.X)
	case *BinExpr:
		return "(" + exprString(e.L) + " " + strings.ToUpper(e.Op) + " " + exprString(e.R) + ")"
	case *BetweenExpr:
		n := ""
		if e.Not {
			n = "NOT "
		}
		return "(" + exprString(e.X) + " " + n + "BETWEEN " + exprString(e.Lo) + " AND " + exprString(e.Hi) + ")"
	case *InExpr:
		parts := make([]string, len(e.List))
		for i, x := range e.List {
			parts[i] = exprString(x)
		}
		n := ""
		if e.Not {
			n = "NOT "
		}
		return "(" + exprString(e.X) + " " + n + "IN (" + strings.Join(parts, ", ") + "))"
	case *LikeExpr:
		n := ""
		if e.Not {
			n = "NOT "
		}
		return "(" + exprString(e.X) + " " + n + "LIKE " + exprString(e.Pattern) + ")"
	case *IsNullExpr:
		if e.Not {
			return "(" + exprString(e.X) + " IS NOT NULL)"
		}
		return "(" + exprString(e.X) + " IS NULL)"
	case *FuncExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = exprString(a)
		}
		return e.Name + "(" + strings.Join(parts, ", ") + ")"
	case *CaseExpr:
		var sb strings.Builder
		sb.WriteString("CASE")
		for _, w := range e.Whens {
			sb.WriteString(" WHEN " + exprString(w.Cond) + " THEN " + exprString(w.Then))
		}
		if e.Else != nil {
			sb.WriteString(" ELSE " + exprString(e.Else))
		}
		sb.WriteString(" END")
		return sb.String()
	case *AggExpr:
		if e.Arg == nil {
			return e.Name + "(*)"
		}
		return e.Name + "(" + exprString(e.Arg) + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}
