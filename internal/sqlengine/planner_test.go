package sqlengine

import (
	"strings"
	"testing"

	"skyserver/internal/storage"
	"skyserver/internal/val"
)

// skewDB builds a table where parentID = 0 matches 95% of rows — the
// classic skewed-column trap for selectivity guessing.
func skewDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := NewDB(storage.NewMemFileGroup(2, 1024))
	_, err := db.CreateTable("Obj", []Column{
		{Name: "objID", Kind: val.KindInt, NotNull: true},
		{Name: "parentID", Kind: val.KindInt, NotNull: true},
		{Name: "a", Kind: val.KindFloat, NotNull: true},
		{Name: "b", Kind: val.KindFloat, NotNull: true},
	}, []string{"objID"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("Obj", "ix_parent", []string{"parentID"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("Obj", "ix_cover_ab", []string{"objID"}, []string{"parentID", "a", "b"}); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("Obj")
	for i := int64(0); i < 5000; i++ {
		parent := int64(0)
		if i%20 == 5 {
			parent = i - 1
		}
		_, err := tab.Insert(val.Row{val.Int(i), val.Int(parent), val.Float(float64(i % 17)), val.Float(float64(i % 5))})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, NewSession(db)
}

func TestDiveAvoidsSkewedEqSeek(t *testing.T) {
	// parentID = 0 matches ~95% of rows: a naive eq-selectivity guess
	// would pick the ix_parent seek plus 4,750 heap lookups. The plan-time
	// index dive sees the skew and must not choose that path.
	_, s := skewDB(t)
	res, err := s.Exec("select objID, a, b from Obj where parentID = 0 and a > 100", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "IndexSeek(Obj.ix_parent") {
		t.Errorf("planner fell into the skewed-column trap:\n%s", res.Plan)
	}
	// A selective probe still uses the index.
	res, err = s.Exec("select objID from Obj where parentID = 4", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexSeek(Obj.ix_parent") {
		t.Errorf("selective eq did not seek:\n%s", res.Plan)
	}
	if len(res.Rows) != 1 {
		t.Errorf("parentID=4 matched %d rows", len(res.Rows))
	}
}

func TestCoveringBeatsHeapForColumnSubsets(t *testing.T) {
	_, s := skewDB(t)
	// (objID, parentID, a, b) are covered: the paper's tag-table effect.
	res, err := s.Exec("select objID, a from Obj where b > 3", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "IndexScan(Obj.ix_cover_ab, covering") {
		t.Errorf("covering scan not chosen:\n%s", res.Plan)
	}
}

func TestJoinGraphAvoidsCrossProducts(t *testing.T) {
	// A chain A–B–C (eq edges) written with C's predicate against A in
	// the middle must not plan A×C.
	db := NewDB(storage.NewMemFileGroup(2, 256))
	mk := func(name string) *Table {
		tb, err := db.CreateTable(name, []Column{
			{Name: "id", Kind: val.KindInt, NotNull: true},
			{Name: "ref", Kind: val.KindInt, NotNull: true},
			{Name: "v", Kind: val.KindFloat, NotNull: true},
		}, []string{"id"}, "")
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 300; i++ {
			if _, err := tb.Insert(val.Row{val.Int(i), val.Int(i), val.Float(float64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	mk("A")
	mk("B")
	mk("C")
	s := NewSession(db)
	res, err := s.Exec(`
		select a.id from A a, B b, C c
		where a.v < 50 and c.v < 50
		  and b.id = a.ref and c.id = b.ref`, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every join should be an index probe; no materialized cross join.
	if strings.Contains(res.Plan, "materialized inner") {
		t.Errorf("join graph produced a cross product:\n%s", res.Plan)
	}
	if len(res.Rows) != 50 {
		t.Errorf("chain join returned %d rows, want 50", len(res.Rows))
	}
}

func TestDropIndexChangesPlans(t *testing.T) {
	db, s := skewDB(t)
	res, _ := s.Exec("select objID from Obj where parentID = 4", ExecOptions{})
	if !strings.Contains(res.Plan, "ix_parent") {
		t.Fatalf("precondition: seek expected:\n%s", res.Plan)
	}
	if err := db.DropIndex("Obj", "ix_parent"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("select objID from Obj where parentID = 4", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "ix_parent") {
		t.Errorf("dropped index still used:\n%s", res.Plan)
	}
	if len(res.Rows) != 1 {
		t.Errorf("answer changed after drop: %d rows", len(res.Rows))
	}
	if err := db.DropIndex("Obj", "pk_Obj"); err == nil {
		t.Error("primary key drop allowed")
	}
	if err := db.DropIndex("Obj", "nope"); err == nil {
		t.Error("dropping unknown index succeeded")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := NewDB(storage.NewMemFileGroup(1, 64))
	_, err := db.CreateTable("N", []Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "x", Kind: val.KindFloat},
	}, []string{"id"}, "")
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("N")
	_, _ = tab.Insert(val.Row{val.Int(1), val.Float(5)})
	_, _ = tab.Insert(val.Row{val.Int(2), val.Null()})
	_, _ = tab.Insert(val.Row{val.Int(3), val.Float(-5)})
	s := NewSession(db)

	cases := []struct {
		where string
		want  int
	}{
		{"x > 0", 1},           // NULL row filtered
		{"not x > 0", 1},       // NOT NULL stays unknown
		{"x > 0 or x <= 0", 2}, // NULL fails both
		{"x is null", 1},
		{"x is not null", 2},
		{"x > 0 or id = 2", 2}, // OR with true arm rescues
		{"x > 0 and id = 1", 1},
		{"x in (5, -5)", 2},
		{"x not in (5)", 1}, // NULL not-in is unknown
		{"x between -10 and 10", 2},
		{"isnull(x, 0) >= 0", 2},
		{"coalesce(x, 99) > 0", 2},
	}
	for _, c := range cases {
		res, err := s.Exec("select id from N where "+c.where, ExecOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.where, err)
		}
		if len(res.Rows) != c.want {
			t.Errorf("where %s: %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"galaxy", "galaxy", true},
		{"galaxy", "gal%", true},
		{"galaxy", "%axy", true},
		{"galaxy", "%ala%", true},
		{"galaxy", "g_laxy", true},
		{"galaxy", "g_axy", false},
		{"galaxy", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"abc", "a%d", false},
		{"aaa", "a%a", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	db, s := skewDB(t)
	res, err := s.Exec("delete from Obj where objID between 10 and 19", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 10 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	// Probe through the PK and the secondary index.
	res, _ = s.Exec("select count(*) from Obj where objID = 15", ExecOptions{})
	if res.Rows[0][0].I != 0 {
		t.Error("PK index still finds deleted row")
	}
	tab, _ := db.Table("Obj")
	for _, ix := range tab.Indexes() {
		count := 0
		ix.Ascend(nil, func(key val.Row, rid uint64, incl val.Row) bool {
			count++
			return true
		})
		if count != 4990 {
			t.Errorf("index %s has %d entries after delete, want 4990", ix.Name, count)
		}
	}
}

func TestInsertSelectIntoBaseTable(t *testing.T) {
	db, s := skewDB(t)
	_, err := db.CreateTable("Copy", []Column{
		{Name: "objID", Kind: val.KindInt, NotNull: true},
		{Name: "a", Kind: val.KindFloat, NotNull: true},
	}, []string{"objID"}, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("insert into Copy select objID, a from Obj where objID < 100", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 100 {
		t.Fatalf("inserted %d", res.RowsAffected)
	}
	res, _ = s.Exec("select count(*) from Copy", ExecOptions{})
	if res.Rows[0][0].I != 100 {
		t.Error("copy incomplete")
	}
}

func TestCaseInWhereAndHavingWithAlias(t *testing.T) {
	_, s := skewDB(t)
	res, err := s.Exec(`
		select case when a > 8 then 1 else 0 end as big, count(*) as n
		from Obj
		group by case when a > 8 then 1 else 0 end
		having count(*) > 0
		order by big`, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	if res.Rows[0][1].I+res.Rows[1][1].I != 5000 {
		t.Error("groups don't cover table")
	}
}
