package sqlengine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"skyserver/internal/val"
)

// cacheDelta runs fn and returns how the cache counters moved.
func cacheDelta(db *DB, fn func()) PlanCacheStats {
	before := db.Plans().Stats()
	fn()
	after := db.Plans().Stats()
	return PlanCacheStats{
		Hits:          after.Hits - before.Hits,
		Misses:        after.Misses - before.Misses,
		Stores:        after.Stores - before.Stores,
		Invalidations: after.Invalidations - before.Invalidations,
		Evictions:     after.Evictions - before.Evictions,
	}
}

func TestPlanCacheHitSharesPlanAcrossConstants(t *testing.T) {
	db, s := testDB(t)
	r1 := mustExec(t, s, "select objID, mag_r from Obj where objID = 5")
	if r1.PlanCacheHit {
		t.Error("first execution reported a cache hit")
	}
	// Same shape, different constant — and a different session entirely.
	s2 := NewSession(db)
	var r2 *Result
	d := cacheDelta(db, func() {
		r2 = mustExec(t, s2, "select objID, mag_r from Obj where objID = 7")
	})
	if d.Hits != 1 {
		t.Errorf("second shape execution: hits moved by %d, want 1", d.Hits)
	}
	if !r2.PlanCacheHit {
		t.Error("Result.PlanCacheHit not set on a hit")
	}
	if len(r2.Rows) != 1 || r2.Rows[0][0].I != 7 {
		t.Fatalf("cached plan bound wrong constant: %v", r2.Rows)
	}
	if r1.Plan != r2.Plan {
		t.Errorf("plans diverge:\n%s\nvs\n%s", r1.Plan, r2.Plan)
	}
	// Whitespace, case, and comments normalize away.
	r3 := mustExec(t, s, "SELECT objID,\n\tmag_r FROM obj /* c */ WHERE objid = 9 -- t")
	if !r3.PlanCacheHit {
		t.Error("case/whitespace variant missed the cache")
	}
	if len(r3.Rows) != 1 || r3.Rows[0][0].I != 9 {
		t.Fatalf("normalized variant wrong rows: %v", r3.Rows)
	}
}

func TestPlanCacheUncacheableStatements(t *testing.T) {
	_, s := testDB(t)
	for _, sql := range []string{
		"declare @x bigint; set @x = 5; select count(*) from Obj where objID = @x",     // variables
		"select objID into ##pc from Obj where objID = 3",                              // INTO
		"select count(*) from ##pc",                                                    // temp table
		"select objID from Obj where objID = 1; select objID from Obj where objID = 2", // multi-statement
		"insert into Obj (objID, run, camcol, field, ra, dec, mag_r, mag_g, type, flags, name) values (200, 752, 1, 1, 180.0, 0.0, 14.0, 15.0, 3, 1, 'x')",
	} {
		mustExec(t, s, sql)
		res, err := s.Exec(sql, ExecOptions{})
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if res.PlanCacheHit {
			t.Errorf("uncacheable statement hit the cache: %q", sql)
		}
	}
	mustExec(t, s, "delete from Obj where objID = 200")
}

func TestPlanCacheStructuralLiterals(t *testing.T) {
	_, s := testDB(t)
	// TOP counts shape the plan and must not be parameterized.
	top2 := mustExec(t, s, "select top 2 objID from Obj order by objID")
	top3 := mustExec(t, s, "select top 3 objID from Obj order by objID")
	if len(top2.Rows) != 2 || len(top3.Rows) != 3 {
		t.Fatalf("TOP parameterized away: %d and %d rows", len(top2.Rows), len(top3.Rows))
	}
	// ORDER BY ordinals pick output columns and must not be parameterized.
	by2 := mustExec(t, s, "select objID, mag_r from Obj order by 2 desc, 1 asc")
	for i := 1; i < len(by2.Rows); i++ {
		if by2.Rows[i][1].F > by2.Rows[i-1][1].F {
			t.Fatal("order by ordinal broken under normalization")
		}
	}
	by1 := mustExec(t, s, "select objID, mag_r from Obj order by 1 desc, 2 asc")
	for i := 1; i < len(by1.Rows); i++ {
		if by1.Rows[i][0].I > by1.Rows[i-1][0].I {
			t.Fatal("order by 1 shares order by 2's plan")
		}
	}
	// Int and float literals of equal numeric value are distinct parameters:
	// integer division must not reuse the float plan's kinds or vice versa.
	div := mustExec(t, s, "select 7/2")
	if div.Rows[0][0].K != val.KindInt || div.Rows[0][0].I != 3 {
		t.Fatalf("7/2 = %v", div.Rows[0][0])
	}
	fdiv := mustExec(t, s, "select 7.0/2")
	if fdiv.Rows[0][0].K != val.KindFloat || fdiv.Rows[0][0].F != 3.5 {
		t.Fatalf("7.0/2 = %v", fdiv.Rows[0][0])
	}
	if fdiv.PlanCacheHit {
		t.Error("float shape hit the int shape's plan")
	}
	// Repeated equal literals share a parameter slot, so GROUP BY and
	// select-list copies of an expression still match structurally.
	g := mustExec(t, s, "select floor(mag_r/4), count(*) from Obj group by floor(mag_r/4)")
	g2 := mustExec(t, s, "select floor(mag_r/4), count(*) from Obj group by floor(mag_r/4)")
	if !g2.PlanCacheHit {
		t.Error("grouped shape missed on re-execution")
	}
	if len(g.Rows) != len(g2.Rows) {
		t.Errorf("grouped rows diverge: %d vs %d", len(g.Rows), len(g2.Rows))
	}
}

func TestBracketedIdentifiersAreNotKeywords(t *testing.T) {
	// [top] is an identifier, never the TOP keyword: the normalizer keys
	// it as data, so the parser must too — otherwise `select [top] 1 ...`
	// and `select [top] 3 ...` would share a cache key while baking
	// different TOP counts into their plans.
	_, s := testDB(t)
	for _, sql := range []string{
		"select [top] 1 objID from Obj",
		"select objID from Obj [order] by 2",
	} {
		if _, err := s.Exec(sql, ExecOptions{}); err == nil {
			t.Errorf("bracketed keyword parsed as keyword: %q", sql)
		}
	}
	// A bracketed column reference still works.
	res := mustExec(t, s, "select [objID] from Obj where [objID] = 4")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Errorf("bracketed column ref broken: %v", res.Rows)
	}
}

func TestPlanCacheDDLInvalidation(t *testing.T) {
	db, s := testDB(t)
	const q = "select objID from Obj where field = 5"
	r1 := mustExec(t, s, q)
	if !strings.Contains(r1.Plan, "TableScan") {
		t.Fatalf("precondition: expected heap scan before the index exists:\n%s", r1.Plan)
	}
	if !mustExec(t, s, q).PlanCacheHit {
		t.Fatal("warm-up did not populate the cache")
	}
	if _, err := db.CreateIndex("Obj", "ix_field", []string{"field"}, nil); err != nil {
		t.Fatal(err)
	}
	d := cacheDelta(db, func() {
		r2 := mustExec(t, s, q)
		if r2.PlanCacheHit {
			t.Error("stale plan survived CREATE INDEX")
		}
		if !strings.Contains(r2.Plan, "IndexSeek(Obj.ix_field") {
			t.Errorf("recompiled plan ignores the new index:\n%s", r2.Plan)
		}
		if len(r2.Rows) == 0 {
			t.Error("recompiled plan returned nothing")
		}
	})
	if d.Invalidations != 1 {
		t.Errorf("CREATE INDEX: invalidations moved by %d, want 1", d.Invalidations)
	}
	// DROP INDEX must likewise force a replan (correctness: the dropped
	// tree stops being maintained).
	mustExec(t, s, q)
	if err := db.DropIndex("Obj", "ix_field"); err != nil {
		t.Fatal(err)
	}
	r3 := mustExec(t, s, q)
	if r3.PlanCacheHit || strings.Contains(r3.Plan, "ix_field") {
		t.Errorf("stale plan survived DROP INDEX:\n%s", r3.Plan)
	}
}

func TestPlanCacheDMLInvalidation(t *testing.T) {
	db, s := testDB(t)
	const q = "select count(*) from Obj where run = 752"
	mustExec(t, s, q)
	if !mustExec(t, s, q).PlanCacheHit {
		t.Fatal("warm-up did not populate the cache")
	}
	// INSERT into the referenced table invalidates: dive estimates went
	// stale with the data.
	mustExec(t, s, "insert into Obj (objID, run, camcol, field, ra, dec, mag_r, mag_g, type, flags, name) values (300, 752, 1, 1, 180.0, 0.0, 14.0, 15.0, 3, 1, 'y')")
	d := cacheDelta(db, func() {
		r := mustExec(t, s, q)
		if r.PlanCacheHit {
			t.Error("stale plan survived INSERT into referenced table")
		}
		if r.Rows[0][0].I != 31 {
			t.Errorf("count after insert = %v, want 31", r.Rows[0][0])
		}
	})
	if d.Invalidations != 1 {
		t.Errorf("INSERT: invalidations moved by %d, want 1", d.Invalidations)
	}
	// Re-cached against the new version; DELETE invalidates again.
	mustExec(t, s, q)
	mustExec(t, s, "delete from Obj where objID = 300")
	if mustExec(t, s, q).PlanCacheHit {
		t.Error("stale plan survived DELETE from referenced table")
	}
}

func TestPlanCacheEviction(t *testing.T) {
	db, s := testDB(t)
	db.Plans().Clear()
	db.Plans().SetMaxBytes(6 << 10) // a handful of plans at most
	defer db.Plans().SetMaxBytes(DefaultPlanCacheBytes)
	for i := 0; i < 40; i++ {
		// Distinct shapes: aliases are structural, so each i is its own
		// cache entry (a varying literal would parameterize into one).
		mustExec(t, s, fmt.Sprintf("select objID as col%d, mag_r from Obj where objID = 1", i))
	}
	st := db.Plans().Stats()
	if st.Bytes > 6<<10 {
		t.Errorf("cache over budget: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under a tiny budget")
	}
	if st.Entries == 0 {
		t.Error("everything evicted, including the most recent entry")
	}
}

func TestExplainReportsCacheState(t *testing.T) {
	db, s := testDB(t)
	db.Plans().Clear()
	const q = "select objID from Obj where objID = 3"
	plan, err := s.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PlanCache: miss") {
		t.Errorf("first explain should report a miss:\n%s", plan)
	}
	plan, err = s.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PlanCache: hit") {
		t.Errorf("second explain should report a hit:\n%s", plan)
	}
	// Explain's stored plan serves Exec directly.
	if !mustExec(t, s, q).PlanCacheHit {
		t.Error("Exec after Explain missed the cache")
	}
	plan, err = s.Explain("declare @x bigint; set @x = 1; select count(*) from Obj where objID = @x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PlanCache: uncacheable") {
		t.Errorf("variable batch should be uncacheable:\n%s", plan)
	}
}

func TestPlanCacheDisabledOracleAgrees(t *testing.T) {
	_, s := testDB(t)
	for _, q := range []string{
		"select objID, mag_r from Obj where objID = 11",
		"select run, count(*) from Obj where mag_r between 15 and 20 group by run order by run",
		"select case when type = 3 then 'galaxy' else 'star' end as cls, count(*) from Obj group by case when type = 3 then 'galaxy' else 'star' end order by cls",
	} {
		cached := mustExec(t, s, q) // compile+store
		hit := mustExec(t, s, q)    // cached
		fresh, err := s.Exec(q, ExecOptions{DisablePlanCache: true})
		if err != nil {
			t.Fatalf("%q fresh: %v", q, err)
		}
		if !hit.PlanCacheHit || fresh.PlanCacheHit {
			t.Fatalf("%q: hit=%v fresh=%v", q, hit.PlanCacheHit, fresh.PlanCacheHit)
		}
		for _, pair := range [][2]*Result{{cached, fresh}, {hit, fresh}} {
			a, b := pair[0], pair[1]
			if len(a.Rows) != len(b.Rows) {
				t.Fatalf("%q: %d vs %d rows", q, len(a.Rows), len(b.Rows))
			}
			for i := range a.Rows {
				if val.Row(a.Rows[i]).Compare(val.Row(b.Rows[i])) != 0 {
					t.Fatalf("%q row %d: %v vs %v", q, i, a.Rows[i], b.Rows[i])
				}
			}
		}
	}
}

// TestPlanCacheConcurrentSessions exercises the tentpole's concurrency
// claim under -race: many sessions executing the same and different
// statements share the cache while a DDL goroutine keeps bumping the
// schema version (invalidating every cached plan) and a DML goroutine
// keeps bumping a queried table's data version.
func TestPlanCacheConcurrentSessions(t *testing.T) {
	db, _ := testDB(t)
	// A separate table for the DML goroutine so concurrent heap/B-tree
	// writer-vs-reader access (serialized elsewhere) stays out of scope:
	// this test targets cache concurrency, not storage locking.
	if _, err := db.CreateTable("Churn", []Column{
		{Name: "id", Kind: val.KindInt, NotNull: true},
		{Name: "v", Kind: val.KindFloat, NotNull: true},
	}, []string{"id"}, ""); err != nil {
		t.Fatal(err)
	}
	churn, _ := db.Table("Churn")
	for i := int64(0); i < 50; i++ {
		if _, err := churn.Insert(val.Row{val.Int(i), val.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	queriesList := []struct {
		sql  string
		rows int
	}{
		{"select objID, mag_r from Obj where objID = 5", 1},
		{"select objID, mag_r from Obj where objID = 17", 1},
		{"select count(*) from Obj where run = 752", 1},
		{"select run, count(*) from Obj group by run order by run", 2},
		{"select o.objID from Obj o join Obj p on p.objID = o.objID where o.objID = 9", 1},
	}

	const workers = 10
	const iters = 150
	stop := make(chan struct{})
	var churnWg, workerWg sync.WaitGroup

	// DDL churn: every CreateTable bumps the schema version.
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.CreateTable(fmt.Sprintf("Scratch%d", i), []Column{
				{Name: "id", Kind: val.KindInt, NotNull: true},
			}, nil, ""); err != nil {
				t.Errorf("ddl: %v", err)
				return
			}
		}
	}()
	// DML churn: this goroutine alone touches Churn (table writers and
	// readers of one table are serialized by design, cache traffic is not),
	// alternating inserts with the query whose cached plan each insert
	// invalidates — so stores and data-version invalidations race the other
	// sessions' lookups on the shared cache.
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		sess := NewSession(db)
		id := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := churn.Insert(val.Row{val.Int(id), val.Float(1)}); err != nil {
				t.Errorf("dml: %v", err)
				return
			}
			if _, err := sess.Exec("select count(*) from Churn where id < 25", ExecOptions{}); err != nil {
				t.Errorf("dml query: %v", err)
				return
			}
			id++
		}
	}()

	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			sess := NewSession(db)
			for i := 0; i < iters; i++ {
				q := queriesList[(w+i)%len(queriesList)]
				res, err := sess.Exec(q.sql, ExecOptions{})
				if err != nil {
					errs <- fmt.Errorf("worker %d %q: %w", w, q.sql, err)
					return
				}
				if q.rows >= 0 && len(res.Rows) != q.rows && !strings.Contains(q.sql, "Churn") {
					errs <- fmt.Errorf("worker %d %q: %d rows, want %d", w, q.sql, len(res.Rows), q.rows)
					return
				}
			}
		}()
	}
	workerWg.Wait()
	close(stop)
	churnWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := db.Plans().Stats()
	if st.Hits == 0 {
		t.Error("concurrent workload produced no cache hits")
	}
	if st.Invalidations == 0 {
		t.Error("DDL churn produced no invalidations")
	}
}
