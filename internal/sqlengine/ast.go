package sqlengine

import "skyserver/internal/val"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is SELECT [TOP n] [DISTINCT] items [INTO target] FROM sources
// [WHERE cond] [GROUP BY exprs [HAVING cond]] [ORDER BY keys].
type SelectStmt struct {
	Top      int // 0 = no limit
	Distinct bool
	Items    []SelectItem
	Into     string // "##results" style target, "" if none
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
}

// SelectItem is one output column: an expression with an optional alias, or
// a star (Expr == nil, Star true, optional qualifier).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	Qualifier string // "G" in G.*
}

// FromItem is one FROM source: a named table/view, or a table-valued
// function call. JoinCond is the ON condition binding it to the preceding
// sources (nil for the first item and for comma-joins).
type FromItem struct {
	Table    string
	Func     *FuncExpr // table-valued function if non-nil
	Alias    string
	JoinCond Expr
}

// Name returns the binding name of the source (alias or table name).
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	if f.Func != nil {
		return f.Func.Name
	}
	return f.Table
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// DeclareStmt is DECLARE @name type.
type DeclareStmt struct {
	Name string // without @
	Type string
}

// SetStmt is SET @name = expr.
type SetStmt struct {
	Name string
	Expr Expr
}

// InsertStmt is INSERT [INTO] table [(cols)] VALUES (...),(...) or
// INSERT [INTO] table [(cols)] SELECT ...
type InsertStmt struct {
	Table  string
	Cols   []string
	Values [][]Expr
	Select *SelectStmt
}

// DeleteStmt is DELETE FROM table [WHERE cond].
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE name (col type [NOT NULL], ...).
type CreateTableStmt struct {
	Table string
	Cols  []ColDef
}

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name    string
	Type    string
	NotNull bool
}

func (*SelectStmt) stmt()      {}
func (*DeclareStmt) stmt()     {}
func (*SetStmt) stmt()         {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}

// Expr is any expression node.
type Expr interface{ expr() }

// LitExpr is a literal value.
type LitExpr struct{ Val val.Value }

// ColExpr references a column, optionally qualified by a source name.
type ColExpr struct {
	Qualifier string // "" if unqualified
	Name      string
}

// VarExpr references a session variable @name.
type VarExpr struct{ Name string }

// ParamExpr references a slot of the execution's parameter vector
// (ExecCtx.Params). The normalizer extracts literals out of a statement's
// text into parameters so that texts differing only in their constants —
// WHERE objID = 123 vs WHERE objID = 456 — share one normalized cache key
// and one compiled plan. Kind records the first-seen literal's kind; it is
// stable for a given normalized shape because the cache key distinguishes
// int, float, and string parameters.
type ParamExpr struct {
	Idx  int
	Kind val.Kind
}

// UnaryExpr is -x, ~x or NOT x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinExpr is a binary operation: arithmetic, comparison, AND/OR, bitwise.
type BinExpr struct {
	Op   string // lower-case: "+", "-", "*", "/", "%", "&", "|", "^", "=", "<>", "<", "<=", ">", ">=", "and", "or"
	L, R Expr
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X      Expr
	Lo, Hi Expr
	Not    bool
}

// InExpr is x [NOT] IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// LikeExpr is x [NOT] LIKE pattern (with % and _ wildcards).
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// FuncExpr is a function call, scalar or table-valued; the optional "dbo."
// schema prefix is recorded but ignored for lookup.
type FuncExpr struct {
	Name string // lower-cased, without dbo.
	Args []Expr
}

// CaseExpr is CASE [WHEN cond THEN val]... [ELSE val] END (searched form).
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// AggExpr is an aggregate call: COUNT(*), COUNT(x), SUM, AVG, MIN, MAX.
type AggExpr struct {
	Name string // lower-case
	Arg  Expr   // nil for COUNT(*)
}

func (*LitExpr) expr()     {}
func (*ColExpr) expr()     {}
func (*VarExpr) expr()     {}
func (*ParamExpr) expr()   {}
func (*UnaryExpr) expr()   {}
func (*BinExpr) expr()     {}
func (*BetweenExpr) expr() {}
func (*InExpr) expr()      {}
func (*LikeExpr) expr()    {}
func (*IsNullExpr) expr()  {}
func (*FuncExpr) expr()    {}
func (*CaseExpr) expr()    {}
func (*AggExpr) expr()     {}
