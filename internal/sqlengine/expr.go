package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"skyserver/internal/val"
)

// ColRef names an output or scope column.
type ColRef struct {
	Qualifier string
	Name      string
	Kind      val.Kind
}

// scope is the namespace expressions compile against: the concatenated
// columns of all in-scope sources, in runtime row order.
type scope struct {
	cols []ColRef
}

// resolve returns the runtime position of a column reference.
func (s *scope) resolve(qualifier, name string) (int, error) {
	q, n := fold(qualifier), fold(name)
	found := -1
	for i, c := range s.cols {
		if fold(c.Name) != n {
			continue
		}
		if q != "" && fold(c.Qualifier) != q {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", name)
		}
		found = i
	}
	if found < 0 {
		if qualifier != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", qualifier, name)
		}
		return 0, fmt.Errorf("sql: unknown column %s", name)
	}
	return found, nil
}

// compiledExpr evaluates an expression against a runtime row.
type compiledExpr func(ctx *ExecCtx, row val.Row) (val.Value, error)

// compileExpr compiles e against the scope. Aggregate expressions are
// rejected here; the aggregation planner replaces them before compilation.
func compileExpr(e Expr, sc *scope, db *DB) (compiledExpr, error) {
	switch e := e.(type) {
	case *LitExpr:
		v := e.Val
		return func(*ExecCtx, val.Row) (val.Value, error) { return v, nil }, nil

	case *ColExpr:
		i, err := sc.resolve(e.Qualifier, e.Name)
		if err != nil {
			return nil, err
		}
		return func(_ *ExecCtx, row val.Row) (val.Value, error) { return row[i], nil }, nil

	case *VarExpr:
		name := e.Name
		return func(ctx *ExecCtx, _ val.Row) (val.Value, error) {
			v, ok := ctx.Session.Var(name)
			if !ok {
				return val.Value{}, fmt.Errorf("sql: variable @%s not declared", name)
			}
			return v, nil
		}, nil

	case *ParamExpr:
		i := e.Idx
		return func(ctx *ExecCtx, _ val.Row) (val.Value, error) {
			if i >= len(ctx.Params) {
				return val.Value{}, fmt.Errorf("sql: parameter ?%d not bound", i)
			}
			return ctx.Params[i], nil
		}, nil

	case *UnaryExpr:
		x, err := compileExpr(e.X, sc, db)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
				v, err := x(ctx, row)
				if err != nil || v.IsNull() {
					return v, err
				}
				switch v.K {
				case val.KindInt:
					return val.Int(-v.I), nil
				case val.KindFloat:
					return val.Float(-v.F), nil
				}
				return val.Value{}, fmt.Errorf("sql: cannot negate %v", v.K)
			}, nil
		case "~":
			return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
				v, err := x(ctx, row)
				if err != nil || v.IsNull() {
					return v, err
				}
				i, ok := v.AsInt()
				if !ok {
					return val.Value{}, fmt.Errorf("sql: ~ needs integer")
				}
				return val.Int(^i), nil
			}, nil
		case "not":
			return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
				v, err := x(ctx, row)
				if err != nil || v.IsNull() {
					return v, err
				}
				return val.Bool(!v.Truthy()), nil
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary op %q", e.Op)

	case *BinExpr:
		return compileBin(e, sc, db)

	case *BetweenExpr:
		x, err := compileExpr(e.X, sc, db)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(e.Lo, sc, db)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(e.Hi, sc, db)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			lv, err := lo(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			hv, err := hi(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if xv.IsNull() || lv.IsNull() || hv.IsNull() {
				return val.Null(), nil
			}
			in := xv.Compare(lv) >= 0 && xv.Compare(hv) <= 0
			return val.Bool(in != not), nil
		}, nil

	case *InExpr:
		x, err := compileExpr(e.X, sc, db)
		if err != nil {
			return nil, err
		}
		list := make([]compiledExpr, len(e.List))
		for i, le := range e.List {
			if list[i], err = compileExpr(le, sc, db); err != nil {
				return nil, err
			}
		}
		not := e.Not
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if xv.IsNull() {
				return val.Null(), nil
			}
			anyNull := false
			for _, le := range list {
				lv, err := le(ctx, row)
				if err != nil {
					return val.Value{}, err
				}
				if lv.IsNull() {
					anyNull = true
					continue
				}
				if xv.Compare(lv) == 0 {
					return val.Bool(!not), nil
				}
			}
			if anyNull {
				return val.Null(), nil
			}
			return val.Bool(not), nil
		}, nil

	case *LikeExpr:
		x, err := compileExpr(e.X, sc, db)
		if err != nil {
			return nil, err
		}
		pat, err := compileExpr(e.Pattern, sc, db)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			pv, err := pat(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if xv.IsNull() || pv.IsNull() {
				return val.Null(), nil
			}
			if xv.K != val.KindString || pv.K != val.KindString {
				return val.Value{}, fmt.Errorf("sql: LIKE needs strings")
			}
			return val.Bool(likeMatch(xv.S, pv.S) != not), nil
		}, nil

	case *IsNullExpr:
		x, err := compileExpr(e.X, sc, db)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			v, err := x(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			return val.Bool(v.IsNull() != not), nil
		}, nil

	case *FuncExpr:
		f, ok := db.scalars[e.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %s", e.Name)
		}
		if len(e.Args) < f.MinArgs || (f.MaxArgs >= 0 && len(e.Args) > f.MaxArgs) {
			return nil, fmt.Errorf("sql: %s takes %d..%d args, got %d", e.Name, f.MinArgs, f.MaxArgs, len(e.Args))
		}
		args := make([]compiledExpr, len(e.Args))
		var err error
		for i, a := range e.Args {
			if args[i], err = compileExpr(a, sc, db); err != nil {
				return nil, err
			}
		}
		fn := f.Fn
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			vals := make([]val.Value, len(args))
			for i, a := range args {
				v, err := a(ctx, row)
				if err != nil {
					return val.Value{}, err
				}
				vals[i] = v
			}
			return fn(ctx, vals)
		}, nil

	case *CaseExpr:
		whens := make([]struct{ cond, then compiledExpr }, len(e.Whens))
		for i, w := range e.Whens {
			c, err := compileExpr(w.Cond, sc, db)
			if err != nil {
				return nil, err
			}
			t, err := compileExpr(w.Then, sc, db)
			if err != nil {
				return nil, err
			}
			whens[i].cond, whens[i].then = c, t
		}
		var els compiledExpr
		if e.Else != nil {
			var err error
			if els, err = compileExpr(e.Else, sc, db); err != nil {
				return nil, err
			}
		}
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			for _, w := range whens {
				c, err := w.cond(ctx, row)
				if err != nil {
					return val.Value{}, err
				}
				if c.Truthy() {
					return w.then(ctx, row)
				}
			}
			if els != nil {
				return els(ctx, row)
			}
			return val.Null(), nil
		}, nil

	case *AggExpr:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", strings.ToUpper(e.Name))

	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func compileBin(e *BinExpr, sc *scope, db *DB) (compiledExpr, error) {
	l, err := compileExpr(e.L, sc, db)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(e.R, sc, db)
	if err != nil {
		return nil, err
	}
	op := e.Op
	switch op {
	case "and":
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return val.Bool(false), nil
			}
			rv, err := r(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if !rv.IsNull() && !rv.Truthy() {
				return val.Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return val.Null(), nil
			}
			return val.Bool(true), nil
		}, nil
	case "or":
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if !lv.IsNull() && lv.Truthy() {
				return val.Bool(true), nil
			}
			rv, err := r(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if !rv.IsNull() && rv.Truthy() {
				return val.Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return val.Null(), nil
			}
			return val.Bool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return val.Null(), nil
			}
			c := lv.Compare(rv)
			var ok bool
			switch op {
			case "=":
				ok = c == 0
			case "<>":
				ok = c != 0
			case "<":
				ok = c < 0
			case "<=":
				ok = c <= 0
			case ">":
				ok = c > 0
			case ">=":
				ok = c >= 0
			}
			return val.Bool(ok), nil
		}, nil
	case "+", "-", "*", "/":
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			return arith(op, lv, rv)
		}, nil
	case "%", "&", "|", "^":
		return func(ctx *ExecCtx, row val.Row) (val.Value, error) {
			lv, err := l(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			rv, err := r(ctx, row)
			if err != nil {
				return val.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return val.Null(), nil
			}
			li, lok := lv.AsInt()
			ri, rok := rv.AsInt()
			if !lok || !rok {
				return val.Value{}, fmt.Errorf("sql: %q needs integers", op)
			}
			switch op {
			case "%":
				if ri == 0 {
					return val.Value{}, fmt.Errorf("sql: modulo by zero")
				}
				return val.Int(li % ri), nil
			case "&":
				return val.Int(li & ri), nil
			case "|":
				return val.Int(li | ri), nil
			default:
				return val.Int(li ^ ri), nil
			}
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", op)
}

// arith implements +, -, *, / with T-SQL-style typing: int op int stays
// integer (including division), any float operand promotes to float.
func arith(op string, l, r val.Value) (val.Value, error) {
	if l.IsNull() || r.IsNull() {
		return val.Null(), nil
	}
	// String concatenation with +.
	if op == "+" && l.K == val.KindString && r.K == val.KindString {
		return val.Str(l.S + r.S), nil
	}
	if l.K == val.KindInt && r.K == val.KindInt {
		switch op {
		case "+":
			return val.Int(l.I + r.I), nil
		case "-":
			return val.Int(l.I - r.I), nil
		case "*":
			return val.Int(l.I * r.I), nil
		default:
			if r.I == 0 {
				return val.Value{}, fmt.Errorf("sql: division by zero")
			}
			return val.Int(l.I / r.I), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return val.Value{}, fmt.Errorf("sql: %q needs numeric operands, got %v and %v", op, l.K, r.K)
	}
	switch op {
	case "+":
		return val.Float(lf + rf), nil
	case "-":
		return val.Float(lf - rf), nil
	case "*":
		return val.Float(lf * rf), nil
	default:
		if rf == 0 {
			return val.Value{}, fmt.Errorf("sql: division by zero")
		}
		return val.Float(lf / rf), nil
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char).
func likeMatch(s, pat string) bool {
	// Iterative two-pointer with backtracking on the last %.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// exprRefs collects the scope positions referenced by an expression;
// resolution errors propagate so classification can reject unknown columns.
func exprRefs(e Expr, sc *scope, out map[int]bool) error {
	switch e := e.(type) {
	case nil:
		return nil
	case *LitExpr, *VarExpr, *ParamExpr:
		return nil
	case *ColExpr:
		i, err := sc.resolve(e.Qualifier, e.Name)
		if err != nil {
			return err
		}
		out[i] = true
		return nil
	case *UnaryExpr:
		return exprRefs(e.X, sc, out)
	case *BinExpr:
		if err := exprRefs(e.L, sc, out); err != nil {
			return err
		}
		return exprRefs(e.R, sc, out)
	case *BetweenExpr:
		for _, x := range []Expr{e.X, e.Lo, e.Hi} {
			if err := exprRefs(x, sc, out); err != nil {
				return err
			}
		}
		return nil
	case *InExpr:
		if err := exprRefs(e.X, sc, out); err != nil {
			return err
		}
		for _, x := range e.List {
			if err := exprRefs(x, sc, out); err != nil {
				return err
			}
		}
		return nil
	case *LikeExpr:
		if err := exprRefs(e.X, sc, out); err != nil {
			return err
		}
		return exprRefs(e.Pattern, sc, out)
	case *IsNullExpr:
		return exprRefs(e.X, sc, out)
	case *FuncExpr:
		for _, a := range e.Args {
			if err := exprRefs(a, sc, out); err != nil {
				return err
			}
		}
		return nil
	case *CaseExpr:
		for _, w := range e.Whens {
			if err := exprRefs(w.Cond, sc, out); err != nil {
				return err
			}
			if err := exprRefs(w.Then, sc, out); err != nil {
				return err
			}
		}
		return exprRefs(e.Else, sc, out)
	case *AggExpr:
		return exprRefs(e.Arg, sc, out)
	default:
		return fmt.Errorf("sql: unsupported expression %T", e)
	}
}

// hasAgg reports whether the expression tree contains an aggregate call.
func hasAgg(e Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *AggExpr:
		return true
	case *UnaryExpr:
		return hasAgg(e.X)
	case *BinExpr:
		return hasAgg(e.L) || hasAgg(e.R)
	case *BetweenExpr:
		return hasAgg(e.X) || hasAgg(e.Lo) || hasAgg(e.Hi)
	case *InExpr:
		if hasAgg(e.X) {
			return true
		}
		for _, x := range e.List {
			if hasAgg(x) {
				return true
			}
		}
		return false
	case *LikeExpr:
		return hasAgg(e.X) || hasAgg(e.Pattern)
	case *IsNullExpr:
		return hasAgg(e.X)
	case *FuncExpr:
		for _, a := range e.Args {
			if hasAgg(a) {
				return true
			}
		}
		return false
	case *CaseExpr:
		for _, w := range e.Whens {
			if hasAgg(w.Cond) || hasAgg(w.Then) {
				return true
			}
		}
		return hasAgg(e.Else)
	default:
		return false
	}
}

// inferKind guesses the result kind of an expression for schema purposes.
func inferKind(e Expr, sc *scope) val.Kind {
	switch e := e.(type) {
	case *LitExpr:
		return e.Val.K
	case *ColExpr:
		if i, err := sc.resolve(e.Qualifier, e.Name); err == nil {
			return sc.cols[i].Kind
		}
		return val.KindFloat
	case *BinExpr:
		switch e.Op {
		case "and", "or", "=", "<>", "<", "<=", ">", ">=":
			return val.KindInt
		case "&", "|", "^", "%":
			return val.KindInt
		default:
			lk, rk := inferKind(e.L, sc), inferKind(e.R, sc)
			if lk == val.KindInt && rk == val.KindInt {
				return val.KindInt
			}
			if lk == val.KindString && rk == val.KindString {
				return val.KindString
			}
			return val.KindFloat
		}
	case *UnaryExpr:
		if e.Op == "not" {
			return val.KindInt
		}
		return inferKind(e.X, sc)
	case *BetweenExpr, *InExpr, *LikeExpr, *IsNullExpr:
		return val.KindInt
	case *AggExpr:
		if e.Name == "count" {
			return val.KindInt
		}
		if e.Arg != nil {
			if e.Name == "avg" {
				return val.KindFloat
			}
			return inferKind(e.Arg, sc)
		}
		return val.KindInt
	case *FuncExpr:
		switch e.Name {
		case "len", "charindex", "sign", "floor", "ceiling":
			return val.KindInt
		case "upper", "lower", "ltrim", "rtrim", "substring", "str", "fgeturlexpid", "fphotodescription":
			return val.KindString
		default:
			return val.KindFloat
		}
	case *CaseExpr:
		if len(e.Whens) > 0 {
			return inferKind(e.Whens[0].Then, sc)
		}
		return val.KindFloat
	case *VarExpr:
		return val.KindFloat
	case *ParamExpr:
		return e.Kind
	default:
		return val.KindFloat
	}
}

// nan guards math results: SQL surfaces domain errors as NULL.
func nanToNull(f float64) val.Value {
	if math.IsNaN(f) {
		return val.Null()
	}
	return val.Float(f)
}
