// Package sqlengine implements the SkyServer's relational engine: a lexer,
// parser, planner and executor for the SQL dialect the paper's twenty
// queries are written in (SELECT with TOP/INTO, joins against table-valued
// functions, views as subclassing, GROUP BY/HAVING, DECLARE/SET variables,
// scalar functions under dbo., bitwise flag tests), running over the slotted
// heap files of internal/storage with internal/btree indices.
//
// It stands in for Microsoft SQL Server 2000 in the reproduction: every SQL
// text the paper prints (Q1, Q15A, Q15B) runs verbatim, and the plan shapes
// of Figures 10–12 — TVF nested-loop join, parallel sequential scan,
// covering-index scan — are chosen by the same reasoning the paper
// describes.
//
// The compile pipeline is parse → parameterize → compile → (plan cache) →
// bind → execute: literals normalize into a parameter vector and a
// canonical cache key, compiled plans (CompiledPlan) are immutable and
// shared across sessions, and each plan carries its workload class
// (QueryClass — interactive seek vs batch sweep, decided from the
// planner's dive-based estimates) for the admission controller in
// internal/sched. See ARCHITECTURE.md at the repository root for the
// end-to-end walk-through.
package sqlengine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokVariable // @name
	tokOp       // operator or punctuation
)

type token struct {
	kind tokKind
	text string // identifiers lower-cased on demand via fold; raw preserved
	pos  int
	// param is 1 + the parameter index the normalizer assigned this literal
	// token, or 0 when the token is structural (not parameterized). Set by
	// normalizeTokens, read by the parser to emit ParamExpr nodes.
	param int32
	// bracketed marks a [quoted] identifier, so the normalized cache key
	// distinguishes [select] (an identifier) from select (a keyword).
	bracketed bool
}

// lexer tokenizes a SQL batch. It understands -- line comments, /* */ block
// comments, 'string literals' with ” escaping, @variables, ##temp table
// names, [bracketed identifiers], and multi-character operators.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) { return lexInto(src, nil) }

// lexInto tokenizes into dst's storage (truncated first), so steady-state
// callers — the plan-cache probe runs on every Session.Exec — reuse one
// token buffer instead of allocating a slice per statement.
func lexInto(src string, dst []token) ([]token, error) {
	l := &lexer{src: src, toks: dst[:0]}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c) || c == '#':
			l.lexIdent()
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '@':
			l.pos++
			if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
				return nil, fmt.Errorf("sql: bare @ at offset %d", start)
			}
			l.lexIdent()
			last := &l.toks[len(l.toks)-1]
			last.kind = tokVariable
			last.pos = start
		case c == '[':
			end := strings.IndexByte(l.src[l.pos:], ']')
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated [identifier] at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[l.pos+1 : l.pos+end], pos: start, bracketed: true})
			l.pos += end + 1
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '#'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}

var twoCharOps = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true,
}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.toks = append(l.toks, token{kind: tokOp, text: two, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '(', ')', ',', '=', '<', '>', ';', '.':
		// Slice the source rather than string(c): a one-byte string
		// conversion allocates, and operators are the most common token.
		l.toks = append(l.toks, token{kind: tokOp, text: l.src[l.pos : l.pos+1], pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
}

// foldCache interns lower-cased identifiers: the planner folds the same
// mixed-case column names (petroR50_g, PhotoObj, …) thousands of times per
// query during scope resolution, and strings.ToLower allocates on every
// one of them. Identifiers reach here straight from user-supplied SQL
// (including queries that then fail to parse), so the cache is capped:
// past the cap, unseen identifiers fold with a plain ToLower instead of
// growing process memory without bound. The schema's own names — the hot
// set resolve loops over — always fit well under the cap.
var (
	foldCache sync.Map // original string -> lower-cased string
	foldCount atomic.Int64
)

const foldCacheMax = 1 << 14

// fold lower-cases for case-insensitive keyword and identifier matching,
// without allocating in steady state.
func fold(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'A' && c <= 'Z') || c >= 0x80 {
			if v, ok := foldCache.Load(s); ok {
				return v.(string)
			}
			l := strings.ToLower(s)
			if foldCount.Load() < foldCacheMax {
				// Clone the key so the cache never pins a larger buffer
				// the identifier might be a substring view of — and if
				// ToLower returned its input unchanged (possible for
				// non-ASCII identifiers), store the clone as the value
				// too, for the same reason.
				ck := strings.Clone(s)
				cv := l
				if l == s {
					cv = ck
				}
				if _, loaded := foldCache.LoadOrStore(ck, cv); !loaded {
					foldCount.Add(1)
				}
			}
			return l
		}
	}
	// Already folded: ASCII with no upper-case letters.
	return s
}
