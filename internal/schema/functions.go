package schema

import (
	"fmt"
	"math"
	"sort"

	"skyserver/internal/htm"
	"skyserver/internal/sky"
	"skyserver/internal/sqlengine"
	"skyserver/internal/val"
)

// registerFunctions installs the SkyServer's dbo. functions: the flag/type
// vocabularies, URL builders, and the HTM spatial access functions of
// §9.1.4 ("The HTM library is an SQL extended stored procedure wrapped in a
// table-valued function").
func registerFunctions(s *SkyDB) {
	db := s.DB

	db.RegisterScalar(&sqlengine.ScalarFunc{
		Name: "fPhotoFlags", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *sqlengine.ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].K != val.KindString {
				return val.Value{}, fmt.Errorf("fPhotoFlags expects a flag name")
			}
			v, ok := PhotoFlagValue(args[0].S)
			if !ok {
				return val.Value{}, fmt.Errorf("fPhotoFlags: unknown flag %q", args[0].S)
			}
			return val.Int(v), nil
		}})

	db.RegisterScalar(&sqlengine.ScalarFunc{
		Name: "fPhotoType", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *sqlengine.ExecCtx, args []val.Value) (val.Value, error) {
			if args[0].K != val.KindString {
				return val.Value{}, fmt.Errorf("fPhotoType expects a type name")
			}
			v, ok := PhotoTypeValue(args[0].S)
			if !ok {
				return val.Value{}, fmt.Errorf("fPhotoType: unknown type %q", args[0].S)
			}
			return val.Int(v), nil
		}})

	db.RegisterScalar(&sqlengine.ScalarFunc{
		Name: "fGetUrlExpId", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *sqlengine.ExecCtx, args []val.Value) (val.Value, error) {
			id, ok := args[0].AsInt()
			if !ok {
				return val.Null(), nil
			}
			return val.Str(fmt.Sprintf("http://skyserver.sdss.org/en/tools/explore/obj.asp?id=%d", id)), nil
		}})

	db.RegisterScalar(&sqlengine.ScalarFunc{
		Name: "fDistanceArcMinEq", MinArgs: 4, MaxArgs: 4,
		Fn: func(_ *sqlengine.ExecCtx, args []val.Value) (val.Value, error) {
			var f [4]float64
			for i := range f {
				x, ok := args[i].AsFloat()
				if !ok {
					return val.Null(), nil
				}
				f[i] = x
			}
			return val.Float(sky.DistanceArcmin(f[0], f[1], f[2], f[3])), nil
		}})

	db.RegisterScalar(&sqlengine.ScalarFunc{
		Name: "fHtmLookupEq", MinArgs: 2, MaxArgs: 2,
		Fn: func(_ *sqlengine.ExecCtx, args []val.Value) (val.Value, error) {
			ra, ok1 := args[0].AsFloat()
			dec, ok2 := args[1].AsFloat()
			if !ok1 || !ok2 {
				return val.Null(), nil
			}
			return val.Int(int64(htm.LookupEq(ra, dec, HTMDepth))), nil
		}})

	// nearbyCols is the schema of fGetNearbyObjEq / fGetNearestObjEq,
	// matching the included columns of ix_PhotoObj_htmID.
	nearbyCols := []sqlengine.Column{
		{Name: "objID", Kind: val.KindInt},
		{Name: "run", Kind: val.KindInt},
		{Name: "camcol", Kind: val.KindInt},
		{Name: "field", Kind: val.KindInt},
		{Name: "rerun", Kind: val.KindInt},
		{Name: "type", Kind: val.KindInt},
		{Name: "mode", Kind: val.KindInt},
		{Name: "distance", Kind: val.KindFloat},
	}

	// The spatial lookups sort by distance (and apply fGetNearestObjEq's
	// limit) before emitting, so they materialize rows internally and
	// stream them out through EmitRows' pooled batches.
	db.RegisterTVF(&sqlengine.TableFunc{
		Name:    "fGetNearbyObjEq",
		Cols:    nearbyCols,
		EstRows: 32,
		Fn: func(ctx *sqlengine.ExecCtx, args []val.Value, emit sqlengine.TVFEmit) error {
			rows, err := s.nearbyObjEq(args, -1)
			if err != nil {
				return err
			}
			return sqlengine.EmitRows(ctx, len(nearbyCols), rows, emit)
		}})

	db.RegisterTVF(&sqlengine.TableFunc{
		Name:    "fGetNearestObjEq",
		Cols:    nearbyCols,
		EstRows: 1,
		Fn: func(ctx *sqlengine.ExecCtx, args []val.Value, emit sqlengine.TVFEmit) error {
			rows, err := s.nearbyObjEq(args, 1)
			if err != nil {
				return err
			}
			return sqlengine.EmitRows(ctx, len(nearbyCols), rows, emit)
		}})

	rectCols := []sqlengine.Column{
		{Name: "objID", Kind: val.KindInt},
		{Name: "ra", Kind: val.KindFloat},
		{Name: "dec", Kind: val.KindFloat},
		{Name: "type", Kind: val.KindInt},
		{Name: "mode", Kind: val.KindInt},
	}
	db.RegisterTVF(&sqlengine.TableFunc{
		Name:    "fGetObjFromRect",
		Cols:    rectCols,
		EstRows: 256,
		Fn: func(ctx *sqlengine.ExecCtx, args []val.Value, emit sqlengine.TVFEmit) error {
			rows, err := s.objFromRect(args)
			if err != nil {
				return err
			}
			return sqlengine.EmitRows(ctx, len(rectCols), rows, emit)
		}})

	// The HTM cover is already ordered, so it fills batches directly —
	// no intermediate row slice at all.
	db.RegisterTVF(&sqlengine.TableFunc{
		Name: "fHTMCoverCircleEq",
		Cols: []sqlengine.Column{
			{Name: "HTMIDstart", Kind: val.KindInt},
			{Name: "HTMIDend", Kind: val.KindInt},
		},
		EstRows: 16,
		Fn: func(ctx *sqlengine.ExecCtx, args []val.Value, emit sqlengine.TVFEmit) error {
			ra, dec, r, err := circleArgs(args)
			if err != nil {
				return err
			}
			cover := htm.Circle(ra, dec, r).CoverWith(htm.CoverOptions{Depth: HTMDepth})
			em := val.NewEmitter(2, len(cover), !ctx.DisablePooling, emit)
			for _, rg := range cover {
				if err := em.Append(val.Row{val.Int(int64(rg.Lo)), val.Int(int64(rg.Hi))}); err != nil {
					em.Discard()
					return err
				}
			}
			return em.Close()
		}})
}

func circleArgs(args []val.Value) (ra, dec, r float64, err error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("spatial function expects (ra, dec, radiusArcmin)")
	}
	var ok [3]bool
	ra, ok[0] = args[0].AsFloat()
	dec, ok[1] = args[1].AsFloat()
	r, ok[2] = args[2].AsFloat()
	if !ok[0] || !ok[1] || !ok[2] {
		return 0, 0, 0, fmt.Errorf("spatial function expects numeric (ra, dec, radiusArcmin)")
	}
	if r <= 0 {
		return 0, 0, 0, fmt.Errorf("spatial function radius must be positive, got %g", r)
	}
	return ra, dec, r, nil
}

// nearbyObjEq implements fGetNearbyObjEq/fGetNearestObjEq: compute the HTM
// cover of the circle, range-scan the covered htmID intervals in the
// (covering) spatial index, and filter exactly by dot product against the
// stored unit vectors — the two-layer scheme of §9.1.4.
func (s *SkyDB) nearbyObjEq(args []val.Value, limit int) ([]val.Row, error) {
	ra, dec, r, err := circleArgs(args)
	if err != nil {
		return nil, err
	}
	ix := s.PhotoObj.IndexByName("ix_PhotoObj_htmID")
	if ix == nil {
		return nil, fmt.Errorf("fGetNearbyObjEq: spatial index missing")
	}
	center := sky.EqToVec(ra, dec)
	cosR := math.Cos(r / sky.ArcminPerDeg * sky.RadPerDeg)
	cover := htm.Circle(ra, dec, r).CoverWith(htm.CoverOptions{Depth: HTMDepth})
	// Included column positions in ix_PhotoObj_htmID:
	// 0 objID, 1 cx, 2 cy, 3 cz, 4 ra, 5 dec, 6 type, 7 mode,
	// 8 run, 9 camcol, 10 field, 11 rerun.
	var rows []val.Row
	for _, rg := range cover {
		lo := val.Row{val.Int(int64(rg.Lo))}
		hi := int64(rg.Hi)
		ix.Ascend(lo, func(key val.Row, rid uint64, incl val.Row) bool {
			if key[0].I >= hi {
				return false
			}
			v := sky.Vec3{X: incl[1].F, Y: incl[2].F, Z: incl[3].F}
			d := v.Dot(center)
			if d < cosR {
				return true
			}
			if d > 1 {
				d = 1
			}
			distArcmin := math.Acos(d) * sky.DegPerRad * sky.ArcminPerDeg
			rows = append(rows, val.Row{
				incl[0], incl[8], incl[9], incl[10], incl[11],
				incl[6], incl[7], val.Float(distArcmin),
			})
			return true
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][7].F < rows[j][7].F })
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows, nil
}

// objFromRect returns the objects inside an (ra, dec) rectangle, the web
// interface's "all objects in a certain rectangular area" request (§9.1.4).
func (s *SkyDB) objFromRect(args []val.Value) ([]val.Row, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("fGetObjFromRect expects (raMin, raMax, decMin, decMax)")
	}
	var f [4]float64
	for i := range f {
		x, ok := args[i].AsFloat()
		if !ok {
			return nil, fmt.Errorf("fGetObjFromRect expects numeric bounds")
		}
		f[i] = x
	}
	cx, err := htm.Rect(f[0], f[2], f[1], f[3])
	if err != nil {
		return nil, err
	}
	ix := s.PhotoObj.IndexByName("ix_PhotoObj_htmID")
	if ix == nil {
		return nil, fmt.Errorf("fGetObjFromRect: spatial index missing")
	}
	cover := cx.CoverWith(htm.CoverOptions{Depth: HTMDepth})
	var rows []val.Row
	for _, rg := range cover {
		lo := val.Row{val.Int(int64(rg.Lo))}
		hi := int64(rg.Hi)
		ix.Ascend(lo, func(key val.Row, rid uint64, incl val.Row) bool {
			if key[0].I >= hi {
				return false
			}
			v := sky.Vec3{X: incl[1].F, Y: incl[2].F, Z: incl[3].F}
			if !cx.Contains(v) {
				return true
			}
			rows = append(rows, val.Row{incl[0], incl[4], incl[5], incl[6], incl[7]})
			return true
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].I < rows[j][0].I })
	return rows, nil
}
